/**
 * @file
 * Tests for the control-plane pieces: the ksmtuned governor, the
 * time-series sharing monitor, and the Memory Buddies placement
 * planner.
 */

#include <gtest/gtest.h>

#include "analysis/sharing_monitor.hh"
#include "base/stats.hh"
#include "core/placement.hh"
#include "hv/hypervisor.hh"
#include "ksm/ksm_scanner.hh"
#include "ksm/ksm_tuned.hh"
#include "sim/event_queue.hh"
#include "workload/workload_spec.hh"

using namespace jtps;
using core::PlacementPlanner;
using core::SharingFingerprint;
using hv::KvmHypervisor;
using ksm::KsmConfig;
using ksm::KsmScanner;
using ksm::KsmTuned;
using ksm::KsmTunedConfig;
using mem::PageData;

namespace
{

hv::HostConfig
host(Bytes ram)
{
    hv::HostConfig cfg;
    cfg.ramBytes = ram;
    cfg.reserveBytes = 0;
    return cfg;
}

} // namespace

TEST(KsmTuned, BoostsUnderPressureDecaysWhenSlack)
{
    StatSet stats;
    KvmHypervisor hv(host(100 * pageSize), stats);
    VmId vm = hv.createVm("vm", 100 * pageSize, 0);

    KsmConfig kcfg;
    kcfg.pagesToScan = 1000;
    KsmScanner scanner(hv, kcfg, stats);

    KsmTunedConfig tcfg;
    tcfg.boostPages = 2000;
    tcfg.decayPages = -300;
    tcfg.minPages = 100;
    tcfg.maxPages = 8000;
    tcfg.freeThreshold = 0.20;
    KsmTuned tuned(hv, scanner, tcfg, stats);

    // Slack host: decay toward the floor.
    tuned.step();
    EXPECT_EQ(scanner.config().pagesToScan, 700u);
    for (int i = 0; i < 10; ++i)
        tuned.step();
    EXPECT_EQ(scanner.config().pagesToScan, tcfg.minPages);
    EXPECT_GT(tuned.decays(), 0u);
    EXPECT_EQ(tuned.boosts(), 0u);

    // Commit >80% of the host: boost toward the ceiling.
    for (Gfn g = 0; g < 90; ++g)
        hv.writePage(vm, g, PageData::filled(1, g));
    for (int i = 0; i < 10; ++i)
        tuned.step();
    EXPECT_EQ(scanner.config().pagesToScan, tcfg.maxPages);
    EXPECT_GT(tuned.boosts(), 0u);
}

TEST(KsmTuned, AttachRunsPeriodically)
{
    StatSet stats;
    KvmHypervisor hv(host(64 * pageSize), stats);
    hv.createVm("vm", 16 * pageSize, 0);
    KsmConfig kcfg;
    KsmScanner scanner(hv, kcfg, stats);
    KsmTunedConfig tcfg;
    tcfg.monitorIntervalMs = 100;
    KsmTuned tuned(hv, scanner, tcfg, stats);

    sim::EventQueue queue;
    tuned.attach(queue);
    queue.runUntil(1000);
    EXPECT_EQ(tuned.boosts() + tuned.decays(), 10u);
    tuned.detach();
    queue.runUntil(2000);
    EXPECT_EQ(queue.pending(), 0u);
}

TEST(SharingMonitor, RecordsConvergence)
{
    StatSet stats;
    KvmHypervisor hv(host(1024 * pageSize), stats);
    VmId a = hv.createVm("a", 1 * MiB, 0);
    VmId b = hv.createVm("b", 1 * MiB, 0);
    KsmConfig kcfg;
    kcfg.pagesToScan = 100000;
    KsmScanner scanner(hv, kcfg, stats);

    for (Gfn g = 0; g < 32; ++g) {
        hv.writePage(a, g, PageData::filled(1, g));
        hv.writePage(b, g, PageData::filled(1, g));
    }

    analysis::SharingMonitor monitor(hv, scanner);
    sim::EventQueue queue;
    monitor.attach(queue, 100);
    scanner.attach(queue);
    queue.runUntil(1000);

    const auto &samples = monitor.samples();
    ASSERT_GE(samples.size(), 5u);
    // Sharing converges: first sample has nothing, the last has all 32
    // duplicates, and the curve is monotone.
    EXPECT_EQ(samples.front().pagesSharing, 0u);
    EXPECT_EQ(samples.back().pagesSharing, 32u);
    for (std::size_t i = 1; i < samples.size(); ++i)
        EXPECT_GE(samples[i].pagesSharing, samples[i - 1].pagesSharing);

    EXPECT_NE(monitor.renderTable().find("pages_sharing"),
              std::string::npos);
    EXPECT_NE(monitor.renderCsv().find("tick_ms"), std::string::npos);
}

TEST(Placement, FingerprintOverlapsMatchIntuition)
{
    auto dt = workload::dayTraderIntel();
    auto tw = workload::tpcwJava();
    auto tb = workload::tuscanyBigbank();

    auto f_dt = SharingFingerprint::forWorkload(dt, true);
    auto f_dt2 = SharingFingerprint::forWorkload(dt, true);
    auto f_tw = SharingFingerprint::forWorkload(tw, true);
    auto f_tb = SharingFingerprint::forWorkload(tb, true);

    // Identical workloads share everything they expose.
    EXPECT_EQ(f_dt.sharedWith(f_dt2), f_dt.totalBytes());
    // Same middleware (WAS): share kernel + libs + cache, not payload.
    EXPECT_GT(f_dt.sharedWith(f_tw), f_dt.sharedWith(f_tb));
    // Different middleware still shares the kernel + JVM libraries.
    EXPECT_GT(f_dt.sharedWith(f_tb), 0u);
    // Symmetry.
    EXPECT_EQ(f_dt.sharedWith(f_tb), f_tb.sharedWith(f_dt));
}

TEST(Placement, GreedyPlannerGroupsSimilarWorkloads)
{
    // 2x DayTrader, 2x TPC-W, 2x Tuscany onto two 3-slot hosts: the
    // planner must put both Tuscany guests on the same host (they
    // share nothing with WAS beyond kernel+JVM), keeping WAS together.
    std::vector<workload::WorkloadSpec> specs = {
        workload::dayTraderIntel(), workload::tuscanyBigbank(),
        workload::tpcwJava(),       workload::dayTraderIntel(),
        workload::tuscanyBigbank(), workload::tpcwJava(),
    };
    auto placement = PlacementPlanner::plan(specs, 3, true);
    ASSERT_EQ(placement.size(), 2u);
    ASSERT_EQ(placement[0].size(), 3u);
    ASSERT_EQ(placement[1].size(), 3u);

    // Find the host holding VM 1 (Tuscany): VM 4 (the other Tuscany)
    // must be on the same host.
    for (const auto &hostvms : placement) {
        const bool has1 = std::count(hostvms.begin(), hostvms.end(), 1);
        const bool has4 = std::count(hostvms.begin(), hostvms.end(), 4);
        EXPECT_EQ(has1, has4);
    }

    // Estimated sharing of the plan beats a round-robin split.
    std::vector<SharingFingerprint> fps;
    for (const auto &s : specs)
        fps.push_back(SharingFingerprint::forWorkload(s, true));
    const Bytes planned =
        PlacementPlanner::estimateHostSharing(fps, placement[0]) +
        PlacementPlanner::estimateHostSharing(fps, placement[1]);
    const Bytes round_robin =
        PlacementPlanner::estimateHostSharing(fps, {0, 2, 4}) +
        PlacementPlanner::estimateHostSharing(fps, {1, 3, 5});
    EXPECT_GE(planned, round_robin);
}
