/**
 * @file
 * Tests for the analysis/related-work extensions: smaps reporting, the
 * offline dump format, guest page-cache reclaim, the balloon driver,
 * and the compressed swap tier's end-to-end behaviour.
 */

#include <gtest/gtest.h>

#include "analysis/accounting.hh"
#include "analysis/dump_format.hh"
#include "analysis/forensics.hh"
#include "analysis/smaps.hh"
#include "base/stats.hh"
#include "guest/balloon.hh"
#include "guest/guest_os.hh"
#include "hv/hypervisor.hh"

using namespace jtps;
using guest::BalloonDriver;
using guest::FileImage;
using guest::GuestOs;
using guest::MemCategory;
using guest::Vma;
using hv::KvmHypervisor;
using mem::PageData;

namespace
{

struct ExtFixture : ::testing::Test
{
    StatSet stats;
    hv::HostConfig host_cfg;
    std::unique_ptr<KvmHypervisor> hv;
    std::unique_ptr<GuestOs> os;

    void
    SetUp() override
    {
        host_cfg.ramBytes = 512 * MiB;
        host_cfg.reserveBytes = 0;
        hv = std::make_unique<KvmHypervisor>(host_cfg, stats);
        VmId vm = hv->createVm("vm", 128 * MiB, 0);
        os = std::make_unique<GuestOs>(*hv, vm, "vm", 321);
    }
};

} // namespace

// ---------------------------------------------------------------------
// smaps
// ---------------------------------------------------------------------

TEST_F(ExtFixture, SmapsCountsRssPssAndSwap)
{
    Pid pid = os->spawn("p", true);
    Vma *vma = os->mmapAnon(pid, 16 * pageSize, MemCategory::JavaHeap,
                            "heap");
    for (std::uint64_t i = 0; i < 8; ++i)
        os->writePage(vma, i, PageData::filled(1, i));

    analysis::ProcessSmaps smaps = analysis::computeSmaps(*os, pid);
    ASSERT_EQ(smaps.entries.size(), 1u);
    const auto &e = smaps.entries[0];
    EXPECT_EQ(e.name, "heap");
    EXPECT_EQ(e.size, 16 * pageSize);
    EXPECT_EQ(e.rss, 8 * pageSize);
    EXPECT_DOUBLE_EQ(e.pss, 8.0 * pageSize); // nothing shared yet
    EXPECT_EQ(e.privateClean, 8 * pageSize);
    EXPECT_EQ(e.sharedClean, 0u);
    EXPECT_EQ(e.swap, 0u);
}

TEST_F(ExtFixture, SmapsSeesTpsSharingTheGuestCannot)
{
    VmId vm2 = hv->createVm("vm2", 128 * MiB, 0);
    GuestOs os2(*hv, vm2, "vm2", 654);

    Pid p1 = os->spawn("p", true);
    Pid p2 = os2.spawn("p", true);
    Vma *v1 = os->mmapAnon(p1, 4 * pageSize, MemCategory::JvmWork, "x");
    Vma *v2 = os2.mmapAnon(p2, 4 * pageSize, MemCategory::JvmWork, "x");
    for (std::uint64_t i = 0; i < 4; ++i) {
        os->writePage(v1, i, PageData::filled(2, i));
        os2.writePage(v2, i, PageData::filled(2, i));
    }
    hv->collapseIdenticalPages();

    analysis::ProcessSmaps smaps = analysis::computeSmaps(*os, p1);
    const auto &e = smaps.entries[0];
    EXPECT_EQ(e.rss, 4 * pageSize);
    EXPECT_EQ(e.sharedClean, 4 * pageSize);
    EXPECT_NEAR(e.pss, 2.0 * pageSize, 1.0); // split two ways
}

TEST_F(ExtFixture, SmapsReportsHostSwappedPages)
{
    StatSet s2;
    hv::HostConfig tiny;
    tiny.ramBytes = 8 * pageSize;
    tiny.reserveBytes = 0;
    KvmHypervisor small_hv(tiny, s2);
    VmId id = small_hv.createVm("vm", 1 * MiB, 0);
    GuestOs small_os(small_hv, id, "vm", 5);
    Pid pid = small_os.spawn("p", false);
    Vma *vma = small_os.mmapAnon(pid, 12 * pageSize,
                                 MemCategory::JvmWork, "x");
    for (std::uint64_t i = 0; i < 12; ++i)
        small_os.writePage(vma, i, PageData::filled(3, i));

    analysis::ProcessSmaps smaps = analysis::computeSmaps(small_os, pid);
    const auto &e = smaps.entries[0];
    EXPECT_EQ(e.rss, 8 * pageSize);
    EXPECT_EQ(e.swap, 4 * pageSize);
    EXPECT_NE(analysis::renderSmaps(smaps).find("Swap:"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// dump format
// ---------------------------------------------------------------------

TEST_F(ExtFixture, DumpRoundTripPreservesAccounting)
{
    guest::KernelConfig k;
    k.textBytes = 512 * KiB;
    k.dataBytes = 256 * KiB;
    k.slabBytes = 256 * KiB;
    k.sharedBootCacheBytes = 512 * KiB;
    k.privateBootCacheBytes = 256 * KiB;
    os->bootKernel(k);
    os->spawnDaemon("d", 128 * KiB, 128 * KiB);
    hv->collapseIdenticalPages();

    std::vector<const GuestOs *> guests = {os.get()};
    analysis::Snapshot snap = analysis::captureSnapshot(*hv, guests);
    const std::string dump = analysis::writeDump(snap);
    analysis::Snapshot parsed = analysis::parseDump(dump);

    EXPECT_EQ(parsed.vmCount, snap.vmCount);
    EXPECT_EQ(parsed.totalResidentFrames, snap.totalResidentFrames);
    EXPECT_EQ(parsed.frames.size(), snap.frames.size());

    analysis::OwnerAccounting a(snap), b(parsed);
    EXPECT_EQ(a.attributedBytes(), b.attributedBytes());
    EXPECT_EQ(a.vmBreakdown(0).kernel, b.vmBreakdown(0).kernel);
    EXPECT_EQ(a.vmBreakdown(0).vmSelf, b.vmBreakdown(0).vmSelf);
}

TEST_F(ExtFixture, DumpIsDeterministic)
{
    Pid pid = os->spawn("p", false);
    Vma *vma = os->mmapAnon(pid, 8 * pageSize, MemCategory::JvmWork, "x");
    for (std::uint64_t i = 0; i < 8; ++i)
        os->writePage(vma, i, PageData::filled(4, i));

    std::vector<const GuestOs *> guests = {os.get()};
    const std::string d1 =
        analysis::writeDump(analysis::captureSnapshot(*hv, guests));
    const std::string d2 =
        analysis::writeDump(analysis::captureSnapshot(*hv, guests));
    EXPECT_EQ(d1, d2);
    EXPECT_NE(d1.find("jtpsdump 1"), std::string::npos);
}

// ---------------------------------------------------------------------
// page-cache reclaim + balloon
// ---------------------------------------------------------------------

TEST_F(ExtFixture, ReclaimDropsOnlyUnmappedCachePages)
{
    // 32 cached pages; 4 of them mapped by a process.
    FileImage big = FileImage::shared("/opt/data", 28 * pageSize);
    os->readFile(big);
    FileImage lib = FileImage::shared("/opt/lib", 4 * pageSize);
    Pid pid = os->spawn("p", false);
    Vma *vma = os->mmapFile(pid, lib, MemCategory::Code);
    for (std::uint64_t i = 0; i < 4; ++i)
        os->touch(vma, i);
    ASSERT_EQ(os->pageCachePages(), 32u);

    // Ask for everything: only the 28 unmapped pages may go.
    const std::uint64_t reclaimed = os->reclaimPageCache(1000);
    EXPECT_EQ(reclaimed, 28u);
    EXPECT_EQ(os->pageCachePages(), 4u);
    // The mapped pages still read correctly.
    EXPECT_EQ(os->readWord(vma, 2, 0), lib.pageContent(2).word[0]);
    hv->checkConsistency();
}

TEST_F(ExtFixture, ReclaimedPagesRefaultThroughFileSpaceTouches)
{
    FileImage f = FileImage::shared("/opt/data", 16 * pageSize);
    os->readFile(f);
    EXPECT_EQ(os->reclaimPageCache(16), 16u);
    EXPECT_EQ(os->pageCachePages(), 0u);
    EXPECT_EQ(os->cacheMisses(), 0u);

    os->touchFileSpace(64);
    EXPECT_GT(os->cacheMisses(), 0u);
    EXPECT_GT(os->pageCachePages(), 0u); // re-read from disk
}

TEST_F(ExtFixture, BalloonTakesFreeMemoryThenReclaimsCache)
{
    // A small guest so the balloon exhausts free memory quickly.
    VmId id = hv->createVm("small", 1 * MiB, 0); // 256 pages
    GuestOs small(*hv, id, "small", 77);
    FileImage f = FileImage::shared("/opt/data", 64 * pageSize);
    small.readFile(f);
    const std::uint64_t resident_before = hv->residentFrames();

    BalloonDriver balloon(small);
    // 32 pages come from genuinely free guest memory: no reclaim, no
    // host frames released (they were never materialized).
    EXPECT_EQ(balloon.inflate(32 * pageSize), 32 * pageSize);
    EXPECT_EQ(hv->residentFrames(), resident_before);

    // Inflating past the free memory forces cache reclaim: the 64
    // cache pages' host frames come back.
    balloon.inflate(1 * GiB);
    EXPECT_EQ(hv->residentFrames(), resident_before - 64);
    EXPECT_EQ(small.pageCachePages(), 0u);

    balloon.deflate();
    EXPECT_EQ(balloon.inflatedBytes(), 0u);
    // The guest can use its memory again.
    small.readFile(f);
    EXPECT_EQ(small.pageCachePages(), 64u);
    hv->checkConsistency();
}

TEST_F(ExtFixture, BalloonPushesAnonPagesToGuestSwap)
{
    VmId id = hv->createVm("small", 1 * MiB, 0); // 256 pages
    GuestOs small(*hv, id, "small", 78);
    Pid pid = small.spawn("p", false);
    Vma *vma = small.mmapAnon(pid, 64 * pageSize, MemCategory::JvmWork,
                              "data");
    for (std::uint64_t i = 0; i < 64; ++i)
        small.writePage(vma, i, PageData::filled(5, i));

    BalloonDriver balloon(small);
    balloon.inflate(1 * GiB); // all free memory + everything reclaimable
    EXPECT_GT(small.guestSwappedPages(), 0u);
    EXPECT_GT(small.guestSwapOuts(), 0u);

    // Reading a swapped page faults it back in with intact content.
    const std::uint64_t faults_before = small.guestMajorFaults();
    balloon.deflate(); // free room for the swap-ins
    for (std::uint64_t i = 0; i < 64; ++i) {
        ASSERT_EQ(small.readWord(vma, i, 2),
                  PageData::filled(5, i).word[2]);
    }
    EXPECT_GT(small.guestMajorFaults(), faults_before);
    EXPECT_EQ(small.guestSwappedPages(), 0u);
    hv->checkConsistency();
}

TEST_F(ExtFixture, GuestSwapPreservesContentUnderOvercommit)
{
    // Guest with 64 pages of RAM running a 128-page working set: the
    // guest must swap against its own device and never lose data.
    VmId id = hv->createVm("tiny", 64 * pageSize, 0);
    GuestOs tiny(*hv, id, "tiny", 79);
    Pid pid = tiny.spawn("p", false);
    Vma *vma = tiny.mmapAnon(pid, 128 * pageSize, MemCategory::JvmWork,
                             "big");
    for (std::uint64_t i = 0; i < 128; ++i)
        tiny.writePage(vma, i, PageData::filled(6, i));
    EXPECT_GT(tiny.guestSwapOuts(), 0u);

    for (std::uint64_t i = 0; i < 128; ++i) {
        ASSERT_EQ(tiny.readWord(vma, i, 1),
                  PageData::filled(6, i).word[1])
            << "page " << i;
    }
    hv->checkConsistency();
}

TEST_F(ExtFixture, MunmapMakesFilePagesReclaimable)
{
    FileImage lib = FileImage::shared("/opt/lib", 4 * pageSize);
    Pid pid = os->spawn("p", false);
    Vma *vma = os->mmapFile(pid, lib, MemCategory::Code);
    for (std::uint64_t i = 0; i < 4; ++i)
        os->touch(vma, i);
    EXPECT_EQ(os->reclaimPageCache(1000), 0u); // all mapped
    os->munmap(pid, vma);
    EXPECT_EQ(os->reclaimPageCache(1000), 4u); // now reclaimable
}
