/**
 * @file
 * Tests for the cluster layer: flat-vector fingerprint semantics, the
 * pre-copy migration model, victim/destination selection, placement
 * determinism, the diurnal demand curve, the Scenario VM lifecycle
 * (retire/add), and — the load-bearing property — byte-identical
 * cluster results at any --fleet-threads, with and without live
 * migrations.
 */

#include <gtest/gtest.h>

#include <map>

#include "analysis/json_export.hh"
#include "base/json_writer.hh"
#include "cluster/cluster.hh"
#include "core/placement.hh"
#include "core/scenario.hh"
#include "workload/workload_spec.hh"

using namespace jtps;
using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::PlacementPolicy;
using cluster::PrecopyEstimate;
using core::PlacementPlanner;
using core::SharingFingerprint;

namespace
{

// ---------------------------------------------------------------------
// SharingFingerprint flat-vector representation
// ---------------------------------------------------------------------

TEST(Fingerprint, SetComponentKeepsSortedUniqueAndOverwrites)
{
    SharingFingerprint fp;
    fp.setComponent(50, 5 * MiB);
    fp.setComponent(10, 1 * MiB);
    fp.setComponent(90, 9 * MiB);
    fp.setComponent(30, 3 * MiB);
    ASSERT_EQ(fp.components.size(), 4u);
    for (std::size_t i = 1; i < fp.components.size(); ++i)
        EXPECT_LT(fp.components[i - 1].first, fp.components[i].first);

    fp.setComponent(30, 7 * MiB); // overwrite, not duplicate
    ASSERT_EQ(fp.components.size(), 4u);
    EXPECT_EQ(fp.components[1].first, 30u);
    EXPECT_EQ(fp.components[1].second, 7 * MiB);
    EXPECT_EQ(fp.totalBytes(), (1 + 7 + 5 + 9) * MiB);
}

TEST(Fingerprint, SharedWithMatchesMapReference)
{
    // Pseudo-random tag sets from a tiny deterministic LCG; the
    // two-pointer merge must agree with the obvious map-based overlap.
    auto lcg = [](std::uint64_t &s) {
        s = s * 6364136223846793005ULL + 1442695040888963407ULL;
        return s >> 33;
    };
    std::uint64_t seed = 12345;
    SharingFingerprint a, b;
    std::map<std::uint64_t, Bytes> ma, mb;
    for (int i = 0; i < 64; ++i) {
        const std::uint64_t tag = lcg(seed) % 97; // force collisions
        const Bytes bytes = (lcg(seed) % 512 + 1) * KiB;
        if (i % 2) {
            a.setComponent(tag, bytes);
            ma[tag] = bytes;
        } else {
            b.setComponent(tag, bytes);
            mb[tag] = bytes;
        }
    }
    Bytes want = 0;
    for (const auto &[tag, bytes] : ma) {
        auto it = mb.find(tag);
        if (it != mb.end())
            want += std::min(bytes, it->second);
    }
    EXPECT_EQ(a.sharedWith(b), want);
    EXPECT_EQ(b.sharedWith(a), want);
}

TEST(Fingerprint, SameWorkloadOverlapsMoreThanDifferent)
{
    const auto dt = workload::dayTraderIntel();
    const auto tw = workload::tpcwJava();
    const auto f1 = SharingFingerprint::forWorkload(dt, true);
    const auto f2 = SharingFingerprint::forWorkload(dt, true);
    const auto f3 = SharingFingerprint::forWorkload(tw, true);
    EXPECT_GT(f1.sharedWith(f2), f1.sharedWith(f3));
    EXPECT_GT(f1.sharedWith(f3), 0u); // kernel + base image overlap
}

// ---------------------------------------------------------------------
// Pre-copy migration model
// ---------------------------------------------------------------------

TEST(Precopy, IdleVmConvergesInOneRound)
{
    const PrecopyEstimate est =
        cluster::estimatePrecopy(100'000, 0.0, 250.0, 512, 8);
    EXPECT_EQ(est.rounds, 1u);
    EXPECT_EQ(est.pagesCopied, 100'000u);
    EXPECT_EQ(est.finalPages, 0u);
    EXPECT_DOUBLE_EQ(est.downtimeMs, 0.0);
}

TEST(Precopy, TinyResidualSkipsPrecopyEntirely)
{
    const PrecopyEstimate est =
        cluster::estimatePrecopy(400, 10.0, 250.0, 512, 8);
    EXPECT_EQ(est.rounds, 0u);
    EXPECT_EQ(est.pagesCopied, 0u);
    EXPECT_EQ(est.finalPages, 400u);
    EXPECT_DOUBLE_EQ(est.downtimeMs, 400.0 / 250.0);
}

TEST(Precopy, ConvergingDirtyRateIteratesUntilStopThreshold)
{
    // 10k pages, link 250/ms, dirty 50/ms: each round shrinks the
    // residual 5x (10000 -> 2000 -> 400 <= 512).
    const PrecopyEstimate est =
        cluster::estimatePrecopy(10'000, 50.0, 250.0, 512, 8);
    EXPECT_EQ(est.rounds, 2u);
    EXPECT_EQ(est.pagesCopied, 12'000u);
    EXPECT_EQ(est.finalPages, 400u);
    EXPECT_DOUBLE_EQ(est.downtimeMs, 400.0 / 250.0);
}

TEST(Precopy, DivergingDirtyRateFallsBackToStopAndCopy)
{
    // Dirtying outruns the link: iterating cannot shrink the set.
    const PrecopyEstimate est =
        cluster::estimatePrecopy(10'000, 300.0, 250.0, 512, 8);
    EXPECT_EQ(est.rounds, 0u);
    EXPECT_EQ(est.finalPages, 10'000u);
    EXPECT_DOUBLE_EQ(est.downtimeMs, 10'000.0 / 250.0);
}

TEST(Precopy, RoundCapBoundsTheSchedule)
{
    // Residual shrinks slowly (dirty 200 vs link 250: 0.8x per round);
    // the cap stops it before the threshold is reached.
    const PrecopyEstimate est =
        cluster::estimatePrecopy(100'000, 200.0, 250.0, 512, 3);
    EXPECT_EQ(est.rounds, 3u);
    EXPECT_GT(est.finalPages, 512u);
}

// ---------------------------------------------------------------------
// Victim selection
// ---------------------------------------------------------------------

TEST(Victim, LeastOverlappingMemberIsChosen)
{
    // Two DayTraders (big mutual overlap) + one TPC-W: the TPC-W VM
    // forfeits the least sharing when evicted.
    const auto dt = workload::dayTraderIntel();
    const auto tw = workload::tpcwJava();
    std::vector<SharingFingerprint> fps = {
        SharingFingerprint::forWorkload(dt, true),
        SharingFingerprint::forWorkload(tw, true),
        SharingFingerprint::forWorkload(dt, true),
    };
    const std::vector<std::size_t> members = {0, 1, 2};
    EXPECT_EQ(cluster::chooseMigrationVictim(fps, members), 1u);
}

TEST(Victim, TieBreaksToLowestIndex)
{
    const auto dt = workload::dayTraderIntel();
    std::vector<SharingFingerprint> fps = {
        SharingFingerprint::forWorkload(dt, true),
        SharingFingerprint::forWorkload(dt, true),
        SharingFingerprint::forWorkload(dt, true),
    };
    // members need not be 0-based host indices
    const std::vector<std::size_t> members = {4, 5, 6};
    EXPECT_EQ(cluster::chooseMigrationVictim(fps, members), 4u);
}

// ---------------------------------------------------------------------
// Placement determinism
// ---------------------------------------------------------------------

TEST(Placement, IdenticalSpecsFillHostsInIndexOrder)
{
    // All-equal gains tie-break to lowest VM index, lowest host: the
    // greedy packer fills host 0 first, then host 1.
    std::vector<workload::WorkloadSpec> specs(
        4, workload::dayTraderIntel());
    const auto placement = PlacementPlanner::plan(specs, 2, true);
    ASSERT_EQ(placement.size(), 2u);
    EXPECT_EQ(placement[0], (std::vector<std::size_t>{0, 1}));
    EXPECT_EQ(placement[1], (std::vector<std::size_t>{2, 3}));
}

TEST(Placement, PlanIsReproducible)
{
    std::vector<workload::WorkloadSpec> specs;
    for (int i = 0; i < 8; ++i) {
        switch (i % 3) {
        case 0: specs.push_back(workload::dayTraderIntel()); break;
        case 1: specs.push_back(workload::tpcwJava()); break;
        default: specs.push_back(workload::tuscanyBigbank()); break;
        }
    }
    const auto p1 = PlacementPlanner::plan(specs, 4, true);
    const auto p2 = PlacementPlanner::plan(specs, 4, true);
    EXPECT_EQ(p1, p2);
}

// ---------------------------------------------------------------------
// Diurnal demand curve
// ---------------------------------------------------------------------

TEST(Diurnal, CurveEndpointsAndPeriodicity)
{
    ClusterConfig cfg;
    cfg.host.warmupMs = 8'000; // ctor wants a multiple of roundMs
    cfg.peakUsers = 1'000'000.0;
    cfg.troughFraction = 0.35;
    cfg.dayMs = 240'000;
    const Cluster fleet(cfg, std::vector<workload::WorkloadSpec>(
                                 4, workload::dayTraderIntel()));
    EXPECT_NEAR(fleet.usersAt(0), 350'000.0, 1.0);           // trough
    EXPECT_NEAR(fleet.usersAt(120'000), 1'000'000.0, 1.0);   // peak
    EXPECT_NEAR(fleet.usersAt(240'000), fleet.usersAt(0), 1e-6);
    EXPECT_NEAR(fleet.usersAt(60'000),
                350'000.0 + 0.5 * 650'000.0, 1.0); // quarter day
}

// ---------------------------------------------------------------------
// Scenario VM lifecycle (the migration primitive)
// ---------------------------------------------------------------------

core::ScenarioConfig
smallHostConfig()
{
    core::ScenarioConfig cfg;
    cfg.enableClassSharing = true;
    cfg.epochMs = 1'000;
    cfg.warmupMs = 4'000;
    cfg.steadyMs = 4'000;
    cfg.host.ramBytes = 3 * GiB;
    return cfg;
}

TEST(Lifecycle, RetireReleasesMemoryAndAddRebuilds)
{
    core::ScenarioConfig cfg = smallHostConfig();
    std::vector<workload::WorkloadSpec> specs = {
        workload::dayTraderIntel(), workload::tpcwJava()};
    core::Scenario s(cfg, specs);
    s.build();
    s.runFor(4'000);

    ASSERT_EQ(s.activeVmCount(), 2u);
    const std::uint64_t resident_before = s.hv().residentFrames();
    s.retireVm(0);
    EXPECT_FALSE(s.vmActive(0));
    EXPECT_TRUE(s.vmActive(1));
    EXPECT_EQ(s.activeVmCount(), 1u);
    EXPECT_LT(s.hv().residentFrames(), resident_before);
    EXPECT_EQ(s.stats().get("hv.vms_released"), 1u);

    s.runFor(4'000);
    // Retired VMs read all-zero in new epoch rows.
    const auto &row = s.epochHistory().back();
    EXPECT_EQ(row[0].requests, 0u);
    EXPECT_GT(row[1].requests, 0u);

    const std::size_t idx = s.addVm(workload::tuscanyBigbank());
    EXPECT_EQ(idx, 2u);
    EXPECT_EQ(s.activeVmCount(), 2u);
    s.runFor(4'000);
    EXPECT_GT(s.epochHistory().back()[2].requests, 0u);
    s.hv().checkConsistency();
}

// ---------------------------------------------------------------------
// Cluster twin-run byte identity at any fleet-thread count
// ---------------------------------------------------------------------

ClusterConfig
smallClusterConfig(unsigned fleet_threads)
{
    ClusterConfig cfg;
    cfg.hosts = 2;
    cfg.slotsPerHost = 3;
    cfg.placement = PlacementPolicy::DedupAware;
    cfg.fleetThreads = fleet_threads;
    cfg.roundMs = 4'000;
    cfg.dayMs = 48'000;
    cfg.peakUsers = 20'000.0;
    cfg.host = smallHostConfig();
    cfg.host.pmlRingSlots = 512;
    cfg.host.adaptiveBalloon = true;
    return cfg;
}

std::vector<workload::WorkloadSpec>
smallFleet()
{
    return {workload::dayTraderIntel(), workload::dayTraderIntel(),
            workload::tpcwJava(), workload::tuscanyBigbank()};
}

/** Cluster document + every per-host trace, as one string. */
std::string
clusterSignature(const Cluster &fleet)
{
    JsonWriter w;
    w.beginObject();
    fleet.writeJsonFields(w);
    w.key("traces").beginArray();
    for (std::size_t h = 0; h < fleet.hostCount(); ++h)
        analysis::writeTraceJson(w, fleet.host(h).trace());
    w.endArray();
    w.endObject();
    return w.str();
}

std::string
runSignature(const ClusterConfig &cfg, Tick total_ms)
{
    Cluster fleet(cfg, smallFleet());
    fleet.build();
    for (std::size_t h = 0; h < fleet.hostCount(); ++h)
        fleet.host(h).trace().enable();
    fleet.run(total_ms);
    for (std::size_t h = 0; h < fleet.hostCount(); ++h)
        fleet.host(h).hv().checkConsistency();
    return clusterSignature(fleet);
}

TEST(ClusterDeterminism, FleetThreadsDoNotChangeResults)
{
    const std::string serial = runSignature(smallClusterConfig(1),
                                            12'000);
    const std::string parallel = runSignature(smallClusterConfig(4),
                                              12'000);
    EXPECT_EQ(serial, parallel);
    EXPECT_NE(serial.find("host0"), std::string::npos);
    EXPECT_NE(serial.find("host1"), std::string::npos);
}

TEST(ClusterDeterminism, MigrationRunsAreThreadCountInvariant)
{
    // Starve the hosts so the fault-rate trigger fires and at least
    // one migration executes — then the whole decision chain (trigger,
    // victim, destination, downtime model, rebuild on the new host)
    // must be identical at any fleet-thread count.
    auto cfg = smallClusterConfig(1);
    cfg.host.host.ramBytes = 1 * GiB;
    cfg.migrationEnabled = true;
    cfg.faultsPerSecPerVmThreshold = 0.25;

    Cluster serial(cfg, smallFleet());
    serial.build();
    serial.run(16'000);
    for (std::size_t h = 0; h < serial.hostCount(); ++h)
        serial.host(h).hv().checkConsistency();

    cfg.fleetThreads = 4;
    Cluster parallel(cfg, smallFleet());
    parallel.build();
    parallel.run(16'000);

    EXPECT_GT(serial.stats().get("migration.count"), 0u);
    EXPECT_EQ(serial.stats().render(), parallel.stats().render());
    EXPECT_EQ(clusterSignature(serial), clusterSignature(parallel));
    // The mover's location bookkeeping agrees too.
    ASSERT_EQ(serial.vmLocations().size(),
              parallel.vmLocations().size());
    for (std::size_t l = 0; l < serial.vmLocations().size(); ++l) {
        EXPECT_EQ(serial.vmLocations()[l].host,
                  parallel.vmLocations()[l].host);
        EXPECT_EQ(serial.vmLocations()[l].index,
                  parallel.vmLocations()[l].index);
        EXPECT_EQ(serial.vmLocations()[l].migrations,
                  parallel.vmLocations()[l].migrations);
    }
}

TEST(ClusterDeterminism, HostLabelsScopeStatsAndTraces)
{
    auto cfg = smallClusterConfig(1);
    Cluster fleet(cfg, smallFleet());
    fleet.build();
    fleet.run(4'000);
    EXPECT_EQ(fleet.host(0).stats().scope(), "host0");
    EXPECT_EQ(fleet.host(1).stats().scope(), "host1");
    EXPECT_EQ(fleet.host(0).trace().scope(), "host0");
    // Scoped render prefixes every line with the host identity.
    const std::string render = fleet.host(1).stats().render();
    EXPECT_NE(render.find("host1"), std::string::npos);
}

TEST(ClusterAccounting, SlaCountersPartitionEpochs)
{
    auto cfg = smallClusterConfig(2);
    Cluster fleet(cfg, smallFleet());
    fleet.build();
    fleet.run(12'000);
    const auto &st = fleet.stats();
    EXPECT_EQ(st.get("cluster.rounds"), 3u);
    EXPECT_GT(st.get("cluster.epochs"), 0u);
    EXPECT_EQ(st.get("cluster.sla_met_epochs") +
                  st.get("cluster.sla_missed_epochs"),
              st.get("cluster.epochs"));
    EXPECT_GE(st.get("cluster.offered_requests"),
              st.get("cluster.served_requests"));
    EXPECT_GT(st.get("cluster.resident_frames"), 0u);
}

} // namespace
