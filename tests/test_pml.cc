/**
 * @file
 * Unit tests for the Page-Modification-Log model: ring append/dedup
 * semantics, overflow, drain cycles, the swap-in re-log rule, frame
 * recycling, the working-set estimator, and the adaptive balloon
 * governor built on it.
 */

#include <gtest/gtest.h>

#include "analysis/wss_estimator.hh"
#include "base/stats.hh"
#include "base/units.hh"
#include "core/balloon_governor.hh"
#include "guest/guest_os.hh"
#include "hv/hypervisor.hh"
#include "ksm/ksm_scanner.hh"
#include "sim/event_queue.hh"

using namespace jtps;
using hv::HostConfig;
using hv::KvmHypervisor;
using hv::PageState;
using mem::PageData;

namespace
{

HostConfig
pmlHost(std::uint32_t slots, Bytes ram = 64 * MiB)
{
    HostConfig cfg;
    cfg.ramBytes = ram;
    cfg.reserveBytes = 0;
    cfg.pmlRingSlots = slots;
    return cfg;
}

/** Kernel sized for an 8 MiB test guest (defaults model ~212 MiB). */
guest::KernelConfig
tinyKernel()
{
    guest::KernelConfig k;
    k.textBytes = 256 * KiB;
    k.dataBytes = 256 * KiB;
    k.slabBytes = 256 * KiB;
    k.sharedBootCacheBytes = 1 * MiB;
    k.privateBootCacheBytes = 1 * MiB;
    return k;
}

} // namespace

TEST(PmlRing, AppendsOncePerDrainCycle)
{
    StatSet stats;
    KvmHypervisor hv(pmlHost(16), stats);
    VmId vm = hv.createVm("vm", 1 * MiB, 0);

    // Three writes to one page, two to another: one entry per page.
    hv.writeWord(vm, 3, 0, 1);
    hv.writeWord(vm, 3, 1, 2);
    hv.writePage(vm, 3, PageData::filled(7, 7));
    hv.writeWord(vm, 9, 0, 5);
    hv.writeWord(vm, 9, 0, 6);

    const auto &ring = hv.pmlEntries(vm);
    ASSERT_EQ(ring.size(), 2u);
    EXPECT_EQ(ring[0].gfn, 3u);
    EXPECT_EQ(ring[1].gfn, 9u);
    // The generation is stamped at append time; later writes bump the
    // frame's writeGen without touching the entry (drain keys on gfn
    // alone, so the field is informational).
    EXPECT_GT(ring[0].gen, 0u);
    EXPECT_LE(ring[0].gen,
              hv.frames().writeGen(hv.translate(vm, 3)));
    EXPECT_EQ(hv.vm(vm).pmlAppendsTotal, 2u);
    EXPECT_EQ(stats.get("hv.pml_appends"), 2u);
    EXPECT_FALSE(hv.pmlOverflowed(vm));
    hv.checkConsistency();
}

TEST(PmlRing, ResetStartsANewDrainCycle)
{
    StatSet stats;
    KvmHypervisor hv(pmlHost(16), stats);
    VmId vm = hv.createVm("vm", 1 * MiB, 0);

    hv.writeWord(vm, 3, 0, 1);
    ASSERT_EQ(hv.pmlEntries(vm).size(), 1u);
    hv.pmlResetRing(vm);
    EXPECT_TRUE(hv.pmlEntries(vm).empty());

    // Unwritten since the drain: nothing re-logs...
    EXPECT_EQ(hv.readWord(vm, 3, 0), 1u);
    EXPECT_TRUE(hv.pmlEntries(vm).empty());
    // ...but the next write does, with the fresh generation.
    hv.writeWord(vm, 3, 0, 2);
    ASSERT_EQ(hv.pmlEntries(vm).size(), 1u);
    EXPECT_EQ(hv.pmlEntries(vm)[0].gfn, 3u);
    EXPECT_EQ(hv.vm(vm).pmlAppendsTotal, 2u);
    hv.checkConsistency();
}

TEST(PmlRing, OverflowFlagsTheVmAndCountsDrops)
{
    StatSet stats;
    KvmHypervisor hv(pmlHost(2), stats);
    VmId vm = hv.createVm("vm", 1 * MiB, 0);

    for (Gfn g = 0; g < 5; ++g)
        hv.writeWord(vm, g, 0, g + 1);

    EXPECT_EQ(hv.pmlEntries(vm).size(), 2u);
    EXPECT_TRUE(hv.pmlOverflowed(vm));
    EXPECT_EQ(hv.vm(vm).pmlAppendsTotal, 2u);
    EXPECT_EQ(stats.get("hv.pml_overflows"), 3u);

    // A dropped page keeps its logged bit clear, so after the drain it
    // can log again immediately.
    hv.pmlResetRing(vm);
    EXPECT_FALSE(hv.pmlOverflowed(vm));
    hv.writeWord(vm, 4, 0, 99);
    ASSERT_EQ(hv.pmlEntries(vm).size(), 1u);
    EXPECT_EQ(hv.pmlEntries(vm)[0].gfn, 4u);
    hv.checkConsistency();
}

TEST(PmlRing, DisabledRingsLogNothing)
{
    StatSet stats;
    KvmHypervisor hv(pmlHost(0), stats);
    VmId vm = hv.createVm("vm", 1 * MiB, 0);
    hv.writeWord(vm, 0, 0, 1);
    EXPECT_FALSE(hv.pmlEnabled());
    EXPECT_TRUE(hv.pmlEntries(vm).empty());
    EXPECT_EQ(stats.get("hv.pml_appends"), 0u);
    hv.checkConsistency();
}

TEST(PmlRing, SwapInRelogsRestoredPages)
{
    // A page the host paged out and back in has a fresh frame and a
    // fresh write generation: every scanner skip proof is void, and
    // the generation walk would re-examine it. The dirty log must say
    // so too, or a log-driven pass misses merges after host paging —
    // swapIn() re-logs every restored mapping.
    StatSet stats;
    KvmHypervisor hv(pmlHost(4096, 48 * pageSize), stats);
    VmId vm = hv.createVm("vm", 1 * MiB, 0);

    // Overcommit: 64 distinct pages through a 48-frame host forces
    // evictions.
    for (Gfn g = 0; g < 64; ++g)
        hv.writePage(vm, g, PageData::filled(1, g));
    ASSERT_GT(hv.vm(vm).swappedPages, 0u);

    Gfn victim = invalidFrame;
    for (Gfn g = 0; g < 64; ++g) {
        if (hv.vm(vm).ept.entry(g).state == PageState::Swapped) {
            victim = g;
            break;
        }
    }
    ASSERT_NE(victim, invalidFrame);

    // Drain, then fault the victim back in with a *read*: no guest
    // write happens, yet the ring must pick the page up.
    hv.pmlResetRing(vm);
    hv.touchPage(vm, victim);
    ASSERT_EQ(hv.vm(vm).ept.entry(victim).state, PageState::Resident);
    bool logged = false;
    for (const auto &e : hv.pmlEntries(vm))
        logged = logged || e.gfn == victim;
    EXPECT_TRUE(logged);
    hv.checkConsistency();
}

TEST(PmlRing, RecycledGfnIsRescannedFromLiveState)
{
    // Regression: a ring entry must never act as a content verdict.
    // Here gfn 0's entry goes stale (discard + reallocation with new
    // content) before the scanner drains; the log-driven pass must
    // merge the *new* content with its true duplicate and leave the
    // page holding the old content alone.
    StatSet stats;
    KvmHypervisor hv(pmlHost(4096), stats);
    VmId a = hv.createVm("a", 1 * MiB, 0);
    VmId b = hv.createVm("b", 1 * MiB, 0);

    const PageData oldContent = PageData::filled(11, 1);
    const PageData newContent = PageData::filled(22, 2);
    hv.writePage(a, 0, oldContent); // ring entry for (a, 0), gen G1
    hv.writePage(b, 1, oldContent); // a would-be partner for G1 content
    hv.discardPage(a, 0);
    hv.writePage(a, 0, newContent); // recycled gfn, different content
    hv.writePage(b, 0, newContent);

    ksm::KsmConfig kcfg;
    kcfg.pagesToScan = 100000;
    kcfg.usePml = true;
    ksm::KsmScanner scanner(hv, kcfg, stats);
    scanner.runToQuiescence();

    // (a,0) merged with (b,0) on the live content; (b,1) kept its own
    // frame (its duplicate died with the discard).
    EXPECT_EQ(hv.translate(a, 0), hv.translate(b, 0));
    EXPECT_NE(hv.translate(b, 1), hv.translate(a, 0));
    EXPECT_EQ(*hv.peek(a, 0), newContent);
    EXPECT_EQ(*hv.peek(b, 1), oldContent);
    hv.checkConsistency();
}

TEST(WssEstimator, CountsDirtiedPagesPerWindow)
{
    StatSet stats;
    KvmHypervisor hv(pmlHost(4096), stats);
    VmId vm = hv.createVm("vm", 2 * MiB, 0);

    analysis::WssConfig wcfg;
    wcfg.windows = 1; // raw per-window deltas
    wcfg.drainRings = true;
    analysis::WssEstimator wss(hv, wcfg, stats);

    for (Gfn g = 0; g < 20; ++g)
        hv.writeWord(vm, g, 0, g + 1);
    wss.sample();
    EXPECT_EQ(wss.wssPages(vm), 20u);

    // Rewriting the same 5 pages many times is a 5-page working set.
    for (int rep = 0; rep < 8; ++rep)
        for (Gfn g = 0; g < 5; ++g)
            hv.writeWord(vm, g, 0, rep);
    wss.sample();
    EXPECT_EQ(wss.wssPages(vm), 5u);

    // Quiet window: the estimate decays to zero.
    wss.sample();
    EXPECT_EQ(wss.wssPages(vm), 0u);
    EXPECT_EQ(wss.samples(), 3u);
    EXPECT_EQ(stats.get("wss.samples"), 3u);
}

TEST(WssEstimator, WindowMaxRidesOutQuietWindows)
{
    StatSet stats;
    KvmHypervisor hv(pmlHost(4096), stats);
    VmId vm = hv.createVm("vm", 2 * MiB, 0);

    analysis::WssConfig wcfg;
    wcfg.windows = 3;
    wcfg.drainRings = true;
    analysis::WssEstimator wss(hv, wcfg, stats);

    for (Gfn g = 0; g < 12; ++g)
        hv.writeWord(vm, g, 0, 1);
    wss.sample();
    EXPECT_EQ(wss.wssPages(vm), 12u);
    wss.sample(); // quiet
    EXPECT_EQ(wss.wssPages(vm), 12u); // still inside the window max
    wss.sample(); // quiet
    wss.sample(); // quiet: the busy window has aged out
    EXPECT_EQ(wss.wssPages(vm), 0u);
    EXPECT_EQ(wss.totalWssPages(), 0u);
}

TEST(BalloonGovernor, ResizesTowardWorkingSet)
{
    StatSet stats;
    KvmHypervisor hv(pmlHost(4096), stats);
    VmId vm_id = hv.createVm("vm", 8 * MiB, 0);
    guest::GuestOs os(hv, vm_id, "vm", 1);
    os.bootKernel(tinyKernel());

    analysis::WssConfig wcfg;
    wcfg.windows = 1;
    wcfg.drainRings = true;
    analysis::WssEstimator wss(hv, wcfg, stats);
    wss.sample(); // absorb boot-time writes into the first window

    core::BalloonGovernorConfig bcfg;
    bcfg.slackPages = 16;
    core::BalloonGovernor gov({&os}, wss, bcfg, stats);

    // Quiet guest: the balloon inflates toward guestPages - slack.
    wss.sample();
    const std::uint64_t target = gov.targetPages(0);
    EXPECT_EQ(target, os.guestPages() - bcfg.slackPages);
    gov.step();
    EXPECT_GT(os.balloonHeldPages(), 0u);
    EXPECT_LE(os.balloonHeldPages(), target);
    EXPECT_GE(gov.resizes(), 1u);
    EXPECT_EQ(stats.get("balloon.wss_resizes"), gov.resizes());

    // A busy window shrinks the target; the governor deflates.
    const std::uint64_t held_before = os.balloonHeldPages();
    for (Gfn g = 0; g < 200; ++g)
        hv.writeWord(vm_id, g, 0, g + 1);
    wss.sample();
    EXPECT_LT(gov.targetPages(0), target);
    gov.step();
    EXPECT_LT(os.balloonHeldPages(), held_before);
    hv.checkConsistency();
}

TEST(BalloonGovernor, MaxStepBoundsEachAdjustment)
{
    StatSet stats;
    KvmHypervisor hv(pmlHost(4096), stats);
    VmId vm_id = hv.createVm("vm", 8 * MiB, 0);
    guest::GuestOs os(hv, vm_id, "vm", 1);
    os.bootKernel(tinyKernel());

    analysis::WssConfig wcfg;
    wcfg.windows = 1;
    wcfg.drainRings = true;
    analysis::WssEstimator wss(hv, wcfg, stats);
    wss.sample();
    wss.sample(); // quiet: large inflate target

    core::BalloonGovernorConfig bcfg;
    bcfg.slackPages = 16;
    bcfg.maxStepPages = 10;
    core::BalloonGovernor gov({&os}, wss, bcfg, stats);
    gov.step();
    EXPECT_LE(os.balloonHeldPages(), 10u);
    gov.step();
    EXPECT_LE(os.balloonHeldPages(), 20u);
}

TEST(BalloonGovernor, OomPressureDeflatesTheBalloonInstead)
{
    // virtio_balloon's DEFLATE_ON_OOM: a guest whose balloon pinned
    // every reclaimable page must satisfy new allocations by taking
    // pages back from the balloon, never by dying.
    StatSet stats;
    KvmHypervisor hv(pmlHost(64), stats);
    VmId vm_id = hv.createVm("vm", 8 * MiB, 0);
    guest::GuestOs os(hv, vm_id, "vm", 1);
    os.bootKernel(tinyKernel());

    const std::uint64_t taken = os.balloonTake(os.guestPages());
    EXPECT_GT(taken, 0u);
    const std::uint64_t held = os.balloonHeldPages();

    const Pid pid = os.spawn("p", false);
    guest::Vma *vma =
        os.mmapAnon(pid, 1 * MiB, guest::MemCategory::OtherProcess, "x");
    for (std::uint64_t i = 0; i < bytesToPages(1 * MiB); ++i)
        os.writePage(vma, i, PageData::filled(21, i));
    EXPECT_LT(os.balloonHeldPages(), held);
}

TEST(BalloonGovernor, RefaultStormGrowsSlackAndBacksOff)
{
    // A dirty log cannot see a read-mostly working set: a guest that
    // keeps re-reading its page cache looks idle to the estimator and
    // gets ballooned into thrashing. The refault feedback must grow
    // that guest's protected slack and deflate, then decay the slack
    // once the storm stops.
    StatSet stats;
    KvmHypervisor hv(pmlHost(4096), stats);
    VmId vm_id = hv.createVm("vm", 8 * MiB, 0);
    guest::GuestOs os(hv, vm_id, "vm", 1);
    os.bootKernel(tinyKernel());

    analysis::WssConfig wcfg;
    wcfg.windows = 1;
    wcfg.drainRings = true;
    analysis::WssEstimator wss(hv, wcfg, stats);
    wss.sample();
    wss.sample();

    core::BalloonGovernorConfig bcfg;
    bcfg.slackPages = 16;
    bcfg.refaultTolerance = 8;
    core::BalloonGovernor gov({&os}, wss, bcfg, stats);

    // The quiet-looking guest gets ballooned hard.
    gov.step();
    const std::uint64_t held_inflated = os.balloonHeldPages();
    EXPECT_GT(held_inflated, 0u);
    EXPECT_EQ(gov.extraSlackPages(0), 0u);

    // Refault storm: the reclaimed cache comes back from disk.
    os.touchFileSpace(512);
    EXPECT_GT(os.cacheMisses(), bcfg.refaultTolerance);
    wss.sample();
    gov.step();
    EXPECT_GT(gov.extraSlackPages(0), 0u);
    EXPECT_GT(stats.get("balloon.refault_backoffs"), 0u);
    EXPECT_LT(os.balloonHeldPages(), held_inflated);

    // Calm intervals decay the extra slack back toward zero.
    const std::uint64_t slack_peak = gov.extraSlackPages(0);
    wss.sample();
    gov.step();
    EXPECT_LT(gov.extraSlackPages(0), slack_peak);
    hv.checkConsistency();
}
