/**
 * @file
 * Unit tests for the memory substrate: page content, frame table, swap.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "mem/frame_table.hh"
#include "mem/page_data.hh"
#include "mem/swap_device.hh"

using namespace jtps;
using mem::Frame;
using mem::FrameTable;
using mem::Mapping;
using mem::PageData;
using mem::SwapDevice;

TEST(PageData, ZeroProperties)
{
    PageData z = PageData::zero();
    EXPECT_TRUE(z.isZero());
    EXPECT_EQ(z, PageData::zero());
    PageData f = PageData::filled(1, 2);
    EXPECT_FALSE(f.isZero());
    EXPECT_NE(z, f);
}

TEST(PageData, FilledIsDeterministicPerTagAndSalt)
{
    EXPECT_EQ(PageData::filled(10, 20), PageData::filled(10, 20));
    EXPECT_NE(PageData::filled(10, 20), PageData::filled(10, 21));
    EXPECT_NE(PageData::filled(10, 20), PageData::filled(11, 20));
}

TEST(PageData, ChecksumTracksContent)
{
    PageData a = PageData::filled(1, 1);
    PageData b = a;
    EXPECT_EQ(a.checksum(), b.checksum());
    b.word[3] ^= 1;
    EXPECT_NE(a.checksum(), b.checksum());
    EXPECT_NE(a.digest(), b.digest());
}

TEST(PageData, ChecksumSensitiveToEverySectorPosition)
{
    // The calm filter relies on the 32-bit checksum changing when any
    // single sector changes — in either half of the sector word.
    const PageData base = PageData::filled(21, 34);
    for (unsigned s = 0; s < mem::sectorsPerPage; ++s) {
        PageData low_flip = base;
        low_flip.word[s] ^= 1;
        EXPECT_NE(base.checksum(), low_flip.checksum())
            << "low-half flip in sector " << s;

        PageData high_flip = base;
        high_flip.word[s] ^= 1ULL << 63;
        EXPECT_NE(base.checksum(), high_flip.checksum())
            << "high-half flip in sector " << s;

        PageData from_zero = PageData::zero();
        from_zero.word[s] = 1;
        EXPECT_NE(PageData::zero().checksum(), from_zero.checksum())
            << "zero-page flip in sector " << s;
    }
}

namespace
{

/**
 * A stream of pages shaped to stress the batch kernels: zero pages,
 * pool-shared contents, near-collisions (one word or one bit apart),
 * and the adversarial digest-collision family the shard suite uses
 * (contents chosen so their digests land in one residue class).
 */
std::vector<PageData>
adversarialPages(Rng &rng, std::size_t n)
{
    std::vector<PageData> pages;
    pages.reserve(n);
    while (pages.size() < n) {
        switch (rng.nextBelow(5)) {
        case 0:
            pages.push_back(PageData::zero());
            break;
        case 1:
            pages.push_back(PageData::filled(rng.nextBelow(6), 0));
            break;
        case 2: {
            // Single-word / single-bit neighbours of a shared page.
            PageData d = PageData::filled(rng.nextBelow(6), 0);
            d.word[rng.nextBelow(mem::sectorsPerPage)] ^=
                1ULL << rng.nextBelow(64);
            pages.push_back(d);
            break;
        }
        case 3: {
            // Digest-residue family (cf. test_shard's colliding
            // contents): all these digests agree mod 4.
            for (std::uint64_t tag = rng.next();; ++tag) {
                PageData d = PageData::filled(tag, 0xC0111DE5ULL);
                if (d.digest() % 4 == 1) {
                    pages.push_back(d);
                    break;
                }
            }
            break;
        }
        default:
            pages.push_back(
                PageData::filled(rng.next(), rng.next()));
            break;
        }
    }
    return pages;
}

} // namespace

TEST(PageDataBatch, MatchesScalarAtEveryWidth)
{
    // The batch kernels promise bit-identical per-page values to the
    // scalar members at any n — full lanes, ragged tails, and the
    // degenerate widths included.
    Rng rng(0xba7c4);
    const std::vector<PageData> pool = adversarialPages(rng, 64);
    for (std::size_t n = 0; n <= 40; ++n) {
        std::vector<const PageData *> ptrs(n);
        for (std::size_t i = 0; i < n; ++i)
            ptrs[i] = &pool[rng.nextBelow(pool.size())];
        std::vector<std::uint32_t> sums(n);
        std::vector<std::uint64_t> digs(n);
        mem::checksumBatch(ptrs.data(), sums.data(), n);
        mem::digestBatch(ptrs.data(), digs.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(sums[i], ptrs[i]->checksum())
                << "n=" << n << " i=" << i;
            EXPECT_EQ(digs[i], ptrs[i]->digest())
                << "n=" << n << " i=" << i;
        }
    }
}

TEST(PageDataBatch, CompareMatchesScalarEquality)
{
    Rng rng(0xc0159a5e);
    const std::vector<PageData> pool = adversarialPages(rng, 48);
    for (std::size_t n = 0; n <= 24; ++n) {
        std::vector<const PageData *> a(n), b(n);
        for (std::size_t i = 0; i < n; ++i) {
            a[i] = &pool[rng.nextBelow(pool.size())];
            // Bias towards equal pairs so both outcomes are common.
            b[i] = rng.bernoulli(0.5)
                       ? a[i]
                       : &pool[rng.nextBelow(pool.size())];
        }
        // std::vector<bool> has no data(); stage through a char buffer.
        std::vector<char> raw(n);
        mem::compareBatch(a.data(), b.data(),
                          reinterpret_cast<bool *>(raw.data()), n);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(raw[i] != 0, *a[i] == *b[i])
                << "n=" << n << " i=" << i;
    }
}

TEST(PageDataBatch, ZeroPageConstantsMatchScalar)
{
    // The scanner's zero fast path serves these constants in place of
    // kernel lanes; they must be the scalar values of the zero page.
    EXPECT_EQ(mem::zeroPageChecksum, PageData::zero().checksum());
    EXPECT_EQ(mem::zeroPageDigest, PageData::zero().digest());
    EXPECT_TRUE(PageData::zero().isZero());
    PageData nearly;
    nearly.word[mem::sectorsPerPage - 1] = 1;
    EXPECT_FALSE(nearly.isZero());
}

TEST(PageData, OrderingIsStrictWeak)
{
    PageData a = PageData::zero();
    PageData b = PageData::filled(1, 1);
    EXPECT_TRUE((a < b) != (b < a));
    EXPECT_FALSE(a < a);
}

TEST(FrameTable, AllocAndFree)
{
    FrameTable ft(16);
    Mapping m{0, 7};
    Hfn h = ft.alloc(m, PageData::filled(1, 1));
    ASSERT_NE(h, invalidFrame);
    EXPECT_TRUE(ft.isAllocated(h));
    EXPECT_EQ(ft.resident(), 1u);
    EXPECT_EQ(ft.frame(h).refcount, 1u);
    EXPECT_EQ(ft.frame(h).primary, m);

    EXPECT_TRUE(ft.removeMapping(h, m));
    EXPECT_FALSE(ft.isAllocated(h));
    EXPECT_EQ(ft.resident(), 0u);
    ft.checkConsistency();
}

TEST(FrameTable, CapacityLimit)
{
    FrameTable ft(2);
    EXPECT_NE(ft.alloc({0, 0}, PageData::zero()), invalidFrame);
    EXPECT_NE(ft.alloc({0, 1}, PageData::zero()), invalidFrame);
    EXPECT_EQ(ft.alloc({0, 2}, PageData::zero()), invalidFrame);
    EXPECT_EQ(ft.freeFrames(), 0u);
}

TEST(FrameTable, SharedMappingsRefcount)
{
    FrameTable ft(8);
    Hfn h = ft.alloc({0, 1}, PageData::filled(3, 3));
    ft.addMapping(h, {1, 9});
    ft.addMapping(h, {2, 4});
    EXPECT_EQ(ft.frame(h).refcount, 3u);
    EXPECT_EQ(ft.frame(h).mappings().size(), 3u);
    ft.checkConsistency();

    // Removing the primary promotes an extra mapping.
    EXPECT_FALSE(ft.removeMapping(h, {0, 1}));
    EXPECT_EQ(ft.frame(h).refcount, 2u);
    EXPECT_FALSE(ft.removeMapping(h, {2, 4}));
    EXPECT_TRUE(ft.removeMapping(h, {1, 9}));
    ft.checkConsistency();
}

TEST(FrameTable, FreedFramesAreReused)
{
    FrameTable ft(4);
    Hfn a = ft.alloc({0, 0}, PageData::zero());
    ft.removeMapping(a, {0, 0});
    Hfn b = ft.alloc({0, 1}, PageData::zero());
    EXPECT_EQ(a, b); // free list reuse
}

TEST(FrameTable, PinnedFramesNeverVictims)
{
    FrameTable ft(4);
    Hfn p = ft.allocPinned(PageData::filled(1, 1));
    ASSERT_NE(p, invalidFrame);
    // Only the pinned frame exists: no victim must be found.
    EXPECT_EQ(ft.pickVictim(true), invalidFrame);
    ft.freePinned(p);
    EXPECT_FALSE(ft.isAllocated(p));
}

TEST(FrameTable, LruPrefersLeastRecentlyTouched)
{
    FrameTable ft(4);
    Hfn a = ft.alloc({0, 0}, PageData::zero());
    Hfn b = ft.alloc({0, 1}, PageData::zero());
    // a was allocated first, then b: a is older.
    EXPECT_EQ(ft.pickVictim(false), a);
    // Touch a: now b is the oldest.
    ft.touch(a);
    EXPECT_EQ(ft.pickVictim(false), b);
    // And back.
    ft.touch(b);
    EXPECT_EQ(ft.pickVictim(false), a);
}

TEST(FrameTable, LruIsGloballyFairUnderSkew)
{
    // One "process" keeps its 8 frames hot; another's 8 frames idle.
    // Victims must come from the idle set, not from whichever frames
    // happen to sit at a scan position.
    FrameTable ft(64);
    std::vector<Hfn> hot, idle;
    for (Gfn g = 0; g < 8; ++g)
        hot.push_back(ft.alloc({0, g}, PageData::zero()));
    for (Gfn g = 0; g < 8; ++g)
        idle.push_back(ft.alloc({1, g}, PageData::zero()));

    for (int round = 0; round < 20; ++round) {
        for (Hfn h : hot)
            ft.touch(h);
        Hfn v = ft.pickVictim(false);
        ASSERT_NE(v, invalidFrame);
        EXPECT_TRUE(std::find(idle.begin(), idle.end(), v) !=
                    idle.end())
            << "victim " << v << " came from the hot set";
    }
}

TEST(FrameTable, SharedFramesNeedAllowShared)
{
    FrameTable ft(4);
    Hfn h = ft.alloc({0, 0}, PageData::zero());
    ft.addMapping(h, {1, 0});
    EXPECT_EQ(ft.pickVictim(false), invalidFrame);
    EXPECT_EQ(ft.pickVictim(true), h);
}

TEST(FrameTable, ConsistencyCheckCountsResident)
{
    FrameTable ft(32, nullptr);
    std::vector<Hfn> frames;
    for (int i = 0; i < 20; ++i)
        frames.push_back(ft.alloc({0, static_cast<Gfn>(i)},
                                  PageData::filled(i, i)));
    for (int i = 0; i < 10; ++i)
        ft.removeMapping(frames[i], {0, static_cast<Gfn>(i)});
    EXPECT_EQ(ft.resident(), 10u);
    ft.checkConsistency();
}

TEST(FrameTable, KsmCountersTrackStableFlagAndMappings)
{
    FrameTable ft(8);
    EXPECT_EQ(ft.ksmStableFrames(), 0u);
    EXPECT_EQ(ft.ksmSharingMappings(), 0u);

    Hfn h = ft.alloc({0, 0}, PageData::filled(1, 1));
    ft.addMapping(h, {1, 0});
    ft.setKsmStable(h, true);
    EXPECT_EQ(ft.ksmStableFrames(), 1u);
    EXPECT_EQ(ft.ksmSharingMappings(), 1u); // refcount 2 => 1 saved

    ft.addMapping(h, {2, 0});
    EXPECT_EQ(ft.ksmSharingMappings(), 2u);
    ft.removeMapping(h, {1, 0});
    EXPECT_EQ(ft.ksmSharingMappings(), 1u);
    ft.checkConsistency();

    // Unmarking restores both counters.
    ft.setKsmStable(h, false);
    EXPECT_EQ(ft.ksmStableFrames(), 0u);
    EXPECT_EQ(ft.ksmSharingMappings(), 0u);
    ft.setKsmStable(h, true);

    // Freeing the frame via its last mappings zeroes everything.
    ft.removeMapping(h, {0, 0});
    EXPECT_TRUE(ft.removeMapping(h, {2, 0}));
    EXPECT_EQ(ft.ksmStableFrames(), 0u);
    EXPECT_EQ(ft.ksmSharingMappings(), 0u);
    ft.checkConsistency();
}

TEST(FrameTable, KsmCountersMatchRecountUnderRandomWorkload)
{
    // Randomized mark/share/unmap/free churn directly against the
    // frame table; the O(1) counters must equal a full recount at
    // every checkpoint (checkConsistency also cross-checks them).
    FrameTable ft(128);
    Rng rng(20130421);
    std::vector<std::pair<Hfn, Mapping>> live; // one entry per mapping
    std::uint64_t next_gfn = 0;

    for (int step = 0; step < 4000; ++step) {
        const int op = rng.nextBelow(100);
        if (op < 35 || live.empty()) {
            if (ft.freeFrames() == 0)
                continue;
            Mapping m{0, next_gfn++};
            Hfn h = ft.alloc(m, PageData::filled(rng.nextBelow(4), 0));
            live.push_back({h, m});
        } else if (op < 55) {
            // Share some existing frame (KSM merge).
            const auto &[h, m0] = live[rng.nextBelow(live.size())];
            Mapping m{1, next_gfn++};
            ft.addMapping(h, m);
            live.push_back({h, m});
        } else if (op < 75) {
            // Toggle stable state (promote / COW-divergence cleanup).
            const auto &[h, m] = live[rng.nextBelow(live.size())];
            ft.setKsmStable(h, rng.bernoulli(0.7));
        } else {
            // Unmap (COW break or free).
            const std::size_t i = rng.nextBelow(live.size());
            const auto [h, m] = live[i];
            live.erase(live.begin() + i);
            ft.removeMapping(h, m);
        }

        if (step % 200 == 0) {
            std::uint64_t stable = 0, sharing = 0;
            ft.forEachResident([&](Hfn, const Frame &f) {
                if (f.ksmStable) {
                    ++stable;
                    sharing += f.refcount - 1;
                }
            });
            ASSERT_EQ(ft.ksmStableFrames(), stable) << "step " << step;
            ASSERT_EQ(ft.ksmSharingMappings(), sharing)
                << "step " << step;
            ft.checkConsistency();
        }
    }
}

TEST(SwapDevice, StoreAndTake)
{
    SwapDevice swap;
    PageData data = PageData::filled(5, 5);
    auto slot = swap.store(data, {{0, 1}, {1, 2}});
    EXPECT_TRUE(swap.has(slot));
    EXPECT_EQ(swap.used(), 1u);

    auto stored = swap.take(slot);
    EXPECT_EQ(stored.data, data);
    ASSERT_EQ(stored.mappings.size(), 2u);
    EXPECT_FALSE(swap.has(slot));
    EXPECT_EQ(swap.used(), 0u);
}

TEST(SwapDevice, SlotsAreUnique)
{
    SwapDevice swap;
    auto a = swap.store(PageData::zero(), {{0, 0}});
    auto b = swap.store(PageData::zero(), {{0, 1}});
    EXPECT_NE(a, b);
}

TEST(SwapDevice, DropMappingFreesEmptySlot)
{
    SwapDevice swap;
    auto slot = swap.store(PageData::zero(), {{0, 1}, {1, 2}});
    EXPECT_FALSE(swap.dropMapping(slot, {0, 1}));
    EXPECT_TRUE(swap.has(slot));
    EXPECT_TRUE(swap.dropMapping(slot, {1, 2}));
    EXPECT_FALSE(swap.has(slot));
}

TEST(SwapDevice, StatsArePublished)
{
    StatSet stats;
    SwapDevice swap(&stats);
    auto slot = swap.store(PageData::zero(), {{0, 0}});
    EXPECT_EQ(stats.get("host.pswpout"), 1u);
    EXPECT_EQ(stats.get("host.swap_slots"), 1u);
    swap.take(slot);
    EXPECT_EQ(stats.get("host.pswpin"), 1u);
    EXPECT_EQ(stats.get("host.swap_slots"), 0u);
}

TEST(FrameTable, WriteGenerationIsNeverZeroAndAdvancesOnBump)
{
    FrameTable ft(4);
    Hfn a = ft.alloc({0, 0}, PageData::zero());
    const std::uint64_t g0 = ft.writeGen(a);
    EXPECT_NE(g0, 0u); // 0 is reserved for "never observed"
    ft.bumpWriteGen(a);
    EXPECT_GT(ft.writeGen(a), g0);
    // A different frame never shares a generation: the clock is global.
    Hfn b = ft.alloc({0, 1}, PageData::zero());
    EXPECT_NE(ft.writeGen(b), ft.writeGen(a));
}

TEST(FrameTable, FrameReuseAfterFreeAdvancesWriteGeneration)
{
    // Regression: a freed and recycled hfn must come back with a fresh
    // generation, or a cache entry keyed by (hfn, generation) from the
    // previous tenant would wrongly validate against the new content.
    FrameTable ft(4);
    Hfn a = ft.alloc({0, 0}, PageData::filled(1, 1));
    const std::uint64_t before = ft.writeGen(a);
    ft.removeMapping(a, {0, 0}); // frees the frame
    Hfn b = ft.alloc({0, 1}, PageData::filled(1, 1));
    ASSERT_EQ(a, b); // same hfn recycled (free-list reuse) ...
    EXPECT_GT(ft.writeGen(b), before); // ... but a strictly newer gen,
    // even though the content is identical to the previous tenant's.
}

TEST(FrameTable, StableFlagTransitionAdvancesWriteGeneration)
{
    // The KSM scanner concludes "not stable" from generation equality
    // alone, so joining or leaving the stable tree must look like a
    // write.
    FrameTable ft(4);
    Hfn a = ft.alloc({0, 0}, PageData::filled(2, 2));
    const std::uint64_t g0 = ft.writeGen(a);
    ft.setKsmStable(a, true);
    const std::uint64_t g1 = ft.writeGen(a);
    EXPECT_GT(g1, g0);
    ft.setKsmStable(a, false);
    EXPECT_GT(ft.writeGen(a), g1);
    // No-op transition: no generation change.
    const std::uint64_t g2 = ft.writeGen(a);
    ft.setKsmStable(a, false);
    EXPECT_EQ(ft.writeGen(a), g2);
}
