/**
 * @file
 * Digest-sharded commit: equivalence and isolation tests.
 *
 * The sharded commit (ksm::KsmConfig::commitShards) is a pure
 * machine-sizing knob: at any shard count, counters, merges, traces,
 * page contents and translations must be byte-identical to the
 * unsharded commit — only ksm.commit_shards and ksm.shard_imbalance_max
 * (which describe the machine, not the workload) may differ. These
 * suites drive twin hypervisor+scanner stacks in lockstep to enforce
 * that, plus the striped frame table's per-shard invariants.
 */

#include <algorithm>
#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "base/stats.hh"
#include "base/units.hh"
#include "base/trace.hh"
#include "hv/hypervisor.hh"
#include "ksm/ksm_scanner.hh"
#include "mem/frame_table.hh"

using namespace jtps;
using hv::KvmHypervisor;
using ksm::KsmConfig;
using ksm::KsmScanner;
using mem::PageData;

namespace
{

/** The two counters that legitimately differ across shard counts:
 *  they size the machine (how the commit was partitioned), never the
 *  workload (what was merged). Everything else must match. */
const std::vector<std::string> shardOnlyCounters = {
    "ksm.commit_shards",
    "ksm.shard_imbalance_max",
};

/** Scanner config for the sharded side: the parallel two-phase scan
 *  (both twins use it, so the scan-path counters agree) with the
 *  commit fanned out across @p shards digest shards. */
KsmConfig
shardKsmCfg(unsigned shards)
{
    KsmConfig c;
    c.pagesToScan = 500;
    c.incrementalScan = true;
    c.scanThreads = 2;
    c.scanShardPages = 16;
    c.commitShards = shards;
    return c;
}

/**
 * Two complete stacks driven in lockstep: `inc` commits through
 * `shards` digest shards, `ref` through the serial commit loop
 * (commitShards = 1). Mirrors test_properties.cc's TwinStacks; the
 * comparison is total — counters, sharing, translations, contents,
 * trace streams.
 */
struct ShardTwins
{
    static constexpr int numVms = 3;
    static constexpr Gfn pagesPerVm = 48;

    StatSet inc_stats;
    StatSet ref_stats;
    TraceBuffer inc_trace;
    TraceBuffer ref_trace;
    KvmHypervisor inc_hv;
    KvmHypervisor ref_hv;
    KsmScanner inc_scanner;
    KsmScanner ref_scanner;

    static hv::HostConfig
    hostCfg(Bytes ram)
    {
        hv::HostConfig h;
        h.ramBytes = ram;
        h.reserveBytes = 0;
        return h;
    }

    ShardTwins(Bytes ram, unsigned shards)
        : inc_hv(hostCfg(ram), inc_stats), ref_hv(hostCfg(ram), ref_stats),
          inc_scanner(inc_hv, shardKsmCfg(shards), inc_stats),
          ref_scanner(ref_hv, shardKsmCfg(1), ref_stats)
    {
        inc_trace.enable();
        ref_trace.enable();
        inc_hv.setTrace(&inc_trace);
        ref_hv.setTrace(&ref_trace);
        for (int v = 0; v < numVms; ++v) {
            inc_hv.createVm("vm" + std::to_string(v),
                            pagesPerVm * pageSize, 0);
            ref_hv.createVm("vm" + std::to_string(v),
                            pagesPerVm * pageSize, 0);
        }
    }

    void
    expectEqual(std::uint64_t seed, int step)
    {
        ASSERT_EQ(inc_scanner.fullScans(), ref_scanner.fullScans())
            << "seed=" << seed << " step=" << step;
        ASSERT_EQ(inc_scanner.pagesShared(), ref_scanner.pagesShared())
            << "seed=" << seed << " step=" << step;
        ASSERT_EQ(inc_scanner.pagesSharing(), ref_scanner.pagesSharing())
            << "seed=" << seed << " step=" << step;
        for (int v = 0; v < numVms; ++v) {
            for (Gfn g = 0; g < pagesPerVm; ++g) {
                ASSERT_EQ(inc_hv.translate(v, g), ref_hv.translate(v, g))
                    << "seed=" << seed << " step=" << step << " vm=" << v
                    << " gfn=" << g;
                const PageData *pi = inc_hv.peek(v, g);
                const PageData *pr = ref_hv.peek(v, g);
                ASSERT_EQ(pi == nullptr, pr == nullptr)
                    << "seed=" << seed << " step=" << step << " vm=" << v
                    << " gfn=" << g;
                if (pi != nullptr) {
                    ASSERT_EQ(*pi, *pr)
                        << "seed=" << seed << " step=" << step
                        << " vm=" << v << " gfn=" << g;
                }
            }
        }
        inc_hv.checkConsistency();
        ref_hv.checkConsistency();

        const auto &ei = inc_trace.events();
        const auto &er = ref_trace.events();
        ASSERT_EQ(ei.size(), er.size())
            << "trace length, seed=" << seed << " step=" << step;
        for (std::size_t i = 0; i < ei.size(); ++i) {
            ASSERT_TRUE(ei[i].type == er[i].type && ei[i].vm == er[i].vm &&
                        ei[i].arg0 == er[i].arg0 &&
                        ei[i].arg1 == er[i].arg1)
                << "trace event " << i << " differs, seed=" << seed
                << " step=" << step;
        }
    }

    /** Full registry equality minus the two shard sizing counters.
     *  Both scanners register every counter up front, so key sets
     *  always agree. */
    void
    expectRegistriesEqual(std::uint64_t seed)
    {
        auto a = inc_stats.counters();
        auto b = ref_stats.counters();
        ASSERT_EQ(a.size(), b.size()) << "seed=" << seed;
        for (const auto &[name, value] : a) {
            if (std::find(shardOnlyCounters.begin(),
                          shardOnlyCounters.end(),
                          name) != shardOnlyCounters.end())
                continue;
            auto it = b.find(name);
            ASSERT_TRUE(it != b.end()) << name << " seed=" << seed;
            EXPECT_EQ(value, it->second) << name << " seed=" << seed;
        }
    }

    /** Per-stripe frame-table probe on both sides: the striped
     *  counters must recount under any interleaving of shard commits,
     *  COW breaks and (in the paging fuzz) evictions. */
    void
    checkStripes()
    {
        for (unsigned s = 0; s < mem::FrameTable::kStripes; ++s) {
            inc_hv.frames().checkConsistencyShard(s);
            ref_hv.frames().checkConsistencyShard(s);
        }
    }
};

/** The fuzz op stream (same mix as the incremental/parallel twin
 *  fuzzes): writes from a small content pool, single-sector writes,
 *  discards, scans, touches, huge-page flips. */
void
driveShardTwins(ShardTwins &t, std::uint64_t seed, int steps)
{
    Rng rng(seed);
    for (int step = 0; step < steps; ++step) {
        const VmId vm = rng.nextBelow(ShardTwins::numVms);
        const Gfn gfn = rng.nextBelow(ShardTwins::pagesPerVm);
        const int op = rng.nextBelow(100);

        if (op < 40) {
            PageData d = PageData::filled(rng.nextBelow(6), 0);
            t.inc_hv.writePage(vm, gfn, d);
            t.ref_hv.writePage(vm, gfn, d);
        } else if (op < 55) {
            const unsigned sector = rng.nextBelow(mem::sectorsPerPage);
            const std::uint64_t value = rng.nextBelow(4);
            t.inc_hv.writeWord(vm, gfn, sector, value);
            t.ref_hv.writeWord(vm, gfn, sector, value);
        } else if (op < 67) {
            t.inc_hv.discardPage(vm, gfn);
            t.ref_hv.discardPage(vm, gfn);
        } else if (op < 80) {
            t.inc_scanner.scanBatch();
            t.ref_scanner.scanBatch();
        } else if (op < 90) {
            t.inc_hv.touchPage(vm, gfn);
            t.ref_hv.touchPage(vm, gfn);
        } else {
            const bool huge = rng.bernoulli(0.5);
            t.inc_hv.setHugePage(vm, gfn, huge);
            t.ref_hv.setHugePage(vm, gfn, huge);
        }

        if (step % 250 == 249) {
            ASSERT_NO_FATAL_FAILURE(t.expectEqual(seed, step));
            t.checkStripes();
        }
    }
    ASSERT_NO_FATAL_FAILURE(t.expectEqual(seed, steps));

    // Converge both and compare the quiescent state: the last passes
    // are the generation-skip- and epoch-skip-heavy ones, where a
    // shard would be most tempted to trust stale probe verdicts.
    t.inc_scanner.runToQuiescence();
    t.ref_scanner.runToQuiescence();
    ASSERT_NO_FATAL_FAILURE(t.expectEqual(seed, -1));
    t.checkStripes();
}

class ShardCommitEquivalenceFuzz
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, unsigned>>
{
};

} // namespace

TEST_P(ShardCommitEquivalenceFuzz, MatchesUnshardedCommit)
{
    const std::uint64_t seed = std::get<0>(GetParam());
    const unsigned shards = std::get<1>(GetParam());
    ShardTwins t(2 * MiB, shards); // ample RAM: no host paging
    ASSERT_NO_FATAL_FAILURE(driveShardTwins(t, seed, 2500));
    ASSERT_NO_FATAL_FAILURE(t.expectRegistriesEqual(seed));

    // The exemption set is exact: the knob itself...
    EXPECT_EQ(t.inc_stats.get("ksm.commit_shards"), shards);
    EXPECT_EQ(t.ref_stats.get("ksm.commit_shards"), 1u);
    // ...and the equivalence is not vacuous: candidates flowed through
    // the shard jobs and real merges were committed through the
    // deferred-op reduce.
    EXPECT_GT(t.inc_stats.get("ksm.precheck_candidates"), 0u);
    EXPECT_GT(t.inc_stats.get("ksm.stable_merges"), 0u);
    EXPECT_GT(t.inc_stats.get("ksm.unstable_promotions"), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByShards, ShardCommitEquivalenceFuzz,
    ::testing::Combine(::testing::Values(6, 256, 8128),
                       ::testing::Values(2u, 4u)));

namespace
{

class ShardPagingFuzz
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, unsigned>>
{
};

} // namespace

TEST_P(ShardPagingFuzz, MatchesUnshardedUnderHostPaging)
{
    const std::uint64_t seed = std::get<0>(GetParam());
    const unsigned shards = std::get<1>(GetParam());
    // Host RAM below the guests' combined footprint: evictions retire
    // and reincarnate frames between batches, so shard-local stable
    // chains and unstable entries constantly go stale against frames
    // recycled into *other* shards' content. The content-first prune
    // rule and the write-generation proofs must reject every stale
    // verdict — and the striped residency/sharing counters must
    // recount per stripe at every checkpoint.
    ShardTwins t(64 * pageSize, shards);
    ASSERT_NO_FATAL_FAILURE(driveShardTwins(t, seed, 2000));
    ASSERT_NO_FATAL_FAILURE(t.expectRegistriesEqual(seed));
    EXPECT_GT(t.inc_stats.get("host.evictions"), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByShards, ShardPagingFuzz,
    ::testing::Combine(::testing::Values(17, 129),
                       ::testing::Values(2u, 4u)));

namespace
{

/**
 * Find @p count distinct page contents whose digests all fall in
 * residue class @p residue mod @p shards — the adversarial case for
 * digest sharding: everything lands in ONE shard's indexes, and
 * distinct contents must stay distinct inside it (no false merges off
 * the digest bucket, chain walks compare full content).
 */
std::vector<PageData>
collidingContents(unsigned shards, unsigned residue, std::size_t count)
{
    std::vector<PageData> out;
    for (std::uint64_t tag = 1; out.size() < count; ++tag) {
        PageData d = PageData::filled(tag, 0xC011'1DE5);
        if (d.digest() % shards == residue)
            out.push_back(d);
    }
    return out;
}

} // namespace

TEST(ShardDigestCollision, CollidingResiduesStayIsolatedAndIdentical)
{
    // Six contents, all digest ≡ 0 (mod 4): at 4 shards every
    // candidate page lands in shard 0 (maximum imbalance), its stable
    // chains and unstable probes all share buckets modulo the table
    // size, and the other three shards stay empty.
    const unsigned shards = 4;
    const auto contents = collidingContents(shards, 0, 6);

    ShardTwins t(2 * MiB, shards);
    // Each content is duplicated on two VMs (merge fodder) and one odd
    // page out stays unique per content (unstable-tree fodder).
    for (std::size_t c = 0; c < contents.size(); ++c) {
        const Gfn base = static_cast<Gfn>(3 * c);
        t.inc_hv.writePage(0, base, contents[c]);
        t.ref_hv.writePage(0, base, contents[c]);
        t.inc_hv.writePage(1, base, contents[c]);
        t.ref_hv.writePage(1, base, contents[c]);
        PageData odd = contents[c];
        odd.word[7] ^= 0x5a5a;
        t.inc_hv.writePage(2, base, odd);
        t.ref_hv.writePage(2, base, odd);
    }
    t.inc_scanner.runToQuiescence();
    t.ref_scanner.runToQuiescence();
    ASSERT_NO_FATAL_FAILURE(t.expectEqual(0, 0));

    // Every duplicated content merged; nothing merged across distinct
    // contents (the digest residue collides, the bytes do not).
    EXPECT_EQ(t.inc_scanner.pagesShared(), contents.size());
    EXPECT_EQ(t.inc_scanner.pagesSharing(), contents.size());

    // COW-break half the shared pages with fresh colliding contents,
    // rescan, and re-verify: stale chain nodes for the old contents
    // now sit in the same shard-0 buckets the new contents probe.
    const auto fresh = collidingContents(shards, 0, 9);
    for (std::size_t c = 0; c < contents.size(); c += 2) {
        const Gfn base = static_cast<Gfn>(3 * c);
        t.inc_hv.writePage(1, base, fresh[c + 2]);
        t.ref_hv.writePage(1, base, fresh[c + 2]);
    }
    t.inc_scanner.runToQuiescence();
    t.ref_scanner.runToQuiescence();
    ASSERT_NO_FATAL_FAILURE(t.expectEqual(0, 1));
    ASSERT_NO_FATAL_FAILURE(t.expectRegistriesEqual(0));
    t.checkStripes();
    EXPECT_GT(t.inc_stats.get("ksm.stable_merges"), 0u);
}

TEST(ShardFrameTable, ExtraReserveOnFirstSpillShrinkOnLastUnshare)
{
    // Satellite of the sharded frame table: the reverse-mapping spill
    // vector reserves once at the first spill (KSM chains grow without
    // per-merge reallocation up to kExtraReserve mappings) and gives
    // the storage back when the last extra mapping goes.
    StatSet stats;
    mem::FrameTable ft(64, &stats);
    const Hfn f = ft.alloc(mem::Mapping{0, 0}, PageData::filled(9, 9));
    ASSERT_NE(f, invalidFrame);
    EXPECT_EQ(ft.frame(f).extra.capacity(), 0u);

    ft.addMapping(f, mem::Mapping{1, 0}); // first spill
    EXPECT_EQ(ft.frame(f).extra.capacity(),
              mem::FrameTable::kExtraReserve);
    for (VmId vm = 2; vm <= mem::FrameTable::kExtraReserve; ++vm)
        ft.addMapping(f, mem::Mapping{vm, 0});
    // Filled to the reservation: still not a single reallocation.
    EXPECT_EQ(ft.frame(f).extra.size(), mem::FrameTable::kExtraReserve);
    EXPECT_EQ(ft.frame(f).extra.capacity(),
              mem::FrameTable::kExtraReserve);

    // One past the reservation grows normally...
    const VmId beyond = mem::FrameTable::kExtraReserve + 1;
    ft.addMapping(f, mem::Mapping{beyond, 0});
    EXPECT_GT(ft.frame(f).extra.capacity(),
              mem::FrameTable::kExtraReserve);

    // ...and unsharing back to a sole mapping releases the storage.
    for (VmId vm = 1; vm <= beyond; ++vm)
        ft.removeMapping(f, mem::Mapping{vm, 0});
    EXPECT_EQ(ft.frame(f).refcount, 1u);
    EXPECT_TRUE(ft.frame(f).extra.empty());
    EXPECT_EQ(ft.frame(f).extra.capacity(), 0u);
    ft.checkConsistency();
    for (unsigned s = 0; s < mem::FrameTable::kStripes; ++s)
        ft.checkConsistencyShard(s);
}
