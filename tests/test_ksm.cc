/**
 * @file
 * Unit tests for the KSM scanner: calm filter, stable/unstable trees,
 * zero-page behaviour, tuning and CPU model.
 */

#include <gtest/gtest.h>

#include "base/stats.hh"
#include "base/units.hh"
#include "hv/hypervisor.hh"
#include "ksm/ksm_scanner.hh"
#include "sim/event_queue.hh"

using namespace jtps;
using hv::KvmHypervisor;
using ksm::KsmConfig;
using ksm::KsmScanner;
using mem::PageData;

namespace
{

struct KsmFixture : ::testing::Test
{
    StatSet stats;
    hv::HostConfig host_cfg;
    std::unique_ptr<KvmHypervisor> hv;
    std::unique_ptr<KsmScanner> scanner;

    void
    SetUp() override
    {
        host_cfg.ramBytes = 32 * MiB;
        host_cfg.reserveBytes = 0;
        hv = std::make_unique<KvmHypervisor>(host_cfg, stats);
        KsmConfig cfg;
        cfg.pagesToScan = 100000; // whole memory per batch in tests
        scanner = std::make_unique<KsmScanner>(*hv, cfg, stats);
    }
};

} // namespace

TEST_F(KsmFixture, MergesIdenticalCalmPagesAfterTwoPasses)
{
    VmId a = hv->createVm("a", 1 * MiB, 0);
    VmId b = hv->createVm("b", 1 * MiB, 0);
    PageData d = PageData::filled(5, 5);
    hv->writePage(a, 3, d);
    hv->writePage(b, 8, d);

    // Pass 1: checksums recorded, nothing merged (not yet calm).
    scanner->scanBatch();
    EXPECT_EQ(scanner->pagesShared(), 0u);

    // Pass 2: both pages calm and identical -> merged.
    scanner->scanBatch();
    EXPECT_EQ(scanner->pagesShared(), 1u);
    EXPECT_EQ(scanner->pagesSharing(), 1u);
    EXPECT_EQ(hv->translate(a, 3), hv->translate(b, 8));
    EXPECT_EQ(scanner->savedBytes(), pageSize);
    hv->checkConsistency();
}

TEST_F(KsmFixture, ChurningPagesAreNeverMerged)
{
    VmId a = hv->createVm("a", 1 * MiB, 0);
    VmId b = hv->createVm("b", 1 * MiB, 0);
    for (int round = 0; round < 6; ++round) {
        // Identical across VMs at any instant, but changing every
        // round: the calm filter must reject them.
        PageData d = PageData::filled(99, round);
        hv->writePage(a, 0, d);
        hv->writePage(b, 0, d);
        scanner->scanBatch();
    }
    EXPECT_EQ(scanner->pagesShared(), 0u);
    EXPECT_GT(stats.get("ksm.not_calm"), 0u);
}

TEST_F(KsmFixture, StableTreeMergesLateComers)
{
    VmId a = hv->createVm("a", 1 * MiB, 0);
    VmId b = hv->createVm("b", 1 * MiB, 0);
    VmId c = hv->createVm("c", 1 * MiB, 0);
    PageData d = PageData::filled(7, 7);
    hv->writePage(a, 0, d);
    hv->writePage(b, 0, d);
    scanner->scanBatch();
    scanner->scanBatch();
    ASSERT_EQ(scanner->pagesShared(), 1u);

    // A third VM writes the same content later: it must join the
    // existing stable frame via the stable tree.
    hv->writePage(c, 0, d);
    scanner->scanBatch();
    scanner->scanBatch();
    EXPECT_EQ(scanner->pagesShared(), 1u);
    EXPECT_EQ(scanner->pagesSharing(), 2u);
    EXPECT_EQ(hv->translate(a, 0), hv->translate(c, 0));
    EXPECT_GT(stats.get("ksm.stable_merges"), 0u);
}

TEST_F(KsmFixture, CowBreakReducesSharingAndPageCanRemerge)
{
    VmId a = hv->createVm("a", 1 * MiB, 0);
    VmId b = hv->createVm("b", 1 * MiB, 0);
    PageData d = PageData::filled(1, 1);
    hv->writePage(a, 0, d);
    hv->writePage(b, 0, d);
    scanner->runToQuiescence();
    ASSERT_EQ(scanner->pagesSharing(), 1u);

    // b diverges...
    hv->writeWord(b, 0, 0, 42);
    EXPECT_EQ(scanner->pagesSharing(), 0u);
    // ...then writes the original content back: after two more passes
    // it must re-merge into the still-existing stable frame.
    hv->writeWord(b, 0, 0, d.word[0]);
    scanner->scanBatch();
    scanner->scanBatch();
    scanner->scanBatch();
    EXPECT_EQ(scanner->pagesSharing(), 1u);
    hv->checkConsistency();
}

TEST_F(KsmFixture, ZeroPagesAllMergeToOneFrame)
{
    VmId a = hv->createVm("a", 1 * MiB, 0);
    VmId b = hv->createVm("b", 1 * MiB, 0);
    for (Gfn g = 0; g < 20; ++g) {
        hv->writePage(a, g, PageData::zero());
        hv->writePage(b, g, PageData::zero());
    }
    scanner->runToQuiescence();
    EXPECT_EQ(scanner->pagesShared(), 1u);
    EXPECT_EQ(scanner->pagesSharing(), 39u);
    EXPECT_EQ(hv->residentFrames(), 1u);
}

TEST_F(KsmFixture, HugeBackedPagesAreNeverMerged)
{
    VmId a = hv->createVm("a", 1 * MiB, 0);
    VmId b = hv->createVm("b", 1 * MiB, 0);
    PageData d = PageData::filled(8, 8);
    hv->writePage(a, 0, d);
    hv->writePage(b, 0, d);
    hv->setHugePage(a, 0, true);

    scanner->runToQuiescence();
    EXPECT_EQ(scanner->pagesSharing(), 0u);
    EXPECT_GT(stats.get("ksm.skipped_huge"), 0u);

    // Splitting the huge page (khugepaged undo) makes it mergeable.
    hv->setHugePage(a, 0, false);
    scanner->scanBatch();
    scanner->scanBatch();
    scanner->scanBatch();
    EXPECT_EQ(scanner->pagesSharing(), 1u);
}

TEST_F(KsmFixture, MaxPageSharingFormsChains)
{
    VmId a = hv->createVm("a", 1 * MiB, 0);
    VmId b = hv->createVm("b", 1 * MiB, 0);

    KsmConfig cfg;
    cfg.pagesToScan = 100000;
    cfg.maxPageSharing = 4;
    KsmScanner limited(*hv, cfg, stats);

    for (Gfn g = 0; g < 20; ++g) {
        hv->writePage(a, g, PageData::zero());
        hv->writePage(b, g, PageData::zero());
    }
    limited.runToQuiescence();

    // 40 identical pages with a cap of 4 mappings per frame: at least
    // ten duplicate stable frames, none over the cap.
    EXPECT_GE(limited.pagesShared(), 10u);
    hv->frames().forEachResident([&](Hfn, const mem::Frame &f) {
        if (f.ksmStable) {
            EXPECT_LE(f.refcount, 4u);
        }
    });
    // Dedup still saved the same total pages.
    EXPECT_EQ(limited.pagesSharing() + limited.pagesShared(), 40u);
    hv->checkConsistency();
}

TEST_F(KsmFixture, FullChainStartsNewStableNode)
{
    // Fill one stable frame exactly to max_page_sharing, then present
    // one more duplicate: it must start a *new* stable node (a chain
    // duplicate) rather than exceed the cap or go unmerged.
    KsmConfig cfg;
    cfg.pagesToScan = 100000;
    cfg.maxPageSharing = 3;
    KsmScanner limited(*hv, cfg, stats);

    VmId a = hv->createVm("a", 1 * MiB, 0);
    PageData d = PageData::filled(12, 12);
    for (Gfn g = 0; g < 3; ++g)
        hv->writePage(a, g, d);
    limited.runToQuiescence();

    // Three identical pages, cap 3: one stable frame holding all three.
    ASSERT_EQ(limited.pagesShared(), 1u);
    ASSERT_EQ(limited.pagesSharing(), 2u);
    Hfn first = hv->translate(a, 0);
    EXPECT_EQ(hv->frames().frame(first).refcount, 3u);

    // The fourth duplicate finds the chain head full and must become a
    // second stable node with the same content.
    hv->writePage(a, 3, d);
    hv->writePage(a, 4, d);
    limited.runToQuiescence();
    EXPECT_EQ(limited.pagesShared(), 2u);
    EXPECT_EQ(limited.pagesSharing(), 3u);
    EXPECT_NE(hv->translate(a, 3), first);
    hv->frames().forEachResident([&](Hfn, const mem::Frame &f) {
        if (f.ksmStable) {
            EXPECT_LE(f.refcount, 3u);
        }
    });
    hv->checkConsistency();
}

TEST_F(KsmFixture, StaleDigestBucketsArePrunedLazily)
{
    // A stable node whose frame died is only discovered — and its
    // digest bucket cleaned up — when a lookup next probes that
    // content, mirroring ksmd's lazy stable-tree pruning.
    VmId a = hv->createVm("a", 1 * MiB, 0);
    VmId b = hv->createVm("b", 1 * MiB, 0);
    PageData d = PageData::filled(13, 13);
    hv->writePage(a, 0, d);
    hv->writePage(b, 0, d);
    scanner->runToQuiescence();
    ASSERT_EQ(scanner->pagesShared(), 1u);

    // Kill the stable frame: the index entry is now stale, but nothing
    // is pruned until the digest is probed again.
    hv->discardPage(a, 0);
    hv->discardPage(b, 0);
    EXPECT_EQ(stats.get("ksm.stale_stable_nodes"), 0u);

    // New pages with the same content hit the stale bucket, prune it,
    // and then merge through the unstable tree as a fresh pair.
    hv->writePage(a, 1, d);
    hv->writePage(b, 1, d);
    scanner->runToQuiescence();
    EXPECT_GE(stats.get("ksm.stale_stable_nodes"), 1u);
    EXPECT_EQ(scanner->pagesShared(), 1u);
    EXPECT_EQ(scanner->pagesSharing(), 1u);
    EXPECT_EQ(hv->translate(a, 1), hv->translate(b, 1));
    hv->checkConsistency();
}

TEST_F(KsmFixture, StaleStableNodesArePruned)
{
    VmId a = hv->createVm("a", 1 * MiB, 0);
    VmId b = hv->createVm("b", 1 * MiB, 0);
    PageData d = PageData::filled(4, 4);
    hv->writePage(a, 0, d);
    hv->writePage(b, 0, d);
    scanner->runToQuiescence();
    ASSERT_EQ(scanner->pagesShared(), 1u);

    // Both mappings vanish; the stable node goes stale.
    hv->discardPage(a, 0);
    hv->discardPage(b, 0);
    EXPECT_EQ(scanner->pagesShared(), 0u);

    // New identical pages must still merge (fresh node replaces stale).
    hv->writePage(a, 1, d);
    hv->writePage(b, 1, d);
    scanner->scanBatch();
    scanner->scanBatch();
    scanner->scanBatch();
    EXPECT_EQ(scanner->pagesSharing(), 1u);
}

TEST_F(KsmFixture, UnmergeableVmIsSkipped)
{
    VmId a = hv->createVm("a", 1 * MiB, 0);
    VmId b = hv->createVm("b", 1 * MiB, 0);
    hv->vm(b).mergeable = false;
    PageData d = PageData::filled(6, 6);
    hv->writePage(a, 0, d);
    hv->writePage(b, 0, d);
    scanner->runToQuiescence();
    EXPECT_EQ(scanner->pagesSharing(), 0u);
}

TEST_F(KsmFixture, BatchSizeBoundsWork)
{
    VmId a = hv->createVm("a", 1 * MiB, 0);
    (void)a;
    scanner->setPagesToScan(16);
    const std::uint64_t visited = scanner->scanBatch();
    EXPECT_LE(visited, 16u);
}

TEST_F(KsmFixture, CpuUsageModelMatchesPaper)
{
    // Paper §II.C: ~25% CPU at 10,000 pages/100ms, ~2% at 1,000.
    KsmConfig cfg;
    cfg.pagesToScan = 10000;
    cfg.sleepMillisecs = 100;
    cfg.scanCostUs = 2.5;
    KsmScanner warm(*hv, cfg, stats);
    EXPECT_NEAR(warm.cpuUsage(), 0.20, 0.05);

    cfg.pagesToScan = 1000;
    KsmScanner steady(*hv, cfg, stats);
    EXPECT_NEAR(steady.cpuUsage(), 0.025, 0.01);
}

TEST_F(KsmFixture, AttachScansPeriodically)
{
    VmId a = hv->createVm("a", 1 * MiB, 0);
    VmId b = hv->createVm("b", 1 * MiB, 0);
    PageData d = PageData::filled(2, 2);
    hv->writePage(a, 0, d);
    hv->writePage(b, 0, d);

    sim::EventQueue queue;
    scanner->setSleepMillisecs(100);
    scanner->attach(queue);
    queue.runUntil(1000);
    EXPECT_EQ(scanner->pagesSharing(), 1u);

    scanner->detach();
    queue.runUntil(2000);
    EXPECT_EQ(queue.pending(), 0u);
}

TEST_F(KsmFixture, QuiescenceDetectsConvergence)
{
    VmId a = hv->createVm("a", 1 * MiB, 0);
    VmId b = hv->createVm("b", 1 * MiB, 0);
    for (Gfn g = 0; g < 10; ++g) {
        hv->writePage(a, g, PageData::filled(3, g));
        hv->writePage(b, g, PageData::filled(3, g));
    }
    const std::uint64_t merged = scanner->runToQuiescence();
    EXPECT_EQ(merged, 10u);
    EXPECT_EQ(scanner->pagesSharing(), 10u);
    // A second call must find nothing new.
    EXPECT_EQ(scanner->runToQuiescence(), 0u);
}

TEST_F(KsmFixture, GenerationSkipsSettleConvergedPassesEntirely)
{
    VmId a = hv->createVm("a", 1 * MiB, 0);
    VmId b = hv->createVm("b", 1 * MiB, 0);
    // 10 mergeable pairs plus 10 unique pages that stay unmerged.
    for (Gfn g = 0; g < 10; ++g) {
        hv->writePage(a, g, PageData::filled(3, g));
        hv->writePage(b, g, PageData::filled(3, g));
    }
    for (Gfn g = 10; g < 20; ++g)
        hv->writePage(a, g, PageData::filled(100 + g, g));

    for (int pass = 0; pass < 4; ++pass)
        scanner->scanBatch();
    ASSERT_EQ(scanner->pagesSharing(), 10u);

    // Converged: one more pass over idle memory is settled entirely by
    // generation compares (30 resident pages: 20 merged, 10 unique),
    // and the unique pages' digests come from the per-page cache.
    const std::uint64_t v0 = stats.get("ksm.pages_visited");
    const std::uint64_t g0 = stats.get("ksm.pages_gen_skipped");
    const std::uint64_t d0 = stats.get("ksm.digest_cache_hits");
    const std::uint64_t n0 = stats.get("ksm.not_calm");
    scanner->scanBatch();
    EXPECT_EQ(stats.get("ksm.pages_visited") - v0, 30u);
    EXPECT_EQ(stats.get("ksm.pages_gen_skipped") - g0, 30u);
    EXPECT_EQ(stats.get("ksm.digest_cache_hits") - d0, 10u);
    EXPECT_EQ(stats.get("ksm.not_calm") - n0, 0u);
}

TEST_F(KsmFixture, WriteInvalidatesExactlyThatPagesGeneration)
{
    VmId a = hv->createVm("a", 1 * MiB, 0);
    for (Gfn g = 0; g < 10; ++g)
        hv->writePage(a, g, PageData::filled(100 + g, g));
    for (int pass = 0; pass < 3; ++pass)
        scanner->scanBatch();

    hv->writePage(a, 4, PageData::filled(200, 0));
    const std::uint64_t g0 = stats.get("ksm.pages_gen_skipped");
    const std::uint64_t n0 = stats.get("ksm.not_calm");
    scanner->scanBatch();
    // 9 of 10 pages settle on generation equality; the rewritten one
    // runs the full calm protocol and fails it (checksum changed).
    EXPECT_EQ(stats.get("ksm.pages_gen_skipped") - g0, 9u);
    EXPECT_EQ(stats.get("ksm.not_calm") - n0, 1u);
}

TEST_F(KsmFixture, DiscardWipesScanStateDespiteIdenticalContent)
{
    VmId a = hv->createVm("a", 1 * MiB, 0);
    for (Gfn g = 0; g < 10; ++g)
        hv->writePage(a, g, PageData::filled(100 + g, g));
    for (int pass = 0; pass < 3; ++pass)
        scanner->scanBatch();

    // Discard and reincarnate one page with byte-identical content: the
    // per-page state must have been wiped, so the revisit runs the full
    // calm protocol from scratch (not-calm once, like a fresh page) —
    // exactly what the old in-EPT checksum reset guaranteed.
    hv->discardPage(a, 7);
    hv->writePage(a, 7, PageData::filled(107, 7));
    const std::uint64_t n0 = stats.get("ksm.not_calm");
    scanner->scanBatch();
    EXPECT_EQ(stats.get("ksm.not_calm") - n0, 1u);
}
