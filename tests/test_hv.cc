/**
 * @file
 * Unit tests for the hypervisor: translation, demand paging, COW,
 * TPS merge primitives, host swap.
 */

#include <gtest/gtest.h>

#include "base/stats.hh"
#include "base/units.hh"
#include "hv/hypervisor.hh"

using namespace jtps;
using hv::HostConfig;
using hv::KvmHypervisor;
using hv::PageState;
using hv::PowerVmHypervisor;
using mem::PageData;

namespace
{

HostConfig
smallHost(Bytes ram = 64 * MiB)
{
    HostConfig cfg;
    cfg.ramBytes = ram;
    cfg.reserveBytes = 0;
    return cfg;
}

} // namespace

TEST(Hypervisor, DemandAllocationOnWrite)
{
    StatSet stats;
    KvmHypervisor hv(smallHost(), stats);
    VmId vm = hv.createVm("vm", 16 * MiB, 0);

    EXPECT_EQ(hv.translate(vm, 5), invalidFrame);
    EXPECT_EQ(hv.readWord(vm, 5, 0), 0u); // no allocation on read
    EXPECT_EQ(hv.residentFrames(), 0u);

    hv.writeWord(vm, 5, 2, 42);
    EXPECT_NE(hv.translate(vm, 5), invalidFrame);
    EXPECT_EQ(hv.readWord(vm, 5, 2), 42u);
    EXPECT_EQ(hv.readWord(vm, 5, 0), 0u); // rest of page is zero
    EXPECT_EQ(hv.vm(vm).residentPages, 1u);
    hv.checkConsistency();
}

TEST(Hypervisor, WritePageThenPeek)
{
    StatSet stats;
    KvmHypervisor hv(smallHost(), stats);
    VmId vm = hv.createVm("vm", 16 * MiB, 0);

    PageData d = PageData::filled(9, 9);
    hv.writePage(vm, 3, d);
    const PageData *p = hv.peek(vm, 3);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(*p, d);
    EXPECT_EQ(hv.peek(vm, 4), nullptr);
}

TEST(Hypervisor, VmOverheadIsPinned)
{
    StatSet stats;
    KvmHypervisor hv(smallHost(), stats);
    VmId vm = hv.createVm("vm", 8 * MiB, 2 * MiB);
    EXPECT_EQ(hv.vm(vm).overheadFrames.size(), bytesToPages(2 * MiB));
    EXPECT_EQ(hv.residentFrames(), bytesToPages(2 * MiB));
    for (Hfn h : hv.vm(vm).overheadFrames)
        EXPECT_TRUE(hv.frames().frame(h).pinned);
}

TEST(Hypervisor, OverheadContentDiffersPerVm)
{
    StatSet stats;
    KvmHypervisor hv(smallHost(), stats);
    VmId a = hv.createVm("a", 4 * MiB, 1 * MiB);
    VmId b = hv.createVm("b", 4 * MiB, 1 * MiB);
    Hfn ha = hv.vm(a).overheadFrames[0];
    Hfn hb = hv.vm(b).overheadFrames[0];
    EXPECT_NE(hv.frames().frame(ha).data, hv.frames().frame(hb).data);
}

TEST(Hypervisor, KsmMergeSharesAndCowUnshares)
{
    StatSet stats;
    KvmHypervisor hv(smallHost(), stats);
    VmId a = hv.createVm("a", 8 * MiB, 0);
    VmId b = hv.createVm("b", 8 * MiB, 0);

    PageData d = PageData::filled(1, 2);
    hv.writePage(a, 0, d);
    hv.writePage(b, 0, d);
    EXPECT_NE(hv.translate(a, 0), hv.translate(b, 0));

    Hfn stable = hv.ksmMakeStable(a, 0);
    ASSERT_NE(stable, invalidFrame);
    EXPECT_TRUE(hv.ksmMergeInto(stable, b, 0));
    EXPECT_EQ(hv.translate(a, 0), hv.translate(b, 0));
    EXPECT_EQ(hv.frames().frame(stable).refcount, 2u);
    hv.checkConsistency();

    // Writing through b must COW: b sees its new value, a is untouched.
    hv.writeWord(b, 0, 0, 777);
    EXPECT_NE(hv.translate(a, 0), hv.translate(b, 0));
    EXPECT_EQ(hv.readWord(b, 0, 0), 777u);
    EXPECT_EQ(*hv.peek(a, 0), d);
    // The rest of b's page kept the old content.
    EXPECT_EQ(hv.readWord(b, 0, 1), d.word[1]);
    hv.checkConsistency();
}

TEST(Hypervisor, MergeRejectsDifferentContent)
{
    StatSet stats;
    KvmHypervisor hv(smallHost(), stats);
    VmId a = hv.createVm("a", 8 * MiB, 0);
    VmId b = hv.createVm("b", 8 * MiB, 0);
    hv.writePage(a, 0, PageData::filled(1, 1));
    hv.writePage(b, 0, PageData::filled(2, 2));
    Hfn stable = hv.ksmMakeStable(a, 0);
    EXPECT_FALSE(hv.ksmMergeInto(stable, b, 0));
    EXPECT_NE(hv.translate(a, 0), hv.translate(b, 0));
}

TEST(Hypervisor, MergeRejectsNonResidentAndSelf)
{
    StatSet stats;
    KvmHypervisor hv(smallHost(), stats);
    VmId a = hv.createVm("a", 8 * MiB, 0);
    hv.writePage(a, 0, PageData::filled(1, 1));
    Hfn stable = hv.ksmMakeStable(a, 0);
    EXPECT_FALSE(hv.ksmMergeInto(stable, a, 0)); // already that frame
    EXPECT_FALSE(hv.ksmMergeInto(stable, a, 1)); // not resident
}

TEST(Hypervisor, WriteToStableFrameCowsEvenIfSoleMapping)
{
    StatSet stats;
    KvmHypervisor hv(smallHost(), stats);
    VmId a = hv.createVm("a", 8 * MiB, 0);
    hv.writePage(a, 0, PageData::filled(3, 3));
    Hfn stable = hv.ksmMakeStable(a, 0);
    EXPECT_TRUE(hv.frames().frame(stable).ksmStable);
    const std::uint64_t cows_before = stats.get("hv.cow_breaks");
    hv.writeWord(a, 0, 0, 1);
    // A KSM page is never written in place: the write must COW onto a
    // fresh anonymous frame (the freed stable frame's number may be
    // recycled, but the KSM flag is gone).
    EXPECT_EQ(stats.get("hv.cow_breaks"), cows_before + 1);
    EXPECT_FALSE(hv.frames().frame(hv.translate(a, 0)).ksmStable);
    EXPECT_EQ(hv.readWord(a, 0, 0), 1u);
    hv.checkConsistency();
}

TEST(Hypervisor, DiscardFreesFrame)
{
    StatSet stats;
    KvmHypervisor hv(smallHost(), stats);
    VmId a = hv.createVm("a", 8 * MiB, 0);
    hv.writePage(a, 7, PageData::filled(1, 1));
    EXPECT_EQ(hv.vm(a).residentPages, 1u);
    hv.discardPage(a, 7);
    EXPECT_EQ(hv.vm(a).residentPages, 0u);
    EXPECT_EQ(hv.residentFrames(), 0u);
    EXPECT_EQ(hv.translate(a, 7), invalidFrame);
    hv.checkConsistency();
}

TEST(Hypervisor, DiscardOfSharedFrameLeavesOtherMapping)
{
    StatSet stats;
    KvmHypervisor hv(smallHost(), stats);
    VmId a = hv.createVm("a", 8 * MiB, 0);
    VmId b = hv.createVm("b", 8 * MiB, 0);
    PageData d = PageData::filled(4, 4);
    hv.writePage(a, 0, d);
    hv.writePage(b, 0, d);
    Hfn stable = hv.ksmMakeStable(a, 0);
    hv.ksmMergeInto(stable, b, 0);

    hv.discardPage(a, 0);
    EXPECT_EQ(hv.translate(b, 0), stable);
    EXPECT_EQ(*hv.peek(b, 0), d);
    EXPECT_EQ(hv.frames().frame(stable).refcount, 1u);
    hv.checkConsistency();
}

TEST(Hypervisor, EvictionAndMajorFault)
{
    StatSet stats;
    // Host with room for only 8 frames.
    KvmHypervisor hv(smallHost(8 * pageSize), stats);
    VmId a = hv.createVm("a", 1 * MiB, 0);

    // Fill the host, then keep writing: the host must evict.
    for (Gfn g = 0; g < 12; ++g)
        hv.writePage(a, g, PageData::filled(7, g));
    EXPECT_EQ(hv.residentFrames(), 8u);
    EXPECT_EQ(hv.vm(a).swappedPages, 4u);
    EXPECT_GT(stats.get("host.evictions"), 0u);
    hv.checkConsistency();

    // Touch a swapped page: major fault, content restored.
    std::uint64_t faults_before = hv.majorFaults(a);
    bool faulted = false;
    for (Gfn g = 0; g < 12; ++g) {
        if (hv.translate(a, g) == invalidFrame) {
            EXPECT_EQ(hv.readWord(a, g, 3),
                      PageData::filled(7, g).word[3]);
            faulted = true;
            break;
        }
    }
    EXPECT_TRUE(faulted);
    EXPECT_EQ(hv.majorFaults(a), faults_before + 1);
    hv.checkConsistency();
}

TEST(Hypervisor, SwapInRestoresSharingStructure)
{
    StatSet stats;
    // 4 host frames: 1 KSM-shared frame + 3 pinned VM-overhead frames.
    // The next allocation can only evict the shared frame.
    KvmHypervisor hv(smallHost(4 * pageSize), stats);
    VmId a = hv.createVm("a", 1 * MiB, 0);
    VmId b = hv.createVm("b", 1 * MiB, 0);

    PageData d = PageData::filled(11, 11);
    hv.writePage(a, 0, d);
    hv.writePage(b, 0, d);
    Hfn stable = hv.ksmMakeStable(a, 0);
    ASSERT_TRUE(hv.ksmMergeInto(stable, b, 0));
    EXPECT_EQ(hv.residentFrames(), 1u);

    VmId c = hv.createVm("c", 1 * MiB, 3 * pageSize); // pinned filler
    (void)c;
    EXPECT_EQ(hv.residentFrames(), 4u);

    // Fresh allocation: only the shared frame is evictable.
    hv.writePage(a, 1, PageData::filled(1, 1));
    EXPECT_EQ(hv.translate(a, 0), invalidFrame);
    EXPECT_EQ(hv.translate(b, 0), invalidFrame);
    EXPECT_EQ(hv.vm(a).swappedPages, 1u);
    EXPECT_EQ(hv.vm(b).swappedPages, 1u);
    hv.checkConsistency();

    // Fault the shared page back in through a: both mappings must come
    // back, pointing at one frame with the original content.
    EXPECT_EQ(hv.readWord(a, 0, 0), d.word[0]);
    EXPECT_NE(hv.translate(a, 0), invalidFrame);
    EXPECT_EQ(hv.translate(a, 0), hv.translate(b, 0));
    EXPECT_EQ(hv.majorFaults(a), 1u);
    EXPECT_EQ(hv.majorFaults(b), 0u);
    hv.checkConsistency();
}

TEST(Hypervisor, CompressedSwapTierServesFastRefaults)
{
    StatSet stats;
    hv::HostConfig cfg = smallHost(16 * pageSize);
    // Pool of 2 pages -> capacity for 6 compressed slots, and only
    // 14 usable frames.
    cfg.compressedSwapPoolBytes = 2 * pageSize;
    KvmHypervisor hv(cfg, stats);
    VmId a = hv.createVm("a", 1 * MiB, 0);

    for (Gfn g = 0; g < 20; ++g)
        hv.writePage(a, g, PageData::filled(9, g));
    // 20 pages vs 14 frames: 6 swapped, all fitting the RAM tier.
    EXPECT_EQ(hv.vm(a).swappedPages, 6u);
    EXPECT_EQ(hv.swap().ramSlots(), 6u);

    // Fault one back: it must be counted as a RAM-tier fault.
    std::uint64_t ram_before = hv.majorFaultsRam(a);
    for (Gfn g = 0; g < 20; ++g) {
        if (hv.translate(a, g) == invalidFrame) {
            EXPECT_EQ(hv.readWord(a, g, 1),
                      PageData::filled(9, g).word[1]);
            break;
        }
    }
    EXPECT_EQ(hv.majorFaultsRam(a), ram_before + 1);
    hv.checkConsistency();
}

TEST(Hypervisor, SwapOverflowsToDiskWhenPoolFull)
{
    StatSet stats;
    hv::HostConfig cfg = smallHost(16 * pageSize);
    cfg.compressedSwapPoolBytes = 1 * pageSize; // 3 compressed slots
    KvmHypervisor hv(cfg, stats);
    VmId a = hv.createVm("a", 1 * MiB, 0);
    for (Gfn g = 0; g < 25; ++g)
        hv.writePage(a, g, PageData::filled(10, g));
    // 25 pages vs 15 frames: 10 swapped; 3 in RAM, 7 on disk.
    EXPECT_EQ(hv.vm(a).swappedPages, 10u);
    EXPECT_EQ(hv.swap().ramSlots(), 3u);
    EXPECT_EQ(hv.swap().used(), 10u);
}

TEST(Hypervisor, CollapseMergesAllDuplicates)
{
    StatSet stats;
    PowerVmHypervisor hv(smallHost(), stats);
    VmId a = hv.createVm("a", 8 * MiB);
    VmId b = hv.createVm("b", 8 * MiB);
    VmId c = hv.createVm("c", 8 * MiB);

    PageData shared = PageData::filled(1, 1);
    for (VmId v : {a, b, c}) {
        hv.writePage(v, 0, shared);
        hv.writePage(v, 1, PageData::filled(100 + v, v)); // unique
    }
    EXPECT_EQ(hv.residentFrames(), 6u);
    std::uint64_t merged = hv.runTps();
    EXPECT_EQ(merged, 2u);
    EXPECT_EQ(hv.residentFrames(), 4u);
    EXPECT_EQ(hv.translate(a, 0), hv.translate(b, 0));
    EXPECT_EQ(hv.translate(b, 0), hv.translate(c, 0));
    hv.checkConsistency();
}

TEST(Hypervisor, CollapseIsTransparentToReaders)
{
    StatSet stats;
    PowerVmHypervisor hv(smallHost(), stats);
    VmId a = hv.createVm("a", 8 * MiB);
    VmId b = hv.createVm("b", 8 * MiB);
    PageData d = PageData::filled(2, 2);
    hv.writePage(a, 5, d);
    hv.writePage(b, 9, d);
    hv.runTps();
    EXPECT_EQ(hv.readWord(a, 5, 4), d.word[4]);
    EXPECT_EQ(hv.readWord(b, 9, 4), d.word[4]);
    // And to writers, via COW.
    hv.writeWord(a, 5, 4, 123);
    EXPECT_EQ(hv.readWord(a, 5, 4), 123u);
    EXPECT_EQ(hv.readWord(b, 9, 4), d.word[4]);
}

TEST(Hypervisor, ConsistencyAcrossMixedOps)
{
    StatSet stats;
    KvmHypervisor hv(smallHost(48 * pageSize), stats);
    VmId a = hv.createVm("a", 1 * MiB, 0);
    VmId b = hv.createVm("b", 1 * MiB, 0);

    for (int round = 0; round < 4; ++round) {
        for (Gfn g = 0; g < 30; ++g) {
            hv.writePage(a, g, PageData::filled(round, g % 5));
            hv.writePage(b, g, PageData::filled(round, g % 5));
        }
        hv.collapseIdenticalPages();
        for (Gfn g = 0; g < 30; g += 3)
            hv.writeWord(a, g, 0, round * 100 + g);
        for (Gfn g = 0; g < 30; g += 7)
            hv.discardPage(b, g);
        hv.checkConsistency();
    }
}
