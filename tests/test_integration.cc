/**
 * @file
 * Integration tests: full scenarios through the core API, checking the
 * paper's qualitative results end to end on a scaled-down setup.
 */

#include <gtest/gtest.h>

#include "core/paper_tables.hh"
#include "core/power_scenario.hh"
#include "core/scenario.hh"

using namespace jtps;
using core::PowerScenario;
using core::PowerScenarioConfig;
using core::Scenario;
using core::ScenarioConfig;

namespace
{

/** A scaled-down scenario that still exercises every code path. */
ScenarioConfig
fastConfig(bool class_sharing)
{
    ScenarioConfig cfg;
    cfg.enableClassSharing = class_sharing;
    cfg.warmupMs = 8'000;
    cfg.steadyMs = 12'000;
    cfg.host.ramBytes = 6ULL * GiB;
    return cfg;
}

std::vector<workload::WorkloadSpec>
tuscanyVms(std::size_t n)
{
    return std::vector<workload::WorkloadSpec>(
        n, workload::tuscanyBigbank());
}

} // namespace

TEST(Scenario, BuildsAndRunsTuscany)
{
    setVerbose(false);
    Scenario s(fastConfig(false), tuscanyVms(3));
    s.build();
    s.run();
    s.hv().checkConsistency();

    EXPECT_EQ(s.vmCount(), 3u);
    auto acct = s.account();
    EXPECT_EQ(acct.attributedBytes(), acct.residentBytes());

    // Each VM runs one Java process whose memory dominates dozens of MiB.
    for (const auto &row : s.javaRows()) {
        const auto &pu = acct.usage(row.vm, row.pid);
        EXPECT_GT(pu.ownedTotal() + pu.sharedTotal(), 50 * MiB);
    }
}

TEST(Scenario, ClassSharingIncreasesJavaSavings)
{
    setVerbose(false);
    Scenario base(fastConfig(false), tuscanyVms(3));
    base.build();
    base.run();
    Scenario cds(fastConfig(true), tuscanyVms(3));
    cds.build();
    cds.run();

    auto base_acct = base.account();
    auto cds_acct = cds.account();

    // Non-primary Java savings must grow substantially with the copied
    // cache (paper Fig. 2 vs Fig. 4).
    Bytes base_saving = 0, cds_saving = 0;
    for (VmId v = 1; v < 3; ++v) {
        base_saving += base_acct.vmBreakdown(v).savingJava;
        cds_saving += cds_acct.vmBreakdown(v).savingJava;
    }
    EXPECT_GT(cds_saving, base_saving + 10 * MiB);

    // Total host usage must drop.
    Bytes base_total = 0, cds_total = 0;
    for (VmId v = 0; v < 3; ++v) {
        base_total += base_acct.vmBreakdown(v).usageTotal();
        cds_total += cds_acct.vmBreakdown(v).usageTotal();
    }
    EXPECT_LT(cds_total, base_total);
}

TEST(Scenario, ClassMetadataSharingOnlyWithCds)
{
    setVerbose(false);
    Scenario base(fastConfig(false), tuscanyVms(2));
    base.build();
    base.run();
    Scenario cds(fastConfig(true), tuscanyVms(2));
    cds.build();
    cds.run();

    auto shared_fraction = [](Scenario &s, VmId v) {
        auto acct = s.account();
        auto rows = s.javaRows();
        const auto &pu = acct.usage(rows[v].vm, rows[v].pid);
        const auto idx =
            static_cast<std::size_t>(guest::MemCategory::ClassMetadata);
        const Bytes total = pu.owned[idx] + pu.shared[idx];
        return total == 0
                   ? 0.0
                   : static_cast<double>(pu.shared[idx]) / total;
    };

    // Non-primary VM (VM2): class metadata barely shares without the
    // cache, and mostly shares with it (paper: 89.6%).
    EXPECT_LT(shared_fraction(base, 1), 0.10);
    EXPECT_GT(shared_fraction(cds, 1), 0.60);
}

TEST(Scenario, RepopulatedCachesDoNotShareAcrossVms)
{
    setVerbose(false);
    // Ablation: same classes, but each VM populates its own cache.
    ScenarioConfig cfg = fastConfig(true);
    cfg.copyCacheToAllVms = false;
    Scenario local(cfg, tuscanyVms(2));
    local.build();
    local.run();

    ScenarioConfig copy_cfg = fastConfig(true);
    Scenario copied(copy_cfg, tuscanyVms(2));
    copied.build();
    copied.run();

    auto saving = [](Scenario &s) {
        return s.account().vmBreakdown(1).savingJava;
    };
    EXPECT_GT(saving(copied), saving(local) + 5 * MiB);
}

TEST(Scenario, DeterministicAcrossRuns)
{
    setVerbose(false);
    auto run_once = []() {
        Scenario s(fastConfig(true), tuscanyVms(2));
        s.build();
        s.run();
        auto acct = s.account();
        return std::make_tuple(acct.residentBytes(),
                               acct.vmBreakdown(0).usageTotal(),
                               acct.vmBreakdown(1).savingJava,
                               s.ksm().pagesSharing());
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(Scenario, SeedChangesContentNotShape)
{
    setVerbose(false);
    ScenarioConfig a = fastConfig(false);
    ScenarioConfig b = fastConfig(false);
    b.seed = 4711;
    Scenario sa(a, tuscanyVms(2)), sb(b, tuscanyVms(2));
    sa.build();
    sa.run();
    sb.build();
    sb.run();
    // Identical structure: same resident total within a small margin.
    const double ra = static_cast<double>(sa.account().residentBytes());
    const double rb = static_cast<double>(sb.account().residentBytes());
    EXPECT_NEAR(ra / rb, 1.0, 0.03);
}

TEST(Scenario, MixedMiddlewareUsesSeparateCaches)
{
    setVerbose(false);
    // One WAS app + one Tuscany server: two distinct middleware stacks
    // must get two distinct cache files, and the WAS cache must not
    // share pages with the Tuscany cache.
    std::vector<workload::WorkloadSpec> vms = {
        workload::tuscanyBigbank(), workload::dayTraderIntel(),
        workload::tuscanyBigbank()};
    ScenarioConfig cfg = fastConfig(true);
    Scenario s(cfg, vms);
    s.build();
    s.run();
    s.hv().checkConsistency();

    auto acct = s.account();
    // Tuscany VM3 shares class metadata with Tuscany VM1 (same cache
    // file), despite the DayTrader VM between them.
    const auto rows = s.javaRows();
    const auto idx =
        static_cast<std::size_t>(guest::MemCategory::ClassMetadata);
    const auto &tuscany2 = acct.usage(rows[2].vm, rows[2].pid);
    EXPECT_GT(tuscany2.shared[idx], 5 * MiB);
    // The first Tuscany process owns the shared pages.
    const auto &tuscany1 = acct.usage(rows[0].vm, rows[0].pid);
    EXPECT_LT(tuscany1.shared[idx], tuscany2.shared[idx]);
}

TEST(Scenario, ThpSuppressesAnonSharingButNotTheCache)
{
    setVerbose(false);
    ScenarioConfig cfg = fastConfig(true);
    cfg.guestThp = true;
    Scenario thp(cfg, tuscanyVms(2));
    thp.build();
    thp.run();

    // The cache file still shares (file pages are never THP-backed).
    auto acct = thp.account();
    const auto idx =
        static_cast<std::size_t>(guest::MemCategory::ClassMetadata);
    const auto rows = thp.javaRows();
    EXPECT_GT(acct.usage(rows[1].vm, rows[1].pid).shared[idx],
              2 * MiB);
    EXPECT_GT(thp.stats().get("ksm.skipped_huge"), 0u);
}

TEST(PowerScenario, PreloadingIncreasesSharing)
{
    setVerbose(false);
    PowerScenarioConfig no_preload;
    no_preload.warmEpochs = 4;
    PowerScenario p1(no_preload);
    p1.build();
    auto r1 = p1.measure();

    PowerScenarioConfig preload;
    preload.preloadClasses = true;
    preload.warmEpochs = 4;
    PowerScenario p2(preload);
    p2.build();
    auto r2 = p2.measure();

    EXPECT_GT(r1.saving(), 0u);
    EXPECT_GT(r2.saving(), r1.saving() + 20 * MiB);
    EXPECT_LT(r2.usageAfterSharing, r2.usageBeforeSharing);
    p2.hv().checkConsistency();
}

TEST(PaperTables, RenderAllThree)
{
    EXPECT_NE(core::renderTable1().find("KVM"), std::string::npos);
    EXPECT_NE(core::renderTable2().find("KSM"), std::string::npos);
    EXPECT_NE(core::renderTable3().find("DayTrader"), std::string::npos);
}
