/**
 * @file
 * Unit tests for the discrete-event engine.
 */

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hh"

using namespace jtps;
using sim::EventQueue;

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.scheduleAt(30, [&] { order.push_back(3); });
    q.scheduleAt(10, [&] { order.push_back(1); });
    q.scheduleAt(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.scheduleAt(5, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue q;
    Tick fired_at = 0;
    q.scheduleAt(100, [&] {
        q.scheduleAfter(50, [&] { fired_at = q.now(); });
    });
    q.run();
    EXPECT_EQ(fired_at, 150u);
}

TEST(EventQueue, PeriodicRunsUntilCancelled)
{
    EventQueue q;
    int count = 0;
    q.schedulePeriodic(10, [&] {
        ++count;
        return count < 5;
    });
    q.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(q.now(), 50u);
}

TEST(EventQueue, RunUntilLeavesLaterEvents)
{
    EventQueue q;
    int fired = 0;
    q.scheduleAt(10, [&] { ++fired; });
    q.scheduleAt(20, [&] { ++fired; });
    q.scheduleAt(30, [&] { ++fired; });
    q.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_EQ(q.now(), 20u);
    q.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle)
{
    EventQueue q;
    q.runUntil(500);
    EXPECT_EQ(q.now(), 500u);
}

TEST(EventQueue, ClearDropsEvents)
{
    EventQueue q;
    int fired = 0;
    q.scheduleAt(10, [&] { ++fired; });
    q.clear();
    q.run();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, PeriodicInterleavesWithOneShots)
{
    EventQueue q;
    std::vector<std::pair<char, Tick>> log;
    q.schedulePeriodic(7, [&] {
        log.push_back({'p', q.now()});
        return q.now() < 28;
    });
    q.scheduleAt(10, [&] { log.push_back({'o', q.now()}); });
    q.run();
    ASSERT_GE(log.size(), 3u);
    // One-shot at 10 must land between periodic firings at 7 and 14.
    auto it = std::find_if(log.begin(), log.end(),
                           [](auto &e) { return e.first == 'o'; });
    ASSERT_NE(it, log.end());
    EXPECT_EQ(it->second, 10u);
}

// ----------------------------------------------------------------------
// Drain reentrancy and owned (stage/commit) batches. Each behaviour is
// pinned at 1 and 4 stage threads: the threaded drain path must keep
// the serial contract exactly.
// ----------------------------------------------------------------------

namespace
{

std::vector<unsigned>
stageWidths()
{
    return {1, 4};
}

} // namespace

TEST(EventQueue, ScheduleAtNowDuringDrainRunsSameTick)
{
    for (unsigned width : stageWidths()) {
        SCOPED_TRACE(width);
        EventQueue q;
        q.setStageThreads(width);
        std::vector<std::pair<int, Tick>> log;
        // The first event at tick 10 schedules two more *at now()*
        // while the tick is draining; a later tick-10 event was
        // already queued. All four must run at tick 10 in insertion
        // order.
        q.scheduleAt(10, [&] {
            log.push_back({0, q.now()});
            q.scheduleAt(q.now(), [&] { log.push_back({2, q.now()}); });
            q.scheduleAt(q.now(), [&] { log.push_back({3, q.now()}); });
        });
        q.scheduleAt(10, [&] { log.push_back({1, q.now()}); });
        q.scheduleAt(20, [&] { log.push_back({4, q.now()}); });
        q.run();
        ASSERT_EQ(log.size(), 5u);
        for (int i = 0; i < 5; ++i) {
            EXPECT_EQ(log[i].first, i);
            EXPECT_EQ(log[i].second, i < 4 ? 10u : 20u);
        }
    }
}

TEST(EventQueue, OwnedBatchCommitsInAscendingOwnerOrder)
{
    for (unsigned width : stageWidths()) {
        SCOPED_TRACE(width);
        EventQueue q;
        q.setStageThreads(width);
        std::mutex mu;
        std::vector<std::string> log;
        std::atomic<int> stages_done{0};
        // Insertion order 2, 0, 1; commits must run 0, 1, 2, and only
        // after every stage in the batch has finished.
        for (std::uint64_t owner : {2u, 0u, 1u}) {
            q.scheduleOwnedAt(
                5, owner,
                [&, owner] {
                    std::lock_guard<std::mutex> lock(mu);
                    log.push_back("s" + std::to_string(owner));
                    ++stages_done;
                    return true;
                },
                [&, owner](bool staged) {
                    EXPECT_TRUE(staged);
                    EXPECT_EQ(stages_done.load(), 3);
                    log.push_back("c" + std::to_string(owner));
                });
        }
        q.run();
        ASSERT_EQ(log.size(), 6u);
        // Stage order across owners is unspecified under a pool; the
        // serial commit tail is the contract.
        EXPECT_EQ(log[3], "c0");
        EXPECT_EQ(log[4], "c1");
        EXPECT_EQ(log[5], "c2");
    }
}

TEST(EventQueue, SameOwnerKeepsInsertionOrderWithinBatch)
{
    for (unsigned width : stageWidths()) {
        SCOPED_TRACE(width);
        EventQueue q;
        q.setStageThreads(width);
        std::vector<int> log;
        for (int i = 0; i < 3; ++i) {
            q.scheduleOwnedAt(
                5, 7, [&log, i] {
                    log.push_back(i);
                    return true;
                },
                [&log, i](bool) { log.push_back(10 + i); });
        }
        q.run();
        // One owner: stages 0,1,2 then commits 10,11,12.
        EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 10, 11, 12}));
    }
}

TEST(EventQueue, UnownedEventSplitsOwnedBatch)
{
    for (unsigned width : stageWidths()) {
        SCOPED_TRACE(width);
        EventQueue q;
        q.setStageThreads(width);
        std::vector<std::string> log;
        q.scheduleOwnedAt(
            5, 1, [&] {
                log.push_back("s1");
                return true;
            },
            [&](bool) { log.push_back("c1"); });
        q.scheduleAt(5, [&] { log.push_back("u"); });
        q.scheduleOwnedAt(
            5, 0, [&] {
                log.push_back("s0");
                return true;
            },
            [&](bool) { log.push_back("c0"); });
        q.run();
        // The unowned event ends the first batch: owner 1 stages and
        // commits entirely before it, owner 0 entirely after, exactly
        // the strict (when, seq) serial order.
        EXPECT_EQ(log, (std::vector<std::string>{"s1", "c1", "u", "s0",
                                                 "c0"}));
    }
}

TEST(EventQueue, CommitMayRescheduleSameTick)
{
    for (unsigned width : stageWidths()) {
        SCOPED_TRACE(width);
        EventQueue q;
        q.setStageThreads(width);
        Tick fired_at = 0;
        Tick owned_at = 0;
        q.scheduleOwnedAt(
            5, 0, [] { return true; },
            [&](bool) {
                owned_at = q.now();
                q.scheduleAt(q.now(), [&] { fired_at = q.now(); });
                q.scheduleOwnedAt(
                    q.now() + 5, 0, [] { return true; }, [](bool) {});
            });
        q.run();
        EXPECT_EQ(owned_at, 5u);
        EXPECT_EQ(fired_at, 5u);
        EXPECT_EQ(q.now(), 10u);
    }
}

TEST(EventQueue, StageDeclineDeliversFalseToCommit)
{
    for (unsigned width : stageWidths()) {
        SCOPED_TRACE(width);
        EventQueue q;
        q.setStageThreads(width);
        std::vector<std::pair<std::uint64_t, bool>> commits;
        q.scheduleOwnedAt(
            5, 0, [] { return false; },
            [&](bool staged) { commits.push_back({0, staged}); });
        q.scheduleOwnedAt(
            5, 1, [] { return true; },
            [&](bool staged) { commits.push_back({1, staged}); });
        q.run();
        ASSERT_EQ(commits.size(), 2u);
        EXPECT_EQ(commits[0], (std::pair<std::uint64_t, bool>{0, false}));
        EXPECT_EQ(commits[1], (std::pair<std::uint64_t, bool>{1, true}));
    }
}

TEST(EventQueueDeathTest, SchedulingDuringStageIsAPanic)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    auto run = [] {
        EventQueue q;
        q.setStageThreads(1); // inline stage still forbids scheduling
        q.scheduleOwnedAt(
            5, 0,
            [&q] {
                q.scheduleAt(q.now(), [] {});
                return true;
            },
            [](bool) {});
        q.run();
    };
    EXPECT_DEATH(run(), "stage");
}
