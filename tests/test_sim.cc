/**
 * @file
 * Unit tests for the discrete-event engine.
 */

#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hh"

using namespace jtps;
using sim::EventQueue;

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.scheduleAt(30, [&] { order.push_back(3); });
    q.scheduleAt(10, [&] { order.push_back(1); });
    q.scheduleAt(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.scheduleAt(5, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue q;
    Tick fired_at = 0;
    q.scheduleAt(100, [&] {
        q.scheduleAfter(50, [&] { fired_at = q.now(); });
    });
    q.run();
    EXPECT_EQ(fired_at, 150u);
}

TEST(EventQueue, PeriodicRunsUntilCancelled)
{
    EventQueue q;
    int count = 0;
    q.schedulePeriodic(10, [&] {
        ++count;
        return count < 5;
    });
    q.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(q.now(), 50u);
}

TEST(EventQueue, RunUntilLeavesLaterEvents)
{
    EventQueue q;
    int fired = 0;
    q.scheduleAt(10, [&] { ++fired; });
    q.scheduleAt(20, [&] { ++fired; });
    q.scheduleAt(30, [&] { ++fired; });
    q.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_EQ(q.now(), 20u);
    q.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle)
{
    EventQueue q;
    q.runUntil(500);
    EXPECT_EQ(q.now(), 500u);
}

TEST(EventQueue, ClearDropsEvents)
{
    EventQueue q;
    int fired = 0;
    q.scheduleAt(10, [&] { ++fired; });
    q.clear();
    q.run();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, PeriodicInterleavesWithOneShots)
{
    EventQueue q;
    std::vector<std::pair<char, Tick>> log;
    q.schedulePeriodic(7, [&] {
        log.push_back({'p', q.now()});
        return q.now() < 28;
    });
    q.scheduleAt(10, [&] { log.push_back({'o', q.now()}); });
    q.run();
    ASSERT_GE(log.size(), 3u);
    // One-shot at 10 must land between periodic firings at 7 and 14.
    auto it = std::find_if(log.begin(), log.end(),
                           [](auto &e) { return e.first == 'o'; });
    ASSERT_NE(it, log.end());
    EXPECT_EQ(it->second, 10u);
}
