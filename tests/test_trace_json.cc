/**
 * @file
 * Tests for the observability layer: the JSON writer, the trace
 * recorder, and the JSON export of stats / sharing series / traces.
 *
 * The key properties guarded here:
 *  - JSON output is byte-deterministic (two same-seed scenario runs
 *    serialize to identical strings);
 *  - serialized documents round-trip: a small in-test parser recovers
 *    exactly the values the registry / monitor held;
 *  - a disabled TraceBuffer records nothing and stays out of the way
 *    of the scan hot path.
 */

#include <cctype>
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/json_export.hh"
#include "base/json_writer.hh"
#include "base/stats.hh"
#include "base/trace.hh"
#include "core/scenario.hh"
#include "ksm/ksm_scanner.hh"

using namespace jtps;

namespace
{

// ---------------------------------------------------------------------
// A minimal JSON parser for the subset the writer emits (objects,
// arrays, strings with the writer's escapes, numbers, booleans, null).
// ---------------------------------------------------------------------

struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    const JsonValue *
    find(const std::string &key) const
    {
        for (const auto &[k, v] : object)
            if (k == key)
                return &v;
        return nullptr;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipWs();
        EXPECT_EQ(pos_, text_.size()) << "trailing garbage";
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        EXPECT_LT(pos_, text_.size()) << "unexpected end of document";
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    expect(char c)
    {
        ASSERT_EQ(peek(), c);
        ++pos_;
    }

    JsonValue
    parseValue()
    {
        switch (peek()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return parseString();
          case 't':
          case 'f':
            return parseBool();
          case 'n':
            pos_ += 4;
            return JsonValue{};
          default:
            return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        expect('{');
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            JsonValue key = parseString();
            expect(':');
            v.object.emplace_back(key.string, parseValue());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    parseArray()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        expect('[');
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array.push_back(parseValue());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    JsonValue
    parseString()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        expect('"');
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c != '\\') {
                v.string.push_back(c);
                continue;
            }
            const char esc = text_[pos_++];
            switch (esc) {
              case 'n':
                v.string.push_back('\n');
                break;
              case 't':
                v.string.push_back('\t');
                break;
              case 'r':
                v.string.push_back('\r');
                break;
              case 'u': {
                const std::string hex = text_.substr(pos_, 4);
                pos_ += 4;
                v.string.push_back(static_cast<char>(
                    std::stoi(hex, nullptr, 16)));
                break;
              }
              default:
                v.string.push_back(esc); // \" and \\ and \/
            }
        }
        expect('"');
        return v;
    }

    JsonValue
    parseBool()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        if (text_[pos_] == 't') {
            v.boolean = true;
            pos_ += 4;
        } else {
            v.boolean = false;
            pos_ += 5;
        }
        return v;
    }

    JsonValue
    parseNumber()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        std::size_t end = pos_;
        while (end < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[end])) ||
                text_[end] == '-' || text_[end] == '+' ||
                text_[end] == '.' || text_[end] == 'e' ||
                text_[end] == 'E'))
            ++end;
        v.number = std::stod(text_.substr(pos_, end - pos_));
        pos_ = end;
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

core::ScenarioConfig
fastConfig()
{
    core::ScenarioConfig cfg;
    cfg.enableClassSharing = true;
    cfg.warmupMs = 6'000;
    cfg.steadyMs = 8'000;
    cfg.host.ramBytes = 6ULL * GiB;
    return cfg;
}

std::vector<workload::WorkloadSpec>
tuscanyVms(std::size_t n)
{
    return std::vector<workload::WorkloadSpec>(
        n, workload::tuscanyBigbank());
}

/** Serialize a traced + monitored scenario run the way jtps does. */
std::string
runAndSerialize()
{
    core::Scenario s(fastConfig(), tuscanyVms(2));
    s.build();
    s.trace().enable();
    s.attachSharingMonitor(2'000);
    s.run();

    JsonWriter w;
    w.beginObject();
    w.field("schema_version", analysis::jsonSchemaVersion);
    w.key("stats");
    analysis::writeStatsJson(w, s.stats());
    w.key("sharing_timeline");
    analysis::writeSharingSeriesJson(w, *s.monitor());
    w.key("trace");
    analysis::writeTraceJson(w, s.trace());
    w.endObject();
    return w.str();
}

} // namespace

// ---------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------

TEST(JsonWriter, NestingAndKeyOrder)
{
    JsonWriter w;
    w.beginObject();
    w.field("b", 1);
    w.key("a").beginArray();
    w.value(1).value("two").value(3.5).value(true).valueNull();
    w.endArray();
    w.key("obj").beginObject();
    w.field("x", std::uint64_t{42});
    w.endObject();
    w.endObject();

    // Keys stay in emission order (not sorted); values keep their types.
    EXPECT_EQ(w.str(),
              "{\n"
              "  \"b\": 1,\n"
              "  \"a\": [\n"
              "    1,\n"
              "    \"two\",\n"
              "    3.5,\n"
              "    true,\n"
              "    null\n"
              "  ],\n"
              "  \"obj\": {\n"
              "    \"x\": 42\n"
              "  }\n"
              "}\n");
}

TEST(JsonWriter, EscapesStrings)
{
    EXPECT_EQ(JsonWriter::quote("plain"), "\"plain\"");
    EXPECT_EQ(JsonWriter::quote("a\"b"), "\"a\\\"b\"");
    EXPECT_EQ(JsonWriter::quote("a\\b"), "\"a\\\\b\"");
    EXPECT_EQ(JsonWriter::quote("a\nb\tc\r"), "\"a\\nb\\tc\\r\"");
    EXPECT_EQ(JsonWriter::quote(std::string_view("\x01", 1)),
              "\"\\u0001\"");
}

TEST(JsonWriter, FormatsDoubles)
{
    EXPECT_EQ(JsonWriter::formatDouble(0.0), "0");
    EXPECT_EQ(JsonWriter::formatDouble(1.5), "1.5");
    // Non-finite values have no JSON representation; clamp to 0.
    EXPECT_EQ(JsonWriter::formatDouble(1.0 / 0.0), "0");
    // %.17g survives a strtod round-trip exactly.
    const double v = 0.1 + 0.2;
    EXPECT_EQ(std::stod(JsonWriter::formatDouble(v)), v);
}

TEST(JsonWriter, StringValuesRoundTrip)
{
    JsonWriter w;
    w.beginObject();
    w.field("s", "line1\nline2\t\"quoted\" back\\slash");
    w.endObject();
    JsonValue doc = JsonParser(w.str()).parse();
    ASSERT_NE(doc.find("s"), nullptr);
    EXPECT_EQ(doc.find("s")->string, "line1\nline2\t\"quoted\" back\\slash");
}

// ---------------------------------------------------------------------
// TraceBuffer
// ---------------------------------------------------------------------

TEST(TraceBuffer, DisabledRecordsNothing)
{
    TraceBuffer t;
    for (int i = 0; i < 1000; ++i)
        t.record(TraceEventType::CowBreak, 0, i, i);
    EXPECT_TRUE(t.events().empty());
    EXPECT_EQ(t.dropped(), 0u);
}

TEST(TraceBuffer, RecordsWithClockWhenEnabled)
{
    TraceBuffer t;
    Tick now = 100;
    t.setClock([&now]() { return now; });
    t.enable(16);
    t.record(TraceEventType::SwapOut, 3, 7, 9);
    now = 250;
    t.record(TraceEventType::SwapIn, 4, 8, 10);

    ASSERT_EQ(t.events().size(), 2u);
    EXPECT_EQ(t.events()[0].tick, 100u);
    EXPECT_EQ(t.events()[0].type, TraceEventType::SwapOut);
    EXPECT_EQ(t.events()[0].vm, 3u);
    EXPECT_EQ(t.events()[0].arg0, 7u);
    EXPECT_EQ(t.events()[0].arg1, 9u);
    EXPECT_EQ(t.events()[1].tick, 250u);
    EXPECT_EQ(t.countOf(TraceEventType::SwapOut), 1u);
    EXPECT_EQ(t.countOf(TraceEventType::SwapIn), 1u);
    EXPECT_EQ(t.countOf(TraceEventType::CowBreak), 0u);
}

TEST(TraceBuffer, DropsAtCapacity)
{
    TraceBuffer t;
    t.enable(4);
    for (int i = 0; i < 10; ++i)
        t.record(TraceEventType::GcGlobal, 0, i, 0);
    EXPECT_EQ(t.events().size(), 4u);
    EXPECT_EQ(t.dropped(), 6u);
    t.clear();
    EXPECT_TRUE(t.events().empty());
    EXPECT_EQ(t.dropped(), 0u);
    EXPECT_TRUE(t.enabled());
}

TEST(TraceBuffer, EventNamesAreStable)
{
    // These strings are the JSON vocabulary documented in
    // docs/METRICS.md; changing one is a schema change.
    EXPECT_STREQ(traceEventName(TraceEventType::KsmStableMerge),
                 "ksm_stable_merge");
    EXPECT_STREQ(traceEventName(TraceEventType::KsmUnstablePromotion),
                 "ksm_unstable_promotion");
    EXPECT_STREQ(traceEventName(TraceEventType::KsmFullScan),
                 "ksm_full_scan");
    EXPECT_STREQ(traceEventName(TraceEventType::CowBreak), "cow_break");
    EXPECT_STREQ(traceEventName(TraceEventType::SwapOut), "swap_out");
    EXPECT_STREQ(traceEventName(TraceEventType::SwapIn), "swap_in");
    EXPECT_STREQ(traceEventName(TraceEventType::BalloonInflate),
                 "balloon_inflate");
    EXPECT_STREQ(traceEventName(TraceEventType::BalloonDeflate),
                 "balloon_deflate");
    EXPECT_STREQ(traceEventName(TraceEventType::GcGlobal), "gc_global");
    EXPECT_STREQ(traceEventName(TraceEventType::GcMinor), "gc_minor");
}

TEST(TraceBuffer, DisabledStaysOutOfScanHotPath)
{
    // Semantic guard: a wired-but-disabled TraceBuffer must not change
    // what the scanner computes, and a generous timing bound catches a
    // gross regression of the disabled path (the precise <2% bound is
    // tracked by bench_micro_components).
    auto scan = [](TraceBuffer *trace, StatSet &stats) {
        hv::HostConfig host;
        host.ramBytes = 2ULL * GiB;
        host.reserveBytes = 0;
        hv::KvmHypervisor hv(host, stats);
        if (trace)
            hv.setTrace(trace);
        VmId a = hv.createVm("a", 64 * MiB, 0);
        VmId b = hv.createVm("b", 64 * MiB, 0);
        for (Gfn g = 0; g < 8192; ++g) {
            hv.writePage(a, g, mem::PageData::filled(4, g));
            hv.writePage(b, g, mem::PageData::filled(4, g));
        }
        ksm::KsmConfig cfg;
        cfg.pagesToScan = 1u << 30;
        ksm::KsmScanner scanner(hv, cfg, stats);
        const auto start = std::chrono::steady_clock::now();
        for (int pass = 0; pass < 4; ++pass)
            scanner.scanBatch();
        return std::chrono::steady_clock::now() - start;
    };

    StatSet plain_stats;
    const auto plain_time = scan(nullptr, plain_stats);

    TraceBuffer trace; // wired but never enabled
    StatSet wired_stats;
    const auto wired_time = scan(&trace, wired_stats);

    EXPECT_TRUE(trace.events().empty());
    EXPECT_EQ(trace.dropped(), 0u);
    EXPECT_EQ(plain_stats.counters(), wired_stats.counters());
    EXPECT_LT(wired_time.count(), plain_time.count() * 3 + 50'000'000);
}

// ---------------------------------------------------------------------
// JSON export round-trips
// ---------------------------------------------------------------------

TEST(JsonExport, StatsRoundTrip)
{
    StatSet stats;
    stats.inc("ksm.stable_merges", 12345);
    stats.inc("hv.cow_breaks", 7);
    stats.set("host.frames_allocated", 1ULL << 40);
    stats.setScalar("ksm.cpu_usage", 0.0215);
    stats.setScalar("bench.score", 148.25);

    JsonWriter w;
    analysis::writeStatsJson(w, stats);
    JsonValue doc = JsonParser(w.str()).parse();

    const JsonValue *counters = doc.find("counters");
    const JsonValue *scalars = doc.find("scalars");
    ASSERT_NE(counters, nullptr);
    ASSERT_NE(scalars, nullptr);
    ASSERT_EQ(counters->object.size(), stats.counters().size());
    ASSERT_EQ(scalars->object.size(), stats.scalars().size());

    // Every registry entry appears, in registry (sorted-name) order,
    // with the exact value.
    std::size_t i = 0;
    for (const auto &[name, value] : stats.counters()) {
        EXPECT_EQ(counters->object[i].first, name);
        EXPECT_EQ(counters->object[i].second.number,
                  static_cast<double>(value));
        ++i;
    }
    i = 0;
    for (const auto &[name, value] : stats.scalars()) {
        EXPECT_EQ(scalars->object[i].first, name);
        EXPECT_EQ(scalars->object[i].second.number, value);
        ++i;
    }
}

TEST(JsonExport, SharingSeriesAndTraceRoundTrip)
{
    core::Scenario s(fastConfig(), tuscanyVms(2));
    s.build();
    s.trace().enable();
    analysis::SharingMonitor &mon = s.attachSharingMonitor(2'000);
    s.run();

    ASSERT_FALSE(mon.samples().empty());
    ASSERT_FALSE(s.trace().events().empty());

    JsonWriter ws;
    analysis::writeSharingSeriesJson(ws, mon);
    JsonValue series = JsonParser(ws.str()).parse();
    ASSERT_EQ(series.array.size(), mon.samples().size());
    for (std::size_t i = 0; i < series.array.size(); ++i) {
        const JsonValue &row = series.array[i];
        const analysis::SharingSample &sample = mon.samples()[i];
        EXPECT_EQ(row.find("tick_ms")->number,
                  static_cast<double>(sample.tick));
        EXPECT_EQ(row.find("pages_shared")->number,
                  static_cast<double>(sample.pagesShared));
        EXPECT_EQ(row.find("pages_sharing")->number,
                  static_cast<double>(sample.pagesSharing));
        EXPECT_EQ(row.find("resident_bytes")->number,
                  static_cast<double>(sample.residentBytes));
        EXPECT_EQ(row.find("major_faults")->number,
                  static_cast<double>(sample.majorFaults));
        EXPECT_EQ(row.find("full_scans")->number,
                  static_cast<double>(sample.fullScans));
    }

    JsonWriter wt;
    analysis::writeTraceJson(wt, s.trace());
    JsonValue trace = JsonParser(wt.str()).parse();
    EXPECT_EQ(trace.find("dropped")->number,
              static_cast<double>(s.trace().dropped()));
    const JsonValue *events = trace.find("events");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->array.size(), s.trace().events().size());
    for (std::size_t i = 0; i < events->array.size(); ++i) {
        const JsonValue &row = events->array[i];
        const TraceEvent &ev = s.trace().events()[i];
        EXPECT_EQ(row.find("tick_ms")->number,
                  static_cast<double>(ev.tick));
        EXPECT_EQ(row.find("type")->string, traceEventName(ev.type));
        if (ev.vm == invalidVm)
            EXPECT_EQ(row.find("vm")->kind, JsonValue::Kind::Null);
        else
            EXPECT_EQ(row.find("vm")->number,
                      static_cast<double>(ev.vm));
    }
}

TEST(JsonExport, SameSeedRunsSerializeByteIdentically)
{
    const std::string a = runAndSerialize();
    const std::string b = runAndSerialize();
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "same-seed scenario JSON must be byte-identical";

    // And the document is well formed with the expected top-level keys.
    JsonValue doc = JsonParser(a).parse();
    EXPECT_NE(doc.find("schema_version"), nullptr);
    EXPECT_NE(doc.find("stats"), nullptr);
    EXPECT_NE(doc.find("sharing_timeline"), nullptr);
    EXPECT_NE(doc.find("trace"), nullptr);
}
