/**
 * @file
 * Unit tests for the guest OS: processes, VMAs, page tables, the file
 * page cache, kernel boot.
 */

#include <gtest/gtest.h>

#include "base/stats.hh"
#include "guest/guest_os.hh"
#include "hv/hypervisor.hh"

using namespace jtps;
using guest::FileImage;
using guest::GuestOs;
using guest::KernelConfig;
using guest::MemCategory;
using guest::Vma;
using hv::KvmHypervisor;
using mem::PageData;

namespace
{

struct GuestFixture : ::testing::Test
{
    StatSet stats;
    hv::HostConfig host_cfg;
    std::unique_ptr<KvmHypervisor> hv;
    std::unique_ptr<GuestOs> os;

    void
    SetUp() override
    {
        host_cfg.ramBytes = 512 * MiB;
        host_cfg.reserveBytes = 0;
        hv = std::make_unique<KvmHypervisor>(host_cfg, stats);
        VmId vm = hv->createVm("vm", 128 * MiB, 0);
        os = std::make_unique<GuestOs>(*hv, vm, "vm", 1234);
    }
};

} // namespace

TEST_F(GuestFixture, SpawnAssignsSequentialPids)
{
    EXPECT_EQ(os->process(0).name, "[kernel]");
    Pid p1 = os->spawn("a", false);
    Pid p2 = os->spawn("b", true);
    EXPECT_EQ(p1, 1u);
    EXPECT_EQ(p2, 2u);
    EXPECT_TRUE(os->process(p2).isJava);
}

TEST_F(GuestFixture, AnonMemoryIsDemandPaged)
{
    Pid pid = os->spawn("p", false);
    Vma *vma = os->mmapAnon(pid, 64 * KiB, MemCategory::JvmWork, "x");
    EXPECT_EQ(vma->numPages, 16u);
    EXPECT_EQ(os->gfnsAllocated(), 0u);
    EXPECT_EQ(os->readWord(vma, 3, 0), 0u); // read doesn't populate
    EXPECT_EQ(os->gfnsAllocated(), 0u);

    os->writeWord(vma, 3, 1, 99);
    EXPECT_EQ(os->gfnsAllocated(), 1u);
    EXPECT_EQ(os->readWord(vma, 3, 1), 99u);
}

TEST_F(GuestFixture, AslrMakesLayoutsDiffer)
{
    Pid p1 = os->spawn("p1", false);
    Pid p2 = os->spawn("p2", false);
    Vma *v1 = os->mmapAnon(p1, 64 * KiB, MemCategory::JvmWork, "x");
    Vma *v2 = os->mmapAnon(p2, 64 * KiB, MemCategory::JvmWork, "x");
    EXPECT_NE(v1->startVpn, v2->startVpn);
}

TEST_F(GuestFixture, FileMmapAliasesPageCache)
{
    FileImage f = FileImage::shared("/opt/lib.so", 32 * KiB);
    Pid p1 = os->spawn("p1", false);
    Pid p2 = os->spawn("p2", false);
    Vma *v1 = os->mmapFile(p1, f, MemCategory::Code);
    Vma *v2 = os->mmapFile(p2, f, MemCategory::Code);

    os->touch(v1, 2);
    os->touch(v2, 2);
    // Both processes and the kernel cache hold the same guest frame:
    // only one cache page was created.
    EXPECT_EQ(os->pageCachePages(), 1u);
    const Gfn g1 = os->process(p1).pageTable.at(v1->vpnAt(2));
    const Gfn g2 = os->process(p2).pageTable.at(v2->vpnAt(2));
    EXPECT_EQ(g1, g2);
    // Content comes from the file image.
    EXPECT_EQ(os->readWord(v1, 2, 0), f.pageContent(2).word[0]);
}

TEST_F(GuestFixture, SharedFilesHaveEqualContentAcrossGuests)
{
    VmId vm2 = hv->createVm("vm2", 128 * MiB, 0);
    GuestOs os2(*hv, vm2, "vm2", 9999);

    FileImage f = FileImage::shared("/opt/lib.so", 16 * KiB);
    Gfn a = os->pageCacheGet(f, 0);
    Gfn b = os2.pageCacheGet(f, 0);
    EXPECT_EQ(*hv->peek(os->vmId(), a), *hv->peek(vm2, b));

    FileImage pa = FileImage::perVm("/var/log/m", 16 * KiB, os->seed());
    FileImage pb = FileImage::perVm("/var/log/m", 16 * KiB, os2.seed());
    Gfn c = os->pageCacheGet(pa, 0);
    Gfn d = os2.pageCacheGet(pb, 0);
    EXPECT_NE(*hv->peek(os->vmId(), c), *hv->peek(vm2, d));
}

TEST_F(GuestFixture, DiscardFreesAnonButNotFilePages)
{
    Pid pid = os->spawn("p", false);
    Vma *anon = os->mmapAnon(pid, 16 * KiB, MemCategory::JavaHeap, "h");
    os->writeWord(anon, 0, 0, 1);
    const std::uint64_t gfns = os->gfnsAllocated();
    os->discard(anon, 0);
    EXPECT_EQ(os->gfnsAllocated(), gfns - 1);

    FileImage f = FileImage::shared("/f", 16 * KiB);
    Vma *file = os->mmapFile(pid, f, MemCategory::Code);
    os->touch(file, 0);
    const std::uint64_t gfns2 = os->gfnsAllocated();
    os->discard(file, 0); // only unmaps; cache retains the page
    EXPECT_EQ(os->gfnsAllocated(), gfns2);
    EXPECT_EQ(os->pageCachePages(), 1u);
}

TEST_F(GuestFixture, MunmapReleasesRange)
{
    Pid pid = os->spawn("p", false);
    Vma *vma = os->mmapAnon(pid, 64 * KiB, MemCategory::JvmWork, "x");
    for (std::uint64_t i = 0; i < vma->numPages; ++i)
        os->writeWord(vma, i, 0, i + 1);
    EXPECT_EQ(os->gfnsAllocated(), 16u);
    os->munmap(pid, vma);
    EXPECT_EQ(os->gfnsAllocated(), 0u);
    EXPECT_TRUE(os->process(pid).vmas.empty());
    hv->checkConsistency();
}

TEST_F(GuestFixture, GfnReuseAfterFree)
{
    Pid pid = os->spawn("p", false);
    Vma *vma = os->mmapAnon(pid, 16 * KiB, MemCategory::JvmWork, "x");
    os->writeWord(vma, 0, 0, 1);
    const Gfn g = os->process(pid).pageTable.at(vma->vpnAt(0));
    os->discard(vma, 0);
    os->writeWord(vma, 1, 0, 2);
    const Gfn g2 = os->process(pid).pageTable.at(vma->vpnAt(1));
    EXPECT_EQ(g, g2); // freed gfn recycled
}

TEST_F(GuestFixture, BootKernelPopulatesExpectedSizes)
{
    KernelConfig cfg;
    cfg.textBytes = 2 * MiB;
    cfg.dataBytes = 1 * MiB;
    cfg.slabBytes = 1 * MiB;
    cfg.sharedBootCacheBytes = 4 * MiB;
    cfg.privateBootCacheBytes = 2 * MiB;
    os->bootKernel(cfg);

    EXPECT_EQ(os->pageCachePages(), bytesToPages(6 * MiB));
    // text+data+slab+cache all resident.
    EXPECT_EQ(hv->vm(os->vmId()).residentPages, bytesToPages(10 * MiB));
}

TEST_F(GuestFixture, KernelTextIdenticalAcrossGuestsDataNot)
{
    VmId vm2 = hv->createVm("vm2", 128 * MiB, 0);
    GuestOs os2(*hv, vm2, "vm2", 777);

    KernelConfig cfg;
    cfg.textBytes = 64 * KiB;
    cfg.dataBytes = 64 * KiB;
    cfg.slabBytes = 64 * KiB;
    cfg.sharedBootCacheBytes = 64 * KiB;
    cfg.privateBootCacheBytes = 64 * KiB;
    os->bootKernel(cfg);
    os2.bootKernel(cfg);

    // Compare contents by category.
    auto page_of = [&](GuestOs &g, const char *vma_name,
                       std::uint64_t idx) -> const PageData * {
        for (const auto &vma : g.process(0).vmas) {
            if (vma->name == vma_name) {
                auto it = g.process(0).pageTable.find(vma->vpnAt(idx));
                if (it == g.process(0).pageTable.end())
                    return nullptr;
                return g.hv().peek(g.vmId(), it->second);
            }
        }
        return nullptr;
    };
    ASSERT_NE(page_of(*os, "kernel-text", 0), nullptr);
    EXPECT_EQ(*page_of(*os, "kernel-text", 0),
              *page_of(os2, "kernel-text", 0));
    EXPECT_NE(*page_of(*os, "kernel-data", 0),
              *page_of(os2, "kernel-data", 0));
    EXPECT_NE(*page_of(*os, "slab", 0), *page_of(os2, "slab", 0));
}

TEST_F(GuestFixture, TouchPageCacheKeepsPagesWarmAndFaultsSwapped)
{
    // Fill the cache, then verify random cache touches refresh LRU
    // ages (no faults on a roomy host).
    FileImage f = FileImage::shared("/data", 64 * KiB);
    os->readFile(f);
    const std::uint64_t faults_before = hv->majorFaults(os->vmId());
    os->touchPageCache(100);
    EXPECT_EQ(hv->majorFaults(os->vmId()), faults_before);

    // On a tiny host, touching evicted cache pages must fault them in.
    StatSet s2;
    hv::HostConfig tiny;
    tiny.ramBytes = 8 * pageSize;
    tiny.reserveBytes = 0;
    KvmHypervisor small_hv(tiny, s2);
    VmId id = small_hv.createVm("vm", 1 * MiB, 0);
    GuestOs small_os(small_hv, id, "vm", 5);
    small_os.readFile(FileImage::shared("/data", 16 * pageSize));
    EXPECT_EQ(small_hv.vm(id).swappedPages, 8u);
    small_os.touchPageCache(64);
    EXPECT_GT(small_hv.majorFaults(id), 0u);
    small_hv.checkConsistency();
}

TEST_F(GuestFixture, DaemonTextSharesAnonDoesNot)
{
    VmId vm2 = hv->createVm("vm2", 128 * MiB, 0);
    GuestOs os2(*hv, vm2, "vm2", 31337);

    os->spawnDaemon("sshd", 64 * KiB, 64 * KiB);
    os2.spawnDaemon("sshd", 64 * KiB, 64 * KiB);

    // TPS (collapse) must find the text pages identical across the two
    // guests, and the anon heaps different.
    const std::uint64_t before = hv->residentFrames();
    const std::uint64_t merged = hv->collapseIdenticalPages();
    EXPECT_EQ(merged, bytesToPages(64 * KiB));
    EXPECT_EQ(hv->residentFrames(), before - merged);
}
