/**
 * @file
 * Unit tests for the JVM model: class sets, the shared class cache,
 * heap/GC, JIT, and the assembled JavaVm.
 */

#include <set>

#include <gtest/gtest.h>

#include "base/stats.hh"
#include "guest/guest_os.hh"
#include "hv/hypervisor.hh"
#include "jvm/class_model.hh"
#include "jvm/java_heap.hh"
#include "jvm/java_vm.hh"
#include "jvm/jit_compiler.hh"
#include "jvm/shared_class_cache.hh"

using namespace jtps;
using guest::GuestOs;
using guest::MemCategory;
using hv::KvmHypervisor;
using jvm::CacheScope;
using jvm::ClassOrigin;
using jvm::ClassSet;
using jvm::ClassSetSpec;
using jvm::GcConfig;
using jvm::JavaHeap;
using jvm::JavaVm;
using jvm::JavaVmConfig;
using jvm::JitCompiler;
using jvm::JitConfig;
using jvm::SharedClassCache;
using mem::PageData;

namespace
{

ClassSetSpec
tinySpec()
{
    ClassSetSpec cs;
    cs.programName = "test-program";
    cs.middlewareName = "test-mw";
    cs.systemClasses = 50;
    cs.middlewareClasses = 200;
    cs.appClasses = 30;
    cs.avgRomBytes = 4096;
    cs.avgRamBytes = 512;
    return cs;
}

struct JvmFixture : ::testing::Test
{
    StatSet stats;
    hv::HostConfig host_cfg;
    std::unique_ptr<KvmHypervisor> hv;
    std::unique_ptr<GuestOs> os;

    void
    SetUp() override
    {
        host_cfg.ramBytes = 1 * GiB;
        host_cfg.reserveBytes = 0;
        hv = std::make_unique<KvmHypervisor>(host_cfg, stats);
        VmId vm = hv->createVm("vm", 256 * MiB, 0);
        os = std::make_unique<GuestOs>(*hv, vm, "vm", 55);
    }
};

JavaVmConfig
smallJvmConfig(const ClassSet &classes, const SharedClassCache *cache)
{
    JavaVmConfig cfg;
    cfg.classes = &classes;
    cfg.sharedCache = cache;
    cfg.libs = {{"libtest.so", 256 * KiB, 128 * KiB}};
    cfg.gc.heapBytes = 4 * MiB;
    cfg.jit.codeCacheBytes = 1 * MiB;
    cfg.jit.stubsBytes = 64 * KiB;
    cfg.jit.scratchBytes = 256 * KiB;
    cfg.jit.scratchZeroBytes = 64 * KiB;
    cfg.mallocUsedBytes = 512 * KiB;
    cfg.bulkZeroBytes = 128 * KiB;
    cfg.nioBufferBytes = 128 * KiB;
    cfg.threadCount = 4;
    cfg.stackBytesPerThread = 64 * KiB;
    return cfg;
}

} // namespace

TEST(ClassSet, SynthesisIsDeterministic)
{
    ClassSet a = ClassSet::synthesize(tinySpec());
    ClassSet b = ClassSet::synthesize(tinySpec());
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.totalRomBytes(), b.totalRomBytes());
    for (std::uint32_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.at(i).romBytes, b.at(i).romBytes);
        EXPECT_EQ(a.at(i).cacheable, b.at(i).cacheable);
    }
}

TEST(ClassSet, MiddlewareClassesIdenticalAcrossPrograms)
{
    ClassSetSpec s1 = tinySpec();
    ClassSetSpec s2 = tinySpec();
    s2.programName = "other-program";
    ClassSet a = ClassSet::synthesize(s1);
    ClassSet b = ClassSet::synthesize(s2);

    bool app_differs = false;
    for (std::uint32_t i = 0; i < a.size(); ++i) {
        if (a.at(i).origin != ClassOrigin::Application) {
            ASSERT_EQ(a.at(i).romBytes, b.at(i).romBytes)
                << "middleware class " << i;
        } else if (a.at(i).romBytes != b.at(i).romBytes) {
            app_differs = true;
        }
    }
    EXPECT_TRUE(app_differs);
}

TEST(ClassSet, OriginBoundaries)
{
    ClassSet set = ClassSet::synthesize(tinySpec());
    EXPECT_EQ(set.at(0).origin, ClassOrigin::System);
    EXPECT_EQ(set.at(49).origin, ClassOrigin::System);
    EXPECT_EQ(set.at(50).origin, ClassOrigin::Middleware);
    EXPECT_EQ(set.at(249).origin, ClassOrigin::Middleware);
    EXPECT_EQ(set.at(250).origin, ClassOrigin::Application);
}

TEST(SharedClassCache, StoresMiddlewareInCanonicalOrder)
{
    ClassSet set = ClassSet::synthesize(tinySpec());
    SharedClassCache cache = SharedClassCache::build(
        set, "test", 64 * MiB, CacheScope::MiddlewareOnly);

    std::uint64_t prev_end = 0;
    for (std::uint32_t id = 0; id < set.size(); ++id) {
        if (set.at(id).origin == ClassOrigin::Application) {
            EXPECT_FALSE(cache.contains(id));
            continue;
        }
        ASSERT_TRUE(cache.contains(id));
        auto [first, last] = cache.sectorRange(id);
        EXPECT_GE(first, prev_end); // canonical, non-overlapping
        EXPECT_GT(last, first);
        prev_end = last;
    }
    EXPECT_EQ(cache.storedBytesByOrigin(ClassOrigin::Application), 0u);
    EXPECT_GT(cache.storedBytesByOrigin(ClassOrigin::Middleware), 0u);
}

TEST(SharedClassCache, AllCacheableScopeIncludesApps)
{
    ClassSet set = ClassSet::synthesize(tinySpec());
    SharedClassCache cache = SharedClassCache::build(
        set, "test", 64 * MiB, CacheScope::AllCacheable);
    bool some_app = false;
    for (std::uint32_t id = 0; id < set.size(); ++id) {
        if (set.at(id).origin == ClassOrigin::Application &&
            cache.contains(id)) {
            some_app = true;
            EXPECT_TRUE(set.at(id).cacheable);
        }
    }
    EXPECT_TRUE(some_app);
}

TEST(SharedClassCache, CapacityLimitIsRespected)
{
    ClassSet set = ClassSet::synthesize(tinySpec());
    SharedClassCache small = SharedClassCache::build(
        set, "small", 128 * KiB, CacheScope::MiddlewareOnly);
    EXPECT_LE(small.usedBytes(), 128 * KiB);
    EXPECT_LT(small.storedClasses(), set.size());
    EXPECT_GT(small.storedClasses(), 0u);
}

TEST(SharedClassCache, CopiedCachesShareContentTagSaltedOnesDoNot)
{
    ClassSet set = ClassSet::synthesize(tinySpec());
    SharedClassCache c1 = SharedClassCache::build(
        set, "x", 64 * MiB, CacheScope::MiddlewareOnly, 0);
    SharedClassCache c2 = SharedClassCache::build(
        set, "x", 64 * MiB, CacheScope::MiddlewareOnly, 0);
    SharedClassCache c3 = SharedClassCache::build(
        set, "x", 64 * MiB, CacheScope::MiddlewareOnly, 1);
    EXPECT_EQ(c1.file().contentTag(), c2.file().contentTag());
    EXPECT_NE(c1.file().contentTag(), c3.file().contentTag());
    // Same layout, same file size, byte-different content.
    EXPECT_EQ(c1.file().bytes(), c3.file().bytes());
}

TEST(SharedClassCache, SameMiddlewareDifferentAppSameCache)
{
    // The §IV.C base-image property: WAS+DayTrader and WAS+TPC-W get
    // byte-identical middleware-only caches.
    ClassSetSpec s1 = tinySpec();
    ClassSetSpec s2 = tinySpec();
    s2.programName = "other-app";
    SharedClassCache c1 = SharedClassCache::build(
        ClassSet::synthesize(s1), "was", 64 * MiB);
    SharedClassCache c2 = SharedClassCache::build(
        ClassSet::synthesize(s2), "was", 64 * MiB);
    EXPECT_EQ(c1.file().contentTag(), c2.file().contentTag());
}

TEST(SharedClassCache, AotSectionIsDeterministicAndBudgeted)
{
    ClassSet set = ClassSet::synthesize(tinySpec());
    SharedClassCache a = SharedClassCache::build(set, "x", 64 * MiB);
    SharedClassCache b = SharedClassCache::build(set, "x", 64 * MiB);
    EXPECT_FALSE(a.hasAot());

    a.addAotSection(100, 16 * KiB, 512 * KiB);
    b.addAotSection(100, 16 * KiB, 512 * KiB);
    EXPECT_TRUE(a.hasAot());
    EXPECT_GT(a.aotMethods(), 0u);
    EXPECT_LT(a.aotMethods(), 100u); // budget cuts it off
    EXPECT_EQ(a.aotMethods(), b.aotMethods());
    // Copies of the archive carry the same AOT content tag; the AOT
    // image is distinct from the class image.
    EXPECT_EQ(a.aotFile().contentTag(), b.aotFile().contentTag());
    EXPECT_NE(a.aotFile().contentTag(), a.file().contentTag());

    // Ranges are ordered and non-overlapping.
    std::uint64_t prev = 0;
    for (std::uint32_t m = 0; m < a.aotMethods(); ++m) {
        ASSERT_TRUE(a.containsAotMethod(m));
        auto [first, last] = a.aotSectorRange(m);
        EXPECT_GE(first, prev);
        EXPECT_GT(last, first);
        prev = last;
    }
    EXPECT_FALSE(a.containsAotMethod(a.aotMethods()));
}

TEST_F(JvmFixture, AotMethodsLoadFromTheArchiveNotTheJit)
{
    ClassSet classes = ClassSet::synthesize(tinySpec());
    SharedClassCache cache =
        SharedClassCache::build(classes, "t", 64 * MiB);
    cache.addAotSection(50, 8 * KiB, 1 * MiB);

    JavaVmConfig cfg = smallJvmConfig(classes, &cache);
    cfg.useAotCache = true;
    JavaVm vm(*os, cfg);
    vm.start();

    const std::uint32_t compiled = vm.compileHotMethods(40);
    EXPECT_EQ(compiled, 40u);
    EXPECT_GT(vm.aotMethodsLoaded(), 0u);
    // AOT-loaded bodies never consume private code cache.
    EXPECT_EQ(vm.jit().methodsCompiled() + vm.aotMethodsLoaded(),
              compiled);
}

TEST_F(JvmFixture, HeapAllocatesAndCollects)
{
    GcConfig gc;
    gc.heapBytes = 8 * MiB;
    gc.gcTriggerFraction = 0.9;
    gc.liveFraction = 0.5;
    JavaHeap heap(*os, os->spawn("j", true), gc, 42);
    heap.init();

    heap.allocate(6 * MiB);
    EXPECT_EQ(heap.globalGcCount(), 0u);
    heap.allocate(4 * MiB);
    EXPECT_GE(heap.globalGcCount(), 1u);
    EXPECT_GT(heap.livePages(), 0u);
    EXPECT_EQ(heap.allocatedBytes(), 10 * MiB);
}

TEST_F(JvmFixture, GcZeroFillsPrefixOfReclaimedSpace)
{
    GcConfig gc;
    gc.heapBytes = 4 * MiB;
    gc.liveFraction = 0.5;
    gc.zeroFillFraction = 1.0; // zero everything reclaimed
    Pid pid = os->spawn("j", true);
    JavaHeap heap(*os, pid, gc, 42);
    heap.init();
    heap.allocate(8 * MiB); // forces at least one GC

    // After GC, pages between live end and old cursor are zero.
    std::uint64_t zeros = 0;
    for (std::uint64_t p = 0; p < bytesToPages(4 * MiB); ++p) {
        auto it = os->process(pid).pageTable.find(heap.vma()->vpnAt(p));
        if (it == os->process(pid).pageTable.end())
            continue;
        const PageData *d = hv->peek(os->vmId(), it->second);
        if (d && d->isZero())
            ++zeros;
    }
    EXPECT_GT(zeros, 0u);
}

TEST_F(JvmFixture, FirstGcClearsHeadroomZeros)
{
    GcConfig gc;
    gc.heapBytes = 8 * MiB;
    gc.gcTriggerFraction = 0.9;
    gc.headroomZeroFraction = 0.01;
    Pid pid = os->spawn("j", true);
    JavaHeap heap(*os, pid, gc, 42);
    heap.init();
    heap.allocate(10 * MiB); // at least one GC

    // Pages just above the trigger must be resident zeros.
    const std::uint64_t trigger = static_cast<std::uint64_t>(
        bytesToPages(8 * MiB) * 0.9);
    const std::uint64_t tail =
        static_cast<std::uint64_t>(bytesToPages(8 * MiB) * 0.01);
    ASSERT_GT(tail, 0u);
    for (std::uint64_t p = trigger; p < trigger + tail; ++p) {
        auto it = os->process(pid).pageTable.find(heap.vma()->vpnAt(p));
        ASSERT_NE(it, os->process(pid).pageTable.end());
        const PageData *d = hv->peek(os->vmId(), it->second);
        ASSERT_NE(d, nullptr);
        EXPECT_TRUE(d->isZero());
    }
}

TEST_F(JvmFixture, QuickeningMakesPrivateRomPagesUnique)
{
    // Two JVMs in two guests load the same classes without a cache:
    // quickening + load-order perturbation must leave essentially no
    // identical metadata pages.
    VmId vm2_id = hv->createVm("vm2", 256 * MiB, 0);
    GuestOs os2(*hv, vm2_id, "vm2", 66);

    ClassSet classes = ClassSet::synthesize(tinySpec());
    JavaVm v1(*os, smallJvmConfig(classes, nullptr));
    JavaVm v2(os2, smallJvmConfig(classes, nullptr));
    v1.start();
    v2.start();
    while (v1.loadLazyClasses(64) > 0) {
    }
    while (v2.loadLazyClasses(64) > 0) {
    }

    auto meta_digests = [&](GuestOs &g, JavaVm &v) {
        std::set<std::uint64_t> out;
        const auto &proc = g.process(v.pid());
        for (const auto &vma : proc.vmas) {
            if (vma->category != MemCategory::ClassMetadata)
                continue;
            for (std::uint64_t p = 0; p < vma->numPages; ++p) {
                auto it = proc.pageTable.find(vma->vpnAt(p));
                if (it == proc.pageTable.end())
                    continue;
                const PageData *d = g.hv().peek(g.vmId(), it->second);
                if (d != nullptr)
                    out.insert(d->digest());
            }
        }
        return out;
    };
    auto d1 = meta_digests(*os, v1);
    auto d2 = meta_digests(os2, v2);
    std::size_t matches = 0;
    for (std::uint64_t d : d2)
        matches += d1.count(d);
    // Under 3% of the metadata pages may coincide (paper: "the
    // contents of memory pages are rarely identical between Java VM
    // processes, even if they are running the same Java program").
    EXPECT_LT(matches, d1.size() / 33 + 2)
        << matches << " of " << d1.size() << " pages matched";
}

TEST_F(JvmFixture, GenconMinorGcsDominate)
{
    GcConfig gc;
    gc.policy = GcConfig::Policy::Gencon;
    gc.heapBytes = 8 * MiB;
    gc.nurseryBytes = 6 * MiB;
    JavaHeap heap(*os, os->spawn("j", true), gc, 42);
    heap.init();
    heap.allocate(40 * MiB);
    EXPECT_GT(heap.minorGcCount(), 3u);
    EXPECT_GT(heap.livePages(), 0u);
}

TEST_F(JvmFixture, HeapContentDiffersAcrossProcesses)
{
    GcConfig gc;
    gc.heapBytes = 1 * MiB;
    Pid p1 = os->spawn("j1", true);
    Pid p2 = os->spawn("j2", true);
    JavaHeap h1(*os, p1, gc, 42), h2(*os, p2, gc, 43);
    h1.init();
    h2.init();
    h1.allocate(512 * KiB);
    h2.allocate(512 * KiB);

    auto first_page = [&](JavaHeap &h, Pid pid) {
        auto it = os->process(pid).pageTable.find(h.vma()->vpnAt(0));
        return *hv->peek(os->vmId(), it->second);
    };
    EXPECT_NE(first_page(h1, p1), first_page(h2, p2));
}

TEST_F(JvmFixture, JitStubsShareMethodsDoNot)
{
    JitConfig cfg;
    cfg.codeCacheBytes = 4 * MiB;
    cfg.stubsBytes = 64 * KiB;
    cfg.scratchBytes = 1 * MiB;
    cfg.scratchZeroBytes = 64 * KiB;

    Pid p1 = os->spawn("j1", true);
    Pid p2 = os->spawn("j2", true);
    JitCompiler j1(*os, p1, cfg, 42), j2(*os, p2, cfg, 43);
    j1.init();
    j2.init();
    EXPECT_TRUE(j1.compileMethod(7));
    EXPECT_TRUE(j2.compileMethod(7));

    auto page = [&](Pid pid, const guest::Vma *vma, std::uint64_t i) {
        auto it = os->process(pid).pageTable.find(vma->vpnAt(i));
        return *hv->peek(os->vmId(), it->second);
    };
    // Stub page 0: identical across the two processes.
    EXPECT_EQ(page(p1, j1.codeVma(), 0), page(p2, j2.codeVma(), 0));
    // First method page (after the stubs): differs (profile-dependent).
    const std::uint64_t m = bytesToPages(cfg.stubsBytes);
    EXPECT_NE(page(p1, j1.codeVma(), m), page(p2, j2.codeVma(), m));
}

TEST_F(JvmFixture, TieredRecompilationLeavesDeadCode)
{
    JitConfig cfg;
    cfg.codeCacheBytes = 4 * MiB;
    cfg.stubsBytes = 0;
    cfg.scratchBytes = 256 * KiB;
    cfg.scratchZeroBytes = 0;
    cfg.avgMethodCodeBytes = 8 * KiB;
    JitCompiler jit(*os, os->spawn("j", true), cfg, 42);
    jit.init();
    for (std::uint32_t m = 0; m < 10; ++m)
        ASSERT_TRUE(jit.compileMethod(m));
    EXPECT_EQ(jit.deadCodePages(), 0u);

    EXPECT_EQ(jit.recompileHottest(4), 4u);
    EXPECT_EQ(jit.methodsRecompiled(), 4u);
    EXPECT_GT(jit.deadCodePages(), 0u);

    // Promoting everything (and then some) saturates.
    jit.recompileHottest(100);
    EXPECT_LE(jit.methodsRecompiled(), 10u);
    EXPECT_EQ(jit.recompileHottest(5), 0u); // nothing tier-1 left
}

TEST_F(JvmFixture, LoaderSegmentsSplitTheMetaspace)
{
    ClassSet classes = ClassSet::synthesize(tinySpec());
    JavaVm vm(*os, smallJvmConfig(classes, nullptr));
    vm.start();
    while (vm.loadLazyClasses(64) > 0) {
    }

    // Every loader with classes must own metadata pages; the totals
    // must add up.
    std::uint64_t sum = 0;
    for (std::size_t l = 0; l < jvm::numLoaderKinds; ++l)
        sum += vm.loaderMetaspacePages(static_cast<jvm::LoaderKind>(l));
    EXPECT_EQ(sum, vm.metaspacePages());
    EXPECT_GT(vm.loaderMetaspacePages(jvm::LoaderKind::Bootstrap), 0u);
    EXPECT_GT(vm.loaderMetaspacePages(jvm::LoaderKind::Middleware), 0u);
    EXPECT_GT(vm.loaderMetaspacePages(jvm::LoaderKind::Ejb), 0u);

    // And the process has one metaspace VMA per loader.
    unsigned metaspace_vmas = 0;
    for (const auto &vma : os->process(vm.pid()).vmas) {
        if (vma->name.rfind("metaspace-", 0) == 0)
            ++metaspace_vmas;
    }
    EXPECT_EQ(metaspace_vmas, jvm::numLoaderKinds);
}

TEST_F(JvmFixture, JitCodeCacheFillsUp)
{
    JitConfig cfg;
    cfg.codeCacheBytes = 64 * KiB;
    cfg.stubsBytes = 0;
    cfg.scratchBytes = 64 * KiB;
    cfg.scratchZeroBytes = 0;
    cfg.avgMethodCodeBytes = 16 * KiB;
    JitCompiler jit(*os, os->spawn("j", true), cfg, 42);
    jit.init();
    std::uint32_t compiled = 0;
    for (std::uint32_t i = 0; i < 100; ++i)
        compiled += jit.compileMethod(i);
    EXPECT_LT(compiled, 100u);
    EXPECT_GT(compiled, 0u);
    EXPECT_EQ(jit.methodsCompiled(), compiled);
}

TEST_F(JvmFixture, StartLoadsStartupClasses)
{
    ClassSet classes = ClassSet::synthesize(tinySpec());
    JavaVmConfig cfg = smallJvmConfig(classes, nullptr);
    JavaVm vm(*os, cfg);
    vm.start();

    std::uint32_t startup = 0;
    for (const auto &ci : classes.classes())
        startup += ci.startup;
    EXPECT_EQ(vm.classesLoaded(), startup);
    EXPECT_FALSE(vm.allClassesLoaded());

    // Lazy loading finishes the rest.
    while (vm.loadLazyClasses(64) > 0) {
    }
    EXPECT_TRUE(vm.allClassesLoaded());
}

TEST_F(JvmFixture, CdsRomClassesComeFromTheCacheFile)
{
    ClassSet classes = ClassSet::synthesize(tinySpec());
    SharedClassCache cache =
        SharedClassCache::build(classes, "t", 64 * MiB);

    JavaVm no_cds(*os, smallJvmConfig(classes, nullptr), "j1");
    no_cds.start();
    const std::uint64_t meta_no_cds = no_cds.metaspacePages();

    JavaVm cds(*os, smallJvmConfig(classes, &cache), "j2");
    cds.start();
    const std::uint64_t meta_cds = cds.metaspacePages();

    // With CDS the private metaspace only holds RAM classes (and
    // uncacheable ROM), so it must be much smaller.
    EXPECT_LT(meta_cds * 3, meta_no_cds);
    // And the cache file pages are in the guest page cache.
    EXPECT_GT(os->pageCachePages(), 0u);
}

TEST_F(JvmFixture, MetaspaceLayoutDiffersByProcessButRomIsStable)
{
    // Two processes in two different guests load the same classes; the
    // metadata pages must differ (perturbed order), which is exactly
    // why TPS fails on them.
    VmId vm2_id = hv->createVm("vm2", 256 * MiB, 0);
    GuestOs os2(*hv, vm2_id, "vm2", 66);

    ClassSet classes = ClassSet::synthesize(tinySpec());
    JavaVm v1(*os, smallJvmConfig(classes, nullptr));
    JavaVm v2(os2, smallJvmConfig(classes, nullptr));
    v1.start();
    v2.start();

    const std::uint64_t before = hv->residentFrames();
    hv->collapseIdenticalPages();
    const std::uint64_t merged = before - hv->residentFrames();
    // Lib text, JIT stubs, zero reserves and NIO share (< ~200 pages
    // here); the ~350 pages of class metadata must not. If metadata
    // layout accidentally matched, merged would jump by hundreds.
    EXPECT_LE(merged, 250u);
    EXPECT_GT(merged, 0u);
}

TEST_F(JvmFixture, NioBuffersIdenticalAcrossProcessesSameBenchmark)
{
    ClassSet classes = ClassSet::synthesize(tinySpec());
    JavaVmConfig cfg = smallJvmConfig(classes, nullptr);
    cfg.nioPayloadTag = stringTag("daytrader-payload");

    VmId vm2_id = hv->createVm("vm2", 256 * MiB, 0);
    GuestOs os2(*hv, vm2_id, "vm2", 66);
    JavaVm v1(*os, cfg), v2(os2, cfg);
    v1.start();
    v2.start();

    // Find the NIO VMAs and compare first pages.
    auto nio_page = [&](GuestOs &g, JavaVm &v) {
        for (const auto &vma : g.process(v.pid()).vmas) {
            if (vma->name == "nio-buffers") {
                auto it =
                    g.process(v.pid()).pageTable.find(vma->vpnAt(0));
                return *g.hv().peek(g.vmId(), it->second);
            }
        }
        return PageData::zero();
    };
    EXPECT_EQ(nio_page(*os, v1), nio_page(os2, v2));
}
