/**
 * @file
 * Unit tests for workload specs and the client driver / disk model.
 */

#include <gtest/gtest.h>

#include "base/stats.hh"
#include "guest/guest_os.hh"
#include "hv/hypervisor.hh"
#include "workload/client_driver.hh"
#include "workload/workload_spec.hh"

using namespace jtps;
using workload::ClientDriver;
using workload::HostDisk;
using workload::WorkloadSpec;

TEST(WorkloadSpec, Table3Values)
{
    auto dt = workload::dayTraderIntel();
    EXPECT_EQ(dt.clientThreads, 12u);
    EXPECT_EQ(dt.gc.heapBytes, 530 * MiB);
    EXPECT_EQ(dt.sharedCacheBytes, 120 * MiB);
    EXPECT_EQ(dt.guestMemBytes, 1 * GiB);

    auto sj = workload::specjEnterprise2010();
    EXPECT_EQ(sj.clientThreads, 15u); // injection rate 15
    EXPECT_EQ(sj.gc.policy, jvm::GcConfig::Policy::Gencon);
    EXPECT_EQ(sj.gc.nurseryBytes, 530 * MiB);
    EXPECT_EQ(sj.gc.heapBytes - sj.gc.nurseryBytes, 200 * MiB);
    EXPECT_EQ(sj.guestMemBytes, 1280ULL * MiB);

    auto tw = workload::tpcwJava();
    EXPECT_EQ(tw.clientThreads, 10u);
    EXPECT_EQ(tw.gc.heapBytes, 512 * MiB);

    auto tb = workload::tuscanyBigbank();
    EXPECT_EQ(tb.clientThreads, 7u);
    EXPECT_EQ(tb.gc.heapBytes, 32 * MiB);
    EXPECT_EQ(tb.sharedCacheBytes, 25 * MiB);
    EXPECT_NE(tb.middleware, dt.middleware);

    auto dtp = workload::dayTraderPower();
    EXPECT_EQ(dtp.clientThreads, 25u);
    EXPECT_EQ(dtp.gc.heapBytes, 1 * GiB);
    EXPECT_EQ(dtp.sharedCacheBytes, 100 * MiB);
    EXPECT_EQ(dtp.guestMemBytes, 3584ULL * MiB);
}

TEST(WorkloadSpec, SameMiddlewareAcrossWasApps)
{
    auto dt = workload::dayTraderIntel();
    auto sj = workload::specjEnterprise2010();
    auto tw = workload::tpcwJava();
    EXPECT_EQ(dt.classSpec.middlewareName, sj.classSpec.middlewareName);
    EXPECT_EQ(dt.classSpec.middlewareName, tw.classSpec.middlewareName);
    EXPECT_EQ(dt.cacheName, sj.cacheName);
    // Different programs nonetheless.
    EXPECT_NE(dt.classSpec.programName, sj.classSpec.programName);
}

TEST(WorkloadSpec, NioPayloadTagDependsOnBenchmark)
{
    auto dt = workload::dayTraderIntel();
    auto tw = workload::tpcwJava();
    jvm::ClassSet cs = jvm::ClassSet::synthesize(dt.classSpec);
    jvm::ClassSet cs2 = jvm::ClassSet::synthesize(tw.classSpec);
    auto c1 = workload::makeJvmConfig(dt, cs, nullptr);
    auto c2 = workload::makeJvmConfig(dt, cs, nullptr);
    auto c3 = workload::makeJvmConfig(tw, cs2, nullptr);
    EXPECT_EQ(c1.nioPayloadTag, c2.nioPayloadTag);
    EXPECT_NE(c1.nioPayloadTag, c3.nioPayloadTag);
}

TEST(WorkloadSpec, DayTraderMixIsWorkNeutralOnAverage)
{
    // The operation mix adds heterogeneity without shifting the mean
    // per-request work (so Figs. 2-8 calibration is unaffected).
    auto dt = workload::dayTraderIntel();
    ASSERT_FALSE(dt.mix.empty());
    EXPECT_GT(dt.totalMixWeight(), 0u);

    double alloc = 0, touch = 0;
    for (const auto &op : dt.mix) {
        alloc += op.weight * op.allocMul;
        touch += op.weight * op.touchMul;
    }
    alloc /= dt.totalMixWeight();
    touch /= dt.totalMixWeight();
    EXPECT_NEAR(alloc, 1.0, 0.05);
    EXPECT_NEAR(touch, 1.0, 0.05);
}

TEST(HostDisk, LatencyGrowsWithUtilization)
{
    HostDisk disk(100.0, 2.0);
    EXPECT_NEAR(disk.faultLatencyMs(), 2.0, 0.01);

    // 50 faults over 1s at 100 IOPS -> ~50% utilization (smoothed).
    for (int i = 0; i < 10; ++i) {
        disk.beginEpoch(1000);
        disk.recordFaults(50);
        disk.endEpoch();
    }
    EXPECT_NEAR(disk.utilization(), 0.5, 0.05);
    EXPECT_GT(disk.faultLatencyMs(), 3.5);

    // Saturation: latency is capped but huge.
    for (int i = 0; i < 10; ++i) {
        disk.beginEpoch(1000);
        disk.recordFaults(100000);
        disk.endEpoch();
    }
    EXPECT_GT(disk.faultLatencyMs(), 100.0);
}

TEST(ClientDriver, ThroughputApproachesClosedLoopBound)
{
    StatSet stats;
    hv::HostConfig host;
    host.ramBytes = 4ULL * GiB; // no memory pressure
    host.reserveBytes = 0;
    hv::KvmHypervisor hv(host, stats);
    VmId id = hv.createVm("vm", 1 * GiB, 0);
    guest::GuestOs os(hv, id, "vm", 9);

    auto spec = workload::tuscanyBigbank(); // small & fast
    jvm::ClassSet classes = jvm::ClassSet::synthesize(spec.classSpec);
    jvm::JavaVmConfig cfg = workload::makeJvmConfig(spec, classes, nullptr);
    jvm::JavaVm vm(os, cfg);
    vm.start();

    HostDisk disk(250, 2.0);
    ClientDriver driver(vm, spec, disk);
    ClientDriver::EpochResult last;
    for (int e = 0; e < 10; ++e) {
        disk.beginEpoch(2000);
        last = driver.runEpoch(2000);
        disk.endEpoch();
    }
    const double bound =
        spec.clientThreads * 1000.0 / (spec.thinkMs + spec.serviceMs);
    EXPECT_NEAR(last.achievedPerSec, bound, bound * 0.1);
    EXPECT_TRUE(last.slaMet);
    EXPECT_EQ(last.majorFaults, 0u);
}

TEST(ClientDriver, ThrashingServerKeepsGrinding)
{
    // Even when the cycle estimate explodes, every epoch must still
    // execute at least one request per client thread — a dying VM
    // keeps contending for memory instead of going silent.
    StatSet stats;
    hv::HostConfig host;
    host.ramBytes = 4ULL * GiB;
    host.reserveBytes = 0;
    hv::KvmHypervisor hv(host, stats);
    VmId id = hv.createVm("vm", 1 * GiB, 0);
    guest::GuestOs os(hv, id, "vm", 9);

    auto spec = workload::tuscanyBigbank();
    jvm::ClassSet classes = jvm::ClassSet::synthesize(spec.classSpec);
    jvm::JavaVmConfig cfg = workload::makeJvmConfig(spec, classes, nullptr);
    jvm::JavaVm vm(os, cfg);
    vm.start();

    // Saturate the disk model so the loop thinks it is thrashing.
    HostDisk disk(1.0, 1000.0);
    for (int i = 0; i < 5; ++i) {
        disk.beginEpoch(1000);
        disk.recordFaults(100000);
        disk.endEpoch();
    }
    ClientDriver driver(vm, spec, disk);
    disk.beginEpoch(100); // a very short epoch
    auto res = driver.runEpoch(100);
    disk.endEpoch();
    EXPECT_GE(res.requests, spec.clientThreads);
}

TEST(ClientDriver, WarmupEventuallyCompletes)
{
    StatSet stats;
    hv::HostConfig host;
    host.ramBytes = 4ULL * GiB;
    host.reserveBytes = 0;
    hv::KvmHypervisor hv(host, stats);
    VmId id = hv.createVm("vm", 1 * GiB, 0);
    guest::GuestOs os(hv, id, "vm", 9);

    auto spec = workload::tuscanyBigbank();
    jvm::ClassSet classes = jvm::ClassSet::synthesize(spec.classSpec);
    jvm::JavaVmConfig cfg = workload::makeJvmConfig(spec, classes, nullptr);
    jvm::JavaVm vm(os, cfg);
    vm.start();

    HostDisk disk(250, 2.0);
    ClientDriver driver(vm, spec, disk);
    EXPECT_FALSE(driver.warm());
    for (int e = 0; e < 60 && !driver.warm(); ++e) {
        disk.beginEpoch(2000);
        driver.runEpoch(2000);
        disk.endEpoch();
    }
    EXPECT_TRUE(driver.warm());
    EXPECT_TRUE(vm.allClassesLoaded());
}
