/**
 * @file
 * Error-path tests: the fatal()/panic() conditions users can actually
 * hit (guest OOM with a full swap, host OOM with everything pinned,
 * malformed dumps) must terminate with clear diagnostics rather than
 * corrupt state.
 */

#include <gtest/gtest.h>

#include "analysis/dump_format.hh"
#include "base/stats.hh"
#include "guest/guest_os.hh"
#include "hv/hypervisor.hh"

using namespace jtps;
using guest::GuestOs;
using guest::MemCategory;
using hv::KvmHypervisor;
using mem::PageData;

namespace
{

hv::HostConfig
tinyHost(Bytes ram)
{
    hv::HostConfig cfg;
    cfg.ramBytes = ram;
    cfg.reserveBytes = 0;
    return cfg;
}

} // namespace

using ErrorDeathTest = ::testing::Test;

TEST(ErrorDeathTest, GuestOomWithFullSwapIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    auto run = [] {
        StatSet stats;
        KvmHypervisor hv(tinyHost(64 * MiB), stats);
        VmId id = hv.createVm("vm", 8 * pageSize, 0);
        GuestOs os(hv, id, "vm", 1);
        os.setGuestSwapBytes(2 * pageSize); // nearly no swap
        Pid pid = os.spawn("p", false);
        guest::Vma *vma = os.mmapAnon(pid, 64 * pageSize,
                                      MemCategory::JvmWork, "big");
        for (std::uint64_t i = 0; i < 64; ++i)
            os.writePage(vma, i, PageData::filled(1, i));
    };
    EXPECT_EXIT(run(), ::testing::ExitedWithCode(1), "out of memory");
}

TEST(ErrorDeathTest, HostOomWithOnlyPinnedMemoryIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    auto run = [] {
        StatSet stats;
        KvmHypervisor hv(tinyHost(4 * pageSize), stats);
        // Overhead is pinned; asking for more than RAM can never work.
        hv.createVm("vm", 1 * MiB, 8 * pageSize);
    };
    EXPECT_EXIT(run(), ::testing::ExitedWithCode(1), "out of memory");
}

TEST(ErrorDeathTest, MalformedDumpsAreRejected)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(analysis::parseDump("not a dump\n"),
                ::testing::ExitedWithCode(1), "malformed dump");
    EXPECT_EXIT(analysis::parseDump("jtpsdump 99\n"),
                ::testing::ExitedWithCode(1), "malformed dump");
    EXPECT_EXIT(analysis::parseDump("jtpsdump 1\nvms 1\n"),
                ::testing::ExitedWithCode(1), "missing end");
    EXPECT_EXIT(
        analysis::parseDump("jtpsdump 1\nframe 0 2\nref 0 0 0 1 0\n"
                            "end 1\n"),
        ::testing::ExitedWithCode(1), "incomplete");
    EXPECT_EXIT(
        analysis::parseDump("jtpsdump 1\nref 0 0 0 1 0\nend 1\n"),
        ::testing::ExitedWithCode(1), "ref outside frame");
    // Category out of range.
    EXPECT_EXIT(
        analysis::parseDump("jtpsdump 1\nframe 0 1\nref 0 0 0 1 99\n"
                            "end 1\n"),
        ::testing::ExitedWithCode(1), "bad ref");
}

TEST(ErrorDeathTest, WriteWordSectorBoundsArePanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    auto run = [] {
        StatSet stats;
        KvmHypervisor hv(tinyHost(1 * MiB), stats);
        VmId id = hv.createVm("vm", 64 * pageSize, 0);
        hv.writeWord(id, 0, mem::sectorsPerPage, 1); // sector too big
    };
    EXPECT_DEATH(run(), "assertion");
}
