/**
 * @file
 * Unit tests for the forensics walk and the two accounting schemes.
 */

#include <gtest/gtest.h>

#include "analysis/accounting.hh"
#include "analysis/forensics.hh"
#include "analysis/report.hh"
#include "base/stats.hh"
#include "guest/guest_os.hh"
#include "hv/hypervisor.hh"

using namespace jtps;
using analysis::FrameRef;
using analysis::OwnerAccounting;
using analysis::PssAccounting;
using analysis::Snapshot;
using guest::FileImage;
using guest::GuestOs;
using guest::MemCategory;
using guest::Vma;
using hv::KvmHypervisor;
using mem::PageData;

namespace
{

struct AnalysisFixture : ::testing::Test
{
    StatSet stats;
    hv::HostConfig host_cfg;
    std::unique_ptr<KvmHypervisor> hv;
    std::vector<std::unique_ptr<GuestOs>> guests;

    void
    SetUp() override
    {
        host_cfg.ramBytes = 512 * MiB;
        host_cfg.reserveBytes = 0;
        hv = std::make_unique<KvmHypervisor>(host_cfg, stats);
    }

    GuestOs &
    addGuest(Bytes overhead = 0)
    {
        const VmId id = hv->createVm(
            "vm" + std::to_string(guests.size()), 64 * MiB, overhead);
        guests.push_back(std::make_unique<GuestOs>(
            *hv, id, "vm" + std::to_string(id), 1000 + id));
        return *guests.back();
    }

    Snapshot
    capture()
    {
        std::vector<const GuestOs *> ptrs;
        for (const auto &g : guests)
            ptrs.push_back(g.get());
        return analysis::captureSnapshot(*hv, ptrs);
    }
};

} // namespace

TEST_F(AnalysisFixture, WalkFindsResidentPagesOnly)
{
    GuestOs &os = addGuest();
    Pid pid = os.spawn("p", false);
    Vma *vma = os.mmapAnon(pid, 64 * KiB, MemCategory::JvmWork, "x");
    os.writeWord(vma, 0, 0, 1);
    os.writeWord(vma, 5, 0, 1);

    Snapshot snap = capture();
    EXPECT_EQ(snap.frames.size(), 2u);
    EXPECT_EQ(snap.totalResidentFrames, 2u);
}

TEST_F(AnalysisFixture, ConservationOwnerOriented)
{
    GuestOs &a = addGuest(1 * MiB);
    GuestOs &b = addGuest(1 * MiB);
    guest::KernelConfig k;
    k.textBytes = 1 * MiB;
    k.dataBytes = 512 * KiB;
    k.slabBytes = 512 * KiB;
    k.sharedBootCacheBytes = 1 * MiB;
    k.privateBootCacheBytes = 1 * MiB;
    a.bootKernel(k);
    b.bootKernel(k);
    a.spawnDaemon("d", 256 * KiB, 256 * KiB);
    b.spawnDaemon("d", 256 * KiB, 256 * KiB);
    hv->collapseIdenticalPages();

    Snapshot snap = capture();
    OwnerAccounting acct(snap);
    // Every resident byte is attributed exactly once.
    EXPECT_EQ(acct.attributedBytes(), acct.residentBytes());

    // VM rollups also sum to the total.
    Bytes rollup = 0;
    for (VmId v = 0; v < 2; ++v)
        rollup += acct.vmBreakdown(v).usageTotal();
    EXPECT_EQ(rollup, acct.residentBytes());
}

TEST_F(AnalysisFixture, ConservationPss)
{
    GuestOs &a = addGuest();
    GuestOs &b = addGuest();
    guest::KernelConfig k;
    k.textBytes = 512 * KiB;
    k.dataBytes = 256 * KiB;
    k.slabBytes = 256 * KiB;
    k.sharedBootCacheBytes = 512 * KiB;
    k.privateBootCacheBytes = 256 * KiB;
    a.bootKernel(k);
    b.bootKernel(k);
    hv->collapseIdenticalPages();

    PssAccounting pss(capture());
    double sum = 0;
    for (const auto &[key, v] : pss.processes())
        sum += v;
    EXPECT_NEAR(sum, static_cast<double>(hv->residentBytes()), 1.0);
}

TEST_F(AnalysisFixture, JavaProcessWinsOwnership)
{
    GuestOs &a = addGuest();
    GuestOs &b = addGuest();

    // A Java process in VM1 (high pid) and a daemon in VM0 (low pid)
    // map identical content; after TPS the Java process must own it.
    Pid daemon = a.spawn("daemon", false);
    Pid extra = b.spawn("filler", false);
    (void)extra;
    Pid java = b.spawn("java", true);

    Vma *va = a.mmapAnon(daemon, 16 * KiB, MemCategory::OtherProcess, "x");
    Vma *vb = b.mmapAnon(java, 16 * KiB, MemCategory::JvmWork, "x");
    for (std::uint64_t i = 0; i < 4; ++i) {
        a.writePage(va, i, PageData::filled(77, i));
        b.writePage(vb, i, PageData::filled(77, i));
    }
    hv->collapseIdenticalPages();

    OwnerAccounting acct(capture());
    const auto &java_usage = acct.usage(b.vmId(), java);
    const auto &daemon_usage = acct.usage(a.vmId(), daemon);
    EXPECT_EQ(java_usage.ownedTotal(), 16 * KiB);
    EXPECT_EQ(java_usage.sharedTotal(), 0u);
    EXPECT_EQ(daemon_usage.ownedTotal(), 0u);
    EXPECT_EQ(daemon_usage.sharedTotal(), 16 * KiB);
}

TEST_F(AnalysisFixture, SmallestPidWinsAmongJava)
{
    GuestOs &a = addGuest();
    GuestOs &b = addGuest();
    Pid filler = a.spawn("filler", false);
    (void)filler;
    Pid java_a = a.spawn("java", true); // pid 2
    Pid java_b = b.spawn("java", true); // pid 1

    Vma *va = a.mmapAnon(java_a, 4 * KiB, MemCategory::JavaHeap, "h");
    Vma *vb = b.mmapAnon(java_b, 4 * KiB, MemCategory::JavaHeap, "h");
    a.writePage(va, 0, PageData::filled(5, 5));
    b.writePage(vb, 0, PageData::filled(5, 5));
    hv->collapseIdenticalPages();

    OwnerAccounting acct(capture());
    EXPECT_EQ(acct.usage(b.vmId(), java_b).ownedTotal(), 4 * KiB);
    EXPECT_EQ(acct.usage(a.vmId(), java_a).sharedTotal(), 4 * KiB);
}

TEST_F(AnalysisFixture, IntraVmAliasCountsOnce)
{
    GuestOs &os = addGuest();
    // A file page mapped by a process AND held in the kernel page
    // cache: one guest page, one attribution (to the process).
    Pid pid = os.spawn("p", false);
    FileImage f = FileImage::shared("/lib.so", 4 * KiB);
    Vma *vma = os.mmapFile(pid, f, MemCategory::Code);
    os.touch(vma, 0);

    OwnerAccounting acct(capture());
    const auto &proc = acct.usage(os.vmId(), pid);
    EXPECT_EQ(proc.ownedTotal(), 4 * KiB);
    EXPECT_EQ(proc.sharedTotal(), 0u);
    // The kernel's cache mapping of the same guest page adds nothing.
    if (acct.hasProcess(os.vmId(), 0)) {
        EXPECT_EQ(acct.usage(os.vmId(), 0).ownedTotal() +
                      acct.usage(os.vmId(), 0).sharedTotal(),
                  0u);
    }
    // Conservation still holds.
    EXPECT_EQ(acct.attributedBytes(), acct.residentBytes());
}

TEST_F(AnalysisFixture, SelfDeduplicationCountsAsSaving)
{
    GuestOs &os = addGuest();
    Pid pid = os.spawn("p", true);
    Vma *vma = os.mmapAnon(pid, 16 * KiB, MemCategory::JavaHeap, "h");
    for (std::uint64_t i = 0; i < 4; ++i)
        os.writePage(vma, i, PageData::zero());
    hv->collapseIdenticalPages();
    EXPECT_EQ(hv->residentFrames(), 1u);

    OwnerAccounting acct(capture());
    const auto &pu = acct.usage(os.vmId(), pid);
    EXPECT_EQ(pu.ownedTotal(), 4 * KiB);
    EXPECT_EQ(pu.sharedTotal(), 12 * KiB);
}

TEST_F(AnalysisFixture, VmOverheadAttributedToVmItself)
{
    addGuest(2 * MiB);
    OwnerAccounting acct(capture());
    EXPECT_EQ(acct.vmBreakdown(0).vmSelf, 2 * MiB);
    EXPECT_EQ(acct.attributedBytes(), acct.residentBytes());
}

TEST_F(AnalysisFixture, ReportRenderersProduceOutput)
{
    GuestOs &os = addGuest(1 * MiB);
    Pid java = os.spawn("java", true);
    Vma *vma = os.mmapAnon(java, 64 * KiB, MemCategory::JavaHeap, "h");
    for (std::uint64_t i = 0; i < 16; ++i)
        os.writePage(vma, i, PageData::filled(1, i));

    OwnerAccounting acct(capture());
    std::string vm_report =
        analysis::renderVmBreakdownReport(acct, {"VM1"});
    EXPECT_NE(vm_report.find("VM1"), std::string::npos);
    EXPECT_NE(vm_report.find("Java"), std::string::npos);

    std::vector<analysis::JavaProcRow> rows = {{"JVM1", 0, java}};
    std::string java_report =
        analysis::renderJavaBreakdownReport(acct, rows);
    EXPECT_NE(java_report.find("Java heap"), std::string::npos);
    EXPECT_NE(java_report.find("JVM1"), std::string::npos);

    EXPECT_NE(analysis::vmBreakdownCsv(acct, {"VM1"}).find("vm,"),
              std::string::npos);
    EXPECT_NE(analysis::javaBreakdownCsv(acct, rows).find("process,"),
              std::string::npos);
}

TEST_F(AnalysisFixture, SwappedPagesAreNotPhysicalUsage)
{
    // Tiny host: force some of the guest's pages out, then verify the
    // walk skips them.
    StatSet s2;
    hv::HostConfig tiny;
    tiny.ramBytes = 8 * pageSize;
    tiny.reserveBytes = 0;
    KvmHypervisor small_hv(tiny, s2);
    VmId id = small_hv.createVm("vm", 1 * MiB, 0);
    GuestOs os(small_hv, id, "vm", 5);
    Pid pid = os.spawn("p", false);
    Vma *vma = os.mmapAnon(pid, 12 * pageSize, MemCategory::JvmWork, "x");
    for (std::uint64_t i = 0; i < 12; ++i)
        os.writePage(vma, i, PageData::filled(1, i));

    std::vector<const GuestOs *> ptrs = {&os};
    Snapshot snap = analysis::captureSnapshot(small_hv, ptrs);
    EXPECT_EQ(snap.frames.size(), 8u);
    OwnerAccounting acct(snap);
    EXPECT_EQ(acct.attributedBytes(), 8 * pageSize);
}

TEST_F(AnalysisFixture, ParallelWalkIsIdenticalToSerial)
{
    // Shared and private content across three guests, with overhead
    // frames and KSM sharing in play, so the walk exercises every
    // reference shape.
    for (int i = 0; i < 3; ++i) {
        GuestOs &os = addGuest(64 * KiB);
        Pid java = os.spawn("java", true);
        Vma *heap = os.mmapAnon(java, 256 * KiB, MemCategory::JavaHeap,
                                "heap");
        for (std::uint64_t p = 0; p < heap->numPages; ++p)
            os.writePage(heap, p, PageData::filled(p % 5, p % 3));
        Pid d = os.spawn("daemon", false);
        Vma *w = os.mmapAnon(d, 64 * KiB, MemCategory::JvmWork, "w");
        for (std::uint64_t p = 0; p < w->numPages; ++p)
            os.writePage(w, p, PageData::filled(40 + i, p));
    }
    hv->collapseIdenticalPages();

    Snapshot serial = capture(); // threads = 1
    std::vector<const GuestOs *> ptrs;
    for (const auto &g : guests)
        ptrs.push_back(g.get());
    StatSet walk_stats;
    Snapshot par = analysis::captureSnapshot(*hv, ptrs, 4, &walk_stats);
    EXPECT_EQ(walk_stats.get("forensics.walk_shards"), 3u);

    ASSERT_EQ(par.totalResidentFrames, serial.totalResidentFrames);
    ASSERT_EQ(par.overheadFrames, serial.overheadFrames);
    ASSERT_EQ(par.vmCount, serial.vmCount);
    ASSERT_EQ(par.frames.size(), serial.frames.size());
    // The deterministic reduce replays shard results in fixed VM order,
    // so not only the contents but the frames map's *iteration order*
    // (which downstream accounting observes) must match the serial walk.
    auto ps = serial.frames.begin();
    auto pp = par.frames.begin();
    for (; ps != serial.frames.end(); ++ps, ++pp) {
        ASSERT_EQ(pp->first, ps->first);
        ASSERT_EQ(pp->second, ps->second);
    }
}

TEST_F(AnalysisFixture, ParallelAccountingIsBitIdenticalToSerial)
{
    for (int i = 0; i < 4; ++i) {
        GuestOs &os = addGuest(32 * KiB);
        Pid java = os.spawn("java", true);
        Vma *heap = os.mmapAnon(java, 128 * KiB, MemCategory::JavaHeap,
                                "heap");
        for (std::uint64_t p = 0; p < heap->numPages; ++p)
            os.writePage(heap, p, PageData::filled(p % 7, p % 2));
    }
    hv->collapseIdenticalPages();
    Snapshot snap = capture();

    OwnerAccounting o1(snap);
    OwnerAccounting o4(snap, 4);
    EXPECT_EQ(o4.attributedBytes(), o1.attributedBytes());
    EXPECT_EQ(o4.residentBytes(), o1.residentBytes());
    EXPECT_EQ(o4.processes(), o1.processes());

    // PSS sums are floating point; the serial-order accumulation makes
    // them bit-identical at any thread count, not merely close.
    PssAccounting p1(snap);
    PssAccounting p4(snap, 4);
    EXPECT_EQ(p4.totalBytes(), p1.totalBytes());
    EXPECT_EQ(p4.processes(), p1.processes());
}
