/**
 * @file
 * Property-based tests (parameterized sweeps): the hypervisor + KSM
 * stack is driven with randomized operation streams and checked against
 * a shadow model, across many seeds.
 *
 * Invariants (DESIGN.md §7):
 *  - a guest always reads back exactly what it last wrote, no matter
 *    what merging/COW/eviction happened in between;
 *  - structural consistency (refcounts, counters) holds at every
 *    checkpoint;
 *  - owner-oriented attribution conserves resident bytes.
 */

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/accounting.hh"
#include "analysis/forensics.hh"
#include "base/rng.hh"
#include "base/stats.hh"
#include "core/scenario.hh"
#include "guest/guest_os.hh"
#include "hv/hypervisor.hh"
#include "ksm/ksm_scanner.hh"

using namespace jtps;
using hv::KvmHypervisor;
using ksm::KsmConfig;
using ksm::KsmScanner;
using mem::PageData;

namespace
{

class HvFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

} // namespace

TEST_P(HvFuzz, ReadYourWritesUnderMergeCowEvict)
{
    const std::uint64_t seed = GetParam();
    Rng rng(seed);
    StatSet stats;

    hv::HostConfig host;
    host.ramBytes = 64 * pageSize; // tight: forces eviction
    host.reserveBytes = 0;
    KvmHypervisor hv(host, stats);

    constexpr int num_vms = 3;
    constexpr Gfn pages_per_vm = 40;
    for (int v = 0; v < num_vms; ++v)
        hv.createVm("vm" + std::to_string(v), pages_per_vm * pageSize, 0);

    KsmConfig kcfg;
    kcfg.pagesToScan = 1000;
    KsmScanner scanner(hv, kcfg, stats);

    // Shadow model: what each guest page must contain.
    std::map<std::pair<VmId, Gfn>, PageData> shadow;

    for (int step = 0; step < 3000; ++step) {
        const VmId vm = rng.nextBelow(num_vms);
        const Gfn gfn = rng.nextBelow(pages_per_vm);
        const int op = rng.nextBelow(100);

        if (op < 45) {
            // Write a page; small content space => many duplicates.
            PageData d = PageData::filled(rng.nextBelow(6), 0);
            hv.writePage(vm, gfn, d);
            shadow[{vm, gfn}] = d;
        } else if (op < 60) {
            // Word write.
            const unsigned sector = rng.nextBelow(mem::sectorsPerPage);
            const std::uint64_t value = rng.nextBelow(4);
            hv.writeWord(vm, gfn, sector, value);
            shadow[{vm, gfn}].word[sector] = value;
        } else if (op < 75) {
            // Read and verify immediately.
            const unsigned sector = rng.nextBelow(mem::sectorsPerPage);
            auto it = shadow.find({vm, gfn});
            const std::uint64_t expect =
                it == shadow.end() ? 0 : it->second.word[sector];
            ASSERT_EQ(hv.readWord(vm, gfn, sector), expect)
                << "seed=" << seed << " step=" << step;
        } else if (op < 85) {
            hv.discardPage(vm, gfn);
            shadow.erase({vm, gfn});
        } else if (op < 95) {
            scanner.scanBatch();
        } else {
            hv.touchPage(vm, gfn);
        }

        if (step % 500 == 0)
            hv.checkConsistency();
    }

    // Final full verification of every guest page.
    for (int v = 0; v < num_vms; ++v) {
        for (Gfn g = 0; g < pages_per_vm; ++g) {
            auto it = shadow.find({static_cast<VmId>(v), g});
            for (unsigned s = 0; s < mem::sectorsPerPage; ++s) {
                const std::uint64_t expect =
                    it == shadow.end() ? 0 : it->second.word[s];
                ASSERT_EQ(hv.readWord(v, g, s), expect)
                    << "seed=" << seed << " vm=" << v << " gfn=" << g;
            }
        }
    }
    hv.checkConsistency();
}

INSTANTIATE_TEST_SUITE_P(Seeds, HvFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34,
                                           55, 89));

namespace
{

class SharingCounterFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

} // namespace

TEST_P(SharingCounterFuzz, CountersMatchFullRecountUnderMergeCowFree)
{
    // The O(1) pages_shared / pages_sharing counters are bumped at
    // every ksmMakeStable / ksmMergeInto / COW break / unmap / evict;
    // after a randomized workload they must equal what a full
    // frame-table walk reports.
    const std::uint64_t seed = GetParam();
    Rng rng(seed);
    StatSet stats;

    hv::HostConfig host;
    host.ramBytes = 96 * pageSize; // tight: eviction hits shared frames
    host.reserveBytes = 0;
    KvmHypervisor hv(host, stats);

    constexpr int num_vms = 3;
    constexpr Gfn pages_per_vm = 48;
    for (int v = 0; v < num_vms; ++v)
        hv.createVm("vm" + std::to_string(v), pages_per_vm * pageSize, 0);

    KsmConfig kcfg;
    kcfg.pagesToScan = 1000;
    KsmScanner scanner(hv, kcfg, stats);

    auto recount = [&](std::uint64_t &shared, std::uint64_t &sharing) {
        shared = sharing = 0;
        hv.frames().forEachResident(
            [&](Hfn, const mem::Frame &f) {
                if (f.ksmStable) {
                    ++shared;
                    sharing += f.refcount - 1;
                }
            });
    };

    for (int step = 0; step < 2500; ++step) {
        const VmId vm = rng.nextBelow(num_vms);
        const Gfn gfn = rng.nextBelow(pages_per_vm);
        const int op = rng.nextBelow(100);

        if (op < 40) {
            // Small content space => many mergeable duplicates.
            hv.writePage(vm, gfn, PageData::filled(rng.nextBelow(5), 0));
        } else if (op < 55) {
            // Word write: COW-breaks shared pages.
            hv.writeWord(vm, gfn, rng.nextBelow(mem::sectorsPerPage),
                         rng.nextBelow(3));
        } else if (op < 70) {
            hv.discardPage(vm, gfn);
        } else if (op < 90) {
            scanner.scanBatch();
        } else {
            hv.touchPage(vm, gfn);
        }

        if (step % 250 == 0) {
            std::uint64_t shared = 0, sharing = 0;
            recount(shared, sharing);
            ASSERT_EQ(scanner.pagesShared(), shared)
                << "seed=" << seed << " step=" << step;
            ASSERT_EQ(scanner.pagesSharing(), sharing)
                << "seed=" << seed << " step=" << step;
        }
    }

    scanner.runToQuiescence();
    std::uint64_t shared = 0, sharing = 0;
    recount(shared, sharing);
    EXPECT_EQ(scanner.pagesShared(), shared);
    EXPECT_EQ(scanner.pagesSharing(), sharing);
    hv.checkConsistency();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharingCounterFuzz,
                         ::testing::Values(4, 9, 16, 25, 36, 49));

namespace
{

class CollapseFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

} // namespace

TEST_P(CollapseFuzz, CollapsePreservesContentAndConserves)
{
    const std::uint64_t seed = GetParam();
    Rng rng(seed);
    StatSet stats;
    hv::HostConfig host;
    host.ramBytes = 16 * MiB;
    host.reserveBytes = 0;
    hv::PowerVmHypervisor hv(host, stats);

    constexpr int num_vms = 4;
    constexpr Gfn pages = 64;
    std::map<std::pair<VmId, Gfn>, PageData> shadow;
    for (int v = 0; v < num_vms; ++v) {
        hv.createVm("vm" + std::to_string(v), pages * pageSize);
        for (Gfn g = 0; g < pages; ++g) {
            PageData d = PageData::filled(rng.nextBelow(10), 0);
            hv.writePage(v, g, d);
            shadow[{static_cast<VmId>(v), g}] = d;
        }
    }

    const std::uint64_t before = hv.residentFrames();
    const std::uint64_t merged = hv.runTps();
    EXPECT_EQ(hv.residentFrames(), before - merged);
    // At most 10 distinct contents remain.
    EXPECT_LE(hv.residentFrames(), 10u);
    hv.checkConsistency();

    for (auto &[key, data] : shadow) {
        const PageData *p = hv.peek(key.first, key.second);
        ASSERT_NE(p, nullptr);
        ASSERT_EQ(*p, data);
    }

    // Post-collapse writes still isolate correctly.
    hv.writeWord(0, 0, 0, 424242);
    for (int v = 1; v < num_vms; ++v) {
        const std::uint64_t expect =
            shadow[std::make_pair(static_cast<VmId>(v), Gfn{0})].word[0];
        EXPECT_EQ(hv.peek(v, 0)->word[0], expect);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollapseFuzz,
                         ::testing::Values(7, 11, 19, 23, 42));

namespace
{

class ConservationSweep
    : public ::testing::TestWithParam<std::tuple<int, bool>>
{
};

} // namespace

TEST_P(ConservationSweep, AttributionConservesResidentBytes)
{
    const auto [num_vms, collapse] = GetParam();
    StatSet stats;
    hv::HostConfig host;
    host.ramBytes = 2ULL * GiB;
    host.reserveBytes = 0;
    KvmHypervisor hv(host, stats);

    std::vector<std::unique_ptr<guest::GuestOs>> guests;
    guest::KernelConfig k;
    k.textBytes = 512 * KiB;
    k.dataBytes = 256 * KiB;
    k.slabBytes = 256 * KiB;
    k.sharedBootCacheBytes = 1 * MiB;
    k.privateBootCacheBytes = 512 * KiB;

    for (int v = 0; v < num_vms; ++v) {
        VmId id = hv.createVm("vm" + std::to_string(v), 32 * MiB,
                              256 * KiB);
        guests.push_back(std::make_unique<guest::GuestOs>(
            hv, id, "vm", 100 + v));
        guests.back()->bootKernel(k);
        guests.back()->spawnDaemon("d", 128 * KiB, 128 * KiB);
        Pid java = guests.back()->spawn("java", true);
        auto *vma = guests.back()->mmapAnon(
            java, 2 * MiB, guest::MemCategory::JavaHeap, "heap");
        for (std::uint64_t i = 0; i < vma->numPages; ++i) {
            guests.back()->writePage(
                vma, i, PageData::filled(i % 7, i % 3));
        }
    }
    if (collapse)
        hv.collapseIdenticalPages();

    std::vector<const guest::GuestOs *> ptrs;
    for (auto &g : guests)
        ptrs.push_back(g.get());
    analysis::Snapshot snap = analysis::captureSnapshot(hv, ptrs);
    analysis::OwnerAccounting owner(snap);
    EXPECT_EQ(owner.attributedBytes(), owner.residentBytes());
    EXPECT_EQ(owner.residentBytes(), hv.residentBytes());

    Bytes rollup = 0;
    for (int v = 0; v < num_vms; ++v)
        rollup += owner.vmBreakdown(v).usageTotal();
    EXPECT_EQ(rollup, owner.residentBytes());

    analysis::PssAccounting pss(snap);
    EXPECT_NEAR(pss.totalBytes(),
                static_cast<double>(hv.residentBytes()), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConservationSweep,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(false, true)));

namespace
{

class GuestSwapFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

} // namespace

TEST_P(GuestSwapFuzz, ContentSurvivesGuestAndHostPressure)
{
    // Both paging layers active at once: a guest with less RAM than
    // its working set, on a host with less RAM than the guest. Reads
    // must always return the last written value.
    const std::uint64_t seed = GetParam();
    Rng rng(seed);
    StatSet stats;

    hv::HostConfig host;
    host.ramBytes = 32 * pageSize; // < guest RAM: host pages too
    host.reserveBytes = 0;
    KvmHypervisor hv(host, stats);
    VmId id = hv.createVm("vm", 40 * pageSize, 0);
    guest::GuestOs os(hv, id, "vm", seed);
    Pid pid = os.spawn("p", false);
    guest::Vma *vma = os.mmapAnon(pid, 64 * pageSize,
                                  guest::MemCategory::JvmWork, "ws");

    std::map<std::uint64_t, std::uint64_t> shadow; // page*8+sector -> v
    for (int step = 0; step < 4000; ++step) {
        const std::uint64_t page = rng.nextBelow(64);
        const unsigned sector = rng.nextBelow(mem::sectorsPerPage);
        if (rng.bernoulli(0.6)) {
            const std::uint64_t value = rng.next();
            os.writeWord(vma, page, sector, value);
            shadow[page * 8 + sector] = value;
        } else {
            auto it = shadow.find(page * 8 + sector);
            const std::uint64_t expect =
                it == shadow.end() ? 0 : it->second;
            ASSERT_EQ(os.readWord(vma, page, sector), expect)
                << "seed=" << seed << " step=" << step;
        }
        if (step % 1000 == 0)
            hv.checkConsistency();
    }
    // The guest must actually have used its swap for this to be a
    // meaningful test.
    EXPECT_GT(os.guestSwapOuts(), 0u);
    hv.checkConsistency();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GuestSwapFuzz,
                         ::testing::Values(3, 7, 31, 127, 8191));

namespace
{

/**
 * Two complete hypervisor + scanner stacks driven in lockstep with the
 * same operation stream: one scanner uses incremental (generation
 * gated) scanning, the other the from-scratch reference mode. Every
 * observable — merge counters, sharing totals, translations, page
 * contents — must stay identical, because skipping is gated only on
 * proofs (generation/epoch equality), never on heuristics.
 */
struct TwinStacks
{
    static constexpr int numVms = 3;
    static constexpr Gfn pagesPerVm = 48;

    StatSet inc_stats;
    StatSet ref_stats;
    TraceBuffer inc_trace;
    TraceBuffer ref_trace;
    KvmHypervisor inc_hv;
    KvmHypervisor ref_hv;
    KsmScanner inc_scanner;
    KsmScanner ref_scanner;

    static hv::HostConfig
    hostCfg(Bytes ram)
    {
        hv::HostConfig h;
        h.ramBytes = ram;
        h.reserveBytes = 0;
        return h;
    }

    static KsmConfig
    ksmCfg(bool incremental)
    {
        KsmConfig c;
        c.pagesToScan = 500;
        c.incrementalScan = incremental;
        return c;
    }

    explicit TwinStacks(Bytes ram)
        : TwinStacks(ram, ksmCfg(true), ksmCfg(false))
    {
    }

    /** Generalized twins: any two scanner configurations expected to
     *  behave byte-identically (e.g. parallel vs. serial scan). */
    TwinStacks(Bytes ram, const KsmConfig &inc_cfg,
               const KsmConfig &ref_cfg)
        : TwinStacks(hostCfg(ram), hostCfg(ram), inc_cfg, ref_cfg)
    {
    }

    /** Fully general twins: per-side host configuration too (the PML
     *  fuzzes give the log-driven side rings and the walker none). */
    TwinStacks(const hv::HostConfig &inc_host,
               const hv::HostConfig &ref_host, const KsmConfig &inc_cfg,
               const KsmConfig &ref_cfg)
        : inc_hv(inc_host, inc_stats), ref_hv(ref_host, ref_stats),
          inc_scanner(inc_hv, inc_cfg, inc_stats),
          ref_scanner(ref_hv, ref_cfg, ref_stats)
    {
        // Record both stacks' trace streams: merges, promotions, scan
        // boundaries, COW breaks and swap traffic must line up event
        // for event, not just in the totals.
        inc_trace.enable();
        ref_trace.enable();
        inc_hv.setTrace(&inc_trace);
        ref_hv.setTrace(&ref_trace);
        for (int v = 0; v < numVms; ++v) {
            inc_hv.createVm("vm" + std::to_string(v),
                            pagesPerVm * pageSize, 0);
            ref_hv.createVm("vm" + std::to_string(v),
                            pagesPerVm * pageSize, 0);
        }
    }

    void
    expectEqual(std::uint64_t seed, int step)
    {
        // Every counter the reference scanner maintains must match;
        // only the two skip-accounting counters may differ (they are
        // identically zero in reference mode).
        static const char *counters[] = {
            "ksm.stale_stable_nodes", "ksm.stale_unstable_nodes",
            "ksm.skipped_huge",       "ksm.not_calm",
            "ksm.stable_merges",      "ksm.unstable_promotions",
            "ksm.pages_visited",
        };
        for (const char *c : counters)
            ASSERT_EQ(inc_stats.get(c), ref_stats.get(c))
                << c << " seed=" << seed << " step=" << step;
        ASSERT_EQ(inc_scanner.fullScans(), ref_scanner.fullScans())
            << "seed=" << seed << " step=" << step;
        ASSERT_EQ(inc_scanner.pagesShared(), ref_scanner.pagesShared())
            << "seed=" << seed << " step=" << step;
        ASSERT_EQ(inc_scanner.pagesSharing(), ref_scanner.pagesSharing())
            << "seed=" << seed << " step=" << step;
        for (int v = 0; v < numVms; ++v) {
            for (Gfn g = 0; g < pagesPerVm; ++g) {
                ASSERT_EQ(inc_hv.translate(v, g), ref_hv.translate(v, g))
                    << "seed=" << seed << " step=" << step << " vm=" << v
                    << " gfn=" << g;
                const PageData *pi = inc_hv.peek(v, g);
                const PageData *pr = ref_hv.peek(v, g);
                ASSERT_EQ(pi == nullptr, pr == nullptr)
                    << "seed=" << seed << " step=" << step << " vm=" << v
                    << " gfn=" << g;
                if (pi != nullptr) {
                    ASSERT_EQ(*pi, *pr)
                        << "seed=" << seed << " step=" << step
                        << " vm=" << v << " gfn=" << g;
                }
            }
        }
        inc_hv.checkConsistency();
        ref_hv.checkConsistency();

        // The trace streams must be identical event by event (ticks
        // are all zero here — no clock is wired — so this compares
        // type, subject and both payload arguments in record order).
        const auto &ei = inc_trace.events();
        const auto &er = ref_trace.events();
        ASSERT_EQ(ei.size(), er.size())
            << "trace length, seed=" << seed << " step=" << step;
        for (std::size_t i = 0; i < ei.size(); ++i) {
            ASSERT_TRUE(ei[i].type == er[i].type && ei[i].vm == er[i].vm &&
                        ei[i].arg0 == er[i].arg0 &&
                        ei[i].arg1 == er[i].arg1)
                << "trace event " << i << " differs, seed=" << seed
                << " step=" << step;
        }
    }

    /**
     * Full stat-registry equality, minus @p exempt counters. Both
     * scanners register every counter up front, so the key sets
     * always agree; this catches divergence in counters outside the
     * reference-maintained list too.
     */
    void
    expectRegistriesEqual(const std::vector<std::string> &exempt,
                          std::uint64_t seed)
    {
        auto a = inc_stats.counters();
        auto b = ref_stats.counters();
        ASSERT_EQ(a.size(), b.size()) << "seed=" << seed;
        for (const auto &[name, value] : a) {
            if (std::find(exempt.begin(), exempt.end(), name) !=
                exempt.end())
                continue;
            auto it = b.find(name);
            ASSERT_TRUE(it != b.end()) << name << " seed=" << seed;
            EXPECT_EQ(value, it->second) << name << " seed=" << seed;
        }
    }
};

void
driveTwins(TwinStacks &t, std::uint64_t seed, int steps)
{
    Rng rng(seed);
    for (int step = 0; step < steps; ++step) {
        const VmId vm = rng.nextBelow(TwinStacks::numVms);
        const Gfn gfn = rng.nextBelow(TwinStacks::pagesPerVm);
        const int op = rng.nextBelow(100);

        if (op < 40) {
            // Small content pool => merges, COW breaks, re-merges.
            PageData d = PageData::filled(rng.nextBelow(6), 0);
            t.inc_hv.writePage(vm, gfn, d);
            t.ref_hv.writePage(vm, gfn, d);
        } else if (op < 55) {
            const unsigned sector = rng.nextBelow(mem::sectorsPerPage);
            const std::uint64_t value = rng.nextBelow(4);
            t.inc_hv.writeWord(vm, gfn, sector, value);
            t.ref_hv.writeWord(vm, gfn, sector, value);
        } else if (op < 67) {
            t.inc_hv.discardPage(vm, gfn);
            t.ref_hv.discardPage(vm, gfn);
        } else if (op < 80) {
            t.inc_scanner.scanBatch();
            t.ref_scanner.scanBatch();
        } else if (op < 90) {
            t.inc_hv.touchPage(vm, gfn);
            t.ref_hv.touchPage(vm, gfn);
        } else {
            const bool huge = rng.bernoulli(0.5);
            t.inc_hv.setHugePage(vm, gfn, huge);
            t.ref_hv.setHugePage(vm, gfn, huge);
        }

        if (step % 250 == 249) {
            ASSERT_NO_FATAL_FAILURE(t.expectEqual(seed, step));
        }
    }
    ASSERT_NO_FATAL_FAILURE(t.expectEqual(seed, steps));

    // Converge both and compare the quiescent state too: the last
    // passes are exactly the generation-skip-heavy ones.
    t.inc_scanner.runToQuiescence();
    t.ref_scanner.runToQuiescence();
    ASSERT_NO_FATAL_FAILURE(t.expectEqual(seed, -1));
}

class IncrementalEquivalenceFuzz
    : public ::testing::TestWithParam<std::uint64_t>
{
};

} // namespace

TEST_P(IncrementalEquivalenceFuzz, MatchesReferenceScanner)
{
    const std::uint64_t seed = GetParam();
    TwinStacks t(2 * MiB); // ample RAM: no host paging
    ASSERT_NO_FATAL_FAILURE(driveTwins(t, seed, 2500));
    // The equivalence must not be vacuous: the fast path has to have
    // actually engaged — and never in the reference scanner.
    EXPECT_GT(t.inc_stats.get("ksm.pages_gen_skipped"), 0u);
    EXPECT_EQ(t.ref_stats.get("ksm.pages_gen_skipped"), 0u);
    EXPECT_EQ(t.ref_stats.get("ksm.digest_cache_hits"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalEquivalenceFuzz,
                         ::testing::Values(6, 28, 64, 256, 496, 8128));

namespace
{

class IncrementalEquivalencePagingFuzz
    : public ::testing::TestWithParam<std::uint64_t>
{
};

} // namespace

TEST_P(IncrementalEquivalencePagingFuzz, MatchesReferenceUnderHostPaging)
{
    const std::uint64_t seed = GetParam();
    // Host RAM below the guests' combined footprint: evictions and
    // swap-ins constantly retire and reincarnate frames, which is
    // exactly where stale-generation bugs would hide.
    TwinStacks t(100 * pageSize);
    ASSERT_NO_FATAL_FAILURE(driveTwins(t, seed, 2000));
    EXPECT_GT(t.inc_stats.get("ksm.pages_gen_skipped"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalEquivalencePagingFuzz,
                         ::testing::Values(17, 33, 65, 129, 257));

namespace
{

/** Scanner config for the parallel twin tests: incremental scanning at
 *  @p threads classify workers, with shards shrunk so even these tiny
 *  memories (3 VMs x 48 pages) fan out across several shards. */
KsmConfig
parallelKsmCfg(unsigned threads)
{
    KsmConfig c;
    c.pagesToScan = 500;
    c.incrementalScan = true;
    c.scanThreads = threads;
    c.scanShardPages = 16;
    return c;
}

/**
 * Thread counts to fuzz: {1, 2, 4}, plus JTPS_BENCH_THREADS when CI
 * sets it (the same env knob the bench sweeps honor), so the
 * determinism tests exercise whatever parallelism the host offers.
 */
std::vector<unsigned>
parallelThreadCounts()
{
    std::vector<unsigned> t{1, 2, 4};
    if (const char *env = std::getenv("JTPS_BENCH_THREADS")) {
        const unsigned n =
            static_cast<unsigned>(std::strtoul(env, nullptr, 10));
        if (n >= 1 && n <= 64 &&
            std::find(t.begin(), t.end(), n) == t.end())
            t.push_back(n);
    }
    return t;
}

/** The three counters only the two-phase (parallel) scan path moves;
 *  identically zero in any serial scanner. */
const std::vector<std::string> parallelOnlyCounters = {
    "ksm.scan_shards",
    "ksm.precheck_candidates",
    "ksm.commit_replays",
};

/**
 * Batch-kernel accounting follows the *window shapes*, which differ
 * between the serial visitor (per-VM, budget-bounded windows) and the
 * classify shards (windows restarting per shard span), and are zero in
 * the unbatched PML-serial pass. Exempt wherever the compared scanners
 * take different pipeline shapes — every value, merge, translation and
 * trace event must still match bit for bit. (Between two *parallel*
 * scanners the windows are fixed by scanShardPages, so these counters
 * are thread-count invariant and stay under the exact comparison.)
 */
const std::vector<std::string> batchShapeCounters = {
    "ksm.batch_kernel_pages",
    "ksm.batch_flushes",
};

std::vector<std::string>
plusBatchShape(std::vector<std::string> v)
{
    v.insert(v.end(), batchShapeCounters.begin(),
             batchShapeCounters.end());
    return v;
}

class ParallelScanEquivalenceFuzz
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, unsigned>>
{
};

} // namespace

TEST_P(ParallelScanEquivalenceFuzz, MatchesSerialScanner)
{
    const std::uint64_t seed = std::get<0>(GetParam());
    const unsigned threads = std::get<1>(GetParam());
    // inc side: parallel classify/commit scan; ref side: the serial
    // incremental scanner it must be byte-identical to.
    TwinStacks t(2 * MiB, parallelKsmCfg(threads),
                 TwinStacks::ksmCfg(true));
    ASSERT_NO_FATAL_FAILURE(driveTwins(t, seed, 2500));
    ASSERT_NO_FATAL_FAILURE(t.expectRegistriesEqual(
        plusBatchShape(parallelOnlyCounters), seed));
    for (const auto &c : parallelOnlyCounters)
        EXPECT_EQ(t.ref_stats.get(c), 0u) << c;
    if (threads >= 2) {
        // Not vacuous: batches really were sharded out, and the
        // classify phase really fed the commit replay.
        EXPECT_GT(t.inc_stats.get("ksm.scan_shards"), 0u);
        EXPECT_GT(t.inc_stats.get("ksm.precheck_candidates"), 0u);
    } else {
        // scanThreads <= 1 must take the serial path bit for bit.
        for (const auto &c : parallelOnlyCounters)
            EXPECT_EQ(t.inc_stats.get(c), 0u) << c;
    }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByThreads, ParallelScanEquivalenceFuzz,
    ::testing::Combine(::testing::Values(6, 256, 8128),
                       ::testing::ValuesIn(parallelThreadCounts())));

namespace
{

class ParallelScanPagingFuzz
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, unsigned>>
{
};

} // namespace

TEST_P(ParallelScanPagingFuzz, MatchesSerialUnderHostPaging)
{
    const std::uint64_t seed = std::get<0>(GetParam());
    const unsigned threads = std::get<1>(GetParam());
    // Host RAM below the guests' combined footprint: evictions
    // constantly retire and reincarnate frames between batches, the
    // regime where a stale classify verdict would be most tempting to
    // trust — the write-generation proof has to reject every one.
    TwinStacks t(100 * pageSize, parallelKsmCfg(threads),
                 TwinStacks::ksmCfg(true));
    ASSERT_NO_FATAL_FAILURE(driveTwins(t, seed, 2000));
    ASSERT_NO_FATAL_FAILURE(t.expectRegistriesEqual(
        plusBatchShape(parallelOnlyCounters), seed));
    if (threads >= 2) {
        EXPECT_GT(t.inc_stats.get("ksm.scan_shards"), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByThreads, ParallelScanPagingFuzz,
    ::testing::Combine(::testing::Values(17, 129),
                       ::testing::ValuesIn(parallelThreadCounts())));

namespace
{

class ParallelScanThreadInvarianceFuzz
    : public ::testing::TestWithParam<std::uint64_t>
{
};

} // namespace

TEST_P(ParallelScanThreadInvarianceFuzz, TwoAndFourThreadsFullyIdentical)
{
    const std::uint64_t seed = GetParam();
    // Both sides take the two-phase path, at different widths. Here
    // nothing at all may differ — including the shard/candidate/replay
    // counters, whose values depend only on the (fixed) shard size and
    // the classified state, never on the thread count.
    TwinStacks t(2 * MiB, parallelKsmCfg(2), parallelKsmCfg(4));
    ASSERT_NO_FATAL_FAILURE(driveTwins(t, seed, 2500));
    ASSERT_NO_FATAL_FAILURE(t.expectRegistriesEqual({}, seed));
    EXPECT_GT(t.inc_stats.get("ksm.scan_shards"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelScanThreadInvarianceFuzz,
                         ::testing::Values(11, 77, 505));

namespace
{

/** Boot-storm-shaped prefill: every page written once from a small
 *  content pool (some left zero), so the scanners face a wall of
 *  cold, highly shareable pages — the regime the batch kernels
 *  target, with the zero fast path exercised alongside them. */
void
bootStormPrefill(TwinStacks &t, Rng &rng)
{
    for (int v = 0; v < TwinStacks::numVms; ++v) {
        for (Gfn g = 0; g < TwinStacks::pagesPerVm; ++g) {
            if (rng.bernoulli(0.15))
                continue; // leave zero
            PageData d = PageData::filled(rng.nextBelow(6), 0);
            t.inc_hv.writePage(v, g, d);
            t.ref_hv.writePage(v, g, d);
        }
    }
}

/** parallelKsmCfg() with an explicit kernel window size. */
KsmConfig
batchedKsmCfg(unsigned threads, std::uint32_t batch)
{
    KsmConfig c = parallelKsmCfg(threads);
    c.batchPages = batch;
    return c;
}

class BatchScanEquivalenceFuzz
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, unsigned>>
{
};

} // namespace

TEST_P(BatchScanEquivalenceFuzz, BatchedMatchesUnbatched)
{
    const std::uint64_t seed = std::get<0>(GetParam());
    const unsigned threads = std::get<1>(GetParam());
    // inc side: software-pipelined 16-page kernel windows; ref side:
    // the same scanner with staging disabled (batchPages == 1). Same
    // thread count both sides, so *only* the batch accounting — the
    // inc side's windows against the ref side's zeros — may differ:
    // every other counter, merge, translation, page content and trace
    // event must be bit-identical.
    TwinStacks t(2 * MiB, batchedKsmCfg(threads, 16),
                 batchedKsmCfg(threads, 1));
    Rng prefill(seed ^ 0xb0075708ull);
    bootStormPrefill(t, prefill);
    ASSERT_NO_FATAL_FAILURE(driveTwins(t, seed, 2500));
    ASSERT_NO_FATAL_FAILURE(
        t.expectRegistriesEqual(batchShapeCounters, seed));
    // Not vacuous: the batched side really ran kernel windows, and
    // the unbatched side never staged anything.
    EXPECT_GT(t.inc_stats.get("ksm.batch_kernel_pages"), 0u);
    EXPECT_GT(t.inc_stats.get("ksm.batch_flushes"), 0u);
    EXPECT_EQ(t.ref_stats.get("ksm.batch_kernel_pages"), 0u);
    EXPECT_EQ(t.ref_stats.get("ksm.batch_flushes"), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByThreads, BatchScanEquivalenceFuzz,
    ::testing::Combine(::testing::Values(42, 8128),
                       ::testing::ValuesIn(parallelThreadCounts())));

namespace
{

class BatchWidthInvarianceFuzz
    : public ::testing::TestWithParam<std::uint64_t>
{
};

} // namespace

TEST_P(BatchWidthInvarianceFuzz, RaggedWidthsFullyEquivalent)
{
    const std::uint64_t seed = GetParam();
    // Two serial scanners at ragged, co-prime window sizes: window
    // boundaries fall everywhere relative to VM ends and the scan
    // budget, so every tail width of the staging loop is exercised.
    TwinStacks t(2 * MiB, batchedKsmCfg(1, 7), batchedKsmCfg(1, 5));
    Rng prefill(seed ^ 0xb0075708ull);
    bootStormPrefill(t, prefill);
    ASSERT_NO_FATAL_FAILURE(driveTwins(t, seed, 2500));
    ASSERT_NO_FATAL_FAILURE(
        t.expectRegistriesEqual(batchShapeCounters, seed));
    EXPECT_GT(t.inc_stats.get("ksm.batch_kernel_pages"), 0u);
    EXPECT_GT(t.ref_stats.get("ksm.batch_kernel_pages"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchWidthInvarianceFuzz,
                         ::testing::Values(9, 4242));

namespace
{

/** The three counters only the staged guest-execution path moves;
 *  identically zero under direct (guestThreads == 0) execution. */
const std::vector<std::string> guestOnlyCounters = {
    "sim.guest_shards",
    "sim.intent_commits",
    "sim.stage_fallbacks",
};

core::ScenarioConfig
guestExecCfg(unsigned guest_threads, std::uint64_t seed, Bytes host_ram)
{
    core::ScenarioConfig cfg;
    cfg.enableClassSharing = true;
    cfg.warmupMs = 4'000;
    cfg.steadyMs = 6'000;
    cfg.host.ramBytes = host_ram;
    cfg.seed = seed;
    cfg.guestThreads = guest_threads;
    return cfg;
}

/**
 * Build and run a small 3-VM scenario at the given stage width. When
 * @p leave_free_pages is nonzero, each guest's balloon is inflated
 * after boot until only that many guest frames stay free — driving the
 * guests inside the stageability bound so their epochs must fall back
 * to direct execution.
 */
std::unique_ptr<core::Scenario>
runGuestScenario(unsigned guest_threads, std::uint64_t seed,
                 Bytes host_ram, std::uint64_t leave_free_pages = 0)
{
    auto s = std::make_unique<core::Scenario>(
        guestExecCfg(guest_threads, seed, host_ram),
        std::vector<workload::WorkloadSpec>(
            3, workload::tuscanyBigbank()));
    s->build();
    s->trace().enable();
    if (leave_free_pages > 0) {
        for (std::size_t v = 0; v < s->vmCount(); ++v) {
            auto &os = s->guest(v);
            const std::uint64_t used =
                os.balloonHeldPages() + os.gfnsAllocated();
            const std::uint64_t free =
                os.guestPages() > used ? os.guestPages() - used : 0;
            if (free > leave_free_pages)
                os.balloonTake(free - leave_free_pages);
        }
    }
    s->run();
    s->hv().checkConsistency();
    return s;
}

/**
 * Byte-for-byte equality of two completed runs: the full stat registry
 * (minus @p exempt), the whole trace stream including timestamps, the
 * EPT translations and page contents, and the per-epoch results.
 */
void
expectRunsEqual(core::Scenario &a, core::Scenario &b,
                const std::vector<std::string> &exempt)
{
    auto ca = a.stats().counters();
    auto cb = b.stats().counters();
    ASSERT_EQ(ca.size(), cb.size());
    for (const auto &[name, value] : ca) {
        if (std::find(exempt.begin(), exempt.end(), name) !=
            exempt.end())
            continue;
        auto it = cb.find(name);
        ASSERT_TRUE(it != cb.end()) << name;
        EXPECT_EQ(value, it->second) << name;
    }

    const auto &ea = a.trace().events();
    const auto &eb = b.trace().events();
    ASSERT_EQ(ea.size(), eb.size()) << "trace length";
    for (std::size_t i = 0; i < ea.size(); ++i) {
        ASSERT_TRUE(ea[i].tick == eb[i].tick &&
                    ea[i].type == eb[i].type && ea[i].vm == eb[i].vm &&
                    ea[i].arg0 == eb[i].arg0 && ea[i].arg1 == eb[i].arg1)
            << "trace event " << i;
    }

    ASSERT_EQ(a.vmCount(), b.vmCount());
    ASSERT_EQ(a.hv().residentBytes(), b.hv().residentBytes());
    for (std::size_t v = 0; v < a.vmCount(); ++v) {
        const std::uint64_t pages = a.guest(v).guestPages();
        ASSERT_EQ(pages, b.guest(v).guestPages());
        // Stride-sample the guest address spaces (a prime stride so
        // every region alignment gets coverage).
        for (Gfn g = 0; g < pages; g += 7) {
            ASSERT_EQ(a.hv().translate(v, g), b.hv().translate(v, g))
                << "vm=" << v << " gfn=" << g;
            const PageData *pa = a.hv().peek(v, g);
            const PageData *pb = b.hv().peek(v, g);
            ASSERT_EQ(pa == nullptr, pb == nullptr)
                << "vm=" << v << " gfn=" << g;
            if (pa != nullptr) {
                ASSERT_EQ(*pa, *pb) << "vm=" << v << " gfn=" << g;
            }
        }
    }

    // The epoch histories feed these; exact equality because both
    // modes perform the identical arithmetic in the identical order.
    EXPECT_EQ(a.aggregateThroughput(100), b.aggregateThroughput(100));
    EXPECT_EQ(a.perVmThroughput(100), b.perVmThroughput(100));
    EXPECT_EQ(a.perVmResponseMs(100), b.perVmResponseMs(100));
}

class GuestExecEquivalenceFuzz : public ::testing::TestWithParam<unsigned>
{
};

} // namespace

TEST_P(GuestExecEquivalenceFuzz, StagedMatchesDirectExecution)
{
    const unsigned threads = GetParam();
    // Reference: legacy direct execution. Staged side: stage/commit
    // epochs at the parameterized width. Everything observable must be
    // identical except the three staging counters.
    auto ref = runGuestScenario(0, 42, 6ULL * GiB);
    auto staged = runGuestScenario(threads, 42, 6ULL * GiB);
    ASSERT_NO_FATAL_FAILURE(
        expectRunsEqual(*staged, *ref, guestOnlyCounters));
    for (const auto &c : guestOnlyCounters)
        EXPECT_EQ(ref->stats().get(c), 0u) << c;
    // Not vacuous: with ample guest headroom every epoch stages.
    EXPECT_GT(staged->stats().get("sim.guest_shards"), 0u);
    EXPECT_GT(staged->stats().get("sim.intent_commits"), 0u);
    EXPECT_EQ(staged->stats().get("sim.stage_fallbacks"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Widths, GuestExecEquivalenceFuzz,
                         ::testing::ValuesIn(parallelThreadCounts()));

namespace
{

class GuestExecThreadInvarianceFuzz
    : public ::testing::TestWithParam<unsigned>
{
};

} // namespace

TEST_P(GuestExecThreadInvarianceFuzz, WidthsFullyIdentical)
{
    const unsigned threads = GetParam();
    // Both sides take the staged path, at different widths. Nothing at
    // all may differ — the staging counters included, since stage
    // verdicts and intent counts depend only on the simulated state.
    auto one = runGuestScenario(1, 9, 6ULL * GiB);
    auto wide = runGuestScenario(threads, 9, 6ULL * GiB);
    ASSERT_NO_FATAL_FAILURE(expectRunsEqual(*wide, *one, {}));
    EXPECT_GT(wide->stats().get("sim.guest_shards"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Widths, GuestExecThreadInvarianceFuzz,
                         ::testing::Values(2, 4));

namespace
{

class GuestExecFallbackFuzz : public ::testing::TestWithParam<unsigned>
{
};

} // namespace

TEST_P(GuestExecFallbackFuzz, BalloonedAndPagedHostMatchesDirect)
{
    const unsigned threads = GetParam();
    // Host RAM below the guests' combined footprint (evictions and
    // swap-ins on the commit path) and balloons inflated until only
    // ~4 MiB of guest memory stays free: every epoch's worst-case
    // demand bound exceeds that, so staging must decline and fall
    // back to serial direct execution — and still match it exactly.
    auto ref = runGuestScenario(0, 5, 640ULL * MiB, 1024);
    auto staged = runGuestScenario(threads, 5, 640ULL * MiB, 1024);
    ASSERT_NO_FATAL_FAILURE(
        expectRunsEqual(*staged, *ref, guestOnlyCounters));
    EXPECT_GT(staged->stats().get("sim.stage_fallbacks"), 0u);
    EXPECT_EQ(ref->stats().get("sim.stage_fallbacks"), 0u);
    // The squeeze has to have actually engaged both pressure paths.
    EXPECT_GT(staged->hv().majorFaults(0) + staged->hv().majorFaults(1) +
                  staged->hv().majorFaults(2),
              0u);
}

INSTANTIATE_TEST_SUITE_P(Widths, GuestExecFallbackFuzz,
                         ::testing::Values(1, 4));

// ---------------------------------------------------------------------
// PML (dirty-log) scan equivalence
// ---------------------------------------------------------------------

namespace
{

/** Log-driven scanner config at @p threads classify workers. */
KsmConfig
pmlKsmCfg(unsigned threads, std::uint32_t pages_to_scan = 500)
{
    KsmConfig c;
    c.pagesToScan = pages_to_scan;
    c.incrementalScan = true;
    c.usePml = true;
    c.scanThreads = threads;
    c.scanShardPages = 16;
    return c;
}

hv::HostConfig
pmlHostCfg(Bytes ram, std::uint32_t slots)
{
    hv::HostConfig h = TwinStacks::hostCfg(ram);
    h.pmlRingSlots = slots;
    return h;
}

/**
 * Counters that legitimately differ between a log-driven and a walking
 * scanner: visit/skip/staleness accounting (the whole point is visiting
 * fewer pages, so every per-visit tally moves differently) plus the PML
 * plumbing itself, which the walker never touches. Merges, promotions,
 * sharing totals, COW breaks and the trace stream must still match.
 */
const std::vector<std::string> pmlModeCounters = {
    "ksm.pages_visited",       "ksm.pages_gen_skipped",
    "ksm.digest_cache_hits",   "ksm.scan_shards",
    "ksm.precheck_candidates", "ksm.commit_replays",
    "ksm.stale_stable_nodes",  "ksm.stale_unstable_nodes",
    "ksm.skipped_huge",        "ksm.pages_pml_skipped",
    "hv.pml_appends",          "hv.pml_overflows",
    // Batch windows follow the pass shape too (and the log-driven
    // serial pass runs unbatched): see batchShapeCounters.
    "ksm.batch_kernel_pages",  "ksm.batch_flushes",
};

/** One random guest-side mutation applied identically to both stacks. */
void
applyTwinMutation(TwinStacks &t, Rng &rng)
{
    const VmId vm = rng.nextBelow(TwinStacks::numVms);
    const Gfn gfn = rng.nextBelow(TwinStacks::pagesPerVm);
    const int op = rng.nextBelow(100);
    if (op < 45) {
        PageData d = PageData::filled(rng.nextBelow(6), 0);
        t.inc_hv.writePage(vm, gfn, d);
        t.ref_hv.writePage(vm, gfn, d);
    } else if (op < 62) {
        const unsigned sector = rng.nextBelow(mem::sectorsPerPage);
        const std::uint64_t value = rng.nextBelow(4);
        t.inc_hv.writeWord(vm, gfn, sector, value);
        t.ref_hv.writeWord(vm, gfn, sector, value);
    } else if (op < 76) {
        t.inc_hv.discardPage(vm, gfn);
        t.ref_hv.discardPage(vm, gfn);
    } else if (op < 90) {
        t.inc_hv.touchPage(vm, gfn);
        t.ref_hv.touchPage(vm, gfn);
    } else {
        const bool huge = rng.bernoulli(0.5);
        t.inc_hv.setHugePage(vm, gfn, huge);
        t.ref_hv.setHugePage(vm, gfn, huge);
    }
}

/**
 * Everything a log-driven pass must reproduce of the walk: merge and
 * calm-protocol counters, sharing totals, pass count, every
 * translation and page content, and the trace streams event for event.
 * (Visit accounting is excluded by design — see pmlModeCounters.)
 */
void
expectPmlEqual(TwinStacks &t, std::uint64_t seed, int round)
{
    static const char *counters[] = {
        "ksm.stable_merges",
        "ksm.unstable_promotions",
        "ksm.not_calm",
        "hv.cow_breaks",
    };
    for (const char *c : counters)
        ASSERT_EQ(t.inc_stats.get(c), t.ref_stats.get(c))
            << c << " seed=" << seed << " round=" << round;
    ASSERT_EQ(t.inc_scanner.fullScans(), t.ref_scanner.fullScans())
        << "seed=" << seed << " round=" << round;
    ASSERT_EQ(t.inc_scanner.pagesShared(), t.ref_scanner.pagesShared())
        << "seed=" << seed << " round=" << round;
    ASSERT_EQ(t.inc_scanner.pagesSharing(), t.ref_scanner.pagesSharing())
        << "seed=" << seed << " round=" << round;
    for (int v = 0; v < TwinStacks::numVms; ++v) {
        for (Gfn g = 0; g < TwinStacks::pagesPerVm; ++g) {
            ASSERT_EQ(t.inc_hv.translate(v, g), t.ref_hv.translate(v, g))
                << "seed=" << seed << " round=" << round << " vm=" << v
                << " gfn=" << g;
            const PageData *pi = t.inc_hv.peek(v, g);
            const PageData *pr = t.ref_hv.peek(v, g);
            ASSERT_EQ(pi == nullptr, pr == nullptr)
                << "seed=" << seed << " round=" << round << " vm=" << v
                << " gfn=" << g;
            if (pi != nullptr) {
                ASSERT_EQ(*pi, *pr) << "seed=" << seed
                                    << " round=" << round << " vm=" << v
                                    << " gfn=" << g;
            }
        }
    }
    t.inc_hv.checkConsistency();
    t.ref_hv.checkConsistency();

    const auto &ei = t.inc_trace.events();
    const auto &er = t.ref_trace.events();
    ASSERT_EQ(ei.size(), er.size())
        << "trace length, seed=" << seed << " round=" << round;
    for (std::size_t i = 0; i < ei.size(); ++i) {
        ASSERT_TRUE(ei[i].type == er[i].type && ei[i].vm == er[i].vm &&
                    ei[i].arg0 == er[i].arg0 && ei[i].arg1 == er[i].arg1)
            << "trace event " << i << " differs, seed=" << seed
            << " round=" << round;
    }
}

/**
 * Drive the twins pass-at-a-time: a burst of mutations, then exactly
 * one full scan pass on each side. Batch boundaries fall differently
 * in the two modes (the log-driven side has far less to look at), so
 * mutating mid-pass would interleave guest trace events differently —
 * pass granularity is the finest at which the streams stay comparable.
 * This is also the discrete-event shape the drain logic assumes: rings
 * are drained at every batch, so entries never survive a cursor move.
 */
void
driveTwinsByPass(TwinStacks &t, std::uint64_t seed, int rounds)
{
    Rng rng(seed);
    for (int round = 0; round < rounds; ++round) {
        const int burst = 1 + rng.nextBelow(24);
        for (int i = 0; i < burst; ++i)
            applyTwinMutation(t, rng);
        const std::uint64_t inc_to = t.inc_scanner.fullScans() + 1;
        while (t.inc_scanner.fullScans() < inc_to)
            t.inc_scanner.scanBatch();
        const std::uint64_t ref_to = t.ref_scanner.fullScans() + 1;
        while (t.ref_scanner.fullScans() < ref_to)
            t.ref_scanner.scanBatch();
        if (round % 10 == 9) {
            ASSERT_NO_FATAL_FAILURE(expectPmlEqual(t, seed, round));
        }
    }
    t.inc_scanner.runToQuiescence();
    t.ref_scanner.runToQuiescence();
    ASSERT_NO_FATAL_FAILURE(expectPmlEqual(t, seed, -1));
    ASSERT_NO_FATAL_FAILURE(t.expectRegistriesEqual(pmlModeCounters, seed));
}

class PmlScanEquivalenceFuzz
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, unsigned>>
{
};

} // namespace

TEST_P(PmlScanEquivalenceFuzz, MatchesWalkingScanner)
{
    const std::uint64_t seed = std::get<0>(GetParam());
    const unsigned threads = std::get<1>(GetParam());
    // inc side: log-driven passes from 4096-slot rings (never
    // overflows at this scale); ref side: the serial incremental walk.
    TwinStacks t(pmlHostCfg(2 * MiB, 4096), pmlHostCfg(2 * MiB, 0),
                 pmlKsmCfg(threads), TwinStacks::ksmCfg(true));
    ASSERT_NO_FATAL_FAILURE(driveTwinsByPass(t, seed, 120));
    // Not vacuous: the log really fed the passes, whole clean VMs were
    // skipped outright, and nothing ever fell back to a walk.
    EXPECT_GT(t.inc_stats.get("hv.pml_appends"), 0u);
    EXPECT_GT(t.inc_stats.get("ksm.pages_pml_skipped"), 0u);
    EXPECT_EQ(t.inc_stats.get("hv.pml_overflows"), 0u);
    EXPECT_LT(t.inc_stats.get("ksm.pages_visited"),
              t.ref_stats.get("ksm.pages_visited"));
    EXPECT_EQ(t.ref_stats.get("hv.pml_appends"), 0u);
    EXPECT_EQ(t.ref_stats.get("ksm.pages_pml_skipped"), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByThreads, PmlScanEquivalenceFuzz,
    ::testing::Combine(::testing::Values(6, 256, 8128),
                       ::testing::ValuesIn(parallelThreadCounts())));

namespace
{

class PmlOverflowFallbackFuzz
    : public ::testing::TestWithParam<std::uint64_t>
{
};

} // namespace

TEST_P(PmlOverflowFallbackFuzz, TinyRingsForceWalksAndStillMatch)
{
    const std::uint64_t seed = GetParam();
    // 4-slot rings overflow on nearly every mutation burst, so most
    // passes run as per-VM walk fallbacks — the equivalence must
    // survive constant switching between the two pass shapes.
    TwinStacks t(pmlHostCfg(2 * MiB, 4), pmlHostCfg(2 * MiB, 0),
                 pmlKsmCfg(1), TwinStacks::ksmCfg(true));
    ASSERT_NO_FATAL_FAILURE(driveTwinsByPass(t, seed, 120));
    EXPECT_GT(t.inc_stats.get("hv.pml_overflows"), 0u);
    EXPECT_GT(t.inc_stats.get("hv.pml_appends"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PmlOverflowFallbackFuzz,
                         ::testing::Values(6, 64, 256, 496, 8128));

namespace
{

class PmlThreadInvarianceFuzz : public ::testing::TestWithParam<unsigned>
{
};

} // namespace

TEST_P(PmlThreadInvarianceFuzz, WidthsFullyIdentical)
{
    const unsigned threads = GetParam();
    // Two log-driven scanners at different widths share the pass
    // schedule batch for batch, so the full driveTwins stream —
    // mutations interleaved mid-pass and all — must leave them
    // indistinguishable. Against the serial log-driven scanner only
    // the parallel-plumbing tallies may move.
    TwinStacks t(pmlHostCfg(2 * MiB, 4096), pmlHostCfg(2 * MiB, 4096),
                 pmlKsmCfg(threads), pmlKsmCfg(1));
    ASSERT_NO_FATAL_FAILURE(driveTwins(t, 8128, 2500));
    ASSERT_NO_FATAL_FAILURE(t.expectRegistriesEqual(
        plusBatchShape(parallelOnlyCounters), 8128));
    if (threads >= 2) {
        EXPECT_GT(t.inc_stats.get("ksm.scan_shards"), 0u);
    }
    EXPECT_GT(t.inc_stats.get("hv.pml_appends"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Widths, PmlThreadInvarianceFuzz,
                         ::testing::Values(2, 4));
