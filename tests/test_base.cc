/**
 * @file
 * Unit tests for the base library: hashing, RNG, units, stats, tables.
 */

#include <algorithm>
#include <atomic>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "base/hash.hh"
#include "base/rng.hh"
#include "base/stats.hh"
#include "base/table.hh"
#include "base/thread_pool.hh"
#include "base/units.hh"

using namespace jtps;

TEST(Hash, Mix64IsDeterministicAndDispersive)
{
    EXPECT_EQ(mix64(1), mix64(1));
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 10000; ++i)
        seen.insert(mix64(i));
    EXPECT_EQ(seen.size(), 10000u);
}

TEST(Hash, CombineOrderMatters)
{
    EXPECT_NE(hashCombine(mix64(1), 2), hashCombine(mix64(2), 1));
    EXPECT_NE(hash3(1, 2, 3), hash3(3, 2, 1));
    EXPECT_EQ(hash4(1, 2, 3, 4), hash4(1, 2, 3, 4));
}

TEST(Hash, StringTagStableAndDistinct)
{
    EXPECT_EQ(stringTag("libjvm.so"), stringTag("libjvm.so"));
    EXPECT_NE(stringTag("libjvm.so"), stringTag("libjvm.sa"));
    EXPECT_NE(stringTag(""), stringTag("a"));
}

TEST(Rng, SameSeedSameStream)
{
    Rng a(12345), b(12345);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowIsInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.nextBelow(17), 17u);
    for (int i = 0; i < 1000; ++i) {
        auto v = rng.nextRange(5, 9);
        ASSERT_GE(v, 5u);
        ASSERT_LE(v, 9u);
    }
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BernoulliRate)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, PerturbOrderPreservesElements)
{
    std::vector<std::uint32_t> order(500);
    for (std::uint32_t i = 0; i < 500; ++i)
        order[i] = i;
    Rng rng(3);
    rng.perturbOrder(order, 0.35, 8);

    auto sorted = order;
    std::sort(sorted.begin(), sorted.end());
    for (std::uint32_t i = 0; i < 500; ++i)
        ASSERT_EQ(sorted[i], i);
    // ...but the order must actually have changed somewhere.
    bool changed = false;
    for (std::uint32_t i = 0; i < 500; ++i)
        changed |= order[i] != i;
    EXPECT_TRUE(changed);
}

TEST(Rng, PerturbOrderIsLocal)
{
    std::vector<std::uint32_t> order(1000);
    for (std::uint32_t i = 0; i < 1000; ++i)
        order[i] = i;
    Rng rng(4);
    rng.perturbOrder(order, 0.5, 8);
    for (std::uint32_t i = 0; i < 1000; ++i) {
        // Each element can move at most `window` slots per swap and is
        // swapped at most a couple of times; allow generous slack.
        ASSERT_LT(std::abs(static_cast<long>(order[i]) -
                           static_cast<long>(i)),
                  64);
    }
}

TEST(Rng, PerturbDiffersBySeed)
{
    std::vector<std::uint32_t> a(200), b(200);
    for (std::uint32_t i = 0; i < 200; ++i)
        a[i] = b[i] = i;
    Rng ra(100), rb(101);
    ra.perturbOrder(a, 0.35, 8);
    rb.perturbOrder(b, 0.35, 8);
    EXPECT_NE(a, b);
}

TEST(Units, PageMath)
{
    EXPECT_EQ(bytesToPages(0), 0u);
    EXPECT_EQ(bytesToPages(1), 1u);
    EXPECT_EQ(bytesToPages(4096), 1u);
    EXPECT_EQ(bytesToPages(4097), 2u);
    EXPECT_EQ(pagesToBytes(3), 12288u);
    EXPECT_EQ(pageAlignUp(5000), 8192u);
    EXPECT_EQ(pageAlignUp(8192), 8192u);
}

TEST(Units, FormatBytes)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(2 * KiB), "2.0 KiB");
    EXPECT_EQ(formatBytes(3 * MiB), "3.0 MiB");
    EXPECT_EQ(formatMiB(1536 * KiB), "1.5");
}

TEST(Stats, CountersAndScalars)
{
    StatSet s;
    EXPECT_EQ(s.get("x"), 0u);
    EXPECT_FALSE(s.has("x"));
    s.inc("x");
    s.inc("x", 4);
    EXPECT_EQ(s.get("x"), 5u);
    s.dec("x", 2);
    EXPECT_EQ(s.get("x"), 3u);
    s.set("x", 100);
    EXPECT_EQ(s.get("x"), 100u);
    s.setScalar("pi", 3.25);
    EXPECT_DOUBLE_EQ(s.getScalar("pi"), 3.25);
    EXPECT_TRUE(s.has("pi"));
    EXPECT_NE(s.render().find("pi"), std::string::npos);
    s.clear();
    EXPECT_FALSE(s.has("x"));
}

TEST(Stats, CounterHandleIsStableAcrossInsertions)
{
    StatSet s;
    std::uint64_t &x = s.counter("hot.x");
    x += 3;
    // Insert many more counters: the handle must stay valid (node-based
    // map) and keep addressing the same counter.
    for (int i = 0; i < 200; ++i)
        s.inc("filler." + std::to_string(i));
    x += 2;
    EXPECT_EQ(s.get("hot.x"), 5u);
    s.inc("hot.x");
    EXPECT_EQ(x, 6u);
}

TEST(ThreadPool, RunsEverySubmittedJob)
{
    ThreadPool pool(4);
    std::atomic<int> done{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&done]() { done.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(done.load(), 100);

    // The pool is reusable after a wait().
    pool.submit([&done]() { done.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(done.load(), 101);
}

TEST(ThreadPool, ResultsLandInTheirOwnSlots)
{
    // The sweep() pattern: each job writes only its pre-assigned slot,
    // so the collected vector is identical at any thread count.
    std::vector<std::uint64_t> results(64, 0);
    ThreadPool pool(3);
    for (std::size_t i = 0; i < results.size(); ++i)
        pool.submit([&results, i]() { results[i] = mix64(i); });
    pool.wait();
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i], mix64(i));
}

TEST(Table, AlignedRender)
{
    TextTable t;
    t.addRow({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"long-name", "22"});
    std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("long-name"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, CsvQuoting)
{
    TextTable t;
    t.addRow({"a,b", "plain", "with \"quote\""});
    std::string csv = t.renderCsv();
    EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
    EXPECT_NE(csv.find("plain"), std::string::npos);
    EXPECT_NE(csv.find("\"with \"\"quote\"\"\""), std::string::npos);
}

TEST(Table, StackedBarScales)
{
    std::vector<BarSegment> segs = {{"x", 50, 'x'}, {"y", 50, 'y'}};
    std::string bar = renderStackedBar("L", segs, 100, 40);
    EXPECT_EQ(std::count(bar.begin(), bar.end(), 'x'), 20);
    EXPECT_EQ(std::count(bar.begin(), bar.end(), 'y'), 20);
    std::string legend = renderBarLegend(segs);
    EXPECT_NE(legend.find("x=x"), std::string::npos);
}
