/**
 * @file
 * Memory forensics deep-dive: the paper's §II methodology exposed as a
 * tool.
 *
 * Builds a two-guest host, runs briefly, then walks all three
 * translation layers and prints:
 *  - the per-VM component breakdown (Fig. 2 style),
 *  - each Java process's Table-IV category breakdown,
 *  - owner-oriented vs PSS attribution side by side,
 *  - the most-shared host frames and who maps them.
 */

#include <algorithm>
#include <cstdio>

#include "analysis/accounting.hh"
#include "analysis/dump_format.hh"
#include "analysis/forensics.hh"
#include "analysis/report.hh"
#include "analysis/smaps.hh"
#include "core/scenario.hh"

using namespace jtps;

int
main()
{
    setVerbose(false);
    core::ScenarioConfig cfg;
    cfg.enableClassSharing = true;
    cfg.warmupMs = 25'000;
    cfg.steadyMs = 30'000;
    std::vector<workload::WorkloadSpec> vms(2, workload::dayTraderIntel());
    core::Scenario scenario(cfg, vms);
    scenario.build();
    scenario.run();

    analysis::Snapshot snap = scenario.snapshot();
    analysis::OwnerAccounting owner(snap);
    analysis::PssAccounting pss(snap);

    std::printf("=== per-VM component breakdown (owner-oriented) ===\n");
    std::printf("%s\n",
                analysis::renderVmBreakdownReport(owner,
                                                  scenario.vmNames())
                    .c_str());

    std::printf("=== Java process categories (Table IV) ===\n");
    std::printf("%s\n",
                analysis::renderJavaBreakdownReport(owner,
                                                    scenario.javaRows())
                    .c_str());

    std::printf("=== owner-oriented vs PSS, per process ===\n");
    for (const auto &[key, pu] : owner.processes()) {
        if (pu.ownedTotal() + pu.sharedTotal() < 1 * MiB)
            continue;
        std::printf("vm%u pid%u %-12s owned=%9s shared=%9s pss=%9.1f "
                    "MiB\n",
                    key.first, key.second, pu.isJava ? "(java)" : "",
                    formatMiB(pu.ownedTotal()).c_str(),
                    formatMiB(pu.sharedTotal()).c_str(),
                    pss.pss(key.first, key.second) / MiB);
    }

    std::printf("\n=== most-shared host frames ===\n");
    std::vector<std::pair<Hfn, std::size_t>> top;
    for (const auto &[hfn, refs] : snap.frames)
        top.emplace_back(hfn, refs.size());
    std::sort(top.begin(), top.end(), [](const auto &a, const auto &b) {
        return a.second > b.second;
    });
    for (std::size_t i = 0; i < 5 && i < top.size(); ++i) {
        const auto &refs = snap.frames.at(top[i].first);
        const auto *data =
            &scenario.hv().frames().frame(top[i].first).data;
        std::printf("frame %llu: %zu mappings, %s, e.g. vm%u pid%u %s\n",
                    (unsigned long long)top[i].first, top[i].second,
                    data->isZero() ? "zero page" : "content page",
                    refs[0].vm, refs[0].pid,
                    guest::categoryName(refs[0].category));
    }

    std::printf("\nconservation: attributed=%s MiB == resident=%s MiB\n",
                formatMiB(owner.attributedBytes()).c_str(),
                formatMiB(owner.residentBytes()).c_str());

    // smaps view of the first guest's Java process: the host-side
    // truth a guest-internal smaps could never show (TPS-shared pages
    // count as shared here).
    std::printf("\n=== /proc/<java>/smaps of VM1 (largest mappings) "
                "===\n");
    analysis::ProcessSmaps smaps =
        analysis::computeSmaps(scenario.guest(0),
                               scenario.javaRows()[0].pid);
    std::sort(smaps.entries.begin(), smaps.entries.end(),
              [](const auto &a, const auto &b) { return a.rss > b.rss; });
    for (std::size_t i = 0; i < 6 && i < smaps.entries.size(); ++i) {
        const auto &e = smaps.entries[i];
        std::printf("%-28s rss=%9s pss=%9.1f MiB shared=%9s swap=%s\n",
                    e.name.c_str(), formatMiB(e.rss).c_str(),
                    e.pss / MiB, formatMiB(e.sharedClean).c_str(),
                    formatMiB(e.swap).c_str());
    }

    // Offline-analysis round trip, the paper's actual workflow: save
    // the dump, reload it, account again.
    const std::string dump = analysis::writeDump(snap);
    analysis::OwnerAccounting replayed(
        [&] {
            analysis::Snapshot s = analysis::parseDump(dump);
            return s;
        }());
    std::printf("\ndump round-trip: %zu bytes, replayed attribution %s "
                "MiB (%s)\n",
                dump.size(), formatMiB(replayed.attributedBytes()).c_str(),
                replayed.attributedBytes() == owner.attributedBytes()
                    ? "matches live walk"
                    : "MISMATCH");
    return 0;
}
