/**
 * @file
 * Overcommit inspector: per-VM health on a loaded host.
 *
 * Usage: overcommit_inspector [cds 0|1] [num_vms]
 *
 * Runs the density scenario and prints, per VM: achieved throughput,
 * response time, major faults, and pages the host swapped out —
 * the view used to diagnose which guests a thrashing host is hurting.
 */

#include <cstdio>
#include <cstdlib>

#include "core/scenario.hh"

using namespace jtps;

int
main(int argc, char **argv)
{
    setVerbose(false);
    const bool cds = argc > 1 && argv[1][0] == '1';
    const int num_vms = argc > 2 ? std::atoi(argv[2]) : 8;

    core::ScenarioConfig cfg;
    cfg.enableClassSharing = cds;
    cfg.warmupMs = 70'000;
    cfg.steadyMs = 60'000;
    std::vector<workload::WorkloadSpec> vms(
        num_vms, workload::dayTraderIntel());
    core::Scenario scenario(cfg, vms);
    scenario.build();
    scenario.run();

    std::printf("host: %d DayTrader guests, class sharing %s\n\n",
                num_vms, cds ? "ON" : "OFF");
    std::printf("%-6s %12s %12s %12s %12s\n", "VM", "rq/s", "resp(ms)",
                "maj faults", "swapped(MiB)");
    std::printf("%s\n", std::string(58, '-').c_str());

    auto tput = scenario.perVmThroughput(12);
    auto resp = scenario.perVmResponseMs(12);
    double total = 0;
    for (int v = 0; v < num_vms; ++v) {
        total += tput[v];
        std::printf("%-6s %12.1f %12.0f %12llu %12s\n",
                    scenario.vmNames()[v].c_str(), tput[v], resp[v],
                    (unsigned long long)scenario.hv().majorFaults(v),
                    formatMiB(pagesToBytes(
                                  scenario.hv().vm(v).swappedPages))
                        .c_str());
    }
    std::printf("\naggregate: %.1f rq/s;  host resident %s MiB;  "
                "swap slots %llu;  KSM saved %s MiB;  disk util %.2f\n",
                total, formatMiB(scenario.hv().residentBytes()).c_str(),
                (unsigned long long)scenario.hv().swap().used(),
                formatMiB(scenario.ksm().savedBytes()).c_str(),
                scenario.disk().utilization());
    return 0;
}
