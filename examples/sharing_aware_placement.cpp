/**
 * @file
 * Sharing-aware VM placement (Memory Buddies, paper §VI related work).
 *
 * Wood et al. collocate VMs with similar workloads so TPS finds more
 * identical pages. This example places six guests (2x DayTrader,
 * 2x TPC-W, 2x Tuscany) onto two hosts either *grouped by similarity*
 * or *mixed*, runs both placements, and compares total resident host
 * memory. With the paper's copied class cache, similar workloads share
 * their class areas and NIO payloads, so the grouped placement ends up
 * smaller — and the Tuscany pair (different middleware, different
 * cache) is the reason mixing hurts.
 */

#include <cstdio>

#include "core/placement.hh"
#include "core/scenario.hh"

using namespace jtps;

namespace
{

Bytes
runHost(const std::vector<workload::WorkloadSpec> &vms)
{
    core::ScenarioConfig cfg;
    cfg.enableClassSharing = true;
    cfg.warmupMs = 30'000;
    cfg.steadyMs = 30'000;
    core::Scenario scenario(cfg, vms);
    scenario.build();
    scenario.run();
    return scenario.hv().residentBytes();
}

} // namespace

int
main()
{
    setVerbose(false);
    const auto dt = workload::dayTraderIntel();
    const auto tw = workload::tpcwJava();
    const auto tb = workload::tuscanyBigbank();

    std::printf("Sharing-aware placement (Memory Buddies): six guests "
                "onto two 6 GB hosts, class sharing on\n\n");

    // Let the fingerprint-based planner choose the grouping, then run
    // the placement it picked.
    const std::vector<workload::WorkloadSpec> fleet = {dt, tb, tw,
                                                       dt, tb, tw};
    auto plan = core::PlacementPlanner::plan(fleet, 3, true);
    std::printf("planner placement:");
    for (std::size_t h = 0; h < plan.size(); ++h) {
        std::printf(" host%zu[", h + 1);
        for (std::size_t i = 0; i < plan[h].size(); ++i) {
            std::printf("%s%s", i ? "," : "",
                        fleet[plan[h][i]].name.c_str());
        }
        std::printf("]");
    }
    std::printf("\n\n");

    auto pick = [&](const std::vector<std::size_t> &members) {
        std::vector<workload::WorkloadSpec> out;
        for (std::size_t m : members)
            out.push_back(fleet[m]);
        return out;
    };
    const Bytes g1 = runHost(pick(plan[0]));
    const Bytes g2 = runHost(pick(plan[1]));
    std::printf("planned  host1: %8s MiB\n", formatMiB(g1).c_str());
    std::printf("planned  host2: %8s MiB\n", formatMiB(g2).c_str());

    // Mixed: one of each everywhere.
    const Bytes m1 = runHost({dt, tw, tb});
    const Bytes m2 = runHost({dt, tw, tb});
    std::printf("mixed    host1 [DayTrader, TPC-W, Tuscany]:   %8s MiB\n",
                formatMiB(m1).c_str());
    std::printf("mixed    host2 [DayTrader, TPC-W, Tuscany]:   %8s MiB\n",
                formatMiB(m2).c_str());

    const Bytes grouped = g1 + g2, mixed = m1 + m2;
    std::printf("\ntotal: planned=%s MiB vs mixed=%s MiB "
                "(placement saves %s MiB)\n",
                formatMiB(grouped).c_str(), formatMiB(mixed).c_str(),
                formatMiB(mixed > grouped ? mixed - grouped : 0)
                    .c_str());
    std::printf("\nnote: WAS apps share the middleware-only base-image "
                "cache with each other, so DayTrader and TPC-W are "
                "already 'similar'; Tuscany (different middleware) is "
                "what placement must keep together.\n");
    return 0;
}
