/**
 * @file
 * Quickstart: the paper's headline result in ~40 lines.
 *
 * Builds a KVM host with four 1 GiB guests, each running a WAS +
 * DayTrader Java application server, with KSM scanning — first with the
 * default configuration, then with the paper's technique (a shared
 * class cache populated once and copied to every VM). Prints the
 * per-VM physical-memory breakdown and the TPS savings for both.
 */

#include <cstdio>

#include "core/scenario.hh"

using namespace jtps;

namespace
{

core::ScenarioConfig
baseConfig(bool class_sharing)
{
    core::ScenarioConfig cfg;
    cfg.enableClassSharing = class_sharing;
    // Short phases for a demo (the benches run the paper-length ones).
    cfg.warmupMs = 30'000;
    cfg.steadyMs = 60'000;
    return cfg;
}

void
runOnce(bool class_sharing)
{
    std::printf("=== class sharing %s ===\n",
                class_sharing ? "ON (cache copied to all VMs)" : "OFF");

    std::vector<workload::WorkloadSpec> vms(4, workload::dayTraderIntel());
    core::Scenario scenario(baseConfig(class_sharing), vms);
    scenario.build();
    scenario.run();

    auto acct = scenario.account();
    std::printf("%s\n",
                analysis::renderVmBreakdownReport(acct,
                                                  scenario.vmNames())
                    .c_str());
    std::printf("ksm: pages_shared=%llu pages_sharing=%llu saved=%s MiB\n\n",
                (unsigned long long)scenario.ksm().pagesShared(),
                (unsigned long long)scenario.ksm().pagesSharing(),
                formatMiB(scenario.ksm().savedBytes()).c_str());
}

} // namespace

int
main()
{
    setVerbose(false);
    runOnce(false);
    runOnce(true);
    return 0;
}
