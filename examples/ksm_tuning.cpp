/**
 * @file
 * KSM tuning explorer: watch convergence live.
 *
 * Attaches the scanner at a chosen rate and samples pages_shared /
 * pages_sharing every few simulated seconds, printing a small
 * convergence trace — the view an operator gets from
 * /sys/kernel/mm/ksm while tuning the paper's two knobs.
 */

#include <cstdio>

#include "core/scenario.hh"

using namespace jtps;

int
main()
{
    setVerbose(false);
    core::ScenarioConfig cfg;
    cfg.enableClassSharing = true;
    cfg.ksmWarmupPagesToScan = 10000; // paper's warm-up rate
    cfg.warmupMs = 0;                 // we drive phases manually below
    cfg.steadyMs = 0;

    std::vector<workload::WorkloadSpec> vms(3, workload::dayTraderIntel());
    core::Scenario scenario(cfg, vms);
    scenario.build();

    scenario.ksm().setPagesToScan(10000);
    scenario.ksm().attach(scenario.queue());

    std::printf("time(s)  full_scans  pages_shared  pages_sharing  "
                "saved(MiB)  ksmd-CPU\n");
    std::printf("%s\n", std::string(72, '-').c_str());
    for (int step = 1; step <= 12; ++step) {
        scenario.runFor(5'000);
        if (step == 6) {
            // The paper throttles after warm-up.
            scenario.ksm().setPagesToScan(1000);
            std::printf("-- throttling pages_to_scan to 1000 --\n");
        }
        std::printf("%7d %11llu %13llu %14llu %11s %8.1f%%\n", step * 5,
                    (unsigned long long)scenario.ksm().fullScans(),
                    (unsigned long long)scenario.ksm().pagesShared(),
                    (unsigned long long)scenario.ksm().pagesSharing(),
                    formatMiB(scenario.ksm().savedBytes()).c_str(),
                    scenario.ksm().cpuUsage() * 100.0);
    }
    return 0;
}
