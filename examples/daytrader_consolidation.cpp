/**
 * @file
 * Consolidation planning: how many DayTrader guests fit on this host?
 *
 * The scenario a PaaS operator faces (paper §I): each extra guest VM
 * on the 6 GB host is revenue, but one VM too many collapses everyone.
 * This example walks the VM count upward under both configurations and
 * reports the largest count whose per-VM throughput stays above an
 * acceptability threshold — reproducing the paper's conclusion that
 * class preloading buys one extra guest.
 */

#include <cstdio>

#include "core/scenario.hh"

using namespace jtps;

namespace
{

constexpr double acceptable_fraction = 0.65; // of ideal throughput

double
idealPerVm(const workload::WorkloadSpec &spec)
{
    return spec.clientThreads * 1000.0 / (spec.thinkMs + spec.serviceMs);
}

double
measureAggregate(int num_vms, bool class_sharing)
{
    core::ScenarioConfig cfg;
    cfg.enableClassSharing = class_sharing;
    cfg.warmupMs = 50'000;
    cfg.steadyMs = 40'000;
    std::vector<workload::WorkloadSpec> vms(
        num_vms, workload::dayTraderIntel());
    core::Scenario scenario(cfg, vms);
    scenario.build();
    scenario.run();
    return scenario.aggregateThroughput(10);
}

int
maxAcceptableVms(bool class_sharing)
{
    const double ideal = idealPerVm(workload::dayTraderIntel());
    int best = 0;
    for (int n = 4; n <= 9; ++n) {
        const double agg = measureAggregate(n, class_sharing);
        const bool ok = agg >= acceptable_fraction * ideal * n;
        std::printf("  %d VMs: %6.1f rq/s aggregate (%5.1f/VM) %s\n", n,
                    agg, agg / n, ok ? "acceptable" : "DEGRADED");
        std::fflush(stdout);
        if (ok)
            best = n;
        else
            break;
    }
    return best;
}

} // namespace

int
main()
{
    setVerbose(false);
    std::printf("Consolidation planner: DayTrader guests on a 6 GB "
                "host\n\n");
    std::printf("default configuration:\n");
    const int base = maxAcceptableVms(false);
    std::printf("\nwith the copied shared class cache:\n");
    const int ours = maxAcceptableVms(true);

    std::printf("\nmax guests with acceptable performance: %d (default) "
                "vs %d (class preloading)\n",
                base, ours);
    std::printf("paper: 7 vs 8 — \"our approach allowed an extra guest "
                "VM to run with acceptable performance\"\n");
    return 0;
}
