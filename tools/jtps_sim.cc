/**
 * @file
 * jtps_sim — command-line scenario runner.
 *
 * Puts the whole library behind one binary: pick a workload, a VM
 * count and the memory techniques to enable, run the measurement
 * protocol, and print any of the paper's report views.
 *
 *   jtps_sim --workload daytrader --vms 4 --cds --report all
 *   jtps_sim --vms 8 --cds --zram 512 --report throughput
 *   jtps_sim --vms 2 --thp --report sources --csv
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analysis/sharing_sources.hh"
#include "analysis/smaps.hh"
#include "core/scenario.hh"
#include "guest/balloon.hh"

using namespace jtps;

namespace
{

struct Options
{
    std::string workload = "daytrader";
    int vms = 4;
    bool cds = false;
    bool copyCache = true;
    Bytes aotBytes = 0;
    bool thp = false;
    Bytes zramBytes = 0;
    Bytes balloonBytes = 0;
    Bytes hostRam = 6ULL * GiB;
    Tick warmupMs = 45'000;
    Tick steadyMs = 60'000;
    std::uint64_t seed = 42;
    std::string report = "breakdown";
    bool csv = false;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --workload W    daytrader | specj | tpcw | tuscany\n"
        "  --vms N         guest count (default 4)\n"
        "  --cds           enable class sharing (cache copied to VMs)\n"
        "  --no-copy       populate the cache per VM instead\n"
        "  --aot MB        add an AOT section of MB to the cache\n"
        "  --thp           guest transparent huge pages\n"
        "  --zram MB       compressed host swap pool\n"
        "  --balloon MB    inflate a balloon per guest after boot\n"
        "  --ram GB        host RAM (default 6)\n"
        "  --warmup S      warm-up seconds (default 45)\n"
        "  --steady S      steady seconds (default 60)\n"
        "  --seed N        scenario seed\n"
        "  --report R      breakdown | java | sources | smaps |\n"
        "                  throughput | all\n"
        "  --csv           CSV output where available\n",
        argv0);
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options opt;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--workload")
            opt.workload = need(i);
        else if (arg == "--vms")
            opt.vms = std::atoi(need(i));
        else if (arg == "--cds")
            opt.cds = true;
        else if (arg == "--no-copy")
            opt.copyCache = false;
        else if (arg == "--aot")
            opt.aotBytes = std::strtoull(need(i), nullptr, 10) * MiB;
        else if (arg == "--thp")
            opt.thp = true;
        else if (arg == "--zram")
            opt.zramBytes = std::strtoull(need(i), nullptr, 10) * MiB;
        else if (arg == "--balloon")
            opt.balloonBytes = std::strtoull(need(i), nullptr, 10) * MiB;
        else if (arg == "--ram")
            opt.hostRam = std::strtoull(need(i), nullptr, 10) * GiB;
        else if (arg == "--warmup")
            opt.warmupMs = std::strtoull(need(i), nullptr, 10) * 1000;
        else if (arg == "--steady")
            opt.steadyMs = std::strtoull(need(i), nullptr, 10) * 1000;
        else if (arg == "--seed")
            opt.seed = std::strtoull(need(i), nullptr, 10);
        else if (arg == "--report")
            opt.report = need(i);
        else if (arg == "--csv")
            opt.csv = true;
        else
            usage(argv[0]);
    }
    if (opt.vms < 1 || opt.vms > 32)
        fatal("--vms must be in [1, 32]");
    return opt;
}

workload::WorkloadSpec
pickWorkload(const Options &opt)
{
    workload::WorkloadSpec spec;
    if (opt.workload == "daytrader")
        spec = workload::dayTraderIntel();
    else if (opt.workload == "specj")
        spec = workload::specjEnterprise2010();
    else if (opt.workload == "tpcw")
        spec = workload::tpcwJava();
    else if (opt.workload == "tuscany")
        spec = workload::tuscanyBigbank();
    else
        fatal("unknown workload '%s'", opt.workload.c_str());
    spec.useAotCache = opt.aotBytes > 0;
    return spec;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    const Options opt = parse(argc, argv);

    core::ScenarioConfig cfg;
    cfg.enableClassSharing = opt.cds || opt.aotBytes > 0;
    cfg.copyCacheToAllVms = opt.copyCache;
    cfg.aotCacheBytes = opt.aotBytes;
    cfg.guestThp = opt.thp;
    cfg.host.ramBytes = opt.hostRam;
    cfg.host.compressedSwapPoolBytes = opt.zramBytes;
    cfg.warmupMs = opt.warmupMs;
    cfg.steadyMs = opt.steadyMs;
    cfg.seed = opt.seed;

    std::vector<workload::WorkloadSpec> vms(
        static_cast<std::size_t>(opt.vms), pickWorkload(opt));

    core::Scenario scenario(cfg, vms);
    scenario.build();
    if (opt.balloonBytes > 0) {
        for (int v = 0; v < opt.vms; ++v) {
            guest::BalloonDriver balloon(scenario.guest(v));
            balloon.inflate(opt.balloonBytes);
        }
    }
    scenario.run();
    scenario.hv().checkConsistency();

    auto acct = scenario.account();
    const bool all = opt.report == "all";

    if (all || opt.report == "breakdown") {
        std::printf("%s\n",
                    opt.csv
                        ? analysis::vmBreakdownCsv(acct,
                                                   scenario.vmNames())
                              .c_str()
                        : analysis::renderVmBreakdownReport(
                              acct, scenario.vmNames())
                              .c_str());
    }
    if (all || opt.report == "java") {
        std::printf("%s\n",
                    opt.csv
                        ? analysis::javaBreakdownCsv(acct,
                                                     scenario.javaRows())
                              .c_str()
                        : analysis::renderJavaBreakdownReport(
                              acct, scenario.javaRows())
                              .c_str());
    }
    if (all || opt.report == "sources") {
        const std::size_t guest = opt.vms > 1 ? 1 : 0;
        std::printf("TPS-shared sources in %s:\n%s\n",
                    scenario.vmNames()[guest].c_str(),
                    analysis::renderSharingSources(
                        analysis::collectSharingSources(
                            scenario.guest(guest)))
                        .c_str());
    }
    if (all || opt.report == "smaps") {
        std::printf("%s\n",
                    analysis::renderSmaps(
                        analysis::computeSmaps(scenario.guest(0),
                                               scenario.javaRows()[0].pid))
                        .c_str());
    }
    if (all || opt.report == "throughput") {
        auto tput = scenario.perVmThroughput(10);
        auto resp = scenario.perVmResponseMs(10);
        double total = 0;
        for (int v = 0; v < opt.vms; ++v) {
            total += tput[v];
            std::printf("%s: %.1f rq/s, %.0f ms, %llu maj faults\n",
                        scenario.vmNames()[v].c_str(), tput[v], resp[v],
                        (unsigned long long)scenario.hv().majorFaults(v));
        }
        std::printf("aggregate: %.1f rq/s;  resident %s MiB;  KSM saved "
                    "%s MiB (ksmd %.1f%% CPU)\n",
                    total,
                    formatMiB(scenario.hv().residentBytes()).c_str(),
                    formatMiB(scenario.ksm().savedBytes()).c_str(),
                    scenario.ksm().cpuUsage() * 100);
    }
    return 0;
}
