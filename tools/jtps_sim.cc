/**
 * @file
 * jtps_sim — command-line scenario runner.
 *
 * Puts the whole library behind one binary: pick a workload, a VM
 * count and the memory techniques to enable, run the measurement
 * protocol, and print any of the paper's report views — or export the
 * whole run as machine-readable JSON (schema: docs/METRICS.md).
 *
 *   jtps_sim --workload daytrader --vms 4 --cds --report all
 *   jtps_sim --vms 8 --cds --zram 512 --report throughput
 *   jtps_sim --vms 2 --thp --report sources --csv
 *   jtps_sim --vms 4 --cds --report timeline --json run.json --trace t.json
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "analysis/json_export.hh"
#include "analysis/sharing_sources.hh"
#include "analysis/smaps.hh"
#include "cluster/cluster.hh"
#include "core/scenario.hh"
#include "guest/balloon.hh"
#include "ksm/ksm_tuned.hh"

using namespace jtps;

namespace
{

struct Options
{
    std::string workload = "daytrader";
    int vms = 4;
    bool cds = false;
    bool copyCache = true;
    Bytes aotBytes = 0;
    bool thp = false;
    Bytes zramBytes = 0;
    Bytes balloonBytes = 0;
    bool ksmtuned = false;
    std::uint32_t pmlRingSlots = 0;
    bool adaptiveBalloon = false;
    Bytes hostRam = 6ULL * GiB;
    Tick warmupMs = 45'000;
    Tick steadyMs = 60'000;
    std::uint64_t seed = 42;
    std::string report = "breakdown";
    bool csv = false;
    std::string jsonFile;
    std::string traceFile;
    unsigned analysisThreads = 1;
    unsigned ksmThreads = 1;
    unsigned ksmCommitShards = 1;
    unsigned ksmBatch = 16;
    unsigned guestThreads = 1;
    // Cluster mode (--hosts > 0 switches from one Scenario to a fleet).
    int hosts = 0;
    int perHost = 4;
    std::string placement = "rr";
    unsigned fleetThreads = 1;
    bool migrate = false;
};

const char *const knownReports[] = {"breakdown", "java",       "sources",
                                    "smaps",     "throughput", "timeline",
                                    "all"};

[[noreturn]] void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --workload W    daytrader | specj | tpcw | tuscany\n"
        "  --vms N         guest count (default 4)\n"
        "  --cds           enable class sharing (cache copied to VMs)\n"
        "  --no-copy       populate the cache per VM instead\n"
        "  --aot MB        add an AOT section of MB to the cache\n"
        "  --thp           guest transparent huge pages\n"
        "  --zram MB       compressed host swap pool\n"
        "  --balloon MB    inflate a balloon per guest after boot\n"
        "  --ksmtuned      govern pages_to_scan adaptively (RHEL\n"
        "                  ksmtuned) instead of the paper's schedule\n"
        "  --pml-ring N    model an N-slot dirty-page log ring per VM\n"
        "                  and scan only logged pages (O(dirty) KSM\n"
        "                  passes, byte-identical merges; 0 = off)\n"
        "  --adaptive-balloon  resize balloons from the PML working-\n"
        "                  set estimate (requires --pml-ring)\n"
        "  --ram GB        host RAM (default 6)\n"
        "  --warmup S      warm-up seconds (default 45)\n"
        "  --steady S      steady seconds (default 60)\n"
        "  --seed N        scenario seed\n"
        "  --report R      breakdown | java | sources | smaps |\n"
        "                  throughput | timeline | all\n"
        "  --csv           CSV output where available\n"
        "  --json FILE     write the full run document as JSON\n"
        "  --trace FILE    record a structured event trace, write JSON\n"
        "  --analysis-threads N  shard the forensics walk/accounting\n"
        "                  across N threads (same bytes at any N)\n"
        "  --ksm-threads N  classify KSM scan batches on N threads\n"
        "                  (merges/counters identical at any N)\n"
        "  --ksm-commit-shards S  commit KSM batches as S digest\n"
        "                  shards + serial reduce (S divides 64;\n"
        "                  byte-identical at any S; ignored with PML)\n"
        "  --ksm-batch N   stage KSM content kernels over N-page\n"
        "                  windows (1 disables; byte-identical at any\n"
        "                  N, only ksm.batch_* counters move)\n"
        "  --guest-threads N  stage guest-mutator epochs on N threads\n"
        "                  (counters/traces identical at any N)\n"
        "cluster mode (fleet of independent hosts):\n"
        "  --hosts H       simulate H hosts (0 = single-host mode);\n"
        "                  --workload mix cycles all four workloads\n"
        "  --per-host N    VM slots per host (default 4, fleet = H*N)\n"
        "  --placement P   rr | random | dedup (sharing-aware packer)\n"
        "  --fleet-threads N  run hosts' rounds on N threads (cluster\n"
        "                  output is byte-identical at any N)\n"
        "  --migrate       live-migrate VMs off pressured hosts\n",
        argv0);
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options opt;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--workload")
            opt.workload = need(i);
        else if (arg == "--vms")
            opt.vms = std::atoi(need(i));
        else if (arg == "--cds")
            opt.cds = true;
        else if (arg == "--no-copy")
            opt.copyCache = false;
        else if (arg == "--aot")
            opt.aotBytes = std::strtoull(need(i), nullptr, 10) * MiB;
        else if (arg == "--thp")
            opt.thp = true;
        else if (arg == "--zram")
            opt.zramBytes = std::strtoull(need(i), nullptr, 10) * MiB;
        else if (arg == "--balloon")
            opt.balloonBytes = std::strtoull(need(i), nullptr, 10) * MiB;
        else if (arg == "--ksmtuned")
            opt.ksmtuned = true;
        else if (arg == "--pml-ring")
            opt.pmlRingSlots =
                static_cast<std::uint32_t>(std::strtoul(need(i), nullptr, 10));
        else if (arg == "--adaptive-balloon")
            opt.adaptiveBalloon = true;
        else if (arg == "--ram")
            opt.hostRam = std::strtoull(need(i), nullptr, 10) * GiB;
        else if (arg == "--warmup")
            opt.warmupMs = std::strtoull(need(i), nullptr, 10) * 1000;
        else if (arg == "--steady")
            opt.steadyMs = std::strtoull(need(i), nullptr, 10) * 1000;
        else if (arg == "--seed")
            opt.seed = std::strtoull(need(i), nullptr, 10);
        else if (arg == "--report")
            opt.report = need(i);
        else if (arg == "--csv")
            opt.csv = true;
        else if (arg == "--json")
            opt.jsonFile = need(i);
        else if (arg == "--trace")
            opt.traceFile = need(i);
        else if (arg == "--analysis-threads")
            opt.analysisThreads =
                static_cast<unsigned>(std::strtoul(need(i), nullptr, 10));
        else if (arg == "--ksm-threads")
            opt.ksmThreads =
                static_cast<unsigned>(std::strtoul(need(i), nullptr, 10));
        else if (arg == "--ksm-commit-shards")
            opt.ksmCommitShards =
                static_cast<unsigned>(std::strtoul(need(i), nullptr, 10));
        else if (arg == "--ksm-batch")
            opt.ksmBatch =
                static_cast<unsigned>(std::strtoul(need(i), nullptr, 10));
        else if (arg == "--guest-threads")
            opt.guestThreads =
                static_cast<unsigned>(std::strtoul(need(i), nullptr, 10));
        else if (arg == "--hosts")
            opt.hosts = std::atoi(need(i));
        else if (arg == "--per-host")
            opt.perHost = std::atoi(need(i));
        else if (arg == "--placement")
            opt.placement = need(i);
        else if (arg == "--fleet-threads")
            opt.fleetThreads =
                static_cast<unsigned>(std::strtoul(need(i), nullptr, 10));
        else if (arg == "--migrate")
            opt.migrate = true;
        else
            usage(argv[0]);
    }
    if (opt.vms < 1 || opt.vms > 256)
        fatal("--vms must be in [1, 256]");
    if (opt.ksmCommitShards < 1 || opt.ksmCommitShards > 64 ||
        64 % opt.ksmCommitShards != 0)
        fatal("--ksm-commit-shards must divide 64 (1, 2, 4, ..., 64)");
    if (opt.ksmBatch < 1 || opt.ksmBatch > 128)
        fatal("--ksm-batch must be in [1, 128]");
    if (opt.adaptiveBalloon && opt.pmlRingSlots == 0)
        fatal("--adaptive-balloon requires --pml-ring N");
    if (opt.hosts < 0 || opt.hosts > 64)
        fatal("--hosts must be in [0, 64]");
    if (opt.hosts > 0 && (opt.perHost < 1 || opt.perHost > 256))
        fatal("--per-host must be in [1, 256]");
    if (opt.placement != "rr" && opt.placement != "random" &&
        opt.placement != "dedup")
        fatal("unknown --placement '%s'", opt.placement.c_str());
    if (opt.hosts == 0 && opt.migrate)
        fatal("--migrate requires cluster mode (--hosts H)");

    // Reject unknown report views up front instead of silently printing
    // nothing after a long run.
    bool known = false;
    for (const char *r : knownReports)
        known = known || opt.report == r;
    if (!known) {
        std::fprintf(stderr, "unknown --report '%s'\n",
                     opt.report.c_str());
        usage(argv[0]);
    }
    return opt;
}

workload::WorkloadSpec
pickWorkload(const Options &opt)
{
    workload::WorkloadSpec spec;
    if (opt.workload == "daytrader")
        spec = workload::dayTraderIntel();
    else if (opt.workload == "specj")
        spec = workload::specjEnterprise2010();
    else if (opt.workload == "tpcw")
        spec = workload::tpcwJava();
    else if (opt.workload == "tuscany")
        spec = workload::tuscanyBigbank();
    else
        fatal("unknown workload '%s'", opt.workload.c_str());
    spec.useAotCache = opt.aotBytes > 0;
    return spec;
}

void
writeFileOrDie(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        fatal("cannot open '%s' for writing", path.c_str());
    if (std::fwrite(content.data(), 1, content.size(), f) !=
        content.size())
        fatal("short write to '%s'", path.c_str());
    std::fclose(f);
}

/** The --json document: run metadata + results + registry + series. */
std::string
runDocumentJson(const Options &opt, core::Scenario &scenario)
{
    JsonWriter w;
    w.beginObject();
    w.field("schema_version", analysis::jsonSchemaVersion);

    w.key("run").beginObject();
    w.field("tool", "jtps_sim");
    w.field("workload", opt.workload);
    w.field("vms", opt.vms);
    w.field("seed", opt.seed);
    w.field("class_sharing", opt.cds || opt.aotBytes > 0);
    w.field("copy_cache", opt.copyCache);
    w.field("aot_bytes", opt.aotBytes);
    w.field("thp", opt.thp);
    w.field("zram_bytes", opt.zramBytes);
    w.field("balloon_bytes", opt.balloonBytes);
    w.field("ksmtuned", opt.ksmtuned);
    w.field("pml_ring", opt.pmlRingSlots);
    w.field("adaptive_balloon", opt.adaptiveBalloon);
    w.field("host_ram_bytes", opt.hostRam);
    w.field("warmup_ms", opt.warmupMs);
    w.field("steady_ms", opt.steadyMs);
    w.field("sim_end_ms", scenario.queue().now());
    w.endObject();

    w.key("throughput").beginObject();
    w.field("aggregate_rq_s", scenario.aggregateThroughput(10));
    w.key("per_vm_rq_s").beginArray();
    for (double v : scenario.perVmThroughput(10))
        w.value(v);
    w.endArray();
    w.key("per_vm_response_ms").beginArray();
    for (double v : scenario.perVmResponseMs(10))
        w.value(v);
    w.endArray();
    w.key("per_vm_major_faults").beginArray();
    for (int v = 0; v < opt.vms; ++v)
        w.value(scenario.hv().majorFaults(v));
    w.endArray();
    w.endObject();

    w.key("ksm").beginObject();
    w.field("pages_shared", scenario.ksm().pagesShared());
    w.field("pages_sharing", scenario.ksm().pagesSharing());
    w.field("saved_bytes", scenario.ksm().savedBytes());
    w.field("full_scans", scenario.ksm().fullScans());
    w.field("cpu_usage", scenario.ksm().cpuUsage());
    w.endObject();

    w.key("stats");
    analysis::writeStatsJson(w, scenario.stats());

    w.key("sharing_timeline");
    if (scenario.monitor() != nullptr)
        analysis::writeSharingSeriesJson(w, *scenario.monitor());
    else
        w.beginArray().endArray();

    if (scenario.trace().enabled()) {
        w.key("trace");
        analysis::writeTraceJson(w, scenario.trace());
    }

    w.endObject();
    return w.str();
}

/** The --trace FILE document: schema version + the event stream. */
std::string
traceDocumentJson(core::Scenario &scenario)
{
    JsonWriter w;
    w.beginObject();
    w.field("schema_version", analysis::jsonSchemaVersion);
    w.key("trace");
    analysis::writeTraceJson(w, scenario.trace());
    w.endObject();
    return w.str();
}

/**
 * The fleet's VM specs: --workload mix cycles all four paper
 * workloads; any single workload name repeats it.
 */
std::vector<workload::WorkloadSpec>
fleetWorkloads(const Options &opt, std::size_t count)
{
    std::vector<workload::WorkloadSpec> specs;
    specs.reserve(count);
    if (opt.workload == "mix") {
        const workload::WorkloadSpec cycle[] = {
            workload::dayTraderIntel(), workload::specjEnterprise2010(),
            workload::tpcwJava(), workload::tuscanyBigbank()};
        for (std::size_t l = 0; l < count; ++l) {
            specs.push_back(cycle[l % 4]);
            specs.back().useAotCache = opt.aotBytes > 0;
        }
    } else {
        specs.assign(count, pickWorkload(opt));
    }
    return specs;
}

cluster::PlacementPolicy
parsePlacement(const std::string &name)
{
    if (name == "random")
        return cluster::PlacementPolicy::Random;
    if (name == "dedup")
        return cluster::PlacementPolicy::DedupAware;
    return cluster::PlacementPolicy::RoundRobin;
}

/** The cluster --json document (docs/METRICS.md, cluster section). */
std::string
clusterDocumentJson(const Options &opt, cluster::Cluster &fleet,
                    Tick warmup_ms, Tick steady_ms, Tick round_ms)
{
    JsonWriter w;
    w.beginObject();
    w.field("schema_version", analysis::jsonSchemaVersion);

    w.key("run").beginObject();
    w.field("tool", "jtps_sim");
    w.field("workload", opt.workload);
    w.field("hosts", opt.hosts);
    w.field("per_host", opt.perHost);
    w.field("vms", static_cast<std::uint64_t>(opt.hosts) *
                       static_cast<std::uint64_t>(opt.perHost));
    // Like the guest/ksm/analysis thread knobs, --fleet-threads is a
    // machine-sizing setting, not part of the run's identity: documents
    // must be byte-identical at any value, so it is not recorded.
    w.field("placement", opt.placement);
    w.field("migrate", opt.migrate);
    w.field("seed", opt.seed);
    w.field("class_sharing", opt.cds || opt.aotBytes > 0);
    w.field("copy_cache", opt.copyCache);
    w.field("pml_ring", opt.pmlRingSlots);
    w.field("adaptive_balloon", opt.adaptiveBalloon);
    w.field("host_ram_bytes", opt.hostRam);
    w.field("warmup_ms", warmup_ms);
    w.field("steady_ms", steady_ms);
    w.field("round_ms", round_ms);
    w.field("sim_end_ms", fleet.now());
    w.endObject();

    w.field("aggregate_rq_s", fleet.aggregateThroughput(10));
    fleet.writeJsonFields(w);

    w.endObject();
    return w.str();
}

/** The cluster --trace FILE document: one stream per host. */
std::string
clusterTraceJson(cluster::Cluster &fleet)
{
    JsonWriter w;
    w.beginObject();
    w.field("schema_version", analysis::jsonSchemaVersion);
    w.key("hosts").beginArray();
    for (std::size_t h = 0; h < fleet.hostCount(); ++h) {
        w.beginObject();
        w.field("label", fleet.host(h).stats().scope());
        w.key("trace");
        analysis::writeTraceJson(w, fleet.host(h).trace());
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

/** Fleet mode: build the cluster, run warm-up + steady, report. */
int
clusterMain(const Options &opt, const core::ScenarioConfig &host_cfg)
{
    cluster::ClusterConfig ccfg;
    ccfg.hosts = static_cast<std::size_t>(opt.hosts);
    // The fleet boots fully packed at --per-host VMs per host; with
    // migration enabled each host keeps one spare slot so a pressured
    // host always has somewhere to shed to.
    ccfg.slotsPerHost =
        static_cast<std::size_t>(opt.perHost) + (opt.migrate ? 1 : 0);
    ccfg.host = host_cfg;
    ccfg.placement = parsePlacement(opt.placement);
    ccfg.fleetThreads = opt.fleetThreads == 0 ? 1 : opt.fleetThreads;
    ccfg.seed = opt.seed;
    ccfg.migrationEnabled = opt.migrate;
    ccfg.roundMs = 4 * host_cfg.epochMs;
    // Keep the per-VM demand share constant across fleet sizes: the
    // reference fleet is 256 VMs serving a million users, and a
    // smaller --hosts run serves a proportional slice of them.
    ccfg.peakUsers = 1'000'000.0 *
                     static_cast<double>(ccfg.hosts * ccfg.slotsPerHost) /
                     256.0;

    // Cluster time advances in whole rounds: round the phases up.
    auto round_up = [&](Tick t) {
        return ((t + ccfg.roundMs - 1) / ccfg.roundMs) * ccfg.roundMs;
    };
    const Tick warmup = round_up(opt.warmupMs);
    const Tick steady = round_up(opt.steadyMs);
    ccfg.host.warmupMs = warmup;

    cluster::Cluster fleet(
        ccfg, fleetWorkloads(opt, ccfg.hosts *
                                      static_cast<std::size_t>(opt.perHost)));
    fleet.build();
    if (!opt.traceFile.empty()) {
        for (std::size_t h = 0; h < fleet.hostCount(); ++h)
            fleet.host(h).trace().enable();
    }

    fleet.run(warmup + steady);
    for (std::size_t h = 0; h < fleet.hostCount(); ++h)
        fleet.host(h).hv().checkConsistency();

    std::printf("cluster: %d hosts x %d slots, %s placement, "
                "%s migration\n",
                opt.hosts, opt.perHost, opt.placement.c_str(),
                opt.migrate ? "with" : "no");
    for (std::size_t h = 0; h < fleet.hostCount(); ++h) {
        core::Scenario &host = fleet.host(h);
        std::printf("%s: %zu VMs, %.1f rq/s, sharing %llu pages, "
                    "resident %s MiB\n",
                    host.stats().scope().c_str(), host.activeVmCount(),
                    host.aggregateThroughput(),
                    (unsigned long long)host.ksm().pagesSharing(),
                    formatMiB(host.hv().residentBytes()).c_str());
    }
    std::printf("%s\n", fleet.stats().render().c_str());

    if (!opt.jsonFile.empty())
        writeFileOrDie(opt.jsonFile,
                       clusterDocumentJson(opt, fleet, warmup, steady,
                                           ccfg.roundMs));
    if (!opt.traceFile.empty())
        writeFileOrDie(opt.traceFile, clusterTraceJson(fleet));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    const Options opt = parse(argc, argv);

    core::ScenarioConfig cfg;
    cfg.enableClassSharing = opt.cds || opt.aotBytes > 0;
    cfg.copyCacheToAllVms = opt.copyCache;
    cfg.aotCacheBytes = opt.aotBytes;
    cfg.guestThp = opt.thp;
    cfg.host.ramBytes = opt.hostRam;
    cfg.host.compressedSwapPoolBytes = opt.zramBytes;
    cfg.warmupMs = opt.warmupMs;
    cfg.steadyMs = opt.steadyMs;
    cfg.seed = opt.seed;
    cfg.analysisThreads =
        opt.analysisThreads == 0 ? 1 : opt.analysisThreads;
    cfg.ksmScanThreads = opt.ksmThreads == 0 ? 1 : opt.ksmThreads;
    cfg.ksmCommitShards = opt.ksmCommitShards;
    cfg.ksmBatchPages = opt.ksmBatch;
    cfg.guestThreads = opt.guestThreads == 0 ? 1 : opt.guestThreads;
    cfg.pmlRingSlots = opt.pmlRingSlots;
    cfg.adaptiveBalloon = opt.adaptiveBalloon;

    if (opt.hosts > 0)
        return clusterMain(opt, cfg);

    std::vector<workload::WorkloadSpec> vms(
        static_cast<std::size_t>(opt.vms), pickWorkload(opt));

    core::Scenario scenario(cfg, vms);
    scenario.build();

    if (!opt.traceFile.empty())
        scenario.trace().enable();

    // The timeline view and the JSON document both want the sharing
    // curve, so sampling starts before the run.
    const bool wantTimeline =
        opt.report == "timeline" || opt.report == "all";
    if (wantTimeline || !opt.jsonFile.empty())
        scenario.attachSharingMonitor(2'000);

    std::optional<ksm::KsmTuned> tuned;
    if (opt.ksmtuned) {
        tuned.emplace(scenario.hv(), scenario.ksm(),
                      ksm::KsmTunedConfig{}, scenario.stats());
        tuned->attach(scenario.queue());
    }

    if (opt.balloonBytes > 0) {
        for (int v = 0; v < opt.vms; ++v) {
            guest::BalloonDriver balloon(scenario.guest(v));
            balloon.inflate(opt.balloonBytes);
        }
    }
    scenario.run();
    scenario.hv().checkConsistency();

    auto acct = scenario.account();
    const bool all = opt.report == "all";

    if (all || opt.report == "breakdown") {
        std::printf("%s\n",
                    opt.csv
                        ? analysis::vmBreakdownCsv(acct,
                                                   scenario.vmNames())
                              .c_str()
                        : analysis::renderVmBreakdownReport(
                              acct, scenario.vmNames())
                              .c_str());
    }
    if (all || opt.report == "java") {
        std::printf("%s\n",
                    opt.csv
                        ? analysis::javaBreakdownCsv(acct,
                                                     scenario.javaRows())
                              .c_str()
                        : analysis::renderJavaBreakdownReport(
                              acct, scenario.javaRows())
                              .c_str());
    }
    if (all || opt.report == "sources") {
        const std::size_t guest = opt.vms > 1 ? 1 : 0;
        std::printf("TPS-shared sources in %s:\n%s\n",
                    scenario.vmNames()[guest].c_str(),
                    analysis::renderSharingSources(
                        analysis::collectSharingSources(
                            scenario.guest(guest)))
                        .c_str());
    }
    if (all || opt.report == "smaps") {
        std::printf("%s\n",
                    analysis::renderSmaps(
                        analysis::computeSmaps(scenario.guest(0),
                                               scenario.javaRows()[0].pid))
                        .c_str());
    }
    if (all || opt.report == "throughput") {
        auto tput = scenario.perVmThroughput(10);
        auto resp = scenario.perVmResponseMs(10);
        double total = 0;
        for (int v = 0; v < opt.vms; ++v) {
            total += tput[v];
            std::printf("%s: %.1f rq/s, %.0f ms, %llu maj faults\n",
                        scenario.vmNames()[v].c_str(), tput[v], resp[v],
                        (unsigned long long)scenario.hv().majorFaults(v));
        }
        std::printf("aggregate: %.1f rq/s;  resident %s MiB;  KSM saved "
                    "%s MiB (ksmd %.1f%% CPU)\n",
                    total,
                    formatMiB(scenario.hv().residentBytes()).c_str(),
                    formatMiB(scenario.ksm().savedBytes()).c_str(),
                    scenario.ksm().cpuUsage() * 100);
    }
    if (wantTimeline) {
        std::printf("KSM sharing timeline (sampled every 2 s):\n%s\n",
                    opt.csv ? scenario.monitor()->renderCsv().c_str()
                            : scenario.monitor()->renderTable().c_str());
    }

    if (!opt.jsonFile.empty())
        writeFileOrDie(opt.jsonFile, runDocumentJson(opt, scenario));
    if (!opt.traceFile.empty())
        writeFileOrDie(opt.traceFile, traceDocumentJson(scenario));
    return 0;
}
