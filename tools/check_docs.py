#!/usr/bin/env python3
"""Documentation consistency checks (CI "docs" job).

Two checks, stdlib only:

1. Intra-repo markdown links: every relative link target in the
   repository's *.md files must exist on disk.

2. Stat-registry coverage: every counter documented in docs/METRICS.md
   must appear in the union of the stat registries of the smoke runs
   passed via --stats-json (counters marked with a dagger are exempt:
   they need configurations a CLI smoke cannot reach), and every
   counter in those registries must be documented.

Usage:
    tools/check_docs.py [--repo DIR] [--stats-json FILE ...]

Exits nonzero listing every violation.
"""

import argparse
import json
import os
import re
import sys

# [text](target) — excluding images is unnecessary: image targets must
# resolve too. Targets with a scheme or pure anchors are skipped.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

# A METRICS.md stat table row: | `name` | or | `name` † |
COUNTER_ROW_RE = re.compile(r"^\|\s*`([a-z0-9_.]+)`\s*(†)?\s*\|")

SKIP_DIRS = {".git", "build", ".claude"}


def repo_markdown_files(repo):
    for root, dirs, files in os.walk(repo):
        dirs[:] = [d for d in dirs if d not in SKIP_DIRS]
        for name in files:
            if name.endswith(".md"):
                yield os.path.join(root, name)


def check_links(repo):
    errors = []
    for path in sorted(repo_markdown_files(repo)):
        text = open(path, encoding="utf-8").read()
        for target in LINK_RE.findall(text):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:
                continue
            if target.startswith("#"):  # same-file anchor
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), file_part))
            if not os.path.exists(resolved):
                rel = os.path.relpath(path, repo)
                errors.append(
                    f"{rel}: broken link '{target}' "
                    f"(resolved to {os.path.relpath(resolved, repo)})")
    return errors


def documented_counters(metrics_path):
    """(all documented counters, the dagger-exempt subset).

    Only rows inside the "## 1. Stat registry" section count — later
    sections tabulate trace event names in the same backticked style.
    """
    documented, exempt = set(), set()
    in_registry = False
    for line in open(metrics_path, encoding="utf-8"):
        if line.startswith("## "):
            in_registry = line.startswith("## 1.")
            continue
        if not in_registry:
            continue
        m = COUNTER_ROW_RE.match(line.strip())
        if not m:
            continue
        documented.add(m.group(1))
        if m.group(2):
            exempt.add(m.group(1))
    return documented, exempt


def registry_counters(stats_json_paths):
    counters = set()
    for path in stats_json_paths:
        doc = json.load(open(path, encoding="utf-8"))
        stats = doc.get("stats", doc)  # run document or bare fragment
        counters.update(stats["counters"].keys())
    return counters


def check_counters(repo, stats_json_paths):
    metrics_path = os.path.join(repo, "docs", "METRICS.md")
    if not os.path.exists(metrics_path):
        return [f"missing {os.path.relpath(metrics_path, repo)}"]
    documented, exempt = documented_counters(metrics_path)
    if not documented:
        return ["docs/METRICS.md: no counter table rows found "
                "(parser/format drift?)"]
    if not stats_json_paths:
        return []
    registry = registry_counters(stats_json_paths)

    errors = []
    for name in sorted(documented - exempt - registry):
        errors.append(
            f"docs/METRICS.md documents '{name}' but no smoke run "
            f"registered it (stale doc? missing † exemption?)")
    for name in sorted(registry - documented):
        errors.append(
            f"smoke run registered counter '{name}' but docs/METRICS.md "
            f"does not document it")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--stats-json", nargs="*", default=[],
                        metavar="FILE",
                        help="run documents whose stat registries are "
                             "unioned for the coverage check")
    args = parser.parse_args()

    repo = os.path.abspath(args.repo)
    errors = check_links(repo) + check_counters(repo, args.stats_json)
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    if errors:
        print(f"{len(errors)} documentation error(s)", file=sys.stderr)
        return 1
    print("docs OK: links resolve, METRICS.md matches the registry")
    return 0


if __name__ == "__main__":
    sys.exit(main())
