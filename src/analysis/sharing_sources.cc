#include "analysis/sharing_sources.hh"

#include <algorithm>

#include "base/table.hh"

namespace jtps::analysis
{

std::vector<SharingSource>
collectSharingSources(const guest::GuestOs &os)
{
    const hv::Hypervisor &hv = os.hv();
    const hv::Vm &vm = hv.vm(os.vmId());

    // Key by (name, category) so identically-named regions of
    // different kinds stay distinct.
    std::map<std::pair<std::string, guest::MemCategory>, SharingSource>
        sources;

    for (const auto &proc : os.processes()) {
        for (const auto &vma : proc->vmas) {
            for (std::uint64_t i = 0; i < vma->numPages; ++i) {
                auto pte = proc->pageTable.find(vma->vpnAt(i));
                if (pte == proc->pageTable.end())
                    continue;
                const hv::EptEntry &e = vm.ept.entry(pte->second);
                if (e.state != hv::PageState::Resident)
                    continue;
                const mem::Frame &frame = hv.frames().frame(e.backing);
                if (frame.refcount <= 1)
                    continue; // not TPS-shared

                SharingSource &src =
                    sources[{vma->name, vma->category}];
                src.vmaName = vma->name;
                src.category = vma->category;
                if (frame.data.isZero())
                    src.zeroBytes += pageSize;
                else
                    src.dataBytes += pageSize;
            }
        }
    }

    std::vector<SharingSource> out;
    out.reserve(sources.size());
    for (auto &kv : sources)
        out.push_back(std::move(kv.second));
    std::sort(out.begin(), out.end(),
              [](const SharingSource &a, const SharingSource &b) {
                  return a.total() > b.total();
              });
    return out;
}

std::string
renderSharingSources(const std::vector<SharingSource> &sources,
                     std::size_t limit)
{
    TextTable table;
    table.addRow({"source (VMA)", "category", "shared (MiB)",
                  "zero-filled", "real data"});
    for (std::size_t i = 0; i < sources.size() && i < limit; ++i) {
        const SharingSource &s = sources[i];
        table.addRow({s.vmaName, guest::categoryName(s.category),
                      formatMiB(s.total()), formatMiB(s.zeroBytes),
                      formatMiB(s.dataBytes)});
    }
    return table.render();
}

} // namespace jtps::analysis
