/**
 * @file
 * /proc/<pid>/smaps-style per-VMA reporting.
 *
 * The paper's §II.A grounds its accounting discussion in Linux's
 * smaps: "In Linux, the values of PSS in the /proc/<pid>/smaps files
 * are calculated using this [distribution-oriented] approach." This
 * module produces the same per-mapping view for a guest process:
 * for every VMA, the resident size (Rss), proportional set size (Pss),
 * and the split into pages mapped once vs. shared — computed from the
 * *host* frame table, i.e. what an smaps inside the guest could never
 * see: TPS-merged frames count as shared here even though the guest
 * believes they are private.
 */

#ifndef JTPS_ANALYSIS_SMAPS_HH
#define JTPS_ANALYSIS_SMAPS_HH

#include <string>
#include <vector>

#include "base/types.hh"
#include "base/units.hh"
#include "guest/guest_os.hh"
#include "hv/hypervisor.hh"

namespace jtps::analysis
{

/** One VMA's smaps entry. */
struct SmapsEntry
{
    std::string name;          //!< VMA name
    guest::MemCategory category = guest::MemCategory::OtherProcess;
    Vpn startVpn = 0;
    Bytes size = 0;            //!< virtual size of the mapping
    Bytes rss = 0;             //!< resident bytes (host frames)
    double pss = 0.0;          //!< proportional set size
    Bytes sharedClean = 0;     //!< resident, frame refcount > 1
    Bytes privateClean = 0;    //!< resident, frame refcount == 1
    Bytes swap = 0;            //!< swapped out by the host
};

/** smaps of one whole process. */
struct ProcessSmaps
{
    Pid pid = invalidPid;
    std::string processName;
    std::vector<SmapsEntry> entries;

    Bytes rssTotal() const;
    double pssTotal() const;
    Bytes swapTotal() const;
};

/**
 * Compute the smaps view of one guest process, resolving every mapped
 * page through the guest page table and the hypervisor's EPT.
 */
ProcessSmaps computeSmaps(const guest::GuestOs &os, Pid pid);

/** Render in the familiar /proc format (sizes in kB, one block/VMA). */
std::string renderSmaps(const ProcessSmaps &smaps);

} // namespace jtps::analysis

#endif // JTPS_ANALYSIS_SMAPS_HH
