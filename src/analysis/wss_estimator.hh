/**
 * @file
 * Working-set-size estimation from the hypervisor's PML rings.
 *
 * Each VM's Page-Modification-Log ring records every guest page's
 * first write per drain cycle (hv::HostConfig::pmlRingSlots), so the
 * growth of hv::Vm::pmlAppendsTotal over a time window counts the
 * pages the guest actually dirtied in it — a write working set, and
 * the signal VMware-style sampling estimators approximate by probing
 * random pages. Reading the cumulative counter costs nothing on the
 * guest's write path beyond the logging the rings already do.
 *
 * The estimate is a *lower bound* in two ways: read-only working set
 * is invisible to a dirty log, and a ring that overflows inside a
 * window drops appends (the scanner degrades to a full walk for
 * correctness, but the dropped count is not recoverable per VM). Both
 * make a balloon governor built on it conservative in the safe
 * direction only if a slack margin is kept — see
 * core::BalloonGovernor.
 */

#ifndef JTPS_ANALYSIS_WSS_ESTIMATOR_HH
#define JTPS_ANALYSIS_WSS_ESTIMATOR_HH

#include <cstdint>
#include <vector>

#include "base/stats.hh"
#include "base/types.hh"
#include "hv/hypervisor.hh"
#include "sim/event_queue.hh"

namespace jtps::analysis
{

/** Tuning for the windowed estimator. */
struct WssConfig
{
    /** Sampling window length (simulated milliseconds). */
    Tick windowMs = 2000;
    /**
     * Windows the per-VM estimate is the maximum over. >1 keeps the
     * estimate from collapsing on one quiet window, which would make
     * a governor inflate a balloon straight into the working set the
     * next busy window touches again.
     */
    std::uint32_t windows = 4;
    /**
     * Reset every ring after reading it, clearing the logged bits so
     * the next window re-counts each page once. Required when no
     * log-driven scanner is draining the rings (they would fill once
     * and the append counters would freeze); must stay false when one
     * is (a reset here would throw away dirty pages the scanner still
     * owes a visit, breaking its walk equivalence).
     */
    bool drainRings = false;
};

/**
 * Windowed per-VM working-set estimator. sample() it every windowMs
 * (attach() wires that to the event queue).
 */
class WssEstimator
{
  public:
    WssEstimator(hv::Hypervisor &hv, const WssConfig &cfg,
                 StatSet &stats);

    /** Take one window sample over all VMs. */
    void sample();

    /** Attach the periodic sampler to @p queue. */
    void attach(sim::EventQueue &queue);

    /** Stop sampling at the next firing. */
    void detach() { attached_ = false; }

    /** Current estimate for @p vm in pages (0 before two samples). */
    std::uint64_t wssPages(VmId vm) const;

    /** Sum of all VMs' estimates in pages. */
    std::uint64_t totalWssPages() const;

    /** Windows sampled so far. */
    std::uint64_t samples() const { return samples_; }

    const WssConfig &config() const { return cfg_; }

  private:
    struct VmWindowState
    {
        std::uint64_t lastAppends = 0;
        /** Ring of the last cfg_.windows window deltas. */
        std::vector<std::uint64_t> deltas;
        std::size_t nextSlot = 0;
        std::uint64_t estimate = 0;
    };

    VmWindowState &vmState(VmId vm);

    hv::Hypervisor &hv_;
    WssConfig cfg_;
    StatSet &stats_;
    bool attached_ = false;
    std::uint64_t samples_ = 0;
    std::vector<VmWindowState> vms_;
};

} // namespace jtps::analysis

#endif // JTPS_ANALYSIS_WSS_ESTIMATOR_HH
