/**
 * @file
 * Report rendering for the paper's figures.
 *
 * The benches print two kinds of breakdowns:
 *  - Fig. 2 / Fig. 4 style: per-VM physical memory usage by component
 *    (Java / other user processes / guest kernel / the VM itself) plus
 *    per-VM TPS savings.
 *  - Fig. 3 / Fig. 5 style: per-Java-process usage by the paper's
 *    memory categories, with the TPS-shared amount per category. The
 *    paper's figures merge "JIT work area" and "JVM work area" into one
 *    "JVM and JIT work" series, and we do the same.
 */

#ifndef JTPS_ANALYSIS_REPORT_HH
#define JTPS_ANALYSIS_REPORT_HH

#include <string>
#include <vector>

#include "analysis/accounting.hh"

namespace jtps::analysis
{

/** Identifies one Java process to include in a Fig. 3-style report. */
struct JavaProcRow
{
    std::string label; //!< e.g. "JVM1"
    VmId vm = invalidVm;
    Pid pid = invalidPid;
};

/** The six category series of the paper's Fig. 3/5 charts. */
struct JavaCategoryRow
{
    std::string label;
    Bytes use = 0;    //!< physical memory attributed (owned)
    Bytes shared = 0; //!< TPS-shared (mapped, owned elsewhere)
};

/** Compute the paper's six merged category series for one process. */
std::vector<JavaCategoryRow> javaCategoryRows(const ProcessUsage &pu);

/** Render the Fig. 2 / Fig. 4 per-VM breakdown (table + bars). */
std::string renderVmBreakdownReport(
    const OwnerAccounting &acct,
    const std::vector<std::string> &vm_names);

/** Render the Fig. 3 / Fig. 5 per-JVM category breakdown. */
std::string renderJavaBreakdownReport(
    const OwnerAccounting &acct, const std::vector<JavaProcRow> &procs);

/** CSV version of the per-VM breakdown (one row per VM). */
std::string vmBreakdownCsv(const OwnerAccounting &acct,
                           const std::vector<std::string> &vm_names);

/** CSV version of the per-JVM category breakdown. */
std::string javaBreakdownCsv(const OwnerAccounting &acct,
                             const std::vector<JavaProcRow> &procs);

} // namespace jtps::analysis

#endif // JTPS_ANALYSIS_REPORT_HH
