#include "analysis/report.hh"

#include <sstream>

#include "base/table.hh"
#include "base/units.hh"

namespace jtps::analysis
{

namespace
{

Bytes
catUse(const ProcessUsage &pu, guest::MemCategory cat)
{
    return pu.owned[static_cast<std::size_t>(cat)];
}

Bytes
catShared(const ProcessUsage &pu, guest::MemCategory cat)
{
    return pu.shared[static_cast<std::size_t>(cat)];
}

} // namespace

std::vector<JavaCategoryRow>
javaCategoryRows(const ProcessUsage &pu)
{
    using guest::MemCategory;
    std::vector<JavaCategoryRow> rows;
    rows.push_back({"Code", catUse(pu, MemCategory::Code),
                    catShared(pu, MemCategory::Code)});
    rows.push_back({"Class metadata",
                    catUse(pu, MemCategory::ClassMetadata),
                    catShared(pu, MemCategory::ClassMetadata)});
    rows.push_back({"JIT-compiled code", catUse(pu, MemCategory::JitCode),
                    catShared(pu, MemCategory::JitCode)});
    rows.push_back({"JVM and JIT work",
                    catUse(pu, MemCategory::JvmWork) +
                        catUse(pu, MemCategory::JitWork),
                    catShared(pu, MemCategory::JvmWork) +
                        catShared(pu, MemCategory::JitWork)});
    rows.push_back({"Java heap", catUse(pu, MemCategory::JavaHeap),
                    catShared(pu, MemCategory::JavaHeap)});
    rows.push_back({"Stack", catUse(pu, MemCategory::Stack),
                    catShared(pu, MemCategory::Stack)});
    return rows;
}

std::string
renderVmBreakdownReport(const OwnerAccounting &acct,
                        const std::vector<std::string> &vm_names)
{
    TextTable table;
    table.addRow({"VM", "Java (MiB)", "OtherUser", "GuestKernel",
                  "VM itself", "UsageTotal", "SavingJava", "SavingOther",
                  "SavingKernel", "SavingTotal"});

    Bytes grand_usage = 0, grand_saving = 0;
    for (VmId v = 0; v < vm_names.size(); ++v) {
        const VmBreakdown bd = acct.vmBreakdown(v);
        grand_usage += bd.usageTotal();
        grand_saving += bd.savingTotal();
        table.addRow({vm_names[v], formatMiB(bd.java),
                      formatMiB(bd.otherUser), formatMiB(bd.kernel),
                      formatMiB(bd.vmSelf), formatMiB(bd.usageTotal()),
                      formatMiB(bd.savingJava), formatMiB(bd.savingOther),
                      formatMiB(bd.savingKernel),
                      formatMiB(bd.savingTotal())});
    }

    std::ostringstream out;
    out << table.render();
    out << "total physical memory used by guests: "
        << formatMiB(grand_usage) << " MiB"
        << "  (TPS savings realized: " << formatMiB(grand_saving)
        << " MiB)\n\n";

    // Stacked bars, one per VM: usage composition, then savings.
    double full_scale = 0;
    for (VmId v = 0; v < vm_names.size(); ++v) {
        full_scale = std::max(
            full_scale,
            static_cast<double>(acct.vmBreakdown(v).usageTotal()));
    }
    std::vector<BarSegment> legend = {{"Java web application server", 0, 'J'},
                                      {"Other user processes", 0, 'o'},
                                      {"Guest kernel", 0, 'k'},
                                      {"Guest VM", 0, 'v'}};
    for (VmId v = 0; v < vm_names.size(); ++v) {
        const VmBreakdown bd = acct.vmBreakdown(v);
        std::vector<BarSegment> segs = {
            {"Java", static_cast<double>(bd.java), 'J'},
            {"Other", static_cast<double>(bd.otherUser), 'o'},
            {"Kernel", static_cast<double>(bd.kernel), 'k'},
            {"VM", static_cast<double>(bd.vmSelf), 'v'},
        };
        out << renderStackedBar("usage  " + vm_names[v], segs, full_scale,
                                60)
            << "\n";
        std::vector<BarSegment> save_segs = {
            {"Java", static_cast<double>(bd.savingJava), 'J'},
            {"Other", static_cast<double>(bd.savingOther), 'o'},
            {"Kernel", static_cast<double>(bd.savingKernel), 'k'},
        };
        out << renderStackedBar("saving " + vm_names[v], save_segs,
                                full_scale, 60)
            << "\n";
    }
    out << renderBarLegend(legend) << "\n";
    return out.str();
}

std::string
renderJavaBreakdownReport(const OwnerAccounting &acct,
                          const std::vector<JavaProcRow> &procs)
{
    TextTable table;
    table.addRow({"Process", "Category", "Use (MiB)", "Shared (MiB)",
                  "Shared %"});

    std::ostringstream bars;
    constexpr char glyphs[] = {'C', 'M', 'j', 'w', 'H', 's'};
    double full_scale = 0;
    for (const JavaProcRow &pr : procs) {
        const ProcessUsage &pu = acct.usage(pr.vm, pr.pid);
        full_scale = std::max(
            full_scale,
            static_cast<double>(pu.ownedTotal() + pu.sharedTotal()));
    }

    for (const JavaProcRow &pr : procs) {
        const ProcessUsage &pu = acct.usage(pr.vm, pr.pid);
        auto rows = javaCategoryRows(pu);
        std::vector<BarSegment> segs;
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const auto &row = rows[i];
            const Bytes total = row.use + row.shared;
            const double pct =
                total == 0 ? 0.0
                           : 100.0 * static_cast<double>(row.shared) /
                                 static_cast<double>(total);
            char pctbuf[32];
            std::snprintf(pctbuf, sizeof(pctbuf), "%.1f%%", pct);
            table.addRow({pr.label, row.label, formatMiB(row.use),
                          formatMiB(row.shared), pctbuf});
            segs.push_back({row.label, static_cast<double>(total),
                            glyphs[i % sizeof(glyphs)]});
        }
        const Bytes total_use = pu.ownedTotal();
        const Bytes total_shared = pu.sharedTotal();
        table.addRow({pr.label, "TOTAL", formatMiB(total_use),
                      formatMiB(total_shared), ""});
        bars << renderStackedBar(pr.label, segs, full_scale, 64) << "\n";
    }

    std::vector<BarSegment> legend;
    const char *names[] = {"Code", "Class metadata", "JIT-compiled code",
                           "JVM and JIT work", "Java heap", "Stack"};
    for (std::size_t i = 0; i < 6; ++i)
        legend.push_back({names[i], 0, glyphs[i]});

    std::ostringstream out;
    out << table.render() << "\n"
        << bars.str() << renderBarLegend(legend) << "\n";
    return out.str();
}

std::string
vmBreakdownCsv(const OwnerAccounting &acct,
               const std::vector<std::string> &vm_names)
{
    TextTable table;
    table.addRow({"vm", "java_mib", "other_user_mib", "kernel_mib",
                  "vm_self_mib", "saving_java_mib", "saving_other_mib",
                  "saving_kernel_mib"});
    for (VmId v = 0; v < vm_names.size(); ++v) {
        const VmBreakdown bd = acct.vmBreakdown(v);
        table.addRow({vm_names[v], formatMiB(bd.java),
                      formatMiB(bd.otherUser), formatMiB(bd.kernel),
                      formatMiB(bd.vmSelf), formatMiB(bd.savingJava),
                      formatMiB(bd.savingOther),
                      formatMiB(bd.savingKernel)});
    }
    return table.renderCsv();
}

std::string
javaBreakdownCsv(const OwnerAccounting &acct,
                 const std::vector<JavaProcRow> &procs)
{
    TextTable table;
    table.addRow({"process", "category", "use_mib", "shared_mib"});
    for (const JavaProcRow &pr : procs) {
        for (const auto &row : javaCategoryRows(acct.usage(pr.vm, pr.pid))) {
            table.addRow({pr.label, row.label, formatMiB(row.use),
                          formatMiB(row.shared)});
        }
    }
    return table.renderCsv();
}

} // namespace jtps::analysis
