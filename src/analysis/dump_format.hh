/**
 * @file
 * Dump-file format for offline analysis.
 *
 * The paper's methodology (§II.B) is offline: crash dumps of the host,
 * `virsh dump`s of every guest, and the KVM translation tables pulled
 * by a kernel module are collected *first*, then walked by an analysis
 * tool. This module provides the equivalent artifact: a Snapshot can
 * be serialized to a line-oriented text dump and parsed back, so the
 * accounting can run on saved dumps (and dumps from different runs can
 * be diffed), exactly like the paper's workflow.
 *
 * Format (one token stream per line; '#' starts a comment):
 *
 *   jtpsdump 1
 *   vms <count>
 *   overhead <vm> <frames>
 *   frame <hfn> <nrefs>
 *   ref <vm> <gfn> <pid> <is_java 0|1> <category>
 *   end <total_resident_frames>
 */

#ifndef JTPS_ANALYSIS_DUMP_FORMAT_HH
#define JTPS_ANALYSIS_DUMP_FORMAT_HH

#include <string>

#include "analysis/forensics.hh"

namespace jtps::analysis
{

/** Serialize a snapshot to the dump format. Deterministic: frames are
 *  emitted in ascending hfn order. */
std::string writeDump(const Snapshot &snap);

/**
 * Parse a dump back into a Snapshot.
 * @throws never — malformed input is a user error: fatal() with the
 *         offending line number.
 */
Snapshot parseDump(const std::string &text);

} // namespace jtps::analysis

#endif // JTPS_ANALYSIS_DUMP_FORMAT_HH
