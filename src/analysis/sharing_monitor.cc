#include "analysis/sharing_monitor.hh"

#include "base/table.hh"

namespace jtps::analysis
{

void
SharingMonitor::sample(Tick now)
{
    SharingSample s;
    s.tick = now;
    s.pagesShared = scanner_.pagesShared();
    s.pagesSharing = scanner_.pagesSharing();
    s.residentBytes = hv_.residentBytes();
    s.fullScans = scanner_.fullScans();
    for (VmId v = 0; v < hv_.vmCount(); ++v)
        s.majorFaults += hv_.vm(v).majorFaults;
    samples_.push_back(s);
}

void
SharingMonitor::attach(sim::EventQueue &queue, Tick period_ms)
{
    attached_ = true;
    queue.schedulePeriodic(period_ms, [this, &queue]() {
        if (!attached_)
            return false;
        sample(queue.now());
        return true;
    });
}

std::string
SharingMonitor::renderTable() const
{
    TextTable t;
    t.addRow({"t (s)", "pages_shared", "pages_sharing", "saved (MiB)",
              "resident (MiB)", "maj faults", "full scans"});
    for (const SharingSample &s : samples_) {
        t.addRow({std::to_string(s.tick / 1000),
                  std::to_string(s.pagesShared),
                  std::to_string(s.pagesSharing),
                  formatMiB(pagesToBytes(s.pagesSharing)),
                  formatMiB(s.residentBytes),
                  std::to_string(s.majorFaults),
                  std::to_string(s.fullScans)});
    }
    return t.render();
}

std::string
SharingMonitor::renderCsv() const
{
    TextTable t;
    t.addRow({"tick_ms", "pages_shared", "pages_sharing",
              "resident_bytes", "major_faults", "full_scans"});
    for (const SharingSample &s : samples_) {
        t.addRow({std::to_string(s.tick), std::to_string(s.pagesShared),
                  std::to_string(s.pagesSharing),
                  std::to_string(s.residentBytes),
                  std::to_string(s.majorFaults),
                  std::to_string(s.fullScans)});
    }
    return t.renderCsv();
}

} // namespace jtps::analysis
