#include "analysis/dump_format.hh"

#include <algorithm>
#include <sstream>

#include "base/logging.hh"

namespace jtps::analysis
{

std::string
writeDump(const Snapshot &snap)
{
    std::ostringstream out;
    out << "jtpsdump 1\n";
    out << "# host physical memory attribution dump\n";
    out << "vms " << snap.vmCount << "\n";
    for (VmId v = 0; v < snap.overheadFrames.size(); ++v)
        out << "overhead " << v << " " << snap.overheadFrames[v] << "\n";

    std::vector<Hfn> order;
    order.reserve(snap.frames.size());
    for (const auto &kv : snap.frames)
        order.push_back(kv.first);
    std::sort(order.begin(), order.end());

    for (Hfn hfn : order) {
        const auto &refs = snap.frames.at(hfn);
        out << "frame " << hfn << " " << refs.size() << "\n";
        for (const FrameRef &r : refs) {
            out << "ref " << r.vm << " " << r.gfn << " " << r.pid << " "
                << (r.isJava ? 1 : 0) << " "
                << static_cast<unsigned>(r.category) << "\n";
        }
    }
    out << "end " << snap.totalResidentFrames << "\n";
    return out.str();
}

namespace
{

[[noreturn]] void
badDump(std::size_t line, const char *what)
{
    fatal("malformed dump at line %zu: %s", line, what);
}

} // namespace

Snapshot
parseDump(const std::string &text)
{
    Snapshot snap;
    std::istringstream in(text);
    std::string line;
    std::size_t line_no = 0;

    bool got_header = false;
    bool got_end = false;
    Hfn current_frame = invalidFrame;
    std::size_t refs_expected = 0;

    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream tokens(line);
        std::string keyword;
        tokens >> keyword;

        if (!got_header) {
            int version = 0;
            if (keyword != "jtpsdump" || !(tokens >> version))
                badDump(line_no, "missing jtpsdump header");
            if (version != 1)
                badDump(line_no, "unsupported version");
            got_header = true;
            continue;
        }

        if (keyword == "vms") {
            if (!(tokens >> snap.vmCount))
                badDump(line_no, "bad vms line");
        } else if (keyword == "overhead") {
            VmId vm = 0;
            std::uint64_t frames = 0;
            if (!(tokens >> vm >> frames))
                badDump(line_no, "bad overhead line");
            if (snap.overheadFrames.size() <= vm)
                snap.overheadFrames.resize(vm + 1, 0);
            snap.overheadFrames[vm] = frames;
        } else if (keyword == "frame") {
            if (refs_expected != 0)
                badDump(line_no, "previous frame incomplete");
            std::size_t nrefs = 0;
            if (!(tokens >> current_frame >> nrefs) || nrefs == 0)
                badDump(line_no, "bad frame line");
            refs_expected = nrefs;
            snap.frames[current_frame].reserve(nrefs);
        } else if (keyword == "ref") {
            if (refs_expected == 0)
                badDump(line_no, "ref outside frame");
            FrameRef ref;
            unsigned is_java = 0, category = 0;
            if (!(tokens >> ref.vm >> ref.gfn >> ref.pid >> is_java >>
                  category) ||
                category >= guest::numMemCategories) {
                badDump(line_no, "bad ref line");
            }
            ref.isJava = is_java != 0;
            ref.category = static_cast<guest::MemCategory>(category);
            snap.frames[current_frame].push_back(ref);
            --refs_expected;
        } else if (keyword == "end") {
            if (refs_expected != 0)
                badDump(line_no, "last frame incomplete");
            if (!(tokens >> snap.totalResidentFrames))
                badDump(line_no, "bad end line");
            got_end = true;
        } else {
            badDump(line_no, "unknown keyword");
        }
    }

    if (!got_header)
        badDump(line_no, "empty dump");
    if (!got_end)
        badDump(line_no, "missing end marker");
    return snap;
}

} // namespace jtps::analysis
