/**
 * @file
 * JSON serialization of the simulator's observable state.
 *
 * Three fragments compose into one run document (the layout benches
 * and external tooling key off; docs/METRICS.md is the authoritative
 * schema):
 *
 *   - the StatSet registry (every named counter and scalar),
 *   - the SharingMonitor time series (the convergence curve),
 *   - the TraceBuffer event stream.
 *
 * All output is deterministic: StatSet iterates ordered maps, samples
 * and events are serialized in record order, and JsonWriter formats
 * numbers bytewise-stably — so two runs with the same seed produce
 * byte-identical documents (a test diffs them).
 */

#ifndef JTPS_ANALYSIS_JSON_EXPORT_HH
#define JTPS_ANALYSIS_JSON_EXPORT_HH

#include <string>

#include "analysis/sharing_monitor.hh"
#include "base/json_writer.hh"
#include "base/stats.hh"
#include "base/trace.hh"

namespace jtps::analysis
{

/** Version stamped into every JSON document this layer emits. */
constexpr unsigned jsonSchemaVersion = 1;

/**
 * Emit the stat registry as the value at the writer's current
 * position: {"counters": {name: int, ...}, "scalars": {name: num}}.
 */
void writeStatsJson(JsonWriter &w, const StatSet &stats);

/**
 * Emit the sharing time series as an array of sample objects
 * [{"tick_ms": ..., "pages_shared": ..., ...}, ...].
 */
void writeSharingSeriesJson(JsonWriter &w, const SharingMonitor &monitor);

/**
 * Emit the trace stream as {"dropped": n, "events": [{"tick_ms": ...,
 * "type": name, "vm": id|null, "arg0": ..., "arg1": ...}, ...]}.
 */
void writeTraceJson(JsonWriter &w, const TraceBuffer &trace);

} // namespace jtps::analysis

#endif // JTPS_ANALYSIS_JSON_EXPORT_HH
