/**
 * @file
 * Memory forensics: the paper's measurement methodology (§II).
 *
 * The paper collects crash dumps of the host OS, KVM dumps of every
 * guest, and the KVM in-kernel translation tables (via a custom kernel
 * module reading the kvm-vm device's private_data), then walks all
 * three translation layers to attribute every host physical page frame.
 *
 * Our simulator holds the same three layers live — guest process page
 * tables (guest OS), gfn→hfn tables (hypervisor EPT), and the host
 * frame table — so capture() performs the identical walk: for every
 * mapped virtual page of every process of every guest, resolve
 * vpn → gfn → hfn, and record a reference
 * (vm, pid, is-java, memory category) against that frame.
 */

#ifndef JTPS_ANALYSIS_FORENSICS_HH
#define JTPS_ANALYSIS_FORENSICS_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/stats.hh"
#include "base/types.hh"
#include "guest/guest_os.hh"
#include "hv/hypervisor.hh"

namespace jtps::analysis
{

/** One observed mapping of a host frame. */
struct FrameRef
{
    VmId vm = invalidVm;
    Gfn gfn = invalidFrame; //!< the guest page this mapping goes through
    Pid pid = invalidPid;
    bool isJava = false;
    guest::MemCategory category = guest::MemCategory::OtherProcess;

    bool operator==(const FrameRef &other) const = default;
};

/**
 * A captured snapshot: every resident host frame with the guest
 * references that map it, plus the hypervisor-private (VM process
 * overhead) frames per VM.
 */
struct Snapshot
{
    /** frame -> references from guest process mappings. */
    std::unordered_map<Hfn, std::vector<FrameRef>> frames;
    /** VM-overhead (pinned) frame counts per VM id. */
    std::vector<std::uint64_t> overheadFrames;
    /** Total resident frames on the host at capture time. */
    std::uint64_t totalResidentFrames = 0;
    /** Number of guests walked. */
    std::size_t vmCount = 0;
};

/**
 * Walk all translation layers and produce a Snapshot.
 *
 * The walk shards per guest: each VM's vpn → gfn → hfn resolution is
 * an independent read-only task, fanned out across a ThreadPool when
 * @p threads > 1 (the bench::sweep pattern). Every shard records its
 * (frame, reference) pairs in walk order and the main thread reduces
 * them in fixed VM order, so the Snapshot — including the frames map's
 * iteration order, which downstream accounting observes — is
 * byte-identical at any thread count.
 *
 * @param hv The hypervisor (host layer + EPTs).
 * @param guests One GuestOs per VM, indexed by VmId.
 * @param threads Worker threads for the per-guest walks (1 = serial).
 * @param stats Optional sink for `forensics.walk_shards`.
 */
Snapshot captureSnapshot(const hv::Hypervisor &hv,
                         const std::vector<const guest::GuestOs *> &guests,
                         unsigned threads = 1, StatSet *stats = nullptr);

} // namespace jtps::analysis

#endif // JTPS_ANALYSIS_FORENSICS_HH
