/**
 * @file
 * Memory forensics: the paper's measurement methodology (§II).
 *
 * The paper collects crash dumps of the host OS, KVM dumps of every
 * guest, and the KVM in-kernel translation tables (via a custom kernel
 * module reading the kvm-vm device's private_data), then walks all
 * three translation layers to attribute every host physical page frame.
 *
 * Our simulator holds the same three layers live — guest process page
 * tables (guest OS), gfn→hfn tables (hypervisor EPT), and the host
 * frame table — so capture() performs the identical walk: for every
 * mapped virtual page of every process of every guest, resolve
 * vpn → gfn → hfn, and record a reference
 * (vm, pid, is-java, memory category) against that frame.
 */

#ifndef JTPS_ANALYSIS_FORENSICS_HH
#define JTPS_ANALYSIS_FORENSICS_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/types.hh"
#include "guest/guest_os.hh"
#include "hv/hypervisor.hh"

namespace jtps::analysis
{

/** One observed mapping of a host frame. */
struct FrameRef
{
    VmId vm = invalidVm;
    Gfn gfn = invalidFrame; //!< the guest page this mapping goes through
    Pid pid = invalidPid;
    bool isJava = false;
    guest::MemCategory category = guest::MemCategory::OtherProcess;
};

/**
 * A captured snapshot: every resident host frame with the guest
 * references that map it, plus the hypervisor-private (VM process
 * overhead) frames per VM.
 */
struct Snapshot
{
    /** frame -> references from guest process mappings. */
    std::unordered_map<Hfn, std::vector<FrameRef>> frames;
    /** VM-overhead (pinned) frame counts per VM id. */
    std::vector<std::uint64_t> overheadFrames;
    /** Total resident frames on the host at capture time. */
    std::uint64_t totalResidentFrames = 0;
    /** Number of guests walked. */
    std::size_t vmCount = 0;
};

/**
 * Walk all translation layers and produce a Snapshot.
 *
 * @param hv The hypervisor (host layer + EPTs).
 * @param guests One GuestOs per VM, indexed by VmId.
 */
Snapshot captureSnapshot(const hv::Hypervisor &hv,
                         const std::vector<const guest::GuestOs *> &guests);

} // namespace jtps::analysis

#endif // JTPS_ANALYSIS_FORENSICS_HH
