/**
 * @file
 * Time-series sharing monitor.
 *
 * The paper reports end-of-run numbers ("we measured the memory usage
 * after 90 minutes"), but the protocol only makes sense because KSM
 * *converges*: savings ramp during the aggressive warm-up scan and
 * plateau under the throttled steady scan. This monitor samples the
 * host periodically so that convergence — and any later erosion under
 * memory pressure — is visible as a curve rather than inferred.
 */

#ifndef JTPS_ANALYSIS_SHARING_MONITOR_HH
#define JTPS_ANALYSIS_SHARING_MONITOR_HH

#include <string>
#include <vector>

#include "base/types.hh"
#include "base/units.hh"
#include "hv/hypervisor.hh"
#include "ksm/ksm_scanner.hh"
#include "sim/event_queue.hh"

namespace jtps::analysis
{

/** One sample of host sharing state. */
struct SharingSample
{
    Tick tick = 0;
    std::uint64_t pagesShared = 0;  //!< stable KSM frames
    std::uint64_t pagesSharing = 0; //!< deduplicated guest pages
    Bytes residentBytes = 0;
    std::uint64_t majorFaults = 0;  //!< host-wide, cumulative
    std::uint64_t fullScans = 0;
};

/**
 * Samples the hypervisor + scanner on a fixed period.
 */
class SharingMonitor
{
  public:
    SharingMonitor(const hv::Hypervisor &hv,
                   const ksm::KsmScanner &scanner)
        : hv_(hv), scanner_(scanner)
    {
    }

    /** Take one sample now (also called by the periodic event). */
    void sample(Tick now);

    /** Attach periodic sampling every @p period_ms. */
    void attach(sim::EventQueue &queue, Tick period_ms);

    /** Stop sampling at the next firing. */
    void detach() { attached_ = false; }

    /** All samples in time order. */
    const std::vector<SharingSample> &samples() const { return samples_; }

    /** Render as an aligned table (one row per sample). */
    std::string renderTable() const;

    /** Render as CSV. */
    std::string renderCsv() const;

  private:
    const hv::Hypervisor &hv_;
    const ksm::KsmScanner &scanner_;
    bool attached_ = false;
    std::vector<SharingSample> samples_;
};

} // namespace jtps::analysis

#endif // JTPS_ANALYSIS_SHARING_MONITOR_HH
