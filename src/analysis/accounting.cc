#include "analysis/accounting.hh"

#include <algorithm>
#include <tuple>
#include <vector>

#include "base/logging.hh"
#include "base/thread_pool.hh"

namespace jtps::analysis
{

Bytes
ProcessUsage::ownedTotal() const
{
    Bytes total = 0;
    for (Bytes b : owned)
        total += b;
    return total;
}

Bytes
ProcessUsage::sharedTotal() const
{
    Bytes total = 0;
    for (Bytes b : shared)
        total += b;
    return total;
}

namespace
{

/**
 * Attribution priority of a mapping when one guest page is mapped by
 * several processes of the same guest (a file page sits in the kernel
 * page cache *and* in the mmap of the process using it): the paper
 * attributes such pages to the Java process, then to other user
 * processes, and to the kernel only when no process maps them.
 */
int
reprPriority(const FrameRef &ref)
{
    if (ref.isJava)
        return 0;
    return ref.pid > 0 ? 1 : 2;
}

/** Sort key grouping refs by guest page, best representative first. */
std::tuple<VmId, Gfn, int, Pid>
groupKey(const FrameRef &ref)
{
    return {ref.vm, ref.gfn, reprPriority(ref), ref.pid};
}

/**
 * Owner-selection key among guest pages: Java processes always win;
 * ties break to the smallest PID, then the smallest VM id (§II.A).
 */
std::tuple<int, Pid, VmId>
ownerKey(const FrameRef &ref)
{
    return {ref.isJava ? 0 : 1, ref.pid, ref.vm};
}

/**
 * Reduce a frame's reference list to one representative per guest page
 * (vm, gfn), and return the index of the owning guest page.
 * @param refs Sorted/compacted in place.
 */
std::size_t
collapseToGuestPages(std::vector<FrameRef> &refs)
{
    std::sort(refs.begin(), refs.end(),
              [](const FrameRef &a, const FrameRef &b) {
                  return groupKey(a) < groupKey(b);
              });
    std::size_t out = 0;
    for (std::size_t i = 0; i < refs.size();) {
        std::size_t j = i + 1;
        while (j < refs.size() && refs[j].vm == refs[i].vm &&
               refs[j].gfn == refs[i].gfn) {
            ++j;
        }
        refs[out++] = refs[i]; // best-priority mapping of this page
        i = j;
    }
    refs.resize(out);

    std::size_t owner = 0;
    for (std::size_t i = 1; i < refs.size(); ++i) {
        if (ownerKey(refs[i]) < ownerKey(refs[owner]))
            owner = i;
    }
    return owner;
}

/** One frame's collapsed reference list plus its owning page index. */
struct CollapsedFrame
{
    std::vector<FrameRef> pages;
    std::size_t owner = 0;
};

/**
 * Copy and collapse every frame's reference list, in the snapshot's
 * frame iteration order. The collapse (sort + dedup per frame) is the
 * hot part of both accountings and is pure per-frame work, so it
 * shards freely; the returned vector preserves snapshot order so the
 * callers' serial accumulation is independent of the thread count.
 */
std::vector<CollapsedFrame>
collapseAllFrames(const Snapshot &snap, unsigned threads)
{
    std::vector<CollapsedFrame> out(snap.frames.size());
    std::size_t i = 0;
    for (const auto &[hfn, raw_refs] : snap.frames) {
        (void)hfn;
        jtps_assert(!raw_refs.empty());
        out[i++].pages = raw_refs;
    }

    auto collapse_range = [&out](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k)
            out[k].owner = collapseToGuestPages(out[k].pages);
    };
    if (threads > 1 && out.size() > 1) {
        ThreadPool pool(threads);
        // A few chunks per worker smooths out size imbalance between
        // frames while keeping per-job overhead negligible.
        const std::size_t chunks =
            std::min<std::size_t>(out.size(),
                                  static_cast<std::size_t>(threads) * 4);
        const std::size_t step = (out.size() + chunks - 1) / chunks;
        for (std::size_t lo = 0; lo < out.size(); lo += step) {
            const std::size_t hi = std::min(out.size(), lo + step);
            pool.submit([=]() { collapse_range(lo, hi); });
        }
        pool.wait();
    } else {
        collapse_range(0, out.size());
    }
    return out;
}

} // namespace

OwnerAccounting::OwnerAccounting(const Snapshot &snap, unsigned threads)
{
    resident_frames_ = snap.totalResidentFrames;
    overhead_frames_ = snap.overheadFrames;

    const std::vector<CollapsedFrame> collapsed =
        collapseAllFrames(snap, threads);
    for (const CollapsedFrame &cf : collapsed) {
        for (std::size_t i = 0; i < cf.pages.size(); ++i) {
            const FrameRef &ref = cf.pages[i];
            ProcessUsage &pu = usage_[{ref.vm, ref.pid}];
            pu.isJava = ref.isJava;
            const auto cat = static_cast<std::size_t>(ref.category);
            if (i == cf.owner)
                pu.owned[cat] += pageSize;
            else
                pu.shared[cat] += pageSize;
        }
        attributed_ += pageSize;
    }

    for (std::uint64_t count : overhead_frames_)
        attributed_ += pagesToBytes(count);
}

const ProcessUsage &
OwnerAccounting::usage(VmId vm, Pid pid) const
{
    auto it = usage_.find({vm, pid});
    jtps_assert(it != usage_.end());
    return it->second;
}

bool
OwnerAccounting::hasProcess(VmId vm, Pid pid) const
{
    return usage_.count({vm, pid}) != 0;
}

VmBreakdown
OwnerAccounting::vmBreakdown(VmId vm) const
{
    VmBreakdown bd;
    for (const auto &[key, pu] : usage_) {
        if (key.first != vm)
            continue;
        if (key.second == 0) {
            bd.kernel += pu.ownedTotal();
            bd.savingKernel += pu.sharedTotal();
        } else if (pu.isJava) {
            bd.java += pu.ownedTotal();
            bd.savingJava += pu.sharedTotal();
        } else {
            bd.otherUser += pu.ownedTotal();
            bd.savingOther += pu.sharedTotal();
        }
    }
    if (vm < overhead_frames_.size())
        bd.vmSelf = pagesToBytes(overhead_frames_[vm]);
    return bd;
}

PssAccounting::PssAccounting(const Snapshot &snap, unsigned threads)
{
    const std::vector<CollapsedFrame> collapsed =
        collapseAllFrames(snap, threads);
    for (const CollapsedFrame &cf : collapsed) {
        const double share =
            static_cast<double>(pageSize) / cf.pages.size();
        for (const FrameRef &ref : cf.pages)
            pss_[{ref.vm, ref.pid}] += share;
        total_ += pageSize;
    }
    for (std::uint64_t count : snap.overheadFrames)
        total_ += static_cast<double>(pagesToBytes(count));
}

double
PssAccounting::pss(VmId vm, Pid pid) const
{
    auto it = pss_.find({vm, pid});
    return it == pss_.end() ? 0.0 : it->second;
}

} // namespace jtps::analysis
