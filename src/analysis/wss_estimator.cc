#include "analysis/wss_estimator.hh"

#include <algorithm>

#include "base/logging.hh"

namespace jtps::analysis
{

WssEstimator::WssEstimator(hv::Hypervisor &hv, const WssConfig &cfg,
                           StatSet &stats)
    : hv_(hv), cfg_(cfg), stats_(stats)
{
    jtps_assert(hv_.pmlEnabled());
    jtps_assert(cfg_.windows >= 1);
    stats_.counter("wss.samples");
}

WssEstimator::VmWindowState &
WssEstimator::vmState(VmId vm)
{
    if (vm >= vms_.size())
        vms_.resize(
            std::max<std::size_t>(hv_.vmCount(), vm + std::size_t{1}));
    VmWindowState &s = vms_[vm];
    if (s.deltas.empty())
        s.deltas.assign(cfg_.windows, 0);
    return s;
}

void
WssEstimator::sample()
{
    const std::size_t nvms = hv_.vmCount();
    std::uint64_t total = 0;
    for (VmId vm = 0; vm < nvms; ++vm) {
        VmWindowState &s = vmState(vm);
        const std::uint64_t appends = hv_.vm(vm).pmlAppendsTotal;
        const std::uint64_t delta = appends - s.lastAppends;
        s.lastAppends = appends;
        if (samples_ > 0 || delta > 0) {
            // The first window after construction usually contains
            // boot-time history (the cumulative counter starts at VM
            // creation); it still enters the window ring — max() over
            // windows ages it out, and under-estimating early would
            // be the unsafe direction for a balloon governor.
            s.deltas[s.nextSlot] = delta;
            s.nextSlot = (s.nextSlot + 1) % cfg_.windows;
        }
        s.estimate = *std::max_element(s.deltas.begin(), s.deltas.end());
        total += s.estimate;
        if (cfg_.drainRings)
            hv_.pmlResetRing(vm);
    }
    ++samples_;
    stats_.inc("wss.samples");
    stats_.set("wss.total_pages", total);
}

void
WssEstimator::attach(sim::EventQueue &queue)
{
    attached_ = true;
    queue.schedulePeriodic(cfg_.windowMs, [this]() {
        if (!attached_)
            return false;
        sample();
        return true;
    });
}

std::uint64_t
WssEstimator::wssPages(VmId vm) const
{
    if (vm >= vms_.size())
        return 0;
    return vms_[vm].estimate;
}

std::uint64_t
WssEstimator::totalWssPages() const
{
    std::uint64_t total = 0;
    for (const VmWindowState &s : vms_)
        total += s.estimate;
    return total;
}

} // namespace jtps::analysis
