#include "analysis/forensics.hh"

#include "base/logging.hh"

namespace jtps::analysis
{

Snapshot
captureSnapshot(const hv::Hypervisor &hv,
                const std::vector<const guest::GuestOs *> &guests)
{
    Snapshot snap;
    snap.vmCount = guests.size();
    snap.totalResidentFrames = hv.residentFrames();
    snap.overheadFrames.assign(hv.vmCount(), 0);

    // Layer 3 first: VM-process-private frames (pinned, no EPT entry).
    for (VmId v = 0; v < hv.vmCount(); ++v)
        snap.overheadFrames[v] = hv.vm(v).overheadFrames.size();

    // Layers 1+2: every mapped vpage of every process of every guest.
    for (const guest::GuestOs *os : guests) {
        jtps_assert(os != nullptr);
        const VmId vm_id = os->vmId();
        for (const auto &proc : os->processes()) {
            for (const auto &vma : proc->vmas) {
                for (std::uint64_t i = 0; i < vma->numPages; ++i) {
                    auto pte = proc->pageTable.find(vma->vpnAt(i));
                    if (pte == proc->pageTable.end())
                        continue; // never touched
                    const Hfn hfn = hv.translate(vm_id, pte->second);
                    if (hfn == invalidFrame)
                        continue; // swapped out: not physical memory
                    snap.frames[hfn].push_back(
                        FrameRef{vm_id, pte->second, proc->pid,
                                 proc->isJava, vma->category});
                }
            }
        }
    }
    return snap;
}

} // namespace jtps::analysis
