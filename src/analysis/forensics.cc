#include "analysis/forensics.hh"

#include <algorithm>
#include <utility>

#include "base/logging.hh"
#include "base/thread_pool.hh"

namespace jtps::analysis
{

namespace
{

/**
 * Walk one guest's processes (layers 1+2): resolve every mapped vpage
 * to a host frame and record the reference. Appending to an ordered
 * vector instead of the shared frames map keeps the shard free of
 * shared mutable state.
 */
std::vector<std::pair<Hfn, FrameRef>>
walkGuest(const hv::Hypervisor &hv, const guest::GuestOs &os)
{
    std::vector<std::pair<Hfn, FrameRef>> out;
    const VmId vm_id = os.vmId();
    for (const auto &proc : os.processes()) {
        for (const auto &vma : proc->vmas) {
            for (std::uint64_t i = 0; i < vma->numPages; ++i) {
                auto pte = proc->pageTable.find(vma->vpnAt(i));
                if (pte == proc->pageTable.end())
                    continue; // never touched
                const Hfn hfn = hv.translate(vm_id, pte->second);
                if (hfn == invalidFrame)
                    continue; // swapped out: not physical memory
                out.emplace_back(hfn,
                                 FrameRef{vm_id, pte->second, proc->pid,
                                          proc->isJava, vma->category});
            }
        }
    }
    return out;
}

} // namespace

Snapshot
captureSnapshot(const hv::Hypervisor &hv,
                const std::vector<const guest::GuestOs *> &guests,
                unsigned threads, StatSet *stats)
{
    Snapshot snap;
    snap.vmCount = guests.size();
    snap.totalResidentFrames = hv.residentFrames();
    snap.overheadFrames.assign(hv.vmCount(), 0);

    // Layer 3 first: VM-process-private frames (pinned, no EPT entry).
    for (VmId v = 0; v < hv.vmCount(); ++v)
        snap.overheadFrames[v] = hv.vm(v).overheadFrames.size();

    // Layers 1+2: one shard per guest, into pre-assigned slots.
    std::vector<std::vector<std::pair<Hfn, FrameRef>>> per_guest(
        guests.size());
    for (const guest::GuestOs *os : guests)
        jtps_assert(os != nullptr);
    if (threads > 1 && guests.size() > 1) {
        ThreadPool pool(std::min<unsigned>(
            threads, static_cast<unsigned>(guests.size())));
        for (std::size_t g = 0; g < guests.size(); ++g) {
            pool.submit([&hv, &per_guest, &guests, g]() {
                per_guest[g] = walkGuest(hv, *guests[g]);
            });
        }
        pool.wait();
    } else {
        for (std::size_t g = 0; g < guests.size(); ++g)
            per_guest[g] = walkGuest(hv, *guests[g]);
    }
    if (stats)
        stats->inc("forensics.walk_shards", guests.size());

    // Deterministic reduce: replay the serial walk's insertion sequence
    // (guests in VM order, pages in walk order), so the unordered_map
    // ends up structurally identical to a serial capture and every
    // downstream iteration over it sees the same order.
    for (std::size_t g = 0; g < per_guest.size(); ++g)
        for (const auto &[hfn, ref] : per_guest[g])
            snap.frames[hfn].push_back(ref);
    return snap;
}

} // namespace jtps::analysis
