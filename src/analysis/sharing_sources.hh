/**
 * @file
 * Where does the sharing come from?
 *
 * The paper's §III.A doesn't stop at per-category totals: it names the
 * *sources* — "most of the shared pages were those filled with zeros"
 * in the heap; "the buffers of the NIO socket library in Java, the
 * unused part of the memory blocks for the malloc arenas, and the
 * internal data structures that were allocated in bulk but not yet
 * used" in the JVM work area. This module reproduces that analysis:
 * every TPS-shared guest page is attributed to its VMA and classified
 * by content (zero vs. data), yielding a ranked source table.
 */

#ifndef JTPS_ANALYSIS_SHARING_SOURCES_HH
#define JTPS_ANALYSIS_SHARING_SOURCES_HH

#include <map>
#include <string>
#include <vector>

#include "base/types.hh"
#include "base/units.hh"
#include "guest/guest_os.hh"
#include "hv/hypervisor.hh"

namespace jtps::analysis
{

/** One source of TPS-shared pages. */
struct SharingSource
{
    std::string vmaName;   //!< e.g. "nio-buffers", "java-heap"
    guest::MemCategory category = guest::MemCategory::OtherProcess;
    Bytes zeroBytes = 0;   //!< shared pages that are zero-filled
    Bytes dataBytes = 0;   //!< shared pages with real content

    Bytes total() const { return zeroBytes + dataBytes; }
};

/**
 * Scan one guest's mapped pages and collect, per VMA name, the bytes
 * whose backing host frame is shared (refcount > 1), split into zero
 * and non-zero content. Sorted by descending total.
 */
std::vector<SharingSource> collectSharingSources(
    const guest::GuestOs &os);

/** Render the ranked source table (top @p limit rows). */
std::string renderSharingSources(
    const std::vector<SharingSource> &sources, std::size_t limit = 12);

} // namespace jtps::analysis

#endif // JTPS_ANALYSIS_SHARING_SOURCES_HH
