/**
 * @file
 * Attribution of shared pages: owner-oriented and distribution-oriented
 * accounting (paper §II.A).
 *
 * Owner-oriented (what the paper uses): each shared frame is charged
 * entirely to one *owner* — a Java process whenever one maps it, the
 * one with the smallest PID if several do. Every other mapper is a
 * "non-primary" process that uses the page for free; the page's size is
 * recorded as that process's *TPS saving* ("the amount of additional
 * memory needed to run another process sharing this page" is zero).
 *
 * Distribution-oriented (Linux PSS, provided for the ablation): each
 * frame's size is split evenly among its mappers.
 *
 * Both accountings work at *guest page* (vm, gfn) granularity: when a
 * guest page is mapped by several processes of the same guest (file
 * pages appear both in the kernel page cache and in a process's mmap),
 * the page is represented once, by its highest-priority mapper
 * (Java > other user process > kernel), so intra-guest aliasing is not
 * double-counted, while genuine TPS sharing (several guest pages backed
 * by one host frame) is counted per guest page.
 */

#ifndef JTPS_ANALYSIS_ACCOUNTING_HH
#define JTPS_ANALYSIS_ACCOUNTING_HH

#include <array>
#include <cstdint>
#include <map>

#include "analysis/forensics.hh"
#include "base/units.hh"
#include "guest/mem_category.hh"

namespace jtps::analysis
{

/** Per-category byte totals. */
using CategoryBytes = std::array<Bytes, guest::numMemCategories>;

/** Usage of one process under owner-oriented accounting. */
struct ProcessUsage
{
    bool isJava = false;
    /** Bytes of frames this process owns, by its mapping's category. */
    CategoryBytes owned{};
    /** Bytes of frames this process maps but does not own (its TPS
     *  saving), by category. */
    CategoryBytes shared{};

    Bytes ownedTotal() const;
    Bytes sharedTotal() const;

    bool operator==(const ProcessUsage &other) const = default;
};

/** Fig. 2-style per-VM rollup. */
struct VmBreakdown
{
    Bytes java = 0;      //!< owned by Java processes of this VM
    Bytes otherUser = 0; //!< owned by other user processes
    Bytes kernel = 0;    //!< owned by the guest kernel (incl. caches)
    Bytes vmSelf = 0;    //!< the VM process itself
    Bytes savingJava = 0;   //!< TPS savings in the Java processes
    Bytes savingOther = 0;  //!< savings in other user processes
    Bytes savingKernel = 0; //!< savings in the guest kernel

    Bytes
    usageTotal() const
    {
        return java + otherUser + kernel + vmSelf;
    }

    Bytes
    savingTotal() const
    {
        return savingJava + savingOther + savingKernel;
    }
};

/**
 * Owner-oriented accounting over one snapshot.
 *
 * With @p threads > 1 the per-frame collapse (sort + dedup of each
 * frame's reference list — the hot part) is sharded across a
 * ThreadPool; the byte totals are then accumulated serially in the
 * snapshot's frame order, so results are bit-identical at any thread
 * count.
 */
class OwnerAccounting
{
  public:
    explicit OwnerAccounting(const Snapshot &snap, unsigned threads = 1);

    /** Usage of one process (must exist in the snapshot). */
    const ProcessUsage &usage(VmId vm, Pid pid) const;

    /** True if (vm, pid) appeared in the snapshot. */
    bool hasProcess(VmId vm, Pid pid) const;

    /** All processes seen, in deterministic (vm, pid) order. */
    const std::map<std::pair<VmId, Pid>, ProcessUsage> &
    processes() const
    {
        return usage_;
    }

    /** Fig. 2 rollup for one VM. */
    VmBreakdown vmBreakdown(VmId vm) const;

    /** Total bytes attributed (== resident bytes; tests verify). */
    Bytes attributedBytes() const { return attributed_; }

    /** Resident bytes at capture (from the snapshot). */
    Bytes
    residentBytes() const
    {
        return pagesToBytes(resident_frames_);
    }

  private:
    std::map<std::pair<VmId, Pid>, ProcessUsage> usage_;
    std::vector<std::uint64_t> overhead_frames_;
    Bytes attributed_ = 0;
    std::uint64_t resident_frames_ = 0;
};

/**
 * Distribution-oriented accounting (PSS) over one snapshot.
 *
 * Same sharding scheme as OwnerAccounting; the floating-point PSS sums
 * are accumulated serially in snapshot order, so they associate in
 * exactly the serial order and stay bit-identical at any thread count.
 */
class PssAccounting
{
  public:
    explicit PssAccounting(const Snapshot &snap, unsigned threads = 1);

    /** PSS of one process in bytes (fractional pages included). */
    double pss(VmId vm, Pid pid) const;

    /** All (vm, pid) -> PSS. */
    const std::map<std::pair<VmId, Pid>, double> &
    processes() const
    {
        return pss_;
    }

    /** Sum of all PSS values plus VM overheads (== resident bytes). */
    double totalBytes() const { return total_; }

  private:
    std::map<std::pair<VmId, Pid>, double> pss_;
    double total_ = 0;
};

} // namespace jtps::analysis

#endif // JTPS_ANALYSIS_ACCOUNTING_HH
