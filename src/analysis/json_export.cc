#include "analysis/json_export.hh"

namespace jtps::analysis
{

void
writeStatsJson(JsonWriter &w, const StatSet &stats)
{
    w.beginObject();
    if (!stats.scope().empty())
        w.field("scope", stats.scope());
    w.key("counters").beginObject();
    for (const auto &[name, value] : stats.counters())
        w.field(name, value);
    w.endObject();
    w.key("scalars").beginObject();
    for (const auto &[name, value] : stats.scalars())
        w.field(name, value);
    w.endObject();
    w.endObject();
}

void
writeSharingSeriesJson(JsonWriter &w, const SharingMonitor &monitor)
{
    w.beginArray();
    for (const SharingSample &s : monitor.samples()) {
        w.beginObject();
        w.field("tick_ms", s.tick);
        w.field("pages_shared", s.pagesShared);
        w.field("pages_sharing", s.pagesSharing);
        w.field("resident_bytes", s.residentBytes);
        w.field("major_faults", s.majorFaults);
        w.field("full_scans", s.fullScans);
        w.endObject();
    }
    w.endArray();
}

void
writeTraceJson(JsonWriter &w, const TraceBuffer &trace)
{
    w.beginObject();
    if (!trace.scope().empty())
        w.field("scope", trace.scope());
    w.field("dropped", trace.dropped());
    w.key("events").beginArray();
    for (const TraceEvent &e : trace.events()) {
        w.beginObject();
        w.field("tick_ms", e.tick);
        w.field("type", traceEventName(e.type));
        w.key("vm");
        if (e.vm == invalidVm)
            w.valueNull();
        else
            w.value(e.vm);
        w.field("arg0", e.arg0);
        w.field("arg1", e.arg1);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace jtps::analysis
