#include "analysis/smaps.hh"

#include <cstdio>
#include <sstream>

namespace jtps::analysis
{

Bytes
ProcessSmaps::rssTotal() const
{
    Bytes total = 0;
    for (const auto &e : entries)
        total += e.rss;
    return total;
}

double
ProcessSmaps::pssTotal() const
{
    double total = 0;
    for (const auto &e : entries)
        total += e.pss;
    return total;
}

Bytes
ProcessSmaps::swapTotal() const
{
    Bytes total = 0;
    for (const auto &e : entries)
        total += e.swap;
    return total;
}

ProcessSmaps
computeSmaps(const guest::GuestOs &os, Pid pid)
{
    const guest::GuestProcess &proc = os.process(pid);
    const hv::Hypervisor &hv = os.hv();
    const hv::Vm &vm = hv.vm(os.vmId());

    ProcessSmaps out;
    out.pid = pid;
    out.processName = proc.name;

    for (const auto &vma : proc.vmas) {
        SmapsEntry entry;
        entry.name = vma->name;
        entry.category = vma->category;
        entry.startVpn = vma->startVpn;
        entry.size = vma->bytes();

        for (std::uint64_t i = 0; i < vma->numPages; ++i) {
            auto pte = proc.pageTable.find(vma->vpnAt(i));
            if (pte == proc.pageTable.end())
                continue;
            const hv::EptEntry &e = vm.ept.entry(pte->second);
            switch (e.state) {
              case hv::PageState::NotPresent:
                break;
              case hv::PageState::Swapped:
                entry.swap += pageSize;
                break;
              case hv::PageState::Resident: {
                  entry.rss += pageSize;
                  const auto &frame = hv.frames().frame(e.backing);
                  if (frame.refcount > 1) {
                      entry.sharedClean += pageSize;
                      entry.pss += static_cast<double>(pageSize) /
                                   frame.refcount;
                  } else {
                      entry.privateClean += pageSize;
                      entry.pss += static_cast<double>(pageSize);
                  }
                  break;
              }
            }
        }
        out.entries.push_back(std::move(entry));
    }
    return out;
}

std::string
renderSmaps(const ProcessSmaps &smaps)
{
    std::ostringstream out;
    char buf[160];
    for (const auto &e : smaps.entries) {
        std::snprintf(buf, sizeof(buf), "%012llx [%s] %s\n",
                      static_cast<unsigned long long>(e.startVpn *
                                                      pageSize),
                      guest::categoryName(e.category), e.name.c_str());
        out << buf;
        auto line = [&](const char *key, double kb) {
            std::snprintf(buf, sizeof(buf), "%-14s %10.0f kB\n", key,
                          kb);
            out << buf;
        };
        line("Size:", static_cast<double>(e.size) / KiB);
        line("Rss:", static_cast<double>(e.rss) / KiB);
        line("Pss:", e.pss / KiB);
        line("Shared_Clean:", static_cast<double>(e.sharedClean) / KiB);
        line("Private_Clean:",
             static_cast<double>(e.privateClean) / KiB);
        line("Swap:", static_cast<double>(e.swap) / KiB);
    }
    char total[200];
    std::snprintf(total, sizeof(total),
                  "# pid %u (%s): Rss %.0f kB, Pss %.0f kB, Swap %.0f "
                  "kB over %zu mappings\n",
                  smaps.pid, smaps.processName.c_str(),
                  static_cast<double>(smaps.rssTotal()) / KiB,
                  smaps.pssTotal() / KiB,
                  static_cast<double>(smaps.swapTotal()) / KiB,
                  smaps.entries.size());
    out << total;
    return out.str();
}

} // namespace jtps::analysis
