#include "base/rng.hh"

#include <algorithm>

#include "base/logging.hh"

namespace jtps
{

void
Rng::reseed(std::uint64_t seed)
{
    // Seed the four state words through SplitMix64 so that nearby seeds
    // produce unrelated streams.
    std::uint64_t sm = seed;
    for (auto &word : s) {
        sm += 0x9e3779b97f4a7c15ULL;
        word = mix64(sm);
    }
    // xoshiro must not start from the all-zero state.
    if ((s[0] | s[1] | s[2] | s[3]) == 0)
        s[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    jtps_assert(bound != 0);
    // Rejection sampling to avoid modulo bias; the loop almost never
    // iterates for the small bounds the simulator uses.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    jtps_assert(lo <= hi);
    return lo + nextBelow(hi - lo + 1);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::bernoulli(double p)
{
    return nextDouble() < p;
}

void
Rng::perturbOrder(std::vector<std::uint32_t> &order, double p,
                  std::uint32_t window)
{
    if (order.size() < 2 || window == 0)
        return;
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
        if (!bernoulli(p))
            continue;
        std::size_t max_off = std::min<std::size_t>(window,
                                                    order.size() - 1 - i);
        std::size_t j = i + nextRange(1, max_off);
        std::swap(order[i], order[j]);
    }
}

} // namespace jtps
