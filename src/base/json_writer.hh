/**
 * @file
 * Streaming JSON writer with deterministic output.
 *
 * The simulator's machine-readable output (stats registries, sharing
 * time series, traces, bench tables) is consumed by diff-based tests
 * and external tooling, so the writer guarantees byte-stable output:
 * keys appear in the order the caller emits them (callers iterate
 * ordered containers), numbers are formatted by fixed printf
 * conversions, and indentation is fixed two-space pretty printing.
 *
 * The writer validates nesting with a small state stack: emitting a
 * value where a key is required (or vice versa) panics, so malformed
 * documents are caught at the call site in tests rather than by a
 * downstream parser.
 */

#ifndef JTPS_BASE_JSON_WRITER_HH
#define JTPS_BASE_JSON_WRITER_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace jtps
{

/**
 * Builds one JSON document into a string.
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key (must be inside an object, before a value). */
    JsonWriter &key(std::string_view name);

    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v) { return value(static_cast<std::int64_t>(v)); }
    JsonWriter &value(unsigned v)
    {
        return value(static_cast<std::uint64_t>(v));
    }
    JsonWriter &value(double v);
    JsonWriter &value(bool v);
    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v) { return value(std::string_view(v)); }
    JsonWriter &valueNull();

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    field(std::string_view name, T v)
    {
        key(name);
        return value(v);
    }

    /** The finished document (all scopes must be closed). */
    std::string str() const;

    /** Render @p v as the JSON number token the writer would emit. */
    static std::string formatDouble(double v);

    /** Render @p v as a quoted, escaped JSON string token. */
    static std::string quote(std::string_view v);

  private:
    enum class Scope : std::uint8_t
    {
        ObjectNeedKey,   //!< inside {}, expecting a key or '}'
        ObjectNeedValue, //!< inside {}, key emitted, expecting a value
        Array,           //!< inside [], expecting values
    };

    void beforeValue();
    void afterValue();
    void newlineIndent();
    void raw(std::string_view s) { out_.append(s); }

    std::string out_;
    std::vector<Scope> stack_;
    /** Whether the current scope already holds an element. */
    std::vector<bool> has_elems_;
    bool done_ = false;
};

} // namespace jtps

#endif // JTPS_BASE_JSON_WRITER_HH
