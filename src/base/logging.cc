#include "base/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace jtps
{

namespace
{
bool verboseFlag = true;
} // namespace

void
setVerbose(bool v)
{
    verboseFlag = v;
}

bool
verbose()
{
    return verboseFlag;
}

void
panic(const char *fmt, ...)
{
    std::fprintf(stderr, "panic: ");
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: ");
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    std::fprintf(stderr, "warn: ");
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
}

void
inform(const char *fmt, ...)
{
    if (!verboseFlag)
        return;
    std::printf("info: ");
    va_list args;
    va_start(args, fmt);
    std::vprintf(fmt, args);
    va_end(args);
    std::printf("\n");
}

} // namespace jtps
