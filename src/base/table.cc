#include "base/table.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace jtps
{

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    if (rows_.empty())
        return "";

    std::size_t cols = 0;
    for (const auto &row : rows_)
        cols = std::max(cols, row.size());

    std::vector<std::size_t> width(cols, 0);
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream out;
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        const auto &row = rows_[r];
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << row[c];
            if (c + 1 < row.size())
                out << std::string(width[c] - row[c].size() + 2, ' ');
        }
        out << "\n";
        if (r == 0) {
            std::size_t total = 0;
            for (std::size_t c = 0; c < cols; ++c)
                total += width[c] + (c + 1 < cols ? 2 : 0);
            out << std::string(total, '-') << "\n";
        }
    }
    return out.str();
}

std::string
TextTable::renderCsv() const
{
    std::ostringstream out;
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            std::string cell = row[c];
            bool quote = cell.find_first_of(",\"\n") != std::string::npos;
            if (quote) {
                std::string escaped = "\"";
                for (char ch : cell) {
                    if (ch == '"')
                        escaped += "\"\"";
                    else
                        escaped += ch;
                }
                escaped += "\"";
                cell = escaped;
            }
            out << cell;
            if (c + 1 < row.size())
                out << ",";
        }
        out << "\n";
    }
    return out.str();
}

std::string
renderStackedBar(const std::string &label,
                 const std::vector<BarSegment> &segments, double full_scale,
                 int width)
{
    std::ostringstream out;
    out << label << " |";
    if (full_scale <= 0)
        full_scale = 1;
    int used = 0;
    for (const auto &seg : segments) {
        int w = static_cast<int>(
            std::lround(seg.value / full_scale * width));
        w = std::max(0, std::min(w, width - used));
        out << std::string(w, seg.glyph);
        used += w;
    }
    out << std::string(std::max(0, width - used), ' ') << "|";
    return out.str();
}

std::string
renderBarLegend(const std::vector<BarSegment> &segments)
{
    std::ostringstream out;
    out << "legend:";
    for (const auto &seg : segments)
        out << " " << seg.glyph << "=" << seg.label;
    return out.str();
}

} // namespace jtps
