#include "base/trace.hh"

#include "base/logging.hh"

namespace jtps
{

const char *
traceEventName(TraceEventType type)
{
    switch (type) {
      case TraceEventType::KsmStableMerge:
        return "ksm_stable_merge";
      case TraceEventType::KsmUnstablePromotion:
        return "ksm_unstable_promotion";
      case TraceEventType::KsmFullScan:
        return "ksm_full_scan";
      case TraceEventType::CowBreak:
        return "cow_break";
      case TraceEventType::SwapOut:
        return "swap_out";
      case TraceEventType::SwapIn:
        return "swap_in";
      case TraceEventType::BalloonInflate:
        return "balloon_inflate";
      case TraceEventType::BalloonDeflate:
        return "balloon_deflate";
      case TraceEventType::GcGlobal:
        return "gc_global";
      case TraceEventType::GcMinor:
        return "gc_minor";
    }
    panic("unknown trace event type %u", static_cast<unsigned>(type));
}

void
TraceBuffer::enable(std::size_t capacity)
{
    jtps_assert(capacity > 0);
    if (capacity > capacity_) {
        capacity_ = capacity;
        events_.reserve(capacity_);
    }
    enabled_ = true;
}

void
TraceBuffer::append(TraceEventType type, VmId vm, std::uint64_t arg0,
                    std::uint64_t arg1)
{
    if (events_.size() >= capacity_) {
        ++dropped_;
        return;
    }
    TraceEvent e;
    e.tick = clock_ ? clock_() : 0;
    e.type = type;
    e.vm = vm;
    e.arg0 = arg0;
    e.arg1 = arg1;
    events_.push_back(e);
}

std::uint64_t
TraceBuffer::countOf(TraceEventType type) const
{
    std::uint64_t n = 0;
    for (const TraceEvent &e : events_)
        n += e.type == type;
    return n;
}

void
TraceBuffer::clear()
{
    events_.clear();
    dropped_ = 0;
}

} // namespace jtps
