#include "base/stats.hh"

#include <cstdio>
#include <sstream>

#include "base/logging.hh"

namespace jtps
{

void
StatSet::inc(const std::string &name, std::uint64_t delta)
{
    counters_[name] += delta;
}

void
StatSet::dec(const std::string &name, std::uint64_t delta)
{
    auto it = counters_.find(name);
    jtps_assert(it != counters_.end() && it->second >= delta);
    it->second -= delta;
}

std::uint64_t &
StatSet::counter(const std::string &name)
{
    return counters_[name];
}

void
StatSet::set(const std::string &name, std::uint64_t value)
{
    counters_[name] = value;
}

void
StatSet::setScalar(const std::string &name, double value)
{
    scalars_[name] = value;
}

std::uint64_t
StatSet::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

double
StatSet::getScalar(const std::string &name) const
{
    auto it = scalars_.find(name);
    return it == scalars_.end() ? 0.0 : it->second;
}

bool
StatSet::has(const std::string &name) const
{
    return counters_.count(name) || scalars_.count(name);
}

std::string
StatSet::render() const
{
    const std::string prefix = scope_.empty() ? "" : scope_ + ".";
    std::size_t width = 0;
    for (const auto &kv : counters_)
        width = std::max(width, prefix.size() + kv.first.size());
    for (const auto &kv : scalars_)
        width = std::max(width, prefix.size() + kv.first.size());

    std::ostringstream out;
    char buf[160];
    for (const auto &kv : counters_) {
        std::snprintf(buf, sizeof(buf), "%-*s %20llu\n",
                      static_cast<int>(width),
                      (prefix + kv.first).c_str(),
                      static_cast<unsigned long long>(kv.second));
        out << buf;
    }
    for (const auto &kv : scalars_) {
        std::snprintf(buf, sizeof(buf), "%-*s %20.4f\n",
                      static_cast<int>(width),
                      (prefix + kv.first).c_str(), kv.second);
        out << buf;
    }
    return out.str();
}

void
StatSet::clear()
{
    counters_.clear();
    scalars_.clear();
}

} // namespace jtps
