/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every source of modelled nondeterminism (thread-timing perturbation of
 * class-load order, per-process allocation addresses, JIT profile
 * fingerprints, request interleaving) draws from an Rng seeded from the
 * scenario seed, so a scenario replays bit-identically — one of the test
 * suite's core invariants.
 */

#ifndef JTPS_BASE_RNG_HH
#define JTPS_BASE_RNG_HH

#include <cstdint>
#include <vector>

#include "base/hash.hh"

namespace jtps
{

/**
 * xoshiro256** generator (Blackman & Vigna), seeded through SplitMix64 as
 * its authors recommend. Small, fast, and plenty good for a simulator.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x6a746573656564ULL) { reseed(seed); }

    /** Reset the stream from @p seed. */
    void reseed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform value in [0, bound). @p bound must be nonzero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform value in [lo, hi] inclusive. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** True with probability @p p. */
    bool bernoulli(double p);

    /**
     * Fisher-Yates-style *local* perturbation of an index order: each
     * element may swap with a neighbour within @p window slots with
     * probability @p p. This models thread-timing jitter in class-load
     * order: the overall order is preserved, but exact neighbours differ
     * between processes — enough to destroy page-content equality.
     */
    void perturbOrder(std::vector<std::uint32_t> &order, double p,
                      std::uint32_t window);

  private:
    std::uint64_t s[4];

    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }
};

} // namespace jtps

#endif // JTPS_BASE_RNG_HH
