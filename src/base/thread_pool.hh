/**
 * @file
 * A small fixed-size thread pool.
 *
 * Scenario runs are self-contained and deterministic (DESIGN.md
 * invariant 5): a Scenario owns its hypervisor, stat set and RNGs, and
 * shares no mutable state with any other Scenario. Independent sweep
 * points (Figs. 7/8 run 18 scenarios back-to-back) can therefore run
 * concurrently, bounded only by cores. The pool is deliberately plain:
 * submit closures, wait for the queue to drain.
 */

#ifndef JTPS_BASE_THREAD_POOL_HH
#define JTPS_BASE_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace jtps
{

/**
 * Fixed worker count, FIFO job queue, drain-on-destruction.
 */
class ThreadPool
{
  public:
    /** Start @p threads workers (at least one). */
    explicit ThreadPool(unsigned threads);

    /** Waits for all submitted jobs, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p job for execution on some worker. */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished. */
    void wait();

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable work_available_;
    std::condition_variable all_done_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    unsigned in_flight_ = 0; //!< queued + currently executing jobs
    bool shutting_down_ = false;
};

} // namespace jtps

#endif // JTPS_BASE_THREAD_POOL_HH
