/**
 * @file
 * Structured tracing: a typed, allocation-light event recorder.
 *
 * Components that already report into a StatSet can additionally emit
 * *events* — individual state transitions with a timestamp — into a
 * TraceBuffer: KSM merges, COW breaks, full-scan boundaries, host
 * swap-in/out, balloon moves, GC cycles. Counters answer "how many";
 * the trace answers "when, in what order, to whom", which is what the
 * convergence curves of Figs. 7/8 are made of.
 *
 * Cost model: tracing is off by default and the disabled path is a
 * single relaxed bool load and branch, so instrumented hot paths run
 * at full speed (guarded by a micro-benchmark and a regression test).
 * When enabled, events append into a pre-reserved vector; once the
 * capacity is exhausted further events are counted as dropped rather
 * than reallocating without bound.
 *
 * Each Scenario owns its own TraceBuffer (there are no globals), so
 * parallel bench sweeps stay race-free and deterministic.
 */

#ifndef JTPS_BASE_TRACE_HH
#define JTPS_BASE_TRACE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/types.hh"

namespace jtps
{

/**
 * The trace event vocabulary. Names and meanings of the per-event
 * arguments are documented in docs/METRICS.md; traceEventName() gives
 * the stable string used in JSON output.
 */
enum class TraceEventType : std::uint8_t
{
    KsmStableMerge,       //!< candidate merged into a stable frame
    KsmUnstablePromotion, //!< unstable pair promoted + merged
    KsmFullScan,          //!< scanner finished a full pass
    CowBreak,             //!< shared frame privatized on write
    SwapOut,              //!< frame evicted to the host swap device
    SwapIn,               //!< frame restored on a major fault
    BalloonInflate,       //!< guest balloon reclaimed pages
    BalloonDeflate,       //!< balloon released pages back
    GcGlobal,             //!< global (compacting) collection
    GcMinor,              //!< nursery (copying) collection
};

/** Number of distinct event types (for iteration / histograms). */
constexpr std::size_t traceEventTypeCount = 10;

/** Stable snake_case name of @p type, as emitted in JSON. */
const char *traceEventName(TraceEventType type);

/** One recorded event: 32 bytes, trivially copyable. */
struct TraceEvent
{
    Tick tick = 0;         //!< simulated time of the event
    std::uint64_t arg0 = 0; //!< per-type argument (docs/METRICS.md)
    std::uint64_t arg1 = 0; //!< per-type argument (docs/METRICS.md)
    TraceEventType type = TraceEventType::KsmStableMerge;
    VmId vm = invalidVm;   //!< VM the event concerns (invalidVm if none)
};

static_assert(sizeof(TraceEvent) <= 32, "keep trace records compact");

/**
 * Bounded append buffer of TraceEvents.
 */
class TraceBuffer
{
  public:
    /** Default event capacity when enable() is not given one. */
    static constexpr std::size_t defaultCapacity = 1u << 20;

    /**
     * Turn recording on, reserving room for @p capacity events.
     * Re-enabling keeps already-recorded events (capacity can only
     * grow).
     */
    void enable(std::size_t capacity = defaultCapacity);

    /** Stop recording; recorded events remain readable. */
    void disable() { enabled_ = false; }

    /** True while recording. */
    bool enabled() const { return enabled_; }

    /**
     * Timestamp source, typically the scenario event queue's now().
     * Events recorded with no clock set are stamped tick 0.
     */
    void setClock(std::function<Tick()> clock) { clock_ = std::move(clock); }

    /**
     * Record one event. The disabled path is branch-only: callers may
     * keep a TraceBuffer wired permanently and pay nothing until
     * enable().
     */
    void
    record(TraceEventType type, VmId vm, std::uint64_t arg0 = 0,
           std::uint64_t arg1 = 0)
    {
        if (!enabled_)
            return;
        append(type, vm, arg0, arg1);
    }

    /**
     * Owner label for multi-host runs. When set, the JSON exporter
     * stamps a "scope" field into the trace document so per-host
     * streams stay distinguishable after merging; "" (the default)
     * keeps single-host trace documents byte-identical to the
     * pre-scope format. Events themselves are unchanged.
     */
    void setScope(std::string scope) { scope_ = std::move(scope); }

    /** The owner label ("" for single-host traces). */
    const std::string &scope() const { return scope_; }

    /** All recorded events, in record order (== time order). */
    const std::vector<TraceEvent> &events() const { return events_; }

    /** Events rejected because the buffer was full. */
    std::uint64_t dropped() const { return dropped_; }

    /** Events recorded of @p type. */
    std::uint64_t countOf(TraceEventType type) const;

    /** Drop all recorded events (keeps enabled state and capacity). */
    void clear();

  private:
    void append(TraceEventType type, VmId vm, std::uint64_t arg0,
                std::uint64_t arg1);

    bool enabled_ = false;
    std::size_t capacity_ = 0;
    std::uint64_t dropped_ = 0;
    std::function<Tick()> clock_;
    std::string scope_;
    std::vector<TraceEvent> events_;
};

} // namespace jtps

#endif // JTPS_BASE_TRACE_HH
