/**
 * @file
 * Minimal named-statistics registry.
 *
 * Components register counters ("ksm.pages_shared", "hv.cow_breaks") into
 * a StatSet owned by the scenario. Benches and tests read them by name;
 * the registry can dump itself as an aligned table.
 */

#ifndef JTPS_BASE_STATS_HH
#define JTPS_BASE_STATS_HH

#include <cstdint>
#include <map>
#include <string>

namespace jtps
{

/**
 * A set of named 64-bit counters and floating-point scalars.
 *
 * The container is a std::map so that dump order is deterministic —
 * stat output is diffed by the determinism tests.
 */
class StatSet
{
  public:
    /** Add @p delta to counter @p name (creating it at zero). */
    void inc(const std::string &name, std::uint64_t delta = 1);

    /**
     * Stable reference to counter @p name (creating it at zero).
     *
     * Hot paths (the KSM scanner visits every guest page on every
     * pass) resolve their counters once and bump the reference, so the
     * per-event cost is one add instead of a string-keyed map lookup.
     * The map is node-based, so the reference stays valid across later
     * insertions; only clear() invalidates handles.
     */
    std::uint64_t &counter(const std::string &name);

    /** Subtract @p delta from counter @p name (must not underflow). */
    void dec(const std::string &name, std::uint64_t delta = 1);

    /** Set counter @p name to an absolute value. */
    void set(const std::string &name, std::uint64_t value);

    /** Set scalar @p name. */
    void setScalar(const std::string &name, double value);

    /** Read a counter; returns 0 if it was never touched. */
    std::uint64_t get(const std::string &name) const;

    /** Read a scalar; returns 0.0 if it was never touched. */
    double getScalar(const std::string &name) const;

    /** True if the counter exists. */
    bool has(const std::string &name) const;

    /**
     * Owner label for multi-host runs. When set, render() prefixes
     * every name with "<scope>." and the JSON exporter stamps a
     * "scope" field into the registry document, so registries from
     * different hosts stay distinguishable after merging. Names used
     * with inc()/get()/counters() are NOT prefixed — the scope is a
     * presentation property, which keeps single-host documents (empty
     * scope) byte-identical to the pre-scope format.
     */
    void setScope(std::string scope) { scope_ = std::move(scope); }

    /** The owner label ("" for single-host registries). */
    const std::string &scope() const { return scope_; }

    /** Render all stats as an aligned two-column table. */
    std::string render() const;

    /** Drop all stats. */
    void clear();

    /** All counters, for iteration in tests. */
    const std::map<std::string, std::uint64_t> &counters() const
    {
        return counters_;
    }

    /** All scalars, for iteration (JSON export, tests). */
    const std::map<std::string, double> &scalars() const
    {
        return scalars_;
    }

  private:
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> scalars_;
    std::string scope_;
};

} // namespace jtps

#endif // JTPS_BASE_STATS_HH
