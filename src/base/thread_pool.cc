#include "base/thread_pool.hh"

#include "base/logging.hh"

namespace jtps
{

ThreadPool::ThreadPool(unsigned threads)
{
    jtps_assert(threads >= 1);
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        shutting_down_ = true;
    }
    work_available_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        jtps_assert(!shutting_down_);
        queue_.push_back(std::move(job));
        ++in_flight_;
    }
    work_available_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this]() { return in_flight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_available_.wait(lock, [this]() {
                return !queue_.empty() || shutting_down_;
            });
            if (queue_.empty())
                return; // shutting down and drained
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        job();
        {
            std::unique_lock<std::mutex> lock(mutex_);
            --in_flight_;
            if (in_flight_ == 0)
                all_done_.notify_all();
        }
    }
}

} // namespace jtps
