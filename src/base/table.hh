/**
 * @file
 * Text rendering helpers for bench output: aligned tables, horizontal
 * stacked bars (the paper's figures are stacked bar charts), and CSV.
 */

#ifndef JTPS_BASE_TABLE_HH
#define JTPS_BASE_TABLE_HH

#include <string>
#include <vector>

namespace jtps
{

/**
 * An aligned text table. Columns size themselves to the widest cell;
 * the first row added is the header.
 */
class TextTable
{
  public:
    /** Add a row of cells. All rows should have the same arity. */
    void addRow(std::vector<std::string> cells);

    /** Render with a header underline and two-space column gaps. */
    std::string render() const;

    /** Render as CSV (no alignment, comma-separated, quoted as needed). */
    std::string renderCsv() const;

  private:
    std::vector<std::vector<std::string>> rows_;
};

/** One segment of a stacked horizontal bar. */
struct BarSegment
{
    std::string label;  //!< segment name (e.g. "Java heap")
    double value;       //!< segment size in the chart's unit
    char glyph;         //!< fill character for this segment
};

/**
 * Render a labelled stacked horizontal bar, scaled so that @p full_scale
 * maps to @p width characters. Used to echo the paper's stacked-bar
 * figures in terminal output.
 */
std::string renderStackedBar(const std::string &label,
                             const std::vector<BarSegment> &segments,
                             double full_scale, int width);

/** Render a legend line ("a=Code b=Class metadata ..."). */
std::string renderBarLegend(const std::vector<BarSegment> &segments);

} // namespace jtps

#endif // JTPS_BASE_TABLE_HH
