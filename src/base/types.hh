/**
 * @file
 * Fundamental scalar types and identifiers used across the simulator.
 *
 * The simulator models three layers of address translation, so it is easy
 * to confuse "which kind of page number is this?". We therefore give each
 * layer its own alias and keep the naming of the paper:
 *
 *   - a guest process virtual page number (Vpn),
 *   - a guest physical frame number (Gfn) — what the paper calls
 *     "guest memory",
 *   - a host physical frame number (Hfn).
 */

#ifndef JTPS_BASE_TYPES_HH
#define JTPS_BASE_TYPES_HH

#include <cstdint>
#include <limits>

namespace jtps
{

/** Simulated time, in milliseconds since simulation start. */
using Tick = std::uint64_t;

/** A byte count or byte offset. */
using Bytes = std::uint64_t;

/** Guest-process virtual page number. */
using Vpn = std::uint64_t;

/** Guest physical frame number (index into a VM's guest memory). */
using Gfn = std::uint64_t;

/** Host physical frame number (index into the host frame table). */
using Hfn = std::uint64_t;

/** Identifier of a guest VM on a host. */
using VmId = std::uint32_t;

/** Identifier of a process inside one guest OS. */
using Pid = std::uint32_t;

/** Sentinel for "no frame" in any of the three layers. */
constexpr std::uint64_t invalidFrame =
    std::numeric_limits<std::uint64_t>::max();

/** Sentinel VM id. */
constexpr VmId invalidVm = std::numeric_limits<VmId>::max();

/** Sentinel pid. */
constexpr Pid invalidPid = std::numeric_limits<Pid>::max();

} // namespace jtps

#endif // JTPS_BASE_TYPES_HH
