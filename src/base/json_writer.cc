#include "base/json_writer.hh"

#include <cmath>
#include <cstdio>

#include "base/logging.hh"

namespace jtps
{

void
JsonWriter::newlineIndent()
{
    out_.push_back('\n');
    out_.append(2 * stack_.size(), ' ');
}

void
JsonWriter::beforeValue()
{
    jtps_assert(!done_);
    if (stack_.empty())
        return; // document root
    switch (stack_.back()) {
      case Scope::ObjectNeedKey:
        panic("JsonWriter: value emitted where an object key is required");
      case Scope::ObjectNeedValue:
        break; // key already printed "name": prefix
      case Scope::Array:
        if (has_elems_.back())
            out_.push_back(',');
        newlineIndent();
        break;
    }
}

void
JsonWriter::afterValue()
{
    if (stack_.empty()) {
        done_ = true;
        return;
    }
    if (stack_.back() == Scope::ObjectNeedValue)
        stack_.back() = Scope::ObjectNeedKey;
    has_elems_.back() = true;
}

JsonWriter &
JsonWriter::key(std::string_view name)
{
    jtps_assert(!stack_.empty() &&
                stack_.back() == Scope::ObjectNeedKey);
    if (has_elems_.back())
        out_.push_back(',');
    newlineIndent();
    raw(quote(name));
    raw(": ");
    stack_.back() = Scope::ObjectNeedValue;
    return *this;
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    out_.push_back('{');
    stack_.push_back(Scope::ObjectNeedKey);
    has_elems_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    jtps_assert(!stack_.empty() &&
                stack_.back() == Scope::ObjectNeedKey);
    const bool had = has_elems_.back();
    stack_.pop_back();
    has_elems_.pop_back();
    if (had)
        newlineIndent();
    out_.push_back('}');
    afterValue();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    out_.push_back('[');
    stack_.push_back(Scope::Array);
    has_elems_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    jtps_assert(!stack_.empty() && stack_.back() == Scope::Array);
    const bool had = has_elems_.back();
    stack_.pop_back();
    has_elems_.pop_back();
    if (had)
        newlineIndent();
    out_.push_back(']');
    afterValue();
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    beforeValue();
    raw(std::to_string(v));
    afterValue();
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    beforeValue();
    raw(std::to_string(v));
    afterValue();
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    beforeValue();
    raw(formatDouble(v));
    afterValue();
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeValue();
    raw(v ? "true" : "false");
    afterValue();
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    beforeValue();
    raw(quote(v));
    afterValue();
    return *this;
}

JsonWriter &
JsonWriter::valueNull()
{
    beforeValue();
    raw("null");
    afterValue();
    return *this;
}

std::string
JsonWriter::str() const
{
    jtps_assert(done_ && stack_.empty());
    return out_ + "\n";
}

std::string
JsonWriter::formatDouble(double v)
{
    // JSON has no NaN/Inf tokens; the simulator should never produce
    // them, so map to null-adjacent zero rather than emit invalid JSON.
    if (!std::isfinite(v))
        return "0";
    // %.17g round-trips every double exactly and is byte-stable for a
    // given value, which is all the determinism tests need.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
JsonWriter::quote(std::string_view v)
{
    std::string out;
    out.reserve(v.size() + 2);
    out.push_back('"');
    for (const char c : v) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

} // namespace jtps
