#include "base/units.hh"

#include <cstdio>

namespace jtps
{

std::string
formatBytes(Bytes bytes)
{
    char buf[64];
    if (bytes >= GiB && bytes % (GiB / 100) == 0) {
        std::snprintf(buf, sizeof(buf), "%.2f GiB",
                      static_cast<double>(bytes) / GiB);
    } else if (bytes >= GiB) {
        std::snprintf(buf, sizeof(buf), "%.3f GiB",
                      static_cast<double>(bytes) / GiB);
    } else if (bytes >= MiB) {
        std::snprintf(buf, sizeof(buf), "%.1f MiB",
                      static_cast<double>(bytes) / MiB);
    } else if (bytes >= KiB) {
        std::snprintf(buf, sizeof(buf), "%.1f KiB",
                      static_cast<double>(bytes) / KiB);
    } else {
        std::snprintf(buf, sizeof(buf), "%llu B",
                      static_cast<unsigned long long>(bytes));
    }
    return buf;
}

std::string
formatMiB(Bytes bytes)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f",
                  static_cast<double>(bytes) / MiB);
    return buf;
}

} // namespace jtps
