/**
 * @file
 * Status and error reporting, following the gem5 convention:
 *
 *  - panic():  a simulator bug — a condition that must never happen
 *              regardless of user input. Aborts.
 *  - fatal():  a user error (bad configuration, impossible scenario).
 *              Exits with status 1.
 *  - warn():   something works, but not as well as it should.
 *  - inform(): plain status output.
 */

#ifndef JTPS_BASE_LOGGING_HH
#define JTPS_BASE_LOGGING_HH

#include <cstdarg>
#include <string>

namespace jtps
{

/** Abort with a formatted message; use for internal invariant violations. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) with a formatted message; use for configuration errors. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stdout. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);

/** Current verbosity. */
bool verbose();

/**
 * panic() if @p cond is false. Unlike assert() this is always compiled in:
 * the invariants it protects (refcounts, translation totality) are cheap
 * and the simulator is useless if they do not hold.
 */
#define jtps_assert(cond, ...)                                              \
    do {                                                                    \
        if (!(cond))                                                        \
            ::jtps::panic("assertion '%s' failed at %s:%d", #cond,          \
                          __FILE__, __LINE__);                              \
    } while (0)

} // namespace jtps

#endif // JTPS_BASE_LOGGING_HH
