/**
 * @file
 * Deterministic 64-bit mixing functions.
 *
 * Page content in the model is *semantic*: every writer derives the words
 * it stores from stable identifiers (image name, class id, object id,
 * process seed) through these mixers. Two pages are TPS-mergeable iff all
 * their words are equal, so the mixers are the foundation of the whole
 * sharing model — they must be deterministic across runs and platforms,
 * and well-distributed so unrelated content never collides.
 */

#ifndef JTPS_BASE_HASH_HH
#define JTPS_BASE_HASH_HH

#include <cstdint>
#include <string_view>

namespace jtps
{

/**
 * SplitMix64 finalizer — a strong 64->64 bit mixer
 * (Steele et al., "Fast splittable pseudorandom number generators").
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Combine an accumulated hash with one more value. */
constexpr std::uint64_t
hashCombine(std::uint64_t seed, std::uint64_t value)
{
    return mix64(seed ^ (value + 0x9e3779b97f4a7c15ULL +
                         (seed << 6) + (seed >> 2)));
}

/** Combine three values into one digest. */
constexpr std::uint64_t
hash3(std::uint64_t a, std::uint64_t b, std::uint64_t c)
{
    return hashCombine(hashCombine(mix64(a), b), c);
}

/** Combine four values into one digest. */
constexpr std::uint64_t
hash4(std::uint64_t a, std::uint64_t b, std::uint64_t c, std::uint64_t d)
{
    return hashCombine(hash3(a, b, c), d);
}

/**
 * Lane-parallel hashCombine: advance L independent accumulator chains by
 * one value each. Bit-identical per lane to calling hashCombine(seed[l],
 * value[l]) in a loop — the point of the array form is that the lanes
 * share no data, so the compiler can overlap the multiply-xor chains
 * (ILP) or vectorize them, where a single chain is latency-bound on the
 * serial multiplies.
 */
template <unsigned L>
constexpr void
hashCombineLanes(std::uint64_t (&seed)[L], const std::uint64_t (&value)[L])
{
    for (unsigned l = 0; l < L; ++l)
        seed[l] = hashCombine(seed[l], value[l]);
}

/**
 * FNV-1a over a string, used to turn stable names ("libjvm.so",
 * "java/lang/String") into tag values for the mixers.
 */
constexpr std::uint64_t
stringTag(std::string_view s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace jtps

#endif // JTPS_BASE_HASH_HH
