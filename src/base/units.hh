/**
 * @file
 * Byte-size units and page-size helpers.
 *
 * The whole model works at 4 KiB page granularity, matching both the
 * x86-64 base page size used by the paper's KVM measurements and the KSM
 * merge granularity.
 */

#ifndef JTPS_BASE_UNITS_HH
#define JTPS_BASE_UNITS_HH

#include <string>

#include "base/types.hh"

namespace jtps
{

constexpr Bytes KiB = 1024;
constexpr Bytes MiB = 1024 * KiB;
constexpr Bytes GiB = 1024 * MiB;

/** Base page size of the modelled platform (4 KiB, as in the paper). */
constexpr Bytes pageSize = 4 * KiB;

/** Number of pages needed to hold @p bytes (rounding up). */
constexpr std::uint64_t
bytesToPages(Bytes bytes)
{
    return (bytes + pageSize - 1) / pageSize;
}

/** Size in bytes of @p pages pages. */
constexpr Bytes
pagesToBytes(std::uint64_t pages)
{
    return pages * pageSize;
}

/** Round @p bytes up to the next page boundary. */
constexpr Bytes
pageAlignUp(Bytes bytes)
{
    return bytesToPages(bytes) * pageSize;
}

/**
 * Render a byte count as a human-readable string ("1.25 GiB", "512 KiB",
 * "173 B"). Used by the report renderers.
 */
std::string formatBytes(Bytes bytes);

/** Render a byte count in MiB with one decimal, the paper's usual unit. */
std::string formatMiB(Bytes bytes);

} // namespace jtps

#endif // JTPS_BASE_UNITS_HH
