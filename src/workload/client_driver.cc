#include "workload/client_driver.hh"

#include <algorithm>

#include "base/hash.hh"
#include "base/logging.hh"

namespace jtps::workload
{

ClientDriver::ClientDriver(jvm::JavaVm &vm, const WorkloadSpec &spec,
                           HostDisk &disk)
    : vm_(vm), spec_(spec), disk_(disk),
      cycle_ms_estimate_(spec.thinkMs + spec.serviceMs),
      mix_rng_(hashCombine(vm.procSeed(), stringTag("req-mix"))),
      mix_weight_(spec.totalMixWeight())
{
}

ClientDriver::EpochResult
ClientDriver::runEpoch(Tick epoch_ms)
{
    auto &hv = vm_.os().hv();
    const VmId vm_id = vm_.os().vmId();
    const std::uint64_t faults_before = hv.majorFaults(vm_id);
    const std::uint64_t ram_faults_before = hv.majorFaultsRam(vm_id);
    const std::uint64_t guest_faults_before =
        vm_.os().guestMajorFaults();

    // Warm-up work piggybacks on request traffic: lazy class loading
    // (first use of servlets/EJB paths) and JIT compilation of methods
    // that crossed their invocation thresholds.
    if (!warm_) {
        const bool classes_done =
            vm_.allClassesLoaded() ||
            vm_.loadLazyClasses(spec_.lazyClassesPerEpoch) == 0;
        const bool jit_done =
            vm_.compileHotMethods(spec_.jitCompilesPerEpoch) <
            spec_.jitCompilesPerEpoch;
        warm_ = classes_done && jit_done;
    } else {
        // Steady state still recompiles: the optimizer keeps promoting
        // methods, churning (and fragmenting) the code cache.
        vm_.recompileHotMethods(spec_.jitRecompilesPerEpoch);
    }

    // Closed loop: how many requests can clientThreads issue at the
    // current cycle estimate? Even a thrashing server keeps grinding:
    // every client thread has a request in flight whose touches (and
    // faults) land each epoch — that floor is what makes a dying VM
    // keep contending for frames instead of silently surrendering its
    // memory, and is what spreads collapse across all VMs (Fig. 7).
    const double cycles =
        static_cast<double>(epoch_ms) / cycle_ms_estimate_;
    const std::uint64_t requests = std::max<std::uint64_t>(
        spec_.clientThreads,
        static_cast<std::uint64_t>(cycles * spec_.clientThreads));

    for (std::uint64_t r = 0; r < requests; ++r) {
        // Sample an operation from the workload's request mix; heavy
        // operations (order placement) do proportionally more memory
        // work than cheap ones (quotes).
        double alloc_mul = 1.0, touch_mul = 1.0, header_mul = 1.0;
        if (mix_weight_ > 0) {
            std::uint32_t pick = static_cast<std::uint32_t>(
                mix_rng_.nextBelow(mix_weight_));
            for (const RequestOp &op : spec_.mix) {
                if (pick < op.weight) {
                    alloc_mul = op.allocMul;
                    touch_mul = op.touchMul;
                    header_mul = op.headerMul;
                    break;
                }
                pick -= op.weight;
            }
        }
        vm_.allocate(static_cast<Bytes>(spec_.allocPerRequestBytes *
                                        alloc_mul));
        vm_.mutateHeaders(static_cast<std::uint32_t>(
            spec_.headerMutationsPerRequest * header_mul));
        vm_.touchWorkingSet(
            static_cast<std::uint32_t>(spec_.touchCodePages * touch_mul),
            static_cast<std::uint32_t>(spec_.touchHeapPages * touch_mul),
            static_cast<std::uint32_t>(spec_.touchClassPages * touch_mul),
            static_cast<std::uint32_t>(spec_.touchJitPages * touch_mul));
    }
    // Guest-level swap-ins (the guest's own swap device lives on the
    // same shared disk) count like host disk faults.
    const std::uint64_t request_faults =
        hv.majorFaults(vm_id) - faults_before +
        (vm_.os().guestMajorFaults() - guest_faults_before);
    const std::uint64_t request_ram_faults =
        hv.majorFaultsRam(vm_id) - ram_faults_before;

    // Background I/O (NIO buffers, log/file page-cache churn): its
    // faults load the shared disk but happen off the request path, so
    // they inflate fault *latency*, not the per-request fault count.
    vm_.nioActivity(spec_.nioRewritesPerEpoch, spec_.nioTouchesPerEpoch);
    const std::uint64_t misses_before = vm_.os().cacheMisses();
    vm_.os().touchFileSpace(spec_.guestCacheTouchesPerEpoch);
    // Cache misses are real disk reads competing with swap traffic.
    disk_.recordFaults(vm_.os().cacheMisses() - misses_before);
    const std::uint64_t total_faults =
        hv.majorFaults(vm_id) - faults_before +
        (vm_.os().guestMajorFaults() - guest_faults_before);
    const std::uint64_t total_ram_faults =
        hv.majorFaultsRam(vm_id) - ram_faults_before;
    // Only disk-tier faults queue on the shared disk; compressed-RAM
    // refaults cost a fixed decompression.
    disk_.recordFaults(total_faults - total_ram_faults);

    EpochResult res;
    res.requests = requests;
    res.majorFaults = total_faults;
    res.faultsPerRequest = static_cast<double>(request_faults) /
                           static_cast<double>(requests);
    const double disk_faults_per_req =
        static_cast<double>(request_faults - request_ram_faults) /
        static_cast<double>(requests);
    const double ram_faults_per_req =
        static_cast<double>(request_ram_faults) /
        static_cast<double>(requests);
    res.avgResponseMs = spec_.serviceMs +
                        disk_faults_per_req * disk_.faultLatencyMs() +
                        ram_faults_per_req * compressedRefaultMs;
    const double cycle_ms = spec_.thinkMs + res.avgResponseMs;
    res.achievedPerSec = spec_.clientThreads * 1000.0 / cycle_ms;
    res.slaMet = res.avgResponseMs <= spec_.slaMs;

    // Adapt the loop's pacing for the next epoch.
    cycle_ms_estimate_ = 0.5 * cycle_ms_estimate_ + 0.5 * cycle_ms;
    return res;
}

} // namespace jtps::workload
