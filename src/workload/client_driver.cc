#include "workload/client_driver.hh"

#include <algorithm>

#include "base/hash.hh"
#include "base/logging.hh"
#include "base/units.hh"

namespace jtps::workload
{

ClientDriver::ClientDriver(jvm::JavaVm &vm, const WorkloadSpec &spec,
                           HostDisk &disk)
    : vm_(vm), spec_(spec), disk_(disk),
      cycle_ms_estimate_(spec.thinkMs + spec.serviceMs),
      mix_rng_(hashCombine(vm.procSeed(), stringTag("req-mix"))),
      mix_weight_(spec.totalMixWeight())
{
}

void
ClientDriver::warmupWork()
{
    // Warm-up work piggybacks on request traffic: lazy class loading
    // (first use of servlets/EJB paths) and JIT compilation of methods
    // that crossed their invocation thresholds.
    if (!warm_) {
        const bool classes_done =
            vm_.allClassesLoaded() ||
            vm_.loadLazyClasses(spec_.lazyClassesPerEpoch) == 0;
        const bool jit_done =
            vm_.compileHotMethods(spec_.jitCompilesPerEpoch) <
            spec_.jitCompilesPerEpoch;
        warm_ = classes_done && jit_done;
    } else {
        // Steady state still recompiles: the optimizer keeps promoting
        // methods, churning (and fragmenting) the code cache.
        vm_.recompileHotMethods(spec_.jitRecompilesPerEpoch);
    }
}

std::uint64_t
ClientDriver::plannedRequests(Tick epoch_ms) const
{
    // Closed loop: how many requests can clientThreads issue at the
    // current cycle estimate? Even a thrashing server keeps grinding:
    // every client thread has a request in flight whose touches (and
    // faults) land each epoch — that floor is what makes a dying VM
    // keep contending for frames instead of silently surrendering its
    // memory, and is what spreads collapse across all VMs (Fig. 7).
    const double cycles =
        static_cast<double>(epoch_ms) / cycle_ms_estimate_;
    return std::max<std::uint64_t>(
        spec_.clientThreads,
        static_cast<std::uint64_t>(cycles * spec_.clientThreads));
}

void
ClientDriver::runRequests(std::uint64_t requests)
{
    for (std::uint64_t r = 0; r < requests; ++r) {
        // Sample an operation from the workload's request mix; heavy
        // operations (order placement) do proportionally more memory
        // work than cheap ones (quotes).
        double alloc_mul = 1.0, touch_mul = 1.0, header_mul = 1.0;
        if (mix_weight_ > 0) {
            std::uint32_t pick = static_cast<std::uint32_t>(
                mix_rng_.nextBelow(mix_weight_));
            for (const RequestOp &op : spec_.mix) {
                if (pick < op.weight) {
                    alloc_mul = op.allocMul;
                    touch_mul = op.touchMul;
                    header_mul = op.headerMul;
                    break;
                }
                pick -= op.weight;
            }
        }
        vm_.allocate(static_cast<Bytes>(spec_.allocPerRequestBytes *
                                        alloc_mul));
        vm_.mutateHeaders(static_cast<std::uint32_t>(
            spec_.headerMutationsPerRequest * header_mul));
        vm_.touchWorkingSet(
            static_cast<std::uint32_t>(spec_.touchCodePages * touch_mul),
            static_cast<std::uint32_t>(spec_.touchHeapPages * touch_mul),
            static_cast<std::uint32_t>(spec_.touchClassPages * touch_mul),
            static_cast<std::uint32_t>(spec_.touchJitPages * touch_mul));
    }
}

ClientDriver::EpochResult
ClientDriver::finishEpoch(std::uint64_t requests,
                          std::uint64_t request_faults,
                          std::uint64_t request_ram_faults,
                          std::uint64_t total_faults)
{
    EpochResult res;
    res.requests = requests;
    res.majorFaults = total_faults;
    res.faultsPerRequest = static_cast<double>(request_faults) /
                           static_cast<double>(requests);
    const double disk_faults_per_req =
        static_cast<double>(request_faults - request_ram_faults) /
        static_cast<double>(requests);
    const double ram_faults_per_req =
        static_cast<double>(request_ram_faults) /
        static_cast<double>(requests);
    res.avgResponseMs = spec_.serviceMs +
                        disk_faults_per_req * disk_.faultLatencyMs() +
                        ram_faults_per_req * compressedRefaultMs;
    const double cycle_ms = spec_.thinkMs + res.avgResponseMs;
    res.achievedPerSec = spec_.clientThreads * 1000.0 / cycle_ms;
    res.slaMet = res.avgResponseMs <= spec_.slaMs;

    // Adapt the loop's pacing for the next epoch.
    cycle_ms_estimate_ = 0.5 * cycle_ms_estimate_ + 0.5 * cycle_ms;
    return res;
}

ClientDriver::EpochResult
ClientDriver::runEpoch(Tick epoch_ms)
{
    jtps_assert(!staged_.valid);
    auto &hv = vm_.os().hv();
    const VmId vm_id = vm_.os().vmId();
    const std::uint64_t faults_before = hv.majorFaults(vm_id);
    const std::uint64_t ram_faults_before = hv.majorFaultsRam(vm_id);
    const std::uint64_t guest_faults_before =
        vm_.os().guestMajorFaults();

    warmupWork();
    const std::uint64_t requests = plannedRequests(epoch_ms);
    runRequests(requests);

    // Guest-level swap-ins (the guest's own swap device lives on the
    // same shared disk) count like host disk faults.
    const std::uint64_t request_faults =
        hv.majorFaults(vm_id) - faults_before +
        (vm_.os().guestMajorFaults() - guest_faults_before);
    const std::uint64_t request_ram_faults =
        hv.majorFaultsRam(vm_id) - ram_faults_before;

    // Background I/O (NIO buffers, log/file page-cache churn): its
    // faults load the shared disk but happen off the request path, so
    // they inflate fault *latency*, not the per-request fault count.
    vm_.nioActivity(spec_.nioRewritesPerEpoch, spec_.nioTouchesPerEpoch);
    const std::uint64_t misses_before = vm_.os().cacheMisses();
    vm_.os().touchFileSpace(spec_.guestCacheTouchesPerEpoch);
    // Cache misses are real disk reads competing with swap traffic.
    disk_.recordFaults(vm_.os().cacheMisses() - misses_before);
    const std::uint64_t total_faults =
        hv.majorFaults(vm_id) - faults_before +
        (vm_.os().guestMajorFaults() - guest_faults_before);
    const std::uint64_t total_ram_faults =
        hv.majorFaultsRam(vm_id) - ram_faults_before;
    // Only disk-tier faults queue on the shared disk; compressed-RAM
    // refaults cost a fixed decompression.
    disk_.recordFaults(total_faults - total_ram_faults);

    return finishEpoch(requests, request_faults, request_ram_faults,
                       total_faults);
}

std::uint64_t
ClientDriver::epochGfnBound(Tick epoch_ms) const
{
    // The cycle estimate never drops below think + service, so the
    // closed loop can never issue more requests than this (plus the
    // clientThreads floor and a thread of slack).
    const double min_cycle = spec_.thinkMs + spec_.serviceMs;
    const std::uint64_t requests =
        std::max<std::uint64_t>(
            spec_.clientThreads,
            static_cast<std::uint64_t>(
                static_cast<double>(epoch_ms) / min_cycle *
                spec_.clientThreads)) +
        spec_.clientThreads;

    double alloc_mul = 1.0, touch_mul = 1.0, header_mul = 1.0;
    for (const RequestOp &op : spec_.mix) {
        alloc_mul = std::max(alloc_mul, op.allocMul);
        touch_mul = std::max(touch_mul, op.touchMul);
        header_mul = std::max(header_mul, op.headerMul);
    }
    // Charge every write and every touch as a potential first-touch
    // gfn allocation (touches of file-backed pages can miss the page
    // cache and fill it).
    const std::uint64_t alloc_pages =
        bytesToPages(static_cast<Bytes>(
            static_cast<double>(spec_.allocPerRequestBytes) *
            alloc_mul)) + 2;
    const std::uint64_t touch_pages =
        static_cast<std::uint64_t>(
            (spec_.touchCodePages + spec_.touchHeapPages +
             spec_.touchClassPages + spec_.touchJitPages) *
            touch_mul) + 1;
    const std::uint64_t header_pages =
        static_cast<std::uint64_t>(
            spec_.headerMutationsPerRequest * header_mul) + 1;
    const std::uint64_t per_request =
        alloc_pages + touch_pages + header_pages;

    // GC writes land inside the heap VMA at offsets below the
    // allocation cursor (already mapped); the exceptions that can
    // demand fresh frames are the one-time headroom clear above the
    // trigger and, under Gencon, tenured growth from promotions.
    const std::uint64_t heap_pages = bytesToPages(spec_.gc.heapBytes);
    std::uint64_t gc_pages =
        static_cast<std::uint64_t>(
            static_cast<double>(heap_pages) *
            (1.0 - spec_.gc.gcTriggerFraction)) + 1;
    if (spec_.gc.policy == jvm::GcConfig::Policy::Gencon) {
        const std::uint64_t nursery_pages =
            bytesToPages(spec_.gc.nurseryBytes);
        if (nursery_pages > 0) {
            const std::uint64_t gcs =
                requests * alloc_pages /
                    std::max<std::uint64_t>(1, nursery_pages / 2) + 1;
            gc_pages += gcs * (static_cast<std::uint64_t>(
                                   static_cast<double>(nursery_pages) *
                                   spec_.gc.promoteFraction) + 1);
        }
    }

    // Warm-up loading (metaspace appends + shared-cache page-ins per
    // class, JIT code + scratch churn per compile), background NIO
    // and page-cache fills.
    const std::uint64_t warmup_pages =
        spec_.lazyClassesPerEpoch * 8ull +
        (spec_.jitCompilesPerEpoch + spec_.jitRecompilesPerEpoch) * 16ull;
    const std::uint64_t io_pages = spec_.nioRewritesPerEpoch +
                                   spec_.nioTouchesPerEpoch +
                                   spec_.guestCacheTouchesPerEpoch + 1;

    return requests * per_request + gc_pages + warmup_pages + io_pages;
}

bool
ClientDriver::stageable(Tick epoch_ms) const
{
    const auto &os = vm_.os();
    const std::uint64_t usable =
        os.guestPages() - os.balloonHeldPages();
    const std::uint64_t used = os.gfnsAllocated();
    const std::uint64_t free_frames = usable > used ? usable - used : 0;
    return free_frames >= epochGfnBound(epoch_ms);
}

bool
ClientDriver::stageEpoch(Tick epoch_ms, hv::WriteIntentLog &log)
{
    jtps_assert(!staged_.valid);
    if (!stageable(epoch_ms))
        return false;

    log.clear();
    auto &os = vm_.os();
    const std::uint64_t guest_faults_before = os.guestMajorFaults();
    os.beginStaging(&log);

    warmupWork();
    const std::uint64_t requests = plannedRequests(epoch_ms);
    runRequests(requests);

    // The fault-accounting bracket around the request phase closes
    // here: every hv call up to this watermark (warm-up included,
    // matching runEpoch's bracket) counts as request-path faulting.
    staged_.requestLogEnd = log.size();
    staged_.requestGuestFaults =
        os.guestMajorFaults() - guest_faults_before;

    vm_.nioActivity(spec_.nioRewritesPerEpoch, spec_.nioTouchesPerEpoch);
    const std::uint64_t misses_before = os.cacheMisses();
    os.touchFileSpace(spec_.guestCacheTouchesPerEpoch);
    staged_.cacheMissFaults = os.cacheMisses() - misses_before;
    staged_.totalGuestFaults =
        os.guestMajorFaults() - guest_faults_before;
    staged_.requests = requests;

    os.endStaging();
    staged_.valid = true;
    return true;
}

ClientDriver::EpochResult
ClientDriver::commitEpoch(Tick epoch_ms, hv::WriteIntentLog &log)
{
    (void)epoch_ms;
    jtps_assert(staged_.valid);
    auto &hv = vm_.os().hv();
    const VmId vm_id = vm_.os().vmId();
    const std::uint64_t faults_before = hv.majorFaults(vm_id);
    const std::uint64_t ram_faults_before = hv.majorFaultsRam(vm_id);

    // Replay in the same two brackets runEpoch measures in, so the
    // per-request fault split is identical to direct execution.
    log.replay(hv, vm_id, 0, staged_.requestLogEnd);
    const std::uint64_t request_faults =
        hv.majorFaults(vm_id) - faults_before +
        staged_.requestGuestFaults;
    const std::uint64_t request_ram_faults =
        hv.majorFaultsRam(vm_id) - ram_faults_before;

    log.replay(hv, vm_id, staged_.requestLogEnd, log.size());
    disk_.recordFaults(staged_.cacheMissFaults);
    const std::uint64_t total_faults =
        hv.majorFaults(vm_id) - faults_before +
        staged_.totalGuestFaults;
    const std::uint64_t total_ram_faults =
        hv.majorFaultsRam(vm_id) - ram_faults_before;
    disk_.recordFaults(total_faults - total_ram_faults);

    staged_.valid = false;
    return finishEpoch(staged_.requests, request_faults,
                       request_ram_faults, total_faults);
}

} // namespace jtps::workload
