/**
 * @file
 * Closed-loop client driver and the shared host disk model.
 *
 * Each guest VM's application server is exercised by a fixed number of
 * client threads (Table III: 12 for DayTrader, injection rate 15 for
 * SPECjEnterprise, ...) in a closed loop: think, send request, wait for
 * the response. Request service performs the real memory work against
 * the JVM model — allocation, header mutation, working-set touches — so
 * host-level major faults arise mechanically from the hypervisor's
 * paging, and the response time grows with the faults a request takes.
 *
 * All VMs share one host disk: when overcommit drives the aggregate
 * fault rate toward the disk's capacity, fault latency grows
 * queueing-style and throughput collapses — the dynamics behind the
 * paper's Figs. 7 and 8.
 */

#ifndef JTPS_WORKLOAD_CLIENT_DRIVER_HH
#define JTPS_WORKLOAD_CLIENT_DRIVER_HH

#include <cstdint>

#include "base/rng.hh"
#include "base/types.hh"
#include "hv/intent_log.hh"
#include "jvm/java_vm.hh"
#include "workload/workload_spec.hh"

namespace jtps::workload
{

/**
 * The host's swap disk, shared by every guest VM.
 *
 * Major-fault latency follows a simple open queue: at utilisation u of
 * the disk's fault IOPS, effective latency = base / (1 - u), with u
 * computed from the previous epoch's aggregate fault rate and capped
 * just below 1 so a saturated disk yields latencies two orders above
 * base — a thrashing host.
 */
class HostDisk
{
  public:
    /**
     * @param iops_capacity Sustainable major faults per second.
     * @param base_latency_ms Unloaded page-in latency.
     */
    explicit HostDisk(double iops_capacity = 120.0,
                      double base_latency_ms = 5.0)
        : iops_(iops_capacity), base_ms_(base_latency_ms)
    {
    }

    /** Start an accounting epoch of @p epoch_ms. */
    void
    beginEpoch(Tick epoch_ms)
    {
        epoch_ms_ = epoch_ms;
        faults_ = 0;
    }

    /** Record @p n major faults taken this epoch. */
    void recordFaults(std::uint64_t n) { faults_ += n; }

    /** Close the epoch: update the utilisation estimate. */
    void
    endEpoch()
    {
        const double rate =
            faults_ * 1000.0 / static_cast<double>(epoch_ms_);
        const double u = rate / iops_;
        // Smooth a little so one quiet epoch doesn't reset a thrashing
        // disk's queue.
        utilization_ = 0.3 * utilization_ + 0.7 * u;
    }

    /** Current effective per-fault latency in milliseconds. */
    double
    faultLatencyMs() const
    {
        const double u = utilization_ < 0.995 ? utilization_ : 0.995;
        return base_ms_ / (1.0 - u);
    }

    /** Previous-epoch utilisation estimate (can exceed 1 if saturated). */
    double utilization() const { return utilization_; }

  private:
    double iops_;
    double base_ms_;
    double utilization_ = 0.0;
    std::uint64_t faults_ = 0;
    Tick epoch_ms_ = 1;
};

/**
 * The closed-loop driver for one VM's application server.
 */
class ClientDriver
{
  public:
    /** Latency of a refault served from compressed RAM (decompress). */
    static constexpr double compressedRefaultMs = 0.05;

    /** Result of one measurement epoch. */
    struct EpochResult
    {
        double achievedPerSec = 0;  //!< requests per second
        double avgResponseMs = 0;   //!< service + fault time
        double faultsPerRequest = 0;
        std::uint64_t requests = 0; //!< requests executed this epoch
        std::uint64_t majorFaults = 0;
        bool slaMet = true;
    };

    ClientDriver(jvm::JavaVm &vm, const WorkloadSpec &spec,
                 HostDisk &disk);

    /**
     * Drive @p epoch_ms of load: execute the requests the closed loop
     * can issue at the current cycle time, performing their memory work
     * and measuring the faults they take.
     */
    EpochResult runEpoch(Tick epoch_ms);

    // ------------------------------------------------------------------
    // Staged execution (parallel tick batches)
    // ------------------------------------------------------------------

    /**
     * True when the next epoch may run in the parallel stage phase:
     * the guest has enough free frames to absorb the epoch's
     * worst-case page demand without guest-internal reclaim (a
     * reclaim may need to swap out anonymous pages, which reads
     * host-resident content). Guest-local and deterministic, so the
     * verdict is identical at any stage-thread count.
     */
    bool stageable(Tick epoch_ms) const;

    /**
     * Stage one epoch: run the epoch's guest-local work, appending
     * every hypervisor effect to @p log (cleared first) instead of
     * executing it. Returns false — with this driver untouched — when
     * the epoch is not stageable; otherwise commitEpoch() must run
     * (serially) before the next stage or runEpoch.
     */
    bool stageEpoch(Tick epoch_ms, hv::WriteIntentLog &log);

    /**
     * Replay the staged log through the hypervisor in log order and
     * assemble the EpochResult exactly as runEpoch would have,
     * including the shared-disk fault accounting.
     */
    EpochResult commitEpoch(Tick epoch_ms, hv::WriteIntentLog &log);

    /** True once lazy loading and JIT warm-up are finished. */
    bool warm() const { return warm_; }

    /** The driven JVM. */
    jvm::JavaVm &vm() { return vm_; }

  private:
    /**
     * Upper bound on guest frames one epoch can demand: worst-case
     * request count at the loop's floor cycle time, every write or
     * touch charged as a potential first-touch allocation, plus GC
     * headroom/promotion growth, warm-up loading, NIO and page-cache
     * fills. Deliberately generous — a false "not stageable" only
     * costs parallelism, a false "stageable" would panic.
     */
    std::uint64_t epochGfnBound(Tick epoch_ms) const;

    void warmupWork();
    std::uint64_t plannedRequests(Tick epoch_ms) const;
    void runRequests(std::uint64_t requests);
    EpochResult finishEpoch(std::uint64_t requests,
                            std::uint64_t request_faults,
                            std::uint64_t request_ram_faults,
                            std::uint64_t total_faults);

    /** Guest-local measurements captured at stage time, consumed by
     *  commitEpoch. */
    struct StagedEpoch
    {
        bool valid = false;
        std::uint64_t requests = 0;
        /** Log watermark separating request work from background I/O
         *  (the fault-accounting bracket boundary). */
        std::size_t requestLogEnd = 0;
        std::uint64_t requestGuestFaults = 0;
        std::uint64_t totalGuestFaults = 0;
        std::uint64_t cacheMissFaults = 0;
    };

    jvm::JavaVm &vm_;
    const WorkloadSpec &spec_;
    HostDisk &disk_;
    double cycle_ms_estimate_;
    bool warm_ = false;
    Rng mix_rng_;
    std::uint32_t mix_weight_ = 0; //!< cached totalMixWeight()
    StagedEpoch staged_;
};

} // namespace jtps::workload

#endif // JTPS_WORKLOAD_CLIENT_DRIVER_HH
