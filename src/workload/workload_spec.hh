/**
 * @file
 * Workload specifications: the Java programs the paper measures
 * (Tables II and III), as complete parameter sets for the JVM model and
 * the client driver.
 *
 *  - Apache DayTrader 2.0 on WebSphere Application Server 7.0.0.15
 *    (the paper's primary workload; Intel and POWER variants),
 *  - SPECjEnterprise 2010 on WAS (injection rate 15, gencon GC with
 *    200 MB tenured + 530 MB nursery),
 *  - TPC-W (Wisconsin Java implementation) on WAS,
 *  - Apache Tuscany 1.6.2 bigbank demo (no WAS; a small SCA server).
 */

#ifndef JTPS_WORKLOAD_WORKLOAD_SPEC_HH
#define JTPS_WORKLOAD_WORKLOAD_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/units.hh"
#include "jvm/class_model.hh"
#include "jvm/java_vm.hh"
#include "jvm/shared_class_cache.hh"

namespace jtps::workload
{

/**
 * One operation type of a workload's request mix (DayTrader: quote,
 * portfolio, buy/sell...). Work multipliers scale the per-request
 * memory behaviour, so heavy operations (order placement) allocate
 * and touch more than cheap ones (quotes).
 */
struct RequestOp
{
    std::string name;
    std::uint32_t weight = 1;  //!< relative frequency
    double allocMul = 1.0;     //!< x allocPerRequestBytes
    double touchMul = 1.0;     //!< x touch*Pages
    double headerMul = 1.0;    //!< x headerMutationsPerRequest
};

/** Everything needed to run one Java server workload in one guest VM. */
struct WorkloadSpec
{
    std::string name;       //!< "DayTrader"
    std::string version;    //!< "2.0"
    std::string middleware; //!< "WAS 7.0.0.15" / "Tuscany 1.6.2"

    jvm::ClassSetSpec classSpec;
    std::vector<jvm::LibImage> libs;
    jvm::GcConfig gc;
    jvm::JitConfig jit;

    /** Shared class cache size when class sharing is on (Table III). */
    Bytes sharedCacheBytes = 120 * MiB;
    /** Use AOT bodies from the cache when the scenario provides them. */
    bool useAotCache = false;
    /** Cache name; WAS uses one predefined name for all its processes. */
    std::string cacheName = "webspherev70";

    Bytes mallocUsedBytes = 45 * MiB;
    Bytes bulkZeroBytes = 4 * MiB;
    Bytes nioBufferBytes = 4 * MiB;

    std::uint32_t threadCount = 90;
    Bytes stackBytesPerThread = 256 * KiB;
    double stackTouchedFraction = 0.5;

    /** Guest VM memory (Table II). */
    Bytes guestMemBytes = 1 * GiB;

    // --- client driver (Table III) ------------------------------------
    std::uint32_t clientThreads = 12;
    double serviceMs = 30.0;  //!< CPU time per request
    double thinkMs = 300.0;   //!< client think time
    double slaMs = 250.0;     //!< response-time service level
    Bytes allocPerRequestBytes = 512 * KiB;
    std::uint32_t headerMutationsPerRequest = 2;
    std::uint32_t touchCodePages = 4;
    std::uint32_t touchHeapPages = 24;
    std::uint32_t touchClassPages = 6;
    std::uint32_t touchJitPages = 4;
    std::uint32_t nioRewritesPerEpoch = 16;
    std::uint32_t nioTouchesPerEpoch = 64;
    /**
     * Guest file-system activity per epoch (log appends, DB I/O, jar
     * re-reads): random page-cache touches that keep the kernel's
     * cache warm — without them the cache would be free eviction fodder
     * under overcommit and the Figs. 7-8 collapse would not reproduce.
     */
    std::uint32_t guestCacheTouchesPerEpoch = 1500;
    /** Lazy classes loaded per warm-up epoch. */
    std::uint32_t lazyClassesPerEpoch = 400;
    /** Methods JIT-compiled per warm-up epoch. */
    std::uint32_t jitCompilesPerEpoch = 120;
    /** Tier-up recompilations per steady-state epoch (code-cache
     *  churn; superseded bodies become dead space). */
    std::uint32_t jitRecompilesPerEpoch = 2;

    /**
     * Request mix (empty = homogeneous requests). Weights are
     * relative; multipliers scale the per-request memory work.
     */
    std::vector<RequestOp> mix;

    /** Sum of mix weights (0 when the mix is empty). */
    std::uint32_t totalMixWeight() const;
};

/** DayTrader 2.0 in WAS, Intel/KVM configuration (Tables I-III). */
WorkloadSpec dayTraderIntel();

/** DayTrader 2.0 in WAS, POWER/PowerVM configuration (1 GB heap,
 *  25 client threads, 3.5 GB guests, 100 MB cache). */
WorkloadSpec dayTraderPower();

/** SPECjEnterprise 2010 in WAS (injection rate 15, gencon). */
WorkloadSpec specjEnterprise2010();

/** TPC-W (Java implementation) in WAS. */
WorkloadSpec tpcwJava();

/** Apache Tuscany bigbank demo (32 MB heap, 25 MB cache). */
WorkloadSpec tuscanyBigbank();

/**
 * Assemble the JavaVmConfig for running @p spec with the given class
 * set and (optional) shared class cache.
 */
jvm::JavaVmConfig makeJvmConfig(const WorkloadSpec &spec,
                                const jvm::ClassSet &classes,
                                const jvm::SharedClassCache *cache);

} // namespace jtps::workload

#endif // JTPS_WORKLOAD_WORKLOAD_SPEC_HH
