#include "workload/workload_spec.hh"

#include "base/hash.hh"

namespace jtps::workload
{

namespace
{

/** Native libraries common to the J9 JVM. */
std::vector<jvm::LibImage>
j9Libs()
{
    return {
        {"libj9vm24.so", 4 * MiB, 8 * MiB},
        {"libj9jit24.so", 3 * MiB, 6 * MiB},
        {"libj9gc24.so", 1536 * KiB, 3 * MiB},
        {"libj9prt24.so+misc", 1536 * KiB, 5 * MiB},
    };
}

/** WAS adds its own native pieces on top of the JVM's. */
std::vector<jvm::LibImage>
wasLibs()
{
    auto libs = j9Libs();
    libs.push_back({"was-native+channelfw", 4 * MiB, 9 * MiB});
    return libs;
}

/** Class population of a WAS-hosted application. */
jvm::ClassSetSpec
wasClassSpec(const std::string &program, std::uint32_t app_classes)
{
    jvm::ClassSetSpec cs;
    cs.programName = program;
    cs.middlewareName = "WAS 7.0.0.15 / J9 Java6 SR9";
    cs.systemClasses = 1600;
    cs.middlewareClasses = 11400;
    cs.appClasses = app_classes;
    cs.avgRomBytes = 5450; // -> ~7.9 KiB mean after the size mixture
    cs.avgRamBytes = 360;
    cs.appUncacheableFraction = 0.5;
    cs.startupFraction = 0.75;
    return cs;
}

/** The DayTrader 2.0 operation mix (per its TradeScenarioServlet). */
std::vector<RequestOp>
dayTraderMix()
{
    return {
        {"quote", 40, 0.5, 0.8, 0.5},
        {"home", 20, 0.8, 1.0, 1.0},
        {"portfolio", 12, 1.5, 1.4, 1.5},
        {"buy", 8, 2.0, 1.3, 2.0},
        {"sell", 8, 2.0, 1.3, 2.0},
        {"login-logout", 8, 1.0, 0.9, 1.0},
        {"account-update", 4, 1.5, 1.1, 1.5},
    };
}

} // namespace

std::uint32_t
WorkloadSpec::totalMixWeight() const
{
    std::uint32_t total = 0;
    for (const RequestOp &op : mix)
        total += op.weight;
    return total;
}

WorkloadSpec
dayTraderIntel()
{
    WorkloadSpec w;
    w.name = "DayTrader";
    w.version = "2.0";
    w.middleware = "WAS 7.0.0.15";
    w.classSpec = wasClassSpec("WAS+DayTrader2.0", 800);
    w.libs = wasLibs();

    w.gc.policy = jvm::GcConfig::Policy::OptThruput;
    w.gc.heapBytes = 530 * MiB;   // Table III
    w.gc.liveFraction = 0.55;
    w.gc.gcTriggerFraction = 0.90;

    w.sharedCacheBytes = 120 * MiB; // Table III
    w.cacheName = "webspherev70";
    w.guestMemBytes = 1 * GiB;      // Table II

    w.clientThreads = 12;           // Table III
    w.serviceMs = 30.0;
    w.thinkMs = 300.0;
    w.slaMs = 250.0;
    w.mix = dayTraderMix();
    return w;
}

WorkloadSpec
dayTraderPower()
{
    WorkloadSpec w = dayTraderIntel();
    w.name = "DayTrader(POWER)";
    w.gc.heapBytes = 1 * GiB;        // Table III: 1.0 GB heap
    w.sharedCacheBytes = 100 * MiB;  // §V.B: 100 MB cache
    w.guestMemBytes = 3584ULL * MiB; // Table II: 3.5 GB guests
    w.clientThreads = 25;            // Table III
    // Larger heap, more client threads: more JVM-internal state.
    w.mallocUsedBytes = 60 * MiB;
    w.threadCount = 120;
    return w;
}

WorkloadSpec
specjEnterprise2010()
{
    WorkloadSpec w;
    w.name = "SPECjEnterprise";
    w.version = "1.02";
    w.middleware = "WAS 7.0.0.15";
    w.classSpec = wasClassSpec("WAS+SPECjEnterprise2010", 1400);
    w.libs = wasLibs();

    // §V.C: generational GC, 200 MB tenured + 530 MB nursery.
    w.gc.policy = jvm::GcConfig::Policy::Gencon;
    w.gc.heapBytes = 730 * MiB;
    w.gc.nurseryBytes = 530 * MiB;
    w.gc.nurserySurvivorFraction = 0.08;
    w.gc.promoteFraction = 0.012;

    w.sharedCacheBytes = 120 * MiB;
    w.guestMemBytes = 1280ULL * MiB; // Table II: 1.25 GB

    // Injection rate 15 (Table III): a closed loop whose steady rate is
    // ~24 EjOPS on this machine when responsive.
    w.clientThreads = 15;
    w.serviceMs = 40.0;
    w.thinkMs = 585.0;
    w.slaMs = 200.0;
    w.allocPerRequestBytes = 700 * KiB;
    return w;
}

WorkloadSpec
tpcwJava()
{
    WorkloadSpec w;
    w.name = "TPC-W";
    w.version = "Java impl (1.0.1 base)";
    w.middleware = "WAS 7.0.0.15";
    w.classSpec = wasClassSpec("WAS+TPC-W", 450);
    w.libs = wasLibs();

    w.gc.policy = jvm::GcConfig::Policy::OptThruput;
    w.gc.heapBytes = 512 * MiB; // Table III
    w.sharedCacheBytes = 120 * MiB;
    w.guestMemBytes = 1 * GiB;

    w.clientThreads = 10; // Table III
    w.serviceMs = 28.0;
    w.thinkMs = 320.0;
    w.slaMs = 250.0;
    w.allocPerRequestBytes = 420 * KiB;
    return w;
}

WorkloadSpec
tuscanyBigbank()
{
    WorkloadSpec w;
    w.name = "Tuscany-bigbank";
    w.version = "1.6.2";
    w.middleware = "Tuscany 1.6.2";

    jvm::ClassSetSpec cs;
    cs.programName = "Tuscany+bigbank";
    cs.middlewareName = "Tuscany 1.6.2 / J9 Java6 SR9";
    cs.systemClasses = 1500;
    cs.middlewareClasses = 2100;
    cs.appClasses = 160;
    cs.avgRomBytes = 4200;
    cs.avgRamBytes = 420;
    cs.appUncacheableFraction = 0.3; // no EJB container
    cs.startupFraction = 0.8;
    w.classSpec = cs;

    w.libs = j9Libs(); // no WAS native pieces

    w.gc.policy = jvm::GcConfig::Policy::OptThruput;
    w.gc.heapBytes = 32 * MiB;    // Table III
    w.sharedCacheBytes = 25 * MiB; // Table III
    w.cacheName = "tuscany-bigbank";
    w.guestMemBytes = 1 * GiB;

    w.mallocUsedBytes = 18 * MiB;
    w.bulkZeroBytes = 3 * MiB;
    w.nioBufferBytes = 2 * MiB;
    w.threadCount = 24;
    w.jit.codeCacheBytes = 10 * MiB;
    w.jit.scratchBytes = 5 * MiB;
    w.jit.scratchZeroBytes = 2 * MiB;

    w.clientThreads = 7; // Table III
    w.serviceMs = 22.0;
    w.thinkMs = 300.0;
    w.slaMs = 250.0;
    w.allocPerRequestBytes = 96 * KiB;
    w.touchHeapPages = 8;
    w.lazyClassesPerEpoch = 150;
    w.jitCompilesPerEpoch = 40;
    return w;
}

jvm::JavaVmConfig
makeJvmConfig(const WorkloadSpec &spec, const jvm::ClassSet &classes,
              const jvm::SharedClassCache *cache)
{
    jvm::JavaVmConfig cfg;
    cfg.libs = spec.libs;
    cfg.gc = spec.gc;
    cfg.jit = spec.jit;
    cfg.classes = &classes;
    cfg.sharedCache = cache;
    cfg.useAotCache = spec.useAotCache;
    cfg.mallocUsedBytes = spec.mallocUsedBytes;
    cfg.bulkZeroBytes = spec.bulkZeroBytes;
    cfg.nioBufferBytes = spec.nioBufferBytes;
    cfg.nioPayloadTag = hashCombine(stringTag("nio-payload"),
                                    stringTag(spec.name + spec.version));
    cfg.threadCount = spec.threadCount;
    cfg.stackBytesPerThread = spec.stackBytesPerThread;
    cfg.stackTouchedFraction = spec.stackTouchedFraction;
    return cfg;
}

} // namespace jtps::workload
