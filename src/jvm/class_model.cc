#include "jvm/class_model.hh"

#include "base/hash.hh"
#include "base/logging.hh"
#include "base/rng.hh"

namespace jtps::jvm
{

namespace
{

/**
 * Draw a class size around @p avg with a long-ish tail (most classes are
 * small; a few — generated EJB stubs, big framework classes — are much
 * larger), quantized to 64-byte chunks like a real class allocator.
 */
std::uint32_t
drawSize(Rng &rng, Bytes avg)
{
    // Mixture: 80% uniform in [avg/4, 1.5*avg], 20% tail up to 6*avg.
    double v;
    if (rng.bernoulli(0.8))
        v = avg * (0.25 + 1.25 * rng.nextDouble());
    else
        v = avg * (1.5 + 4.5 * rng.nextDouble());
    auto sz = static_cast<std::uint32_t>(v);
    sz = (sz + 63) & ~63u;
    return sz < 64 ? 64 : sz;
}

} // namespace

const char *
loaderName(LoaderKind kind)
{
    switch (kind) {
      case LoaderKind::Bootstrap:
        return "bootstrap";
      case LoaderKind::Middleware:
        return "middleware";
      case LoaderKind::WebApp:
        return "webapp";
      case LoaderKind::Ejb:
        return "ejb";
      case LoaderKind::NumLoaders:
        break;
    }
    return "?";
}

ClassSet
ClassSet::synthesize(const ClassSetSpec &spec)
{
    ClassSet set;
    set.program_ = spec.programName;

    // System and middleware classes derive from the middleware identity
    // (same JVM + WAS install => same classes in every program);
    // application classes derive from the program name.
    Rng mw_rng(hashCombine(stringTag("class-set-mw"),
                           stringTag(spec.middlewareName)));
    Rng app_rng(hashCombine(stringTag("class-set-app"),
                            stringTag(spec.programName)));

    const std::uint32_t total = spec.systemClasses +
                                spec.middlewareClasses + spec.appClasses;
    set.classes_.reserve(total);

    for (std::uint32_t id = 0; id < total; ++id) {
        ClassInfo ci;
        ci.id = id;
        if (id < spec.systemClasses)
            ci.origin = ClassOrigin::System;
        else if (id < spec.systemClasses + spec.middlewareClasses)
            ci.origin = ClassOrigin::Middleware;
        else
            ci.origin = ClassOrigin::Application;

        Rng &rng = ci.origin == ClassOrigin::Application ? app_rng
                                                         : mw_rng;
        ci.romBytes = drawSize(rng, spec.avgRomBytes);
        ci.ramBytes = drawSize(rng, spec.avgRamBytes);
        ci.cacheable = true;
        if (ci.origin == ClassOrigin::Application &&
            rng.bernoulli(spec.appUncacheableFraction)) {
            ci.cacheable = false; // EJB-style class loader
        }
        // Defining loader: system classes come from the bootstrap
        // loader, middleware classes from OSGi bundle loaders, and
        // application classes from web-module loaders — except the
        // EJB modules, whose loaders are not cache-aware (that is
        // exactly what makes them uncacheable above).
        switch (ci.origin) {
          case ClassOrigin::System:
            ci.loader = LoaderKind::Bootstrap;
            break;
          case ClassOrigin::Middleware:
            ci.loader = LoaderKind::Middleware;
            break;
          case ClassOrigin::Application:
            ci.loader = ci.cacheable ? LoaderKind::WebApp
                                     : LoaderKind::Ejb;
            break;
        }
        ci.startup = rng.bernoulli(spec.startupFraction);

        set.total_rom_ += ci.romBytes;
        set.total_ram_ += ci.ramBytes;
        set.classes_.push_back(ci);
    }
    return set;
}

const ClassInfo &
ClassSet::at(std::uint32_t id) const
{
    jtps_assert(id < classes_.size());
    return classes_[id];
}

std::vector<std::uint32_t>
ClassSet::canonicalOrder() const
{
    std::vector<std::uint32_t> order(classes_.size());
    for (std::uint32_t i = 0; i < order.size(); ++i)
        order[i] = i;
    return order;
}

} // namespace jtps::jvm
