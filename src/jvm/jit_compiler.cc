#include "jvm/jit_compiler.hh"

#include "base/hash.hh"
#include "base/logging.hh"

namespace jtps::jvm
{

JitCompiler::JitCompiler(guest::GuestOs &os, Pid pid, const JitConfig &cfg,
                         std::uint64_t proc_seed)
    : os_(os), pid_(pid), cfg_(cfg), proc_seed_(proc_seed),
      profile_fingerprint_(
          hashCombine(proc_seed, stringTag("jit-profile"))),
      rng_(hashCombine(proc_seed, stringTag("jit-rng")))
{
}

void
JitCompiler::init()
{
    jtps_assert(code_vma_ == nullptr);

    code_vma_ = os_.mmapAnon(pid_, cfg_.stubsBytes + cfg_.codeCacheBytes,
                             guest::MemCategory::JitCode, "jit-code-cache");
    work_vma_ = os_.mmapAnon(pid_, cfg_.scratchBytes + cfg_.scratchZeroBytes,
                             guest::MemCategory::JitWork, "jit-scratch");

    // Runtime stubs: generated from the JVM version alone, identical in
    // every process running this JVM build — the only shareable piece.
    stub_pages_ = bytesToPages(cfg_.stubsBytes);
    const std::uint64_t stub_tag = hashCombine(
        stringTag("jit-stubs"), stringTag(cfg_.jvmVersion));
    for (std::uint64_t p = 0; p < stub_pages_; ++p)
        os_.writePage(code_vma_, p, mem::PageData::filled(stub_tag, p));
    code_cursor_pages_ = stub_pages_;

    // Bulk-reserved scratch: committed but not yet used — zero pages.
    scratch_pages_ = bytesToPages(cfg_.scratchBytes);
    const std::uint64_t zero_pages = bytesToPages(cfg_.scratchZeroBytes);
    for (std::uint64_t p = 0; p < zero_pages; ++p)
        os_.writePage(work_vma_, scratch_pages_ + p,
                      mem::PageData::zero());
}

bool
JitCompiler::emitCode(std::uint32_t method_id, std::uint64_t code_pages,
                      std::uint8_t tier)
{
    const std::uint64_t cache_pages =
        bytesToPages(cfg_.stubsBytes + cfg_.codeCacheBytes);
    if (code_cursor_pages_ + code_pages > cache_pages)
        return false; // code cache full

    // Generated code mixes in the per-process profile fingerprint:
    // inlining decisions, biased branches, embedded addresses. The
    // tier changes the optimizer, so tiered bodies differ even from
    // their own tier-1 code.
    const std::uint64_t code_tag = hash4(
        stringTag("jit-method"), method_id, profile_fingerprint_, tier);
    for (std::uint64_t p = 0; p < code_pages; ++p)
        os_.writePage(code_vma_, code_cursor_pages_ + p,
                      mem::PageData::filled(code_tag, p));

    records_.push_back(
        MethodRecord{method_id, code_cursor_pages_, code_pages, tier});
    code_cursor_pages_ += code_pages;

    // Scratch churn: IL trees, register allocator tables. Rewritten
    // with per-compilation content, cycling through the scratch region.
    ++compilations_;
    const std::uint64_t scratch_tag =
        hash3(proc_seed_, stringTag("jit-scratch"), compilations_);
    const std::uint64_t scratch_use = (2 + tier) * code_pages;
    for (std::uint64_t i = 0; i < scratch_use; ++i) {
        os_.writePage(work_vma_, scratch_cursor_,
                      mem::PageData::filled(scratch_tag, i));
        scratch_cursor_ = (scratch_cursor_ + 1) % scratch_pages_;
    }
    return true;
}

bool
JitCompiler::compileMethod(std::uint32_t method_id)
{
    jtps_assert(code_vma_ != nullptr);

    // Method code size: avg +- 50%, at least one page's worth of cache.
    const Bytes code_bytes = static_cast<Bytes>(
        cfg_.avgMethodCodeBytes * (0.5 + rng_.nextDouble()));
    const std::uint64_t code_pages = std::max<std::uint64_t>(
        1, bytesToPages(code_bytes));
    if (!emitCode(method_id, code_pages, 1))
        return false;
    ++methods_;
    return true;
}

std::uint32_t
JitCompiler::recompileHottest(std::uint32_t count)
{
    std::uint32_t done = 0;
    while (done < count && next_tierup_ < records_.size()) {
        // Promote in compile order (oldest hot methods first); skip
        // bodies already at the top tier. Copy the record: emitCode
        // grows records_ and would invalidate a reference.
        const std::size_t idx = next_tierup_;
        const MethodRecord rec = records_[idx];
        if (rec.tier >= 2) {
            ++next_tierup_;
            continue;
        }
        // Optimized bodies are larger (inlining).
        if (!emitCode(rec.methodId, rec.pages * 2, 2))
            break; // cache full
        // The superseded body stays behind as dead space.
        dead_code_pages_ += rec.pages;
        records_[idx].tier = 2; // marks the dead range's origin
        ++next_tierup_;
        ++recompiled_;
        ++done;
    }
    return done;
}

void
JitCompiler::touchCode(std::uint32_t pages, Rng &rng)
{
    if (code_cursor_pages_ == 0)
        return;
    for (std::uint32_t i = 0; i < pages; ++i)
        os_.touch(code_vma_, rng.nextBelow(code_cursor_pages_));
}

} // namespace jtps::jvm
