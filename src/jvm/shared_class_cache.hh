/**
 * @file
 * The shared class cache — the JVM class-sharing feature the paper's
 * technique is built on (J9 `-Xshareclasses ... persistent`, HotSpot
 * Class Data Sharing).
 *
 * The cache is a memory-mapped file holding the ROM (read-only) part of
 * each stored class at a fixed offset. The paper's technique is to
 * populate this file once on the base disk image and *copy it to every
 * guest VM*, so the class-area layout — and therefore the page content —
 * is byte-identical across VMs and TPS can merge it.
 *
 * The model captures exactly what matters for that:
 *  - a deterministic layout: classes in canonical first-load order,
 *    each occupying a contiguous run of 512-byte sectors;
 *  - a *content tag* derived from the layout, so two VMs share cache
 *    pages iff they were handed byte-identical cache files (copying the
 *    file shares; repopulating locally does not — the ablation bench
 *    measures this difference);
 *  - the capacity limit of Table III (e.g. 120 MB for WAS) — classes
 *    past the limit fall back to private memory;
 *  - non-cacheable (EJB-class-loader) classes are never stored.
 */

#ifndef JTPS_JVM_SHARED_CLASS_CACHE_HH
#define JTPS_JVM_SHARED_CLASS_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"
#include "base/units.hh"
#include "guest/file_image.hh"
#include "jvm/class_model.hh"

namespace jtps::jvm
{

/** Bytes per cache sector (allocation granularity inside the cache). */
constexpr Bytes cacheSectorBytes = 512;

/** Which classes a cache population stores. */
enum class CacheScope : std::uint8_t
{
    /**
     * The paper's base-image deployment (§IV.C): the cache is
     * pre-populated with middleware and system classes only, by running
     * the middleware once on the base image. Application classes stay
     * private — "this base-image-oriented approach can prevent sharing
     * the classes of user applications ... but it is sufficient".
     * Programs on the same middleware get byte-identical caches.
     */
    MiddlewareOnly,
    /** Store every cacheable class, including the application's. */
    AllCacheable,
};

/**
 * A populated, persistent shared class cache file.
 */
class SharedClassCache
{
  public:
    /**
     * Populate a cache by "running the middleware once" on the base
     * image (paper §IV.C): walk the program's classes in canonical
     * first-load order, storing each cacheable class's ROM part while
     * space remains.
     *
     * @param classes   The program's class set.
     * @param cache_name Cache name (J9 allows one cache per program;
     *                  WAS uses a predefined name so all WAS processes
     *                  share one cache).
     * @param max_bytes Configured cache size (Table III).
     * @param scope     Which classes to store (see CacheScope).
     * @param population_salt Distinguishes independent populations: two
     *                  caches built with different salts model caches
     *                  populated separately in each VM (different
     *                  layout internals → no cross-VM sharing). The
     *                  paper's technique uses ONE population copied
     *                  everywhere, i.e. the same salt.
     */
    static SharedClassCache build(const ClassSet &classes,
                                  const std::string &cache_name,
                                  Bytes max_bytes,
                                  CacheScope scope =
                                      CacheScope::MiddlewareOnly,
                                  std::uint64_t population_salt = 0);

    /** True if the class's ROM part is stored in the cache. */
    bool
    contains(std::uint32_t class_id) const
    {
        return class_id < offset_sector_.size() &&
               offset_sector_[class_id] != UINT64_MAX;
    }

    /**
     * Sector range [first, last) occupied by a cached class's ROM data.
     * Only valid if contains(class_id).
     */
    std::pair<std::uint64_t, std::uint64_t>
    sectorRange(std::uint32_t class_id) const;

    /** Bytes of ROM data stored. */
    Bytes usedBytes() const { return used_bytes_; }

    /** Configured capacity. */
    Bytes maxBytes() const { return max_bytes_; }

    /** Number of classes stored. */
    std::uint32_t storedClasses() const { return stored_classes_; }

    /** Bytes stored for classes of @p origin (paper §V.A provenance). */
    Bytes storedBytesByOrigin(ClassOrigin origin) const;

    /**
     * The cache file. Copying this FileImage into several guests is the
     * paper's deployment step: all copies carry the same content tag.
     */
    const guest::FileImage &file() const { return file_; }

    /** Cache name. */
    const std::string &name() const { return name_; }

    // ------------------------------------------------------------------
    // AOT code section (extension beyond the paper)
    // ------------------------------------------------------------------
    //
    // J9's shared class cache can also hold ahead-of-time compiled
    // method bodies. AOT code is compiled *without* run-specific
    // profile data, so — unlike JIT output — it is byte-identical
    // across processes and VMs. This is the natural follow-up to the
    // paper's observation that the JIT-compiled-code area cannot share:
    // move the code into the copied cache and it can.

    /**
     * Append an AOT section holding bodies for methods [0, count) in
     * order, subject to @p budget bytes. Method body sizes derive from
     * the cache identity, so copies stay byte-identical.
     */
    void addAotSection(std::uint32_t method_count,
                       Bytes avg_method_bytes, Bytes budget);

    /** True if an AOT section was populated. */
    bool hasAot() const { return aot_methods_ > 0; }

    /** Methods stored in the AOT section. */
    std::uint32_t aotMethods() const { return aot_methods_; }

    /** True if @p method_id has an AOT body. */
    bool
    containsAotMethod(std::uint32_t method_id) const
    {
        return method_id < aot_methods_;
    }

    /** Sector range of a stored AOT body within the AOT file. */
    std::pair<std::uint64_t, std::uint64_t>
    aotSectorRange(std::uint32_t method_id) const;

    /**
     * The AOT section as its own mappable image (same archive, mapped
     * executable — kept separate so the analysis attributes it to the
     * JIT-code category, where the paper's Table IV would put it).
     */
    const guest::FileImage &aotFile() const { return aot_file_; }

  private:
    SharedClassCache()
        : file_(guest::FileImage::shared("empty", 0)),
          aot_file_(guest::FileImage::shared("empty-aot", 0))
    {
    }

    std::string name_;
    Bytes max_bytes_ = 0;
    Bytes used_bytes_ = 0;
    std::uint32_t stored_classes_ = 0;
    /** Per class id: first sector, or UINT64_MAX if not stored. */
    std::vector<std::uint64_t> offset_sector_;
    std::vector<std::uint64_t> end_sector_;
    Bytes origin_bytes_[3] = {0, 0, 0};
    guest::FileImage file_;

    std::uint32_t aot_methods_ = 0;
    std::vector<std::uint64_t> aot_offset_sector_;
    std::vector<std::uint64_t> aot_end_sector_;
    guest::FileImage aot_file_;
};

} // namespace jtps::jvm

#endif // JTPS_JVM_SHARED_CLASS_CACHE_HH
