#include "jvm/java_vm.hh"

#include "base/hash.hh"
#include "base/logging.hh"

namespace jtps::jvm
{

JavaVm::JavaVm(guest::GuestOs &os, const JavaVmConfig &cfg,
               const std::string &proc_name)
    : os_(os), cfg_(cfg),
      pid_(os.spawn(proc_name, /*is_java=*/true)),
      proc_seed_(hash3(stringTag("java-proc"), os.seed(), pid_)),
      rng_(hashCombine(proc_seed_, stringTag("jvm-rng")))
{
    jtps_assert(cfg_.classes != nullptr);
    heap_ = std::make_unique<JavaHeap>(os_, pid_, cfg_.gc, proc_seed_);
    jit_ = std::make_unique<JitCompiler>(os_, pid_, cfg_.jit, proc_seed_);
    class_loaded_.assign(cfg_.classes->size(), false);
}

std::uint64_t
JavaVm::appendMetaspace(LoaderKind loader, std::uint64_t sectors,
                        std::uint64_t tag)
{
    const auto idx = static_cast<std::size_t>(loader);
    guest::Vma *vma = loader_metaspace_[idx];
    jtps_assert(vma != nullptr);
    const std::uint64_t start = loader_cursor_[idx];
    for (std::uint64_t k = 0; k < sectors; ++k) {
        const std::uint64_t s = start + k;
        os_.writeWord(vma, s / mem::sectorsPerPage,
                      static_cast<unsigned>(s % mem::sectorsPerPage),
                      hashCombine(tag, k));
    }
    loader_cursor_[idx] += sectors;
    return start;
}

std::uint64_t
JavaVm::loaderMetaspacePages(LoaderKind loader) const
{
    const auto idx = static_cast<std::size_t>(loader);
    return loader_cursor_[idx] / mem::sectorsPerPage +
           (loader_cursor_[idx] % mem::sectorsPerPage ? 1 : 0);
}

std::uint64_t
JavaVm::metaspacePages() const
{
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < numLoaderKinds; ++i)
        total += loaderMetaspacePages(static_cast<LoaderKind>(i));
    return total;
}

void
JavaVm::loadClass(std::uint32_t id)
{
    jtps_assert(!class_loaded_[id]);
    const ClassInfo &ci = cfg_.classes->at(id);

    if (cfg_.sharedCache && cfg_.sharedCache->contains(id)) {
        // ROM class comes from the memory-mapped cache file: touching
        // it populates the page cache with the file's (copied,
        // identical-across-VMs) content.
        auto [first, last] = cfg_.sharedCache->sectorRange(id);
        const std::uint64_t first_page = first / mem::sectorsPerPage;
        const std::uint64_t last_page =
            (last + mem::sectorsPerPage - 1) / mem::sectorsPerPage;
        for (std::uint64_t p = first_page;
             p < last_page && p < cache_vma_->numPages; ++p) {
            os_.touch(cache_vma_, p);
        }
    } else {
        // Private ROM class: sector content depends only on the class
        // (same in every process), but *placement* follows this
        // process's load order, so page contents diverge.
        const std::uint64_t rom_sectors =
            (ci.romBytes + cacheSectorBytes - 1) / cacheSectorBytes;
        const std::uint64_t rom_start = appendMetaspace(
            ci.loader, rom_sectors, hash3(stringTag("rom-class"), id, 0));

        // Interpreter quickening: executed bytecode is rewritten in
        // place with resolved constant-pool-cache indices, whose values
        // are process-specific addresses/slots. (A shared-cache ROM
        // class is never quickened in place — the writable companion
        // data lives in the RAM class — which is why cached classes
        // stay shareable and private ones do not.)
        guest::Vma *seg =
            loader_metaspace_[static_cast<std::size_t>(ci.loader)];
        const std::uint64_t quickens = 2 + rom_sectors / 4;
        for (std::uint64_t q = 0; q < quickens; ++q) {
            const std::uint64_t s =
                rom_start + hash3(id, q, stringTag("qpos")) % rom_sectors;
            os_.writeWord(seg, s / mem::sectorsPerPage,
                          static_cast<unsigned>(s % mem::sectorsPerPage),
                          hash4(proc_seed_, stringTag("quicken"), id, q));
        }
    }

    // RAM class: vtables and resolved references hold per-process
    // pointers; never shareable.
    const std::uint64_t ram_sectors =
        (ci.ramBytes + cacheSectorBytes - 1) / cacheSectorBytes;
    appendMetaspace(ci.loader, ram_sectors,
                    hash3(proc_seed_, stringTag("ram-class"), id));

    class_loaded_[id] = true;
    ++classes_loaded_;
}

void
JavaVm::start()
{
    jtps_assert(!started_);
    started_ = true;

    // --- Code area: native libraries ---------------------------------
    for (const LibImage &lib : cfg_.libs) {
        if (lib.textBytes > 0) {
            guest::FileImage text = guest::FileImage::shared(
                "lib/" + lib.name, lib.textBytes);
            guest::Vma *vma =
                os_.mmapFile(pid_, text, guest::MemCategory::Code);
            for (std::uint64_t p = 0; p < vma->numPages; ++p)
                os_.touch(vma, p);
        }
        if (lib.dataBytes > 0) {
            guest::Vma *vma = os_.mmapAnon(
                pid_, lib.dataBytes, guest::MemCategory::Code,
                lib.name + ".data");
            const std::uint64_t tag =
                hash3(proc_seed_, stringTag(lib.name), stringTag(".data"));
            for (std::uint64_t p = 0; p < vma->numPages; ++p)
                os_.writePage(vma, p, mem::PageData::filled(tag, p));
        }
    }

    // --- Thread stacks -------------------------------------------------
    const std::uint64_t stack_pages_per_thread =
        bytesToPages(cfg_.stackBytesPerThread);
    stack_vma_ = os_.mmapAnon(
        pid_, cfg_.threadCount * cfg_.stackBytesPerThread,
        guest::MemCategory::Stack, "thread-stacks");
    const auto touched = static_cast<std::uint64_t>(
        stack_pages_per_thread * cfg_.stackTouchedFraction);
    for (std::uint32_t t = 0; t < cfg_.threadCount; ++t) {
        const std::uint64_t tag =
            hash3(proc_seed_, stringTag("stack"), t);
        for (std::uint64_t p = 0; p < touched; ++p) {
            os_.writePage(stack_vma_, t * stack_pages_per_thread + p,
                          mem::PageData::filled(tag, p));
        }
    }

    // --- Class metadata -------------------------------------------------
    // One metaspace segment chain per class loader; size each to the
    // loader's share of the class population (virtual reservation).
    Bytes loader_bytes[numLoaderKinds] = {};
    for (const ClassInfo &ci : cfg_.classes->classes()) {
        loader_bytes[static_cast<std::size_t>(ci.loader)] +=
            ci.romBytes + ci.ramBytes;
    }
    for (std::size_t i = 0; i < numLoaderKinds; ++i) {
        const auto kind = static_cast<LoaderKind>(i);
        const Bytes reserve =
            static_cast<Bytes>(loader_bytes[i] * 1.25) + 64 * KiB;
        loader_metaspace_[i] = os_.mmapAnon(
            pid_, reserve, guest::MemCategory::ClassMetadata,
            std::string("metaspace-") + loaderName(kind));
    }
    if (cfg_.sharedCache) {
        cache_vma_ = os_.mmapFile(pid_, cfg_.sharedCache->file(),
                                  guest::MemCategory::ClassMetadata);
        if (cfg_.useAotCache && cfg_.sharedCache->hasAot()) {
            // The archive's AOT section maps executable; Table IV puts
            // generated code in the JIT-compiled-code category.
            aot_vma_ = os_.mmapFile(pid_, cfg_.sharedCache->aotFile(),
                                    guest::MemCategory::JitCode);
        }
    }

    // Load order: canonical first-use order, perturbed by this
    // process's thread timing (the paper's layout nondeterminism).
    load_order_ = cfg_.classes->canonicalOrder();
    Rng order_rng(hashCombine(proc_seed_, stringTag("load-order")));
    order_rng.perturbOrder(load_order_, cfg_.loadOrderJitter,
                           cfg_.loadOrderWindow);

    for (std::uint32_t id : load_order_) {
        if (cfg_.classes->at(id).startup)
            loadClass(id);
    }

    // --- Heap, JIT --------------------------------------------------
    heap_->init();
    jit_->init();

    // --- JVM work area ------------------------------------------------
    malloc_vma_ = os_.mmapAnon(pid_, cfg_.mallocUsedBytes,
                               guest::MemCategory::JvmWork,
                               "malloc-arenas");
    const std::uint64_t malloc_tag =
        hashCombine(proc_seed_, stringTag("malloc"));
    for (std::uint64_t p = 0; p < malloc_vma_->numPages; ++p)
        os_.writePage(malloc_vma_, p,
                      mem::PageData::filled(malloc_tag, p));

    bulk_vma_ = os_.mmapAnon(pid_, cfg_.bulkZeroBytes,
                             guest::MemCategory::JvmWork,
                             "bulk-reserved");
    for (std::uint64_t p = 0; p < bulk_vma_->numPages; ++p)
        os_.writePage(bulk_vma_, p, mem::PageData::zero());

    nio_vma_ = os_.mmapAnon(pid_, cfg_.nioBufferBytes,
                            guest::MemCategory::JvmWork, "nio-buffers");
    for (std::uint64_t p = 0; p < nio_vma_->numPages; ++p)
        os_.writePage(nio_vma_, p,
                      mem::PageData::filled(cfg_.nioPayloadTag, p));
}

std::uint32_t
JavaVm::loadLazyClasses(std::uint32_t max_classes)
{
    std::uint32_t loaded = 0;
    while (loaded < max_classes && lazy_cursor_ < load_order_.size()) {
        const std::uint32_t id = load_order_[lazy_cursor_++];
        if (class_loaded_[id])
            continue;
        loadClass(id);
        ++loaded;
    }
    return loaded;
}

std::uint32_t
JavaVm::compileHotMethods(std::uint32_t count)
{
    std::uint32_t compiled = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint32_t method = next_method_;
        if (aot_vma_ != nullptr &&
            cfg_.sharedCache->containsAotMethod(method)) {
            // Relocate-and-run from the shared AOT body: touch its
            // pages in the copied archive — identical across VMs.
            auto [first, last] = cfg_.sharedCache->aotSectorRange(method);
            const std::uint64_t first_page = first / mem::sectorsPerPage;
            const std::uint64_t last_page =
                (last + mem::sectorsPerPage - 1) / mem::sectorsPerPage;
            for (std::uint64_t p = first_page;
                 p < last_page && p < aot_vma_->numPages; ++p) {
                os_.touch(aot_vma_, p);
            }
            ++next_method_;
            ++aot_loaded_;
            ++compiled;
            continue;
        }
        if (!jit_->compileMethod(next_method_))
            break;
        ++next_method_;
        ++compiled;
    }
    return compiled;
}

std::uint32_t
JavaVm::recompileHotMethods(std::uint32_t count)
{
    return jit_->recompileHottest(count);
}

void
JavaVm::allocate(Bytes bytes)
{
    heap_->allocate(bytes);
}

void
JavaVm::mutateHeaders(std::uint32_t count)
{
    heap_->mutateHeaders(count, rng_);
}

void
JavaVm::touchWorkingSet(std::uint32_t code_pages,
                        std::uint32_t heap_pages,
                        std::uint32_t class_pages,
                        std::uint32_t jit_pages)
{
    // Code: any touched library page may be re-executed.
    const guest::GuestProcess &proc = os_.process(pid_);
    for (std::uint32_t i = 0; i < code_pages && !proc.vmas.empty(); ++i) {
        const auto &vma = proc.vmas[rng_.nextBelow(proc.vmas.size())];
        if (vma->category == guest::MemCategory::Code &&
            vma->numPages > 0) {
            os_.touch(vma.get(), rng_.nextBelow(vma->numPages));
        }
    }

    heap_->touchLive(heap_pages, rng_);

    // Class metadata: method bytecodes re-interpreted, vtables walked.
    // Hot classes (request-path servlets, collections) take most
    // touches; the long tail of one-time configuration classes is cold.
    const std::uint64_t meta_pages = metaspacePages();
    for (std::uint32_t i = 0; i < class_pages; ++i) {
        const bool hot = rng_.bernoulli(JavaHeap::hotProbability);
        if (cache_vma_ && rng_.bernoulli(0.7)) {
            const std::uint64_t n = cache_vma_->numPages;
            const std::uint64_t bound = hot
                ? std::max<std::uint64_t>(1, n / 4) : n;
            os_.touch(cache_vma_, rng_.nextBelow(bound));
        } else if (meta_pages > 0) {
            // Sample a loader segment proportionally to its size.
            std::uint64_t pick = rng_.nextBelow(meta_pages);
            for (std::size_t l = 0; l < numLoaderKinds; ++l) {
                const auto kind = static_cast<LoaderKind>(l);
                const std::uint64_t seg = loaderMetaspacePages(kind);
                if (pick < seg) {
                    const std::uint64_t bound = hot
                        ? std::max<std::uint64_t>(1, seg / 4) : seg;
                    os_.touch(loader_metaspace_[l],
                              rng_.nextBelow(bound));
                    break;
                }
                pick -= seg;
            }
        }
    }

    jit_->touchCode(jit_pages, rng_);
}

void
JavaVm::nioActivity(std::uint32_t rewrites, std::uint32_t touches)
{
    if (nio_vma_ == nullptr || nio_vma_->numPages == 0)
        return;
    for (std::uint32_t i = 0; i < rewrites; ++i) {
        const std::uint64_t p = rng_.nextBelow(nio_vma_->numPages);
        // Re-receiving the same benchmark payload: identical bytes, but
        // the write itself COW-breaks any established sharing.
        os_.writePage(nio_vma_, p,
                      mem::PageData::filled(cfg_.nioPayloadTag, p));
    }
    for (std::uint32_t i = 0; i < touches; ++i)
        os_.touch(nio_vma_, rng_.nextBelow(nio_vma_->numPages));
}

} // namespace jtps::jvm
