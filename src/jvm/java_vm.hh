/**
 * @file
 * The Java VM model: one running Java process inside a guest.
 *
 * Composes the submodels into the seven memory areas of the paper's
 * Table IV:
 *
 *   Code area        — mmap'd native library text (file-backed,
 *                      identical across processes) + private data
 *                      sections, GOT/PLT relocations.
 *   Class metadata   — ROM classes + RAM classes, laid out by the
 *                      class loader in *perturbed first-load order*
 *                      (the thread-timing nondeterminism the paper
 *                      blames) — or, with a shared class cache, ROM
 *                      classes mapped from the copied cache file.
 *   JIT-compiled code / JIT work — JitCompiler.
 *   Java heap        — JavaHeap (GC movement + zero-fill).
 *   JVM work area    — malloc'd internals (private), bulk-reserved
 *                      zero pages, and NIO socket buffers whose content
 *                      is the benchmark payload (identical across VMs
 *                      running the same benchmark — paper §III.A).
 *   Stack            — per-thread C+Java stacks full of pointers.
 */

#ifndef JTPS_JVM_JAVA_VM_HH
#define JTPS_JVM_JAVA_VM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "base/units.hh"
#include "guest/guest_os.hh"
#include "jvm/class_model.hh"
#include "jvm/java_heap.hh"
#include "jvm/jit_compiler.hh"
#include "jvm/shared_class_cache.hh"

namespace jtps::jvm
{

/** One native library of the JVM / middleware. */
struct LibImage
{
    std::string name;
    Bytes textBytes = 0; //!< file-backed, shareable
    Bytes dataBytes = 0; //!< .data/.bss/GOT — dirtied privately
};

/** Full configuration of a Java process. */
struct JavaVmConfig
{
    std::string jvmVersion = "IBM J9 VM (Java 6 SR9)";
    std::vector<LibImage> libs;
    GcConfig gc;
    JitConfig jit;

    /** The program's classes (shared across all VMs running it). */
    const ClassSet *classes = nullptr;
    /** Shared class cache; nullptr disables class sharing. */
    const SharedClassCache *sharedCache = nullptr;
    /**
     * Load AOT method bodies from the cache's AOT section when
     * available instead of JIT-compiling them (extension: makes part
     * of the otherwise-unshareable JIT-code area TPS-shareable).
     */
    bool useAotCache = false;
    /** Probability of a thread-timing swap in the load order. */
    double loadOrderJitter = 0.35;
    /** Max distance of a load-order swap. */
    std::uint32_t loadOrderWindow = 8;

    Bytes mallocUsedBytes = 45 * MiB; //!< JVM-internal allocations
    Bytes bulkZeroBytes = 4 * MiB;    //!< reserved-but-unused (zero)
    Bytes nioBufferBytes = 4 * MiB;   //!< NIO socket buffers
    /** Payload tag: same benchmark => same buffer content across VMs. */
    std::uint64_t nioPayloadTag = 0;

    std::uint32_t threadCount = 90;
    Bytes stackBytesPerThread = 256 * KiB;
    double stackTouchedFraction = 0.5;
};

/**
 * A running Java process.
 */
class JavaVm
{
  public:
    /**
     * Spawn the Java process in @p os. Call start() to boot it.
     */
    JavaVm(guest::GuestOs &os, const JavaVmConfig &cfg,
           const std::string &proc_name = "java");

    JavaVm(const JavaVm &) = delete;
    JavaVm &operator=(const JavaVm &) = delete;

    /**
     * Boot the JVM and middleware: map code, create stacks, initialize
     * heap/JIT/work areas, and load all startup classes (through the
     * shared cache when configured).
     */
    void start();

    // ------------------------------------------------------------------
    // Steady-state behaviours (invoked by the workload driver)
    // ------------------------------------------------------------------

    /** Load up to @p max_classes not-yet-loaded lazy classes. */
    std::uint32_t loadLazyClasses(std::uint32_t max_classes);

    /** Compile up to @p count hot methods. @return methods compiled. */
    std::uint32_t compileHotMethods(std::uint32_t count);

    /** Tier-up recompile up to @p count methods (steady-state churn). */
    std::uint32_t recompileHotMethods(std::uint32_t count);

    /** Allocate @p bytes of objects (may GC). */
    void allocate(Bytes bytes);

    /** Mutate @p count object headers. */
    void mutateHeaders(std::uint32_t count);

    /** Touch the request working set (drives host LRU + swap-ins). */
    void touchWorkingSet(std::uint32_t code_pages,
                         std::uint32_t heap_pages,
                         std::uint32_t class_pages,
                         std::uint32_t jit_pages);

    /**
     * NIO activity: buffers are re-filled with the benchmark payload on
     * @p rewrites connections and read (touched) on the rest.
     */
    void nioActivity(std::uint32_t rewrites, std::uint32_t touches);

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    Pid pid() const { return pid_; }
    std::uint64_t procSeed() const { return proc_seed_; }
    JavaHeap &heap() { return *heap_; }
    JitCompiler &jit() { return *jit_; }
    guest::GuestOs &os() { return os_; }

    std::uint32_t classesLoaded() const { return classes_loaded_; }

    /** Methods loaded from the cache's AOT section. */
    std::uint32_t aotMethodsLoaded() const { return aot_loaded_; }
    bool
    allClassesLoaded() const
    {
        return classes_loaded_ == cfg_.classes->size();
    }

    /** Pages currently used across all private metaspace segments. */
    std::uint64_t metaspacePages() const;

    /** Pages used in one loader's metaspace segment. */
    std::uint64_t loaderMetaspacePages(LoaderKind loader) const;

  private:
    void loadClass(std::uint32_t id);

    /** Append @p sectors of data to @p loader's metaspace segment.
     *  Content of sector k is hash(tag, k): identical across
     *  processes, but page content depends on placement, hence on
     *  load order. @return the segment-relative start sector. */
    std::uint64_t appendMetaspace(LoaderKind loader,
                                  std::uint64_t sectors,
                                  std::uint64_t tag);

    guest::GuestOs &os_;
    JavaVmConfig cfg_;
    Pid pid_;
    std::uint64_t proc_seed_;
    Rng rng_;

    std::unique_ptr<JavaHeap> heap_;
    std::unique_ptr<JitCompiler> jit_;

    /** Per-class-loader metaspace segments (bootstrap, middleware,
     *  webapp, EJB) — real metaspaces are per-loader regions. */
    guest::Vma *loader_metaspace_[numLoaderKinds] = {};
    std::uint64_t loader_cursor_[numLoaderKinds] = {};
    guest::Vma *cache_vma_ = nullptr;
    guest::Vma *aot_vma_ = nullptr;
    guest::Vma *malloc_vma_ = nullptr;
    guest::Vma *bulk_vma_ = nullptr;
    guest::Vma *nio_vma_ = nullptr;
    guest::Vma *stack_vma_ = nullptr;

    std::vector<std::uint32_t> load_order_;
    std::size_t lazy_cursor_ = 0;
    std::vector<bool> class_loaded_;
    std::uint32_t classes_loaded_ = 0;
    std::uint32_t next_method_ = 0;
    std::uint32_t aot_loaded_ = 0;
    bool started_ = false;
};

} // namespace jtps::jvm

#endif // JTPS_JVM_JAVA_VM_HH
