/**
 * @file
 * The Java class model.
 *
 * A ClassSet is the set of classes a given Java program (middleware +
 * application) loads, with per-class sizes split the way the J9/HotSpot
 * class representation splits them:
 *
 *  - ROM class: the immutable part — bytecodes, constant pool, string
 *    literals, debug data. This is what the class-sharing feature can
 *    place in the shared class cache (paper §IV.B: "we can automatically
 *    extract most of the read-only data in the class metadata").
 *  - RAM class: the mutable runtime part — vtables, itables, statics,
 *    resolution state ("the writable data structures, such as the method
 *    table, are created in private memory areas").
 *
 * A ClassSet is a property of the *program*, so one instance is shared
 * by every VM running that program; per-process differences come only
 * from load order and placement, which is the paper's point.
 */

#ifndef JTPS_JVM_CLASS_MODEL_HH
#define JTPS_JVM_CLASS_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"
#include "base/units.hh"

namespace jtps::jvm
{

/** Origin of a class, used for the paper's §V.A provenance breakdown. */
enum class ClassOrigin : std::uint8_t
{
    System,     //!< java.*, javax.*, sun.*, org.apache.harmony.*
    Middleware, //!< WAS / Tuscany, incl. OSGi framework and derby
    Application //!< the deployed app (DayTrader EJBs, servlets, ...)
};

/**
 * The class loader that defines a class. Each loader allocates class
 * metadata from its own segments, so the metaspace is really a set of
 * per-loader regions — and, per the paper (§V.A), the EJB application
 * loaders are the ones that are not shared-class-cache aware.
 */
enum class LoaderKind : std::uint8_t
{
    Bootstrap,  //!< JVM bootstrap loader: system classes
    Middleware, //!< WAS/OSGi bundle loaders (cache-aware)
    WebApp,     //!< servlet/web-module loaders (cache-aware)
    Ejb,        //!< EJB module loaders (NOT cache-aware)

    NumLoaders
};

/** Number of loader kinds, as an array size. */
constexpr std::size_t numLoaderKinds =
    static_cast<std::size_t>(LoaderKind::NumLoaders);

/** Printable loader name. */
const char *loaderName(LoaderKind kind);

/** One Java class. */
struct ClassInfo
{
    std::uint32_t id = 0;
    ClassOrigin origin = ClassOrigin::System;
    LoaderKind loader = LoaderKind::Bootstrap;
    std::uint32_t romBytes = 0; //!< immutable part (cacheable)
    std::uint32_t ramBytes = 0; //!< mutable runtime part (always private)
    /**
     * Whether the class-sharing feature can store this class. The paper
     * notes EJB application classes are not cacheable because their
     * class loaders are not shared-cache-aware.
     */
    bool cacheable = true;
    /** Loaded during middleware startup (vs. lazily under load). */
    bool startup = true;
};

/** Parameters for synthesizing a program's class set. */
struct ClassSetSpec
{
    std::string programName;     //!< e.g. "WAS+DayTrader"
    /**
     * Middleware identity. System and middleware classes derive from
     * this alone, so two programs on the same middleware (DayTrader and
     * TPC-W on WAS) have *identical* middleware class sets — the
     * property the paper's base-image cache deployment relies on.
     */
    std::string middlewareName = "WAS 7.0.0.15";
    std::uint32_t systemClasses = 2000;
    std::uint32_t middlewareClasses = 11000;
    std::uint32_t appClasses = 800;
    Bytes avgRomBytes = 8 * KiB + 512;
    Bytes avgRamBytes = 840;
    /** Fraction of application classes loaded by non-cache-aware
     *  (EJB) class loaders. */
    double appUncacheableFraction = 0.6;
    /** Fraction of all classes loaded during startup. */
    double startupFraction = 0.75;
};

/**
 * The classes of one Java program.
 */
class ClassSet
{
  public:
    /**
     * Deterministically synthesize a class set from @p spec: sizes and
     * flags derive from the program name only, so every VM running the
     * same program sees the same classes.
     */
    static ClassSet synthesize(const ClassSetSpec &spec);

    const std::vector<ClassInfo> &classes() const { return classes_; }
    const ClassInfo &at(std::uint32_t id) const;
    std::size_t size() const { return classes_.size(); }

    /** Canonical (first-use) load order: ids 0..n-1. */
    std::vector<std::uint32_t> canonicalOrder() const;

    /** Sum of ROM bytes over all classes. */
    Bytes totalRomBytes() const { return total_rom_; }

    /** Sum of RAM bytes over all classes. */
    Bytes totalRamBytes() const { return total_ram_; }

    /** Program name (stable content-tag base). */
    const std::string &programName() const { return program_; }

  private:
    std::string program_;
    std::vector<ClassInfo> classes_;
    Bytes total_rom_ = 0;
    Bytes total_ram_ = 0;
};

} // namespace jtps::jvm

#endif // JTPS_JVM_CLASS_MODEL_HH
