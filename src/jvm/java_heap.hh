/**
 * @file
 * Page-granular Java heap model with two garbage collection policies.
 *
 * The model reproduces the paper's two heap sharing-killers (§III.B):
 *
 *  1. GC *moves* objects — on every collection the surviving data is
 *     rewritten at new offsets, so live-page content changes and KSM's
 *     calm filter never admits it.
 *  2. GC *zero-fills* reclaimed memory — the tail beyond the survivors
 *     becomes zero pages that are resident and briefly shareable ("most
 *     of the shared pages were those filled with zeros... soon modified
 *     and divided"): allocation re-dirties them within one or two GC
 *     periods.
 *
 * Additionally, object *headers* mutate under monitor operations even
 * for read-only objects; mutateHeaders() models that.
 *
 * Policies:
 *  - OptThruput: a flat heap with stop-the-world mark-sweep-compact
 *    (IBM J9's default -Xgcpolicy:optthruput).
 *  - Gencon: generational — a nursery collected by copying plus a
 *    tenured space collected by compaction (used by the paper's
 *    SPECjEnterprise runs: 530 MB nursery + 200 MB tenured).
 */

#ifndef JTPS_JVM_JAVA_HEAP_HH
#define JTPS_JVM_JAVA_HEAP_HH

#include <cstdint>

#include "base/rng.hh"
#include "base/stats.hh"
#include "base/units.hh"
#include "guest/guest_os.hh"

namespace jtps::jvm
{

/** Heap / GC configuration (paper Table III). */
struct GcConfig
{
    enum class Policy
    {
        OptThruput, //!< flat compacting heap
        Gencon      //!< generational: copying nursery + tenured
    };

    Policy policy = Policy::OptThruput;
    /** Total heap (-Xms = -Xmx as in the paper's runs). */
    Bytes heapBytes = 530 * MiB;
    /** Nursery size; Gencon only (rest of the heap is tenured). */
    Bytes nurseryBytes = 0;
    /** Fraction of the compacted space that survives a global GC. */
    double liveFraction = 0.55;
    /** Allocation-cursor fraction that triggers a collection. */
    double gcTriggerFraction = 0.90;
    /** Fraction of the nursery surviving a minor (copying) GC. */
    double nurserySurvivorFraction = 0.08;
    /** Fraction of the nursery promoted to tenured per minor GC. */
    double promoteFraction = 0.015;
    /**
     * Fraction of reclaimed space the collector eagerly zero-fills
     * (allocation-adjacent TLH prefetch zeroing). The rest keeps stale
     * object bytes until reallocated, as a real sweep does. The zeroed
     * prefix is what produces the paper's small, transient zero-page
     * sharing in the heap.
     */
    double zeroFillFraction = 0.15;
    /**
     * Fraction of the heap above the allocation trigger (GC headroom)
     * that the first collection clears and allocation never refills.
     * These long-lived zero pages are the paper's observed residual
     * heap sharing (~0.7%): stable enough for KSM's calm filter, all
     * zero, merged across every VM.
     */
    double headroomZeroFraction = 0.007;
};

/**
 * The heap of one Java process.
 */
class JavaHeap
{
  public:
    /**
     * @param os Guest OS hosting the process.
     * @param pid Owning process.
     * @param cfg GC configuration.
     * @param proc_seed Per-process content seed (object addresses,
     *                  hash codes... differ per process).
     */
    JavaHeap(guest::GuestOs &os, Pid pid, const GcConfig &cfg,
             std::uint64_t proc_seed);

    /** Map the heap VMA (-Xms committed, demand-paged). */
    void init();

    /** Allocate @p bytes of objects; runs GC when the space fills. */
    void allocate(Bytes bytes);

    /**
     * Mutate @p count object headers in live data (monitor acquisition,
     * identity-hash installation): dirties one sector of a live page.
     */
    void mutateHeaders(std::uint32_t count, Rng &rng);

    /**
     * Touch @p pages live pages (request working set). Accesses are
     * skewed: most requests hit a hot subset of the live data
     * (session state, hot tables), the rest scan uniformly — the skew
     * that lets a loaded host tolerate swapping *cold* pages but
     * collapse once the hot sets exceed RAM (Figs. 7-8).
     */
    void touchLive(std::uint32_t pages, Rng &rng);

    /** Fraction of live data forming the hot working set. */
    static constexpr double hotFraction = 0.25;
    /** Probability that a touch lands in the hot subset. */
    static constexpr double hotProbability = 0.9;

    /** Completed global (compacting) collections. */
    std::uint64_t globalGcCount() const { return global_gcs_; }

    /** Completed minor (copying) collections; Gencon only. */
    std::uint64_t minorGcCount() const { return minor_gcs_; }

    /** Total bytes allocated so far. */
    Bytes allocatedBytes() const { return allocated_bytes_; }

    /** The heap's VMA. */
    const guest::Vma *vma() const { return vma_; }

    /** Current live pages (for working-set sizing). */
    std::uint64_t livePages() const;

  private:
    void writeObjectPage(std::uint64_t page, std::uint64_t salt);
    void clearHeadroomOnce();
    void globalGc();
    void minorGc();

    guest::GuestOs &os_;
    Pid pid_;
    GcConfig cfg_;
    std::uint64_t proc_seed_;
    Rng rng_;

    guest::Vma *vma_ = nullptr;
    std::uint64_t heap_pages_ = 0;
    std::uint64_t nursery_pages_ = 0; //!< 0 for OptThruput

    /** Allocation cursor within the allocation space, in pages. */
    std::uint64_t cursor_ = 0;
    /** End of live (compacted/survivor) data, in pages. */
    std::uint64_t live_end_ = 0;
    /** Tenured allocation cursor, in pages from nursery end (Gencon). */
    std::uint64_t tenured_cursor_ = 0;
    /** Sub-page allocation remainder in bytes. */
    Bytes partial_ = 0;

    bool headroom_cleared_ = false;
    std::uint64_t gc_epoch_ = 0;
    std::uint64_t global_gcs_ = 0;
    std::uint64_t minor_gcs_ = 0;
    std::uint64_t header_muts_ = 0;
    Bytes allocated_bytes_ = 0;
};

} // namespace jtps::jvm

#endif // JTPS_JVM_JAVA_HEAP_HH
