/**
 * @file
 * JIT compiler model: code cache + scratch (work) memory.
 *
 * The paper's finding for these areas (§IV.A):
 *
 *  - JIT-compiled code is "difficult to share because the JIT compiler
 *    uses runtime information for the optimizations and the values of
 *    the runtime information can differ for each Java process". Each
 *    process therefore has a *profile fingerprint* mixed into all
 *    generated code, making it unshareable by construction. A small
 *    runtime-stub region (trampolines, helpers) is profile-independent
 *    and identical across processes.
 *
 *  - The JIT work area is "accessed in read-write mode as a work area"
 *    and short-lived: compilation scratch buffers are rewritten per
 *    compilation with per-compilation content. A bulk-reserved,
 *    not-yet-used part stays zero — one of the paper's three observed
 *    sources of sharing in the JVM/JIT work area.
 */

#ifndef JTPS_JVM_JIT_COMPILER_HH
#define JTPS_JVM_JIT_COMPILER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "base/units.hh"
#include "guest/guest_os.hh"

namespace jtps::jvm
{

/** JIT sizing configuration. */
struct JitConfig
{
    std::string jvmVersion = "IBM J9 VM (Java 6 SR9)";
    Bytes codeCacheBytes = 30 * MiB; //!< generated method code
    Bytes stubsBytes = 2 * MiB;      //!< shared runtime stubs
    Bytes scratchBytes = 12 * MiB;   //!< compilation work buffers
    Bytes scratchZeroBytes = 4 * MiB; //!< bulk-reserved, unused
    Bytes avgMethodCodeBytes = 14 * KiB;
};

/**
 * The JIT of one Java process.
 */
class JitCompiler
{
  public:
    JitCompiler(guest::GuestOs &os, Pid pid, const JitConfig &cfg,
                std::uint64_t proc_seed);

    /** Map code cache + work area; emit the shared runtime stubs. */
    void init();

    /**
     * First-tier compile of one hot method: append profile-dependent
     * code to the code cache and churn the scratch area.
     * @return false when the code cache is full.
     */
    bool compileMethod(std::uint32_t method_id);

    /**
     * Tier-up recompilation: pick the oldest first-tier method and
     * regenerate it at a higher optimization level — new, larger code
     * is appended (with a fresh profile snapshot baked in) and the old
     * body becomes dead space in the cache, as in a real
     * non-compacting code cache.
     * @return methods actually recompiled (0 when none are eligible
     *         or the cache is full).
     */
    std::uint32_t recompileHottest(std::uint32_t count);

    /** Pages of dead (superseded) code fragmenting the cache. */
    std::uint64_t deadCodePages() const { return dead_code_pages_; }

    /** Methods promoted to the top tier so far. */
    std::uint32_t methodsRecompiled() const { return recompiled_; }

    /** Touch @p pages random pages of generated code (working set). */
    void touchCode(std::uint32_t pages, Rng &rng);

    /** Methods compiled so far. */
    std::uint32_t methodsCompiled() const { return methods_; }

    /** Code-cache VMA (category JitCode). */
    const guest::Vma *codeVma() const { return code_vma_; }

    /** Work-area VMA (category JitWork). */
    const guest::Vma *workVma() const { return work_vma_; }

  private:
    /** One compiled method body in the code cache. */
    struct MethodRecord
    {
        std::uint32_t methodId = 0;
        std::uint64_t firstPage = 0;
        std::uint64_t pages = 0;
        std::uint8_t tier = 1;
    };

    /** Emit @p pages of code for @p method_id at the cache cursor.
     *  @return false if the cache is full. */
    bool emitCode(std::uint32_t method_id, std::uint64_t pages,
                  std::uint8_t tier);

    guest::GuestOs &os_;
    Pid pid_;
    JitConfig cfg_;
    std::uint64_t proc_seed_;
    std::uint64_t profile_fingerprint_;
    Rng rng_;

    guest::Vma *code_vma_ = nullptr;
    guest::Vma *work_vma_ = nullptr;
    std::uint64_t stub_pages_ = 0;
    std::uint64_t code_cursor_pages_ = 0;
    std::uint64_t scratch_pages_ = 0;
    std::uint64_t scratch_cursor_ = 0;
    std::uint32_t methods_ = 0;
    std::uint32_t recompiled_ = 0;
    std::uint64_t compilations_ = 0;
    std::uint64_t dead_code_pages_ = 0;
    std::vector<MethodRecord> records_;
    std::size_t next_tierup_ = 0; //!< next tier-1 record to promote
};

} // namespace jtps::jvm

#endif // JTPS_JVM_JIT_COMPILER_HH
