#include "jvm/shared_class_cache.hh"

#include <algorithm>

#include "base/hash.hh"
#include "base/logging.hh"
#include "base/rng.hh"

namespace jtps::jvm
{

SharedClassCache
SharedClassCache::build(const ClassSet &classes,
                        const std::string &cache_name, Bytes max_bytes,
                        CacheScope scope, std::uint64_t population_salt)
{
    SharedClassCache cache;
    cache.name_ = cache_name;
    cache.max_bytes_ = max_bytes;
    cache.offset_sector_.assign(classes.size(), UINT64_MAX);
    cache.end_sector_.assign(classes.size(), UINT64_MAX);

    // Cache header (metadata, string-intern table anchor...).
    std::uint64_t cursor = 2; // sectors
    std::uint64_t layout_digest =
        hash3(stringTag("scc-layout"), stringTag(cache_name),
              population_salt);

    const Bytes max_sectors = max_bytes / cacheSectorBytes;
    for (std::uint32_t id : classes.canonicalOrder()) {
        const ClassInfo &ci = classes.at(id);
        if (!ci.cacheable)
            continue;
        if (scope == CacheScope::MiddlewareOnly &&
            ci.origin == ClassOrigin::Application) {
            continue;
        }
        const std::uint64_t sectors =
            (ci.romBytes + cacheSectorBytes - 1) / cacheSectorBytes;
        if (cursor + sectors > max_sectors)
            continue; // cache full; class stays private
        cache.offset_sector_[id] = cursor;
        cache.end_sector_[id] = cursor + sectors;
        cursor += sectors;
        cache.used_bytes_ += ci.romBytes;
        ++cache.stored_classes_;
        cache.origin_bytes_[static_cast<int>(ci.origin)] += ci.romBytes;
        layout_digest = hash3(layout_digest, id, cursor);
    }

    // The file's content tag is the layout digest: byte-identical copies
    // (same population) share it; independent populations differ.
    const Bytes file_bytes = pageAlignUp(cursor * cacheSectorBytes);
    cache.file_ = guest::FileImage::withContentTag(
        "javasharedresources/" + cache_name, file_bytes, layout_digest);
    return cache;
}

std::pair<std::uint64_t, std::uint64_t>
SharedClassCache::sectorRange(std::uint32_t class_id) const
{
    jtps_assert(contains(class_id));
    return {offset_sector_[class_id], end_sector_[class_id]};
}

void
SharedClassCache::addAotSection(std::uint32_t method_count,
                                Bytes avg_method_bytes, Bytes budget)
{
    jtps_assert(aot_methods_ == 0);

    // Body sizes derive from the cache identity so every copy of the
    // archive lays the section out identically.
    Rng rng(hashCombine(stringTag("scc-aot"), file_.contentTag()));
    std::uint64_t cursor = 1; // AOT section header
    std::uint64_t digest =
        hashCombine(stringTag("scc-aot-layout"), file_.contentTag());
    const std::uint64_t budget_sectors = budget / cacheSectorBytes;

    for (std::uint32_t m = 0; m < method_count; ++m) {
        const Bytes body = static_cast<Bytes>(
            avg_method_bytes * (0.5 + rng.nextDouble()));
        const std::uint64_t sectors = std::max<std::uint64_t>(
            1, (body + cacheSectorBytes - 1) / cacheSectorBytes);
        if (cursor + sectors > budget_sectors)
            break;
        aot_offset_sector_.push_back(cursor);
        aot_end_sector_.push_back(cursor + sectors);
        cursor += sectors;
        digest = hash3(digest, m, cursor);
        ++aot_methods_;
    }

    aot_file_ = guest::FileImage::withContentTag(
        "javasharedresources/" + name_ + ".aot",
        pageAlignUp(cursor * cacheSectorBytes), digest);
}

std::pair<std::uint64_t, std::uint64_t>
SharedClassCache::aotSectorRange(std::uint32_t method_id) const
{
    jtps_assert(containsAotMethod(method_id));
    return {aot_offset_sector_[method_id], aot_end_sector_[method_id]};
}

Bytes
SharedClassCache::storedBytesByOrigin(ClassOrigin origin) const
{
    return origin_bytes_[static_cast<int>(origin)];
}

} // namespace jtps::jvm
