#include "jvm/java_heap.hh"

#include <algorithm>

#include "base/hash.hh"
#include "base/logging.hh"

namespace jtps::jvm
{

JavaHeap::JavaHeap(guest::GuestOs &os, Pid pid, const GcConfig &cfg,
                   std::uint64_t proc_seed)
    : os_(os), pid_(pid), cfg_(cfg), proc_seed_(proc_seed),
      rng_(hashCombine(proc_seed, stringTag("heap-rng")))
{
}

void
JavaHeap::init()
{
    jtps_assert(vma_ == nullptr);
    heap_pages_ = bytesToPages(cfg_.heapBytes);
    if (cfg_.policy == GcConfig::Policy::Gencon) {
        jtps_assert(cfg_.nurseryBytes > 0 &&
                    cfg_.nurseryBytes < cfg_.heapBytes);
        nursery_pages_ = bytesToPages(cfg_.nurseryBytes);
    }
    vma_ = os_.mmapAnon(pid_, cfg_.heapBytes, guest::MemCategory::JavaHeap,
                        "java-heap");
}

void
JavaHeap::writeObjectPage(std::uint64_t page, std::uint64_t salt)
{
    // Object content: addresses, hash codes and payload all derive from
    // the process seed, so no two processes ever produce equal pages,
    // and from the GC epoch, so content changes when objects move.
    os_.writePage(vma_, page,
                  mem::PageData::filled(
                      hash3(proc_seed_, stringTag("heap-obj"), salt),
                      page));
}

std::uint64_t
JavaHeap::livePages() const
{
    if (cfg_.policy == GcConfig::Policy::Gencon)
        return live_end_ + tenured_cursor_;
    return live_end_;
}

void
JavaHeap::allocate(Bytes bytes)
{
    jtps_assert(vma_ != nullptr);
    allocated_bytes_ += bytes;
    partial_ += bytes;

    const std::uint64_t alloc_space =
        cfg_.policy == GcConfig::Policy::Gencon ? nursery_pages_
                                                : heap_pages_;
    const auto trigger = static_cast<std::uint64_t>(
        alloc_space * cfg_.gcTriggerFraction);

    while (partial_ >= pageSize) {
        partial_ -= pageSize;
        if (cursor_ >= trigger) {
            if (cfg_.policy == GcConfig::Policy::Gencon)
                minorGc();
            else
                globalGc();
        }
        writeObjectPage(cursor_, gc_epoch_);
        ++cursor_;
    }
}

void
JavaHeap::clearHeadroomOnce()
{
    if (headroom_cleared_)
        return;
    headroom_cleared_ = true;
    // The first sweep clears the headroom above the allocation trigger;
    // the cursor never climbs back there, so these zero pages stay calm
    // and become the heap's only lasting TPS contribution (the paper's
    // ~0.7% of transiently shared, zero-filled heap pages).
    const std::uint64_t space =
        cfg_.policy == GcConfig::Policy::Gencon ? nursery_pages_
                                                : heap_pages_;
    const std::uint64_t base_page =
        static_cast<std::uint64_t>(space * cfg_.gcTriggerFraction);
    const std::uint64_t tail = static_cast<std::uint64_t>(
        heap_pages_ * cfg_.headroomZeroFraction);
    for (std::uint64_t p = 0; p < tail && base_page + p < heap_pages_;
         ++p) {
        os_.writePage(vma_, base_page + p, mem::PageData::zero());
    }
}

void
JavaHeap::globalGc()
{
    ++gc_epoch_;
    ++global_gcs_;
    os_.traceRecord(TraceEventType::GcGlobal, pid_, gc_epoch_);
    clearHeadroomOnce();

    // Mark-sweep-compact: survivors slide to the bottom of the space at
    // new offsets (content changes), and the reclaimed tail is zeroed.
    const std::uint64_t space =
        cfg_.policy == GcConfig::Policy::Gencon
            ? heap_pages_ - nursery_pages_
            : heap_pages_;
    const std::uint64_t base =
        cfg_.policy == GcConfig::Policy::Gencon ? nursery_pages_ : 0;
    const std::uint64_t old_top =
        cfg_.policy == GcConfig::Policy::Gencon ? tenured_cursor_
                                                : cursor_;
    const auto new_live = static_cast<std::uint64_t>(
        std::min<double>(old_top, space) * cfg_.liveFraction);

    for (std::uint64_t p = 0; p < new_live; ++p)
        writeObjectPage(base + p, gc_epoch_);
    // Eagerly zero only the allocation-adjacent prefix of the reclaimed
    // space; the rest keeps stale object bytes until reallocated.
    const auto zero_end = new_live + static_cast<std::uint64_t>(
        (old_top - new_live) * cfg_.zeroFillFraction);
    for (std::uint64_t p = new_live; p < zero_end; ++p)
        os_.writePage(vma_, base + p, mem::PageData::zero());

    if (cfg_.policy == GcConfig::Policy::Gencon) {
        tenured_cursor_ = new_live;
    } else {
        cursor_ = new_live;
        live_end_ = new_live;
    }
}

void
JavaHeap::minorGc()
{
    ++gc_epoch_;
    ++minor_gcs_;
    os_.traceRecord(TraceEventType::GcMinor, pid_, gc_epoch_);
    clearHeadroomOnce();

    // Copying nursery collection: a small survivor set is copied to the
    // bottom of the nursery; some pages' worth of objects are promoted
    // into the tenured space; everything else is zeroed.
    const auto survivors = static_cast<std::uint64_t>(
        nursery_pages_ * cfg_.nurserySurvivorFraction);
    const auto promote = static_cast<std::uint64_t>(
        nursery_pages_ * cfg_.promoteFraction);

    for (std::uint64_t p = 0; p < survivors && p < cursor_; ++p)
        writeObjectPage(p, gc_epoch_);
    const std::uint64_t reclaimed =
        cursor_ > survivors ? cursor_ - survivors : 0;
    const auto zero_end = survivors + static_cast<std::uint64_t>(
        reclaimed * cfg_.zeroFillFraction);
    for (std::uint64_t p = survivors; p < zero_end; ++p)
        os_.writePage(vma_, p, mem::PageData::zero());

    const std::uint64_t tenured_space = heap_pages_ - nursery_pages_;
    for (std::uint64_t i = 0; i < promote; ++i) {
        if (tenured_cursor_ >=
            static_cast<std::uint64_t>(tenured_space * 0.95)) {
            globalGc(); // tenured full: global collection
        }
        writeObjectPage(nursery_pages_ + tenured_cursor_, gc_epoch_);
        ++tenured_cursor_;
    }

    cursor_ = std::min(survivors, cursor_);
    live_end_ = cursor_;
}

void
JavaHeap::mutateHeaders(std::uint32_t count, Rng &rng)
{
    const std::uint64_t live = livePages();
    if (live == 0)
        return;
    for (std::uint32_t i = 0; i < count; ++i) {
        std::uint64_t pick = rng.nextBelow(live);
        std::uint64_t page;
        if (cfg_.policy == GcConfig::Policy::Gencon && pick >= live_end_)
            page = nursery_pages_ + (pick - live_end_); // tenured object
        else
            page = pick;
        // Lock word / hash-bits update in the object header sector.
        os_.writeWord(vma_, page, 0,
                      hash3(proc_seed_, stringTag("lockword"),
                            header_muts_++));
    }
}

void
JavaHeap::touchLive(std::uint32_t pages, Rng &rng)
{
    const std::uint64_t live = livePages();
    if (live == 0)
        return;
    const std::uint64_t hot = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(live * hotFraction));
    for (std::uint32_t i = 0; i < pages; ++i) {
        std::uint64_t pick = rng.bernoulli(hotProbability)
                                 ? rng.nextBelow(hot)
                                 : rng.nextBelow(live);
        std::uint64_t page;
        if (cfg_.policy == GcConfig::Policy::Gencon && pick >= live_end_)
            page = nursery_pages_ + (pick - live_end_);
        else
            page = pick;
        os_.touch(vma_, page);
    }
}

} // namespace jtps::jvm
