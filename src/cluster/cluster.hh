/**
 * @file
 * Fleet-scale orchestration: many independent hosts, one cluster.
 *
 * A Cluster builds H hosts — each a self-contained core::Scenario with
 * its own hypervisor, KSM scanner, stat registry and RNG streams — and
 * places a fleet of VM specs onto them through a pluggable placement
 * policy (round-robin, random, or the sharing-aware
 * core::PlacementPlanner). Because scenarios share no mutable state
 * (DESIGN.md invariant 5), the cluster runs every host's next round of
 * simulated time concurrently on a base::ThreadPool and then reduces
 * the per-host results *serially in host order*: every cluster
 * counter, gauge, migration decision and JSON document is
 * byte-identical at any --fleet-threads value.
 *
 * On top of the per-host simulations the cluster models two
 * fleet-level concerns the paper's single-host experiments motivate
 * but cannot express:
 *
 *   - a diurnal demand curve (a million-user service breathing over a
 *     day) routed through the existing ClientDriver epoch results:
 *     each round every active VM owes its share of the current offered
 *     load, and cluster.sla_met/missed_epochs account how the fleet
 *     tracked it;
 *
 *   - pressure-driven live migration: when a host's major-fault rate
 *     crosses a threshold, the VM with the *least* estimated
 *     intra-host sharing (SharingFingerprint overlap — evicting it
 *     forfeits the least merged memory) moves to the least-loaded
 *     host. Downtime is modeled as pre-copy rounds whose dirty rate
 *     comes from the source VM's PML ring append counts.
 */

#ifndef JTPS_CLUSTER_CLUSTER_HH
#define JTPS_CLUSTER_CLUSTER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/json_writer.hh"
#include "base/stats.hh"
#include "base/thread_pool.hh"
#include "core/placement.hh"
#include "core/scenario.hh"
#include "workload/workload_spec.hh"

namespace jtps::cluster
{

/** How VM specs are assigned to hosts at build time. */
enum class PlacementPolicy
{
    RoundRobin, //!< spec l lands on host l % H (the naive default)
    Random,     //!< seeded shuffle, then round-robin (anti-affinity)
    DedupAware, //!< core::PlacementPlanner greedy sharing packer
};

/** Stable name for reports and JSON ("rr", "random", "dedup"). */
const char *placementPolicyName(PlacementPolicy policy);

/** Cluster-wide configuration. */
struct ClusterConfig
{
    /** Host count H. Fleet size must satisfy H <= VMs <= H * slots. */
    std::size_t hosts = 4;
    /**
     * VM slot capacity per host. Initial placement packs
     * ceil(VMs / H) per host regardless; capacity beyond that is the
     * headroom live migration needs to find a destination.
     */
    std::size_t slotsPerHost = 4;
    /**
     * Per-host scenario template. seed and hostLabel are overridden
     * per host (seed = hash3(cluster seed, "host", h), label =
     * "host<h>"); warmupMs is reinterpreted as the cluster-wide
     * aggressive-KSM warm-up and must be a multiple of roundMs.
     */
    core::ScenarioConfig host;

    PlacementPolicy placement = PlacementPolicy::RoundRobin;

    /**
     * Worker threads for the host-parallel round fan-out. A pure
     * machine-sizing knob: hosts are reduced serially in host order,
     * so results are byte-identical at any value. <= 1 runs serially.
     */
    unsigned fleetThreads = 1;

    /** Cluster seed (host seeds and random placement derive from it). */
    std::uint64_t seed = 42;

    /**
     * Round length: the slice of simulated time every host advances
     * between cluster-level reductions (SLA accounting, migration
     * decisions). Must be a positive multiple of host.epochMs.
     */
    Tick roundMs = 8'000;

    // --- diurnal demand model -----------------------------------------
    /** Users at the daily peak (the paper-scale fleet serves ~1M). */
    double peakUsers = 1'000'000.0;
    /** Sustained request rate per active user. */
    double requestsPerUserPerSec = 1.0 / 120.0;
    /** Night-time demand floor as a fraction of peak. */
    double troughFraction = 0.35;
    /** Period of the demand curve (a compressed day by default). */
    Tick dayMs = 240'000;

    // --- pressure-driven live migration -------------------------------
    /** Master switch for the migration controller. */
    bool migrationEnabled = false;
    /**
     * Source trigger: a host whose per-active-VM major-fault rate
     * (faults/s averaged over the last round) exceeds this is
     * overcommitted enough to shed a VM.
     */
    double faultsPerSecPerVmThreshold = 4.0;
    /** Migration link bandwidth in pages per simulated millisecond. */
    double linkPagesPerMs = 250.0;
    /** Pre-copy stops (and the VM pauses) at this many dirty pages. */
    std::uint64_t downtimeStopPages = 512;
    /** Pre-copy round cap before falling back to stop-and-copy. */
    unsigned maxPrecopyRounds = 8;
    /** Fixed switch-over cost added to every migration's downtime. */
    double switchoverMs = 2.0;
};

/**
 * Modeled pre-copy schedule for one migration (pure function of the
 * inputs; see estimatePrecopy()).
 */
struct PrecopyEstimate
{
    unsigned rounds = 0;            //!< pre-copy iterations performed
    std::uint64_t pagesCopied = 0;  //!< pages pushed while running
    std::uint64_t finalPages = 0;   //!< pages copied during the pause
    double downtimeMs = 0.0;        //!< pause length (excl. switchover)
};

/**
 * Model a pre-copy live migration: each round re-sends the pages
 * dirtied while the previous round was on the wire (@p dirty_pages_per_ms
 * of them per millisecond of copy time), until the residual set fits
 * @p stop_pages, @p max_rounds is exhausted, or the dirty rate
 * outruns the link (@p link_pages_per_ms) and iterating cannot help.
 * The remaining pages are copied with the VM paused — that is the
 * downtime. A zero dirty rate (idle VM, or no PML telemetry and
 * assumed clean) converges in one round.
 */
PrecopyEstimate estimatePrecopy(std::uint64_t resident_pages,
                                double dirty_pages_per_ms,
                                double link_pages_per_ms,
                                std::uint64_t stop_pages,
                                unsigned max_rounds);

/**
 * Pick the migration victim among @p members (host-local VM indices):
 * the member whose summed fingerprint overlap with the *other* members
 * is smallest — moving it forfeits the least intra-host sharing. Ties
 * break to the lowest index. @p fingerprints is parallel to
 * @p members. @return the chosen entry of @p members.
 */
std::size_t chooseMigrationVictim(
    const std::vector<core::SharingFingerprint> &fingerprints,
    const std::vector<std::size_t> &members);

/**
 * A fleet of hosts running one shared workload population.
 */
class Cluster
{
  public:
    /** Where logical VM @p l currently lives. */
    struct VmLocation
    {
        std::size_t host = 0;  //!< current host
        std::size_t index = 0; //!< host-local VM index (dense, stable)
        std::uint64_t migrations = 0; //!< times this VM has moved
    };

    /**
     * @param cfg Cluster configuration.
     * @param specs The fleet's VM specs ("logical VMs", placed onto
     *        hosts by cfg.placement).
     */
    Cluster(const ClusterConfig &cfg,
            std::vector<workload::WorkloadSpec> specs);
    ~Cluster();

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    /** Plan placement and build every host (per-host Scenario::build). */
    void build();

    /**
     * Advance the whole fleet by @p total_ms of simulated time in
     * roundMs slices: hosts run concurrently, reductions and migration
     * decisions run serially between rounds. Callable repeatedly;
     * @p total_ms must be a multiple of roundMs.
     */
    void run(Tick total_ms);

    /** Offered users at simulated time @p t (the diurnal curve). */
    double usersAt(Tick t) const;

    /** Per-host VM index lists chosen at build() (logical VM ids). */
    const std::vector<std::vector<std::size_t>> &placement() const
    {
        return placement_;
    }

    /** Current location of every logical VM. */
    const std::vector<VmLocation> &vmLocations() const
    {
        return vm_locations_;
    }

    std::size_t hostCount() const { return hosts_.size(); }
    core::Scenario &host(std::size_t h) { return *hosts_[h]; }
    const core::Scenario &host(std::size_t h) const { return *hosts_[h]; }

    /** Cluster-level registry (cluster.* and migration.* counters). */
    StatSet &stats() { return stats_; }
    const StatSet &stats() const { return stats_; }

    /** Simulated time the fleet has advanced to. */
    Tick now() const { return now_; }

    /** Fleet throughput: sum of per-host recent aggregate throughput. */
    double aggregateThroughput(std::size_t epochs = 5) const;

    /**
     * Emit the cluster document's body into an *open* JSON object:
     * "stats" (the cluster registry, schema of docs/METRICS.md) and
     * "hosts" (one object per host: label, active VMs, KSM state and
     * the host's own registry). Serialized host-by-host in host order,
     * so the document is byte-identical at any fleetThreads.
     */
    void writeJsonFields(JsonWriter &w) const;

  private:
    void planPlacement();
    void reduceRound();
    void maybeMigrate();
    double hostFaultRate(std::size_t h) const;

    ClusterConfig cfg_;
    std::vector<workload::WorkloadSpec> specs_;
    std::vector<std::vector<std::size_t>> placement_;
    std::vector<std::unique_ptr<core::Scenario>> hosts_;
    std::vector<VmLocation> vm_locations_;
    /** host -> host-local index -> logical VM id. */
    std::vector<std::vector<std::size_t>> host_logical_;
    /** Epoch-history rows already reduced, per host. */
    std::vector<std::size_t> consumed_epochs_;
    /** Major faults accumulated by each host over the last round. */
    std::vector<std::uint64_t> round_faults_;
    /** PML append totals per host-local VM at the last round boundary. */
    std::vector<std::vector<std::uint64_t>> prev_pml_appends_;

    StatSet stats_;
    std::unique_ptr<ThreadPool> pool_;
    Tick now_ = 0;
    bool built_ = false;
};

} // namespace jtps::cluster

#endif // JTPS_CLUSTER_CLUSTER_HH
