#include "cluster/cluster.hh"

#include <algorithm>
#include <cmath>

#include "analysis/json_export.hh"
#include "base/hash.hh"
#include "base/logging.hh"
#include "base/rng.hh"

namespace jtps::cluster
{

const char *
placementPolicyName(PlacementPolicy policy)
{
    switch (policy) {
    case PlacementPolicy::RoundRobin:
        return "rr";
    case PlacementPolicy::Random:
        return "random";
    case PlacementPolicy::DedupAware:
        return "dedup";
    }
    return "?";
}

PrecopyEstimate
estimatePrecopy(std::uint64_t resident_pages, double dirty_pages_per_ms,
                double link_pages_per_ms, std::uint64_t stop_pages,
                unsigned max_rounds)
{
    jtps_assert(link_pages_per_ms > 0.0);
    jtps_assert(dirty_pages_per_ms >= 0.0);
    PrecopyEstimate est;
    double remaining = static_cast<double>(resident_pages);
    while (est.rounds < max_rounds &&
           remaining > static_cast<double>(stop_pages)) {
        const double copy_ms = remaining / link_pages_per_ms;
        const double dirtied = dirty_pages_per_ms * copy_ms;
        if (dirtied >= remaining) {
            // The guest dirties faster than the link drains: another
            // round cannot shrink the residual set. Stop and copy.
            break;
        }
        est.pagesCopied += static_cast<std::uint64_t>(remaining);
        ++est.rounds;
        remaining = dirtied;
    }
    est.finalPages = static_cast<std::uint64_t>(remaining);
    est.downtimeMs = remaining / link_pages_per_ms;
    return est;
}

std::size_t
chooseMigrationVictim(
    const std::vector<core::SharingFingerprint> &fingerprints,
    const std::vector<std::size_t> &members)
{
    jtps_assert(!members.empty());
    jtps_assert(fingerprints.size() == members.size());
    std::size_t best = members[0];
    Bytes best_overlap = 0;
    bool found = false;
    for (std::size_t k = 0; k < members.size(); ++k) {
        Bytes overlap = 0;
        for (std::size_t j = 0; j < members.size(); ++j) {
            if (j != k)
                overlap += fingerprints[k].sharedWith(fingerprints[j]);
        }
        if (!found || overlap < best_overlap) {
            found = true;
            best_overlap = overlap;
            best = members[k];
        }
    }
    return best;
}

Cluster::Cluster(const ClusterConfig &cfg,
                 std::vector<workload::WorkloadSpec> specs)
    : cfg_(cfg), specs_(std::move(specs))
{
    jtps_assert(cfg_.hosts > 0);
    jtps_assert(cfg_.slotsPerHost > 0);
    // Every host must start with at least one VM (a Scenario cannot be
    // empty) and placement must fit the slot capacity.
    jtps_assert(specs_.size() >= cfg_.hosts);
    jtps_assert(specs_.size() <= cfg_.hosts * cfg_.slotsPerHost);
    jtps_assert(cfg_.roundMs > 0);
    jtps_assert(cfg_.host.epochMs > 0);
    jtps_assert(cfg_.roundMs % cfg_.host.epochMs == 0);
    jtps_assert(cfg_.host.warmupMs % cfg_.roundMs == 0);
    jtps_assert(cfg_.dayMs > 0);
}

Cluster::~Cluster() = default;

void
Cluster::planPlacement()
{
    const std::size_t n = specs_.size();
    // Initial packing width: even load across all hosts. Capacity
    // (slotsPerHost) may exceed it — spare slots take migrations.
    const std::size_t width = (n + cfg_.hosts - 1) / cfg_.hosts;
    jtps_assert(width <= cfg_.slotsPerHost);
    placement_.assign(cfg_.hosts, {});
    switch (cfg_.placement) {
    case PlacementPolicy::RoundRobin:
        for (std::size_t l = 0; l < n; ++l)
            placement_[l % cfg_.hosts].push_back(l);
        break;
    case PlacementPolicy::Random: {
        // Seeded Fisher-Yates over the logical ids, then round-robin:
        // random grouping, even load.
        std::vector<std::size_t> perm(n);
        for (std::size_t l = 0; l < n; ++l)
            perm[l] = l;
        Rng rng(hash3(cfg_.seed, stringTag("placement"), 1));
        for (std::size_t l = n; l > 1; --l)
            std::swap(perm[l - 1], perm[rng.nextBelow(l)]);
        for (std::size_t l = 0; l < n; ++l)
            placement_[l % cfg_.hosts].push_back(perm[l]);
        break;
    }
    case PlacementPolicy::DedupAware:
        placement_ = core::PlacementPlanner::plan(
            specs_, width, cfg_.host.enableClassSharing);
        // The planner packs ceil(n / width) hosts; the cluster's host
        // count must agree so no host starts empty.
        jtps_assert(placement_.size() == cfg_.hosts);
        break;
    }
    for (const auto &group : placement_) {
        jtps_assert(!group.empty());
        jtps_assert(group.size() <= cfg_.slotsPerHost);
    }
}

void
Cluster::build()
{
    jtps_assert(!built_);
    built_ = true;

    planPlacement();

    vm_locations_.assign(specs_.size(), {});
    host_logical_.assign(cfg_.hosts, {});
    for (std::size_t h = 0; h < cfg_.hosts; ++h) {
        core::ScenarioConfig hc = cfg_.host;
        // Independent per-host RNG universe + identity label.
        hc.seed = hash3(cfg_.seed, stringTag("host"), h);
        hc.hostLabel = "host" + std::to_string(h);

        std::vector<workload::WorkloadSpec> host_specs;
        host_specs.reserve(placement_[h].size());
        for (std::size_t k = 0; k < placement_[h].size(); ++k) {
            const std::size_t logical = placement_[h][k];
            host_specs.push_back(specs_[logical]);
            vm_locations_[logical] = {h, k, 0};
            host_logical_[h].push_back(logical);
        }
        hosts_.push_back(
            std::make_unique<core::Scenario>(hc, std::move(host_specs)));
        hosts_.back()->build();
    }

    consumed_epochs_.assign(cfg_.hosts, 0);
    round_faults_.assign(cfg_.hosts, 0);
    prev_pml_appends_.assign(cfg_.hosts, {});

    // Register the whole cluster.* / migration.* shape up front so
    // every run document carries the same keys.
    stats_.set("cluster.hosts", cfg_.hosts);
    stats_.set("cluster.vms", specs_.size());
    stats_.counter("cluster.rounds");
    stats_.counter("cluster.epochs");
    stats_.counter("cluster.offered_requests");
    stats_.counter("cluster.served_requests");
    stats_.counter("cluster.sla_met_epochs");
    stats_.counter("cluster.sla_missed_epochs");
    stats_.counter("cluster.pages_shared");
    stats_.counter("cluster.pages_sharing");
    stats_.counter("cluster.resident_frames");
    stats_.counter("migration.count");
    stats_.counter("migration.precopy_rounds");
    stats_.counter("migration.pages_precopied");
    stats_.counter("migration.downtime_us_total");

    if (cfg_.fleetThreads > 1)
        pool_ = std::make_unique<ThreadPool>(cfg_.fleetThreads);
}

double
Cluster::usersAt(Tick t) const
{
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    const double phase =
        static_cast<double>(t % cfg_.dayMs) /
        static_cast<double>(cfg_.dayMs);
    const double wave = 0.5 * (1.0 - std::cos(kTwoPi * phase));
    return cfg_.peakUsers *
           (cfg_.troughFraction + (1.0 - cfg_.troughFraction) * wave);
}

void
Cluster::run(Tick total_ms)
{
    jtps_assert(built_);
    jtps_assert(total_ms % cfg_.roundMs == 0);

    for (Tick done = 0; done < total_ms; done += cfg_.roundMs) {
        if (now_ == 0) {
            // Paper's protocol, fleet-wide: aggressive scanning while
            // the JVMs warm, throttled at steady state (Scenario::run
            // does the same for a single host).
            for (auto &host : hosts_) {
                host->ksm().setPagesToScan(cfg_.host.ksmWarmupPagesToScan);
                host->ksm().attach(host->queue());
            }
        }
        if (now_ == cfg_.host.warmupMs) {
            for (auto &host : hosts_)
                host->ksm().setPagesToScan(cfg_.host.ksm.pagesToScan);
        }

        // Fan out: every host advances one round concurrently. Hosts
        // are self-contained single-writer worlds, so the only
        // synchronization needed is the barrier before the serial
        // reduce below.
        if (pool_) {
            for (auto &host : hosts_) {
                core::Scenario *s = host.get();
                pool_->submit([s, this]() { s->runFor(cfg_.roundMs); });
            }
            pool_->wait();
        } else {
            for (auto &host : hosts_)
                host->runFor(cfg_.roundMs);
        }
        now_ += cfg_.roundMs;

        // Serial, host-order reduce: identical at any fleetThreads.
        reduceRound();
        if (cfg_.migrationEnabled)
            maybeMigrate();

        // Re-baseline the PML append totals so the next round's dirty
        // rate is a per-round delta (new VMs start from their current
        // totals).
        for (std::size_t h = 0; h < hosts_.size(); ++h) {
            auto &hv = hosts_[h]->hv();
            prev_pml_appends_[h].resize(hv.vmCount(), 0);
            for (VmId vm = 0; vm < hv.vmCount(); ++vm)
                prev_pml_appends_[h][vm] = hv.vm(vm).pmlAppendsTotal;
        }
    }
}

void
Cluster::reduceRound()
{
    stats_.inc("cluster.rounds");

    // Demand at the round's midpoint, routed capacity-weighted (a
    // load balancer sends traffic where it can be served): each
    // active VM owes the fleet demand times its share of the fleet's
    // client capacity.
    double total_capacity = 0.0;
    for (auto &host : hosts_) {
        for (std::size_t idx = 0; idx < host->vmCount(); ++idx)
            if (host->vmActive(idx))
                total_capacity += host->workloadSpec(idx).clientThreads;
    }
    jtps_assert(total_capacity > 0.0);

    const double users = usersAt(now_ - cfg_.roundMs / 2);
    const double fleet_rq = users * cfg_.requestsPerUserPerSec;
    const double epoch_sec =
        static_cast<double>(cfg_.host.epochMs) / 1000.0;

    for (std::size_t h = 0; h < hosts_.size(); ++h) {
        round_faults_[h] = 0;
        const auto &history = hosts_[h]->epochHistory();
        for (std::size_t e = consumed_epochs_[h]; e < history.size();
             ++e) {
            const auto &row = history[e];
            for (std::size_t idx = 0; idx < row.size(); ++idx) {
                if (!hosts_[h]->vmActive(idx))
                    continue;
                const auto &r = row[idx];
                const double per_vm_share =
                    fleet_rq *
                    hosts_[h]->workloadSpec(idx).clientThreads /
                    total_capacity;
                stats_.inc("cluster.epochs");
                stats_.inc("cluster.offered_requests",
                           static_cast<std::uint64_t>(per_vm_share *
                                                      epoch_sec));
                stats_.inc("cluster.served_requests",
                           static_cast<std::uint64_t>(
                               std::min(per_vm_share, r.achievedPerSec) *
                               epoch_sec));
                // An epoch meets the fleet SLA when the driver's own
                // latency SLA held *and* the VM kept up with its share
                // of the diurnal demand.
                if (r.slaMet &&
                    r.achievedPerSec + 1e-9 >= per_vm_share)
                    stats_.inc("cluster.sla_met_epochs");
                else
                    stats_.inc("cluster.sla_missed_epochs");
                round_faults_[h] += r.majorFaults;
            }
        }
        consumed_epochs_[h] = history.size();
    }

    // Fleet-level gauges.
    std::uint64_t shared = 0, sharing = 0, resident = 0, vms = 0;
    for (auto &host : hosts_) {
        shared += host->ksm().pagesShared();
        sharing += host->ksm().pagesSharing();
        resident += host->hv().residentFrames();
        vms += host->activeVmCount();
    }
    stats_.set("cluster.pages_shared", shared);
    stats_.set("cluster.pages_sharing", sharing);
    stats_.set("cluster.resident_frames", resident);
    stats_.set("cluster.vms", vms);
}

double
Cluster::hostFaultRate(std::size_t h) const
{
    const std::size_t active = hosts_[h]->activeVmCount();
    if (active == 0)
        return 0.0;
    return static_cast<double>(round_faults_[h]) * 1000.0 /
           static_cast<double>(cfg_.roundMs) /
           static_cast<double>(active);
}

void
Cluster::maybeMigrate()
{
    // At most one migration per round, from the lowest-id pressured
    // host: conservative, and trivially deterministic.
    std::size_t src = hosts_.size();
    for (std::size_t h = 0; h < hosts_.size(); ++h) {
        if (hosts_[h]->activeVmCount() >= 2 &&
            hostFaultRate(h) > cfg_.faultsPerSecPerVmThreshold) {
            src = h;
            break;
        }
    }
    if (src == hosts_.size())
        return;

    // Destination: the least-loaded host (fewest resident frames) with
    // a free slot; ties to the lowest id.
    std::size_t dst = hosts_.size();
    std::uint64_t dst_resident = 0;
    for (std::size_t h = 0; h < hosts_.size(); ++h) {
        if (h == src ||
            hosts_[h]->activeVmCount() >= cfg_.slotsPerHost)
            continue;
        const std::uint64_t res = hosts_[h]->hv().residentFrames();
        if (dst == hosts_.size() || res < dst_resident) {
            dst = h;
            dst_resident = res;
        }
    }
    if (dst == hosts_.size())
        return; // fleet full: nowhere to shed load

    // Victim: the active VM with the least estimated intra-host
    // sharing — evicting it breaks the fewest merges.
    std::vector<std::size_t> members;
    std::vector<core::SharingFingerprint> fps;
    for (std::size_t idx = 0; idx < hosts_[src]->vmCount(); ++idx) {
        if (!hosts_[src]->vmActive(idx))
            continue;
        members.push_back(idx);
        fps.push_back(core::SharingFingerprint::forWorkload(
            hosts_[src]->workloadSpec(idx),
            cfg_.host.enableClassSharing));
    }
    const std::size_t victim = chooseMigrationVictim(fps, members);

    // Downtime model: pre-copy rounds whose dirty rate comes from the
    // source VM's PML ring appends over the last round; without PML
    // telemetry the migration is a blind stop-and-copy.
    const auto &vm = hosts_[src]->hv().vm(static_cast<VmId>(victim));
    const std::uint64_t resident = vm.residentPages;
    PrecopyEstimate est;
    if (hosts_[src]->hv().pmlEnabled()) {
        const std::uint64_t prev =
            victim < prev_pml_appends_[src].size()
                ? prev_pml_appends_[src][victim]
                : 0;
        const double dirty_per_ms =
            static_cast<double>(vm.pmlAppendsTotal - prev) /
            static_cast<double>(cfg_.roundMs);
        est = estimatePrecopy(resident, dirty_per_ms,
                              cfg_.linkPagesPerMs,
                              cfg_.downtimeStopPages,
                              cfg_.maxPrecopyRounds);
    } else {
        est.finalPages = resident;
        est.downtimeMs =
            static_cast<double>(resident) / cfg_.linkPagesPerMs;
    }
    const double downtime_ms = est.downtimeMs + cfg_.switchoverMs;

    // Execute: retire on the source, rebuild on the destination. The
    // spec is copied out first — retireVm keeps the object alive, but
    // addVm on another host must not alias it.
    const workload::WorkloadSpec spec = hosts_[src]->workloadSpec(victim);
    const std::size_t logical = host_logical_[src][victim];
    hosts_[src]->retireVm(victim);
    const std::size_t new_idx = hosts_[dst]->addVm(spec);
    host_logical_[dst].push_back(logical);
    vm_locations_[logical].host = dst;
    vm_locations_[logical].index = new_idx;
    ++vm_locations_[logical].migrations;

    stats_.inc("migration.count");
    stats_.inc("migration.precopy_rounds", est.rounds);
    stats_.inc("migration.pages_precopied", est.pagesCopied);
    stats_.inc("migration.downtime_us_total",
               static_cast<std::uint64_t>(
                   std::llround(downtime_ms * 1000.0)));
}

double
Cluster::aggregateThroughput(std::size_t epochs) const
{
    double sum = 0.0;
    for (const auto &host : hosts_)
        sum += host->aggregateThroughput(epochs);
    return sum;
}

void
Cluster::writeJsonFields(JsonWriter &w) const
{
    w.key("stats");
    analysis::writeStatsJson(w, stats_);
    w.key("hosts");
    w.beginArray();
    for (const auto &host : hosts_) {
        w.beginObject();
        w.field("label", host->stats().scope());
        w.field("active_vms",
                static_cast<std::uint64_t>(host->activeVmCount()));
        w.field("pages_shared", host->ksm().pagesShared());
        w.field("pages_sharing", host->ksm().pagesSharing());
        w.field("resident_frames", host->hv().residentFrames());
        w.field("aggregate_rq_s", host->aggregateThroughput());
        w.key("stats");
        analysis::writeStatsJson(w, host->stats());
        w.endObject();
    }
    w.endArray();
}

} // namespace jtps::cluster
