#include "mem/swap_device.hh"

#include "base/logging.hh"

namespace jtps::mem
{

void
SwapDevice::panicMissing(SwapSlot id)
{
    panic("swap-in of nonexistent slot %llu",
          static_cast<unsigned long long>(id));
}

} // namespace jtps::mem
