/**
 * @file
 * The page content model.
 *
 * A real 4 KiB page is modelled by eight 64-bit "sector words", one per
 * 512-byte sector. Every component that writes memory derives the words
 * it stores deterministically from stable identifiers (see base/hash.hh),
 * so two modelled pages compare equal exactly when the real pages they
 * stand for would be byte-identical. This is the property Transparent
 * Page Sharing depends on, and it is all TPS depends on — KSM never
 * looks *inside* a page except to compare and checksum it, so a model
 * that preserves equality/inequality of content preserves KSM behaviour.
 *
 * The 512-byte sector granularity is fine enough to capture the paper's
 * sharing-killers: a single mutated object header, a pointer in a stack
 * frame, or one malloc'd chunk in an otherwise-empty arena page all dirty
 * one sector and make the page unshareable.
 */

#ifndef JTPS_MEM_PAGE_DATA_HH
#define JTPS_MEM_PAGE_DATA_HH

#include <array>
#include <cstdint>

#include "base/hash.hh"

namespace jtps::mem
{

/** Number of modelled sectors per page. */
constexpr unsigned sectorsPerPage = 8;

/**
 * Content of one 4 KiB page, as eight sector words.
 */
struct PageData
{
    std::array<std::uint64_t, sectorsPerPage> word{};

    /** The all-zero page (what the OS hands out, and what GC leaves). */
    static PageData
    zero()
    {
        return PageData{};
    }

    /** A page whose every sector derives from (tag, salt, sector). */
    static PageData
    filled(std::uint64_t tag, std::uint64_t salt)
    {
        PageData d;
        for (unsigned s = 0; s < sectorsPerPage; ++s)
            d.word[s] = hash3(tag, salt, s);
        return d;
    }

    /** True if all sectors are zero. */
    bool
    isZero() const
    {
        for (auto w : word)
            if (w != 0)
                return false;
        return true;
    }

    /** 32-bit checksum, the analogue of KSM's jhash2 over the page. */
    std::uint32_t
    checksum() const
    {
        // Feed the low and high half of every word into the mixer
        // separately so each 32-bit half contributes to the truncated
        // result on its own, not only through the final xor-fold.
        std::uint64_t h = 0x4b534d63686b00ULL; // "KSMchk"
        for (auto w : word) {
            h = hashCombine(h, w & 0xffffffffULL);
            h = hashCombine(h, w >> 32);
        }
        return static_cast<std::uint32_t>(h ^ (h >> 32));
    }

    /** Full-width digest for tree keys and tests. */
    std::uint64_t
    digest() const
    {
        std::uint64_t h = 0x6469676573740aULL;
        for (auto w : word)
            h = hashCombine(h, w);
        return h;
    }

    bool operator==(const PageData &other) const = default;

    /** Lexicographic order, used as the KSM tree key ordering. */
    bool
    operator<(const PageData &other) const
    {
        return word < other.word;
    }
};

} // namespace jtps::mem

#endif // JTPS_MEM_PAGE_DATA_HH
