/**
 * @file
 * The page content model.
 *
 * A real 4 KiB page is modelled by eight 64-bit "sector words", one per
 * 512-byte sector. Every component that writes memory derives the words
 * it stores deterministically from stable identifiers (see base/hash.hh),
 * so two modelled pages compare equal exactly when the real pages they
 * stand for would be byte-identical. This is the property Transparent
 * Page Sharing depends on, and it is all TPS depends on — KSM never
 * looks *inside* a page except to compare and checksum it, so a model
 * that preserves equality/inequality of content preserves KSM behaviour.
 *
 * The 512-byte sector granularity is fine enough to capture the paper's
 * sharing-killers: a single mutated object header, a pointer in a stack
 * frame, or one malloc'd chunk in an otherwise-empty arena page all dirty
 * one sector and make the page unshareable.
 */

#ifndef JTPS_MEM_PAGE_DATA_HH
#define JTPS_MEM_PAGE_DATA_HH

#include <array>
#include <cstddef>
#include <cstdint>

#include "base/hash.hh"

namespace jtps::mem
{

/** Number of modelled sectors per page. */
constexpr unsigned sectorsPerPage = 8;

/** Seed of the checksum chain ("KSMchk"), shared by scalar and lanes. */
constexpr std::uint64_t checksumSeed = 0x4b534d63686b00ULL;

/** Seed of the digest chain ("digest\n"), shared by scalar and lanes. */
constexpr std::uint64_t digestSeed = 0x6469676573740aULL;

/**
 * Content of one 4 KiB page, as eight sector words.
 */
struct PageData
{
    std::array<std::uint64_t, sectorsPerPage> word{};

    /** The all-zero page (what the OS hands out, and what GC leaves). */
    static PageData
    zero()
    {
        return PageData{};
    }

    /** A page whose every sector derives from (tag, salt, sector). */
    static PageData
    filled(std::uint64_t tag, std::uint64_t salt)
    {
        PageData d;
        for (unsigned s = 0; s < sectorsPerPage; ++s)
            d.word[s] = hash3(tag, salt, s);
        return d;
    }

    /** True if all sectors are zero (single OR-reduce, branch-free). */
    constexpr bool
    isZero() const
    {
        std::uint64_t acc = 0;
        for (auto w : word)
            acc |= w;
        return acc == 0;
    }

    /** 32-bit checksum, the analogue of KSM's jhash2 over the page. */
    constexpr std::uint32_t
    checksum() const
    {
        // Feed the low and high half of every word into the mixer
        // separately so each 32-bit half contributes to the truncated
        // result on its own, not only through the final xor-fold.
        std::uint64_t h = checksumSeed;
        for (auto w : word) {
            h = hashCombine(h, w & 0xffffffffULL);
            h = hashCombine(h, w >> 32);
        }
        return static_cast<std::uint32_t>(h ^ (h >> 32));
    }

    /** Full-width digest for tree keys and tests. */
    constexpr std::uint64_t
    digest() const
    {
        std::uint64_t h = digestSeed;
        for (auto w : word)
            h = hashCombine(h, w);
        return h;
    }

    bool operator==(const PageData &other) const = default;

    /** Lexicographic order, used as the KSM tree key ordering. */
    bool
    operator<(const PageData &other) const
    {
        return word < other.word;
    }
};

/** checksum() of the all-zero page, folded at compile time. */
inline constexpr std::uint32_t zeroPageChecksum = PageData{}.checksum();

/** digest() of the all-zero page, folded at compile time. */
inline constexpr std::uint64_t zeroPageDigest = PageData{}.digest();

namespace detail
{

/**
 * Checksum L pages at once. Each lane runs the exact scalar chain of
 * PageData::checksum(), but the lanes are interleaved word by word so
 * the L multiply chains overlap instead of serializing — the scalar
 * chain is latency-bound (three dependent multiplies per hashCombine),
 * the lane form is throughput-bound.
 */
template <unsigned L>
inline void
checksumLanes(const PageData *const *pages, std::uint32_t *out)
{
    std::uint64_t h[L];
    for (unsigned l = 0; l < L; ++l)
        h[l] = checksumSeed;
    for (unsigned s = 0; s < sectorsPerPage; ++s) {
        std::uint64_t lo[L], hi[L];
        for (unsigned l = 0; l < L; ++l) {
            const std::uint64_t w = pages[l]->word[s];
            lo[l] = w & 0xffffffffULL;
            hi[l] = w >> 32;
        }
        hashCombineLanes<L>(h, lo);
        hashCombineLanes<L>(h, hi);
    }
    for (unsigned l = 0; l < L; ++l)
        out[l] = static_cast<std::uint32_t>(h[l] ^ (h[l] >> 32));
}

/** Digest L pages at once; same lane structure as checksumLanes. */
template <unsigned L>
inline void
digestLanes(const PageData *const *pages, std::uint64_t *out)
{
    std::uint64_t h[L];
    for (unsigned l = 0; l < L; ++l)
        h[l] = digestSeed;
    for (unsigned s = 0; s < sectorsPerPage; ++s) {
        std::uint64_t v[L];
        for (unsigned l = 0; l < L; ++l)
            v[l] = pages[l]->word[s];
        hashCombineLanes<L>(h, v);
    }
    for (unsigned l = 0; l < L; ++l)
        out[l] = h[l];
}

/** Branch-free equality of L page pairs (OR-reduce of xors per pair). */
template <unsigned L>
inline void
equalLanes(const PageData *const *a, const PageData *const *b, bool *out)
{
    for (unsigned l = 0; l < L; ++l) {
        std::uint64_t diff = 0;
        for (unsigned s = 0; s < sectorsPerPage; ++s)
            diff |= a[l]->word[s] ^ b[l]->word[s];
        out[l] = diff == 0;
    }
}

} // namespace detail

/** Lane width of the batch kernels; tails < this run the 1-lane form. */
constexpr unsigned kernelLanes = 8;

/**
 * out[i] = pages[i]->checksum() for i in [0, n) — bit-identical to the
 * scalar member, computed kernelLanes pages at a time. The tail shares
 * the same templated code at width 1, so there is exactly one chain
 * implementation to trust.
 */
inline void
checksumBatch(const PageData *const *pages, std::uint32_t *out,
              std::size_t n)
{
    const std::size_t tail = n % kernelLanes;
    std::size_t i = 0;
    for (; i + kernelLanes <= n; i += kernelLanes)
        detail::checksumLanes<kernelLanes>(pages + i, out + i);
    for (std::size_t k = 0; k < tail; ++k)
        detail::checksumLanes<1>(pages + i + k, out + i + k);
}

/** out[i] = pages[i]->digest() for i in [0, n); see checksumBatch. */
inline void
digestBatch(const PageData *const *pages, std::uint64_t *out, std::size_t n)
{
    const std::size_t tail = n % kernelLanes;
    std::size_t i = 0;
    for (; i + kernelLanes <= n; i += kernelLanes)
        detail::digestLanes<kernelLanes>(pages + i, out + i);
    for (std::size_t k = 0; k < tail; ++k)
        detail::digestLanes<1>(pages + i + k, out + i + k);
}

/** out[i] = (*a[i] == *b[i]) for i in [0, n), branch-free per pair. */
inline void
compareBatch(const PageData *const *a, const PageData *const *b, bool *out,
             std::size_t n)
{
    const std::size_t tail = n % kernelLanes;
    std::size_t i = 0;
    for (; i + kernelLanes <= n; i += kernelLanes)
        detail::equalLanes<kernelLanes>(a + i, b + i, out + i);
    for (std::size_t k = 0; k < tail; ++k)
        detail::equalLanes<1>(a + i + k, b + i + k, out + i + k);
}

} // namespace jtps::mem

#endif // JTPS_MEM_PAGE_DATA_HH
