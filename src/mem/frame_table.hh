/**
 * @file
 * Host physical memory: the frame table.
 *
 * The FrameTable owns every host physical 4 KiB frame, its content, its
 * reference count, and its reverse mappings (which VM guest-frames map to
 * it). The hypervisor performs all mapping changes through this API so
 * that the invariant "refcount == number of reverse mappings == number of
 * EPT entries pointing at the frame" can be enforced centrally — it is
 * what makes the paper's owner-oriented accounting well defined.
 *
 * Eviction uses a two-handed clock (referenced bits set by touch()) so
 * that the overcommit experiments (Figs. 7 and 8) scale to millions of
 * frames without O(n) victim scans.
 */

#ifndef JTPS_MEM_FRAME_TABLE_HH
#define JTPS_MEM_FRAME_TABLE_HH

#include <cstdint>
#include <vector>

#include "base/logging.hh"
#include "base/rng.hh"
#include "base/stats.hh"
#include "base/types.hh"
#include "mem/page_data.hh"

namespace jtps::mem
{

/** One reverse-mapping entry: a guest frame of some VM maps here. */
struct Mapping
{
    VmId vm = invalidVm;
    Gfn gfn = invalidFrame;

    bool operator==(const Mapping &other) const = default;
};

/**
 * One host physical frame. Fields are public within the mem module;
 * external code goes through FrameTable.
 */
struct Frame
{
    PageData data;
    std::uint64_t lastTouch = 0; //!< logical access time (LRU age)
    std::uint32_t refcount = 0;
    bool ksmStable = false;  //!< member of the KSM stable tree
    bool referenced = false; //!< accessed bit (kept for introspection)
    bool pinned = false;     //!< never evicted (hypervisor-private)
    /** First reverse mapping, inline: most frames have exactly one. */
    Mapping primary;
    /** Reverse mappings beyond the first (KSM-shared frames). */
    std::vector<Mapping> extra;

    /** Call @p fn for every reverse mapping of this frame. */
    template <typename Fn>
    void
    forEachMapping(Fn &&fn) const
    {
        if (refcount == 0)
            return;
        fn(primary);
        for (const auto &m : extra)
            fn(m);
    }

    /**
     * Collect all reverse mappings into a vector. Allocates per call:
     * test/debug convenience only — hot paths (eviction, forensics,
     * KSM) iterate with forEachMapping() or reserve the vector at the
     * call site.
     */
    std::vector<Mapping>
    mappings() const
    {
        std::vector<Mapping> out;
        forEachMapping([&](const Mapping &m) { out.push_back(m); });
        return out;
    }
};

/**
 * The host frame table: allocation, refcounting, reverse mappings, and
 * clock-based victim selection.
 *
 * Concurrency: the table is single-writer. The const read-side
 * accessors — writeGen(), prefetchWriteGen(), ksmStableEpoch(),
 * frame() const, isAllocated() — are safe to call from multiple
 * threads *while no mutator runs*, which is the regime the parallel
 * KSM classify phase and the forensics walk operate in: they fan
 * read-only work out, join, and only then mutate from one thread.
 * There is no internal synchronization; overlapping a mutator with
 * concurrent readers is a data race.
 */
class FrameTable
{
  public:
    /**
     * @param capacity_frames Size of host physical memory in frames.
     * @param stats Optional stat sink ("host." prefixed counters).
     */
    explicit FrameTable(std::uint64_t capacity_frames,
                        StatSet *stats = nullptr);

    /**
     * Allocate a frame holding @p initial, mapped by @p m.
     * @return the new frame number, or invalidFrame if memory is full
     *         (the caller — the hypervisor — must evict and retry).
     */
    Hfn alloc(const Mapping &m, const PageData &initial);

    /**
     * Allocate a frame with no guest mapping (hypervisor-private memory,
     * e.g. the VM process overhead). Pinned frames are never evicted and
     * are attributed to the VM itself by the analysis layer.
     */
    Hfn allocPinned(const PageData &initial);

    /** Add a reverse mapping (sharing the frame); bumps refcount. */
    void addMapping(Hfn hfn, const Mapping &m);

    /**
     * Remove a reverse mapping; drops refcount and frees the frame when
     * it reaches zero.
     * @return true if the frame was freed.
     */
    bool removeMapping(Hfn hfn, const Mapping &m);

    /** Free a pinned frame. */
    void freePinned(Hfn hfn);

    /**
     * Mark/unmark @p hfn as a KSM stable frame. All stable-flag changes
     * go through here (not through frame().ksmStable) so that the O(1)
     * sharing counters stay consistent.
     */
    void setKsmStable(Hfn hfn, bool stable);

    /**
     * Number of KSM stable frames, like /sys/kernel/mm/ksm/pages_shared.
     * Maintained incrementally: the sharing monitor samples this on a
     * period, and a full-table walk per sample does not scale.
     */
    std::uint64_t ksmStableFrames() const { return ksm_stable_frames_; }

    /**
     * Number of guest pages deduplicated into stable frames, like
     * pages_sharing: sum over stable frames of refcount - 1. O(1).
     */
    std::uint64_t ksmSharingMappings() const
    {
        return ksm_sharing_mappings_;
    }

    /**
     * Write generation of @p hfn: a value from the table-wide monotonic
     * clock, assigned on allocation and re-assigned on every content
     * change (bumpWriteGen()) and on every stable-flag transition
     * (setKsmStable()). Because the clock is global and never reused,
     * an equal generation proves that a cached observation refers to
     * *this* allocation of the frame number (a freed and recycled hfn
     * gets a fresh generation from allocRaw()), that the content is
     * unchanged since the observation, and that the frame has not
     * joined or left the stable tree in between — which is what lets
     * the KSM scanner skip checksum work, and even loading the Frame
     * itself, without any content heuristic. Kept in a dense side
     * array so the scanner's generation compare touches 8 bytes per
     * frame instead of a whole Frame.
     */
    std::uint64_t
    writeGen(Hfn hfn) const
    {
        jtps_assert(isAllocated(hfn));
        return write_gens_[hfn];
    }

    /**
     * Advance @p hfn's write generation (the caller is about to change,
     * or has just changed, the frame's content). All content mutation
     * funnels through the hypervisor's pageForWrite(), which calls
     * this; fresh allocations get a new generation from allocRaw().
     */
    void
    bumpWriteGen(Hfn hfn)
    {
        jtps_assert(isAllocated(hfn));
        write_gens_[hfn] = ++write_gen_clock_;
    }

    /**
     * Hint that writeGen(@p hfn) is about to be read. The generation
     * array is indexed by host frame number while the KSM scanner
     * walks in guest frame order, so the read is effectively random;
     * issuing it a few pages ahead hides the miss latency. Tolerates
     * any hfn (a stale EPT snapshot may race the walk harmlessly).
     */
    void
    prefetchWriteGen(Hfn hfn) const
    {
        if (hfn < write_gens_.size())
            __builtin_prefetch(write_gens_.data() + hfn);
    }

    /**
     * Stable-tree epoch: bumped whenever the set of stable frames able
     * to accept a new sharer can have *grown* — a frame is (un)marked
     * stable, or a stable frame loses a mapping (its refcount drops
     * below max_page_sharing, or it dies and its tree node goes
     * stale). While the epoch is unchanged, a stable-tree probe that
     * missed must still miss: merges only ever make stable frames
     * fuller. The KSM scanner uses this to skip re-probing on behalf
     * of unchanged pages.
     */
    std::uint64_t ksmStableEpoch() const { return ksm_stable_epoch_; }

    /** Mutable access to a frame (must be allocated). */
    Frame &
    frame(Hfn hfn)
    {
        jtps_assert(isAllocated(hfn));
        return frames_[hfn];
    }

    /** Read-only access to a frame (must be allocated). */
    const Frame &
    frame(Hfn hfn) const
    {
        jtps_assert(isAllocated(hfn));
        return frames_[hfn];
    }

    /** True if @p hfn currently holds an allocated frame. */
    bool
    isAllocated(Hfn hfn) const
    {
        return hfn < frames_.size() && allocBit(hfn);
    }

    /** Mark the frame recently used (clock second chance). */
    void touch(Hfn hfn);

    /**
     * Pick an eviction victim by sampled LRU: draw a fixed-size random
     * sample of frames and evict the least recently touched eligible
     * one — a good approximation of the kernel's global LRU reclaim
     * that treats every process's memory uniformly by recency. Pinned
     * frames are skipped; frames with refcount > 1 are only eligible
     * when @p allow_shared is set. Falls back to a linear sweep when
     * the sample finds nothing eligible.
     * @return a victim frame number, or invalidFrame if none exists.
     */
    Hfn pickVictim(bool allow_shared);

    /** Host physical capacity in frames. */
    std::uint64_t capacity() const { return capacity_; }

    /** Number of allocated (resident) frames. */
    std::uint64_t resident() const { return resident_; }

    /** Frames still available without eviction. */
    std::uint64_t freeFrames() const { return capacity_ - resident_; }

    /**
     * Call @p fn(hfn, frame) for every allocated frame. Word-scans the
     * allocation bitmap, so sparse tables (a few resident frames in a
     * large capacity) cost one 64-bit test per 64 empty slots instead
     * of one branch per slot.
     */
    template <typename Fn>
    void
    forEachResident(Fn &&fn) const
    {
        for (std::size_t w = 0; w < allocated_.size(); ++w) {
            std::uint64_t bits = allocated_[w];
            while (bits != 0) {
                const int bit = __builtin_ctzll(bits);
                bits &= bits - 1;
                const Hfn h =
                    (static_cast<Hfn>(w) << 6) | static_cast<Hfn>(bit);
                fn(h, frames_[h]);
            }
        }
    }

    /**
     * Verify internal consistency (refcount matches rmap arity, resident
     * counter matches allocation bitmap). Used by tests; panics on
     * violation.
     */
    void checkConsistency() const;

  private:
    Hfn allocRaw(const PageData &initial);
    void freeRaw(Hfn hfn);

    /** Test @p hfn's allocation bit (hfn < frames_.size() required). */
    bool
    allocBit(Hfn hfn) const
    {
        return (allocated_[hfn >> 6] >> (hfn & 63)) & 1;
    }

    void
    setAllocBit(Hfn hfn)
    {
        allocated_[hfn >> 6] |= std::uint64_t{1} << (hfn & 63);
    }

    void
    clearAllocBit(Hfn hfn)
    {
        allocated_[hfn >> 6] &= ~(std::uint64_t{1} << (hfn & 63));
    }

    std::uint64_t capacity_;
    std::uint64_t resident_ = 0;
    /** Incremental counters behind ksmStableFrames()/ksmSharingMappings();
     *  checkConsistency() cross-checks them against a full walk. */
    std::uint64_t ksm_stable_frames_ = 0;
    std::uint64_t ksm_sharing_mappings_ = 0;
    /** Monotonic clock behind writeGen(); never yields 0, so a
     *  zero-initialized cache entry can never match a live frame. */
    std::uint64_t write_gen_clock_ = 0;
    std::uint64_t ksm_stable_epoch_ = 1;
    std::vector<Frame> frames_;
    /** Per-frame write generations, parallel to frames_. */
    std::vector<std::uint64_t> write_gens_;
    /** Allocation bitmap, 64 frames per word (bit i of word w covers
     *  hfn 64w + i) so forEachResident() can skip empty runs wordwise. */
    std::vector<std::uint64_t> allocated_;
    std::vector<Hfn> free_list_;
    std::uint64_t clock_hand_ = 0;   //!< fallback sweep position
    std::uint64_t access_clock_ = 0; //!< logical time for LRU ages
    Rng victim_rng_{stringTag("frame-lru")};
    StatSet *stats_;
};

} // namespace jtps::mem

#endif // JTPS_MEM_FRAME_TABLE_HH
