/**
 * @file
 * Host physical memory: the frame table.
 *
 * The FrameTable owns every host physical 4 KiB frame, its content, its
 * reference count, and its reverse mappings (which VM guest-frames map to
 * it). The hypervisor performs all mapping changes through this API so
 * that the invariant "refcount == number of reverse mappings == number of
 * EPT entries pointing at the frame" can be enforced centrally — it is
 * what makes the paper's owner-oriented accounting well defined.
 *
 * Eviction uses a two-handed clock (referenced bits set by touch()) so
 * that the overcommit experiments (Figs. 7 and 8) scale to millions of
 * frames without O(n) victim scans.
 *
 * Striping (256-VM hosts, docs/ARCHITECTURE.md): the table's derived
 * state is split into kStripes slices so the KSM commit phase can run
 * digest-sharded on a thread pool without sharing mutable cache lines:
 *
 *  - the KSM stable epoch is one counter *per digest stripe*
 *    (digest mod kStripes); merges for content in one stripe never
 *    bump — or read — another stripe's epoch;
 *  - the sharing counters behind ksmStableFrames()/ksmSharingMappings()
 *    and the resident count are additionally kept *per frame stripe*
 *    (hfn mod kStripes) — which is exactly bit (hfn mod 64) of each
 *    allocation-bitmap word, so a stripe's allocation bits are one
 *    fixed bit lane of the existing bitmap — giving
 *    checkConsistencyShard() an O(capacity / kStripes) probe;
 *  - the write-generation clock is one counter per *lane*: lane 0
 *    serves every serial mutator, lanes 1..kStripes serve the KSM
 *    commit shards, and the lane id is encoded in the low bits of each
 *    generation so values stay globally unique (and per-lane
 *    deterministic) without any atomics;
 *  - the eviction fallback sweep keeps one clock hand per frame stripe
 *    and merges them deterministically (stripes visited round-robin
 *    from a persistent stripe cursor).
 */

#ifndef JTPS_MEM_FRAME_TABLE_HH
#define JTPS_MEM_FRAME_TABLE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "base/logging.hh"
#include "base/rng.hh"
#include "base/stats.hh"
#include "base/types.hh"
#include "mem/page_data.hh"

namespace jtps::mem
{

/** One reverse-mapping entry: a guest frame of some VM maps here. */
struct Mapping
{
    VmId vm = invalidVm;
    Gfn gfn = invalidFrame;

    bool operator==(const Mapping &other) const = default;
};

/**
 * One host physical frame. Fields are public within the mem module;
 * external code goes through FrameTable.
 */
struct Frame
{
    PageData data;
    std::uint64_t lastTouch = 0; //!< logical access time (LRU age)
    std::uint32_t refcount = 0;
    bool ksmStable = false;  //!< member of the KSM stable tree
    bool referenced = false; //!< accessed bit (kept for introspection)
    bool pinned = false;     //!< never evicted (hypervisor-private)
    /**
     * Digest stripe (content digest mod kStripes) recorded when the
     * frame joined the stable tree, so the transitions that must bump
     * the stable epoch — losing a mapping, leaving the tree — bump the
     * stripe the frame's content actually lives in.
     */
    std::uint8_t ksmStripe = 0;
    /** First reverse mapping, inline: most frames have exactly one. */
    Mapping primary;
    /** Reverse mappings beyond the first (KSM-shared frames). */
    std::vector<Mapping> extra;

    /** Call @p fn for every reverse mapping of this frame. */
    template <typename Fn>
    void
    forEachMapping(Fn &&fn) const
    {
        if (refcount == 0)
            return;
        fn(primary);
        for (const auto &m : extra)
            fn(m);
    }

    /**
     * Collect all reverse mappings into a vector. Allocates per call:
     * test/debug convenience only — hot paths (eviction, forensics,
     * KSM) iterate with forEachMapping() or reserve the vector at the
     * call site.
     */
    std::vector<Mapping>
    mappings() const
    {
        std::vector<Mapping> out;
        forEachMapping([&](const Mapping &m) { out.push_back(m); });
        return out;
    }
};

/**
 * The host frame table: allocation, refcounting, reverse mappings, and
 * clock-based victim selection.
 *
 * Concurrency: the table is single-writer for everything except the
 * KSM commit-shard entry points. The const read-side accessors —
 * writeGen(), prefetchWriteGen(), ksmStableEpoch(), frame() const,
 * isAllocated() — are safe to call from multiple threads *while no
 * mutator runs*, which is the regime the parallel KSM classify phase
 * and the forensics walk operate in. The *Shard mutators
 * (addMappingShard, removeMappingShard, setKsmStableShard) may run
 * concurrently from different commit shards because digest-sharding
 * guarantees their frame sets, epoch stripes and generation lanes are
 * disjoint; everything they cannot touch race-free (shared counters,
 * the free list, the access clock, stats) is deferred to the serial
 * commit* / finishDeferredFree() completions. There is no internal
 * synchronization; any overlap outside that protocol is a data race.
 */
class FrameTable
{
  public:
    /**
     * Stripe fan-out for stable epochs, sharing counters, allocation
     * bit lanes and clock hands. KSM commit-shard counts must divide
     * it so a digest shard owns whole epoch stripes.
     */
    static constexpr unsigned kStripes = 64;

    /** Low bits of every write generation that carry the lane id. */
    static constexpr unsigned kGenLaneBits = 7;

    /** Reverse-mapping capacity reserved on a frame's first spill out
     *  of the inline mapping (16 sharers before the first regrowth),
     *  so 256-VM KSM chains do not reallocate per merge. */
    static constexpr std::size_t kExtraReserve = 15;

    /** Digest stripe of @p digest (stable-epoch striping). */
    static constexpr unsigned
    stripeOfDigest(std::uint64_t digest)
    {
        return static_cast<unsigned>(digest % kStripes);
    }

    /** Frame stripe of @p hfn (counter/bitmap/clock-hand striping). */
    static constexpr unsigned
    stripeOfFrame(Hfn hfn)
    {
        return static_cast<unsigned>(hfn % kStripes);
    }

    /**
     * @param capacity_frames Size of host physical memory in frames.
     * @param stats Optional stat sink ("host." prefixed counters).
     */
    explicit FrameTable(std::uint64_t capacity_frames,
                        StatSet *stats = nullptr);

    /**
     * Allocate a frame holding @p initial, mapped by @p m.
     * @return the new frame number, or invalidFrame if memory is full
     *         (the caller — the hypervisor — must evict and retry).
     */
    Hfn alloc(const Mapping &m, const PageData &initial);

    /**
     * Allocate a frame with no guest mapping (hypervisor-private memory,
     * e.g. the VM process overhead). Pinned frames are never evicted and
     * are attributed to the VM itself by the analysis layer.
     */
    Hfn allocPinned(const PageData &initial);

    /** Add a reverse mapping (sharing the frame); bumps refcount. */
    void addMapping(Hfn hfn, const Mapping &m);

    /**
     * Remove a reverse mapping; drops refcount and frees the frame when
     * it reaches zero.
     * @return true if the frame was freed.
     */
    bool removeMapping(Hfn hfn, const Mapping &m);

    /** Free a pinned frame. */
    void freePinned(Hfn hfn);

    /**
     * Mark/unmark @p hfn as a KSM stable frame. All stable-flag changes
     * go through here (not through frame().ksmStable) so that the O(1)
     * sharing counters stay consistent. The frame's content digest is
     * derived internally to pick the epoch stripe.
     */
    void setKsmStable(Hfn hfn, bool stable);

    // ------------------------------------------------------------------
    // KSM commit-shard protocol (see the class comment). Shard-side
    // calls mutate only the frame's own fields plus shard-owned stripe
    // state; the serial reduce retires the deferred global effects in
    // canonical order via the commit* / finishDeferredFree() calls.
    // ------------------------------------------------------------------

    /**
     * addMapping() restricted to what a commit shard may mutate: the
     * frame's own fields. The sharing counters and the mappings-added
     * stat are owed to a later serial commitSharingAdd().
     */
    void addMappingShard(Hfn hfn, const Mapping &m);

    /**
     * removeMapping() restricted to a commit shard: frame fields only,
     * and never a free — when the last mapping goes, the frame is left
     * allocated with refcount 0 (content intact, so same-shard stable
     * probes can still read it) until the serial reduce calls
     * finishDeferredFree(). Only legal on non-stable frames (commit
     * merge sources are never stable, so no epoch bump can be owed).
     * @return true if the frame is now such a deferred-free zombie.
     */
    bool removeMappingShard(Hfn hfn, const Mapping &m);

    /**
     * The shard-side half of setKsmStable(hfn, true): stable flag,
     * epoch-stripe bump and a fresh write generation from @p lane's
     * clock — everything same-shard readers depend on mid-commit. The
     * sharing counters are owed to commitStablePromote(). @p digest
     * must be the frame's content digest (it selects the stripe).
     */
    void setKsmStableShard(Hfn hfn, std::uint64_t digest, unsigned lane);

    /** Serial completion of one deferred addMappingShard() on a stable
     *  frame: sharing counters and the mappings-added stat. */
    void commitSharingAdd(Hfn hfn);

    /**
     * Serial completion of one deferred setKsmStableShard():
     * stable-frame and sharing counters. @p refcount_at_set must be
     * the refcount the frame had when the shard set the flag (later
     * in-shard merges may have grown it since, and those carry their
     * own commitSharingAdd()).
     */
    void commitStablePromote(Hfn hfn, std::uint32_t refcount_at_set);

    /** Serial completion of a removeMappingShard() zombie: the actual
     *  free (free list, bitmap, resident counters, stats). */
    void finishDeferredFree(Hfn hfn);

    /**
     * Number of KSM stable frames, like /sys/kernel/mm/ksm/pages_shared.
     * Maintained incrementally: the sharing monitor samples this on a
     * period, and a full-table walk per sample does not scale.
     */
    std::uint64_t ksmStableFrames() const { return ksm_stable_frames_; }

    /**
     * Number of guest pages deduplicated into stable frames, like
     * pages_sharing: sum over stable frames of refcount - 1. O(1).
     */
    std::uint64_t ksmSharingMappings() const
    {
        return ksm_sharing_mappings_;
    }

    /**
     * Write generation of @p hfn: a value from a monotonic per-lane
     * clock, assigned on allocation and re-assigned on every content
     * change (bumpWriteGen()) and on every stable-flag transition
     * (setKsmStable()). The lane id lives in the low kGenLaneBits of
     * the value and every lane counts up independently, so generations
     * are globally unique and never reused; an equal generation proves
     * that a cached observation refers to *this* allocation of the
     * frame number (a freed and recycled hfn gets a fresh generation
     * from allocRaw()), that the content is unchanged since the
     * observation, and that the frame has not joined or left the
     * stable tree in between — which is what lets the KSM scanner skip
     * checksum work, and even loading the Frame itself, without any
     * content heuristic. Kept in a dense side array so the scanner's
     * generation compare touches 8 bytes per frame instead of a whole
     * Frame.
     */
    std::uint64_t
    writeGen(Hfn hfn) const
    {
        jtps_assert(isAllocated(hfn));
        return write_gens_[hfn];
    }

    /**
     * Advance @p hfn's write generation (the caller is about to change,
     * or has just changed, the frame's content). All content mutation
     * funnels through the hypervisor's pageForWrite(), which calls
     * this; fresh allocations get a new generation from allocRaw().
     * Serial mutators draw from lane 0.
     */
    void
    bumpWriteGen(Hfn hfn)
    {
        jtps_assert(isAllocated(hfn));
        write_gens_[hfn] = nextGen(0);
    }

    /**
     * Hint that writeGen(@p hfn) is about to be read. The generation
     * array is indexed by host frame number while the KSM scanner
     * walks in guest frame order, so the read is effectively random;
     * issuing it a few pages ahead hides the miss latency. Tolerates
     * any hfn (a stale EPT snapshot may race the walk harmlessly).
     */
    void
    prefetchWriteGen(Hfn hfn) const
    {
        if (hfn < write_gens_.size())
            __builtin_prefetch(write_gens_.data() + hfn);
    }

    /**
     * Hint that frame(@p hfn)'s content is about to be read. The batch
     * scanner stages a window of frames whose hfns are effectively
     * random; issuing the content lines for the whole window up front
     * overlaps their miss latency. Tolerates any hfn; pure hint.
     */
    void
    prefetchFrame(Hfn hfn) const
    {
        if (hfn < frames_.size()) {
            const char *p =
                reinterpret_cast<const char *>(&frames_[hfn]);
            // The sector words span a cache line or two depending on
            // the Frame's alignment; cover both ends.
            __builtin_prefetch(p);
            __builtin_prefetch(p + sizeof(Frame) - 1);
        }
    }

    /**
     * Stable-tree epoch of @p digest's stripe: bumped whenever the set
     * of stable frames *of that stripe* able to accept a new sharer
     * can have grown — a frame is (un)marked stable, or a stable frame
     * loses a mapping (its refcount drops below max_page_sharing, or
     * it dies and its tree node goes stale). While the stripe's epoch
     * is unchanged, a stable-tree probe for content in the stripe that
     * missed must still miss: merges only ever make stable frames
     * fuller. The KSM scanner uses this to skip re-probing on behalf
     * of unchanged pages; striping it by digest is what lets commit
     * shards read and bump epochs without ever observing another
     * shard's transitions.
     */
    std::uint64_t
    ksmStableEpoch(std::uint64_t digest) const
    {
        return ksm_stable_epochs_[stripeOfDigest(digest)];
    }

    /** Mutable access to a frame (must be allocated). */
    Frame &
    frame(Hfn hfn)
    {
        jtps_assert(isAllocated(hfn));
        return frames_[hfn];
    }

    /** Read-only access to a frame (must be allocated). */
    const Frame &
    frame(Hfn hfn) const
    {
        jtps_assert(isAllocated(hfn));
        return frames_[hfn];
    }

    /** True if @p hfn currently holds an allocated frame. */
    bool
    isAllocated(Hfn hfn) const
    {
        return hfn < frames_.size() && allocBit(hfn);
    }

    /** Mark the frame recently used (clock second chance). */
    void touch(Hfn hfn);

    /**
     * Pick an eviction victim by sampled LRU: draw a fixed-size random
     * sample of frames and evict the least recently touched eligible
     * one — a good approximation of the kernel's global LRU reclaim
     * that treats every process's memory uniformly by recency. Pinned
     * frames are skipped; frames with refcount > 1 are only eligible
     * when @p allow_shared is set. Falls back to a striped clock sweep
     * when the sample finds nothing eligible: stripes are visited
     * round-robin from a persistent stripe cursor, each advancing its
     * own hand over its own bit lane of the allocation bitmap
     * (`host.shard_clock_sweeps` counts per-stripe sweeps), so the
     * merged order is deterministic while the sweep state stays one
     * hand per stripe instead of one global hot word.
     * @return a victim frame number, or invalidFrame if none exists.
     */
    Hfn pickVictim(bool allow_shared);

    /** Host physical capacity in frames. */
    std::uint64_t capacity() const { return capacity_; }

    /** Number of allocated (resident) frames. */
    std::uint64_t resident() const { return resident_; }

    /** Frames still available without eviction. */
    std::uint64_t freeFrames() const { return capacity_ - resident_; }

    /**
     * Call @p fn(hfn, frame) for every allocated frame. Word-scans the
     * allocation bitmap, so sparse tables (a few resident frames in a
     * large capacity) cost one 64-bit test per 64 empty slots instead
     * of one branch per slot.
     */
    template <typename Fn>
    void
    forEachResident(Fn &&fn) const
    {
        for (std::size_t w = 0; w < allocated_.size(); ++w) {
            std::uint64_t bits = allocated_[w];
            while (bits != 0) {
                const int bit = __builtin_ctzll(bits);
                bits &= bits - 1;
                const Hfn h =
                    (static_cast<Hfn>(w) << 6) | static_cast<Hfn>(bit);
                fn(h, frames_[h]);
            }
        }
    }

    /**
     * Verify internal consistency (refcount matches rmap arity, resident
     * counter matches allocation bitmap, per-stripe counters sum to the
     * globals). Used by tests; panics on violation.
     */
    void checkConsistency() const;

    /**
     * checkConsistency() restricted to one frame stripe: walks only
     * bit @p stripe of each allocation-bitmap word — O(capacity /
     * kStripes) — and validates the stripe's frames against the
     * per-stripe counters. Property fuzzes on 256-VM tables probe one
     * stripe per checkpoint instead of paying the full walk.
     */
    void checkConsistencyShard(unsigned stripe) const;

  private:
    Hfn allocRaw(const PageData &initial);
    void freeRaw(Hfn hfn);

    /** Next generation from @p lane's clock (never 0: the counter
     *  starts above 0 and is shifted left of the lane id). */
    std::uint64_t
    nextGen(unsigned lane)
    {
        jtps_assert(lane <= kStripes);
        return (++gen_clocks_[lane] << kGenLaneBits) |
               static_cast<std::uint64_t>(lane);
    }

    /** First spill out of the inline mapping: reserve once so KSM
     *  chains grow without per-merge reallocation. */
    void
    reserveExtra(Frame &f)
    {
        if (f.extra.empty() && f.extra.capacity() == 0)
            f.extra.reserve(kExtraReserve);
    }

    /** Last unshare: release the reverse-mapping storage. */
    void
    shrinkExtra(Frame &f)
    {
        if (f.extra.empty() && f.extra.capacity() != 0)
            f.extra = std::vector<Mapping>{};
    }

    /** Frames of @p stripe present in the table (hfn % kStripes ==
     *  stripe, hfn < frames_.size()). */
    std::uint64_t
    stripeFrameCount(unsigned stripe) const
    {
        const std::uint64_t n = frames_.size();
        return n > stripe ? (n - stripe - 1) / kStripes + 1 : 0;
    }

    /** Test @p hfn's allocation bit (hfn < frames_.size() required). */
    bool
    allocBit(Hfn hfn) const
    {
        return (allocated_[hfn >> 6] >> (hfn & 63)) & 1;
    }

    void
    setAllocBit(Hfn hfn)
    {
        allocated_[hfn >> 6] |= std::uint64_t{1} << (hfn & 63);
    }

    void
    clearAllocBit(Hfn hfn)
    {
        allocated_[hfn >> 6] &= ~(std::uint64_t{1} << (hfn & 63));
    }

    std::uint64_t capacity_;
    std::uint64_t resident_ = 0;
    /** Incremental counters behind ksmStableFrames()/ksmSharingMappings();
     *  checkConsistency() cross-checks them against a full walk. */
    std::uint64_t ksm_stable_frames_ = 0;
    std::uint64_t ksm_sharing_mappings_ = 0;
    /** Per-frame-stripe mirrors of resident_/stable/sharing, updated in
     *  lockstep (serial paths) or via the commit* completions (shard
     *  paths), so checkConsistencyShard() can recount one stripe. */
    std::array<std::uint64_t, kStripes> resident_by_stripe_{};
    std::array<std::uint64_t, kStripes> stable_by_stripe_{};
    std::array<std::uint64_t, kStripes> sharing_by_stripe_{};
    /** Per-lane generation clocks (lane 0 = serial mutators, lanes
     *  1..kStripes = KSM commit shards); see writeGen(). */
    std::array<std::uint64_t, kStripes + 1> gen_clocks_{};
    /** Per-digest-stripe stable epochs; start at 1 so a
     *  zero-initialized cached epoch can never match. */
    std::array<std::uint64_t, kStripes> ksm_stable_epochs_;
    std::vector<Frame> frames_;
    /** Per-frame write generations, parallel to frames_. */
    std::vector<std::uint64_t> write_gens_;
    /** Allocation bitmap, 64 frames per word (bit i of word w covers
     *  hfn 64w + i, i.e. bit i is frame stripe i's lane) so
     *  forEachResident() can skip empty runs wordwise and per-stripe
     *  walks mask one bit per word. */
    std::vector<std::uint64_t> allocated_;
    std::vector<Hfn> free_list_;
    /** Fallback sweep positions, one hand per frame stripe, plus the
     *  stripe the next fallback resumes from. */
    std::array<std::uint64_t, kStripes> clock_hands_{};
    unsigned clock_stripe_cursor_ = 0;
    std::uint64_t access_clock_ = 0; //!< logical time for LRU ages
    Rng victim_rng_{stringTag("frame-lru")};
    StatSet *stats_;
};

} // namespace jtps::mem

#endif // JTPS_MEM_FRAME_TABLE_HH
