/**
 * @file
 * Host swap device.
 *
 * When the host overcommits (the density experiments of Figs. 7 and 8),
 * evicted frames are written here together with their reverse-mapping
 * list, so that a later fault can restore the frame *and* its sharing
 * structure. Swap-in re-establishes every mapping the frame had; this
 * mirrors Linux's swap cache behaviour closely enough for the throughput
 * model, and keeps the refcount invariants exact.
 */

#ifndef JTPS_MEM_SWAP_DEVICE_HH
#define JTPS_MEM_SWAP_DEVICE_HH

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/logging.hh"

#include "base/stats.hh"
#include "base/trace.hh"
#include "base/types.hh"
#include "mem/frame_table.hh"
#include "mem/page_data.hh"

namespace jtps::mem
{

/** Identifier of a swap slot. */
using SwapSlot = std::uint64_t;

/** Sentinel for "no swap slot". */
constexpr SwapSlot invalidSwapSlot = UINT64_MAX;

/**
 * Where an evicted page's content lives. The paper's related work
 * (§VI, Difference Engine / Active Memory Expansion) pages to
 * *compressed RAM* before disk: refaults from the RAM tier cost a
 * decompression, not a disk seek.
 */
enum class SwapTier : std::uint8_t
{
    Disk,
    CompressedRam,
};

/**
 * The swap device: a map from slot id to stored page content plus the
 * mappings that referenced the evicted frame.
 */
class SwapDevice
{
  public:
    explicit SwapDevice(StatSet *stats = nullptr) : stats_(stats) {}

    /** Wire a trace sink (swap_out / swap_in events); nullptr detaches. */
    void setTrace(TraceBuffer *trace) { trace_ = trace; }

    /** Contents of one slot. */
    struct Slot
    {
        PageData data;
        std::vector<Mapping> mappings;
        SwapTier tier = SwapTier::Disk;
    };

    /** Store an evicted page; returns the slot id. */
    SwapSlot
    store(const PageData &data, std::vector<Mapping> mappings,
          SwapTier tier = SwapTier::Disk)
    {
        SwapSlot id = next_slot_++;
        slots_.emplace(id, Slot{data, std::move(mappings), tier});
        if (tier == SwapTier::CompressedRam)
            ++ram_slots_;
        if (stats_) {
            stats_->inc("host.pswpout");
            stats_->set("host.swap_slots", slots_.size());
            stats_->set("host.swap_slots_ram", ram_slots_);
        }
        if (trace_) {
            const Slot &s = slots_.at(id);
            trace_->record(TraceEventType::SwapOut,
                           s.mappings.empty() ? invalidVm
                                              : s.mappings.front().vm,
                           s.mappings.empty() ? 0 : s.mappings.front().gfn,
                           tier == SwapTier::CompressedRam);
        }
        return id;
    }

    /** Tier of an existing slot. */
    SwapTier
    tier(SwapSlot id) const
    {
        auto it = slots_.find(id);
        if (it == slots_.end())
            panicMissing(id);
        return it->second.tier;
    }

    /** Remove and return a slot (swap-in). */
    Slot
    take(SwapSlot id)
    {
        auto it = slots_.find(id);
        if (it == slots_.end())
            panicMissing(id);
        Slot s = std::move(it->second);
        slots_.erase(it);
        if (s.tier == SwapTier::CompressedRam) {
            jtps_assert(ram_slots_ > 0);
            --ram_slots_;
        }
        if (stats_) {
            stats_->inc("host.pswpin");
            stats_->set("host.swap_slots", slots_.size());
            stats_->set("host.swap_slots_ram", ram_slots_);
        }
        if (trace_) {
            trace_->record(TraceEventType::SwapIn,
                           s.mappings.empty() ? invalidVm
                                              : s.mappings.front().vm,
                           s.mappings.empty() ? 0 : s.mappings.front().gfn,
                           s.tier == SwapTier::CompressedRam);
        }
        return s;
    }

    /** Slots currently held in the compressed-RAM tier. */
    std::uint64_t ramSlots() const { return ram_slots_; }

    /**
     * Remove a single mapping from a slot (the guest discarded the page
     * while it was swapped out). Frees the slot when no mappings remain.
     * @return true if the slot was freed.
     */
    bool
    dropMapping(SwapSlot id, const Mapping &m)
    {
        auto it = slots_.find(id);
        if (it == slots_.end())
            panicMissing(id);
        auto &maps = it->second.mappings;
        auto mit = std::find(maps.begin(), maps.end(), m);
        if (mit != maps.end())
            maps.erase(mit);
        if (maps.empty()) {
            if (it->second.tier == SwapTier::CompressedRam) {
                jtps_assert(ram_slots_ > 0);
                --ram_slots_;
            }
            slots_.erase(it);
            if (stats_) {
                stats_->set("host.swap_slots", slots_.size());
                stats_->set("host.swap_slots_ram", ram_slots_);
            }
            return true;
        }
        return false;
    }

    /** True if the slot exists. */
    bool has(SwapSlot id) const { return slots_.count(id) != 0; }

    /** Number of occupied slots. */
    std::uint64_t used() const { return slots_.size(); }

  private:
    [[noreturn]] static void panicMissing(SwapSlot id);

    std::unordered_map<SwapSlot, Slot> slots_;
    SwapSlot next_slot_ = 0;
    std::uint64_t ram_slots_ = 0;
    StatSet *stats_;
    TraceBuffer *trace_ = nullptr;
};

} // namespace jtps::mem

#endif // JTPS_MEM_SWAP_DEVICE_HH
