#include "mem/frame_table.hh"

#include <algorithm>

#include "base/logging.hh"

namespace jtps::mem
{

FrameTable::FrameTable(std::uint64_t capacity_frames, StatSet *stats)
    : capacity_(capacity_frames), stats_(stats)
{
    jtps_assert(capacity_frames > 0);
    // Register at zero so the counter appears in every registry even if
    // the sampled-LRU fast path never misses.
    if (stats_)
        stats_->counter("host.victim_fallback_sweeps");
}

Hfn
FrameTable::allocRaw(const PageData &initial)
{
    if (resident_ >= capacity_)
        return invalidFrame;

    Hfn hfn;
    if (!free_list_.empty()) {
        hfn = free_list_.back();
        free_list_.pop_back();
    } else {
        hfn = frames_.size();
        frames_.emplace_back();
        if ((hfn >> 6) >= allocated_.size())
            allocated_.push_back(0);
        write_gens_.push_back(0);
    }

    Frame &f = frames_[hfn];
    f.data = initial;
    // A recycled hfn gets a fresh generation here, so any cache entry
    // keyed by (hfn, generation) from the previous tenant can never
    // match again.
    write_gens_[hfn] = ++write_gen_clock_;
    f.refcount = 0;
    f.ksmStable = false;
    f.referenced = true;
    f.lastTouch = ++access_clock_;
    f.pinned = false;
    f.primary = Mapping{};
    f.extra.clear();
    setAllocBit(hfn);
    ++resident_;
    if (stats_)
        stats_->inc("host.frames_allocated");
    return hfn;
}

void
FrameTable::freeRaw(Hfn hfn)
{
    jtps_assert(isAllocated(hfn));
    jtps_assert(frames_[hfn].refcount == 0);
    clearAllocBit(hfn);
    if (frames_[hfn].ksmStable) {
        // All mappings are already gone (refcount 0), so the frame's
        // sharing contribution was removed mapping by mapping; only
        // the stable-frame count remains to drop.
        --ksm_stable_frames_;
        frames_[hfn].ksmStable = false;
    }
    frames_[hfn].extra.clear();
    free_list_.push_back(hfn);
    --resident_;
    if (stats_)
        stats_->inc("host.frames_freed");
}

Hfn
FrameTable::alloc(const Mapping &m, const PageData &initial)
{
    Hfn hfn = allocRaw(initial);
    if (hfn == invalidFrame)
        return invalidFrame;
    Frame &f = frames_[hfn];
    f.primary = m;
    f.refcount = 1;
    return hfn;
}

Hfn
FrameTable::allocPinned(const PageData &initial)
{
    Hfn hfn = allocRaw(initial);
    if (hfn == invalidFrame)
        return invalidFrame;
    Frame &f = frames_[hfn];
    f.pinned = true;
    f.refcount = 1; // the hypervisor itself holds the reference
    return hfn;
}

void
FrameTable::addMapping(Hfn hfn, const Mapping &m)
{
    Frame &f = frame(hfn);
    jtps_assert(!f.pinned);
    jtps_assert(f.refcount >= 1);
    f.extra.push_back(m);
    ++f.refcount;
    if (f.ksmStable)
        ++ksm_sharing_mappings_;
    if (stats_)
        stats_->inc("host.mappings_added");
}

bool
FrameTable::removeMapping(Hfn hfn, const Mapping &m)
{
    Frame &f = frame(hfn);
    jtps_assert(!f.pinned);
    jtps_assert(f.refcount >= 1);
    // Dropping a mapping of a stable frame can reopen merge capacity
    // (refcount falls below max_page_sharing) or kill the frame
    // (its stable-tree node goes stale and will be pruned on the next
    // probe), so cached stable-probe misses must be revalidated.
    if (f.ksmStable)
        ++ksm_stable_epoch_;

    if (f.primary == m) {
        if (f.extra.empty()) {
            f.refcount = 0;
            freeRaw(hfn);
            return true;
        }
        f.primary = f.extra.back();
        f.extra.pop_back();
        --f.refcount;
        if (f.ksmStable)
            --ksm_sharing_mappings_;
        return false;
    }

    auto it = std::find(f.extra.begin(), f.extra.end(), m);
    jtps_assert(it != f.extra.end());
    f.extra.erase(it);
    --f.refcount;
    if (f.ksmStable)
        --ksm_sharing_mappings_;
    return false;
}

void
FrameTable::setKsmStable(Hfn hfn, bool stable)
{
    Frame &f = frame(hfn);
    if (f.ksmStable == stable)
        return;
    jtps_assert(!f.pinned && f.refcount >= 1);
    f.ksmStable = stable;
    ++ksm_stable_epoch_;
    // A stable-flag transition also advances the write generation, so
    // a generation recorded while the frame was an ordinary merge
    // candidate can never compare equal once the frame has joined (or
    // left) the stable tree: the scanner's generation fast path may
    // conclude "not stable" from generation equality alone, without
    // loading the Frame.
    write_gens_[hfn] = ++write_gen_clock_;
    if (stable) {
        ++ksm_stable_frames_;
        ksm_sharing_mappings_ += f.refcount - 1;
    } else {
        --ksm_stable_frames_;
        ksm_sharing_mappings_ -= f.refcount - 1;
    }
}

void
FrameTable::freePinned(Hfn hfn)
{
    Frame &f = frame(hfn);
    jtps_assert(f.pinned && f.refcount == 1);
    f.refcount = 0;
    freeRaw(hfn);
}

void
FrameTable::touch(Hfn hfn)
{
    Frame &f = frame(hfn);
    f.referenced = true;
    f.lastTouch = ++access_clock_;
}

Hfn
FrameTable::pickVictim(bool allow_shared)
{
    if (frames_.empty())
        return invalidFrame;

    // Sampled LRU: draw a handful of random frames, take the oldest
    // eligible one. Approximates global LRU reclaim at O(1) cost.
    constexpr int sample_size = 16;
    Hfn best = invalidFrame;
    for (int i = 0; i < sample_size; ++i) {
        const Hfn h = victim_rng_.nextBelow(frames_.size());
        if (!allocBit(h))
            continue;
        const Frame &f = frames_[h];
        if (f.pinned)
            continue;
        if (f.refcount > 1 && !allow_shared)
            continue;
        if (best == invalidFrame ||
            f.lastTouch < frames_[best].lastTouch) {
            best = h;
        }
    }
    if (best != invalidFrame)
        return best;

    // Fallback sweep: the sample can miss when few frames are eligible.
    // Counted so overcommit experiments can see when reclaim degrades
    // from O(1) sampling to O(n) sweeps.
    if (stats_)
        stats_->inc("host.victim_fallback_sweeps");
    for (std::uint64_t step = 0; step < frames_.size(); ++step) {
        const Hfn h = clock_hand_;
        clock_hand_ = (clock_hand_ + 1) % frames_.size();
        if (!allocBit(h))
            continue;
        const Frame &f = frames_[h];
        if (f.pinned)
            continue;
        if (f.refcount > 1 && !allow_shared)
            continue;
        return h;
    }
    return invalidFrame;
}

void
FrameTable::checkConsistency() const
{
    std::uint64_t resident_count = 0;
    std::uint64_t stable_count = 0;
    std::uint64_t sharing_count = 0;
    for (Hfn h = 0; h < frames_.size(); ++h) {
        if (!allocBit(h)) {
            continue;
        }
        ++resident_count;
        const Frame &f = frames_[h];
        if (f.pinned) {
            jtps_assert(f.refcount == 1 && f.extra.empty());
        } else {
            jtps_assert(f.refcount == 1 + f.extra.size());
        }
        if (f.ksmStable) {
            ++stable_count;
            sharing_count += f.refcount - 1;
        }
    }
    jtps_assert(resident_count == resident_);
    // The O(1) sharing counters must agree with a full recount, or the
    // incremental bookkeeping drifted somewhere.
    jtps_assert(stable_count == ksm_stable_frames_);
    jtps_assert(sharing_count == ksm_sharing_mappings_);
}

} // namespace jtps::mem
