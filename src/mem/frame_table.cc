#include "mem/frame_table.hh"

#include <algorithm>

#include "base/logging.hh"

namespace jtps::mem
{

FrameTable::FrameTable(std::uint64_t capacity_frames, StatSet *stats)
    : capacity_(capacity_frames), stats_(stats)
{
    jtps_assert(capacity_frames > 0);
    ksm_stable_epochs_.fill(1);
    // Register at zero so the counters appear in every registry even if
    // the sampled-LRU fast path never misses.
    if (stats_) {
        stats_->counter("host.victim_fallback_sweeps");
        stats_->counter("host.shard_clock_sweeps");
    }
}

Hfn
FrameTable::allocRaw(const PageData &initial)
{
    if (resident_ >= capacity_)
        return invalidFrame;

    Hfn hfn;
    if (!free_list_.empty()) {
        hfn = free_list_.back();
        free_list_.pop_back();
    } else {
        hfn = frames_.size();
        frames_.emplace_back();
        if ((hfn >> 6) >= allocated_.size())
            allocated_.push_back(0);
        write_gens_.push_back(0);
    }

    Frame &f = frames_[hfn];
    f.data = initial;
    // A recycled hfn gets a fresh generation here, so any cache entry
    // keyed by (hfn, generation) from the previous tenant can never
    // match again.
    write_gens_[hfn] = nextGen(0);
    f.refcount = 0;
    f.ksmStable = false;
    f.referenced = true;
    f.lastTouch = ++access_clock_;
    f.pinned = false;
    f.ksmStripe = 0;
    f.primary = Mapping{};
    f.extra.clear();
    setAllocBit(hfn);
    ++resident_;
    ++resident_by_stripe_[stripeOfFrame(hfn)];
    if (stats_)
        stats_->inc("host.frames_allocated");
    return hfn;
}

void
FrameTable::freeRaw(Hfn hfn)
{
    jtps_assert(isAllocated(hfn));
    jtps_assert(frames_[hfn].refcount == 0);
    clearAllocBit(hfn);
    if (frames_[hfn].ksmStable) {
        // All mappings are already gone (refcount 0), so the frame's
        // sharing contribution was removed mapping by mapping; only
        // the stable-frame count remains to drop.
        --ksm_stable_frames_;
        --stable_by_stripe_[stripeOfFrame(hfn)];
        frames_[hfn].ksmStable = false;
    }
    shrinkExtra(frames_[hfn]);
    free_list_.push_back(hfn);
    --resident_;
    --resident_by_stripe_[stripeOfFrame(hfn)];
    if (stats_)
        stats_->inc("host.frames_freed");
}

Hfn
FrameTable::alloc(const Mapping &m, const PageData &initial)
{
    Hfn hfn = allocRaw(initial);
    if (hfn == invalidFrame)
        return invalidFrame;
    Frame &f = frames_[hfn];
    f.primary = m;
    f.refcount = 1;
    return hfn;
}

Hfn
FrameTable::allocPinned(const PageData &initial)
{
    Hfn hfn = allocRaw(initial);
    if (hfn == invalidFrame)
        return invalidFrame;
    Frame &f = frames_[hfn];
    f.pinned = true;
    f.refcount = 1; // the hypervisor itself holds the reference
    return hfn;
}

void
FrameTable::addMapping(Hfn hfn, const Mapping &m)
{
    Frame &f = frame(hfn);
    jtps_assert(!f.pinned);
    jtps_assert(f.refcount >= 1);
    reserveExtra(f);
    f.extra.push_back(m);
    ++f.refcount;
    if (f.ksmStable) {
        ++ksm_sharing_mappings_;
        ++sharing_by_stripe_[stripeOfFrame(hfn)];
    }
    if (stats_)
        stats_->inc("host.mappings_added");
}

bool
FrameTable::removeMapping(Hfn hfn, const Mapping &m)
{
    Frame &f = frame(hfn);
    jtps_assert(!f.pinned);
    jtps_assert(f.refcount >= 1);
    // Dropping a mapping of a stable frame can reopen merge capacity
    // (refcount falls below max_page_sharing) or kill the frame
    // (its stable-tree node goes stale and will be pruned on the next
    // probe), so cached stable-probe misses must be revalidated.
    if (f.ksmStable)
        ++ksm_stable_epochs_[f.ksmStripe];

    if (f.primary == m) {
        if (f.extra.empty()) {
            f.refcount = 0;
            freeRaw(hfn);
            return true;
        }
        f.primary = f.extra.back();
        f.extra.pop_back();
        --f.refcount;
        if (f.ksmStable) {
            --ksm_sharing_mappings_;
            --sharing_by_stripe_[stripeOfFrame(hfn)];
        }
        shrinkExtra(f);
        return false;
    }

    auto it = std::find(f.extra.begin(), f.extra.end(), m);
    jtps_assert(it != f.extra.end());
    f.extra.erase(it);
    --f.refcount;
    if (f.ksmStable) {
        --ksm_sharing_mappings_;
        --sharing_by_stripe_[stripeOfFrame(hfn)];
    }
    shrinkExtra(f);
    return false;
}

void
FrameTable::setKsmStable(Hfn hfn, bool stable)
{
    Frame &f = frame(hfn);
    if (f.ksmStable == stable)
        return;
    jtps_assert(!f.pinned && f.refcount >= 1);
    if (stable) {
        // Joining the tree: the epoch stripe is the content's digest
        // stripe, recorded on the frame so the symmetric transitions
        // (removeMapping, un-mark, death) bump the same stripe without
        // re-hashing.
        f.ksmStripe = static_cast<std::uint8_t>(
            stripeOfDigest(f.data.digest()));
    }
    f.ksmStable = stable;
    ++ksm_stable_epochs_[f.ksmStripe];
    // A stable-flag transition also advances the write generation, so
    // a generation recorded while the frame was an ordinary merge
    // candidate can never compare equal once the frame has joined (or
    // left) the stable tree: the scanner's generation fast path may
    // conclude "not stable" from generation equality alone, without
    // loading the Frame.
    write_gens_[hfn] = nextGen(0);
    const unsigned fs = stripeOfFrame(hfn);
    if (stable) {
        ++ksm_stable_frames_;
        ++stable_by_stripe_[fs];
        ksm_sharing_mappings_ += f.refcount - 1;
        sharing_by_stripe_[fs] += f.refcount - 1;
    } else {
        --ksm_stable_frames_;
        --stable_by_stripe_[fs];
        ksm_sharing_mappings_ -= f.refcount - 1;
        sharing_by_stripe_[fs] -= f.refcount - 1;
    }
}

void
FrameTable::addMappingShard(Hfn hfn, const Mapping &m)
{
    Frame &f = frame(hfn);
    jtps_assert(!f.pinned);
    jtps_assert(f.refcount >= 1);
    reserveExtra(f);
    f.extra.push_back(m);
    ++f.refcount;
    // Sharing counters and host.mappings_added deferred to
    // commitSharingAdd() at the serial reduce.
}

bool
FrameTable::removeMappingShard(Hfn hfn, const Mapping &m)
{
    Frame &f = frame(hfn);
    jtps_assert(!f.pinned);
    jtps_assert(f.refcount >= 1);
    // Commit shards only ever unmap merge sources, which are never
    // stable — so no epoch bump (whose stripe could belong to another
    // shard) can be owed here.
    jtps_assert(!f.ksmStable);

    if (f.primary == m) {
        if (f.extra.empty()) {
            // Deferred-free zombie: content stays intact for same-shard
            // stable probes; finishDeferredFree() reclaims it at the
            // reduce, in canonical order, keeping the free list
            // byte-identical to the serial schedule.
            f.refcount = 0;
            return true;
        }
        f.primary = f.extra.back();
        f.extra.pop_back();
        --f.refcount;
        shrinkExtra(f);
        return false;
    }

    auto it = std::find(f.extra.begin(), f.extra.end(), m);
    jtps_assert(it != f.extra.end());
    f.extra.erase(it);
    --f.refcount;
    shrinkExtra(f);
    return false;
}

void
FrameTable::setKsmStableShard(Hfn hfn, std::uint64_t digest,
                              unsigned lane)
{
    Frame &f = frame(hfn);
    jtps_assert(!f.ksmStable);
    jtps_assert(!f.pinned && f.refcount >= 1);
    f.ksmStripe = static_cast<std::uint8_t>(stripeOfDigest(digest));
    f.ksmStable = true;
    ++ksm_stable_epochs_[f.ksmStripe];
    write_gens_[hfn] = nextGen(lane);
    // Stable/sharing counters deferred to commitStablePromote().
}

void
FrameTable::commitSharingAdd(Hfn hfn)
{
    jtps_assert(frame(hfn).ksmStable);
    ++ksm_sharing_mappings_;
    ++sharing_by_stripe_[stripeOfFrame(hfn)];
    if (stats_)
        stats_->inc("host.mappings_added");
}

void
FrameTable::commitStablePromote(Hfn hfn, std::uint32_t refcount_at_set)
{
    jtps_assert(frame(hfn).ksmStable);
    jtps_assert(refcount_at_set >= 1);
    const unsigned fs = stripeOfFrame(hfn);
    ++ksm_stable_frames_;
    ++stable_by_stripe_[fs];
    ksm_sharing_mappings_ += refcount_at_set - 1;
    sharing_by_stripe_[fs] += refcount_at_set - 1;
}

void
FrameTable::finishDeferredFree(Hfn hfn)
{
    jtps_assert(isAllocated(hfn));
    jtps_assert(frames_[hfn].refcount == 0);
    freeRaw(hfn);
}

void
FrameTable::freePinned(Hfn hfn)
{
    Frame &f = frame(hfn);
    jtps_assert(f.pinned && f.refcount == 1);
    f.refcount = 0;
    freeRaw(hfn);
}

void
FrameTable::touch(Hfn hfn)
{
    Frame &f = frame(hfn);
    f.referenced = true;
    f.lastTouch = ++access_clock_;
}

Hfn
FrameTable::pickVictim(bool allow_shared)
{
    if (frames_.empty())
        return invalidFrame;

    // Sampled LRU: draw a handful of random frames, take the oldest
    // eligible one. Approximates global LRU reclaim at O(1) cost.
    constexpr int sample_size = 16;
    Hfn best = invalidFrame;
    for (int i = 0; i < sample_size; ++i) {
        const Hfn h = victim_rng_.nextBelow(frames_.size());
        if (!allocBit(h))
            continue;
        const Frame &f = frames_[h];
        if (f.pinned)
            continue;
        if (f.refcount > 1 && !allow_shared)
            continue;
        if (best == invalidFrame ||
            f.lastTouch < frames_[best].lastTouch) {
            best = h;
        }
    }
    if (best != invalidFrame)
        return best;

    // Fallback sweep: the sample can miss when few frames are eligible.
    // Counted so overcommit experiments can see when reclaim degrades
    // from O(1) sampling to sweeping. The sweep is striped: stripes are
    // visited round-robin from a persistent cursor and each advances
    // its own hand over its own bit lane of the allocation bitmap, so
    // the state a sweep mutates stays per-stripe (no single hot hand on
    // a 256-VM host) while the visit order stays deterministic.
    if (stats_)
        stats_->inc("host.victim_fallback_sweeps");
    for (unsigned i = 0; i < kStripes; ++i) {
        const unsigned s = (clock_stripe_cursor_ + i) % kStripes;
        const std::uint64_t count = stripeFrameCount(s);
        if (count == 0)
            continue;
        if (stats_)
            stats_->inc("host.shard_clock_sweeps");
        const std::uint64_t pos = clock_hands_[s];
        for (std::uint64_t step = 0; step < count; ++step) {
            const std::uint64_t p = (pos + step) % count;
            const Hfn h = static_cast<Hfn>(s) + p * kStripes;
            if (!allocBit(h))
                continue;
            const Frame &f = frames_[h];
            if (f.pinned)
                continue;
            if (f.refcount > 1 && !allow_shared)
                continue;
            clock_hands_[s] = (p + 1) % count;
            clock_stripe_cursor_ = s;
            return h;
        }
    }
    return invalidFrame;
}

void
FrameTable::checkConsistency() const
{
    std::uint64_t resident_count = 0;
    std::uint64_t stable_count = 0;
    std::uint64_t sharing_count = 0;
    for (Hfn h = 0; h < frames_.size(); ++h) {
        if (!allocBit(h)) {
            continue;
        }
        ++resident_count;
        const Frame &f = frames_[h];
        if (f.pinned) {
            jtps_assert(f.refcount == 1 && f.extra.empty());
        } else {
            jtps_assert(f.refcount == 1 + f.extra.size());
        }
        if (f.ksmStable) {
            ++stable_count;
            sharing_count += f.refcount - 1;
            // The recorded epoch stripe must be the content's digest
            // stripe: stable content never mutates in place (writes
            // COW off the frame), so the digest recorded at promotion
            // stays the digest of what the frame holds.
            jtps_assert(f.ksmStripe == stripeOfDigest(f.data.digest()));
        }
    }
    jtps_assert(resident_count == resident_);
    // The O(1) sharing counters must agree with a full recount, or the
    // incremental bookkeeping drifted somewhere.
    jtps_assert(stable_count == ksm_stable_frames_);
    jtps_assert(sharing_count == ksm_sharing_mappings_);
    // And the per-stripe mirrors must tile the globals exactly.
    std::uint64_t r = 0, st = 0, sh = 0;
    for (unsigned s = 0; s < kStripes; ++s) {
        checkConsistencyShard(s);
        r += resident_by_stripe_[s];
        st += stable_by_stripe_[s];
        sh += sharing_by_stripe_[s];
    }
    jtps_assert(r == resident_);
    jtps_assert(st == ksm_stable_frames_);
    jtps_assert(sh == ksm_sharing_mappings_);
}

void
FrameTable::checkConsistencyShard(unsigned stripe) const
{
    jtps_assert(stripe < kStripes);
    std::uint64_t resident_count = 0;
    std::uint64_t stable_count = 0;
    std::uint64_t sharing_count = 0;
    // The stripe's allocation bits are bit `stripe` of every bitmap
    // word, so the walk is one masked test per 64 frames.
    const std::uint64_t lane = std::uint64_t{1} << stripe;
    for (std::size_t w = 0; w < allocated_.size(); ++w) {
        if (!(allocated_[w] & lane))
            continue;
        const Hfn h = (static_cast<Hfn>(w) << 6) | stripe;
        ++resident_count;
        const Frame &f = frames_[h];
        if (f.pinned) {
            jtps_assert(f.refcount == 1 && f.extra.empty());
        } else {
            jtps_assert(f.refcount == 1 + f.extra.size());
        }
        if (f.ksmStable) {
            ++stable_count;
            sharing_count += f.refcount - 1;
        }
    }
    jtps_assert(resident_count == resident_by_stripe_[stripe]);
    jtps_assert(stable_count == stable_by_stripe_[stripe]);
    jtps_assert(sharing_count == sharing_by_stripe_[stripe]);
}

} // namespace jtps::mem
