/**
 * @file
 * The guest operating system model.
 *
 * One GuestOs instance runs inside each guest VM. It owns the first
 * translation layer of the paper's Fig. 1(b): per-process page tables
 * mapping virtual pages (Vpn) to guest physical frames (Gfn). The
 * hypervisor (src/hv) owns the second layer (Gfn to Hfn).
 *
 * Modelled guest-OS services:
 *  - processes with category-tagged virtual memory areas (VMAs),
 *  - demand-paged anonymous memory (a gfn is assigned on first write),
 *  - a file page cache: file pages are read once into kernel-owned
 *    cache frames, and file-backed mmaps of user processes map the
 *    *same* gfn — intra-VM sharing, exactly as in Linux,
 *  - kernel memory (text, data, slab) populated at boot.
 *
 * Address-space layout randomization is modelled: each process's mmap
 * cursor starts at a seed-dependent base and regions are separated by
 * random guard gaps, so virtual addresses differ across processes and
 * VMs even for identical workloads.
 */

#ifndef JTPS_GUEST_GUEST_OS_HH
#define JTPS_GUEST_GUEST_OS_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/rng.hh"
#include "base/stats.hh"
#include "base/types.hh"
#include "base/units.hh"
#include "guest/file_image.hh"
#include "guest/mem_category.hh"
#include "hv/hypervisor.hh"
#include "hv/intent_log.hh"

namespace jtps::guest
{

/** One virtual memory area of a guest process. */
struct Vma
{
    std::string name;
    MemCategory category = MemCategory::JvmWork;
    Pid pid = invalidPid;
    Vpn startVpn = 0;
    std::uint64_t numPages = 0;
    bool fileBacked = false;
    /** Backed by transparent huge pages: KSM cannot merge these
     *  (madvise-MERGEABLE and THP are mutually exclusive). */
    bool hugeBacked = false;
    std::uint64_t fileTag = 0; //!< content tag when fileBacked

    /** Virtual page number of page @p index of the region. */
    Vpn
    vpnAt(std::uint64_t index) const
    {
        return startVpn + index;
    }

    Bytes bytes() const { return pagesToBytes(numPages); }
};

/** One guest process (pid 0 is the kernel pseudo-process). */
struct GuestProcess
{
    Pid pid = invalidPid;
    std::string name;
    bool isJava = false;
    std::vector<std::unique_ptr<Vma>> vmas;
    /** First-layer page table: vpn -> gfn. */
    std::unordered_map<Vpn, Gfn> pageTable;
    /** Anonymous pages the *guest* swapped to its own swap device
     *  (content preserved guest-side; no gfn while swapped). */
    std::unordered_map<Vpn, mem::PageData> swappedOut;
    /** mmap cursor (next free vpn). */
    Vpn nextVpn = 0;
};

/** Kernel footprint configuration (calibrated against paper Fig. 2). */
struct KernelConfig
{
    std::string version = "linux-2.6.18-194.3.1.el5debug";
    Bytes textBytes = 24 * MiB;  //!< kernel code+rodata (identical)
    Bytes dataBytes = 8 * MiB;   //!< static data (per-VM)
    Bytes slabBytes = 26 * MiB;  //!< dynamic kernel allocations (per-VM)
    /** Base-image files cached at boot: identical across VMs. */
    Bytes sharedBootCacheBytes = 82 * MiB;
    /** Per-VM files cached at boot (logs, generated configs). */
    Bytes privateBootCacheBytes = 72 * MiB;
};

/**
 * The guest OS running in one VM.
 */
class GuestOs
{
  public:
    /**
     * @param hv Hypervisor hosting this guest.
     * @param vm_id This guest's VM id (already created in @p hv).
     * @param name Guest name for reports.
     * @param seed Per-VM seed: drives ASLR and all per-VM content.
     */
    GuestOs(hv::Hypervisor &hv, VmId vm_id, std::string name,
            std::uint64_t seed);

    GuestOs(const GuestOs &) = delete;
    GuestOs &operator=(const GuestOs &) = delete;

    /** Populate kernel memory and the boot page cache. */
    void bootKernel(const KernelConfig &cfg);

    /**
     * Enable transparent huge pages for anonymous memory of user
     * processes mapped from now on. THP and KSM fight: huge-backed
     * pages are skipped by the scanner (the ablation bench measures
     * the cost).
     */
    void setThpEnabled(bool enabled) { thp_enabled_ = enabled; }

    // ------------------------------------------------------------------
    // Processes
    // ------------------------------------------------------------------

    /** Create a process; pids are assigned sequentially from 1. */
    Pid spawn(const std::string &name, bool is_java);

    /**
     * Create a small non-Java daemon with @p anon_bytes of private
     * memory and @p text_bytes of file-backed text (from the base
     * image, so daemon text TPS-shares across VMs).
     */
    Pid spawnDaemon(const std::string &name, Bytes anon_bytes,
                    Bytes text_bytes);

    GuestProcess &process(Pid pid);
    const GuestProcess &process(Pid pid) const;

    /** All processes including the kernel pseudo-process (pid 0). */
    const std::vector<std::unique_ptr<GuestProcess>> &
    processes() const
    {
        return processes_;
    }

    // ------------------------------------------------------------------
    // Memory mapping
    // ------------------------------------------------------------------

    /** Map anonymous memory; pages materialize on first write. */
    Vma *mmapAnon(Pid pid, Bytes bytes, MemCategory cat,
                  const std::string &name);

    /**
     * Map a file; the process's pages alias the kernel page cache, so
     * the mapping is populated (and cache-filled) on touch.
     */
    Vma *mmapFile(Pid pid, const FileImage &file, MemCategory cat);

    /** Unmap a region (drops PTEs; cache pages stay cached). */
    void munmap(Pid pid, Vma *vma);

    // ------------------------------------------------------------------
    // Memory access (all guest-side accesses go through these)
    // ------------------------------------------------------------------

    /** Write one sector word of page @p index in @p vma. */
    void writeWord(const Vma *vma, std::uint64_t index, unsigned sector,
                   std::uint64_t value);

    /** Write a full page of @p vma. */
    void writePage(const Vma *vma, std::uint64_t index,
                   const mem::PageData &data);

    /** Read one sector word (faulting in file content if needed). */
    std::uint64_t readWord(const Vma *vma, std::uint64_t index,
                           unsigned sector);

    /**
     * Touch a page (working-set access): populates file-backed pages,
     * swap-faults host-paged-out pages, refreshes clock bits.
     */
    void touch(const Vma *vma, std::uint64_t index);

    /**
     * Release one anonymous page (GC decommit / free): the host frame
     * and the gfn are freed; the next write starts from a zero page.
     * No-op for file-backed pages.
     */
    void discard(const Vma *vma, std::uint64_t index);

    // ------------------------------------------------------------------
    // Page cache
    // ------------------------------------------------------------------

    /** Read an entire file through the page cache (e.g. at boot). */
    void readFile(const FileImage &file);

    /** Cache lookup/fill for one file page; returns its gfn. */
    Gfn pageCacheGet(const FileImage &file, std::uint64_t index);

    /** Number of page-cache-resident pages. */
    std::uint64_t pageCachePages() const { return cache_used_; }

    /**
     * Ongoing file activity (log writes, DB I/O, jar re-reads): touch
     * @p pages random cached pages, keeping the page cache warm. Under
     * host overcommit these touches fault like any other access.
     */
    void touchPageCache(std::uint32_t pages);

    /**
     * File activity over the whole registered file space: cached pages
     * are touched; uncached ones are read from disk into the cache
     * (counted in cacheMisses()). After balloon/cache reclaim, this is
     * how dropped pages come back — at disk cost.
     */
    void touchFileSpace(std::uint32_t pages);

    /**
     * Guest-side page-cache reclaim (what a balloon inflation or
     * memory pressure triggers): drop up to @p pages clean, unmapped
     * cache pages, freeing their guest frames and host frames.
     * @return pages actually reclaimed.
     */
    std::uint64_t reclaimPageCache(std::uint64_t pages);

    /** Cumulative cache misses (disk reads) from touchFileSpace. */
    std::uint64_t cacheMisses() const { return cache_misses_; }

    // ------------------------------------------------------------------
    // Guest-internal reclaim and swap
    // ------------------------------------------------------------------
    //
    // When the guest runs out of guest physical frames it reclaims like
    // a real kernel: clean unmapped page cache is dropped first; then
    // anonymous pages are swapped to the guest's own swap device (its
    // virtual disk). This is the third memory-relief mechanism of the
    // paper's introduction, alongside host TPS and host paging — and
    // what ballooning ultimately relies on.

    /** Size the guest swap device (default 1 GiB). */
    void setGuestSwapBytes(Bytes bytes);

    /** Anon pages currently in the guest swap. */
    std::uint64_t guestSwappedPages() const { return guest_swapped_; }

    /** Guest-level major faults (swap-ins from the guest's disk). */
    std::uint64_t guestMajorFaults() const
    {
        return guest_major_faults_;
    }

    /** Guest-level swap-outs performed. */
    std::uint64_t guestSwapOuts() const { return guest_swapouts_; }

    /**
     * Balloon support: take @p pages guest frames out of circulation
     * (reclaiming as needed) so the hypervisor can reuse the host
     * frames. @return pages actually taken.
     */
    std::uint64_t balloonTake(std::uint64_t pages);

    /** Return @p pages ballooned frames to the guest's free pool. */
    void balloonReturn(std::uint64_t pages);

    /** Frames currently held by the balloon. */
    std::uint64_t balloonHeldPages() const { return balloon_held_; }

    // ------------------------------------------------------------------
    // Staged execution (parallel tick batches)
    // ------------------------------------------------------------------
    //
    // While staging, every hypervisor mutation this guest would issue
    // (write/touch/discard/setHugePage and guest-originated trace
    // events) is appended to @p log instead of executed; the
    // scenario's serial commit phase replays the log in canonical VM
    // order. Guest-local state (page tables, cache index, gfn
    // accounting, RNG streams) advances normally during staging — it
    // is private to this VM, so staging it concurrently with other
    // VMs is safe. Operations that must *read* host state (peek for a
    // guest swap-out, readWord) panic while staging; callers gate
    // staging on a predicate that makes them unreachable.

    /** Route hypervisor mutations into @p log until endStaging(). */
    void beginStaging(hv::WriteIntentLog *log);

    /** Stop routing; subsequent mutations hit the hypervisor again. */
    void endStaging();

    /** True while a staging log is attached. */
    bool staging() const { return stage_log_ != nullptr; }

    /**
     * Record a guest-originated trace event (GC cycle, balloon move)
     * against this VM: logged as an intent while staging so it lands
     * in the trace stream at its canonical position, recorded
     * directly otherwise.
     */
    void traceRecord(TraceEventType type, std::uint64_t arg0,
                     std::uint64_t arg1);

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    VmId vmId() const { return vm_id_; }
    const std::string &name() const { return name_; }
    std::uint64_t seed() const { return seed_; }
    hv::Hypervisor &hv() { return hv_; }
    const hv::Hypervisor &hv() const { return hv_; }

    /** Guest physical frames handed out so far. */
    std::uint64_t gfnsAllocated() const { return gfns_used_; }

    /** Guest physical memory size in pages. */
    std::uint64_t guestPages() const;

    /** Per-guest RNG (used by the JVM model for this guest). */
    Rng &rng() { return rng_; }

  private:
    Gfn allocGfn();
    void freeGfn(Gfn gfn);

    // Hypervisor-mutation funnels: every hv_ mutation in this class
    // goes through one of these, which is what makes staging sound —
    // an intent is logged if a log is attached, the call happens
    // otherwise.
    void hvWriteWord(Gfn gfn, unsigned sector, std::uint64_t value);
    void hvWritePage(Gfn gfn, const mem::PageData &data);
    void hvTouchPage(Gfn gfn);
    void hvDiscardPage(Gfn gfn);
    void hvSetHugePage(Gfn gfn, bool huge);

    /** Record a file in the registry (idempotent). */
    void registerFile(const FileImage &file);

    /** Drop one process-mapping reference from a cache page. */
    void dropCacheMapRef(Gfn gfn);

    /** Free one guest frame under memory pressure: drop clean cache,
     *  else swap out an anonymous page. @return false if stuck. */
    bool reclaimOneGuestPage();

    /** Swap one sampled anonymous page out to the guest swap device.
     *  @return false if no victim was found or swap is full. */
    bool swapOutOneAnonPage();

    /** Bring a guest-swapped page back in (guest major fault). */
    Gfn guestSwapIn(GuestProcess &proc, Vpn vpn);

    /** Assign a vpn range for @p pages with an ASLR-style guard gap. */
    Vpn carveVpnRange(GuestProcess &proc, std::uint64_t pages);

    /** Resolve (ensure) the gfn backing page @p index of @p vma. */
    Gfn ensureMapped(const Vma *vma, std::uint64_t index);

    hv::Hypervisor &hv_;
    VmId vm_id_;
    std::string name_;
    std::uint64_t seed_;
    Rng rng_;

    /** Attached intent log while staging, nullptr otherwise. */
    hv::WriteIntentLog *stage_log_ = nullptr;

    std::vector<std::unique_ptr<GuestProcess>> processes_;

    bool thp_enabled_ = false;
    std::uint64_t guest_swap_limit_pages_ = bytesToPages(1 * GiB);
    std::uint64_t guest_swapped_ = 0;
    std::uint64_t guest_major_faults_ = 0;
    std::uint64_t guest_swapouts_ = 0;
    std::uint64_t balloon_held_ = 0;
    Gfn next_gfn_ = 0;
    std::vector<Gfn> gfn_free_list_;
    std::uint64_t gfns_used_ = 0;

    /** Files seen by this guest, by content tag. */
    std::unordered_map<std::uint64_t, FileImage> files_;

    /** Page cache index: file tag -> page index -> gfn. */
    std::unordered_map<std::uint64_t,
                       std::unordered_map<std::uint64_t, Gfn>>
        cache_index_;
    std::uint64_t cache_used_ = 0;
    Vma *cache_vma_ = nullptr; //!< kernel VMA holding cache pages
    std::uint64_t cache_cursor_ = 0;

    /** One cached file page (for random touching and reclaim). */
    struct CachePage
    {
        std::uint64_t fileTag = 0;
        std::uint64_t index = 0;
        Gfn gfn = invalidFrame;
        Vpn vpn = 0; //!< slot in the kernel cache VMA
    };
    std::vector<CachePage> cache_pages_;
    /** Process mmap references per cache gfn (mapped pages are not
     *  reclaimable). */
    std::unordered_map<Gfn, std::uint32_t> cache_mapcount_;
    std::uint64_t cache_misses_ = 0;
    /** File tags in registration order, for file-space sampling. */
    std::vector<std::uint64_t> file_order_;
};

} // namespace jtps::guest

#endif // JTPS_GUEST_GUEST_OS_HH
