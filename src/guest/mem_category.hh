/**
 * @file
 * Memory categories used for attribution.
 *
 * The first seven are the Java memory categories of the paper's
 * Table IV; the rest cover the guest kernel, other user processes, and
 * the VM process itself (the four top-level components of Fig. 2).
 */

#ifndef JTPS_GUEST_MEM_CATEGORY_HH
#define JTPS_GUEST_MEM_CATEGORY_HH

#include <cstdint>

namespace jtps::guest
{

/** What a mapped region holds; every Vma carries one. */
enum class MemCategory : std::uint8_t
{
    // --- Java process categories (paper Table IV) ---
    Code,          //!< executable files, shared libraries, their data
    ClassMetadata, //!< Java classes (ROM + RAM class data)
    JitCode,       //!< JIT-generated native code and its runtime data
    JitWork,       //!< JIT compiler scratch memory
    JavaHeap,      //!< the Java object heap
    JvmWork,       //!< JVM work areas, class-library allocations, malloc
    Stack,         //!< C and Java thread stacks

    // --- guest kernel ---
    KernelText,    //!< kernel code and read-only data
    KernelData,    //!< kernel static data
    Slab,          //!< kernel dynamic allocations (dentries, inodes...)
    PageCache,     //!< file page cache / buffer cache

    // --- everything else ---
    OtherProcess,  //!< non-Java guest user processes
    VmOverhead,    //!< the VM process itself (KVM/QEMU private memory)

    NumCategories
};

/** Number of categories, as an array size. */
constexpr std::size_t numMemCategories =
    static_cast<std::size_t>(MemCategory::NumCategories);

/** Printable name of a category. */
const char *categoryName(MemCategory cat);

/** True for the seven per-Java-process categories of Table IV. */
bool isJavaCategory(MemCategory cat);

/** True for categories accounted to the guest kernel in Fig. 2. */
bool isKernelCategory(MemCategory cat);

} // namespace jtps::guest

#endif // JTPS_GUEST_MEM_CATEGORY_HH
