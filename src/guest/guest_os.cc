#include "guest/guest_os.hh"

#include "base/logging.hh"

namespace jtps::guest
{

GuestOs::GuestOs(hv::Hypervisor &hv, VmId vm_id, std::string name,
                 std::uint64_t seed)
    : hv_(hv), vm_id_(vm_id), name_(std::move(name)), seed_(seed),
      rng_(hashCombine(stringTag("guest-os"), seed))
{
    // The kernel pseudo-process: owns kernel memory and the page cache.
    auto kernel = std::make_unique<GuestProcess>();
    kernel->pid = 0;
    kernel->name = "[kernel]";
    kernel->isJava = false;
    kernel->nextVpn = 0x100;
    processes_.push_back(std::move(kernel));

    // Reserve a kernel VMA large enough to index every possible page
    // cache page (virtual space is free).
    cache_vma_ = mmapAnon(0, pagesToBytes(guestPages()),
                          MemCategory::PageCache, "page-cache");
}

std::uint64_t
GuestOs::guestPages() const
{
    return hv_.vm(vm_id_).ept.size();
}

void
GuestOs::beginStaging(hv::WriteIntentLog *log)
{
    jtps_assert(log != nullptr && stage_log_ == nullptr);
    stage_log_ = log;
}

void
GuestOs::endStaging()
{
    jtps_assert(stage_log_ != nullptr);
    stage_log_ = nullptr;
}

void
GuestOs::hvWriteWord(Gfn gfn, unsigned sector, std::uint64_t value)
{
    if (stage_log_)
        stage_log_->writeWord(gfn, sector, value);
    else
        hv_.writeWord(vm_id_, gfn, sector, value);
}

void
GuestOs::hvWritePage(Gfn gfn, const mem::PageData &data)
{
    if (stage_log_)
        stage_log_->writePage(gfn, data);
    else
        hv_.writePage(vm_id_, gfn, data);
}

void
GuestOs::hvTouchPage(Gfn gfn)
{
    if (stage_log_)
        stage_log_->touchPage(gfn);
    else
        hv_.touchPage(vm_id_, gfn);
}

void
GuestOs::hvDiscardPage(Gfn gfn)
{
    if (stage_log_)
        stage_log_->discardPage(gfn);
    else
        hv_.discardPage(vm_id_, gfn);
}

void
GuestOs::hvSetHugePage(Gfn gfn, bool huge)
{
    if (stage_log_)
        stage_log_->setHugePage(gfn, huge);
    else
        hv_.setHugePage(vm_id_, gfn, huge);
}

void
GuestOs::traceRecord(TraceEventType type, std::uint64_t arg0,
                     std::uint64_t arg1)
{
    TraceBuffer *t = hv_.trace();
    if (stage_log_) {
        // Log an intent only if it would record: the replay-side
        // record() call re-checks, but a disabled buffer must not
        // cost log slots (and intent counters must not depend on it
        // either way — they count hypervisor calls, and Trace intents
        // are only appended when tracing is live in both modes).
        if (t && t->enabled())
            stage_log_->trace(type, arg0, arg1);
    } else if (t) {
        t->record(type, vm_id_, arg0, arg1);
    }
}

Gfn
GuestOs::allocGfn()
{
    // The balloon's hold shrinks the usable guest memory.
    while (gfns_used_ >= guestPages() - balloon_held_) {
        // Out of guest frames: reclaim like a kernel under pressure.
        if (reclaimOneGuestPage())
            continue;
        if (balloon_held_ > 0) {
            // virtio_balloon's DEFLATE_ON_OOM: with nothing left to
            // reclaim, the guest takes a page back from the balloon
            // instead of OOM-killing. A governor reads the shrunken
            // hold at its next interval and re-targets from there.
            --balloon_held_;
            traceRecord(TraceEventType::BalloonDeflate, 1,
                        balloon_held_);
            continue;
        }
        fatal("guest '%s' out of memory: %llu pages usable, "
              "page cache empty, swap full",
              name_.c_str(),
              static_cast<unsigned long long>(guestPages()));
    }
    if (!gfn_free_list_.empty()) {
        Gfn g = gfn_free_list_.back();
        gfn_free_list_.pop_back();
        ++gfns_used_;
        return g;
    }
    jtps_assert(next_gfn_ < guestPages());
    ++gfns_used_;
    return next_gfn_++;
}

void
GuestOs::setGuestSwapBytes(Bytes bytes)
{
    guest_swap_limit_pages_ = bytesToPages(bytes);
}

std::uint64_t
GuestOs::balloonTake(std::uint64_t pages)
{
    std::uint64_t taken = 0;
    while (taken < pages && balloon_held_ < guestPages()) {
        const std::uint64_t usable = guestPages() - balloon_held_;
        if (gfns_used_ < usable) {
            // Free guest frames need no reclaim: pin them in bulk.
            const std::uint64_t grab =
                std::min(usable - gfns_used_, pages - taken);
            balloon_held_ += grab;
            taken += grab;
            continue;
        }
        // Memory is tight. Drop clean page cache in bulk first — one
        // random-replacement sweep amortised over the whole request;
        // a per-page reclaimPageCache(1) here would re-pay the sweep's
        // failed-attempt budget for every page of a large take, which
        // goes quadratic once most of the remaining cache is mapped.
        const std::uint64_t reclaimed =
            reclaimPageCache(pages - taken);
        if (reclaimed > 0) {
            balloon_held_ += reclaimed;
            taken += reclaimed;
            continue;
        }
        if (!swapOutOneAnonPage())
            break; // nothing left to reclaim for the balloon
        ++balloon_held_;
        ++taken;
    }
    traceRecord(TraceEventType::BalloonInflate, taken, balloon_held_);
    return taken;
}

void
GuestOs::balloonReturn(std::uint64_t pages)
{
    const std::uint64_t released = std::min(pages, balloon_held_);
    balloon_held_ -= released;
    traceRecord(TraceEventType::BalloonDeflate, released, balloon_held_);
}

bool
GuestOs::reclaimOneGuestPage()
{
    // Clean page cache goes first — dropping it costs only a later
    // re-read; swapping anonymous memory costs a write now and a read
    // later.
    if (reclaimPageCache(1) == 1)
        return true;
    return swapOutOneAnonPage();
}

bool
GuestOs::swapOutOneAnonPage()
{
    if (staging()) {
        // A guest swap-out must read the page's host-resident content
        // (peek), which the commit phase may still change — the
        // stageability predicate is sized so staged work never gets
        // here.
        panic("guest '%s': anonymous swap-out during the stage phase "
              "(stageability predicate violated)",
              name_.c_str());
    }
    if (guest_swapped_ >= guest_swap_limit_pages_)
        return false;

    // Sampled victim search over user processes' anonymous mappings.
    for (int attempt = 0; attempt < 256; ++attempt) {
        if (processes_.size() < 2)
            return false;
        GuestProcess &proc =
            *processes_[1 + rng_.nextBelow(processes_.size() - 1)];
        if (proc.vmas.empty())
            continue;
        Vma &vma = *proc.vmas[rng_.nextBelow(proc.vmas.size())];
        if (vma.fileBacked || vma.numPages == 0)
            continue;
        const Vpn vpn = vma.vpnAt(rng_.nextBelow(vma.numPages));
        auto it = proc.pageTable.find(vpn);
        if (it == proc.pageTable.end())
            continue;
        // Content must be host-resident to be written to the guest's
        // swap file (a host-swapped page would have to fault first;
        // skip those victims).
        const mem::PageData *data = hv_.peek(vm_id_, it->second);
        if (data == nullptr)
            continue;

        proc.swappedOut.emplace(vpn, *data);
        hvSetHugePage(it->second, false);
        hvDiscardPage(it->second);
        freeGfn(it->second);
        proc.pageTable.erase(it);
        ++guest_swapped_;
        ++guest_swapouts_;
        return true;
    }
    return false;
}

Gfn
GuestOs::guestSwapIn(GuestProcess &proc, Vpn vpn)
{
    auto it = proc.swappedOut.find(vpn);
    jtps_assert(it != proc.swappedOut.end());
    const mem::PageData data = it->second;
    proc.swappedOut.erase(it);
    jtps_assert(guest_swapped_ > 0);
    --guest_swapped_;
    ++guest_major_faults_;

    const Gfn gfn = allocGfn();
    hvWritePage(gfn, data);
    proc.pageTable.emplace(vpn, gfn);
    return gfn;
}

void
GuestOs::freeGfn(Gfn gfn)
{
    jtps_assert(gfns_used_ > 0);
    --gfns_used_;
    gfn_free_list_.push_back(gfn);
}

Vpn
GuestOs::carveVpnRange(GuestProcess &proc, std::uint64_t pages)
{
    // ASLR-style guard gap between regions.
    const Vpn start = proc.nextVpn + 1 + rng_.nextBelow(16);
    proc.nextVpn = start + pages;
    return start;
}

Pid
GuestOs::spawn(const std::string &proc_name, bool is_java)
{
    auto proc = std::make_unique<GuestProcess>();
    proc->pid = static_cast<Pid>(processes_.size());
    proc->name = proc_name;
    proc->isJava = is_java;
    // Seed-dependent mmap base: address-space layout differs per
    // process and per VM.
    proc->nextVpn = 0x400 + rng_.nextBelow(0x4000);
    Pid pid = proc->pid;
    processes_.push_back(std::move(proc));
    return pid;
}

Pid
GuestOs::spawnDaemon(const std::string &proc_name, Bytes anon_bytes,
                     Bytes text_bytes)
{
    Pid pid = spawn(proc_name, /*is_java=*/false);

    if (text_bytes > 0) {
        FileImage text = FileImage::shared(
            "/usr/sbin/" + proc_name, text_bytes);
        Vma *vma = mmapFile(pid, text, MemCategory::OtherProcess);
        for (std::uint64_t i = 0; i < vma->numPages; ++i)
            touch(vma, i);
    }

    if (anon_bytes > 0) {
        Vma *vma = mmapAnon(pid, anon_bytes, MemCategory::OtherProcess,
                            proc_name + "-heap");
        const std::uint64_t tag =
            hash3(stringTag("daemon-heap"), seed_, pid);
        for (std::uint64_t i = 0; i < vma->numPages; ++i)
            writePage(vma, i, mem::PageData::filled(tag, i));
    }
    return pid;
}

GuestProcess &
GuestOs::process(Pid pid)
{
    jtps_assert(pid < processes_.size());
    return *processes_[pid];
}

const GuestProcess &
GuestOs::process(Pid pid) const
{
    jtps_assert(pid < processes_.size());
    return *processes_[pid];
}

void
GuestOs::registerFile(const FileImage &file)
{
    auto [it, inserted] = files_.emplace(file.contentTag(), file);
    (void)it;
    if (inserted)
        file_order_.push_back(file.contentTag());
}

Vma *
GuestOs::mmapAnon(Pid pid, Bytes bytes, MemCategory cat,
                  const std::string &vma_name)
{
    GuestProcess &proc = process(pid);
    auto vma = std::make_unique<Vma>();
    vma->name = vma_name;
    vma->category = cat;
    vma->pid = pid;
    vma->numPages = bytesToPages(bytes);
    vma->startVpn = carveVpnRange(proc, vma->numPages);
    vma->fileBacked = false;
    // khugepaged backs large anonymous regions of user processes.
    vma->hugeBacked = thp_enabled_ && pid != 0;
    Vma *raw = vma.get();
    proc.vmas.push_back(std::move(vma));
    return raw;
}

Vma *
GuestOs::mmapFile(Pid pid, const FileImage &file, MemCategory cat)
{
    GuestProcess &proc = process(pid);
    registerFile(file);

    auto vma = std::make_unique<Vma>();
    vma->name = file.path();
    vma->category = cat;
    vma->pid = pid;
    vma->numPages = file.pages();
    vma->startVpn = carveVpnRange(proc, vma->numPages);
    vma->fileBacked = true;
    vma->fileTag = file.contentTag();
    Vma *raw = vma.get();
    proc.vmas.push_back(std::move(vma));
    return raw;
}

void
GuestOs::munmap(Pid pid, Vma *vma)
{
    GuestProcess &proc = process(pid);
    for (std::uint64_t i = 0; i < vma->numPages; ++i) {
        if (!vma->fileBacked &&
            proc.swappedOut.erase(vma->vpnAt(i)) > 0) {
            jtps_assert(guest_swapped_ > 0);
            --guest_swapped_;
            continue;
        }
        auto it = proc.pageTable.find(vma->vpnAt(i));
        if (it == proc.pageTable.end())
            continue;
        if (!vma->fileBacked) {
            hvSetHugePage(it->second, false);
            hvDiscardPage(it->second);
            freeGfn(it->second);
        } else {
            dropCacheMapRef(it->second);
        }
        proc.pageTable.erase(it);
    }
    for (auto it = proc.vmas.begin(); it != proc.vmas.end(); ++it) {
        if (it->get() == vma) {
            proc.vmas.erase(it);
            return;
        }
    }
    panic("munmap of VMA not owned by pid %u", pid);
}

Gfn
GuestOs::ensureMapped(const Vma *vma, std::uint64_t index)
{
    jtps_assert(index < vma->numPages);
    GuestProcess &proc = process(vma->pid);
    const Vpn vpn = vma->vpnAt(index);

    auto it = proc.pageTable.find(vpn);
    if (it != proc.pageTable.end())
        return it->second;

    if (!vma->fileBacked && proc.swappedOut.count(vpn))
        return guestSwapIn(proc, vpn);

    Gfn gfn;
    if (vma->fileBacked) {
        auto fit = files_.find(vma->fileTag);
        jtps_assert(fit != files_.end());
        gfn = pageCacheGet(fit->second, index);
        ++cache_mapcount_[gfn];
    } else {
        gfn = allocGfn();
        if (vma->hugeBacked)
            hvSetHugePage(gfn, true);
    }
    proc.pageTable.emplace(vpn, gfn);
    return gfn;
}

void
GuestOs::writeWord(const Vma *vma, std::uint64_t index, unsigned sector,
                   std::uint64_t value)
{
    hvWriteWord(ensureMapped(vma, index), sector, value);
}

void
GuestOs::writePage(const Vma *vma, std::uint64_t index,
                   const mem::PageData &data)
{
    hvWritePage(ensureMapped(vma, index), data);
}

std::uint64_t
GuestOs::readWord(const Vma *vma, std::uint64_t index, unsigned sector)
{
    GuestProcess &proc = process(vma->pid);
    if (!vma->fileBacked &&
        !proc.pageTable.count(vma->vpnAt(index)) &&
        !proc.swappedOut.count(vma->vpnAt(index))) {
        return 0; // untouched anonymous memory reads as zero
    }
    if (staging()) {
        // A host read cannot be reordered past other VMs' pending
        // commits; no guest model reads on the epoch path today.
        panic("guest '%s': readWord during the stage phase",
              name_.c_str());
    }
    return hv_.readWord(vm_id_, ensureMapped(vma, index), sector);
}

void
GuestOs::touch(const Vma *vma, std::uint64_t index)
{
    GuestProcess &proc = process(vma->pid);
    if (!vma->fileBacked) {
        auto it = proc.pageTable.find(vma->vpnAt(index));
        if (it == proc.pageTable.end()) {
            if (proc.swappedOut.count(vma->vpnAt(index)))
                hvTouchPage(guestSwapIn(proc, vma->vpnAt(index)));
            return;
        }
        hvTouchPage(it->second);
        return;
    }
    hvTouchPage(ensureMapped(vma, index));
}

void
GuestOs::discard(const Vma *vma, std::uint64_t index)
{
    GuestProcess &proc = process(vma->pid);
    if (!vma->fileBacked &&
        proc.swappedOut.erase(vma->vpnAt(index)) > 0) {
        jtps_assert(guest_swapped_ > 0);
        --guest_swapped_;
        return;
    }
    auto it = proc.pageTable.find(vma->vpnAt(index));
    if (it == proc.pageTable.end())
        return;
    if (vma->fileBacked) {
        // Unmapping a file page does not evict it from the cache.
        dropCacheMapRef(it->second);
        proc.pageTable.erase(it);
        return;
    }
    hvSetHugePage(it->second, false);
    hvDiscardPage(it->second);
    freeGfn(it->second);
    proc.pageTable.erase(it);
}

Gfn
GuestOs::pageCacheGet(const FileImage &file, std::uint64_t index)
{
    jtps_assert(index < file.pages());
    registerFile(file);

    auto &file_pages = cache_index_[file.contentTag()];
    auto it = file_pages.find(index);
    if (it != file_pages.end()) {
        hvTouchPage(it->second);
        return it->second;
    }

    // Cache miss: "read from disk" into a fresh cache page.
    jtps_assert(cache_cursor_ < cache_vma_->numPages);
    Gfn gfn = allocGfn();
    hvWritePage(gfn, file.pageContent(index));

    GuestProcess &kernel = process(0);
    const Vpn cache_vpn = cache_vma_->vpnAt(cache_cursor_);
    kernel.pageTable.emplace(cache_vpn, gfn);
    ++cache_cursor_;
    ++cache_used_;
    file_pages.emplace(index, gfn);
    cache_pages_.push_back(
        CachePage{file.contentTag(), index, gfn, cache_vpn});
    return gfn;
}

void
GuestOs::dropCacheMapRef(Gfn gfn)
{
    auto it = cache_mapcount_.find(gfn);
    jtps_assert(it != cache_mapcount_.end() && it->second > 0);
    if (--it->second == 0)
        cache_mapcount_.erase(it);
}

void
GuestOs::touchPageCache(std::uint32_t pages)
{
    if (cache_pages_.empty())
        return;
    for (std::uint32_t i = 0; i < pages; ++i) {
        const CachePage &cp =
            cache_pages_[rng_.nextBelow(cache_pages_.size())];
        hvTouchPage(cp.gfn);
    }
}

void
GuestOs::touchFileSpace(std::uint32_t pages)
{
    if (file_order_.empty())
        return;
    for (std::uint32_t i = 0; i < pages; ++i) {
        const std::uint64_t tag =
            file_order_[rng_.nextBelow(file_order_.size())];
        const FileImage &file = files_.at(tag);
        if (file.pages() == 0)
            continue;
        const std::uint64_t index = rng_.nextBelow(file.pages());
        auto fit = cache_index_.find(tag);
        if (fit != cache_index_.end() && fit->second.count(index)) {
            hvTouchPage(fit->second.at(index));
        } else {
            // Cache miss: a real disk read fills the cache.
            pageCacheGet(file, index);
            ++cache_misses_;
        }
    }
}

std::uint64_t
GuestOs::reclaimPageCache(std::uint64_t pages)
{
    // Random-replacement reclaim over clean, unmapped cache pages.
    std::uint64_t reclaimed = 0;
    std::size_t attempts = cache_pages_.size() * 2;
    GuestProcess &kernel = process(0);
    while (reclaimed < pages && attempts-- > 0 &&
           !cache_pages_.empty()) {
        const std::size_t pick = rng_.nextBelow(cache_pages_.size());
        const CachePage cp = cache_pages_[pick];
        if (cache_mapcount_.count(cp.gfn))
            continue; // mapped by a process: not reclaimable
        hvDiscardPage(cp.gfn);
        freeGfn(cp.gfn);
        kernel.pageTable.erase(cp.vpn);
        cache_index_[cp.fileTag].erase(cp.index);
        cache_pages_[pick] = cache_pages_.back();
        cache_pages_.pop_back();
        --cache_used_;
        ++reclaimed;
    }
    return reclaimed;
}

void
GuestOs::readFile(const FileImage &file)
{
    for (std::uint64_t i = 0; i < file.pages(); ++i)
        pageCacheGet(file, i);
}

void
GuestOs::bootKernel(const KernelConfig &cfg)
{
    // Kernel text and read-only data: identical content in every VM
    // running the same kernel build.
    Vma *text = mmapAnon(0, cfg.textBytes, MemCategory::KernelText,
                         "kernel-text");
    const std::uint64_t text_tag = stringTag(cfg.version + ".text");
    for (std::uint64_t i = 0; i < text->numPages; ++i)
        writePage(text, i, mem::PageData::filled(text_tag, i));

    // Kernel static data: mutated during boot, per-VM content.
    Vma *data = mmapAnon(0, cfg.dataBytes, MemCategory::KernelData,
                         "kernel-data");
    const std::uint64_t data_tag =
        hashCombine(stringTag(cfg.version + ".data"), seed_);
    for (std::uint64_t i = 0; i < data->numPages; ++i)
        writePage(data, i, mem::PageData::filled(data_tag, i));

    // Slab: dentries, inodes, network buffers — full of per-VM pointers.
    Vma *slab = mmapAnon(0, cfg.slabBytes, MemCategory::Slab, "slab");
    const std::uint64_t slab_tag = hashCombine(stringTag("slab"), seed_);
    for (std::uint64_t i = 0; i < slab->numPages; ++i)
        writePage(slab, i, mem::PageData::filled(slab_tag, i));

    // Boot-time page cache: base-image files are identical across VMs;
    // logs and generated files are not.
    readFile(FileImage::shared("base-image:/usr", cfg.sharedBootCacheBytes));
    readFile(FileImage::perVm("/var/log+generated",
                              cfg.privateBootCacheBytes, seed_));
}

} // namespace jtps::guest
