/**
 * @file
 * Balloon driver model (paper §VI related work).
 *
 * "Ballooning is a technique to reduce paging in a hypervisor by
 * dynamically reducing the amount of memory available to a guest OS.
 * The guest OS may reduce its memory usage more efficiently than the
 * hypervisor because it has more information about the usage of its
 * memory pages. For example, it can reduce memory by shrinking its
 * disk cache rather than by paging-out pages."
 *
 * The model does exactly that: inflating the balloon makes the guest
 * reclaim clean, unmapped page-cache pages, returning their host
 * frames. The cost appears later as guest-side cache misses (disk
 * re-reads) when the dropped files are accessed again — the trade-off
 * the paper contrasts with TPS, which keeps shared pages readable at
 * zero cost.
 *
 * The paper also notes KVM ships no balloon policy manager
 * ("we cannot use ballooning unless we install a separate manager"),
 * so the target size here is set by the experimenter, as it would be
 * by such a manager.
 */

#ifndef JTPS_GUEST_BALLOON_HH
#define JTPS_GUEST_BALLOON_HH

#include "base/units.hh"
#include "guest/guest_os.hh"

namespace jtps::guest
{

/**
 * The balloon device of one guest.
 */
class BalloonDriver
{
  public:
    explicit BalloonDriver(GuestOs &os) : os_(os) {}

    /**
     * Inflate by @p target_bytes: the guest reclaims (clean cache
     * first, then anonymous pages to its own swap) and the balloon
     * pins the freed frames so the host can reuse them. The inflation
     * saturates when the guest has nothing left to reclaim.
     * @return bytes actually reclaimed by this call.
     */
    Bytes
    inflate(Bytes target_bytes)
    {
        const std::uint64_t got =
            os_.balloonTake(bytesToPages(target_bytes));
        inflated_pages_ += got;
        return pagesToBytes(got);
    }

    /**
     * Deflate: the frames go back to the guest's free pool; the cache
     * refills lazily through future file activity.
     */
    void
    deflate()
    {
        os_.balloonReturn(inflated_pages_);
        inflated_pages_ = 0;
    }

    /** Currently inflated size. */
    Bytes inflatedBytes() const { return pagesToBytes(inflated_pages_); }

  private:
    GuestOs &os_;
    std::uint64_t inflated_pages_ = 0;
};

} // namespace jtps::guest

#endif // JTPS_GUEST_BALLOON_HH
