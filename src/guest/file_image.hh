/**
 * @file
 * File images: the contents of files on the guests' virtual disks.
 *
 * A cloud datacenter provisions guests from a shared base disk image, so
 * the same file (the kernel, libjvm.so, WAS jars, a copied shared-class
 * -cache file) has byte-identical content in every VM — the root cause
 * of all cross-VM page sharing in the paper. A FileImage is that
 * content: page @p i of file @p tag is `PageData::filled(tag, i)`.
 *
 * Files that differ per VM (logs, configuration written at first boot)
 * use a per-VM salt so their pages never match across guests.
 */

#ifndef JTPS_GUEST_FILE_IMAGE_HH
#define JTPS_GUEST_FILE_IMAGE_HH

#include <cstdint>
#include <string>

#include "base/hash.hh"
#include "base/types.hh"
#include "base/units.hh"
#include "mem/page_data.hh"

namespace jtps::guest
{

/**
 * One file on a guest's disk. Value type; content is derived, not
 * stored.
 */
class FileImage
{
  public:
    /**
     * A file from the shared base image: identical in every VM.
     * @param path Stable path/name; determines content.
     * @param bytes File size.
     */
    static FileImage
    shared(const std::string &path, Bytes bytes)
    {
        return FileImage(path, bytes, stringTag(path));
    }

    /**
     * A per-VM file (log, generated config): content differs by
     * @p vm_salt, so it can never TPS-share across VMs.
     */
    static FileImage
    perVm(const std::string &path, Bytes bytes, std::uint64_t vm_salt)
    {
        return FileImage(path, bytes,
                         hashCombine(stringTag(path), mix64(vm_salt)));
    }

    /**
     * A file with explicit content tag — used for the shared class
     * cache, whose content is the CDS layout digest: two VMs share its
     * pages exactly when they were given byte-identical cache files.
     */
    static FileImage
    withContentTag(const std::string &path, Bytes bytes, std::uint64_t tag)
    {
        return FileImage(path, bytes, tag);
    }

    /** File name. */
    const std::string &path() const { return path_; }

    /** File size in bytes. */
    Bytes bytes() const { return bytes_; }

    /** File size in whole pages. */
    std::uint64_t pages() const { return bytesToPages(bytes_); }

    /** Content tag (two files share pages iff tags are equal). */
    std::uint64_t contentTag() const { return tag_; }

    /** Content of page @p index of this file. */
    mem::PageData
    pageContent(std::uint64_t index) const
    {
        return mem::PageData::filled(tag_, index);
    }

  private:
    FileImage(std::string path, Bytes bytes, std::uint64_t tag)
        : path_(std::move(path)), bytes_(bytes), tag_(tag)
    {
    }

    std::string path_;
    Bytes bytes_;
    std::uint64_t tag_;
};

} // namespace jtps::guest

#endif // JTPS_GUEST_FILE_IMAGE_HH
