#include "guest/mem_category.hh"

namespace jtps::guest
{

const char *
categoryName(MemCategory cat)
{
    switch (cat) {
      case MemCategory::Code:
        return "Code";
      case MemCategory::ClassMetadata:
        return "Class metadata";
      case MemCategory::JitCode:
        return "JIT-compiled code";
      case MemCategory::JitWork:
        return "JIT work area";
      case MemCategory::JavaHeap:
        return "Java heap";
      case MemCategory::JvmWork:
        return "JVM work area";
      case MemCategory::Stack:
        return "Stack";
      case MemCategory::KernelText:
        return "Kernel text";
      case MemCategory::KernelData:
        return "Kernel data";
      case MemCategory::Slab:
        return "Slab";
      case MemCategory::PageCache:
        return "Page cache";
      case MemCategory::OtherProcess:
        return "Other process";
      case MemCategory::VmOverhead:
        return "VM overhead";
      case MemCategory::NumCategories:
        break;
    }
    return "?";
}

bool
isJavaCategory(MemCategory cat)
{
    switch (cat) {
      case MemCategory::Code:
      case MemCategory::ClassMetadata:
      case MemCategory::JitCode:
      case MemCategory::JitWork:
      case MemCategory::JavaHeap:
      case MemCategory::JvmWork:
      case MemCategory::Stack:
        return true;
      default:
        return false;
    }
}

bool
isKernelCategory(MemCategory cat)
{
    switch (cat) {
      case MemCategory::KernelText:
      case MemCategory::KernelData:
      case MemCategory::Slab:
      case MemCategory::PageCache:
        return true;
      default:
        return false;
    }
}

} // namespace jtps::guest
