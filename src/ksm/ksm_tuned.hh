/**
 * @file
 * ksmtuned — the KSM governor daemon.
 *
 * The paper tunes pages_to_scan by hand (10,000 during warm-up, 1,000
 * after). Production RHEL/KVM hosts of that era ran `ksmtuned`, which
 * does the same adaptively: it samples committed guest memory against
 * host RAM, *boosts* the scan rate while memory is tight and *decays*
 * it when there is slack, within [minPages, maxPages]. This model
 * implements that control loop so the manual schedule and the governed
 * one can be compared.
 */

#ifndef JTPS_KSM_KSM_TUNED_HH
#define JTPS_KSM_KSM_TUNED_HH

#include <cstdint>

#include "base/stats.hh"
#include "hv/hypervisor.hh"
#include "ksm/ksm_scanner.hh"
#include "sim/event_queue.hh"

namespace jtps::ksm
{

/** ksmtuned configuration (/etc/ksmtuned.conf). */
struct KsmTunedConfig
{
    Tick monitorIntervalMs = 10'000; //!< KSM_MONITOR_INTERVAL
    std::uint32_t boostPages = 3000; //!< KSM_NPAGES_BOOST
    std::int32_t decayPages = -500;  //!< KSM_NPAGES_DECAY
    std::uint32_t minPages = 640;    //!< KSM_NPAGES_MIN
    std::uint32_t maxPages = 12500;  //!< KSM_NPAGES_MAX
    /**
     * Fraction of host RAM that must stay free; committed memory above
     * (1 - threshold) turns the boost on (KSM_THRES_COEF).
     */
    double freeThreshold = 0.20;
};

/**
 * The governor: attach() it alongside the scanner and it retunes
 * pages_to_scan every monitor interval.
 */
class KsmTuned
{
  public:
    KsmTuned(hv::Hypervisor &hv, KsmScanner &scanner,
             const KsmTunedConfig &cfg, StatSet &stats);

    /** Run one control-loop step (also called by the periodic event). */
    void step();

    /** Attach the periodic control loop to @p queue. */
    void attach(sim::EventQueue &queue);

    /** Stop the loop at the next firing. */
    void detach() { attached_ = false; }

    /** Decisions taken so far (for tests/telemetry). */
    std::uint64_t boosts() const { return boosts_; }
    std::uint64_t decays() const { return decays_; }

  private:
    hv::Hypervisor &hv_;
    KsmScanner &scanner_;
    KsmTunedConfig cfg_;
    StatSet &stats_;
    bool attached_ = false;
    std::uint64_t boosts_ = 0;
    std::uint64_t decays_ = 0;
};

} // namespace jtps::ksm

#endif // JTPS_KSM_KSM_TUNED_HH
