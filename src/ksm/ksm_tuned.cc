#include "ksm/ksm_tuned.hh"

#include <algorithm>

namespace jtps::ksm
{

KsmTuned::KsmTuned(hv::Hypervisor &hv, KsmScanner &scanner,
                   const KsmTunedConfig &cfg, StatSet &stats)
    : hv_(hv), scanner_(scanner), cfg_(cfg), stats_(stats)
{
}

void
KsmTuned::step()
{
    // ksmtuned compares committed guest memory against the free
    // threshold. Our equivalent of "committed" is resident plus
    // swapped-out guest pages (what the guests want mapped).
    std::uint64_t committed_pages = hv_.residentFrames();
    for (VmId v = 0; v < hv_.vmCount(); ++v)
        committed_pages += hv_.vm(v).swappedPages;

    const std::uint64_t capacity = hv_.frames().capacity();
    const bool tight =
        committed_pages >
        static_cast<std::uint64_t>(capacity * (1.0 - cfg_.freeThreshold));

    const std::uint32_t current = scanner_.config().pagesToScan;
    std::int64_t next = current;
    if (tight) {
        next += cfg_.boostPages;
        ++boosts_;
        stats_.inc("ksmtuned.boosts");
    } else {
        next += cfg_.decayPages;
        ++decays_;
        stats_.inc("ksmtuned.decays");
    }
    next = std::clamp<std::int64_t>(next, cfg_.minPages, cfg_.maxPages);
    scanner_.setPagesToScan(static_cast<std::uint32_t>(next));
    stats_.set("ksmtuned.pages_to_scan",
               static_cast<std::uint64_t>(next));
}

void
KsmTuned::attach(sim::EventQueue &queue)
{
    attached_ = true;
    queue.schedulePeriodic(cfg_.monitorIntervalMs, [this]() {
        if (!attached_)
            return false;
        step();
        return true;
    });
}

} // namespace jtps::ksm
