#include "ksm/ksm_scanner.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "base/logging.hh"
#include "base/units.hh"

namespace jtps::ksm
{

namespace
{

/** Slot index hash for the flat unstable table (fixed constants keep
 *  the probe order deterministic across runs). */
inline std::size_t
unstableSlotHash(std::uint64_t digest)
{
    std::uint64_t h = digest;
    h ^= h >> 33;
    h *= 0x9E3779B97F4A7C15ull;
    h ^= h >> 29;
    return static_cast<std::size_t>(h);
}

/** Tombstone marker: non-zero (keeps probe chains intact) and never a
 *  real pass epoch (epochs count up from 1, one per full scan). */
constexpr std::uint64_t tombstoneEpoch = ~std::uint64_t{0};

constexpr std::size_t npos = static_cast<std::size_t>(-1);

constexpr std::size_t initialUnstableCapacity = 1024;

/** Monotonic now in ms, for the JTPS_SCAN_PHASE_MS accounting only. */
inline double
phaseNowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

KsmScanner::KsmScanner(hv::Hypervisor &hv, const KsmConfig &cfg,
                       StatSet &stats)
    : hv_(hv), cfg_(cfg), stats_(stats),
      stat_stale_stable_(stats.counter("ksm.stale_stable_nodes")),
      stat_stale_unstable_(stats.counter("ksm.stale_unstable_nodes")),
      stat_skipped_huge_(stats.counter("ksm.skipped_huge")),
      stat_not_calm_(stats.counter("ksm.not_calm")),
      stat_stable_merges_(stats.counter("ksm.stable_merges")),
      stat_unstable_promotions_(stats.counter("ksm.unstable_promotions")),
      stat_pages_visited_(stats.counter("ksm.pages_visited")),
      stat_gen_skipped_(stats.counter("ksm.pages_gen_skipped")),
      stat_digest_cache_hits_(stats.counter("ksm.digest_cache_hits")),
      stat_scan_shards_(stats.counter("ksm.scan_shards")),
      stat_precheck_candidates_(stats.counter("ksm.precheck_candidates")),
      stat_commit_replays_(stats.counter("ksm.commit_replays")),
      stat_pml_skipped_(stats.counter("ksm.pages_pml_skipped")),
      stat_shard_imbalance_(stats.counter("ksm.shard_imbalance_max")),
      stat_batch_kernel_pages_(stats.counter("ksm.batch_kernel_pages")),
      stat_batch_flushes_(stats.counter("ksm.batch_flushes")),
      stat_hv_ksm_merges_(hv.stats().counter("hv.ksm_merges"))
{
    cfg_.batchPages = std::clamp<std::uint32_t>(cfg_.batchPages, 1, 128);
    // Log-driven passes are only complete if every write has been
    // funneled into a ring since the VMs existed.
    jtps_assert(!cfg_.usePml || hv_.pmlEnabled());
    // Every stable-epoch stripe must belong to exactly one shard
    // (stripe = digest mod kStripes, shard = digest mod S): S | 64.
    jtps_assert(cfg_.commitShards >= 1 &&
                cfg_.commitShards <= mem::FrameTable::kStripes &&
                mem::FrameTable::kStripes % cfg_.commitShards == 0);
    shards_.resize(effectiveCommitShards());
    for (ShardState &sh : shards_)
        sh.unstable.assign(initialUnstableCapacity, UnstableSlot{});
    stats_.set("ksm.commit_shards", shards_.size());
    phase_timing_ = std::getenv("JTPS_SCAN_PHASE_MS") != nullptr;
    hv_.addPageListener(this);
}

unsigned
KsmScanner::effectiveCommitShards() const
{
    // PML's ring/queue bookkeeping (splices, injected lanes) is
    // inherently serial: log-driven runs keep the classic commit.
    if (cfg_.usePml || cfg_.commitShards <= 1)
        return 1;
    return cfg_.commitShards;
}

KsmScanner::~KsmScanner()
{
    hv_.removePageListener(this);
}

void
KsmScanner::setPagesToScan(std::uint32_t pages)
{
    cfg_.pagesToScan = pages;
    stats_.set("ksm.pages_to_scan", pages);
}

void
KsmScanner::setSleepMillisecs(Tick ms)
{
    jtps_assert(ms > 0);
    cfg_.sleepMillisecs = ms;
}

void
KsmScanner::pageDiscarded(VmId vm, Gfn gfn)
{
    // Mirror of the old `EptEntry{}` reset wiping the in-EPT checksum:
    // the next visit of a reincarnated page must run the full calm
    // protocol from scratch. Untracked pages have no state to drop.
    if (vm >= page_state_.size())
        return;
    auto &v = page_state_[vm];
    if (gfn >= v.size())
        return;
    v[gfn] = PageScanState{};
}

KsmScanner::PageScanState &
KsmScanner::pageState(VmId vm, Gfn gfn)
{
    if (vm >= page_state_.size())
        page_state_.resize(
            std::max<std::size_t>(hv_.vmCount(), vm + std::size_t{1}));
    auto &v = page_state_[vm];
    if (v.empty())
        v.resize(hv_.vm(vm).ept.size());
    jtps_assert(gfn < v.size());
    return v[gfn];
}

KsmScanner::PageScanState *
KsmScanner::pageStateRow(VmId vm, const hv::Vm &v)
{
    if (vm >= page_state_.size())
        page_state_.resize(
            std::max<std::size_t>(hv_.vmCount(), vm + std::size_t{1}));
    auto &row = page_state_[vm];
    if (row.size() < v.ept.size())
        row.resize(v.ept.size());
    return row.data();
}

KsmScanner::FrameMemo &
KsmScanner::frameMemo(Hfn hfn)
{
    if (hfn >= frame_memo_.size()) {
        frame_memo_.resize(std::max<std::size_t>(
            hfn + std::size_t{1}, frame_memo_.size() * 2));
    }
    return frame_memo_[hfn];
}

std::uint64_t
KsmScanner::cachedDigest(Hfn hfn, std::uint64_t gen,
                         const mem::PageData &data,
                         const std::uint64_t *pre,
                         std::uint64_t &digest_hits)
{
    FrameMemo &m = frameMemo(hfn);
    if (m.gen != gen) {
        m = FrameMemo{};
        m.gen = gen;
    }
    if (m.hasDigest) {
        ++digest_hits;
        return m.digest;
    }
    // Memo miss: a precomputed value (classify snapshot under its
    // generation proof, or a content-pure batch-kernel value) stands
    // in for the recompute; the memo end-state is identical.
    m.digest = pre ? *pre : data.digest();
    m.hasDigest = true;
    return m.digest;
}

std::uint32_t
KsmScanner::cachedChecksum(Hfn hfn, std::uint64_t gen,
                           const mem::PageData &data,
                           const std::uint32_t *pre)
{
    FrameMemo &m = frameMemo(hfn);
    if (m.gen != gen) {
        m = FrameMemo{};
        m.gen = gen;
    }
    if (!m.hasChecksum) {
        m.checksum = pre ? *pre : data.checksum();
        m.hasChecksum = true;
    }
    return m.checksum;
}

std::uint64_t
KsmScanner::genCalmDigest(mem::FrameTable &ft, Hfn hfn,
                          std::uint64_t gen, PageScanState &ps,
                          const mem::PageData *&data,
                          const std::uint64_t *pre,
                          std::uint64_t &digest_hits,
                          bool &skip_stable_probe)
{
    // Generation fast path, non-stable: serve the digest from the
    // per-page cache, falling back to the frame memo (first revisit),
    // and derive the epoch-proved stable-probe skip. Shared verbatim
    // by the serial visit, the commit replay and the shard commits —
    // only the counter sinks differ.
    std::uint64_t digest;
    if (ps.digestValid) {
        ++digest_hits;
        digest = ps.lastDigest;
    } else {
        data = &ft.frame(hfn).data;
        digest = cachedDigest(hfn, gen, *data, pre, digest_hits);
        ps.lastDigest = digest;
        ps.digestValid = true;
    }
    skip_stable_probe = ps.lastStableEpoch != 0 &&
                        ps.lastStableEpoch == ft.ksmStableEpoch(digest);
    return digest;
}

bool
KsmScanner::slowPathContent(mem::FrameTable &ft, Hfn hfn,
                            std::uint64_t gen, PageScanState &ps,
                            const mem::PageData *&data,
                            const std::uint32_t *pre_sum,
                            const std::uint64_t *pre_dig,
                            std::uint64_t &digest_hits,
                            std::uint64_t &digest_out)
{
    // Slow path, non-stable: the calm protocol. Identical compare to
    // the one the in-EPT checksum used to implement; the state lives
    // in the scanner's per-page row.
    if (!data)
        data = &ft.frame(hfn).data;
    const std::uint32_t sum =
        cfg_.incrementalScan ? cachedChecksum(hfn, gen, *data, pre_sum)
                             : (pre_sum ? *pre_sum : data->checksum());
    const bool calm = ps.checksumValid && ps.lastChecksum == sum;
    ps.lastChecksum = sum;
    ps.checksumValid = true;
    ps.lastGen = gen;
    ps.lastStable = false;
    ps.lastStableEpoch = 0;
    ps.digestValid = false;
    if (!calm)
        return false; // the caller counts not_calm and stops
    digest_out =
        cfg_.incrementalScan
            ? cachedDigest(hfn, gen, *data, pre_dig, digest_hits)
            : (pre_dig ? *pre_dig : data->digest());
    if (cfg_.incrementalScan) {
        ps.lastDigest = digest_out;
        ps.digestValid = true;
    }
    return true;
}

void
KsmScanner::unstableRehash(ShardState &sh, std::size_t new_capacity)
{
    jtps_assert((new_capacity & (new_capacity - 1)) == 0);
    std::vector<UnstableSlot> old = std::move(sh.unstable);
    sh.unstable.assign(new_capacity, UnstableSlot{});
    sh.occupied = 0;
    sh.live = 0;
    const std::size_t mask = new_capacity - 1;
    for (const UnstableSlot &s : old) {
        if (s.epoch != pass_epoch_)
            continue; // drop tombstones and earlier passes' entries
        std::size_t i = unstableSlotHash(s.digest) & mask;
        while (sh.unstable[i].epoch != 0)
            i = (i + 1) & mask;
        sh.unstable[i] = s;
        ++sh.occupied;
        ++sh.live;
    }
}

Hfn
KsmScanner::stableLookup(ShardState &sh, const mem::PageData &data,
                         std::uint64_t digest,
                         std::uint64_t &stale_counter)
{
    auto bucket = sh.stableTree.find(digest);
    if (bucket == sh.stableTree.end())
        return invalidFrame;

    std::vector<Hfn> &chain = bucket->second;
    Hfn found = invalidFrame;
    for (std::size_t i = 0; i < chain.size();) {
        const Hfn hfn = chain[i];
        // Lazy pruning: the frame may have been freed (all sharers
        // COW-diverged or the host evicted it) or its content replaced.
        // The full compare also guards merging across a digest
        // collision — a colliding valid frame merely loses its node.
        // Content is compared *before* the stable flag: page content
        // is frozen for a whole commit, so when the node is stale via
        // a recycled frame now owned by another shard, the mismatch
        // alone settles the prune without reading fields that shard
        // may be mutating.
        if (!hv_.frames().isAllocated(hfn) ||
            !(hv_.frames().frame(hfn).data == data) ||
            !hv_.frames().frame(hfn).ksmStable) {
            chain.erase(chain.begin() + i);
            ++stale_counter;
            continue;
        }
        // Chain discipline: a full stable frame stops accepting
        // sharers; the next duplicate in the chain (or a fresh one)
        // takes over.
        if (hv_.frames().frame(hfn).refcount >= cfg_.maxPageSharing) {
            ++i;
            continue;
        }
        found = hfn;
        break;
    }
    if (chain.empty())
        sh.stableTree.erase(bucket);
    return found;
}

bool
KsmScanner::scanOne(VmId vm, Gfn gfn, const hv::Vm &v,
                    mem::FrameTable &ft, PageScanState *psv,
                    const BatchPre *pre)
{
    const hv::EptEntry &e = v.ept.entry(gfn);
    if (e.state != hv::PageState::Resident)
        return false; // not resident: nothing to merge

    if (!v.hugePages.empty() && v.hugePages[gfn]) {
        // THP-backed memory is not madvise-MERGEABLE: skip.
        ++stat_skipped_huge_;
        return true;
    }

    const Hfn hfn = e.backing;
    const std::uint64_t gen = ft.writeGen(hfn);
    PageScanState &ps = psv[gfn];
    // The page content, loaded only on the paths that need it: the
    // generation fast path below settles most visits from the dense
    // generation array and this VM's page-state row alone.
    const mem::PageData *data = nullptr;
    std::uint64_t digest;
    bool skip_stable_probe = false;

    if (cfg_.incrementalScan && ps.lastGen == gen) {
        // The frame's write generation has not moved since the last
        // completed visit. Generations are globally unique and bumped
        // on every content change, reallocation, and stable-flag
        // transition, so equality proves this is the same frame, with
        // the same stable flag and byte-identical content: the
        // checksum compare would come out calm. Stable pages are done
        // (a from-scratch visit early-returns on them); for the rest,
        // serve the digest from the per-page cache (or the frame memo
        // on the first revisit). A stable-tree probe that missed at
        // ps.lastStableEpoch must still miss while the epoch is
        // unchanged (stable frames only gain sharers without an epoch
        // bump, and every staleness or capacity transition bumps it),
        // so it is skipped as well.
        ++stat_gen_skipped_;
        if (ps.lastStable)
            return true; // provably still a shared KSM page
        digest = genCalmDigest(ft, hfn, gen, ps, data,
                               pre && pre->hasDig ? &pre->dig : nullptr,
                               stat_digest_cache_hits_,
                               skip_stable_probe);
    } else {
        const mem::Frame &frame = ft.frame(hfn);
        if (frame.ksmStable) {
            // Remember the outcome (incremental mode only — the
            // calm-protocol fields stay untouched either way, exactly
            // like a from-scratch visit): while the generation holds,
            // revisits return here without loading the Frame.
            if (cfg_.incrementalScan) {
                ps.lastGen = gen;
                ps.lastStable = true;
                ps.digestValid = false;
                ps.lastStableEpoch = 0;
            }
            return true; // already a shared KSM page
        }
        data = &frame.data;
        if (!slowPathContent(ft, hfn, gen, ps, data,
                             pre && pre->hasSum ? &pre->sum : nullptr,
                             pre && pre->hasDig ? &pre->dig : nullptr,
                             stat_digest_cache_hits_, digest)) {
            ++stat_not_calm_;
            return true;
        }
    }

    treeStage(vm, gfn, ft, ps, hfn, digest, data, skip_stable_probe,
              nullptr);
    return true;
}

void
KsmScanner::treeStage(VmId vm, Gfn gfn, mem::FrameTable &ft,
                      PageScanState &ps, Hfn hfn, std::uint64_t digest,
                      const mem::PageData *data, bool skip_stable_probe,
                      const PageSnap *snap)
{
    ShardState &sh = shards_[shardFor(digest)];

    // Stable tree first.
    if (!skip_stable_probe) {
        if (snap && snap->probeCleanMiss &&
            snap->probeEpoch == ft.ksmStableEpoch(digest)) {
            // The read-only classify probe walked the whole chain and
            // met neither a stale node nor an acceptable one, and the
            // stable epoch has not moved since: no node can have been
            // added, gone stale or regained capacity without a bump,
            // so a real lookup would do nothing but miss. Record the
            // miss exactly as the serial visit would.
            ps.lastStableEpoch = ft.ksmStableEpoch(digest);
        } else {
            if (!data)
                data = &ft.frame(hfn).data;
            const Hfn stable =
                stableLookup(sh, *data, digest, stat_stale_stable_);
            if (stable != invalidFrame) {
                if (hv_.ksmMergeInto(stable, vm, gfn)) {
                    ++merges_this_pass_;
                    ++merges_total_;
                    ++stat_stable_merges_;
                    if (TraceBuffer *t = hv_.trace())
                        t->record(TraceEventType::KsmStableMerge, vm,
                                  gfn, stable);
                }
                return;
            }
            // Record the miss: while the stable epoch stays put,
            // revisits of this unchanged page may skip the probe (and
            // the pruning it would do — a missing probe already pruned
            // its bucket clean).
            ps.lastStableEpoch = ft.ksmStableEpoch(digest);
        }
    }

    // Unstable tree: find another calm page with the same content seen
    // earlier in this pass. One walk serves both the lookup and, on a
    // miss, the insert position (the first reusable stale/tombstone
    // slot in the chain, or its empty terminator).
    const std::size_t mask = sh.unstable.size() - 1;
    std::size_t slot = npos;
    std::size_t insert_at = npos;
    for (std::size_t i = unstableSlotHash(digest) & mask;;
         i = (i + 1) & mask) {
        const UnstableSlot &s = sh.unstable[i];
        if (s.epoch == 0) {
            if (insert_at == npos)
                insert_at = i;
            break; // end of chain: not in this pass's tree
        }
        if (s.epoch == pass_epoch_) {
            if (s.digest == digest) {
                slot = i;
                break;
            }
        } else if (insert_at == npos) {
            insert_at = i; // stale/tombstone slot: reusable
        }
    }

    if (slot != npos) {
        UnstableSlot &u = sh.unstable[slot];
        if (u.vm == vm && u.gfn == gfn) {
            return; // same page revisited
        }
        if (!data)
            data = &ft.frame(hfn).data;
        const mem::PageData *other = hv_.peek(u.vm, u.gfn);
        bool entry_stale = other == nullptr || !(*other == *data);
        if (!entry_stale && cfg_.usePml) {
            // A persistent entry can outlive its page's promotion into
            // the stable tree (a walk pass cannot: stable pages never
            // insert). If the chain is full its content can even still
            // match ours; promoting a stable page again would be
            // wrong, so the entry is stale — exactly as the walk,
            // whose table never contained the page this pass.
            const hv::Vm &uv = hv_.vm(u.vm);
            const hv::EptEntry &ue = uv.ept.entry(u.gfn);
            if (ft.frame(ue.backing).ksmStable)
                entry_stale = true;
            // Likewise a page that became THP-backed since insertion:
            // the walk skips huge pages before the tree stage, so this
            // pass's table would never have held it.
            else if (!uv.hugePages.empty() && uv.hugePages[u.gfn])
                entry_stale = true;
        }
        if (entry_stale) {
            // The tree node went stale (page rewritten or swapped out)
            // — or, vanishingly rarely, its digest collides with ours;
            // either way, replace it with the current candidate.
            u.vm = vm;
            u.gfn = gfn;
            ++stat_stale_unstable_;
            return;
        }
        // A valid persistent entry *later* in cursor order: the walk's
        // fresh table could not have contained it at this visit — the
        // walk would have inserted the candidate here, and the entry's
        // page would have met it at its own, later visit. Reproduce
        // that exactly: the candidate takes over the slot, and the
        // entry's old page is scheduled for a visit at its canonical
        // position this pass (where its probe finds the candidate and
        // promotes it — same merge, same frame-allocation order, same
        // trace position as the walk). Only pages with a live
        // cross-pass match pay this revisit, so passes stay
        // O(dirty + matches).
        if (cfg_.usePml &&
            (vm < u.vm || (vm == u.vm && gfn < u.gfn))) {
            pmlScheduleThisPass(u.vm, u.gfn);
            u.vm = vm;
            u.gfn = gfn;
            return;
        }
        // The table entry — visited earlier in the pass — becomes the
        // stable frame; the candidate merges into it.
        Hfn fresh = hv_.ksmMakeStable(u.vm, u.gfn);
        jtps_assert(fresh != invalidFrame);
        sh.stableTree[digest].push_back(fresh);
        u.epoch = tombstoneEpoch; // erase, keeping probe chains intact
        --sh.live;
        if (hv_.ksmMergeInto(fresh, vm, gfn)) {
            ++merges_this_pass_;
            ++merges_total_;
            ++stat_unstable_promotions_;
            if (TraceBuffer *t = hv_.trace())
                t->record(TraceEventType::KsmUnstablePromotion, vm, gfn,
                          fresh);
        }
        return;
    }

    // Miss: insert. Keep at least ~30% never-used slots so probe
    // chains terminate quickly; the check runs only when this insert
    // would consume an empty slot, so a steady-state pass over
    // unchanged memory re-inserts into the previous pass's (now stale)
    // slots without ever allocating or rehashing.
    if (sh.unstable[insert_at].epoch == 0) {
        if ((sh.occupied + 1) * 10 >= sh.unstable.size() * 7) {
            std::size_t cap = sh.unstable.size();
            while (cap < 4 * (sh.live + 1))
                cap *= 2;
            unstableRehash(sh, cap);
            // Re-derive the insert position in the rehashed table
            // (all remaining slots are live entries of this pass).
            const std::size_t m2 = sh.unstable.size() - 1;
            insert_at = unstableSlotHash(digest) & m2;
            while (sh.unstable[insert_at].epoch != 0)
                insert_at = (insert_at + 1) & m2;
        }
        ++sh.occupied;
    }
    sh.unstable[insert_at] = UnstableSlot{digest, pass_epoch_, vm, gfn};
    ++sh.live;
}

bool
KsmScanner::cursorNext()
{
    const std::size_t nvms = hv_.vmCount();
    for (;;) {
        if (cur_vm_ >= nvms)
            return false; // end of a full pass over mergeable memory
        const hv::Vm &v = hv_.vm(cur_vm_);
        if (!v.mergeable || cur_gfn_ >= v.ept.size()) {
            ++cur_vm_;
            cur_gfn_ = 0;
            continue;
        }
        return true;
    }
}

void
KsmScanner::passBoundary()
{
    cur_vm_ = 0;
    cur_gfn_ = 0;
    ++full_scans_;
    stats_.set("ksm.full_scans", full_scans_);
    if (phase_timing_) {
        std::fprintf(stderr,
                     "[scan-phase] pass %llu: collect %.1f classify "
                     "%.1f kernel %.1f partition %.1f shard %.1f "
                     "reduce %.1f serial %.1f ms\n",
                     (unsigned long long)full_scans_, phase_ms_.collect,
                     phase_ms_.classify, phase_ms_.kernel,
                     phase_ms_.partition, phase_ms_.shard,
                     phase_ms_.reduce, phase_ms_.serial);
        phase_ms_ = PhaseMs{};
    }
    if (!cfg_.usePml) {
        // Clearing the unstable tree is one epoch bump: last pass's
        // entries go stale in place and their slots are reused by the
        // next pass's inserts.
        ++pass_epoch_;
        for (ShardState &sh : shards_)
            sh.live = 0;
    } else {
        // Log-driven passes keep the unstable table *persistent*: an
        // unvisited calm page stays represented by the entry its last
        // visit inserted, so a newly dirty page can still meet it —
        // exactly the pairing the walk re-establishes by re-inserting
        // every calm page each pass. Entries are content-verified on
        // every hit, so staleness costs a replaced slot, never a
        // wrong merge.
        for (std::size_t i = 0; i < pml_.size(); ++i) {
            PmlVmQueue &q = pml_[i];
            if (!q.walkThisPass && hv_.vm(static_cast<VmId>(i)).mergeable) {
                // What the walk would have visited minus what the log
                // delivered: the pages this pass proved skippable.
                const std::uint64_t res =
                    hv_.vm(static_cast<VmId>(i)).residentPages;
                if (res > q.visitedThisPass)
                    stat_pml_skipped_ += res - q.visitedThisPass;
            }
            q.walkThisPass = q.walkNextPass;
            q.walkNextPass = false;
            // Rotate the queues: next pass visits the carried-over
            // work (ring entries that landed behind the cursor plus
            // owed not-calm revisits), sorted into cursor order and
            // deduplicated so no page is visited twice in one pass.
            q.current.swap(q.next);
            q.next.clear();
            std::sort(q.current.begin(), q.current.end());
            q.current.erase(
                std::unique(q.current.begin(), q.current.end()),
                q.current.end());
            if (q.walkThisPass)
                q.current.clear(); // the walk covers everything
            // Cross-pass revisits never outlive their pass: either the
            // cursor consumed them, or a mid-pass overflow switched
            // the VM to a walk that covered them.
            q.injected.clear();
            q.curIdx = 0;
            q.injIdx = 0;
            q.visitedThisPass = 0;
        }
    }
    if (TraceBuffer *t = hv_.trace())
        t->record(TraceEventType::KsmFullScan, invalidVm, full_scans_,
                  merges_total_);
}

void
KsmScanner::visitLookahead(const hv::Vm &v, const PageScanState *psv,
                           Gfn gfn, Gfn gfn_end,
                           const mem::FrameTable &ft) const
{
    // The two random-access lines of a steady-state visit — the
    // frame's write generation (indexed by hfn) and the unstable-table
    // slot (indexed by digest hash) — are prefetched a few pages ahead
    // from the sequentially walked EPT and page-state rows, hiding
    // their miss latency behind the visits in between. Pure hints: the
    // scan itself never depends on them.
    constexpr Gfn prefetchDist = 16;
    if (gfn + prefetchDist >= gfn_end)
        return;
    const hv::EptEntry &pe = v.ept.entry(gfn + prefetchDist);
    if (pe.state == hv::PageState::Resident)
        ft.prefetchWriteGen(pe.backing);
    const PageScanState &pps = psv[gfn + prefetchDist];
    if (pps.digestValid) {
        // Two lines: collision chains average a couple of slots, and a
        // 32-byte slot at an odd index walks into the next line
        // immediately. rw=1 because the common case re-inserts into
        // the probed chain.
        prefetchUnstableSlot(pps.lastDigest);
    }
}

bool
KsmScanner::advanceCursor()
{
    if (hv_.vmCount() == 0)
        return false;
    if (!cursorNext()) {
        passBoundary();
        return false;
    }
    return true;
}

std::uint64_t
KsmScanner::scanBatch()
{
    if (hv_.vmCount() == 0)
        return 0;
    if (cfg_.usePml) {
        return cfg_.scanThreads >= 2 ? scanBatchParallelPml()
                                     : scanBatchSerialPml();
    }
    // A sharded commit needs the two-phase split even at one scan
    // thread (the split is byte-identical to the serial loop).
    if (cfg_.scanThreads >= 2 || shards_.size() > 1)
        return scanBatchParallel();
    return scanBatchSerial();
}

std::uint64_t
KsmScanner::scanBatchSerial()
{
    if (cfg_.batchPages > 1)
        return scanBatchSerialBatched();
    mem::FrameTable &ft = hv_.frames();
    std::uint64_t visited = 0;
    while (visited < cfg_.pagesToScan) {
        if (!advanceCursor()) {
            // Pass boundary reached; ksmd would continue into the next
            // pass within the same wake, but stopping here keeps wake
            // cost bounded and matches the batch accounting.
            break;
        }
        // The VM, its page-state row and the gfn bound are hoisted out
        // of the per-page loop; advanceCursor() leaves the cursor on a
        // mergeable VM with cur_gfn_ in range. Like ksmd, only
        // *present* pages consume the scan budget: the rmap walk skips
        // holes in the address space nearly for free. The pass
        // boundary still bounds each batch.
        const hv::Vm &v = hv_.vm(cur_vm_);
        PageScanState *psv = pageStateRow(cur_vm_, v);
        const Gfn gfn_end = v.ept.size();
        while (cur_gfn_ < gfn_end && visited < cfg_.pagesToScan) {
            visitLookahead(v, psv, cur_gfn_, gfn_end, ft);
            if (scanOne(cur_vm_, cur_gfn_, v, ft, psv))
                ++visited;
            ++cur_gfn_;
        }
    }
    stat_pages_visited_ += visited;
    return visited;
}

std::uint64_t
KsmScanner::scanBatchSerialBatched()
{
    // Software-pipelined serial visitor: gather a window of resident
    // candidates (consuming the cursor and the scan budget exactly as
    // the per-page loop does), stage the content kernels lane-parallel
    // over the whole window, then apply the unchanged per-page visits
    // on the precomputed values. Page content, residency and huge
    // flags are frozen for the window — no guest runs mid-batch and
    // the scanner never writes page data — so a precomputed value is
    // always what the visit would have computed; visits that stop
    // before needing one (a frame an earlier visit in the window just
    // promoted, say) simply ignore it, exactly like an unused
    // classify snapshot.
    mem::FrameTable &ft = hv_.frames();
    KernelStage &ks = serial_stage_;
    std::uint64_t visited = 0;
    while (visited < cfg_.pagesToScan) {
        if (!advanceCursor())
            break; // pass boundary: bounded wake, as in the 1-page loop
        const hv::Vm &v = hv_.vm(cur_vm_);
        PageScanState *psv = pageStateRow(cur_vm_, v);
        const Gfn gfn_end = v.ept.size();
        while (cur_gfn_ < gfn_end && visited < cfg_.pagesToScan) {
            ks.clearWindow();
            while (cur_gfn_ < gfn_end && visited < cfg_.pagesToScan &&
                   ks.count() < cfg_.batchPages) {
                visitLookahead(v, psv, cur_gfn_, gfn_end, ft);
                const hv::EptEntry &e = v.ept.entry(cur_gfn_);
                if (e.state == hv::PageState::Resident) {
                    // Settled revisits bypass the window while it is
                    // empty: a converged region then costs what the
                    // scalar visitor costs — same lookahead prefetch,
                    // same visit, no staging detour. Visit order is
                    // preserved — the bypass only runs with nothing
                    // staged ahead of it, and settled pages hit
                    // mid-gather simply join the window and apply in
                    // sequence. Generation equality needs the huge
                    // check first: a THP flip rebacks the page, so a
                    // stale row could otherwise alias the new frame.
                    bool direct = false;
                    if (ks.count() == 0 && cfg_.incrementalScan &&
                        (v.hugePages.empty() || !v.hugePages[cur_gfn_])) {
                        const PageScanState &ps = psv[cur_gfn_];
                        if (ps.lastGen == ft.writeGen(e.backing)) {
                            if (ps.lastStable) {
                                // The whole visit (see stageWindow).
                                ++stat_gen_skipped_;
                                direct = true;
                            } else if (ps.digestValid) {
                                scanOne(cur_vm_, cur_gfn_, v, ft, psv);
                                direct = true;
                            }
                        }
                    }
                    if (!direct) {
                        ks.push(&v, psv, cur_gfn_);
                        ft.prefetchWriteGen(e.backing);
                    }
                    ++visited;
                }
                ++cur_gfn_;
            }
            if (ks.count() == 0)
                continue; // ran off the VM (or budget) gathering
            stageWindow(ft, ks, /*consult_memo=*/true);
            if (phase_timing_) {
                // Fold per-window so a pass boundary inside this batch
                // prints the kernel time of its own pass.
                phase_ms_.kernel += ks.kernelMs;
                ks.kernelMs = 0.0;
            }
            for (std::size_t k = 0; k < ks.count(); ++k) {
                if (ks.stableSettled[k]) {
                    // The staged verdict is the whole visit (see
                    // stageWindow pass 0): scanOne would re-derive
                    // lastStable + generation equality and return.
                    ++stat_gen_skipped_;
                    continue;
                }
                scanOne(cur_vm_, ks.gfns[k], v, ft, psv, &ks.pre[k]);
            }
        }
    }
    stat_pages_visited_ += visited;
    stat_batch_kernel_pages_ += ks.kernelPages;
    stat_batch_flushes_ += ks.flushes;
    ks.kernelPages = 0;
    ks.flushes = 0;
    return visited;
}

void
KsmScanner::prefetchUnstableSlot(std::uint64_t digest) const
{
    const auto &pun = shards_[shardFor(digest)].unstable;
    const std::size_t h = unstableSlotHash(digest) & (pun.size() - 1);
    __builtin_prefetch(pun.data() + h, 1);
    __builtin_prefetch(pun.data() + ((h + 2) & (pun.size() - 1)), 1);
}

void
KsmScanner::stageWindow(const mem::FrameTable &ft, KernelStage &ks,
                        bool consult_memo) const
{
    const double t0 = phase_timing_ ? phaseNowMs() : 0.0;
    const std::size_t n = ks.count();
    ks.pre.assign(n, BatchPre{});
    ks.data.assign(n, nullptr);
    ks.hfns.resize(n);
    ks.gens.resize(n);
    ks.stableSettled.assign(n, 0);
    ks.sumPages.clear();
    ks.sumLane.clear();
    ks.digPages.clear();
    ks.digLane.clear();
    ks.calmIdx.clear();
    ks.needyIdx.clear();

    // Pass 0: mirror each visit's settle checks — huge skip, then the
    // generation test against per-page state only that visit may
    // mutate — touching nothing but the compact generation lane. A
    // settled revisit never loads its frame, so the frame lines are
    // prefetched only for the survivors; pulling them for every item
    // would trash the cache on converged passes where nearly all of
    // the window settles.
    for (std::size_t k = 0; k < n; ++k) {
        const hv::Vm &v = *ks.vms[k];
        const Gfn gfn = ks.gfns[k];
        if (!v.hugePages.empty() && v.hugePages[gfn]) {
            ks.hfns[k] = invalidFrame; // the visit never loads content
            continue;
        }
        const Hfn hfn = v.ept.entry(gfn).backing;
        ks.hfns[k] = hfn;
        const std::uint64_t gen = ft.writeGen(hfn);
        ks.gens[k] = gen;
        const PageScanState &ps = ks.rows[k][gfn];
        if (cfg_.incrementalScan && ps.lastGen == gen &&
            (ps.lastStable || ps.digestValid)) {
            // Settled without content. The lastStable subset is the
            // whole visit — count the generation skip and return — and
            // its verdict cannot go stale mid-window: only this visit
            // mutates this row, and a mapped stable frame's generation
            // never moves during a scan wake (no guest writes, merges
            // into it only add sharers, transitions happen on
            // non-stable frames). The serial apply loop may take it on
            // faith; digestValid items still run their full visit for
            // the tree work.
            ks.stableSettled[k] = ps.lastStable ? 1 : 0;
            if (!ps.lastStable)
                prefetchUnstableSlot(ps.lastDigest);
            continue;
        }
        ks.needyIdx.push_back(static_cast<std::uint32_t>(k));
        ft.prefetchFrame(hfn);
    }

    // Pass 1: mirror the surviving visits' decision trees (read-only,
    // against state frozen until each visit runs) down to their first
    // content computation, and stage the checksum lanes. The frame
    // reads here are what pass 0's prefetches cover.
    for (const std::uint32_t k : ks.needyIdx) {
        const Hfn hfn = ks.hfns[k];
        const std::uint64_t gen = ks.gens[k];
        const PageScanState &ps = ks.rows[k][ks.gfns[k]];
        if (cfg_.incrementalScan && ps.lastGen == gen) {
            // Gen-calm first revisit: the visit wants the digest.
            if (consult_memo && hfn < frame_memo_.size()) {
                const FrameMemo &m = frame_memo_[hfn];
                if (m.gen == gen && m.hasDigest) {
                    prefetchUnstableSlot(m.digest);
                    continue; // the memo will serve it
                }
            }
            const mem::PageData *d = &ft.frame(hfn).data;
            ks.data[k] = d;
            if (d->isZero()) {
                // Zero-page fast path: the constants fold at compile
                // time, no kernel lane spent.
                ks.pre[k].dig = mem::zeroPageDigest;
                ks.pre[k].hasDig = true;
            } else {
                ks.digPages.push_back(d);
                ks.digLane.push_back(k);
            }
        } else {
            const mem::Frame &frame = ft.frame(hfn);
            if (frame.ksmStable)
                continue; // stable fast path: no content work
            const mem::PageData *d = &frame.data;
            ks.data[k] = d;
            ks.calmIdx.push_back(k);
            if (consult_memo && cfg_.incrementalScan &&
                hfn < frame_memo_.size()) {
                const FrameMemo &m = frame_memo_[hfn];
                if (m.gen == gen && m.hasChecksum) {
                    // The memo will serve the visit; copy the value
                    // for the calm prediction below.
                    ks.pre[k].sum = m.checksum;
                    ks.pre[k].hasSum = true;
                    continue;
                }
            }
            if (d->isZero()) {
                ks.pre[k].sum = mem::zeroPageChecksum;
                ks.pre[k].hasSum = true;
            } else {
                ks.sumPages.push_back(d);
                ks.sumLane.push_back(k);
            }
        }
    }

    // Pass 2: the checksum kernel.
    if (!ks.sumPages.empty()) {
        ks.sums.resize(ks.sumPages.size());
        mem::checksumBatch(ks.sumPages.data(), ks.sums.data(),
                           ks.sumPages.size());
        for (std::size_t i = 0; i < ks.sumPages.size(); ++i) {
            ks.pre[ks.sumLane[i]].sum = ks.sums[i];
            ks.pre[ks.sumLane[i]].hasSum = true;
        }
    }

    // Pass 3: calm prediction — the same compare the visit will make,
    // against per-page state only that visit may mutate — staging the
    // digest lanes for pages that will pass it.
    for (const std::uint32_t k : ks.calmIdx) {
        const PageScanState &ps = ks.rows[k][ks.gfns[k]];
        if (!(ps.checksumValid && ps.lastChecksum == ks.pre[k].sum))
            continue; // not calm: the visit stops at the checksum
        const Hfn hfn = ks.hfns[k];
        if (consult_memo && cfg_.incrementalScan &&
            hfn < frame_memo_.size()) {
            const FrameMemo &m = frame_memo_[hfn];
            if (m.gen == ks.gens[k] && m.hasDigest)
                continue;
        }
        const mem::PageData *d = ks.data[k];
        if (d->isZero()) {
            ks.pre[k].dig = mem::zeroPageDigest;
            ks.pre[k].hasDig = true;
        } else {
            ks.digPages.push_back(d);
            ks.digLane.push_back(k);
        }
    }

    // Pass 4: the digest kernel (gen-calm and freshly-calm needs).
    if (!ks.digPages.empty()) {
        ks.digs.resize(ks.digPages.size());
        mem::digestBatch(ks.digPages.data(), ks.digs.data(),
                         ks.digPages.size());
        for (std::size_t i = 0; i < ks.digPages.size(); ++i) {
            ks.pre[ks.digLane[i]].dig = ks.digs[i];
            ks.pre[ks.digLane[i]].hasDig = true;
        }
    }

    // Pass 5: with the window's actual digests in hand, hint the
    // unstable-table slots the visits are about to probe. The scalar
    // visitor's lookahead prefetch only helps revisits (it keys off
    // the digest recorded last pass); a cold page's first calm visit
    // gets its slot hinted here, from the value the probe will really
    // use. Pure hints: an earlier visit growing the table only makes
    // them stale, never wrong.
    for (std::size_t k = 0; k < n; ++k)
        if (ks.pre[k].hasDig)
            prefetchUnstableSlot(ks.pre[k].dig);

    const std::uint64_t lanes = ks.sumPages.size() + ks.digPages.size();
    ks.kernelPages += lanes;
    if (lanes > 0)
        ++ks.flushes;
    if (phase_timing_)
        ks.kernelMs += phaseNowMs() - t0;
}

bool
KsmScanner::stableProbeCleanMiss(const mem::FrameTable &ft,
                                 const mem::PageData &data,
                                 std::uint64_t digest) const
{
    const ShardState &sh = shards_[shardFor(digest)];
    const auto bucket = sh.stableTree.find(digest);
    if (bucket == sh.stableTree.end())
        return true;
    for (const Hfn hfn : bucket->second) {
        if (!ft.isAllocated(hfn) || !ft.frame(hfn).ksmStable ||
            !(ft.frame(hfn).data == data))
            return false; // stale: a real lookup would prune here
        if (ft.frame(hfn).refcount >= cfg_.maxPageSharing)
            continue; // full: a real lookup skips it and walks on
        return false; // acceptable node: a real lookup would merge
    }
    return true;
}

void
KsmScanner::classifyOne(Gfn gfn, const hv::Vm &v,
                        const mem::FrameTable &ft,
                        const PageScanState *psv, PageSnap &snap,
                        const BatchPre *pre) const
{
    // Residency was established by the collect walk and is frozen for
    // the batch (the scanner never allocates, evicts or discards), so
    // this mirrors the serial decision tree from the huge-page check
    // down — reading, never writing. The per-page state is safe to
    // read here because only a page's own visit mutates it, and this
    // page's commit has not run yet.
    if (!v.hugePages.empty() && v.hugePages[gfn]) {
        snap.kind = PageSnap::Kind::Huge;
        return;
    }

    const Hfn hfn = v.ept.entry(gfn).backing;
    const std::uint64_t gen = ft.writeGen(hfn);
    const PageScanState &ps = psv[gfn];
    snap.gen = gen;

    std::uint64_t digest;
    if (cfg_.incrementalScan && ps.lastGen == gen) {
        if (ps.lastStable) {
            snap.kind = PageSnap::Kind::GenStable;
            return;
        }
        snap.kind = PageSnap::Kind::GenCalm;
        if (ps.digestValid) {
            digest = ps.lastDigest;
        } else {
            digest = pre && pre->hasDig ? pre->dig
                                        : ft.frame(hfn).data.digest();
            snap.digest = digest;
            snap.hasDigest = true;
        }
        // Commit re-evaluates the serial epoch-skip rule against the
        // then-current epoch; probing here would be wasted work when
        // the skip is going to hold.
        if (ps.lastStableEpoch != 0 &&
            ps.lastStableEpoch == ft.ksmStableEpoch(digest))
            return;
    } else {
        if (ft.frame(hfn).ksmStable) {
            snap.kind = PageSnap::Kind::SlowStable;
            return;
        }
        const mem::PageData &data = ft.frame(hfn).data;
        const std::uint32_t sum =
            pre && pre->hasSum ? pre->sum : data.checksum();
        snap.checksum = sum;
        snap.hasChecksum = true;
        if (!(ps.checksumValid && ps.lastChecksum == sum)) {
            snap.kind = PageSnap::Kind::NotCalm;
            return;
        }
        snap.kind = PageSnap::Kind::SlowCalm;
        digest = pre && pre->hasDig ? pre->dig : data.digest();
        snap.digest = digest;
        snap.hasDigest = true;
    }

    // Read-only stable probe. Only a clean miss is recorded: any
    // other outcome (a hit, or a chain with stale nodes to prune) has
    // side effects the commit must replay against the live tree.
    snap.probeCleanMiss =
        stableProbeCleanMiss(ft, ft.frame(hfn).data, digest);
    snap.probeEpoch = ft.ksmStableEpoch(digest);
}

void
KsmScanner::classifyRange(const mem::FrameTable &ft, std::size_t begin,
                          std::size_t end)
{
    VmId last_vm = invalidVm;
    const hv::Vm *v = nullptr;
    const PageScanState *psv = nullptr;
    const hv::Hypervisor &chv = hv_;
    if (cfg_.batchPages > 1) {
        // Software-pipelined form: stage a window of items through the
        // lane-parallel kernels, then classify each on the precomputed
        // values. Windows restart at the shard span's start, so for a
        // fixed scanShardPages the window shapes — hence the batch
        // counters — are thread-count invariant. The stage is local:
        // workers run concurrently and snaps_ rows don't overlap.
        KernelStage ks;
        for (std::size_t i = begin; i < end;) {
            const std::size_t wend =
                std::min(end, i + cfg_.batchPages);
            ks.clearWindow();
            for (std::size_t j = i; j < wend; ++j) {
                const WorkItem w = work_[j];
                if (w.vm != last_vm) {
                    v = &chv.vm(w.vm);
                    psv = page_state_[w.vm].data();
                    last_vm = w.vm;
                }
                ks.push(v, psv, w.gfn);
            }
            stageWindow(ft, ks, false);
            for (std::size_t j = i; j < wend; ++j) {
                const WorkItem w = work_[j];
                const std::size_t k = j - i;
                classifyOne(w.gfn, *ks.vms[k], ft, ks.rows[k],
                            snaps_[j], &ks.pre[k]);
            }
            i = wend;
        }
        batch_pages_acc_.fetch_add(ks.kernelPages,
                                   std::memory_order_relaxed);
        batch_flush_acc_.fetch_add(ks.flushes,
                                   std::memory_order_relaxed);
        if (phase_timing_)
            kernel_ns_acc_.fetch_add(
                static_cast<std::uint64_t>(ks.kernelMs * 1e6),
                std::memory_order_relaxed);
        return;
    }
    for (std::size_t i = begin; i < end; ++i) {
        const WorkItem w = work_[i];
        if (w.vm != last_vm) {
            v = &chv.vm(w.vm);
            psv = page_state_[w.vm].data();
            last_vm = w.vm;
        }
        classifyOne(w.gfn, *v, ft, psv, snaps_[i]);
    }
}

void
KsmScanner::commitOne(VmId vm, Gfn gfn, const hv::Vm &v,
                      mem::FrameTable &ft, PageScanState *psv,
                      const PageSnap &snap, GenCheck gen_check)
{
    if (snap.kind == PageSnap::Kind::Huge) {
        // hugePages flags are frozen for the batch: always valid.
        ++stat_skipped_huge_;
        return;
    }

    const Hfn hfn = v.ept.entry(gfn).backing;
    const bool gen_moved = gen_check == GenCheck::Live
                               ? ft.writeGen(hfn) != snap.gen
                               : gen_check == GenCheck::ForceReplay;
    if (gen_moved) {
        // The frame moved since classify — an earlier commit promoted
        // it to stable (the only mid-batch generation source), or the
        // page was remapped. Nothing recorded in the snap is provable
        // any more: run the full serial visit.
        ++stat_commit_replays_;
        scanOne(vm, gfn, v, ft, psv);
        return;
    }

    // From here on the write generation seen by classify still holds,
    // so every snap value is exactly what the serial visit would have
    // computed, and the replay below performs the serial visit's
    // mutations verbatim (compare scanOne()).
    PageScanState &ps = psv[gfn];
    const std::uint64_t gen = snap.gen;
    const mem::PageData *data = nullptr;
    std::uint64_t digest = 0;
    bool skip_stable_probe = false;

    switch (snap.kind) {
    case PageSnap::Kind::Huge:
        return; // handled above
    case PageSnap::Kind::GenStable:
        ++stat_gen_skipped_;
        return;
    case PageSnap::Kind::GenCalm:
        ++stat_gen_skipped_;
        digest = genCalmDigest(ft, hfn, gen, ps, data,
                               snap.hasDigest ? &snap.digest : nullptr,
                               stat_digest_cache_hits_,
                               skip_stable_probe);
        break;
    case PageSnap::Kind::SlowStable:
        if (cfg_.incrementalScan) {
            ps.lastGen = gen;
            ps.lastStable = true;
            ps.digestValid = false;
            ps.lastStableEpoch = 0;
        }
        return;
    case PageSnap::Kind::NotCalm:
    case PageSnap::Kind::SlowCalm:
        // slowPathContent re-derives calm from the frozen ps; since
        // classify computed the same checksum against the same state,
        // the verdict always matches snap.kind.
        data = &ft.frame(hfn).data;
        if (!slowPathContent(ft, hfn, gen, ps, data,
                             snap.hasChecksum ? &snap.checksum : nullptr,
                             snap.hasDigest ? &snap.digest : nullptr,
                             stat_digest_cache_hits_, digest)) {
            ++stat_not_calm_;
            return;
        }
        break;
    }

    treeStage(vm, gfn, ft, ps, hfn, digest, data, skip_stable_probe,
              &snap);
}

std::uint64_t
KsmScanner::scanBatchParallel()
{
    // ---- Collect: replicate the serial cursor walk read-only,
    // building the batch's work list in serial visit order. Like the
    // serial loop, only resident pages consume scan budget, and a
    // pass boundary ends the batch (processed after the commits so
    // the KsmFullScan trace event sees this batch's merges).
    work_.clear();
    std::uint64_t visited = 0;
    bool boundary = false;
    const double t_collect = phase_timing_ ? phaseNowMs() : 0.0;
    while (visited < cfg_.pagesToScan) {
        if (!cursorNext()) {
            boundary = true;
            break;
        }
        const hv::Vm &v = hv_.vm(cur_vm_);
        // Size this VM's page-state row now, single-threaded, so the
        // classify workers only ever index into settled storage.
        pageStateRow(cur_vm_, v);
        const Gfn gfn_end = v.ept.size();
        while (cur_gfn_ < gfn_end && visited < cfg_.pagesToScan) {
            if (v.ept.entry(cur_gfn_).state == hv::PageState::Resident) {
                work_.push_back(WorkItem{cur_vm_, cur_gfn_});
                ++visited;
            }
            ++cur_gfn_;
        }
    }
    if (phase_timing_)
        phase_ms_.collect += phaseNowMs() - t_collect;

    classifyAndCommit();
    if (boundary)
        passBoundary();
    stat_pages_visited_ += visited;
    return visited;
}

void
KsmScanner::classifyAndCommit()
{
    mem::FrameTable &ft = hv_.frames();

    // ---- Classify: fan fixed-size shards out to the pool. Workers
    // only read (frozen frame table, EPTs, per-page state) and only
    // write their own snaps_ range; determinism needs no ordering
    // here because commit ignores completion order entirely.
    const double t_classify = phase_timing_ ? phaseNowMs() : 0.0;
    if (!work_.empty()) {
        snaps_.assign(work_.size(), PageSnap{});
        if (!pool_)
            pool_ = std::make_unique<ThreadPool>(
                std::max<unsigned>(cfg_.scanThreads,
                                   static_cast<unsigned>(shards_.size())));
        const std::size_t shard =
            std::max<std::size_t>(1, cfg_.scanShardPages);
        const mem::FrameTable &cft = ft;
        std::uint64_t shards = 0;
        for (std::size_t begin = 0; begin < work_.size();
             begin += shard) {
            const std::size_t end =
                std::min(work_.size(), begin + shard);
            ++shards;
            pool_->submit(
                [this, &cft, begin, end] { classifyRange(cft, begin, end); });
        }
        pool_->wait();
        stat_scan_shards_ += shards;
        // Fold the workers' batch-kernel accounting. The folded values
        // are sums over fixed-shape windows (scanShardPages spans ÷
        // batchPages), so they are identical at any thread count.
        stat_batch_kernel_pages_ +=
            batch_pages_acc_.exchange(0, std::memory_order_relaxed);
        stat_batch_flushes_ +=
            batch_flush_acc_.exchange(0, std::memory_order_relaxed);
        if (phase_timing_)
            phase_ms_.kernel +=
                static_cast<double>(kernel_ns_acc_.exchange(
                    0, std::memory_order_relaxed)) *
                1e-6;
    }
    if (phase_timing_)
        phase_ms_.classify += phaseNowMs() - t_classify;

    // ---- Commit. With commit sharding active, the candidate work
    // fans out across the digest shards and the rest reduces serially
    // in canonical order — byte-identical to the loop below.
    if (shards_.size() > 1) {
        commitSharded(ft);
        return;
    }

    // ---- Commit: replay verdicts serially in collect order. All
    // mutations happen here, exactly as the serial scanner interleaves
    // them, so merges, counters and traces are byte-identical.
    const double t_serial = phase_timing_ ? phaseNowMs() : 0.0;
    VmId last_vm = invalidVm;
    const hv::Vm *v = nullptr;
    PageScanState *psv = nullptr;
    pml_in_commit_ = true;
    for (std::size_t i = 0; i < work_.size(); ++i) {
        const WorkItem w = work_[i];
        if (w.vm != last_vm) {
            v = &hv_.vm(w.vm);
            psv = page_state_[w.vm].data();
            last_vm = w.vm;
        }
        // By value: a commit can splice a cross-pass revisit into the
        // tail of work_/snaps_, reallocating both vectors.
        const PageSnap snap = snaps_[i];
        if (snap.kind == PageSnap::Kind::GenCalm ||
            snap.kind == PageSnap::Kind::SlowCalm)
            ++stat_precheck_candidates_;
        const std::uint64_t nc_before = stat_not_calm_;
        pml_commit_idx_ = i;
        commitOne(w.vm, w.gfn, *v, ft, psv, snap);
        // A not-calm page is still owed the calm protocol's second
        // visit; log-driven passes only revisit what they queue.
        if (cfg_.usePml && stat_not_calm_ != nc_before)
            pmlRequeue(w.vm, w.gfn);
    }
    pml_in_commit_ = false;
    if (phase_timing_)
        phase_ms_.serial += phaseNowMs() - t_serial;
}

void
KsmScanner::commitSharded(mem::FrameTable &ft)
{
    const unsigned S = static_cast<unsigned>(shards_.size());
    const double t_partition = phase_timing_ ? phaseNowMs() : 0.0;
    if (shard_work_.size() != S)
        shard_work_.resize(S);
    for (ShardWork &sw : shard_work_) {
        sw.items.clear();
        sw.ops.clear();
        sw.counters = ShardCounters{};
    }
    residual_.clear();

    // ---- Partition (serial): merge candidates go to their digest's
    // shard — equal content means equal digest, so everything a
    // candidate can interact with (tree chains, unstable entries,
    // merge targets, promotion sources) lives in the same shard.
    // Everything else joins the residual stream for the reduce.
    Hfn max_hfn = 0;
    bool have_candidates = false;
    for (std::size_t i = 0; i < work_.size(); ++i) {
        const PageSnap &snap = snaps_[i];
        if (snap.kind == PageSnap::Kind::GenCalm ||
            snap.kind == PageSnap::Kind::SlowCalm) {
            ++stat_precheck_candidates_;
            const WorkItem w = work_[i];
            // SlowCalm snaps always carry the digest; a GenCalm snap
            // without one proves the per-page cache holds it.
            const std::uint64_t digest =
                snap.hasDigest ? snap.digest
                               : page_state_[w.vm][w.gfn].lastDigest;
            shard_work_[shardFor(digest)].items.push_back(
                static_cast<std::uint32_t>(i));
            max_hfn = std::max(max_hfn,
                               hv_.vm(w.vm).ept.entry(w.gfn).backing);
            have_candidates = true;
        } else {
            residual_.push_back(static_cast<std::uint32_t>(i));
        }
    }

    std::size_t mx = 0;
    std::size_t mn = work_.size();
    for (const ShardWork &sw : shard_work_) {
        mx = std::max(mx, sw.items.size());
        mn = std::min(mn, sw.items.size());
    }
    const std::uint64_t imb = static_cast<std::uint64_t>(mx - mn);
    if (imb > shard_imbalance_max_) {
        shard_imbalance_max_ = imb;
        stat_shard_imbalance_ = imb;
    }

    // Pre-size the frame memo serially: shard jobs memoise their own
    // candidates' frames and must never grow the vector concurrently.
    if (have_candidates)
        frameMemo(max_hfn);
    const double t_shard = phase_timing_ ? phaseNowMs() : 0.0;
    if (phase_timing_)
        phase_ms_.partition += t_shard - t_partition;

    // ---- Shard jobs: each replays its candidates in ascending work
    // index against its own index slices, epoch stripes and
    // generation lane, logging cross-shard effects.
    for (unsigned s = 0; s < S; ++s) {
        if (shard_work_[s].items.empty())
            continue;
        pool_->submit([this, &ft, s] { shardCommitItems(ft, s); });
    }
    if (have_candidates)
        pool_->wait();
    const double t_reduce = phase_timing_ ? phaseNowMs() : 0.0;
    if (phase_timing_)
        phase_ms_.shard += t_reduce - t_shard;

    // ---- Reduce (serial): interleave the shard op logs with the
    // residual stream by work index and apply in exactly the order
    // the serial commit would have produced these effects.
    merged_ops_.clear();
    for (const ShardWork &sw : shard_work_)
        merged_ops_.insert(merged_ops_.end(), sw.ops.begin(),
                           sw.ops.end());
    std::sort(merged_ops_.begin(), merged_ops_.end(),
              [](const ShardOp &a, const ShardOp &b) {
                  return a.idx < b.idx;
              });
    bumped_.clear();
    VmId last_vm = invalidVm;
    const hv::Vm *v = nullptr;
    PageScanState *psv = nullptr;
    std::size_t oi = 0;
    std::size_t ri = 0;
    while (oi < merged_ops_.size() || ri < residual_.size()) {
        const bool take_op =
            ri >= residual_.size() ||
            (oi < merged_ops_.size() &&
             merged_ops_[oi].idx < residual_[ri]);
        if (take_op) {
            applyShardOp(merged_ops_[oi++], ft);
            continue;
        }
        const std::uint32_t i = residual_[ri++];
        const WorkItem w = work_[i];
        if (w.vm != last_vm) {
            v = &hv_.vm(w.vm);
            psv = page_state_[w.vm].data();
            last_vm = w.vm;
        }
        const PageSnap &snap = snaps_[i];
        // The serial commit checks the live write generation at this
        // item's turn. Here every shard promotion has already landed,
        // so decide from the applied-op record instead: only a
        // promotion with a smaller work index (already applied, hence
        // in bumped_) would have been visible serially.
        GenCheck gc = GenCheck::ForceCommit;
        if (snap.kind != PageSnap::Kind::Huge &&
            bumped_.count(v->ept.entry(w.gfn).backing) != 0)
            gc = GenCheck::ForceReplay;
        commitOne(w.vm, w.gfn, *v, ft, psv, snap, gc);
    }

    // ---- Fold the shard counters into the live stats, in shard
    // order (the totals are sums, so they match the serial commit).
    for (const ShardWork &sw : shard_work_) {
        stat_stale_stable_ += sw.counters.staleStable;
        stat_stale_unstable_ += sw.counters.staleUnstable;
        stat_gen_skipped_ += sw.counters.genSkipped;
        stat_digest_cache_hits_ += sw.counters.digestCacheHits;
        stat_commit_replays_ += sw.counters.commitReplays;
    }
    if (phase_timing_)
        phase_ms_.reduce += phaseNowMs() - t_reduce;
}

void
KsmScanner::shardCommitItems(mem::FrameTable &ft, unsigned s)
{
    ShardState &sh = shards_[s];
    ShardWork &sw = shard_work_[s];
    const unsigned lane = s + 1; // write-generation lane (0 = serial)
    VmId last_vm = invalidVm;
    const hv::Vm *v = nullptr;
    PageScanState *psv = nullptr;
    for (const std::uint32_t idx : sw.items) {
        const WorkItem w = work_[idx];
        if (w.vm != last_vm) {
            v = &hv_.vm(w.vm);
            psv = page_state_[w.vm].data();
            last_vm = w.vm;
        }
        const PageSnap &snap = snaps_[idx];
        const Hfn hfn = v->ept.entry(w.gfn).backing;
        PageScanState &ps = psv[w.gfn];
        if (ft.writeGen(hfn) != snap.gen) {
            // The only mid-batch generation source a shard can see is
            // one of its own earlier promotions (equal content means
            // equal digest means same shard), which left the frame
            // stable — so the serial replay's scanOne() reduces to
            // its stable fast path, reproduced inline.
            ++sw.counters.commitReplays;
            jtps_assert(ft.frame(hfn).ksmStable);
            if (cfg_.incrementalScan) {
                ps.lastGen = ft.writeGen(hfn);
                ps.lastStable = true;
                ps.digestValid = false;
                ps.lastStableEpoch = 0;
            }
            continue;
        }

        const std::uint64_t gen = snap.gen;
        const mem::PageData *data = nullptr;
        std::uint64_t digest = 0;
        bool skip_stable_probe = false;
        if (snap.kind == PageSnap::Kind::GenCalm) {
            ++sw.counters.genSkipped;
            digest = genCalmDigest(ft, hfn, gen, ps, data,
                                   snap.hasDigest ? &snap.digest : nullptr,
                                   sw.counters.digestCacheHits,
                                   skip_stable_probe);
        } else { // SlowCalm — classify proved calm on the frozen ps.
            data = &ft.frame(hfn).data;
            const bool calm = slowPathContent(
                ft, hfn, gen, ps, data,
                snap.hasChecksum ? &snap.checksum : nullptr,
                snap.hasDigest ? &snap.digest : nullptr,
                sw.counters.digestCacheHits, digest);
            jtps_assert(calm);
        }

        shardTreeStage(sh, sw, lane, idx, w.vm, w.gfn, ft, ps, hfn,
                       digest, data, skip_stable_probe, &snaps_[idx]);
    }
}

void
KsmScanner::shardTreeStage(ShardState &sh, ShardWork &sw, unsigned lane,
                           std::uint32_t idx, VmId vm, Gfn gfn,
                           mem::FrameTable &ft, PageScanState &ps,
                           Hfn hfn, std::uint64_t digest,
                           const mem::PageData *data,
                           bool skip_stable_probe, const PageSnap *snap)
{
    // Mirror of treeStage() against the shard's own slices, with every
    // cross-shard effect executed through the frame table's deferred
    // protocol and logged for the reduce. usePml never reaches here
    // (sharding collapses to 1), so its branches are omitted.
    if (!skip_stable_probe) {
        if (snap && snap->probeCleanMiss &&
            snap->probeEpoch == ft.ksmStableEpoch(digest)) {
            ps.lastStableEpoch = ft.ksmStableEpoch(digest);
        } else {
            if (!data)
                data = &ft.frame(hfn).data;
            const Hfn stable =
                stableLookup(sh, *data, digest, sw.counters.staleStable);
            if (stable != invalidFrame) {
                ShardOp op{};
                op.idx = idx;
                op.vm = vm;
                op.gfn = gfn;
                op.stable = stable;
                if (hv_.ksmMergeIntoShard(stable, vm, gfn,
                                          &op.freedSource,
                                          &op.source)) {
                    op.merged = true;
                    sw.ops.push_back(op);
                }
                return;
            }
            ps.lastStableEpoch = ft.ksmStableEpoch(digest);
        }
    }

    // Unstable slice: the same one-walk lookup/insert as treeStage().
    const std::size_t mask = sh.unstable.size() - 1;
    std::size_t slot = npos;
    std::size_t insert_at = npos;
    for (std::size_t i = unstableSlotHash(digest) & mask;;
         i = (i + 1) & mask) {
        const UnstableSlot &u = sh.unstable[i];
        if (u.epoch == 0) {
            if (insert_at == npos)
                insert_at = i;
            break;
        }
        if (u.epoch == pass_epoch_) {
            if (u.digest == digest) {
                slot = i;
                break;
            }
        } else if (insert_at == npos) {
            insert_at = i;
        }
    }

    if (slot != npos) {
        UnstableSlot &u = sh.unstable[slot];
        if (u.vm == vm && u.gfn == gfn)
            return; // same page revisited
        if (!data)
            data = &ft.frame(hfn).data;
        const mem::PageData *other = hv_.peek(u.vm, u.gfn);
        const bool entry_stale = other == nullptr || !(*other == *data);
        if (entry_stale) {
            u.vm = vm;
            u.gfn = gfn;
            ++sw.counters.staleUnstable;
            return;
        }
        ShardOp op{};
        op.idx = idx;
        op.vm = vm;
        op.gfn = gfn;
        op.promotion = true;
        const Hfn fresh = hv_.ksmMakeStableShard(u.vm, u.gfn, digest,
                                                 lane, &op.transitioned,
                                                 &op.refcountAtSet);
        jtps_assert(fresh != invalidFrame);
        op.stable = fresh;
        sh.stableTree[digest].push_back(fresh);
        u.epoch = tombstoneEpoch;
        --sh.live;
        if (hv_.ksmMergeIntoShard(fresh, vm, gfn, &op.freedSource,
                                  &op.source))
            op.merged = true;
        if (op.transitioned || op.merged)
            sw.ops.push_back(op);
        return;
    }

    // Miss: insert, with the slice-local growth policy.
    if (sh.unstable[insert_at].epoch == 0) {
        if ((sh.occupied + 1) * 10 >= sh.unstable.size() * 7) {
            std::size_t cap = sh.unstable.size();
            while (cap < 4 * (sh.live + 1))
                cap *= 2;
            unstableRehash(sh, cap);
            const std::size_t m2 = sh.unstable.size() - 1;
            insert_at = unstableSlotHash(digest) & m2;
            while (sh.unstable[insert_at].epoch != 0)
                insert_at = (insert_at + 1) & m2;
        }
        ++sh.occupied;
    }
    sh.unstable[insert_at] = UnstableSlot{digest, pass_epoch_, vm, gfn};
    ++sh.live;
}

void
KsmScanner::applyShardOp(const ShardOp &op, mem::FrameTable &ft)
{
    // Effects land in the serial commit's exact order for this item:
    // the promotion's bookkeeping first (setKsmStable's counters),
    // then the merge's unmap/map/touch/stat/trace sequence.
    if (op.promotion && op.transitioned) {
        ft.commitStablePromote(op.stable, op.refcountAtSet);
        bumped_.insert(op.stable);
    }
    if (!op.merged)
        return;
    if (op.freedSource)
        ft.finishDeferredFree(op.source);
    ft.commitSharingAdd(op.stable);
    ft.touch(op.stable);
    ++stat_hv_ksm_merges_;
    ++merges_this_pass_;
    ++merges_total_;
    ++(op.promotion ? stat_unstable_promotions_ : stat_stable_merges_);
    if (TraceBuffer *t = hv_.trace())
        t->record(op.promotion ? TraceEventType::KsmUnstablePromotion
                               : TraceEventType::KsmStableMerge,
                  op.vm, op.gfn, op.stable);
}

KsmScanner::PmlVmQueue &
KsmScanner::pmlQueue(VmId vm)
{
    if (vm >= pml_.size())
        pml_.resize(
            std::max<std::size_t>(hv_.vmCount(), vm + std::size_t{1}));
    return pml_[vm];
}

void
KsmScanner::pmlRequeue(VmId vm, Gfn gfn)
{
    pmlQueue(vm).next.push_back(gfn);
}

void
KsmScanner::pmlScheduleThisPass(VmId vm, Gfn gfn)
{
    // Called from the unstable tree stage for a page strictly ahead of
    // the visit being processed: its pairing with the candidate must be
    // established at the page's own canonical position, like the walk.
    PmlVmQueue &q = pmlQueue(vm);
    if (q.walkThisPass)
        return; // the fallback walk reaches it at its own position
    const bool ahead_of_cursor =
        vm > cur_vm_ || (vm == cur_vm_ && gfn >= cur_gfn_);
    if (pml_in_commit_ && !ahead_of_cursor) {
        // A parallel batch's collect already passed this position:
        // splice the visit into the unreplayed tail of the commit
        // stream at its canonical slot. gen 0 never matches a live
        // write generation, so the commit runs the full serial visit.
        const WorkItem item{vm, gfn};
        const auto cmp = [](const WorkItem &a, const WorkItem &b) {
            return a.vm < b.vm || (a.vm == b.vm && a.gfn < b.gfn);
        };
        const auto it =
            std::lower_bound(work_.begin() + static_cast<std::ptrdiff_t>(
                                                 pml_commit_idx_ + 1),
                             work_.end(), item, cmp);
        if (it != work_.end() && it->vm == vm && it->gfn == gfn)
            return; // the batch already visits it
        const std::size_t pos =
            static_cast<std::size_t>(it - work_.begin());
        PageSnap snap{};
        snap.kind = PageSnap::Kind::NotCalm;
        snap.gen = 0;
        work_.insert(it, item);
        snaps_.insert(snaps_.begin() + static_cast<std::ptrdiff_t>(pos),
                      snap);
        // The serial loop counts this visit when it reaches the page;
        // here the batch's budget accounting is already closed.
        ++stat_pages_visited_;
        ++q.visitedThisPass;
        return;
    }
    // Still ahead of the cursor: insert into the VM's injected lane in
    // cursor order; the pass's remaining batches consume it normally
    // (outside the pagesToScan budget, like the splice above).
    const auto lo =
        q.injected.begin() + static_cast<std::ptrdiff_t>(q.injIdx);
    const auto it = std::lower_bound(lo, q.injected.end(), gfn);
    if (it != q.injected.end() && *it == gfn)
        return;
    q.injected.insert(it, gfn);
}

void
KsmScanner::pmlDrain()
{
    // Guest mutators only run between scanner batches, so every ring
    // entry (and every entry a full ring dropped) was appended while
    // the cursor sat exactly where it is now. That makes the
    // ahead/behind split below an exact reproduction of the walk's
    // visit schedule: a write the walk's cursor has yet to reach is
    // seen this pass, one it already passed is seen next pass.
    const std::size_t nvms = hv_.vmCount();
    // Size the queue table up front: mid-scan scheduling must never
    // reallocate it under a live queue reference.
    if (pml_.size() < nvms)
        pml_.resize(nvms);
    for (VmId vm = 0; vm < nvms; ++vm) {
        const std::vector<hv::PmlEntry> &ring = hv_.pmlEntries(vm);
        const bool overflow = hv_.pmlOverflowed(vm);
        if (ring.empty() && !overflow)
            continue;
        if (!hv_.vm(vm).mergeable) {
            // Unscanned memory: keep the ring bounded, queue nothing.
            hv_.pmlResetRing(vm);
            continue;
        }
        PmlVmQueue &q = pmlQueue(vm);
        if (overflow) {
            // Dropped entries make the log incomplete. Lost writes
            // ahead of the cursor are what this pass's remaining walk
            // over the VM would see; lost writes behind it belong to
            // the next pass. Degrade exactly that far.
            q.walkNextPass = true;
            if (vm >= cur_vm_)
                q.walkThisPass = true;
        }
        if (q.walkThisPass) {
            // The walk covers everything at or ahead of the cursor;
            // only behind-entries still carry next-pass information.
            for (const hv::PmlEntry &e : ring) {
                if (vm < cur_vm_ ||
                    (vm == cur_vm_ && e.gfn < cur_gfn_))
                    q.next.push_back(e.gfn);
            }
            hv_.pmlResetRing(vm);
            continue;
        }
        pml_pending_.clear();
        for (const hv::PmlEntry &e : ring) {
            const bool behind =
                vm < cur_vm_ || (vm == cur_vm_ && e.gfn < cur_gfn_);
            if (behind)
                q.next.push_back(e.gfn);
            else
                pml_pending_.push_back(e.gfn);
        }
        hv_.pmlResetRing(vm);
        if (!pml_pending_.empty()) {
            // Merge the fresh ahead-entries into the unconsumed tail
            // of the current queue, keeping it sorted and duplicate
            // free (every remaining entry is >= cur_gfn_, as are all
            // ahead-entries, so one sort of the whole tail is safe).
            q.current.erase(q.current.begin(),
                            q.current.begin() +
                                static_cast<std::ptrdiff_t>(q.curIdx));
            q.curIdx = 0;
            q.current.insert(q.current.end(), pml_pending_.begin(),
                             pml_pending_.end());
            std::sort(q.current.begin(), q.current.end());
            q.current.erase(
                std::unique(q.current.begin(), q.current.end()),
                q.current.end());
        }
    }
}

std::uint64_t
KsmScanner::scanBatchSerialPml()
{
    pmlDrain();
    mem::FrameTable &ft = hv_.frames();
    std::uint64_t visited = 0;
    while (visited < cfg_.pagesToScan) {
        if (cur_vm_ >= hv_.vmCount()) {
            passBoundary();
            break;
        }
        const hv::Vm &v = hv_.vm(cur_vm_);
        if (!v.mergeable) {
            ++cur_vm_;
            cur_gfn_ = 0;
            continue;
        }
        PmlVmQueue &q = pmlQueue(cur_vm_);
        PageScanState *psv = pageStateRow(cur_vm_, v);
        if (q.walkThisPass) {
            // Overflow fallback: the plain generation walk of this VM,
            // plus the owed-revisit bookkeeping a queue-driven next
            // pass will need.
            const Gfn gfn_end = v.ept.size();
            while (cur_gfn_ < gfn_end && visited < cfg_.pagesToScan) {
                const std::uint64_t nc_before = stat_not_calm_;
                if (scanOne(cur_vm_, cur_gfn_, v, ft, psv)) {
                    ++visited;
                    ++q.visitedThisPass;
                }
                if (stat_not_calm_ != nc_before)
                    pmlRequeue(cur_vm_, cur_gfn_);
                ++cur_gfn_;
            }
            if (cur_gfn_ >= gfn_end) {
                ++cur_vm_;
                cur_gfn_ = 0;
            }
            continue;
        }
        while (visited < cfg_.pagesToScan) {
            // Merge-consume the dirty queue and the injected lane in
            // cursor order. Injected visits are budget-exempt (their
            // parallel twin only discovers them after the batch's size
            // is fixed) but count as visits everywhere else.
            const bool has_cur = q.curIdx < q.current.size();
            const bool has_inj = q.injIdx < q.injected.size();
            if (!has_cur && !has_inj)
                break;
            Gfn g;
            bool from_injected;
            if (!has_inj ||
                (has_cur && q.current[q.curIdx] <= q.injected[q.injIdx])) {
                g = q.current[q.curIdx++];
                from_injected = false;
            } else {
                g = q.injected[q.injIdx++];
                from_injected = true;
            }
            if (g < cur_gfn_ || g >= v.ept.size())
                continue; // already visited this pass, or discarded
            const std::uint64_t nc_before = stat_not_calm_;
            if (scanOne(cur_vm_, g, v, ft, psv)) {
                ++q.visitedThisPass;
                if (from_injected)
                    ++stat_pages_visited_;
                else
                    ++visited;
            }
            if (stat_not_calm_ != nc_before)
                pmlRequeue(cur_vm_, g);
            cur_gfn_ = g + 1;
        }
        if (q.curIdx >= q.current.size() &&
            q.injIdx >= q.injected.size()) {
            ++cur_vm_;
            cur_gfn_ = 0;
        }
    }
    stat_pages_visited_ += visited;
    return visited;
}

std::uint64_t
KsmScanner::scanBatchParallelPml()
{
    pmlDrain();

    // Collect replicates scanBatchSerialPml()'s visit schedule
    // read-only; classify/commit then run exactly as in the walk's
    // parallel mode, so serial and parallel log-driven batches stay
    // byte-identical (the requeue happens per page at commit).
    work_.clear();
    std::uint64_t visited = 0;
    bool boundary = false;
    while (visited < cfg_.pagesToScan) {
        if (cur_vm_ >= hv_.vmCount()) {
            boundary = true;
            break;
        }
        const hv::Vm &v = hv_.vm(cur_vm_);
        if (!v.mergeable) {
            ++cur_vm_;
            cur_gfn_ = 0;
            continue;
        }
        PmlVmQueue &q = pmlQueue(cur_vm_);
        pageStateRow(cur_vm_, v);
        if (q.walkThisPass) {
            const Gfn gfn_end = v.ept.size();
            while (cur_gfn_ < gfn_end && visited < cfg_.pagesToScan) {
                if (v.ept.entry(cur_gfn_).state ==
                    hv::PageState::Resident) {
                    work_.push_back(WorkItem{cur_vm_, cur_gfn_});
                    ++visited;
                    ++q.visitedThisPass;
                }
                ++cur_gfn_;
            }
            if (cur_gfn_ >= gfn_end) {
                ++cur_vm_;
                cur_gfn_ = 0;
            }
            continue;
        }
        while (visited < cfg_.pagesToScan) {
            // Merge-consume the dirty queue and the injected lane in
            // cursor order, mirroring scanBatchSerialPml(). Injected
            // visits are budget-exempt so both modes cut the batch at
            // the same page.
            const bool has_cur = q.curIdx < q.current.size();
            const bool has_inj = q.injIdx < q.injected.size();
            if (!has_cur && !has_inj)
                break;
            Gfn g;
            bool from_injected;
            if (!has_inj ||
                (has_cur && q.current[q.curIdx] <= q.injected[q.injIdx])) {
                g = q.current[q.curIdx++];
                from_injected = false;
            } else {
                g = q.injected[q.injIdx++];
                from_injected = true;
            }
            if (g < cur_gfn_ || g >= v.ept.size())
                continue;
            if (v.ept.entry(g).state == hv::PageState::Resident) {
                work_.push_back(WorkItem{cur_vm_, g});
                ++q.visitedThisPass;
                if (from_injected)
                    ++stat_pages_visited_;
                else
                    ++visited;
            }
            cur_gfn_ = g + 1;
        }
        if (q.curIdx >= q.current.size() &&
            q.injIdx >= q.injected.size()) {
            ++cur_vm_;
            cur_gfn_ = 0;
        }
    }

    classifyAndCommit();
    if (boundary)
        passBoundary();
    stat_pages_visited_ += visited;
    return visited;
}

void
KsmScanner::attach(sim::EventQueue &queue)
{
    attached_ = true;
    queue.schedulePeriodic(cfg_.sleepMillisecs, [this]() {
        if (!attached_)
            return false;
        scanBatch();
        return true;
    });
}

std::uint64_t
KsmScanner::runToQuiescence(std::uint64_t max_full_scans)
{
    const std::uint64_t start_merges = merges_total_;
    std::uint64_t quiet_passes = 0;
    std::uint64_t passes = 0;

    while (passes < max_full_scans && quiet_passes < 2) {
        const std::uint64_t pass_start = full_scans_;
        merges_this_pass_ = 0;
        while (full_scans_ == pass_start)
            scanBatch();
        ++passes;
        if (merges_this_pass_ == 0)
            ++quiet_passes;
        else
            quiet_passes = 0;
    }
    return merges_total_ - start_merges;
}

std::uint64_t
KsmScanner::pagesShared() const
{
    return hv_.frames().ksmStableFrames();
}

std::uint64_t
KsmScanner::pagesSharing() const
{
    return hv_.frames().ksmSharingMappings();
}

Bytes
KsmScanner::savedBytes() const
{
    return pagesToBytes(pagesSharing());
}

double
KsmScanner::cpuUsage() const
{
    const double busy_us = cfg_.pagesToScan * cfg_.scanCostUs;
    const double period_us =
        static_cast<double>(cfg_.sleepMillisecs) * 1000.0;
    return busy_us / (busy_us + period_us);
}

} // namespace jtps::ksm
