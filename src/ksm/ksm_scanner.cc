#include "ksm/ksm_scanner.hh"

#include "base/logging.hh"
#include "base/units.hh"

namespace jtps::ksm
{

KsmScanner::KsmScanner(hv::Hypervisor &hv, const KsmConfig &cfg,
                       StatSet &stats)
    : hv_(hv), cfg_(cfg), stats_(stats),
      stat_stale_stable_(stats.counter("ksm.stale_stable_nodes")),
      stat_stale_unstable_(stats.counter("ksm.stale_unstable_nodes")),
      stat_skipped_huge_(stats.counter("ksm.skipped_huge")),
      stat_not_calm_(stats.counter("ksm.not_calm")),
      stat_stable_merges_(stats.counter("ksm.stable_merges")),
      stat_unstable_promotions_(stats.counter("ksm.unstable_promotions")),
      stat_pages_visited_(stats.counter("ksm.pages_visited"))
{
}

void
KsmScanner::setPagesToScan(std::uint32_t pages)
{
    cfg_.pagesToScan = pages;
    stats_.set("ksm.pages_to_scan", pages);
}

void
KsmScanner::setSleepMillisecs(Tick ms)
{
    jtps_assert(ms > 0);
    cfg_.sleepMillisecs = ms;
}

Hfn
KsmScanner::stableLookup(const mem::PageData &data, std::uint64_t digest)
{
    auto bucket = stable_tree_.find(digest);
    if (bucket == stable_tree_.end())
        return invalidFrame;

    std::vector<Hfn> &chain = bucket->second;
    Hfn found = invalidFrame;
    for (std::size_t i = 0; i < chain.size();) {
        const Hfn hfn = chain[i];
        // Lazy pruning: the frame may have been freed (all sharers
        // COW-diverged or the host evicted it) or its content replaced.
        // The full compare also guards merging across a digest
        // collision — a colliding valid frame merely loses its node.
        if (!hv_.frames().isAllocated(hfn) ||
            !hv_.frames().frame(hfn).ksmStable ||
            !(hv_.frames().frame(hfn).data == data)) {
            chain.erase(chain.begin() + i);
            ++stat_stale_stable_;
            continue;
        }
        // Chain discipline: a full stable frame stops accepting
        // sharers; the next duplicate in the chain (or a fresh one)
        // takes over.
        if (hv_.frames().frame(hfn).refcount >= cfg_.maxPageSharing) {
            ++i;
            continue;
        }
        found = hfn;
        break;
    }
    if (chain.empty())
        stable_tree_.erase(bucket);
    return found;
}

bool
KsmScanner::scanOne(VmId vm, Gfn gfn)
{
    const mem::PageData *data = hv_.peek(vm, gfn);
    if (data == nullptr)
        return false; // not resident: nothing to merge

    if (hv_.isHugePage(vm, gfn)) {
        // THP-backed memory is not madvise-MERGEABLE: skip.
        ++stat_skipped_huge_;
        return true;
    }

    Hfn hfn = hv_.translate(vm, gfn);
    if (hv_.frames().frame(hfn).ksmStable)
        return true; // already a shared KSM page

    // Calm check: skip pages whose content changed since the last visit.
    hv::EptEntry &e = hv_.vm(vm).ept.entry(gfn);
    const std::uint32_t sum = data->checksum();
    if (!e.ksmChecksumValid || e.ksmChecksum != sum) {
        e.ksmChecksum = sum;
        e.ksmChecksumValid = true;
        ++stat_not_calm_;
        return true;
    }

    // One digest per visit keys both indexes.
    const std::uint64_t digest = data->digest();

    // Stable tree first.
    Hfn stable = stableLookup(*data, digest);
    if (stable != invalidFrame) {
        if (hv_.ksmMergeInto(stable, vm, gfn)) {
            ++merges_this_pass_;
            ++merges_total_;
            ++stat_stable_merges_;
            if (TraceBuffer *t = hv_.trace())
                t->record(TraceEventType::KsmStableMerge, vm, gfn,
                          stable);
        }
        return true;
    }

    // Unstable tree: find another calm page with the same content seen
    // earlier in this pass.
    auto it = unstable_tree_.find(digest);
    if (it != unstable_tree_.end()) {
        auto [ovm, ogfn] = it->second;
        if (ovm == vm && ogfn == gfn) {
            return true; // same page revisited
        }
        const mem::PageData *other = hv_.peek(ovm, ogfn);
        if (other == nullptr || !(*other == *data)) {
            // The tree node went stale (page rewritten or swapped out)
            // — or, vanishingly rarely, its digest collides with ours;
            // either way, replace it with the current candidate.
            it->second = {vm, gfn};
            ++stat_stale_unstable_;
            return true;
        }
        Hfn fresh = hv_.ksmMakeStable(ovm, ogfn);
        jtps_assert(fresh != invalidFrame);
        stable_tree_[digest].push_back(fresh);
        unstable_tree_.erase(it);
        if (hv_.ksmMergeInto(fresh, vm, gfn)) {
            ++merges_this_pass_;
            ++merges_total_;
            ++stat_unstable_promotions_;
            if (TraceBuffer *t = hv_.trace())
                t->record(TraceEventType::KsmUnstablePromotion, vm, gfn,
                          fresh);
        }
        return true;
    }

    unstable_tree_.emplace(digest, std::make_pair(vm, gfn));
    return true;
}

bool
KsmScanner::advanceCursor()
{
    const std::size_t nvms = hv_.vmCount();
    if (nvms == 0)
        return false;

    for (;;) {
        if (cur_vm_ >= nvms) {
            // End of a full pass over all mergeable memory.
            cur_vm_ = 0;
            cur_gfn_ = 0;
            ++full_scans_;
            stats_.set("ksm.full_scans", full_scans_);
            unstable_tree_.clear();
            if (TraceBuffer *t = hv_.trace())
                t->record(TraceEventType::KsmFullScan, invalidVm,
                          full_scans_, merges_total_);
            return false;
        }
        const hv::Vm &v = hv_.vm(cur_vm_);
        if (!v.mergeable || cur_gfn_ >= v.ept.size()) {
            ++cur_vm_;
            cur_gfn_ = 0;
            continue;
        }
        return true;
    }
}

std::uint64_t
KsmScanner::scanBatch()
{
    if (hv_.vmCount() == 0)
        return 0;

    std::uint64_t visited = 0;
    while (visited < cfg_.pagesToScan) {
        if (!advanceCursor()) {
            // Pass boundary reached; ksmd would continue into the next
            // pass within the same wake, but stopping here keeps wake
            // cost bounded and matches the batch accounting.
            break;
        }
        // Like ksmd, only *present* pages consume the scan budget:
        // the rmap walk skips holes in the address space nearly for
        // free. The pass boundary still bounds each batch.
        if (scanOne(cur_vm_, cur_gfn_))
            ++visited;
        ++cur_gfn_;
    }
    stat_pages_visited_ += visited;
    return visited;
}

void
KsmScanner::attach(sim::EventQueue &queue)
{
    attached_ = true;
    queue.schedulePeriodic(cfg_.sleepMillisecs, [this]() {
        if (!attached_)
            return false;
        scanBatch();
        return true;
    });
}

std::uint64_t
KsmScanner::runToQuiescence(std::uint64_t max_full_scans)
{
    const std::uint64_t start_merges = merges_total_;
    std::uint64_t quiet_passes = 0;
    std::uint64_t passes = 0;

    while (passes < max_full_scans && quiet_passes < 2) {
        const std::uint64_t pass_start = full_scans_;
        merges_this_pass_ = 0;
        while (full_scans_ == pass_start)
            scanBatch();
        ++passes;
        if (merges_this_pass_ == 0)
            ++quiet_passes;
        else
            quiet_passes = 0;
    }
    return merges_total_ - start_merges;
}

std::uint64_t
KsmScanner::pagesShared() const
{
    return hv_.frames().ksmStableFrames();
}

std::uint64_t
KsmScanner::pagesSharing() const
{
    return hv_.frames().ksmSharingMappings();
}

Bytes
KsmScanner::savedBytes() const
{
    return pagesToBytes(pagesSharing());
}

double
KsmScanner::cpuUsage() const
{
    const double busy_us = cfg_.pagesToScan * cfg_.scanCostUs;
    const double period_us =
        static_cast<double>(cfg_.sleepMillisecs) * 1000.0;
    return busy_us / (busy_us + period_us);
}

} // namespace jtps::ksm
