/**
 * @file
 * Kernel Samepage Merging (KSM) — the TPS implementation used by KVM in
 * the paper (Arcangeli, Eidus & Wright, "Increasing memory density by
 * using KSM", OLS 2009).
 *
 * The model follows the real algorithm:
 *
 *  - The scanner wakes every `sleepMillisecs`, scans `pagesToScan`
 *    candidate pages (round-robin across all mergeable guest memory),
 *    then sleeps. Both knobs are the tunables the paper adjusts (10,000
 *    pages during warm-up at ~25% CPU, then 1,000 pages at ~2%).
 *  - A page whose 32-bit checksum changed since the last visit is "not
 *    calm" and is skipped — this is what keeps GC-churned Java heap
 *    pages from being merged, and why only *stable* zero pages share.
 *  - Calm pages are looked up in the *stable tree* (already-shared KSM
 *    pages indexed by content). A hit merges the candidate into the
 *    stable frame copy-on-write.
 *  - Otherwise the *unstable tree* (rebuilt every full scan) is
 *    searched; a content match promotes the pair to a new stable node.
 *
 * Stale stable-tree nodes (frame freed or COW-diverged) are pruned
 * lazily on lookup, as in the real implementation.
 *
 * Unlike ksmd's red-black trees, both structures here are hash indexes
 * keyed by the 64-bit content digest (ESX finds sharing candidates the
 * same way — Waldspurger, "Memory Resource Management in VMware ESX
 * Server", OSDI 2002): one probe per visited page instead of O(log n)
 * 64-byte lexicographic compares. The full 8-word compare still runs
 * on every bucket hit, so a digest collision can only cost a missed
 * merge, never a wrong one.
 *
 * Incremental scanning (docs/PERF.md): every host frame carries a
 * write generation (mem::FrameTable::writeGen()) that changes on every
 * possible content change and on every stable-flag transition. The
 * scanner records, per guest page, the generation it saw at the last
 * completed visit; when the generation is unchanged the page is
 * *provably* resident, non-stable and calm — the Frame is not even
 * loaded, the checksum compare is skipped, the content digest is
 * served from the per-page cache (falling back to a per-frame memo),
 * and the stable-tree probe is skipped while the table-wide stable
 * epoch proves a past miss still holds. Skipping is gated only on
 * generation/epoch equality, never on content heuristics, so merge
 * behaviour and every counter are identical to a from-scratch scan
 * (KsmConfig::incrementalScan = false gives that reference mode; the
 * property tests drive both side by side).
 *
 * Parallel scanning (docs/PERF.md): with KsmConfig::scanThreads >= 2 a
 * batch runs in two phases. *Classify* shards the batch's work list
 * across a thread pool; workers do only read-only work against the
 * frozen pre-batch state (generation checks, checksum/digest
 * computation, stable-tree probes) and record a per-page verdict plus
 * the expensive values. *Commit* then replays the verdicts on the
 * calling thread in the exact serial visit order, performing every
 * mutation (merges, unstable-table inserts, per-page state updates,
 * counters, trace records) as the serial scanner would; a snapshot
 * value is substituted only under a write-generation proof that it is
 * what the serial visit would have computed, and any page whose frame
 * moved mid-commit falls back to a full serial visit
 * (`ksm.commit_replays`). Merges, counters and trace streams are
 * therefore byte-identical at any thread count.
 *
 * Sharded commit (docs/ARCHITECTURE.md, docs/PERF.md §9): with
 * KsmConfig::commitShards = S >= 2 the stable and unstable indexes are
 * partitioned into S digest-sharded slices (shard = digest mod S), so
 * every merge candidate pair lands in one shard by construction — a
 * candidate and whatever it can merge with hold identical content,
 * hence identical digests. The commit phase then runs as S independent
 * shard commits on the thread pool, each replaying its candidates in
 * canonical page order against its own slice of the trees, its own
 * stable-epoch stripes (mem::FrameTable stripes them by digest, and S
 * divides the stripe count) and its own write-generation lane, with
 * all cross-shard effects — sharing counters, frame frees, touches,
 * hv stats, trace records — captured in a per-shard op log. A serial
 * reduce finally merges the S op logs with the non-candidate residual
 * stream by global work index and applies them in exactly the serial
 * order. Counters, merges, traces and documents are byte-identical to
 * S = 1 at any shard count; only `ksm.commit_shards` and
 * `ksm.shard_imbalance_max` (machine-sizing, like `ksm.scan_shards`)
 * depend on S.
 */

#ifndef JTPS_KSM_KSM_SCANNER_HH
#define JTPS_KSM_KSM_SCANNER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "base/stats.hh"
#include "base/thread_pool.hh"
#include "base/types.hh"
#include "hv/hypervisor.hh"
#include "mem/page_data.hh"
#include "sim/event_queue.hh"

namespace jtps::ksm
{

/** Scanner tuning knobs (sysfs: /sys/kernel/mm/ksm/...). */
struct KsmConfig
{
    /** Pages to scan per wake (`pages_to_scan`). */
    std::uint32_t pagesToScan = 1000;
    /** Sleep between wakes in milliseconds (`sleep_millisecs`). */
    Tick sleepMillisecs = 100;
    /** Modelled scanner cost per visited page, microseconds. */
    double scanCostUs = 2.5;
    /**
     * Maximum mappings per stable frame (`max_page_sharing`): once a
     * stable page is shared this many times, further identical pages
     * start a *duplicate* stable frame (a chain), bounding the
     * reverse-mapping work per page. Mostly visible on the zero page.
     */
    std::uint32_t maxPageSharing = 256;
    /**
     * Use write-generation dirty tracking to skip content work on
     * unchanged pages. false = reference mode: recompute everything
     * every visit, exactly equivalent in merges and counters (only
     * `ksm.pages_gen_skipped` / `ksm.digest_cache_hits` stay zero);
     * used by the equivalence tests and the before/after micro bench.
     */
    bool incrementalScan = true;
    /**
     * Worker threads for the scan's classify phase. <= 1 keeps the
     * scan fully serial on the calling thread; >= 2 enables the
     * two-phase classify/commit split. Merges, counters and traces
     * are byte-identical at any value (docs/PERF.md); only
     * `ksm.scan_shards` / `ksm.precheck_candidates` /
     * `ksm.commit_replays` move off zero when the split is active.
     */
    unsigned scanThreads = 1;
    /**
     * Pages per classify shard. Fixed (not derived from scanThreads)
     * so the shard boundaries — and with them `ksm.scan_shards` — are
     * identical at every thread count. Tests shrink it to force
     * multi-shard batches on tiny memories.
     */
    std::uint32_t scanShardPages = 4096;
    /**
     * Content-kernel window width for the cold path: the visitor (and
     * each classify shard) gathers up to this many candidate pages,
     * decides which checksums/digests their visits will need, computes
     * them with the lane-parallel batch kernels
     * (mem::checksumBatch/digestBatch — bit-identical per page to the
     * scalar members, but the independent multiply-xor chains overlap),
     * and then applies the unchanged per-page logic on the precomputed
     * values. 1 disables staging and reproduces today's per-page path
     * exactly; values are clamped to [1, 128]. Merges, counters and
     * traces are byte-identical at any width — only
     * `ksm.batch_kernel_pages` / `ksm.batch_flushes` (machine-sizing)
     * move.
     */
    std::uint32_t batchPages = 16;
    /**
     * Drive passes from the hypervisor's PML rings instead of walking
     * every resident page: each batch drains the rings into per-VM
     * dirty queues and visits only logged pages (a VM whose ring
     * overflowed is walked in full instead, restoring completeness).
     * Requires hv::HostConfig::pmlRingSlots > 0. Merges, sharing
     * totals and merge/promotion trace events are byte-identical to
     * the generation walk (docs/PERF.md §6): skipping is gated on the
     * completeness of the dirty log plus the same write-generation
     * proofs, never on content heuristics. Visit-accounting counters
     * (`ksm.pages_visited`, `ksm.pages_gen_skipped`, ...) naturally
     * shrink to O(dirty); `ksm.pages_pml_skipped` counts the resident
     * pages each pass proved it could leave unvisited.
     */
    bool usePml = false;
    /**
     * Digest shards for the commit phase. With S >= 2 the stable and
     * unstable indexes are partitioned by digest mod S and a batch's
     * merge candidates commit as S independent shard jobs on the
     * thread pool, followed by a serial order-preserving reduce (see
     * the file comment). Must divide mem::FrameTable::kStripes (64) so
     * every stable-epoch stripe is owned by exactly one shard.
     * Byte-identical to 1 at any value; only `ksm.commit_shards` and
     * `ksm.shard_imbalance_max` depend on it. Ignored (treated as 1)
     * under usePml, whose ring/queue bookkeeping is inherently serial.
     */
    unsigned commitShards = 1;
};

/**
 * The KSM scanning daemon (ksmd).
 */
class KsmScanner : public hv::PageEventListener
{
  public:
    /**
     * @param hv The hypervisor whose mergeable guest memory is scanned.
     * @param cfg Initial tuning.
     * @param stats Stat sink ("ksm." prefixed).
     */
    KsmScanner(hv::Hypervisor &hv, const KsmConfig &cfg, StatSet &stats);

    ~KsmScanner() override;

    KsmScanner(const KsmScanner &) = delete;
    KsmScanner &operator=(const KsmScanner &) = delete;

    /** Retune pages_to_scan (the paper lowers it after warm-up). */
    void setPagesToScan(std::uint32_t pages);

    /** Retune the sleep interval. */
    void setSleepMillisecs(Tick ms);

    /** Current configuration. */
    const KsmConfig &config() const { return cfg_; }

    /**
     * One wake of ksmd: scan up to pagesToScan pages.
     * @return pages actually visited.
     */
    std::uint64_t scanBatch();

    /**
     * Attach to an event queue: wake every sleepMillisecs until
     * detach() is called or the queue is drained.
     */
    void attach(sim::EventQueue &queue);

    /** Stop periodic scanning (takes effect at the next wake). */
    void detach() { attached_ = false; }

    /**
     * Convenience for benches: keep scanning until two consecutive full
     * passes produce no new merges (or @p max_full_scans passes happen).
     * @return total pages merged.
     */
    std::uint64_t runToQuiescence(std::uint64_t max_full_scans = 64);

    /** Completed full passes over all mergeable memory. */
    std::uint64_t fullScans() const { return full_scans_; }

    /** Number of stable (shared) KSM frames, like `pages_shared`. */
    std::uint64_t pagesShared() const;

    /**
     * Number of guest pages saved by deduplication, like
     * `pages_sharing`: for each stable frame, refcount - 1.
     */
    std::uint64_t pagesSharing() const;

    /** Bytes saved: pagesSharing() * pageSize. */
    Bytes savedBytes() const;

    /**
     * Modelled ksmd CPU utilisation for the current tuning:
     * pagesToScan * scanCostUs / (sleepMillisecs * 1000).
     */
    double cpuUsage() const;

    /** PageEventListener: drop per-page calm state on guest discard. */
    void pageDiscarded(VmId vm, Gfn gfn) override;

  private:
    /**
     * Scanner-owned per-guest-page state. lastChecksum/checksumValid
     * replace the fields that used to live in hv::EptEntry with
     * identical lifetime: they survive COW breaks, swap-outs and
     * swap-ins, and die only on discard (pageDiscarded()).
     */
    struct PageScanState
    {
        /** Frame write generation at the last completed visit. */
        std::uint64_t lastGen = 0;
        /**
         * Stable epoch at the last full stable-tree probe that missed
         * for this page's content; 0 = the next visit must probe.
         */
        std::uint64_t lastStableEpoch = 0;
        /** Content digest at generation lastGen (digestValid). Kept
         *  here — sequentially walked state — so the steady-state scan
         *  path does not touch the frame memo at all. */
        std::uint64_t lastDigest = 0;
        std::uint32_t lastChecksum = 0;
        bool checksumValid = false;
        bool digestValid = false;
        /**
         * The backing frame was KSM-stable when lastGen was recorded.
         * Because setKsmStable() advances the write generation, an
         * equal generation proves the flag has not changed since — so
         * a converged pass settles stable pages without loading the
         * Frame at all. Never set alongside digestValid.
         */
        bool lastStable = false;
    };

    /** Per-frame memo of content derivations, valid while the frame's
     *  write generation still equals `gen`. */
    struct FrameMemo
    {
        std::uint64_t gen = 0; //!< 0 = empty (generations start at 1)
        std::uint64_t digest = 0;
        std::uint32_t checksum = 0;
        bool hasDigest = false;
        bool hasChecksum = false;
    };

    /**
     * One slot of the flat open-addressed unstable table. A slot is
     * *live* when `epoch == pass_epoch_`; clearing the tree at a pass
     * boundary is one epoch bump instead of a deallocation, so a
     * steady-state pass runs allocation-free. `epoch == 0` means the
     * slot was never used (probe chains stop there); any other stale
     * epoch acts as a tombstone that keeps chains intact.
     */
    struct UnstableSlot
    {
        std::uint64_t digest = 0;
        std::uint64_t epoch = 0;
        VmId vm = invalidVm;
        Gfn gfn = invalidFrame;
    };

    /** One entry of a parallel batch's work list: a resident page the
     *  serial scan would have visited, in serial cursor order. */
    struct WorkItem
    {
        VmId vm;
        Gfn gfn;
    };

    /**
     * One digest shard's slice of the merge indexes. All structures
     * behave exactly as the S = 1 originals restricted to digests with
     * `digest % S == shard`: lookups compare digests (and then full
     * content), never slot positions, so partitioning is unobservable.
     */
    struct ShardState
    {
        /** Stable tree slice: digest -> stable frames, creation order. */
        std::unordered_map<std::uint64_t, std::vector<Hfn>> stableTree;
        /** Unstable table slice (flat, epoch-cleared). */
        std::vector<UnstableSlot> unstable;
        std::size_t occupied = 0; //!< slots with epoch != 0
        std::size_t live = 0;     //!< slots with epoch == current
    };

    /**
     * One deferred cross-shard effect recorded by a shard commit: a
     * merge into a stable frame and/or a stable promotion. The serial
     * reduce replays these in global work-index order, so sharing
     * counters, the frame free list, LRU touches, hv stats and trace
     * records land exactly as the serial commit would have placed them.
     */
    struct ShardOp
    {
        std::uint32_t idx;          //!< global work index (canonical order)
        VmId vm;                    //!< candidate page (trace payload)
        Gfn gfn;
        Hfn stable;                 //!< merge target (tree hit or fresh)
        Hfn source;                 //!< pre-merge backing of the candidate
        std::uint32_t refcountAtSet; //!< target refcount when promoted
        bool promotion;     //!< unstable promotion vs stable-tree merge
        bool transitioned;  //!< the promotion actually set the flag
        bool merged;        //!< the merge attempt succeeded
        bool freedSource;   //!< merge unmapped the source's last mapping
    };

    /** Counters a shard commit accumulates privately; folded into the
     *  live stats in shard order at the reduce (sums are order-free). */
    struct ShardCounters
    {
        std::uint64_t staleStable = 0;
        std::uint64_t staleUnstable = 0;
        std::uint64_t genSkipped = 0;
        std::uint64_t digestCacheHits = 0;
        std::uint64_t commitReplays = 0;
    };

    /** Per-shard commit job: its candidate indexes (ascending), its op
     *  log, and its private counters. Reused across batches. */
    struct ShardWork
    {
        std::vector<std::uint32_t> items;
        std::vector<ShardOp> ops;
        ShardCounters counters;
    };

    /**
     * How commitOne() treats the live write-generation check. The
     * serial commit uses Live; the sharded reduce replays residual
     * (non-candidate) items after *all* shard promotions have landed,
     * so it decides from the applied-op record instead: ForceReplay
     * when a promotion with a smaller work index moved the frame's
     * generation (the serial commit would have seen the mismatch),
     * ForceCommit otherwise (a later promotion must not be seen).
     */
    enum class GenCheck : std::uint8_t
    {
        Live,
        ForceReplay,
        ForceCommit,
    };

    /**
     * Classify-phase verdict for one work item, produced read-only by
     * a worker thread and consumed by the serial commit. `gen` is the
     * proof token: commit uses the recorded values only while the
     * frame's write generation still equals it, and falls back to a
     * full serial visit otherwise.
     */
    struct PageSnap
    {
        enum class Kind : std::uint8_t
        {
            Huge,       //!< THP-backed: skip (counts skipped_huge)
            GenStable,  //!< gen fast path, provably still stable
            GenCalm,    //!< gen fast path, provably calm
            SlowStable, //!< slow path, frame was KSM-stable
            NotCalm,    //!< slow path, checksum moved since last visit
            SlowCalm,   //!< slow path, calm: full tree candidate
        };

        std::uint64_t gen = 0;
        std::uint64_t digest = 0;
        /** Stable epoch at which the read-only probe cleanly missed. */
        std::uint64_t probeEpoch = 0;
        std::uint32_t checksum = 0;
        Kind kind = Kind::Huge;
        bool hasDigest = false;
        bool hasChecksum = false;
        /**
         * The read-only stable-tree probe walked the whole chain
         * without meeting a stale node or an acceptable (live,
         * non-full) one. That is the only probe outcome commit may
         * reuse: while the stable epoch still equals probeEpoch, a
         * real lookup would provably do nothing but miss.
         */
        bool probeCleanMiss = false;
    };

    /**
     * Content-kernel values precomputed for one staged visit. The
     * values are pure functions of the page content, and content is
     * frozen for the whole window (no guest runs during a batch; the
     * scanner never writes page data), so a present value is *always*
     * what the visit would have computed — same "use if present, else
     * recompute" contract as a classify snapshot, minus the generation
     * proof, which content-purity makes unnecessary.
     */
    struct BatchPre
    {
        std::uint64_t dig = 0;
        std::uint32_t sum = 0;
        bool hasSum = false;
        bool hasDig = false;
    };

    /**
     * Structure-of-arrays staging for one content-kernel window
     * (KsmConfig::batchPages). The gather loop pushes (vm, page-state
     * row, gfn) items; stageWindow() then mirrors the visit's decision
     * tree read-only to find which kernels each visit will need, runs
     * the lane-parallel batch kernels over the needy pages, and leaves
     * the per-item results in `pre` for the apply loop to hand to
     * scanOne()/classifyOne(). Accounting fields accumulate across
     * windows and are folded into the live counters by the owner (the
     * serial visitor directly, classify workers via the relaxed
     * atomics — sums, so order-free and deterministic).
     */
    struct KernelStage
    {
        // Window items (parallel arrays).
        std::vector<const hv::Vm *> vms;
        std::vector<const PageScanState *> rows;
        std::vector<Gfn> gfns;
        // Per-item derivations filled by stageWindow().
        std::vector<BatchPre> pre;
        std::vector<const mem::PageData *> data; //!< null until loaded
        std::vector<Hfn> hfns;                   //!< invalidFrame = huge
        std::vector<std::uint64_t> gens;
        // Kernel lane staging (index into the window per lane).
        std::vector<const mem::PageData *> sumPages;
        std::vector<std::uint32_t> sumLane;
        std::vector<std::uint32_t> sums;
        std::vector<const mem::PageData *> digPages;
        std::vector<std::uint32_t> digLane;
        std::vector<std::uint64_t> digs;
        std::vector<std::uint32_t> calmIdx;  //!< slow-path items
        std::vector<std::uint32_t> needyIdx; //!< items needing content
        std::vector<std::uint8_t> stableSettled; //!< gen-settled stable
        // Accounting, folded by the owner.
        std::uint64_t kernelPages = 0;
        std::uint64_t flushes = 0;
        double kernelMs = 0.0;

        void
        clearWindow()
        {
            vms.clear();
            rows.clear();
            gfns.clear();
        }

        void
        push(const hv::Vm *v, const PageScanState *row, Gfn gfn)
        {
            vms.push_back(v);
            rows.push_back(row);
            gfns.push_back(gfn);
        }

        std::size_t count() const { return gfns.size(); }
    };

    /**
     * Stage one gathered window: decide per item which content kernels
     * its visit will need (none for huge/stable/settled pages; the
     * zero-page fast path serves the compile-time constants ahead of
     * any kernel work), prefetch the frames, run the batch kernels,
     * and fill `ks.pre`. Read-only against scanner and host state.
     * @p consult_memo additionally skips kernel lanes the per-frame
     * memo would serve anyway — valid only on the serial path (the
     * memo is commit-side state; classifyOne() never reads it).
     */
    void stageWindow(const mem::FrameTable &ft, KernelStage &ks,
                     bool consult_memo) const;

    /**
     * Hint the unstable-table slot (two lines: chains average a couple
     * of slots) a visit probing `digest` is about to walk. Pure hint —
     * an earlier visit growing the table only makes it stale.
     */
    void prefetchUnstableSlot(std::uint64_t digest) const;

    /**
     * The serial visitors' lookahead: prefetch the write-generation
     * and unstable-slot lines of the visit `prefetchDist` pages ahead,
     * hiding their miss latency behind the visits in between.
     */
    void visitLookahead(const hv::Vm &v, const PageScanState *psv,
                        Gfn gfn, Gfn gfn_end,
                        const mem::FrameTable &ft) const;

    /**
     * Visit one candidate page. @p v, @p ft and @p psv are hoisted by
     * scanBatch() (the VM, frame table, and this VM's page-state row)
     * so the per-page path re-derives nothing. @p pre, when non-null,
     * carries batch-kernel values for this visit (see BatchPre).
     * @return true if the page was resident.
     */
    bool scanOne(VmId vm, Gfn gfn, const hv::Vm &v, mem::FrameTable &ft,
                 PageScanState *psv, const BatchPre *pre = nullptr);

    /** The serial scan loop (scanThreads <= 1, and the reference the
     *  parallel path must be byte-identical to). Dispatches to the
     *  software-pipelined window loop unless batchPages == 1. */
    std::uint64_t scanBatchSerial();

    /** scanBatchSerial(), gather/stage/apply flavour (batchPages >= 2):
     *  same visits in the same order, with the content kernels hoisted
     *  into lane-parallel windows. */
    std::uint64_t scanBatchSerialBatched();

    /** The two-phase collect/classify/commit scan loop. */
    std::uint64_t scanBatchParallel();

    /**
     * Per-VM dirty-queue state for log-driven passes (usePml). A pass
     * visits `current` (sorted, deduplicated gfns) instead of the
     * whole address space; `next` accumulates work for the following
     * pass (ring entries that landed behind the cursor, and not-calm
     * pages whose second calm-protocol visit is still owed). A ring
     * overflow degrades the VM to a full generation walk for the
     * affected passes.
     */
    struct PmlVmQueue
    {
        std::vector<Gfn> current;
        std::vector<Gfn> next;
        /**
         * Cross-pass-match revisits owed *this* pass (sorted): pages a
         * candidate met as a persistent unstable entry ahead of the
         * cursor. Kept apart from `current` because they are exempt
         * from the batch's pagesToScan budget — serial and parallel
         * batches must segment identically, and a parallel batch can
         * only discover them after its collect already fixed the
         * batch's size.
         */
        std::vector<Gfn> injected;
        std::size_t curIdx = 0;
        std::size_t injIdx = 0;
        std::uint64_t visitedThisPass = 0;
        bool walkThisPass = false;
        bool walkNextPass = false;
    };

    /** Lazily-sized dirty queue of @p vm. */
    PmlVmQueue &pmlQueue(VmId vm);

    /**
     * Drain every VM's PML ring into the dirty queues (called at the
     * start of each log-driven batch). Entries at or ahead of the
     * cursor join the current pass; entries behind it, the next pass.
     * Overflowed VMs are flagged for full walks.
     */
    void pmlDrain();

    /** Queue @p gfn of @p vm for the next pass (not-calm revisit). */
    void pmlRequeue(VmId vm, Gfn gfn);

    /**
     * Schedule a visit of (@p vm, @p gfn) at its canonical position in
     * the *current* pass: the page holds a live persistent unstable
     * entry that a candidate earlier in cursor order just matched, and
     * the walk would promote at this page's own visit. Inserts into
     * the VM's `injected` lane, or — when a parallel batch's collect
     * has already passed the position — splices a full-replay item
     * into the unreplayed commit stream.
     */
    void pmlScheduleThisPass(VmId vm, Gfn gfn);

    /** Log-driven serial scan loop (usePml && scanThreads <= 1). */
    std::uint64_t scanBatchSerialPml();

    /** Log-driven collect feeding the shared classify/commit split. */
    std::uint64_t scanBatchParallelPml();

    /** Classify+commit work_[0, n) exactly as scanBatchParallel()
     *  does (shared tail of both parallel collects). */
    void classifyAndCommit();

    /** Classify work_[begin, end) into snaps_ (worker thread;
     *  read-only — no counters, no memo, no per-page state writes). */
    void classifyRange(const mem::FrameTable &ft, std::size_t begin,
                       std::size_t end);

    /** Classify one work item into @p snap. @p pre, when non-null,
     *  carries batch-kernel values for this item (see BatchPre). */
    void classifyOne(Gfn gfn, const hv::Vm &v,
                     const mem::FrameTable &ft,
                     const PageScanState *psv, PageSnap &snap,
                     const BatchPre *pre = nullptr) const;

    /** Replay one classified page on the calling thread, mutating
     *  exactly as the serial visit would. */
    void commitOne(VmId vm, Gfn gfn, const hv::Vm &v,
                   mem::FrameTable &ft, PageScanState *psv,
                   const PageSnap &snap,
                   GenCheck gen_check = GenCheck::Live);

    /** Effective commit shard count: cfg_.commitShards, collapsed to 1
     *  under usePml or when <= 1. */
    unsigned effectiveCommitShards() const;

    /** Digest shard owning @p digest. */
    unsigned
    shardFor(std::uint64_t digest) const
    {
        return static_cast<unsigned>(digest % shards_.size());
    }

    /** Sharded commit phase: partition the classified batch, run the
     *  S shard jobs on the pool, then reduce serially (see file
     *  comment). Replaces the serial commit loop when S >= 2. */
    void commitSharded(mem::FrameTable &ft);

    /** One shard's commit job (pool thread): replay the shard's
     *  candidates in ascending work index against its own slices,
     *  logging cross-shard effects into its ShardWork. */
    void shardCommitItems(mem::FrameTable &ft, unsigned s);

    /** treeStage(), shard flavour: same decisions against the shard's
     *  slices, with merges/promotions executed through the deferred
     *  FrameTable protocol and logged instead of counted/traced. */
    void shardTreeStage(ShardState &sh, ShardWork &sw, unsigned lane,
                        std::uint32_t idx, VmId vm, Gfn gfn,
                        mem::FrameTable &ft, PageScanState &ps, Hfn hfn,
                        std::uint64_t digest, const mem::PageData *data,
                        bool skip_stable_probe, const PageSnap *snap);

    /** Apply one shard op at the reduce (serial, in work-index order). */
    void applyShardOp(const ShardOp &op, mem::FrameTable &ft);

    /**
     * Stable-probe + unstable-table stage shared by the serial visit
     * and the commit replay. @p data may be null (loaded lazily);
     * @p snap, when non-null, may let the stable probe be settled as
     * a clean miss under the epoch proof.
     */
    void treeStage(VmId vm, Gfn gfn, mem::FrameTable &ft,
                   PageScanState &ps, Hfn hfn, std::uint64_t digest,
                   const mem::PageData *data, bool skip_stable_probe,
                   const PageSnap *snap);

    /** True iff a stableLookup of (@p data, @p digest) would miss
     *  without pruning anything. Read-only (worker-safe). */
    bool stableProbeCleanMiss(const mem::FrameTable &ft,
                              const mem::PageData &data,
                              std::uint64_t digest) const;

    /**
     * Digest of @p data via the per-frame memo — THE "use a
     * precomputed value if present, else recompute" point, shared by
     * the serial visit, the commit replay and the shard commits. On a
     * memo hit the cached value is served and counted into
     * @p digest_hits (the live counter serially, a shard's private
     * accumulator from a shard commit); on a miss, @p pre — a
     * classify-snapshot value under its generation proof, or a
     * batch-kernel value (content-pure, so always valid) — stands in
     * for the recompute, and the memo end-state is byte-identical
     * either way.
     */
    std::uint64_t cachedDigest(Hfn hfn, std::uint64_t gen,
                               const mem::PageData &data,
                               const std::uint64_t *pre,
                               std::uint64_t &digest_hits);

    /** cachedChecksum(): the checksum flavour of cachedDigest() (no
     *  hit counter — only digests have hit accounting). */
    std::uint32_t cachedChecksum(Hfn hfn, std::uint64_t gen,
                                 const mem::PageData &data,
                                 const std::uint32_t *pre);

    /**
     * The generation-fast-path digest resolution shared by the serial
     * visit (scanOne), the commit replay (commitOne) and the shard
     * commits: serve the per-page cache, else cachedDigest(), install
     * the result into @p ps, and derive the epoch-proved stable-probe
     * skip. The caller has already counted the gen skip.
     */
    std::uint64_t genCalmDigest(mem::FrameTable &ft, Hfn hfn,
                                std::uint64_t gen, PageScanState &ps,
                                const mem::PageData *&data,
                                const std::uint64_t *pre,
                                std::uint64_t &digest_hits,
                                bool &skip_stable_probe);

    /**
     * The slow-path content stage shared by the same three callers:
     * resolve the checksum (cachedChecksum() under incrementalScan,
     * direct otherwise), decide calmness against @p ps, update the
     * per-page state exactly as the serial visit always has, and — for
     * calm pages — resolve and install the digest. @return false when
     * the page is not calm (the caller counts it and stops).
     */
    bool slowPathContent(mem::FrameTable &ft, Hfn hfn, std::uint64_t gen,
                         PageScanState &ps, const mem::PageData *&data,
                         const std::uint32_t *pre_sum,
                         const std::uint64_t *pre_dig,
                         std::uint64_t &digest_hits,
                         std::uint64_t &digest_out);

    /** Advance the cursor; returns false at the end of a full pass. */
    bool advanceCursor();

    /** Pure cursor movement: skip to the next mergeable in-range
     *  position; false at the end of a pass (no bookkeeping). */
    bool cursorNext();

    /** End-of-pass bookkeeping: reset the cursor, bump the pass epoch,
     *  record the KsmFullScan trace event. */
    void passBoundary();

    /**
     * Look up @p data (whose digest is @p digest) in @p sh's stable
     * tree slice, pruning stale nodes and emptied digest buckets into
     * @p stale_counter (the live stat serially, a shard accumulator
     * from a shard commit). The staleness test compares content before
     * reading the stable flag: a stale node's recycled frame may be
     * mid-mutation in another shard, but its (frozen) content already
     * proves the prune, so the outcome never depends on the race.
     */
    Hfn stableLookup(ShardState &sh, const mem::PageData &data,
                     std::uint64_t digest, std::uint64_t &stale_counter);

    /** Lazily-sized per-page state for (vm, gfn). */
    PageScanState &pageState(VmId vm, Gfn gfn);

    /** The whole page-state row of @p vm, sized to its EPT. */
    PageScanState *pageStateRow(VmId vm, const hv::Vm &v);

    /** Lazily-sized per-frame memo slot. */
    FrameMemo &frameMemo(Hfn hfn);

    /** Grow/compact @p sh's flat unstable table (drops stale slots). */
    void unstableRehash(ShardState &sh, std::size_t new_capacity);

    hv::Hypervisor &hv_;
    KsmConfig cfg_;
    StatSet &stats_;
    bool attached_ = false;

    // Scan cursor.
    VmId cur_vm_ = 0;
    Gfn cur_gfn_ = 0;

    std::uint64_t full_scans_ = 0;
    std::uint64_t merges_this_pass_ = 0;
    std::uint64_t merges_total_ = 0;

    /** The merge indexes, partitioned into effectiveCommitShards()
     *  digest shards (one slice at S = 1: the classic layout). */
    std::vector<ShardState> shards_;
    std::uint64_t pass_epoch_ = 1;

    /** Per-shard commit jobs and the residual (non-candidate) work
     *  indexes, reused across batches. */
    std::vector<ShardWork> shard_work_;
    std::vector<std::uint32_t> residual_;
    /** Reduce scratch: all shards' ops merged by work index. */
    std::vector<ShardOp> merged_ops_;
    /** Frames whose generation an *applied* promotion moved, for the
     *  residual GenCheck decision. */
    std::unordered_set<Hfn> bumped_;
    /** Running max of per-batch shard imbalance (see METRICS.md). */
    std::uint64_t shard_imbalance_max_ = 0;

    std::vector<std::vector<PageScanState>> page_state_;
    std::vector<FrameMemo> frame_memo_;

    /** Per-VM dirty queues (usePml mode only). */
    std::vector<PmlVmQueue> pml_;
    /** Scratch for sorting freshly drained ring entries. */
    std::vector<Gfn> pml_pending_;
    /** True while classifyAndCommit() replays commits: a cross-pass
     *  revisit behind the collect cursor must splice into the commit
     *  stream (at work_[pml_commit_idx_+1, …)) instead of a queue. */
    bool pml_in_commit_ = false;
    std::size_t pml_commit_idx_ = 0;

    /** Classify workers (created on the first parallel batch). */
    std::unique_ptr<ThreadPool> pool_;
    /** Parallel batch buffers, reused across batches. */
    std::vector<WorkItem> work_;
    std::vector<PageSnap> snaps_;

    /** Serial visitor's staging buffers, reused across windows. */
    KernelStage serial_stage_;
    /**
     * Batch-kernel accounting from classify workers, folded into the
     * live counters after the pool barrier. Relaxed atomics: the folded
     * values are sums over all windows, so they are independent of
     * worker interleaving — deterministic at any thread count (for a
     * fixed scanShardPages, the windows themselves are too).
     */
    std::atomic<std::uint64_t> batch_pages_acc_{0};
    std::atomic<std::uint64_t> batch_flush_acc_{0};
    std::atomic<std::uint64_t> kernel_ns_acc_{0};

    // Cached counter handles: scanOne() runs per visited page, so the
    // string-keyed StatSet lookups are hoisted out of the hot loop.
    std::uint64_t &stat_stale_stable_;
    std::uint64_t &stat_stale_unstable_;
    std::uint64_t &stat_skipped_huge_;
    std::uint64_t &stat_not_calm_;
    std::uint64_t &stat_stable_merges_;
    std::uint64_t &stat_unstable_promotions_;
    std::uint64_t &stat_pages_visited_;
    std::uint64_t &stat_gen_skipped_;
    std::uint64_t &stat_digest_cache_hits_;
    std::uint64_t &stat_scan_shards_;
    std::uint64_t &stat_precheck_candidates_;
    std::uint64_t &stat_commit_replays_;
    std::uint64_t &stat_pml_skipped_;
    std::uint64_t &stat_shard_imbalance_;
    std::uint64_t &stat_batch_kernel_pages_;
    std::uint64_t &stat_batch_flushes_;
    /** hv's own merge counter, cached so the sharded reduce can apply
     *  deferred merges without a per-merge string lookup. */
    std::uint64_t &stat_hv_ksm_merges_;

    /**
     * Wall-clock phase accounting for the two-phase scan, enabled by
     * setting the JTPS_SCAN_PHASE_MS environment variable: one stderr
     * line per completed pass, then reset. Measurement only — no
     * behavioural effect — and the source of the serial-fraction
     * numbers in docs/PERF.md §9.
     */
    struct PhaseMs
    {
        double collect = 0;   //!< serial cursor walk
        double classify = 0;  //!< parallel read-only snapshotting
        double partition = 0; //!< serial candidate/residual split
        double shard = 0;     //!< parallel shard commits (wall)
        double reduce = 0;    //!< serial op/residual interleave
        double serial = 0;    //!< unsharded commit loop (S == 1)
        double kernel = 0;    //!< batched content kernels (staging)
    };
    bool phase_timing_ = false;
    PhaseMs phase_ms_;
};

} // namespace jtps::ksm

#endif // JTPS_KSM_KSM_SCANNER_HH
