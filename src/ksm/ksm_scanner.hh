/**
 * @file
 * Kernel Samepage Merging (KSM) — the TPS implementation used by KVM in
 * the paper (Arcangeli, Eidus & Wright, "Increasing memory density by
 * using KSM", OLS 2009).
 *
 * The model follows the real algorithm:
 *
 *  - The scanner wakes every `sleepMillisecs`, scans `pagesToScan`
 *    candidate pages (round-robin across all mergeable guest memory),
 *    then sleeps. Both knobs are the tunables the paper adjusts (10,000
 *    pages during warm-up at ~25% CPU, then 1,000 pages at ~2%).
 *  - A page whose 32-bit checksum changed since the last visit is "not
 *    calm" and is skipped — this is what keeps GC-churned Java heap
 *    pages from being merged, and why only *stable* zero pages share.
 *  - Calm pages are looked up in the *stable tree* (already-shared KSM
 *    pages indexed by content). A hit merges the candidate into the
 *    stable frame copy-on-write.
 *  - Otherwise the *unstable tree* (rebuilt every full scan) is
 *    searched; a content match promotes the pair to a new stable node.
 *
 * Stale stable-tree nodes (frame freed or COW-diverged) are pruned
 * lazily on lookup, as in the real implementation.
 *
 * Unlike ksmd's red-black trees, both structures here are hash indexes
 * keyed by the 64-bit content digest (ESX finds sharing candidates the
 * same way — Waldspurger, "Memory Resource Management in VMware ESX
 * Server", OSDI 2002): one probe per visited page instead of O(log n)
 * 64-byte lexicographic compares. The full 8-word compare still runs
 * on every bucket hit, so a digest collision can only cost a missed
 * merge, never a wrong one.
 */

#ifndef JTPS_KSM_KSM_SCANNER_HH
#define JTPS_KSM_KSM_SCANNER_HH

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/stats.hh"
#include "base/types.hh"
#include "hv/hypervisor.hh"
#include "mem/page_data.hh"
#include "sim/event_queue.hh"

namespace jtps::ksm
{

/** Scanner tuning knobs (sysfs: /sys/kernel/mm/ksm/...). */
struct KsmConfig
{
    /** Pages to scan per wake (`pages_to_scan`). */
    std::uint32_t pagesToScan = 1000;
    /** Sleep between wakes in milliseconds (`sleep_millisecs`). */
    Tick sleepMillisecs = 100;
    /** Modelled scanner cost per visited page, microseconds. */
    double scanCostUs = 2.5;
    /**
     * Maximum mappings per stable frame (`max_page_sharing`): once a
     * stable page is shared this many times, further identical pages
     * start a *duplicate* stable frame (a chain), bounding the
     * reverse-mapping work per page. Mostly visible on the zero page.
     */
    std::uint32_t maxPageSharing = 256;
};

/**
 * The KSM scanning daemon (ksmd).
 */
class KsmScanner
{
  public:
    /**
     * @param hv The hypervisor whose mergeable guest memory is scanned.
     * @param cfg Initial tuning.
     * @param stats Stat sink ("ksm." prefixed).
     */
    KsmScanner(hv::Hypervisor &hv, const KsmConfig &cfg, StatSet &stats);

    /** Retune pages_to_scan (the paper lowers it after warm-up). */
    void setPagesToScan(std::uint32_t pages);

    /** Retune the sleep interval. */
    void setSleepMillisecs(Tick ms);

    /** Current configuration. */
    const KsmConfig &config() const { return cfg_; }

    /**
     * One wake of ksmd: scan up to pagesToScan pages.
     * @return pages actually visited.
     */
    std::uint64_t scanBatch();

    /**
     * Attach to an event queue: wake every sleepMillisecs until
     * detach() is called or the queue is drained.
     */
    void attach(sim::EventQueue &queue);

    /** Stop periodic scanning (takes effect at the next wake). */
    void detach() { attached_ = false; }

    /**
     * Convenience for benches: keep scanning until two consecutive full
     * passes produce no new merges (or @p max_full_scans passes happen).
     * @return total pages merged.
     */
    std::uint64_t runToQuiescence(std::uint64_t max_full_scans = 64);

    /** Completed full passes over all mergeable memory. */
    std::uint64_t fullScans() const { return full_scans_; }

    /** Number of stable (shared) KSM frames, like `pages_shared`. */
    std::uint64_t pagesShared() const;

    /**
     * Number of guest pages saved by deduplication, like
     * `pages_sharing`: for each stable frame, refcount - 1.
     */
    std::uint64_t pagesSharing() const;

    /** Bytes saved: pagesSharing() * pageSize. */
    Bytes savedBytes() const;

    /**
     * Modelled ksmd CPU utilisation for the current tuning:
     * pagesToScan * scanCostUs / (sleepMillisecs * 1000).
     */
    double cpuUsage() const;

  private:
    /** Visit one candidate page. @return true if it was resident. */
    bool scanOne(VmId vm, Gfn gfn);

    /** Advance the cursor; returns false at the end of a full pass. */
    bool advanceCursor();

    /**
     * Look up @p data (whose digest is @p digest) in the stable tree,
     * pruning stale nodes and emptied digest buckets.
     */
    Hfn stableLookup(const mem::PageData &data, std::uint64_t digest);

    hv::Hypervisor &hv_;
    KsmConfig cfg_;
    StatSet &stats_;
    bool attached_ = false;

    // Scan cursor.
    VmId cur_vm_ = 0;
    Gfn cur_gfn_ = 0;

    std::uint64_t full_scans_ = 0;
    std::uint64_t merges_this_pass_ = 0;
    std::uint64_t merges_total_ = 0;

    /** Stable tree: content digest -> stable frames holding that
     *  content, in creation order (duplicates past max_page_sharing
     *  form chains, hence the vector). */
    std::unordered_map<std::uint64_t, std::vector<Hfn>> stable_tree_;
    /** Unstable tree: content digest -> candidate page seen earlier
     *  this pass; cleared at every pass boundary. */
    std::unordered_map<std::uint64_t, std::pair<VmId, Gfn>>
        unstable_tree_;

    // Cached counter handles: scanOne() runs per visited page, so the
    // string-keyed StatSet lookups are hoisted out of the hot loop.
    std::uint64_t &stat_stale_stable_;
    std::uint64_t &stat_stale_unstable_;
    std::uint64_t &stat_skipped_huge_;
    std::uint64_t &stat_not_calm_;
    std::uint64_t &stat_stable_merges_;
    std::uint64_t &stat_unstable_promotions_;
    std::uint64_t &stat_pages_visited_;
};

} // namespace jtps::ksm

#endif // JTPS_KSM_KSM_SCANNER_HH
