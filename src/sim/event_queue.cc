#include "sim/event_queue.hh"

#include <algorithm>
#include <memory>

#include "base/logging.hh"

namespace jtps::sim
{

void
EventQueue::scheduleAt(Tick when, EventFn fn)
{
    jtps_assert(when >= now_);
    heap_.push_back(Item{when, next_seq_++, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), later);
}

void
EventQueue::scheduleAfter(Tick delay, EventFn fn)
{
    scheduleAt(now_ + delay, std::move(fn));
}

void
EventQueue::schedulePeriodic(Tick period, std::function<bool()> fn)
{
    jtps_assert(period > 0);
    // Self-rescheduling wrapper; capture by value so the shared state
    // lives as long as the chain of events does.
    auto wrapper = std::make_shared<std::function<void()>>();
    auto callback = std::move(fn);
    *wrapper = [this, period, callback, wrapper]() {
        if (callback())
            scheduleAfter(period, *wrapper);
    };
    scheduleAfter(period, *wrapper);
}

std::size_t
EventQueue::pending() const
{
    return heap_.size();
}

void
EventQueue::runOne()
{
    jtps_assert(heap_.front().when >= now_);
    // Detach the event before running it: the callback may schedule
    // (growing the heap) or clear() it.
    std::pop_heap(heap_.begin(), heap_.end(), later);
    Item item = std::move(heap_.back());
    heap_.pop_back();
    now_ = item.when;
    item.fn();
}

void
EventQueue::run()
{
    while (!heap_.empty())
        runOne();
}

void
EventQueue::runUntil(Tick until)
{
    while (!heap_.empty() && heap_.front().when <= until)
        runOne();
    if (now_ < until)
        now_ = until;
}

void
EventQueue::clear()
{
    heap_.clear();
}

} // namespace jtps::sim
