#include "sim/event_queue.hh"

#include <memory>

#include "base/logging.hh"

namespace jtps::sim
{

void
EventQueue::scheduleAt(Tick when, EventFn fn)
{
    jtps_assert(when >= now_);
    events_.emplace(std::make_pair(when, next_seq_++), std::move(fn));
}

void
EventQueue::scheduleAfter(Tick delay, EventFn fn)
{
    scheduleAt(now_ + delay, std::move(fn));
}

void
EventQueue::schedulePeriodic(Tick period, std::function<bool()> fn)
{
    jtps_assert(period > 0);
    // Self-rescheduling wrapper; capture by value so the shared state
    // lives as long as the chain of events does.
    auto wrapper = std::make_shared<std::function<void()>>();
    auto callback = std::move(fn);
    *wrapper = [this, period, callback, wrapper]() {
        if (callback())
            scheduleAfter(period, *wrapper);
    };
    scheduleAfter(period, *wrapper);
}

std::size_t
EventQueue::pending() const
{
    return events_.size();
}

void
EventQueue::runOne()
{
    auto it = events_.begin();
    jtps_assert(it->first.first >= now_);
    now_ = it->first.first;
    EventFn fn = std::move(it->second);
    events_.erase(it);
    fn();
}

void
EventQueue::run()
{
    while (!events_.empty())
        runOne();
}

void
EventQueue::runUntil(Tick until)
{
    while (!events_.empty() && events_.begin()->first.first <= until)
        runOne();
    if (now_ < until)
        now_ = until;
}

void
EventQueue::clear()
{
    events_.clear();
}

} // namespace jtps::sim
