#include "sim/event_queue.hh"

#include <algorithm>
#include <memory>
#include <utility>

#include "base/logging.hh"
#include "base/thread_pool.hh"

namespace jtps::sim
{

EventQueue::EventQueue() = default;
EventQueue::~EventQueue() = default;

void
EventQueue::push(Item item)
{
    heap_.push_back(std::move(item));
    std::push_heap(heap_.begin(), heap_.end(), later);
}

void
EventQueue::scheduleAt(Tick when, EventFn fn)
{
    if (stage_active_) {
        panic("scheduleAt during the parallel stage phase: stage "
              "callbacks must be owner-local; schedule from commit");
    }
    jtps_assert(when >= now_);
    push(Item{when, next_seq_++, noOwner, std::move(fn), {}, {}});
}

void
EventQueue::scheduleAfter(Tick delay, EventFn fn)
{
    scheduleAt(now_ + delay, std::move(fn));
}

void
EventQueue::scheduleOwnedAt(Tick when, std::uint64_t owner,
                            StageFn stage, CommitFn commit)
{
    if (stage_active_) {
        panic("scheduleOwnedAt during the parallel stage phase: stage "
              "callbacks must be owner-local; schedule from commit");
    }
    jtps_assert(when >= now_);
    jtps_assert(owner != noOwner);
    jtps_assert(stage && commit);
    push(Item{when, next_seq_++, owner, {}, std::move(stage),
              std::move(commit)});
}

void
EventQueue::schedulePeriodic(Tick period, std::function<bool()> fn)
{
    jtps_assert(period > 0);
    // Self-rescheduling wrapper; capture by value so the shared state
    // lives as long as the chain of events does.
    auto wrapper = std::make_shared<std::function<void()>>();
    auto callback = std::move(fn);
    *wrapper = [this, period, callback, wrapper]() {
        if (callback())
            scheduleAfter(period, *wrapper);
    };
    scheduleAfter(period, *wrapper);
}

void
EventQueue::setStageThreads(unsigned threads)
{
    jtps_assert(!stage_active_);
    stage_threads_ = threads;
    if (threads > 1) {
        if (!pool_ || pool_->size() != threads)
            pool_ = std::make_unique<ThreadPool>(threads);
    } else {
        pool_.reset();
    }
}

std::size_t
EventQueue::pending() const
{
    return heap_.size();
}

EventQueue::Item
EventQueue::popFront()
{
    std::pop_heap(heap_.begin(), heap_.end(), later);
    Item item = std::move(heap_.back());
    heap_.pop_back();
    return item;
}

void
EventQueue::runOne()
{
    jtps_assert(heap_.front().when >= now_);
    // Detach the event before running it: the callback may schedule
    // (growing the heap) or clear() it.
    Item item = popFront();
    now_ = item.when;
    if (item.owner == noOwner) {
        item.fn();
        return;
    }
    runOwnedBatch(std::move(item));
}

void
EventQueue::runOwnedBatch(Item first)
{
    // Collect the maximal run of consecutive same-tick owned events.
    // An unowned event in between ends the batch, keeping the strict
    // (when, seq) serial order relative to everything unowned.
    std::vector<Item> batch;
    batch.push_back(std::move(first));
    while (!heap_.empty() && heap_.front().when == now_ &&
           heap_.front().owner != noOwner) {
        batch.push_back(popFront());
    }

    // Group by owner: ascending owner key, insertion order within an
    // owner (the batch is already seq-ascending). Groups hold indexes
    // into batch.
    std::vector<std::size_t> order(batch.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&batch](std::size_t a, std::size_t b) {
                         return batch[a].owner < batch[b].owner;
                     });
    std::vector<std::pair<std::size_t, std::size_t>> groups;
    for (std::size_t i = 0; i < order.size();) {
        std::size_t j = i + 1;
        while (j < order.size() &&
               batch[order[j]].owner == batch[order[i]].owner) {
            ++j;
        }
        groups.emplace_back(i, j);
        i = j;
    }

    // Stage phase: each owner's stages run in order; distinct owners
    // run concurrently when a pool is configured. Stage callbacks
    // only touch owner-local state, so the flags vector (disjoint
    // slots) is the only shared write target.
    std::vector<char> staged(batch.size(), 0);
    auto stageGroup = [&batch, &order, &staged](std::size_t lo,
                                                std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) {
            const std::size_t idx = order[k];
            staged[idx] = batch[idx].stage() ? 1 : 0;
        }
    };
    if (pool_ && groups.size() > 1) {
        stage_active_ = true;
        for (const auto &[lo, hi] : groups)
            pool_->submit([&stageGroup, lo = lo, hi = hi]() {
                stageGroup(lo, hi);
            });
        pool_->wait();
        stage_active_ = false;
    } else {
        stage_active_ = true;
        for (const auto &[lo, hi] : groups)
            stageGroup(lo, hi);
        stage_active_ = false;
    }

    // Commit phase: serial, ascending owner, insertion order within.
    // Commits may schedule (self-rescheduling epochs do).
    for (const auto &[lo, hi] : groups) {
        for (std::size_t k = lo; k < hi; ++k) {
            const std::size_t idx = order[k];
            batch[idx].commit(staged[idx] != 0);
        }
    }
}

void
EventQueue::run()
{
    while (!heap_.empty())
        runOne();
}

void
EventQueue::runUntil(Tick until)
{
    while (!heap_.empty() && heap_.front().when <= until)
        runOne();
    if (now_ < until)
        now_ = until;
}

void
EventQueue::clear()
{
    heap_.clear();
}

} // namespace jtps::sim
