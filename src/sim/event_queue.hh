/**
 * @file
 * A small discrete-event simulation engine.
 *
 * Simulated time is measured in Ticks (milliseconds). Components
 * (the KSM scanner, GC timers, client drivers, measurement snapshots)
 * schedule callbacks; EventQueue::run() drains them in time order.
 * Events scheduled at the same tick run in insertion order so that a
 * scenario is fully deterministic. An event that schedules at now()
 * while the tick is draining runs later in the same tick, still in
 * insertion order.
 *
 * Owned events (scheduleOwnedAt) additionally carry an owner key — in
 * practice a VmId — and split into a *stage* callback and a *commit*
 * callback. When the queue reaches a run of consecutive same-tick
 * owned events it drains them in two phases: all stage callbacks run
 * first, grouped by owner and (above one stage thread) concurrently
 * on a thread pool; then every commit callback runs serially in
 * ascending owner order, insertion order within an owner. Stage
 * callbacks must confine themselves to owner-local state — they may
 * not schedule events — which is what makes the parallel phase
 * deterministic: all cross-owner effects happen in the serial commit
 * phase, in canonical order, regardless of thread count.
 */

#ifndef JTPS_SIM_EVENT_QUEUE_HH
#define JTPS_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "base/types.hh"

namespace jtps
{
class ThreadPool;
}

namespace jtps::sim
{

/** Callback type for scheduled events. */
using EventFn = std::function<void()>;

/** Owned-event stage callback: runs possibly concurrently with other
 *  owners' stages; touches only owner-local state. Returns false to
 *  decline staging (the commit callback then receives staged=false
 *  and runs the work serially instead). */
using StageFn = std::function<bool()>;

/** Owned-event commit callback: always serial, ascending owner order.
 *  @p staged is what the stage callback returned. */
using CommitFn = std::function<void(bool staged)>;

/**
 * Time-ordered event queue with support for one-shot, periodic and
 * owned (stage/commit) events. Not thread-safe from outside; the
 * stage phase fans out internally on an owned thread pool.
 */
class EventQueue
{
  public:
    EventQueue();
    ~EventQueue();

    /** Owner key marking an event as unowned (plain serial event). */
    static constexpr std::uint64_t noOwner = ~0ULL;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p fn to run at absolute tick @p when (>= now). */
    void scheduleAt(Tick when, EventFn fn);

    /** Schedule @p fn to run @p delay ticks from now. */
    void scheduleAfter(Tick delay, EventFn fn);

    /**
     * Schedule an owned stage/commit event at absolute tick @p when.
     * @p owner keys the parallel grouping and the canonical commit
     * order; it must not be noOwner.
     */
    void scheduleOwnedAt(Tick when, std::uint64_t owner, StageFn stage,
                         CommitFn commit);

    /**
     * Schedule @p fn every @p period ticks, starting @p period from now.
     * The callback returns true to keep running, false to cancel.
     */
    void schedulePeriodic(Tick period, std::function<bool()> fn);

    /**
     * Worker threads for the stage phase of owned-event batches.
     * <= 1 runs stages inline (serially, still in stage/commit
     * order); results are identical at any value. May be called
     * between drains, not from inside a callback.
     */
    void setStageThreads(unsigned threads);

    /** Configured stage-phase width. */
    unsigned stageThreads() const { return stage_threads_; }

    /** Number of pending events. */
    std::size_t pending() const;

    /** Run until the queue is empty. */
    void run();

    /**
     * Run until simulated time reaches @p until (events at exactly
     * @p until still execute). Later events stay queued.
     */
    void runUntil(Tick until);

    /** Drop all pending events without running them. */
    void clear();

  private:
    /** One pending event. Ordered by (when, seq): the insertion
     *  sequence breaks same-tick ties, so FIFO order within a tick is
     *  preserved exactly as the old ordered-map key did. Owned events
     *  (owner != noOwner) carry stage/commit instead of fn. */
    struct Item
    {
        Tick when;
        std::uint64_t seq;
        std::uint64_t owner;
        EventFn fn;
        StageFn stage;
        CommitFn commit;
    };

    /** Heap predicate: @p a fires after @p b (min-heap via the
     *  standard max-heap algorithms). */
    static bool
    later(const Item &a, const Item &b)
    {
        return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }

    void push(Item item);
    Item popFront();
    void runOne();
    void runOwnedBatch(Item first);

    Tick now_ = 0;
    std::uint64_t next_seq_ = 0;
    /**
     * Binary min-heap on (when, seq). A simulated run is almost pure
     * push/pop-min churn (every periodic component reschedules itself
     * each wake), which the flat array serves without the per-node
     * allocation and pointer chasing of the former std::map — see
     * BM_EventQueueChurn.
     */
    std::vector<Item> heap_;

    unsigned stage_threads_ = 1;
    /** Lazily built; only exists while stage_threads_ > 1. */
    std::unique_ptr<ThreadPool> pool_;
    /** True while stage callbacks may be running on pool workers;
     *  scheduling is rejected with a panic (commit is the place for
     *  cross-owner effects, including rescheduling). */
    bool stage_active_ = false;
};

} // namespace jtps::sim

#endif // JTPS_SIM_EVENT_QUEUE_HH
