/**
 * @file
 * A small discrete-event simulation engine.
 *
 * Simulated time is measured in Ticks (milliseconds). Components
 * (the KSM scanner, GC timers, client drivers, measurement snapshots)
 * schedule callbacks; EventQueue::run() drains them in time order.
 * Events scheduled at the same tick run in insertion order so that a
 * scenario is fully deterministic.
 */

#ifndef JTPS_SIM_EVENT_QUEUE_HH
#define JTPS_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "base/types.hh"

namespace jtps::sim
{

/** Callback type for scheduled events. */
using EventFn = std::function<void()>;

/**
 * Time-ordered event queue with support for one-shot and periodic
 * events. Not thread-safe; the simulator is single-threaded.
 */
class EventQueue
{
  public:
    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p fn to run at absolute tick @p when (>= now). */
    void scheduleAt(Tick when, EventFn fn);

    /** Schedule @p fn to run @p delay ticks from now. */
    void scheduleAfter(Tick delay, EventFn fn);

    /**
     * Schedule @p fn every @p period ticks, starting @p period from now.
     * The callback returns true to keep running, false to cancel.
     */
    void schedulePeriodic(Tick period, std::function<bool()> fn);

    /** Number of pending events. */
    std::size_t pending() const;

    /** Run until the queue is empty. */
    void run();

    /**
     * Run until simulated time reaches @p until (events at exactly
     * @p until still execute). Later events stay queued.
     */
    void runUntil(Tick until);

    /** Drop all pending events without running them. */
    void clear();

  private:
    /** One pending event. Ordered by (when, seq): the insertion
     *  sequence breaks same-tick ties, so FIFO order within a tick is
     *  preserved exactly as the old ordered-map key did. */
    struct Item
    {
        Tick when;
        std::uint64_t seq;
        EventFn fn;
    };

    /** Heap predicate: @p a fires after @p b (min-heap via the
     *  standard max-heap algorithms). */
    static bool
    later(const Item &a, const Item &b)
    {
        return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }

    void runOne();

    Tick now_ = 0;
    std::uint64_t next_seq_ = 0;
    /**
     * Binary min-heap on (when, seq). A simulated run is almost pure
     * push/pop-min churn (every periodic component reschedules itself
     * each wake), which the flat array serves without the per-node
     * allocation and pointer chasing of the former std::map — see
     * BM_EventQueueChurn.
     */
    std::vector<Item> heap_;
};

} // namespace jtps::sim

#endif // JTPS_SIM_EVENT_QUEUE_HH
