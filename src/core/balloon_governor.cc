#include "core/balloon_governor.hh"

#include <algorithm>

#include "base/logging.hh"

namespace jtps::core
{

BalloonGovernor::BalloonGovernor(std::vector<guest::GuestOs *> guests,
                                 const analysis::WssEstimator &wss,
                                 const BalloonGovernorConfig &cfg,
                                 StatSet &stats)
    : guests_(std::move(guests)), wss_(wss), cfg_(cfg), stats_(stats),
      stat_resizes_(stats.counter("balloon.wss_resizes")),
      stat_backoffs_(stats.counter("balloon.refault_backoffs"))
{
    jtps_assert(!guests_.empty());
    vm_state_.resize(guests_.size());
}

void
BalloonGovernor::dropGuest(VmId vm)
{
    jtps_assert(vm < guests_.size());
    guests_[vm] = nullptr;
    vm_state_[vm] = {};
}

void
BalloonGovernor::addGuest(guest::GuestOs *guest)
{
    jtps_assert(guest != nullptr);
    guests_.push_back(guest);
    vm_state_.emplace_back();
}

std::uint64_t
BalloonGovernor::targetPages(VmId vm) const
{
    jtps_assert(vm < guests_.size());
    jtps_assert(guests_[vm] != nullptr);
    const std::uint64_t guest_pages = guests_[vm]->guestPages();
    const std::uint64_t keep = wss_.wssPages(vm) + cfg_.slackPages +
                               vm_state_[vm].extraSlackPages;
    return guest_pages > keep ? guest_pages - keep : 0;
}

void
BalloonGovernor::step()
{
    // The estimator reports 0 for every VM until its second window
    // (one sample cannot bound a window's writes). Acting on that
    // would target guestPages - slack — ballooning essentially the
    // whole guest at the first interval. Sit the warm-up out.
    if (wss_.samples() < 2)
        return;
    std::uint64_t total_target = 0;
    std::uint64_t total_held = 0;
    for (VmId vm = 0; vm < guests_.size(); ++vm) {
        if (guests_[vm] == nullptr)
            continue; // retired mid-run (dropGuest)
        guest::GuestOs &os = *guests_[vm];
        VmState &st = vm_state_[vm];

        // Refault feedback: the estimator cannot see reads, so a
        // guest re-reading reclaimed page cache from disk is the only
        // evidence the balloon bit into live memory. React AIMD-style
        // — double-ish the protected slack while it thrashes, creep
        // back down while it does not — so the loop hunts for the
        // largest balloon the guest tolerates instead of pinning the
        // guest at its write working set.
        const std::uint64_t misses = os.cacheMisses();
        const std::uint64_t delta = misses - st.lastCacheMisses;
        st.lastCacheMisses = misses;
        bool thrashing = false;
        if (cfg_.refaultTolerance > 0) {
            if (delta > cfg_.refaultTolerance) {
                thrashing = true;
                st.extraSlackPages = std::min(
                    os.guestPages(),
                    st.extraSlackPages * 4 + cfg_.slackPages);
                ++stat_backoffs_;
            } else if (st.extraSlackPages > 0) {
                // Decay far slower than growth so the loop parks near
                // the discovered ceiling instead of re-thrashing the
                // guest every few intervals.
                st.extraSlackPages -=
                    std::max<std::uint64_t>(st.extraSlackPages / 64, 1);
            }
        }

        const std::uint64_t target = targetPages(vm);
        total_target += target;
        const std::uint64_t held = os.balloonHeldPages();
        if (target > held && !thrashing) {
            std::uint64_t want = target - held;
            if (cfg_.maxStepPages > 0)
                want = std::min(want, cfg_.maxStepPages);
            // May saturate below `want` when the guest has nothing
            // reclaimable left; the next step retries against a fresh
            // estimate.
            if (os.balloonTake(want) > 0) {
                ++resizes_;
                ++stat_resizes_;
            }
        } else if (held > target) {
            // Deflation is never stepped: giving memory back to a
            // guest is free and safe, and a thrashing guest must not
            // wait maxStepPages-sized intervals for relief.
            os.balloonReturn(held - target);
            ++resizes_;
            ++stat_resizes_;
        }
        total_held += os.balloonHeldPages();
    }
    stats_.set("balloon.target_pages", total_target);
    stats_.set("balloon.held_pages", total_held);
}

void
BalloonGovernor::attach(sim::EventQueue &queue)
{
    attached_ = true;
    queue.schedulePeriodic(cfg_.intervalMs, [this]() {
        if (!attached_)
            return false;
        step();
        return true;
    });
}

} // namespace jtps::core
