/**
 * @file
 * Scenario orchestration: the paper's experimental setup as a public
 * API.
 *
 * A Scenario assembles the full stack — host, KVM hypervisor, KSM
 * scanner, guest VMs with booted kernels and daemons, one Java
 * application server per guest, closed-loop client drivers — and runs
 * the paper's measurement protocol:
 *
 *   1. startup: guests boot, WAS starts, startup classes load
 *      (through a copied shared class cache when class sharing is on);
 *   2. warm-up: KSM scans aggressively (pages_to_scan = 10,000, ~25%
 *      CPU) while DayTrader-style load warms the JVMs — the paper's
 *      "first three minutes";
 *   3. steady state: KSM throttled to 1,000 pages (~2% CPU) while the
 *      client drivers run; measurements are taken at the end.
 *
 * Class-sharing deployment follows §IV.C: the cache is populated once
 * per middleware (on the base image) and the same file is copied to
 * every VM — or, for the ablation, repopulated independently in each VM
 * (same classes, different layout, no cross-VM sharing).
 */

#ifndef JTPS_CORE_SCENARIO_HH
#define JTPS_CORE_SCENARIO_HH

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/accounting.hh"
#include "analysis/forensics.hh"
#include "analysis/report.hh"
#include "analysis/sharing_monitor.hh"
#include "analysis/wss_estimator.hh"
#include "core/balloon_governor.hh"
#include "base/stats.hh"
#include "base/trace.hh"
#include "guest/guest_os.hh"
#include "hv/hypervisor.hh"
#include "hv/intent_log.hh"
#include "jvm/java_vm.hh"
#include "jvm/shared_class_cache.hh"
#include "ksm/ksm_scanner.hh"
#include "sim/event_queue.hh"
#include "workload/client_driver.hh"
#include "workload/workload_spec.hh"

namespace jtps::core
{

/** Scenario-wide configuration. */
struct ScenarioConfig
{
    hv::HostConfig host;               //!< Table I (6 GB RAM default)
    guest::KernelConfig kernel;        //!< guest kernel footprint
    Bytes vmOverheadBytes = 48 * MiB;  //!< QEMU process per VM
    ksm::KsmConfig ksm;                //!< steady-state tuning
    std::uint32_t ksmWarmupPagesToScan = 10000; //!< paper's warm-up rate

    Tick warmupMs = 60'000;  //!< aggressive-KSM warm-up phase
    Tick steadyMs = 120'000; //!< measured steady-state phase
    Tick epochMs = 2'000;    //!< driver epoch length

    std::uint64_t seed = 42;

    /**
     * Host identity stamped into this scenario's run documents: the
     * StatSet scope and the trace stream's scope label. Multi-host
     * runs (the cluster layer) set one label per host so merged
     * registries and traces stay distinguishable; "" (the default)
     * keeps single-host documents byte-identical to the unlabeled
     * format.
     */
    std::string hostLabel;

    /** Enable the paper's technique (class sharing + copied cache). */
    bool enableClassSharing = false;
    /** What the cache stores (middleware-only is the paper's setup). */
    jvm::CacheScope cacheScope = jvm::CacheScope::MiddlewareOnly;
    /**
     * true  — populate once, copy the file to every VM (the paper);
     * false — populate independently inside each VM (ablation: same
     *         classes, different layout, no cross-VM page equality).
     */
    bool copyCacheToAllVms = true;
    /**
     * AOT section budget added to each populated cache (0 disables).
     * Workloads opt in via WorkloadSpec::useAotCache.
     */
    Bytes aotCacheBytes = 0;
    /** Methods eligible for AOT storage (in hot order). */
    std::uint32_t aotMethodCount = 1500;
    /** Average stored AOT body size. */
    Bytes aotAvgMethodBytes = 18 * KiB;

    double diskIops = 120.0;      //!< host swap-disk fault capacity
    double diskLatencyMs = 5.0;   //!< unloaded page-in latency

    /** Small non-Java daemons booted in each guest. */
    bool spawnDaemons = true;

    /**
     * Guests run with transparent huge pages on anonymous process
     * memory (defeats KSM on those regions; the THP ablation measures
     * the interaction with the paper's technique).
     */
    bool guestThp = false;

    /**
     * Worker threads for the forensics walk and accounting collapse in
     * snapshot()/account(). Results are byte-identical at any value
     * (the reduce replays the serial order); 1 keeps analysis fully
     * serial.
     */
    unsigned analysisThreads = 1;

    /**
     * Worker threads for the KSM scan's classify phase (overrides
     * ksm.scanThreads at build()). Like analysisThreads, a pure
     * machine-sizing knob: merges, counters and traces are
     * byte-identical at any value because all scan mutations replay
     * serially in canonical order (docs/PERF.md); <= 1 keeps the scan
     * fully serial.
     */
    unsigned ksmScanThreads = 1;

    /**
     * Digest shards for the KSM commit phase (overrides
     * ksm.commitShards at build()). >= 2 partitions the merge indexes
     * by digest and commits each batch as that many independent shard
     * jobs plus a serial reduce (ksm::KsmConfig::commitShards) —
     * another machine-sizing knob: results are byte-identical at any
     * value, only `ksm.commit_shards` / `ksm.shard_imbalance_max`
     * move. Must divide 64; ignored under PML mode.
     */
    unsigned ksmCommitShards = 1;

    /**
     * Kernel window size for the scanner's batched content stage
     * (overrides ksm.batchPages at build()). Another machine-sizing
     * knob: merges, counters and traces are byte-identical at any
     * value — only the `ksm.batch_*` accounting moves. 1 disables the
     * staging and reproduces the one-page-at-a-time visit exactly;
     * clamped to [1, 128].
     */
    std::uint32_t ksmBatchPages = 16;

    /**
     * Per-VM Page-Modification-Log ring size in slots (see
     * hv::HostConfig::pmlRingSlots). Non-zero overrides host.pmlRingSlots
     * AND switches the KSM scanner to its log-driven pass mode
     * (ksm::KsmConfig::usePml) — O(dirty) passes, byte-identical
     * merges. 0 keeps the generation-walk scanner and no rings.
     */
    std::uint32_t pmlRingSlots = 0;

    /**
     * Replace the fixed, hand-sized balloons of the paper's §VI
     * comparison with the adaptive core::BalloonGovernor: every
     * balloonIntervalMs each guest's balloon is resized to its
     * PML-estimated working set plus balloonSlackBytes. Requires
     * pmlRingSlots > 0 (the estimator reads the rings).
     */
    bool adaptiveBalloon = false;
    /** Working-set slack the governor leaves each guest. */
    Bytes balloonSlackBytes = 32 * MiB;
    /** Governor control-loop period. */
    Tick balloonIntervalMs = 2000;
    /**
     * Per-interval cap on balloon resizes (BalloonGovernorConfig::
     * maxStepPages). Bounds the reclaim burst one governor step can
     * ask a guest for — a cold estimator plus a big guest would
     * otherwise request hundreds of thousands of page reclaims in
     * one simulated instant. Kept small relative to the page-cache
     * refill rate: a probe that bites live cache must be cheap to
     * undo, since dropped pages come back one disk read at a time.
     */
    Bytes balloonMaxStepBytes = 16 * MiB;
    /** Working-set sampling window (analysis::WssConfig::windowMs). */
    Tick wssWindowMs = 2000;

    /**
     * Worker threads for the guest-mutator stage phase: each epoch
     * tick, the per-VM driver work stages concurrently (guest-local
     * state + a write-intent log per VM) and all hypervisor effects
     * replay serially in VM-id order, so counters, traces and frame
     * state are byte-identical at any value >= 1. 1 stages inline
     * (serial, same stage/commit split). 0 bypasses staging entirely
     * and runs the legacy direct path — the reference mode the
     * equivalence fuzzes compare against; the `sim.*` staging
     * counters stay 0 there.
     */
    unsigned guestThreads = 1;
};

/**
 * A complete virtualized-host experiment.
 */
class Scenario
{
  public:
    /**
     * @param cfg Scenario configuration.
     * @param per_vm_workloads One workload per guest VM (all four
     *        paper workloads can be mixed, as in Fig. 3(b)).
     */
    Scenario(const ScenarioConfig &cfg,
             std::vector<workload::WorkloadSpec> per_vm_workloads);
    ~Scenario();

    Scenario(const Scenario &) = delete;
    Scenario &operator=(const Scenario &) = delete;

    /** Create the host, guests, JVMs and drivers; boot everything. */
    void build();

    /** Run warm-up + steady state (build() must have run). */
    void run();

    /** Run only @p ms more simulated time (for custom protocols). */
    void runFor(Tick ms);

    // ------------------------------------------------------------------
    // VM lifecycle (live migration support, cluster layer)
    // ------------------------------------------------------------------

    /**
     * Retire VM @p i mid-run: its driver stops at the next epoch
     * boundary and every page it owns — guest memory and VM-process
     * overhead — is released (hv::Hypervisor::releaseVmMemory). The
     * guest/JVM/driver objects stay so ids and names remain dense;
     * vmActive(i) turns false and the VM's later epoch rows read as
     * all-zero. Call between runFor() slices (not from inside an
     * event). This is the source half of a migration or a poweroff.
     */
    void retireVm(std::size_t i);

    /**
     * Build, boot and start driving a new VM mid-run (the destination
     * half of a migration): full guest + JVM + driver construction,
     * class-set/cache wiring included, at the next free VM id. Call
     * between runFor() slices. @return the new VM's index.
     */
    std::size_t addVm(const workload::WorkloadSpec &spec);

    /** False once retireVm(i) ran. */
    bool vmActive(std::size_t i) const { return active_[i]; }

    /** VMs not yet retired. */
    std::size_t activeVmCount() const;

    // ------------------------------------------------------------------
    // Measurement
    // ------------------------------------------------------------------

    /** Capture the three-layer translation walk (analysisThreads-wide,
     *  counted in `forensics.walk_shards`). */
    analysis::Snapshot snapshot();

    /** Owner-oriented accounting of a fresh snapshot. */
    analysis::OwnerAccounting account();

    /** Names of all VMs in id order. */
    std::vector<std::string> vmNames() const;

    /** Rows identifying each guest's Java process (for reports). */
    std::vector<analysis::JavaProcRow> javaRows() const;

    /**
     * Aggregate achieved throughput (requests/s summed over VMs),
     * averaged over the most recent @p epochs epochs.
     */
    double aggregateThroughput(std::size_t epochs = 5) const;

    /** Per-VM achieved throughput averaged over recent epochs. */
    std::vector<double> perVmThroughput(std::size_t epochs = 5) const;

    /** Per-VM average response time over recent epochs. */
    std::vector<double> perVmResponseMs(std::size_t epochs = 5) const;

    /** One row per completed epoch, one EpochResult per VM (retired
     *  VMs read all-zero). The cluster layer consumes new rows after
     *  each round for its fleet-level SLA accounting. */
    const std::vector<std::vector<workload::ClientDriver::EpochResult>> &
    epochHistory() const
    {
        return epoch_history_;
    }

    /** The workload spec VM @p i was built from. */
    const workload::WorkloadSpec &
    workloadSpec(std::size_t i) const
    {
        return specs_[i];
    }

    // ------------------------------------------------------------------
    // Component access
    // ------------------------------------------------------------------

    hv::KvmHypervisor &hv() { return *hv_; }
    const hv::KvmHypervisor &hv() const { return *hv_; }
    ksm::KsmScanner &ksm() { return *ksm_; }
    guest::GuestOs &guest(std::size_t i) { return *guests_[i]; }
    jvm::JavaVm &javaVm(std::size_t i) { return *jvms_[i]; }
    workload::ClientDriver &driver(std::size_t i) { return *drivers_[i]; }
    std::size_t vmCount() const { return guests_.size(); }
    StatSet &stats() { return stats_; }
    sim::EventQueue &queue() { return queue_; }
    workload::HostDisk &disk() { return disk_; }

    /**
     * The scenario's trace sink. Wired into the hypervisor (and from
     * there the swap device, scanner and guest models) by build(), but
     * disabled until trace().enable() is called, so untraced runs stay
     * at full speed.
     */
    TraceBuffer &trace() { return trace_; }
    const TraceBuffer &trace() const { return trace_; }

    /**
     * Attach a SharingMonitor sampling every @p period_ms of simulated
     * time (call after build(), before run()). Idempotent: a second
     * call returns the existing monitor without rescheduling.
     */
    analysis::SharingMonitor &attachSharingMonitor(Tick period_ms = 2000);

    /** The attached monitor, or nullptr if none was requested. */
    analysis::SharingMonitor *monitor() { return monitor_.get(); }
    const analysis::SharingMonitor *monitor() const
    {
        return monitor_.get();
    }

    /** The working-set estimator (nullptr unless adaptiveBalloon). */
    analysis::WssEstimator *wss() { return wss_.get(); }

    /** The balloon governor (nullptr unless adaptiveBalloon). */
    BalloonGovernor *balloonGovernor() { return governor_.get(); }

  private:
    void scheduleEpochs();
    void scheduleEpochBlock();
    void scheduleStagedVm(std::size_t i, std::uint64_t gen);
    void prepareVmArtifacts(std::size_t i);
    void buildVm(std::size_t i);

    ScenarioConfig cfg_;
    /** Deque, not vector: ClientDriver keeps a reference to its spec,
     *  and addVm() must not invalidate it. */
    std::deque<workload::WorkloadSpec> specs_;

    StatSet stats_;
    TraceBuffer trace_;
    sim::EventQueue queue_;
    workload::HostDisk disk_;
    std::unique_ptr<analysis::SharingMonitor> monitor_;

    std::unique_ptr<hv::KvmHypervisor> hv_;
    std::unique_ptr<ksm::KsmScanner> ksm_;
    std::unique_ptr<analysis::WssEstimator> wss_;
    std::unique_ptr<BalloonGovernor> governor_;
    std::vector<std::unique_ptr<guest::GuestOs>> guests_;
    std::vector<std::unique_ptr<jvm::JavaVm>> jvms_;
    std::vector<std::unique_ptr<workload::ClientDriver>> drivers_;

    /** One class set per distinct program. */
    std::map<std::string, std::unique_ptr<jvm::ClassSet>> class_sets_;
    /** Cache per (middleware cache name [, vm]) depending on copy mode. */
    std::vector<std::unique_ptr<jvm::SharedClassCache>> caches_;
    std::vector<const jvm::SharedClassCache *> vm_cache_;
    /** Copy-mode cache lookup (one population per cache name). */
    std::map<std::string, const jvm::SharedClassCache *> cache_by_name_;

    /** Per-epoch per-VM results, appended as epochs run. */
    std::vector<std::vector<workload::ClientDriver::EpochResult>>
        epoch_history_;
    /** Results of the epoch currently draining (staged layout). */
    std::vector<workload::ClientDriver::EpochResult> epoch_current_;
    /** One write-intent log per VM, reused across epochs. */
    std::vector<hv::WriteIntentLog> intent_logs_;
    /** Staging counters (registered at build, bumped in commits). */
    std::uint64_t *guest_shards_ = nullptr;
    std::uint64_t *intent_commits_ = nullptr;
    std::uint64_t *stage_fallbacks_ = nullptr;
    /** Per-VM liveness (retireVm clears; epoch events skip inactive). */
    std::vector<bool> active_;
    /**
     * Epoch-schedule generation. retireVm()/addVm() change the VM
     * population, which must reshape the per-tick epoch block (begin
     * event, one owned event per active VM, end event) while copies of
     * the old block are already queued for the next tick. Instead of
     * hunting those down, the generation is bumped and a whole new
     * block scheduled: every epoch event captured its generation at
     * scheduling and cancels itself (periodic returns false, owned
     * stage/commit no-op without rescheduling) when it wakes stale.
     * Stale events carry lower sequence numbers, so within the
     * switch-over tick they die first and the new block still runs in
     * canonical begin -> VMs -> end order.
     */
    std::uint64_t epoch_gen_ = 0;
    bool built_ = false;
    bool epochs_scheduled_ = false;
};

} // namespace jtps::core

#endif // JTPS_CORE_SCENARIO_HH
