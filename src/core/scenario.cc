#include "core/scenario.hh"

#include <iterator>

#include "base/hash.hh"
#include "base/logging.hh"

namespace jtps::core
{

Scenario::Scenario(const ScenarioConfig &cfg,
                   std::vector<workload::WorkloadSpec> per_vm_workloads)
    : cfg_(cfg),
      specs_(std::make_move_iterator(per_vm_workloads.begin()),
             std::make_move_iterator(per_vm_workloads.end())),
      disk_(cfg.diskIops, cfg.diskLatencyMs)
{
    jtps_assert(!specs_.empty());
}

Scenario::~Scenario() = default;

void
Scenario::build()
{
    jtps_assert(!built_);
    built_ = true;

    // Host identity: a presentation label only. Counter names, trace
    // payloads and all simulation state are scope-free, so a labeled
    // host simulates byte-identically to an unlabeled one.
    stats_.setScope(cfg_.hostLabel);
    trace_.setScope(cfg_.hostLabel);

    hv::HostConfig hcfg = cfg_.host;
    if (cfg_.pmlRingSlots > 0)
        hcfg.pmlRingSlots = cfg_.pmlRingSlots;
    hv_ = std::make_unique<hv::KvmHypervisor>(hcfg, stats_);
    // Staged guest execution: register the counters at zero (so every
    // registry carries them regardless of mode) and size the queue's
    // stage pool. guestThreads == 0 keeps the legacy direct epoch
    // path; the counters then stay 0.
    guest_shards_ = &stats_.counter("sim.guest_shards");
    intent_commits_ = &stats_.counter("sim.intent_commits");
    stage_fallbacks_ = &stats_.counter("sim.stage_fallbacks");
    // Balloon/WSS counters are registered whether or not the adaptive
    // governor runs, so every registry has the same shape.
    stats_.counter("balloon.wss_resizes");
    stats_.counter("wss.samples");
    queue_.setStageThreads(cfg_.guestThreads);
    // Wire (but do not enable) tracing: the hypervisor fans the sink
    // out to the swap device, and the scanner/guests reach it through
    // hv().trace(). Events are stamped with simulated time.
    trace_.setClock([this]() { return queue_.now(); });
    hv_->setTrace(&trace_);
    ksm::KsmConfig kcfg = cfg_.ksm;
    kcfg.scanThreads = cfg_.ksmScanThreads;
    kcfg.commitShards = cfg_.ksmCommitShards;
    kcfg.batchPages = cfg_.ksmBatchPages;
    if (cfg_.pmlRingSlots > 0)
        kcfg.usePml = true;
    ksm_ = std::make_unique<ksm::KsmScanner>(*hv_, kcfg, stats_);

    // Build every VM: class-set/cache artifacts first, then the guest
    // stack. Artifact synthesis is pure construction (no hypervisor or
    // queue state), so interleaving it per VM leaves the sequence of
    // host-visible mutations identical to building in separate loops.
    vm_cache_.assign(specs_.size(), nullptr);
    active_.assign(specs_.size(), true);
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        prepareVmArtifacts(i);
        buildVm(i);
    }
}

void
Scenario::prepareVmArtifacts(std::size_t i)
{
    const auto &spec = specs_[i];

    // Synthesize each distinct program's class set once: the classes
    // are a property of the installed software, not of a VM.
    const std::string &key = spec.classSpec.programName;
    if (!class_sets_.count(key)) {
        class_sets_.emplace(key, std::make_unique<jvm::ClassSet>(
                                     jvm::ClassSet::synthesize(
                                         spec.classSpec)));
    }

    // Populate shared class caches. With copyCacheToAllVms (the paper's
    // §IV.C deployment) one population per middleware cache name is
    // copied everywhere; otherwise each VM populates its own cache with
    // a per-VM salt (identical classes, different layout).
    if (!cfg_.enableClassSharing)
        return;
    if (cfg_.copyCacheToAllVms) {
        auto it = cache_by_name_.find(spec.cacheName);
        if (it == cache_by_name_.end()) {
            caches_.push_back(std::make_unique<jvm::SharedClassCache>(
                jvm::SharedClassCache::build(
                    *class_sets_.at(spec.classSpec.programName),
                    spec.cacheName, spec.sharedCacheBytes,
                    cfg_.cacheScope)));
            if (cfg_.aotCacheBytes > 0) {
                caches_.back()->addAotSection(cfg_.aotMethodCount,
                                              cfg_.aotAvgMethodBytes,
                                              cfg_.aotCacheBytes);
            }
            it = cache_by_name_
                     .emplace(spec.cacheName, caches_.back().get())
                     .first;
        }
        vm_cache_[i] = it->second;
    } else {
        caches_.push_back(std::make_unique<jvm::SharedClassCache>(
            jvm::SharedClassCache::build(
                *class_sets_.at(spec.classSpec.programName),
                spec.cacheName, spec.sharedCacheBytes, cfg_.cacheScope,
                /*population_salt=*/i + 1)));
        vm_cache_[i] = caches_.back().get();
    }
}

void
Scenario::buildVm(std::size_t i)
{
    // Guest: create the VM, boot the kernel, start daemons, start WAS.
    const auto &spec = specs_[i];
    const std::string vm_name = "VM" + std::to_string(i + 1);
    const VmId vm_id = hv_->createVm(vm_name, spec.guestMemBytes,
                                     cfg_.vmOverheadBytes);
    jtps_assert(vm_id == i);

    guests_.push_back(std::make_unique<guest::GuestOs>(
        *hv_, vm_id, vm_name, hash3(cfg_.seed, stringTag("guest"), i)));
    guest::GuestOs &os = *guests_.back();
    os.setThpEnabled(cfg_.guestThp);
    os.bootKernel(cfg_.kernel);

    if (cfg_.spawnDaemons) {
        os.spawnDaemon("sshd", 2 * MiB, 1536 * KiB);
        os.spawnDaemon("syslogd", 1 * MiB, 512 * KiB);
        os.spawnDaemon("crond", 1 * MiB, 512 * KiB);
        os.spawnDaemon("snmpd", 2 * MiB, 1 * MiB);
    }

    jvm::JavaVmConfig jcfg = workload::makeJvmConfig(
        spec, *class_sets_.at(spec.classSpec.programName), vm_cache_[i]);
    jvms_.push_back(
        std::make_unique<jvm::JavaVm>(os, jcfg, "was-server"));
    jvms_.back()->start();

    drivers_.push_back(std::make_unique<workload::ClientDriver>(
        *jvms_.back(), specs_[i], disk_));
}

analysis::SharingMonitor &
Scenario::attachSharingMonitor(Tick period_ms)
{
    jtps_assert(built_);
    if (!monitor_) {
        monitor_ =
            std::make_unique<analysis::SharingMonitor>(*hv_, *ksm_);
        monitor_->sample(queue_.now()); // t=0 baseline point
        monitor_->attach(queue_, period_ms);
    }
    return *monitor_;
}

void
Scenario::scheduleEpochs()
{
    if (epochs_scheduled_)
        return;
    epochs_scheduled_ = true;

    if (cfg_.adaptiveBalloon) {
        // The estimator piggybacks on the scanner's ring drains
        // (pmlRingSlots forces usePml), so it must not reset the
        // rings itself.
        jtps_assert(cfg_.pmlRingSlots > 0);
        analysis::WssConfig wcfg;
        wcfg.windowMs = cfg_.wssWindowMs;
        wcfg.drainRings = false;
        wss_ = std::make_unique<analysis::WssEstimator>(*hv_, wcfg,
                                                        stats_);
        wss_->attach(queue_);
        std::vector<guest::GuestOs *> ptrs;
        ptrs.reserve(guests_.size());
        for (auto &g : guests_)
            ptrs.push_back(g.get());
        BalloonGovernorConfig bcfg;
        bcfg.intervalMs = cfg_.balloonIntervalMs;
        bcfg.slackPages = bytesToPages(cfg_.balloonSlackBytes);
        bcfg.maxStepPages = bytesToPages(cfg_.balloonMaxStepBytes);
        governor_ = std::make_unique<BalloonGovernor>(
            std::move(ptrs), *wss_, bcfg, stats_);
        governor_->attach(queue_);
    }

    scheduleEpochBlock();
}

void
Scenario::scheduleEpochBlock()
{
    // Every event captures the generation it was scheduled under and
    // cancels itself when it wakes stale (see epoch_gen_). retireVm/
    // addVm bump the generation and re-call this to reshape the block.
    const std::uint64_t gen = epoch_gen_;

    if (cfg_.guestThreads == 0) {
        // Legacy direct execution: one serial event runs every VM's
        // epoch straight through the hypervisor. Reference mode for
        // the staged-equivalence fuzzes.
        queue_.schedulePeriodic(cfg_.epochMs, [this, gen]() {
            if (gen != epoch_gen_)
                return false;
            disk_.beginEpoch(cfg_.epochMs);
            std::vector<workload::ClientDriver::EpochResult> results(
                drivers_.size());
            for (std::size_t i = 0; i < drivers_.size(); ++i) {
                if (active_[i])
                    results[i] = drivers_[i]->runEpoch(cfg_.epochMs);
            }
            disk_.endEpoch();
            epoch_history_.push_back(std::move(results));
            return true;
        });
        return;
    }

    // Staged layout: an unowned begin event, one owned stage/commit
    // event per VM, and an unowned end event. All are scheduled (and
    // self-rescheduled) in this order within each epoch drain, so
    // their sequence numbers stay consecutive: any other periodic
    // event (KSM scan, monitor samples) that lands on the same tick
    // sorts entirely before or after the epoch block, exactly as it
    // did relative to the legacy single event.
    queue_.schedulePeriodic(cfg_.epochMs, [this, gen]() {
        if (gen != epoch_gen_)
            return false;
        disk_.beginEpoch(cfg_.epochMs);
        epoch_current_.assign(drivers_.size(), {});
        return true;
    });
    intent_logs_.resize(drivers_.size());
    for (std::size_t i = 0; i < drivers_.size(); ++i) {
        if (active_[i])
            scheduleStagedVm(i, gen);
    }
    queue_.schedulePeriodic(cfg_.epochMs, [this, gen]() {
        if (gen != epoch_gen_)
            return false;
        disk_.endEpoch();
        epoch_history_.push_back(epoch_current_);
        return true;
    });
}

void
Scenario::scheduleStagedVm(std::size_t i, std::uint64_t gen)
{
    queue_.scheduleOwnedAt(
        queue_.now() + cfg_.epochMs, i,
        /*stage=*/
        [this, i, gen]() {
            if (gen != epoch_gen_ || !active_[i])
                return false;
            return drivers_[i]->stageEpoch(cfg_.epochMs,
                                           intent_logs_[i]);
        },
        /*commit=*/
        [this, i, gen](bool staged) {
            if (gen != epoch_gen_ || !active_[i]) {
                // Stale copy from before a retire/add, or the VM
                // itself was retired: die without rescheduling (and
                // without counting a fallback — nothing ran).
                intent_logs_[i].clear();
                return;
            }
            if (staged) {
                ++*guest_shards_;
                *intent_commits_ += intent_logs_[i].size();
                epoch_current_[i] =
                    drivers_[i]->commitEpoch(cfg_.epochMs,
                                             intent_logs_[i]);
                intent_logs_[i].clear();
            } else {
                // Not stageable this tick (guest too close to
                // internal reclaim): run directly, still at this
                // VM's canonical slot in the commit order.
                ++*stage_fallbacks_;
                epoch_current_[i] = drivers_[i]->runEpoch(cfg_.epochMs);
            }
            scheduleStagedVm(i, gen);
        });
}

void
Scenario::retireVm(std::size_t i)
{
    jtps_assert(built_);
    jtps_assert(i < guests_.size());
    jtps_assert(active_[i]);
    active_[i] = false;
    if (governor_)
        governor_->dropGuest(static_cast<VmId>(i));
    hv_->releaseVmMemory(static_cast<VmId>(i));
    if (epochs_scheduled_) {
        ++epoch_gen_;
        scheduleEpochBlock();
    }
}

std::size_t
Scenario::addVm(const workload::WorkloadSpec &spec)
{
    jtps_assert(built_);
    const std::size_t i = specs_.size();
    specs_.push_back(spec);
    vm_cache_.push_back(nullptr);
    active_.push_back(true);
    prepareVmArtifacts(i);
    buildVm(i);
    if (governor_)
        governor_->addGuest(guests_.back().get());
    if (epochs_scheduled_) {
        ++epoch_gen_;
        scheduleEpochBlock();
    }
    return i;
}

std::size_t
Scenario::activeVmCount() const
{
    std::size_t n = 0;
    for (bool a : active_)
        n += a ? 1 : 0;
    return n;
}

void
Scenario::run()
{
    jtps_assert(built_);

    // Warm-up: paper's aggressive scanning while WAS and the benchmark
    // initialize.
    ksm_->setPagesToScan(cfg_.ksmWarmupPagesToScan);
    ksm_->attach(queue_);
    scheduleEpochs();
    queue_.runUntil(queue_.now() + cfg_.warmupMs);

    // Steady state: throttle the scanner as the paper does during
    // measurements.
    ksm_->setPagesToScan(cfg_.ksm.pagesToScan);
    queue_.runUntil(queue_.now() + cfg_.steadyMs);
}

void
Scenario::runFor(Tick ms)
{
    jtps_assert(built_);
    scheduleEpochs();
    queue_.runUntil(queue_.now() + ms);
}

analysis::Snapshot
Scenario::snapshot()
{
    std::vector<const guest::GuestOs *> ptrs;
    ptrs.reserve(guests_.size());
    for (const auto &g : guests_)
        ptrs.push_back(g.get());
    return analysis::captureSnapshot(*hv_, ptrs, cfg_.analysisThreads,
                                     &stats_);
}

analysis::OwnerAccounting
Scenario::account()
{
    analysis::Snapshot snap = snapshot();
    return analysis::OwnerAccounting(snap, cfg_.analysisThreads);
}

std::vector<std::string>
Scenario::vmNames() const
{
    std::vector<std::string> names;
    names.reserve(guests_.size());
    for (const auto &g : guests_)
        names.push_back(g->name());
    return names;
}

std::vector<analysis::JavaProcRow>
Scenario::javaRows() const
{
    std::vector<analysis::JavaProcRow> rows;
    for (std::size_t i = 0; i < jvms_.size(); ++i) {
        rows.push_back({"JVM" + std::to_string(i + 1),
                        static_cast<VmId>(i), jvms_[i]->pid()});
    }
    return rows;
}

double
Scenario::aggregateThroughput(std::size_t epochs) const
{
    if (epoch_history_.empty())
        return 0.0;
    const std::size_t n = std::min(epochs, epoch_history_.size());
    double sum = 0;
    for (std::size_t e = epoch_history_.size() - n;
         e < epoch_history_.size(); ++e) {
        for (const auto &r : epoch_history_[e])
            sum += r.achievedPerSec;
    }
    return sum / static_cast<double>(n);
}

std::vector<double>
Scenario::perVmThroughput(std::size_t epochs) const
{
    std::vector<double> out(drivers_.size(), 0.0);
    if (epoch_history_.empty())
        return out;
    const std::size_t n = std::min(epochs, epoch_history_.size());
    for (std::size_t e = epoch_history_.size() - n;
         e < epoch_history_.size(); ++e) {
        for (std::size_t v = 0; v < epoch_history_[e].size(); ++v)
            out[v] += epoch_history_[e][v].achievedPerSec;
    }
    for (double &v : out)
        v /= static_cast<double>(n);
    return out;
}

std::vector<double>
Scenario::perVmResponseMs(std::size_t epochs) const
{
    std::vector<double> out(drivers_.size(), 0.0);
    if (epoch_history_.empty())
        return out;
    const std::size_t n = std::min(epochs, epoch_history_.size());
    for (std::size_t e = epoch_history_.size() - n;
         e < epoch_history_.size(); ++e) {
        for (std::size_t v = 0; v < epoch_history_[e].size(); ++v)
            out[v] += epoch_history_[e][v].avgResponseMs;
    }
    for (double &v : out)
        v /= static_cast<double>(n);
    return out;
}

} // namespace jtps::core
