#include "core/power_scenario.hh"

#include "base/hash.hh"
#include "base/logging.hh"

namespace jtps::core
{

PowerScenario::PowerScenario(const PowerScenarioConfig &cfg)
    : cfg_(cfg), disk_(1e9, 0.1), // POWER host: no memory pressure here
      spec_(workload::dayTraderPower())
{
}

PowerScenario::~PowerScenario() = default;

void
PowerScenario::build()
{
    hv_ = std::make_unique<hv::PowerVmHypervisor>(cfg_.host, stats_);

    classes_ = std::make_unique<jvm::ClassSet>(
        jvm::ClassSet::synthesize(spec_.classSpec));
    if (cfg_.preloadClasses) {
        cache_ = std::make_unique<jvm::SharedClassCache>(
            jvm::SharedClassCache::build(*classes_, spec_.cacheName,
                                         spec_.sharedCacheBytes));
    }

    for (std::uint32_t i = 0; i < cfg_.numVms; ++i) {
        const std::string name = "LPAR" + std::to_string(i + 1);
        const VmId vm_id = hv_->createVm(name, spec_.guestMemBytes);
        jtps_assert(vm_id == i);
        guests_.push_back(std::make_unique<guest::GuestOs>(
            *hv_, vm_id, name,
            hash3(cfg_.seed, stringTag("aix-guest"), i)));
        guests_.back()->bootKernel(cfg_.kernel);

        jvm::JavaVmConfig jcfg = workload::makeJvmConfig(
            spec_, *classes_, cache_.get());
        jvms_.push_back(std::make_unique<jvm::JavaVm>(
            *guests_.back(), jcfg, "was-server"));
        jvms_.back()->start();

        drivers_.push_back(std::make_unique<workload::ClientDriver>(
            *jvms_.back(), spec_, disk_));
    }

    // Initialize DayTrader (the paper hits the scenario page and warms
    // up before the sharing measurement).
    for (std::uint32_t e = 0; e < cfg_.warmEpochs; ++e) {
        disk_.beginEpoch(cfg_.epochMs);
        for (auto &driver : drivers_)
            driver->runEpoch(cfg_.epochMs);
        disk_.endEpoch();
    }
}

PowerResult
PowerScenario::measure()
{
    PowerResult res;
    res.usageBeforeSharing = hv_->residentBytes();
    hv_->runTps();
    res.usageAfterSharing = hv_->residentBytes();
    return res;
}

} // namespace jtps::core
