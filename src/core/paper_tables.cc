#include "core/paper_tables.hh"

#include "base/table.hh"
#include "base/units.hh"
#include "core/power_scenario.hh"
#include "core/scenario.hh"
#include "workload/workload_spec.hh"

namespace jtps::core
{

std::string
renderTable1()
{
    ScenarioConfig intel;
    PowerScenarioConfig power;

    TextTable t;
    t.addRow({"", "Intel platform (modelled)", "POWER platform (modelled)"});
    t.addRow({"Machine", "IBM BladeCenter LS21", "IBM BladeCenter PS701"});
    t.addRow({"RAM size", formatBytes(intel.host.ramBytes),
              formatBytes(power.host.ramBytes)});
    t.addRow({"Host OS", "RHEL 5.5 (modelled kernel '" +
                             intel.kernel.version + "')",
              "N/A"});
    t.addRow({"Hypervisor", "KVM (process-VM model + KSM)",
              "PowerVM 2.1 (system-VM model)"});
    return t.render();
}

std::string
renderTable2()
{
    ScenarioConfig intel;
    PowerScenarioConfig power;
    auto dt = workload::dayTraderIntel();
    auto sj = workload::specjEnterprise2010();
    auto dtp = workload::dayTraderPower();

    TextTable t;
    t.addRow({"", "Guest VM, Intel platform", "Guest VM, POWER platform"});
    t.addRow({"Guest memory",
              formatBytes(dt.guestMemBytes) + " (DayTrader/TPC-W/Tuscany), " +
                  formatBytes(sj.guestMemBytes) + " (SPECjEnterprise)",
              formatBytes(dtp.guestMemBytes)});
    t.addRow({"OS", "RHEL 5.5 ('" + intel.kernel.version + "')",
              power.kernel.version});
    t.addRow({"KSM scanner",
              std::to_string(intel.ksm.pagesToScan) + " pages per scan, " +
                  std::to_string(intel.ksm.sleepMillisecs) + " ms interval",
              "N/A (firmware TPS)"});
    t.addRow({"WAS version", dt.middleware, dtp.middleware});
    t.addRow({"Java VM", "IBM J9 (Java 6 SR9) [modelled]",
              "IBM J9 (Java 6 SR9) [modelled]"});
    return t.render();
}

std::string
renderTable3()
{
    auto dt = workload::dayTraderIntel();
    auto sj = workload::specjEnterprise2010();
    auto tw = workload::tpcwJava();
    auto tb = workload::tuscanyBigbank();
    auto dtp = workload::dayTraderPower();

    TextTable t;
    t.addRow({"", "DayTrader(Intel)", "SPECjEnterprise", "TPC-W",
              "Tuscany bigbank", "DayTrader(POWER)"});
    t.addRow({"Benchmark version", dt.version, sj.version, tw.version,
              tb.version, dtp.version});
    t.addRow({"Client driver",
              std::to_string(dt.clientThreads) + " threads",
              "injection rate " + std::to_string(sj.clientThreads),
              std::to_string(tw.clientThreads) + " threads",
              std::to_string(tb.clientThreads) + " threads",
              std::to_string(dtp.clientThreads) + " threads"});
    t.addRow({"Java heap (min=max)", formatBytes(dt.gc.heapBytes),
              formatBytes(sj.gc.heapBytes) + " (nursery " +
                  formatBytes(sj.gc.nurseryBytes) + ")",
              formatBytes(tw.gc.heapBytes), formatBytes(tb.gc.heapBytes),
              formatBytes(dtp.gc.heapBytes)});
    t.addRow({"Shared class cache", formatBytes(dt.sharedCacheBytes),
              formatBytes(sj.sharedCacheBytes),
              formatBytes(tw.sharedCacheBytes),
              formatBytes(tb.sharedCacheBytes),
              formatBytes(dtp.sharedCacheBytes)});
    t.addRow({"GC policy", "optthruput", "gencon", "optthruput",
              "optthruput", "optthruput"});
    return t.render();
}

} // namespace jtps::core
