#include "core/placement.hh"

#include <algorithm>
#include <map>

#include "base/hash.hh"
#include "base/logging.hh"
#include "guest/guest_os.hh"

namespace jtps::core
{

namespace
{

/**
 * Per-host incremental planner state: one entry per content tag
 * present on the host, sorted ascending by tag so fingerprint queries
 * are merge walks. The host's estimated sharing over these entries is
 * sum(maxBytes * (count - 1)) — the same owner-oriented estimate
 * estimateHostSharing() computes from scratch.
 */
struct TagEntry
{
    std::uint64_t tag;
    Bytes maxBytes;
    unsigned count;
};

/**
 * Sharing gained by adding @p fp to a host in state @p host: for a
 * tag already present with (maxBytes, count), a copy of b bytes moves
 * the tag's contribution from maxBytes*(count-1) to
 * max(maxBytes, b)*count; absent tags contribute nothing until a
 * second copy arrives. Exactly estimateHostSharing(with) -
 * estimateHostSharing(without), merged in O(|host| + |fp|).
 */
Bytes
marginalGain(const std::vector<TagEntry> &host,
             const SharingFingerprint &fp)
{
    Bytes gain = 0;
    auto h = host.begin();
    for (const auto &[tag, bytes] : fp.components) {
        while (h != host.end() && h->tag < tag)
            ++h;
        if (h != host.end() && h->tag == tag) {
            const Bytes new_max = std::max(h->maxBytes, bytes);
            gain += new_max * h->count - h->maxBytes * (h->count - 1);
        }
    }
    return gain;
}

/** Merge @p fp into @p host (sorted insert / max-count update). */
void
applyToHost(std::vector<TagEntry> &host, const SharingFingerprint &fp)
{
    std::vector<TagEntry> merged;
    merged.reserve(host.size() + fp.components.size());
    auto h = host.begin();
    for (const auto &[tag, bytes] : fp.components) {
        while (h != host.end() && h->tag < tag)
            merged.push_back(*h++);
        if (h != host.end() && h->tag == tag) {
            merged.push_back(
                {tag, std::max(h->maxBytes, bytes), h->count + 1});
            ++h;
        } else {
            merged.push_back({tag, bytes, 1});
        }
    }
    merged.insert(merged.end(), h, host.end());
    host = std::move(merged);
}

} // namespace

SharingFingerprint
SharingFingerprint::forWorkload(const workload::WorkloadSpec &spec,
                                bool class_sharing)
{
    SharingFingerprint fp;

    // Guest kernel image + base-image boot cache: every guest built
    // from the base image carries these.
    guest::KernelConfig kernel;
    fp.setComponent(stringTag(kernel.version + ".text"),
                    kernel.textBytes);
    fp.setComponent(stringTag("base-image:/usr"),
                    kernel.sharedBootCacheBytes);

    // Native library text (tag per image, as GuestOs maps them).
    for (const auto &lib : spec.libs)
        fp.setComponent(stringTag("lib/" + lib.name), lib.textBytes);

    // The copied shared-class-cache archive. The planner only needs a
    // stable identity per (cache name, middleware); the real content
    // tag depends on the population, but equality matches it exactly.
    if (class_sharing) {
        fp.setComponent(
            hashCombine(stringTag(spec.cacheName),
                        stringTag(spec.classSpec.middlewareName)),
            static_cast<Bytes>(spec.sharedCacheBytes * 0.9));
    }

    // Benchmark payload in the NIO buffers (same benchmark => same
    // bytes on the wire).
    fp.setComponent(hashCombine(stringTag("nio-payload"),
                                stringTag(spec.name + spec.version)),
                    spec.nioBufferBytes);

    return fp;
}

void
SharingFingerprint::setComponent(std::uint64_t tag, Bytes bytes)
{
    auto it = std::lower_bound(
        components.begin(), components.end(), tag,
        [](const auto &c, std::uint64_t t) { return c.first < t; });
    if (it != components.end() && it->first == tag)
        it->second = bytes;
    else
        components.insert(it, {tag, bytes});
}

Bytes
SharingFingerprint::sharedWith(const SharingFingerprint &other) const
{
    // Both component lists are tag-sorted: one two-pointer walk.
    Bytes total = 0;
    auto a = components.begin();
    auto b = other.components.begin();
    while (a != components.end() && b != other.components.end()) {
        if (a->first < b->first) {
            ++a;
        } else if (b->first < a->first) {
            ++b;
        } else {
            total += std::min(a->second, b->second);
            ++a;
            ++b;
        }
    }
    return total;
}

Bytes
SharingFingerprint::totalBytes() const
{
    Bytes total = 0;
    for (const auto &kv : components)
        total += kv.second;
    return total;
}

Bytes
PlacementPlanner::estimateHostSharing(
    const std::vector<SharingFingerprint> &fingerprints,
    const std::vector<std::size_t> &members)
{
    // Owner-oriented estimate: for each content tag present on the
    // host, every copy beyond the first is saved.
    std::map<std::uint64_t, std::pair<Bytes, unsigned>> tags;
    for (std::size_t m : members) {
        for (const auto &[tag, bytes] : fingerprints[m].components) {
            auto &entry = tags[tag];
            entry.first = std::max(entry.first, bytes);
            ++entry.second;
        }
    }
    Bytes total = 0;
    for (const auto &[tag, entry] : tags) {
        (void)tag;
        if (entry.second > 1)
            total += entry.first * (entry.second - 1);
    }
    return total;
}

std::vector<std::vector<std::size_t>>
PlacementPlanner::plan(const std::vector<workload::WorkloadSpec> &specs,
                       std::size_t per_host, bool class_sharing)
{
    jtps_assert(per_host > 0);
    const std::size_t hosts =
        (specs.size() + per_host - 1) / per_host;

    std::vector<SharingFingerprint> fps;
    fps.reserve(specs.size());
    for (const auto &spec : specs)
        fps.push_back(SharingFingerprint::forWorkload(spec,
                                                      class_sharing));

    std::vector<std::vector<std::size_t>> placement(hosts);
    std::vector<std::vector<TagEntry>> host_tags(hosts);
    std::vector<bool> placed(specs.size(), false);

    // Greedy: repeatedly take the unplaced VM whose marginal sharing
    // gain on some non-full host is largest (ties: lowest VM index,
    // then lowest host — first candidate wins — so the plan is
    // deterministic). The gain of a candidate is computed against the
    // host's incrementally-maintained tag table instead of two
    // from-scratch host estimates, which is what turns each round
    // from O(members · log) per pair into one merge walk per pair.
    for (std::size_t round = 0; round < specs.size(); ++round) {
        std::size_t best_vm = specs.size();
        std::size_t best_host = hosts;
        Bytes best_gain = 0;
        bool found = false;

        for (std::size_t v = 0; v < specs.size(); ++v) {
            if (placed[v])
                continue;
            for (std::size_t h = 0; h < hosts; ++h) {
                if (placement[h].size() >= per_host)
                    continue;
                const Bytes gain = marginalGain(host_tags[h], fps[v]);
                if (!found || gain > best_gain) {
                    found = true;
                    best_gain = gain;
                    best_vm = v;
                    best_host = h;
                }
            }
        }
        jtps_assert(found);
        placement[best_host].push_back(best_vm);
        applyToHost(host_tags[best_host], fps[best_vm]);
        placed[best_vm] = true;
    }
    return placement;
}

} // namespace jtps::core
