#include "core/placement.hh"

#include <algorithm>

#include "base/hash.hh"
#include "base/logging.hh"
#include "guest/guest_os.hh"

namespace jtps::core
{

SharingFingerprint
SharingFingerprint::forWorkload(const workload::WorkloadSpec &spec,
                                bool class_sharing)
{
    SharingFingerprint fp;

    // Guest kernel image + base-image boot cache: every guest built
    // from the base image carries these.
    guest::KernelConfig kernel;
    fp.components[stringTag(kernel.version + ".text")] =
        kernel.textBytes;
    fp.components[stringTag("base-image:/usr")] =
        kernel.sharedBootCacheBytes;

    // Native library text (tag per image, as GuestOs maps them).
    for (const auto &lib : spec.libs)
        fp.components[stringTag("lib/" + lib.name)] = lib.textBytes;

    // The copied shared-class-cache archive. The planner only needs a
    // stable identity per (cache name, middleware); the real content
    // tag depends on the population, but equality matches it exactly.
    if (class_sharing) {
        fp.components[hashCombine(
            stringTag(spec.cacheName),
            stringTag(spec.classSpec.middlewareName))] =
            static_cast<Bytes>(spec.sharedCacheBytes * 0.9);
    }

    // Benchmark payload in the NIO buffers (same benchmark => same
    // bytes on the wire).
    fp.components[hashCombine(stringTag("nio-payload"),
                              stringTag(spec.name + spec.version))] =
        spec.nioBufferBytes;

    return fp;
}

Bytes
SharingFingerprint::sharedWith(const SharingFingerprint &other) const
{
    Bytes total = 0;
    for (const auto &[tag, bytes] : components) {
        auto it = other.components.find(tag);
        if (it != other.components.end())
            total += std::min(bytes, it->second);
    }
    return total;
}

Bytes
SharingFingerprint::totalBytes() const
{
    Bytes total = 0;
    for (const auto &kv : components)
        total += kv.second;
    return total;
}

Bytes
PlacementPlanner::estimateHostSharing(
    const std::vector<SharingFingerprint> &fingerprints,
    const std::vector<std::size_t> &members)
{
    // Owner-oriented estimate: for each content tag present on the
    // host, every copy beyond the first is saved.
    std::map<std::uint64_t, std::pair<Bytes, unsigned>> tags;
    for (std::size_t m : members) {
        for (const auto &[tag, bytes] : fingerprints[m].components) {
            auto &entry = tags[tag];
            entry.first = std::max(entry.first, bytes);
            ++entry.second;
        }
    }
    Bytes total = 0;
    for (const auto &[tag, entry] : tags) {
        (void)tag;
        if (entry.second > 1)
            total += entry.first * (entry.second - 1);
    }
    return total;
}

std::vector<std::vector<std::size_t>>
PlacementPlanner::plan(const std::vector<workload::WorkloadSpec> &specs,
                       std::size_t per_host, bool class_sharing)
{
    jtps_assert(per_host > 0);
    const std::size_t hosts =
        (specs.size() + per_host - 1) / per_host;

    std::vector<SharingFingerprint> fps;
    fps.reserve(specs.size());
    for (const auto &spec : specs)
        fps.push_back(SharingFingerprint::forWorkload(spec,
                                                      class_sharing));

    std::vector<std::vector<std::size_t>> placement(hosts);
    std::vector<bool> placed(specs.size(), false);

    // Greedy: repeatedly take the unplaced VM whose marginal sharing
    // gain on some non-full host is largest (ties: lowest index, so
    // the plan is deterministic).
    for (std::size_t round = 0; round < specs.size(); ++round) {
        std::size_t best_vm = specs.size();
        std::size_t best_host = hosts;
        Bytes best_gain = 0;
        bool found = false;

        for (std::size_t v = 0; v < specs.size(); ++v) {
            if (placed[v])
                continue;
            for (std::size_t h = 0; h < hosts; ++h) {
                if (placement[h].size() >= per_host)
                    continue;
                auto with = placement[h];
                with.push_back(v);
                const Bytes gain =
                    estimateHostSharing(fps, with) -
                    estimateHostSharing(fps, placement[h]);
                if (!found || gain > best_gain) {
                    found = true;
                    best_gain = gain;
                    best_vm = v;
                    best_host = h;
                }
            }
        }
        jtps_assert(found);
        placement[best_host].push_back(best_vm);
        placed[best_vm] = true;
    }
    return placement;
}

} // namespace jtps::core
