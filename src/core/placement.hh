/**
 * @file
 * Sharing-aware VM placement (Memory Buddies, paper §VI).
 *
 * Wood et al. estimate cross-VM page sharing from per-VM memory
 * fingerprints and collocate VMs that would share most. This module
 * implements the same idea over the simulator's content model: a
 * workload's *sharing fingerprint* is the set of shareable content
 * components it maps (kernel image, base-image cache, library text,
 * the copied shared-class-cache archive, benchmark payloads), each
 * with its shareable size. Two VMs' expected sharing is the overlap of
 * their fingerprints, and a greedy planner packs hosts to maximize it.
 *
 * Fingerprints are sorted flat (tag, bytes) vectors, not maps: every
 * overlap/gain query is a sort-merge walk, which is what keeps the
 * greedy planner usable at fleet sizes (256+ VMs — the cluster layer
 * plans whole datacenters; see BM_PlacementPlan in
 * bench_micro_components).
 */

#ifndef JTPS_CORE_PLACEMENT_HH
#define JTPS_CORE_PLACEMENT_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "base/units.hh"
#include "workload/workload_spec.hh"

namespace jtps::core
{

/** Shareable-content fingerprint of one guest VM. */
struct SharingFingerprint
{
    /**
     * (content tag, shareable bytes) pairs, sorted ascending by tag
     * with unique tags — the representation every query merge-walks.
     * Mutate through setComponent() to keep the invariant.
     */
    std::vector<std::pair<std::uint64_t, Bytes>> components;

    /**
     * Build the fingerprint a guest running @p spec would expose.
     * @param class_sharing Whether the copied shared class cache (and
     *        so its archive tag) is deployed.
     */
    static SharingFingerprint forWorkload(
        const workload::WorkloadSpec &spec, bool class_sharing);

    /** Insert @p tag at its sorted position, or overwrite its bytes. */
    void setComponent(std::uint64_t tag, Bytes bytes);

    /** Expected bytes shareable with another VM: overlap of tags. */
    Bytes sharedWith(const SharingFingerprint &other) const;

    /** Total shareable bytes this VM exposes. */
    Bytes totalBytes() const;
};

/**
 * Greedy sharing-aware packer.
 */
class PlacementPlanner
{
  public:
    /**
     * Place @p specs onto hosts of @p per_host slots each, greedily
     * maximizing the estimated intra-host sharing.
     * @return per-host lists of indices into @p specs.
     */
    static std::vector<std::vector<std::size_t>> plan(
        const std::vector<workload::WorkloadSpec> &specs,
        std::size_t per_host, bool class_sharing);

    /** Estimated sharing if @p members land on one host. */
    static Bytes estimateHostSharing(
        const std::vector<SharingFingerprint> &fingerprints,
        const std::vector<std::size_t> &members);
};

} // namespace jtps::core

#endif // JTPS_CORE_PLACEMENT_HH
