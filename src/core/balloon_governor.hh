/**
 * @file
 * Adaptive balloon governor driven by PML working-set estimates.
 *
 * The paper (§VI) notes KVM ships no balloon policy manager — "we
 * cannot use ballooning unless we install a separate manager" — so
 * its ballooning comparison uses fixed, hand-picked balloon sizes.
 * This is that missing manager: every interval it reads each guest's
 * estimated write working set (analysis::WssEstimator, fed by the
 * hypervisor's PML rings) and resizes the guest's balloon toward
 *
 *     target = guestPages - wssPages - slackPages - extraSlack
 *
 * so a guest keeps its working set plus a slack margin and donates
 * the rest. The dirty log underestimates guests whose working set is
 * read-mostly (page cache), so a refault feedback term protects
 * them: a guest refaulting past refaultTolerance per interval grows
 * its extraSlack multiplicatively, and the slack decays additively
 * once the refaults stop. Inflation goes through
 * guest::GuestOs::balloonTake —
 * the guest reclaims clean page cache first, exactly the "guest
 * knows its own pages" advantage ballooning has over host paging —
 * and may saturate early, in which case the governor simply retries
 * at the next interval with a fresh estimate.
 *
 * Follows the ksm::KsmTuned daemon shape: a config struct, a step()
 * control loop, attach() for periodic operation.
 */

#ifndef JTPS_CORE_BALLOON_GOVERNOR_HH
#define JTPS_CORE_BALLOON_GOVERNOR_HH

#include <cstdint>
#include <vector>

#include "analysis/wss_estimator.hh"
#include "base/stats.hh"
#include "guest/guest_os.hh"
#include "sim/event_queue.hh"

namespace jtps::core
{

/** Governor tuning. */
struct BalloonGovernorConfig
{
    /** Control-loop period (simulated milliseconds). */
    Tick intervalMs = 2000;
    /**
     * Pages left to the guest on top of the estimated working set.
     * The estimate is a lower bound (read-only set and overflow
     * losses are invisible to a dirty log), so this margin is what
     * keeps an adaptive balloon from forcing guest-side reclaim of
     * pages that are actually live.
     */
    std::uint64_t slackPages = 8192;
    /**
     * Largest balloon *inflation* per step per guest, pages (0 = no
     * limit). Bounds the reclaim burst a sudden working-set drop can
     * trigger, like the stepped inflation real balloon managers use.
     * Deflation is never stepped — relief must be immediate.
     */
    std::uint64_t maxStepPages = 0;
    /**
     * Cache refaults (guest disk reads re-filling reclaimed page
     * cache) a guest may take per interval before the governor treats
     * it as thrashing. A dirty log cannot see the read-only working
     * set, so refaults are the signal that the balloon ate live
     * cache: past this tolerance the guest's slack is grown
     * multiplicatively and decayed slowly once the refaults stop
     * (AIMD, like TCP). 0 disables the feedback.
     */
    std::uint64_t refaultTolerance = 64;
};

/**
 * The per-host balloon manager: one step() resizes every guest's
 * balloon toward its current target.
 */
class BalloonGovernor
{
  public:
    /**
     * @param guests One entry per VM, in VM-id order (the estimator
     *        indexes its per-VM estimates the same way).
     */
    BalloonGovernor(std::vector<guest::GuestOs *> guests,
                    const analysis::WssEstimator &wss,
                    const BalloonGovernorConfig &cfg, StatSet &stats);

    /** Run one control-loop step (also called by the periodic event). */
    void step();

    /** Attach the periodic control loop to @p queue. */
    void attach(sim::EventQueue &queue);

    /** Stop the loop at the next firing. */
    void detach() { attached_ = false; }

    /**
     * Stop managing VM @p vm (it was retired/migrated away). Its slot
     * stays so indices keep matching VM ids; step() skips it.
     */
    void dropGuest(VmId vm);

    /** Start managing a guest added mid-run (at the next VM id). */
    void addGuest(guest::GuestOs *guest);

    /** Balloon resize actions taken so far (inflations + deflations). */
    std::uint64_t resizes() const { return resizes_; }

    /** Current balloon target of @p vm in pages. */
    std::uint64_t targetPages(VmId vm) const;

    /** Current refault-feedback slack of @p vm in pages. */
    std::uint64_t extraSlackPages(VmId vm) const
    {
        return vm_state_[vm].extraSlackPages;
    }

  private:
    struct VmState
    {
        std::uint64_t lastCacheMisses = 0;
        std::uint64_t extraSlackPages = 0;
    };

    std::vector<guest::GuestOs *> guests_;
    const analysis::WssEstimator &wss_;
    BalloonGovernorConfig cfg_;
    StatSet &stats_;
    std::vector<VmState> vm_state_;
    bool attached_ = false;
    std::uint64_t resizes_ = 0;
    std::uint64_t &stat_resizes_;
    std::uint64_t &stat_backoffs_;
};

} // namespace jtps::core

#endif // JTPS_CORE_BALLOON_GOVERNOR_HH
