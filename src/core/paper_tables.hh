/**
 * @file
 * Renderers for the paper's configuration tables (Tables I-III), built
 * from the same structs the simulator actually runs with, so the
 * printed configuration can never drift from the modelled one.
 */

#ifndef JTPS_CORE_PAPER_TABLES_HH
#define JTPS_CORE_PAPER_TABLES_HH

#include <string>

namespace jtps::core
{

/** Table I: environment of the physical machines. */
std::string renderTable1();

/** Table II: configuration of a guest VM. */
std::string renderTable2();

/** Table III: configuration of the Java applications and JVMs. */
std::string renderTable3();

} // namespace jtps::core

#endif // JTPS_CORE_PAPER_TABLES_HH
