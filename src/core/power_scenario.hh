/**
 * @file
 * The PowerVM / AIX experiment (paper §V.B, Fig. 6).
 *
 * PowerVM is a system-VM hypervisor: no per-VM host process, and TPS is
 * performed by the platform ("PowerVM has a TPS feature and shares
 * identical pages unless the guest VMs are configured to allocate
 * dedicated physical memory"). The paper measures total physical memory
 * of three 3.5 GB AIX guests running WAS+DayTrader, just after WAS
 * startup and again after page sharing completes, with and without
 * preloaded classes.
 *
 * The measurement tool "cannot obtain a breakdown ... at the same level
 * of detail in AIX as in Linux", so — like the paper — this scenario
 * reports only totals from the hypervisor's monitoring.
 */

#ifndef JTPS_CORE_POWER_SCENARIO_HH
#define JTPS_CORE_POWER_SCENARIO_HH

#include <memory>
#include <vector>

#include "base/stats.hh"
#include "guest/guest_os.hh"
#include "hv/hypervisor.hh"
#include "jvm/java_vm.hh"
#include "jvm/shared_class_cache.hh"
#include "workload/client_driver.hh"
#include "workload/workload_spec.hh"

namespace jtps::core
{

/** Configuration of the POWER-platform experiment. */
struct PowerScenarioConfig
{
    hv::HostConfig host = {"PS701-POWER7", 128ULL * 1024 * MiB, 512 * MiB};
    guest::KernelConfig kernel = {
        "AIX 6.1 TL6",
        30 * MiB,  // kernel text (identical across guests)
        16 * MiB,  // kernel data
        40 * MiB,  // "slab" (kernel heap)
        50 * MiB,  // base-image file cache (identical)
        80 * MiB,  // per-VM file cache
    };
    std::uint32_t numVms = 3;
    std::uint64_t seed = 7;
    /** The paper's knob: preload classes via a copied cache file. */
    bool preloadClasses = false;
    /** Warm-up epochs before measuring (loads lazy classes / JIT). */
    std::uint32_t warmEpochs = 10;
    Tick epochMs = 2000;
};

/** Result of one PowerVM measurement (one pair of bars in Fig. 6). */
struct PowerResult
{
    Bytes usageBeforeSharing = 0; //!< just after starting WAS
    Bytes usageAfterSharing = 0;  //!< after TPS finishes
    Bytes
    saving() const
    {
        return usageBeforeSharing - usageAfterSharing;
    }
};

/**
 * Build and measure the PowerVM experiment.
 */
class PowerScenario
{
  public:
    explicit PowerScenario(const PowerScenarioConfig &cfg);
    ~PowerScenario();

    /** Boot guests and WAS, run warm-up load. */
    void build();

    /** Measure before/after TPS. */
    PowerResult measure();

    hv::PowerVmHypervisor &hv() { return *hv_; }
    StatSet &stats() { return stats_; }

  private:
    PowerScenarioConfig cfg_;
    StatSet stats_;
    workload::HostDisk disk_;
    std::unique_ptr<hv::PowerVmHypervisor> hv_;
    std::unique_ptr<jvm::ClassSet> classes_;
    std::unique_ptr<jvm::SharedClassCache> cache_;
    std::vector<std::unique_ptr<guest::GuestOs>> guests_;
    std::vector<std::unique_ptr<jvm::JavaVm>> jvms_;
    std::vector<std::unique_ptr<workload::ClientDriver>> drivers_;
    workload::WorkloadSpec spec_;
};

} // namespace jtps::core

#endif // JTPS_CORE_POWER_SCENARIO_HH
