#include "hv/intent_log.hh"

#include "base/logging.hh"
#include "hv/hypervisor.hh"

namespace jtps::hv
{

void
WriteIntentLog::writeWord(Gfn gfn, unsigned sector, std::uint64_t value)
{
    intents_.push_back(
        Intent{Kind::WriteWord, sector, gfn, value});
}

void
WriteIntentLog::writePage(Gfn gfn, const mem::PageData &data)
{
    const std::uint32_t index =
        static_cast<std::uint32_t>(pages_.size());
    pages_.push_back(data);
    intents_.push_back(Intent{Kind::WritePage, index, gfn, 0});
}

void
WriteIntentLog::touchPage(Gfn gfn)
{
    intents_.push_back(Intent{Kind::TouchPage, 0, gfn, 0});
}

void
WriteIntentLog::discardPage(Gfn gfn)
{
    intents_.push_back(Intent{Kind::DiscardPage, 0, gfn, 0});
}

void
WriteIntentLog::setHugePage(Gfn gfn, bool huge)
{
    intents_.push_back(
        Intent{Kind::SetHugePage, huge ? 1u : 0u, gfn, 0});
}

void
WriteIntentLog::trace(TraceEventType type, std::uint64_t arg0,
                      std::uint64_t arg1)
{
    intents_.push_back(Intent{
        Kind::Trace, static_cast<std::uint32_t>(type), arg0, arg1});
}

void
WriteIntentLog::clear()
{
    intents_.clear();
    pages_.clear();
}

void
WriteIntentLog::replay(Hypervisor &hv, VmId vm, std::size_t begin,
                       std::size_t end) const
{
    jtps_assert(begin <= end && end <= intents_.size());
    for (std::size_t i = begin; i < end; ++i) {
        const Intent &in = intents_[i];
        switch (in.kind) {
          case Kind::WriteWord:
            hv.writeWord(vm, in.gfn, in.a, in.b);
            break;
          case Kind::WritePage:
            hv.writePage(vm, in.gfn, pages_[in.a]);
            break;
          case Kind::TouchPage:
            hv.touchPage(vm, in.gfn);
            break;
          case Kind::DiscardPage:
            hv.discardPage(vm, in.gfn);
            break;
          case Kind::SetHugePage:
            hv.setHugePage(vm, in.gfn, in.a != 0);
            break;
          case Kind::Trace:
            if (TraceBuffer *t = hv.trace()) {
                t->record(static_cast<TraceEventType>(in.a), vm,
                          in.gfn, in.b);
            }
            break;
        }
    }
}

} // namespace jtps::hv
