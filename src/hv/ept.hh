/**
 * @file
 * Extended page table (EPT) model: the hypervisor-level translation from
 * guest physical frames (gfn) to host physical frames (hfn).
 *
 * This is the second translation layer of the paper's Fig. 1(b): the
 * guest OS translates process virtual pages to gfns (src/guest), and the
 * EPT translates gfns to hfns. TPS operates entirely at this layer: KSM
 * repoints EPT entries of different VMs at one host frame and
 * write-protects them.
 */

#ifndef JTPS_HV_EPT_HH
#define JTPS_HV_EPT_HH

#include <cstdint>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"

namespace jtps::hv
{

/** Residency state of one guest physical frame. */
enum class PageState : std::uint8_t
{
    NotPresent, //!< never touched; reads see zeroes, writes allocate
    Resident,   //!< backed by a host frame
    Swapped,    //!< evicted by the host; access triggers a major fault
};

/**
 * One EPT entry. `backing` holds the hfn when Resident and the swap slot
 * when Swapped.
 *
 * The entry carries translation state only. KSM's per-page calm
 * checksum used to live here; it is scanner-owned state and now lives
 * in ksm::KsmScanner, which learns about entry resets through
 * hv::PageEventListener.
 */
struct EptEntry
{
    std::uint64_t backing = 0;
    PageState state = PageState::NotPresent;
    bool writeProtected = false; //!< COW-break on next write
    /**
     * The page already has an entry in its VM's PML ring for the
     * current drain cycle. Mirrors hardware PML, which logs a gfn on
     * the dirty-bit *transition* and not on every store: one ring
     * entry per page per cycle, cleared when the ring is drained.
     */
    bool pmlLogged = false;
};

/**
 * A VM's EPT: a dense array of entries, one per guest physical frame.
 */
class Ept
{
  public:
    /**
     * @param guest_frames Number of guest physical frames.
     * @param slab Optional recycled entry storage (an EPT slab from
     *        the hypervisor's pool, see Hypervisor::createVm): its
     *        capacity is adopted and its contents reset to NotPresent,
     *        so rebuilding VMs — 256-VM churn, live migration — reuses
     *        one allocation instead of thrashing the allocator.
     */
    explicit Ept(std::uint64_t guest_frames,
                 std::vector<EptEntry> &&slab = {})
        : entries_(std::move(slab))
    {
        entries_.assign(guest_frames, EptEntry{});
    }

    /**
     * Surrender the entry storage to the caller (the table becomes
     * zero-sized). Used when a VM's memory is released: the slab goes
     * back to the hypervisor's pool for the next createVm().
     */
    std::vector<EptEntry>
    releaseSlab()
    {
        std::vector<EptEntry> out;
        out.swap(entries_);
        return out;
    }

    /** Entry for @p gfn (bounds-checked). */
    EptEntry &
    entry(Gfn gfn)
    {
        jtps_assert(gfn < entries_.size());
        return entries_[gfn];
    }

    /** Read-only entry for @p gfn. */
    const EptEntry &
    entry(Gfn gfn) const
    {
        jtps_assert(gfn < entries_.size());
        return entries_[gfn];
    }

    /** Number of guest physical frames. */
    std::uint64_t size() const { return entries_.size(); }

  private:
    std::vector<EptEntry> entries_;
};

} // namespace jtps::hv

#endif // JTPS_HV_EPT_HH
