/**
 * @file
 * The hypervisor: guest VMs, the gfn→hfn translation, copy-on-write,
 * host-level paging, and the primitives Transparent Page Sharing needs.
 *
 * Two concrete hypervisors derive from the common machinery, mirroring
 * the paper's Fig. 1:
 *
 *  - KvmHypervisor: a process-VM hypervisor. Each guest VM is a host
 *    process; its guest memory is anonymous memory the VM process
 *    madvise()s as MERGEABLE, and the VM process has private overhead
 *    memory of its own ("the pages allocated to the guest VM process but
 *    not used for guest memory", attributed to the VM itself in Fig. 2).
 *    Sharing is found asynchronously by the KSM scanner (src/ksm).
 *
 *  - PowerVmHypervisor: a system-VM hypervisor. There is no VM process
 *    layer; TPS is performed by the platform firmware, modelled as a
 *    run-to-completion whole-memory merge pass (the paper measures
 *    "after finishing page sharing").
 */

#ifndef JTPS_HV_HYPERVISOR_HH
#define JTPS_HV_HYPERVISOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "base/stats.hh"
#include "base/trace.hh"
#include "base/types.hh"
#include "hv/ept.hh"
#include "mem/frame_table.hh"
#include "mem/page_data.hh"
#include "mem/swap_device.hh"

namespace jtps::hv
{

/** Static configuration of the host machine (paper Table I). */
struct HostConfig
{
    std::string name = "host";
    Bytes ramBytes = 6ULL * 1024 * 1024 * 1024;
    /**
     * Frames the host keeps free for its own operation; guest allocations
     * beyond (ram - reserve) trigger host paging.
     */
    Bytes reserveBytes = 64ULL * 1024 * 1024;
    /**
     * Compressed-RAM swap pool (Difference Engine / zram style, paper
     * §VI): this much host RAM is set aside to hold evicted pages
     * compressed (modelled 3:1), so refaults from it cost a
     * decompression instead of a disk read. 0 disables the tier.
     */
    Bytes compressedSwapPoolBytes = 0;
    /**
     * Page-Modification-Log ring slots per VM (Intel PML models a
     * 512-entry buffer). Every write fault appends the dirtied gfn
     * (once per drain cycle, like the hardware dirty-bit transition)
     * together with the frame's fresh write generation; consumers —
     * the KSM scanner's log-driven pass and the working-set estimator
     * — drain the ring instead of walking all of guest memory. When a
     * ring fills up, the VM is flagged overflowed and loses entries
     * until the next drain (the scanner then falls back to a full
     * generation walk for that VM). 0 disables logging entirely.
     */
    std::uint32_t pmlRingSlots = 0;
};

/**
 * Observer of per-page lifecycle events that invalidate state someone
 * else keeps about a guest page. The only subscriber today is the KSM
 * scanner, whose per-page calm-checksum cache must be dropped exactly
 * when the EPT entry it shadowed is reset (guest discard) — the same
 * moment the old in-EPT checksum used to be wiped.
 */
class PageEventListener
{
  public:
    virtual ~PageEventListener() = default;

    /** (vm, gfn) was discarded; its EPT entry returned to NotPresent. */
    virtual void pageDiscarded(VmId vm, Gfn gfn) = 0;
};

/**
 * One entry of a VM's Page-Modification-Log ring: a guest frame that
 * was dirtied, stamped with the backing frame's write generation at
 * append time. The generation is the staleness proof: a drain-time
 * consumer may act on the entry only to the extent the live state
 * still matches (a recycled gfn or a reused host frame carries a
 * different generation, so no verdict can be derived from the stale
 * entry itself — the scanner re-reads live state on every visit).
 */
struct PmlEntry
{
    Gfn gfn = invalidFrame;
    std::uint64_t gen = 0;
};

/** One guest VM. */
struct Vm
{
    VmId id = invalidVm;
    std::string name;
    Ept ept;
    /** Pinned host frames of the VM process itself (KVM only). */
    std::vector<Hfn> overheadFrames;
    /** Guest pages currently resident (backed by a host frame). */
    std::uint64_t residentPages = 0;
    /** Guest pages currently swapped out by the host. */
    std::uint64_t swappedPages = 0;
    /** Cumulative host-level major faults taken by this VM. */
    std::uint64_t majorFaults = 0;
    /** Faults served from the compressed-RAM tier (fast refaults). */
    std::uint64_t majorFaultsRam = 0;
    /** Whether guest memory is registered mergeable (madvise). */
    bool mergeable = true;
    /** Per-gfn transparent-huge-page backing (lazily sized). */
    std::vector<bool> hugePages;
    /** PML ring (append order); capacity reserved to pmlRingSlots. */
    std::vector<PmlEntry> pmlRing;
    /** The ring filled up and entries were lost since the last drain. */
    bool pmlOverflow = false;
    /** Cumulative successful appends (unique dirtied pages per drain
     *  cycle) — the working-set estimator's raw signal. */
    std::uint64_t pmlAppendsTotal = 0;

    Vm(VmId id, std::string name, std::uint64_t guest_frames,
       std::vector<EptEntry> &&ept_slab = {})
        : id(id), name(std::move(name)),
          ept(guest_frames, std::move(ept_slab))
    {
    }
};

/**
 * Common hypervisor machinery: translation, faults, COW, swap, and the
 * TPS merge primitives. All guest memory accesses in the whole simulator
 * funnel through writeWord()/writePage()/readWord()/touchPage(), which is
 * what makes the sharing model sound: no content can change without the
 * COW checks running.
 */
class Hypervisor
{
  public:
    Hypervisor(const HostConfig &cfg, StatSet &stats);
    virtual ~Hypervisor() = default;

    Hypervisor(const Hypervisor &) = delete;
    Hypervisor &operator=(const Hypervisor &) = delete;

    /**
     * Create a guest VM with @p guest_mem bytes of guest physical memory
     * and @p overhead bytes of VM-process-private memory (0 for
     * system-VM hypervisors).
     */
    VmId createVm(const std::string &name, Bytes guest_mem, Bytes overhead);

    /** Number of VMs. */
    std::size_t vmCount() const { return vms_.size(); }

    /** Access a VM by id. */
    Vm &vm(VmId id);
    const Vm &vm(VmId id) const;

    /** The host frame table (analysis and tests read it). */
    mem::FrameTable &frames() { return frames_; }
    const mem::FrameTable &frames() const { return frames_; }

    /** The host swap device. */
    const mem::SwapDevice &swap() const { return swap_; }

    // ------------------------------------------------------------------
    // Guest memory access (called by the guest OS / JVM models)
    // ------------------------------------------------------------------

    /** Write one sector word; runs the full fault + COW path. */
    void writeWord(VmId vm, Gfn gfn, unsigned sector, std::uint64_t value);

    /** Write a whole page of content. */
    void writePage(VmId vm, Gfn gfn, const mem::PageData &data);

    /** Read one sector word (0 if the page was never touched). */
    std::uint64_t readWord(VmId vm, Gfn gfn, unsigned sector);

    /**
     * Touch a page read-only (working-set access by the workload):
     * swaps it in if the host paged it out, marks it recently used.
     */
    void touchPage(VmId vm, Gfn gfn);

    /**
     * Discard a page (guest frees the memory, e.g. munmap): the backing
     * frame reference is dropped and the entry returns to NotPresent.
     */
    void discardPage(VmId vm, Gfn gfn);

    /**
     * Release every page of @p vm: all guest memory (resident and
     * swapped, through the discardPage path so shared frames just
     * lose one mapping and page listeners fire) plus the VM process's
     * pinned overhead frames. The Vm object itself stays — VM ids are
     * dense and stable — it merely owns no host memory afterwards.
     * This is the teardown half of a live migration (or a poweroff):
     * the cluster layer retires the source copy with it and rebuilds
     * the VM on the destination host. Counted in `hv.vms_released`.
     */
    void releaseVmMemory(VmId vm);

    /** Current gfn→hfn translation; invalidFrame unless Resident. */
    Hfn translate(VmId vm, Gfn gfn) const;

    /** Page content if resident, nullptr otherwise (never faults). */
    const mem::PageData *peek(VmId vm, Gfn gfn) const;

    /** Mark/unmark a guest page as THP-backed (unmergeable by KSM). */
    void setHugePage(VmId vm, Gfn gfn, bool huge);

    /** True if the guest page is THP-backed. */
    bool isHugePage(VmId vm, Gfn gfn) const;

    // ------------------------------------------------------------------
    // TPS primitives (called by the KSM scanner / firmware TPS)
    // ------------------------------------------------------------------

    /**
     * Merge the page under (vm, gfn) into the existing stable frame
     * @p stable. Fails (returns false) if the page is not resident, the
     * contents differ, or it is already that frame.
     */
    bool ksmMergeInto(Hfn stable, VmId vm, Gfn gfn);

    /**
     * Promote the resident page under (vm, gfn) to a KSM stable frame:
     * write-protects it and marks the frame stable.
     * @return the frame number, or invalidFrame if not resident.
     */
    Hfn ksmMakeStable(VmId vm, Gfn gfn);

    /**
     * ksmMergeInto() restricted to what a KSM commit shard may mutate
     * (see mem::FrameTable's commit-shard protocol): the page's EPT
     * entry and the two frames' own fields. Digest-sharding makes every
     * touched structure shard-local — the source frame holds the same
     * content as @p stable, so both frames, and every page mapping
     * them, belong to the caller's digest shard. The frame touch, the
     * hv.ksm_merges stat and the sharing counters are deferred to the
     * serial reduce; @p freed_source / @p source report whether (and
     * which) source frame became a deferred-free zombie so the reduce
     * can retire it in canonical order.
     */
    bool ksmMergeIntoShard(Hfn stable, VmId vm, Gfn gfn,
                           bool *freed_source, Hfn *source);

    /**
     * ksmMakeStable() restricted to a KSM commit shard. @p digest must
     * be the page content's digest (it selects the epoch stripe) and
     * @p lane the shard's generation lane. Mirrors the serial call's
     * already-stable no-op; on a real transition, @p transitioned is
     * set and @p refcount_at_set records the refcount the counters-side
     * completion (FrameTable::commitStablePromote at the reduce) needs.
     */
    Hfn ksmMakeStableShard(VmId vm, Gfn gfn, std::uint64_t digest,
                           unsigned lane, bool *transitioned,
                           std::uint32_t *refcount_at_set);

    /**
     * Run one whole-memory TPS pass immediately: merge every pair of
     * identical resident, unpinned pages. Used by the system-VM
     * hypervisor and by tests; KVM instead runs the incremental scanner.
     * @return number of pages merged away (frames freed).
     */
    std::uint64_t collapseIdenticalPages();

    // ------------------------------------------------------------------
    // Accounting
    // ------------------------------------------------------------------

    /** Total resident host frames (guest + overhead). */
    std::uint64_t residentFrames() const { return frames_.resident(); }

    /** Resident bytes on the host. */
    Bytes residentBytes() const;

    /** Major faults taken by @p vm since creation. */
    std::uint64_t majorFaults(VmId vm) const;

    /** Major faults of @p vm served from compressed RAM. */
    std::uint64_t majorFaultsRam(VmId vm) const;

    /** Compression ratio assumed for the compressed-RAM tier. */
    static constexpr unsigned swapCompressionRatio = 3;

    /** Verify all cross-structure invariants; panics on violation. */
    void checkConsistency() const;

    /** The stat sink. */
    StatSet &stats() { return stats_; }

    /**
     * Wire a trace sink (owned by the scenario). Propagates to the swap
     * device; the KSM scanner and guest models reach it through
     * trace(). Passing nullptr detaches. Recording costs nothing until
     * the buffer is enable()d.
     */
    void setTrace(TraceBuffer *trace);

    /** The wired trace sink, or nullptr. */
    TraceBuffer *trace() const { return trace_; }

    /** Subscribe @p l to page lifecycle events. */
    void addPageListener(PageEventListener *l);

    /** Unsubscribe @p l (no-op if it was never added). */
    void removePageListener(PageEventListener *l);

    // ------------------------------------------------------------------
    // Page-Modification-Log rings
    // ------------------------------------------------------------------

    /** True when PML rings are configured (pmlRingSlots > 0). */
    bool pmlEnabled() const { return pml_ring_slots_ > 0; }

    /** Configured ring capacity in entries. */
    std::uint32_t pmlRingSlots() const { return pml_ring_slots_; }

    /** @p vm's undrained ring entries, in append order. */
    const std::vector<PmlEntry> &
    pmlEntries(VmId vm) const
    {
        return this->vm(vm).pmlRing;
    }

    /** True if @p vm's ring lost entries since its last drain. */
    bool
    pmlOverflowed(VmId vm) const
    {
        return this->vm(vm).pmlOverflow;
    }

    /**
     * Finish a drain of @p vm's ring: clear the per-page logged bits
     * of the drained entries (so the next write to each page logs
     * again), empty the ring, and reset the overflow flag. The
     * consumer reads pmlEntries()/pmlOverflowed() first, then calls
     * this exactly once per drain cycle.
     */
    void pmlResetRing(VmId vm);

  protected:
    /**
     * Allocate a host frame, evicting if the host is out of memory.
     * Panics only if even eviction cannot find memory.
     */
    Hfn allocBacked(const mem::Mapping &m, const mem::PageData &data);

    /** Evict one victim frame to swap. @return false if none evictable */
    bool evictOne();

    /** Handle a major fault: swap the page back in. */
    void swapIn(VmId vm, Gfn gfn);

    /** Break copy-on-write for (vm, gfn); afterwards the page is
     *  privately writable. */
    void cowBreak(VmId vm, Gfn gfn);

    /** Make (vm, gfn) resident and writable, running faults as needed. */
    mem::PageData &pageForWrite(VmId vm, Gfn gfn);

    /**
     * Log a dirtied page into @p v's PML ring (no-op when rings are
     * disabled or the page is already logged this drain cycle). @p gen
     * must be the backing frame's current write generation.
     */
    void pmlLog(Vm &v, EptEntry &e, Gfn gfn, std::uint64_t gen);

    HostConfig cfg_;
    StatSet &stats_;
    TraceBuffer *trace_ = nullptr;
    mem::FrameTable frames_;
    mem::SwapDevice swap_;
    std::vector<std::unique_ptr<Vm>> vms_;
    /** Recycled per-VM EPT slabs: releaseVmMemory() banks the retired
     *  VM's entry storage here and createVm() reuses it, so 256-VM
     *  churn and live migration stop hammering one allocation path. */
    std::vector<std::vector<EptEntry>> ept_slab_pool_;
    std::vector<PageEventListener *> page_listeners_;
    /** Compressed-tier slot capacity (pool pages x compression). */
    std::uint64_t ram_slot_capacity_ = 0;
    /** PML ring capacity per VM (0 = logging disabled). */
    std::uint32_t pml_ring_slots_ = 0;
    // pmlLog() runs on the hottest write path; the counters are cached
    // so it never does a string-keyed StatSet lookup.
    std::uint64_t &stat_pml_appends_;
    std::uint64_t &stat_pml_overflows_;
};

/**
 * Process-VM hypervisor (KVM): VMs carry process overhead memory and
 * their guest memory is registered mergeable for the KSM scanner.
 */
class KvmHypervisor : public Hypervisor
{
  public:
    KvmHypervisor(const HostConfig &cfg, StatSet &stats)
        : Hypervisor(cfg, stats)
    {
    }
};

/**
 * System-VM hypervisor (PowerVM): no VM process layer; TPS is the
 * firmware's run-to-completion merge.
 */
class PowerVmHypervisor : public Hypervisor
{
  public:
    PowerVmHypervisor(const HostConfig &cfg, StatSet &stats)
        : Hypervisor(cfg, stats)
    {
    }

    /** Create a VM without process overhead. */
    VmId
    createVm(const std::string &name, Bytes guest_mem)
    {
        return Hypervisor::createVm(name, guest_mem, 0);
    }

    /** Run the firmware TPS to completion. @return pages merged away. */
    std::uint64_t
    runTps()
    {
        return collapseIdenticalPages();
    }
};

} // namespace jtps::hv

#endif // JTPS_HV_HYPERVISOR_HH
