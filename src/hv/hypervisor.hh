/**
 * @file
 * The hypervisor: guest VMs, the gfn→hfn translation, copy-on-write,
 * host-level paging, and the primitives Transparent Page Sharing needs.
 *
 * Two concrete hypervisors derive from the common machinery, mirroring
 * the paper's Fig. 1:
 *
 *  - KvmHypervisor: a process-VM hypervisor. Each guest VM is a host
 *    process; its guest memory is anonymous memory the VM process
 *    madvise()s as MERGEABLE, and the VM process has private overhead
 *    memory of its own ("the pages allocated to the guest VM process but
 *    not used for guest memory", attributed to the VM itself in Fig. 2).
 *    Sharing is found asynchronously by the KSM scanner (src/ksm).
 *
 *  - PowerVmHypervisor: a system-VM hypervisor. There is no VM process
 *    layer; TPS is performed by the platform firmware, modelled as a
 *    run-to-completion whole-memory merge pass (the paper measures
 *    "after finishing page sharing").
 */

#ifndef JTPS_HV_HYPERVISOR_HH
#define JTPS_HV_HYPERVISOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "base/stats.hh"
#include "base/trace.hh"
#include "base/types.hh"
#include "hv/ept.hh"
#include "mem/frame_table.hh"
#include "mem/page_data.hh"
#include "mem/swap_device.hh"

namespace jtps::hv
{

/** Static configuration of the host machine (paper Table I). */
struct HostConfig
{
    std::string name = "host";
    Bytes ramBytes = 6ULL * 1024 * 1024 * 1024;
    /**
     * Frames the host keeps free for its own operation; guest allocations
     * beyond (ram - reserve) trigger host paging.
     */
    Bytes reserveBytes = 64ULL * 1024 * 1024;
    /**
     * Compressed-RAM swap pool (Difference Engine / zram style, paper
     * §VI): this much host RAM is set aside to hold evicted pages
     * compressed (modelled 3:1), so refaults from it cost a
     * decompression instead of a disk read. 0 disables the tier.
     */
    Bytes compressedSwapPoolBytes = 0;
};

/**
 * Observer of per-page lifecycle events that invalidate state someone
 * else keeps about a guest page. The only subscriber today is the KSM
 * scanner, whose per-page calm-checksum cache must be dropped exactly
 * when the EPT entry it shadowed is reset (guest discard) — the same
 * moment the old in-EPT checksum used to be wiped.
 */
class PageEventListener
{
  public:
    virtual ~PageEventListener() = default;

    /** (vm, gfn) was discarded; its EPT entry returned to NotPresent. */
    virtual void pageDiscarded(VmId vm, Gfn gfn) = 0;
};

/** One guest VM. */
struct Vm
{
    VmId id = invalidVm;
    std::string name;
    Ept ept;
    /** Pinned host frames of the VM process itself (KVM only). */
    std::vector<Hfn> overheadFrames;
    /** Guest pages currently resident (backed by a host frame). */
    std::uint64_t residentPages = 0;
    /** Guest pages currently swapped out by the host. */
    std::uint64_t swappedPages = 0;
    /** Cumulative host-level major faults taken by this VM. */
    std::uint64_t majorFaults = 0;
    /** Faults served from the compressed-RAM tier (fast refaults). */
    std::uint64_t majorFaultsRam = 0;
    /** Whether guest memory is registered mergeable (madvise). */
    bool mergeable = true;
    /** Per-gfn transparent-huge-page backing (lazily sized). */
    std::vector<bool> hugePages;

    Vm(VmId id, std::string name, std::uint64_t guest_frames)
        : id(id), name(std::move(name)), ept(guest_frames)
    {
    }
};

/**
 * Common hypervisor machinery: translation, faults, COW, swap, and the
 * TPS merge primitives. All guest memory accesses in the whole simulator
 * funnel through writeWord()/writePage()/readWord()/touchPage(), which is
 * what makes the sharing model sound: no content can change without the
 * COW checks running.
 */
class Hypervisor
{
  public:
    Hypervisor(const HostConfig &cfg, StatSet &stats);
    virtual ~Hypervisor() = default;

    Hypervisor(const Hypervisor &) = delete;
    Hypervisor &operator=(const Hypervisor &) = delete;

    /**
     * Create a guest VM with @p guest_mem bytes of guest physical memory
     * and @p overhead bytes of VM-process-private memory (0 for
     * system-VM hypervisors).
     */
    VmId createVm(const std::string &name, Bytes guest_mem, Bytes overhead);

    /** Number of VMs. */
    std::size_t vmCount() const { return vms_.size(); }

    /** Access a VM by id. */
    Vm &vm(VmId id);
    const Vm &vm(VmId id) const;

    /** The host frame table (analysis and tests read it). */
    mem::FrameTable &frames() { return frames_; }
    const mem::FrameTable &frames() const { return frames_; }

    /** The host swap device. */
    const mem::SwapDevice &swap() const { return swap_; }

    // ------------------------------------------------------------------
    // Guest memory access (called by the guest OS / JVM models)
    // ------------------------------------------------------------------

    /** Write one sector word; runs the full fault + COW path. */
    void writeWord(VmId vm, Gfn gfn, unsigned sector, std::uint64_t value);

    /** Write a whole page of content. */
    void writePage(VmId vm, Gfn gfn, const mem::PageData &data);

    /** Read one sector word (0 if the page was never touched). */
    std::uint64_t readWord(VmId vm, Gfn gfn, unsigned sector);

    /**
     * Touch a page read-only (working-set access by the workload):
     * swaps it in if the host paged it out, marks it recently used.
     */
    void touchPage(VmId vm, Gfn gfn);

    /**
     * Discard a page (guest frees the memory, e.g. munmap): the backing
     * frame reference is dropped and the entry returns to NotPresent.
     */
    void discardPage(VmId vm, Gfn gfn);

    /** Current gfn→hfn translation; invalidFrame unless Resident. */
    Hfn translate(VmId vm, Gfn gfn) const;

    /** Page content if resident, nullptr otherwise (never faults). */
    const mem::PageData *peek(VmId vm, Gfn gfn) const;

    /** Mark/unmark a guest page as THP-backed (unmergeable by KSM). */
    void setHugePage(VmId vm, Gfn gfn, bool huge);

    /** True if the guest page is THP-backed. */
    bool isHugePage(VmId vm, Gfn gfn) const;

    // ------------------------------------------------------------------
    // TPS primitives (called by the KSM scanner / firmware TPS)
    // ------------------------------------------------------------------

    /**
     * Merge the page under (vm, gfn) into the existing stable frame
     * @p stable. Fails (returns false) if the page is not resident, the
     * contents differ, or it is already that frame.
     */
    bool ksmMergeInto(Hfn stable, VmId vm, Gfn gfn);

    /**
     * Promote the resident page under (vm, gfn) to a KSM stable frame:
     * write-protects it and marks the frame stable.
     * @return the frame number, or invalidFrame if not resident.
     */
    Hfn ksmMakeStable(VmId vm, Gfn gfn);

    /**
     * Run one whole-memory TPS pass immediately: merge every pair of
     * identical resident, unpinned pages. Used by the system-VM
     * hypervisor and by tests; KVM instead runs the incremental scanner.
     * @return number of pages merged away (frames freed).
     */
    std::uint64_t collapseIdenticalPages();

    // ------------------------------------------------------------------
    // Accounting
    // ------------------------------------------------------------------

    /** Total resident host frames (guest + overhead). */
    std::uint64_t residentFrames() const { return frames_.resident(); }

    /** Resident bytes on the host. */
    Bytes residentBytes() const;

    /** Major faults taken by @p vm since creation. */
    std::uint64_t majorFaults(VmId vm) const;

    /** Major faults of @p vm served from compressed RAM. */
    std::uint64_t majorFaultsRam(VmId vm) const;

    /** Compression ratio assumed for the compressed-RAM tier. */
    static constexpr unsigned swapCompressionRatio = 3;

    /** Verify all cross-structure invariants; panics on violation. */
    void checkConsistency() const;

    /** The stat sink. */
    StatSet &stats() { return stats_; }

    /**
     * Wire a trace sink (owned by the scenario). Propagates to the swap
     * device; the KSM scanner and guest models reach it through
     * trace(). Passing nullptr detaches. Recording costs nothing until
     * the buffer is enable()d.
     */
    void setTrace(TraceBuffer *trace);

    /** The wired trace sink, or nullptr. */
    TraceBuffer *trace() const { return trace_; }

    /** Subscribe @p l to page lifecycle events. */
    void addPageListener(PageEventListener *l);

    /** Unsubscribe @p l (no-op if it was never added). */
    void removePageListener(PageEventListener *l);

  protected:
    /**
     * Allocate a host frame, evicting if the host is out of memory.
     * Panics only if even eviction cannot find memory.
     */
    Hfn allocBacked(const mem::Mapping &m, const mem::PageData &data);

    /** Evict one victim frame to swap. @return false if none evictable */
    bool evictOne();

    /** Handle a major fault: swap the page back in. */
    void swapIn(VmId vm, Gfn gfn);

    /** Break copy-on-write for (vm, gfn); afterwards the page is
     *  privately writable. */
    void cowBreak(VmId vm, Gfn gfn);

    /** Make (vm, gfn) resident and writable, running faults as needed. */
    mem::PageData &pageForWrite(VmId vm, Gfn gfn);

    HostConfig cfg_;
    StatSet &stats_;
    TraceBuffer *trace_ = nullptr;
    mem::FrameTable frames_;
    mem::SwapDevice swap_;
    std::vector<std::unique_ptr<Vm>> vms_;
    std::vector<PageEventListener *> page_listeners_;
    /** Compressed-tier slot capacity (pool pages x compression). */
    std::uint64_t ram_slot_capacity_ = 0;
};

/**
 * Process-VM hypervisor (KVM): VMs carry process overhead memory and
 * their guest memory is registered mergeable for the KSM scanner.
 */
class KvmHypervisor : public Hypervisor
{
  public:
    KvmHypervisor(const HostConfig &cfg, StatSet &stats)
        : Hypervisor(cfg, stats)
    {
    }
};

/**
 * System-VM hypervisor (PowerVM): no VM process layer; TPS is the
 * firmware's run-to-completion merge.
 */
class PowerVmHypervisor : public Hypervisor
{
  public:
    PowerVmHypervisor(const HostConfig &cfg, StatSet &stats)
        : Hypervisor(cfg, stats)
    {
    }

    /** Create a VM without process overhead. */
    VmId
    createVm(const std::string &name, Bytes guest_mem)
    {
        return Hypervisor::createVm(name, guest_mem, 0);
    }

    /** Run the firmware TPS to completion. @return pages merged away. */
    std::uint64_t
    runTps()
    {
        return collapseIdenticalPages();
    }
};

} // namespace jtps::hv

#endif // JTPS_HV_HYPERVISOR_HH
