#include "hv/hypervisor.hh"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "base/hash.hh"
#include "base/logging.hh"
#include "base/units.hh"

namespace jtps::hv
{

Hypervisor::Hypervisor(const HostConfig &cfg, StatSet &stats)
    : cfg_(cfg), stats_(stats),
      frames_(
          [&cfg]() {
              // The compressed swap pool carves its frames out of host
              // RAM: the tier trades usable memory for cheap refaults.
              Bytes usable = cfg.ramBytes;
              usable -= std::min(usable, cfg.reserveBytes);
              usable -= std::min(usable, cfg.compressedSwapPoolBytes);
              return bytesToPages(usable);
          }(),
          &stats),
      swap_(&stats),
      ram_slot_capacity_(bytesToPages(cfg.compressedSwapPoolBytes) *
                         swapCompressionRatio),
      pml_ring_slots_(cfg.pmlRingSlots),
      stat_pml_appends_(stats.counter("hv.pml_appends")),
      stat_pml_overflows_(stats.counter("hv.pml_overflows"))
{
    // Registered at zero so every registry carries the counters whether
    // or not a run ever retires a VM (docs/METRICS.md contract).
    stats_.counter("hv.vms_released");
    stats_.counter("hv.ept_slabs_reused");
}

void
Hypervisor::setTrace(TraceBuffer *trace)
{
    trace_ = trace;
    swap_.setTrace(trace);
}

VmId
Hypervisor::createVm(const std::string &name, Bytes guest_mem,
                     Bytes overhead)
{
    VmId id = static_cast<VmId>(vms_.size());
    std::vector<EptEntry> slab;
    if (!ept_slab_pool_.empty()) {
        slab = std::move(ept_slab_pool_.back());
        ept_slab_pool_.pop_back();
        stats_.inc("hv.ept_slabs_reused");
    }
    vms_.push_back(std::make_unique<Vm>(
        id, name, bytesToPages(guest_mem), std::move(slab)));
    Vm &v = *vms_.back();
    v.pmlRing.reserve(pml_ring_slots_);

    // The VM process's own memory (QEMU heap, device emulation state):
    // private, per-VM content, pinned so the host never swaps the VMM
    // itself. Attributed to "the guest VM itself" by the analysis layer.
    const std::uint64_t overhead_pages = bytesToPages(overhead);
    const std::uint64_t tag = stringTag("vm-process-overhead");
    for (std::uint64_t i = 0; i < overhead_pages; ++i) {
        mem::PageData data = mem::PageData::filled(tag, hash3(id, i, 1));
        Hfn hfn = frames_.allocPinned(data);
        while (hfn == invalidFrame) {
            if (!evictOne())
                fatal("host out of memory creating VM '%s'", name.c_str());
            hfn = frames_.allocPinned(data);
        }
        v.overheadFrames.push_back(hfn);
    }
    stats_.inc("hv.vms_created");
    return id;
}

Vm &
Hypervisor::vm(VmId id)
{
    jtps_assert(id < vms_.size());
    return *vms_[id];
}

const Vm &
Hypervisor::vm(VmId id) const
{
    jtps_assert(id < vms_.size());
    return *vms_[id];
}

Hfn
Hypervisor::allocBacked(const mem::Mapping &m, const mem::PageData &data)
{
    for (;;) {
        Hfn hfn = frames_.alloc(m, data);
        if (hfn != invalidFrame)
            return hfn;
        if (!evictOne())
            fatal("host out of memory: %llu frames resident, "
                  "nothing evictable",
                  static_cast<unsigned long long>(frames_.resident()));
    }
}

bool
Hypervisor::evictOne()
{
    Hfn victim = frames_.pickVictim(/*allow_shared=*/false);
    if (victim == invalidFrame)
        victim = frames_.pickVictim(/*allow_shared=*/true);
    if (victim == invalidFrame)
        return false;

    mem::Frame &f = frames_.frame(victim);
    jtps_assert(!f.pinned);
    // The swap record needs the mappings as a vector anyway; build it
    // reserved to the known arity instead of letting mappings() grow
    // one push_back at a time (this runs once per eviction, which the
    // overcommit sweeps do millions of times).
    std::vector<mem::Mapping> mappings;
    mappings.reserve(f.refcount);
    f.forEachMapping(
        [&](const mem::Mapping &m) { mappings.push_back(m); });
    jtps_assert(!mappings.empty());
    const mem::PageData data = f.data;

    // Prefer the compressed-RAM tier while it has room.
    const mem::SwapTier tier =
        swap_.ramSlots() < ram_slot_capacity_
            ? mem::SwapTier::CompressedRam
            : mem::SwapTier::Disk;
    mem::SwapSlot slot = swap_.store(data, mappings, tier);
    for (const auto &m : mappings) {
        Vm &v = vm(m.vm);
        EptEntry &e = v.ept.entry(m.gfn);
        jtps_assert(e.state == PageState::Resident &&
                    e.backing == victim);
        e.state = PageState::Swapped;
        e.backing = slot;
        e.writeProtected = false;
        jtps_assert(v.residentPages > 0);
        --v.residentPages;
        ++v.swappedPages;
        frames_.removeMapping(victim, m);
    }
    stats_.inc("host.evictions");
    return true;
}

void
Hypervisor::pmlLog(Vm &v, EptEntry &e, Gfn gfn, std::uint64_t gen)
{
    if (pml_ring_slots_ == 0 || e.pmlLogged)
        return;
    if (v.pmlRing.size() >= pml_ring_slots_) {
        // Ring full: the entry is lost, exactly like hardware PML
        // raising its full-vmexit with further dirtying unrecorded.
        // The logged bit stays clear so the loss is counted per
        // dropped page; the overflow flag tells the drain-time
        // consumer its view of this VM is incomplete.
        v.pmlOverflow = true;
        ++stat_pml_overflows_;
        return;
    }
    v.pmlRing.push_back(PmlEntry{gfn, gen});
    e.pmlLogged = true;
    ++v.pmlAppendsTotal;
    ++stat_pml_appends_;
}

void
Hypervisor::pmlResetRing(VmId vm_id)
{
    Vm &v = vm(vm_id);
    for (const PmlEntry &pe : v.pmlRing)
        v.ept.entry(pe.gfn).pmlLogged = false;
    v.pmlRing.clear();
    // An overflow may have left logged-but-lost pages only in the
    // other direction (lost pages never got their bit set), so the
    // entry-driven clear above is complete: every set bit has a ring
    // entry until the drain consumes it.
    v.pmlOverflow = false;
}

void
Hypervisor::swapIn(VmId vm_id, Gfn gfn)
{
    Vm &faulting = vm(vm_id);
    EptEntry &fe = faulting.ept.entry(gfn);
    jtps_assert(fe.state == PageState::Swapped);

    mem::SwapDevice::Slot slot = swap_.take(fe.backing);
    jtps_assert(!slot.mappings.empty());
    const bool from_ram = slot.tier == mem::SwapTier::CompressedRam;

    // Restore the frame and *all* of its former mappings, preserving the
    // sharing structure the page had when it was evicted.
    Hfn hfn = allocBacked(slot.mappings.front(), slot.data);
    for (std::size_t i = 1; i < slot.mappings.size(); ++i)
        frames_.addMapping(hfn, slot.mappings[i]);

    const bool shared = slot.mappings.size() > 1;
    for (const auto &m : slot.mappings) {
        Vm &v = vm(m.vm);
        EptEntry &e = v.ept.entry(m.gfn);
        jtps_assert(e.state == PageState::Swapped);
        e.state = PageState::Resident;
        e.backing = hfn;
        e.writeProtected = shared;
        jtps_assert(v.swappedPages > 0);
        --v.swappedPages;
        ++v.residentPages;
        // The restored page sits on a reused host frame with a fresh
        // write generation and without its old KSM-stable flag, so any
        // ring entry recorded before the eviction is stale (its
        // generation no longer matches anything). Re-log the page:
        // this is the frame-reuse invalidation that keeps log-driven
        // scans equivalent to the generation walk — the walk would
        // re-examine the page (new generation fails every skip proof),
        // so the log must deliver it too.
        pmlLog(v, e, m.gfn, frames_.writeGen(hfn));
    }

    ++faulting.majorFaults;
    stats_.inc("host.major_faults");
    if (from_ram) {
        ++faulting.majorFaultsRam;
        stats_.inc("host.major_faults_ram");
    }
}

void
Hypervisor::cowBreak(VmId vm_id, Gfn gfn)
{
    Vm &v = vm(vm_id);
    EptEntry &e = v.ept.entry(gfn);
    jtps_assert(e.state == PageState::Resident);

    Hfn old = e.backing;
    mem::Frame &f = frames_.frame(old);

    if (f.refcount == 1 && !f.ksmStable) {
        // Sole mapping of an ordinary frame: nothing to copy, just drop
        // the protection.
        e.writeProtected = false;
        return;
    }

    const mem::Mapping m{vm_id, gfn};
    const mem::PageData copy = f.data; // copy before the frame can die
    frames_.removeMapping(old, m);
    Hfn fresh = allocBacked(m, copy);
    e.backing = fresh;
    e.writeProtected = false;
    stats_.inc("hv.cow_breaks");
    if (trace_)
        trace_->record(TraceEventType::CowBreak, vm_id, gfn, old);
}

mem::PageData &
Hypervisor::pageForWrite(VmId vm_id, Gfn gfn)
{
    Vm &v = vm(vm_id);
    EptEntry &e = v.ept.entry(gfn);

    switch (e.state) {
      case PageState::NotPresent: {
          Hfn hfn = allocBacked(mem::Mapping{vm_id, gfn},
                                mem::PageData::zero());
          e.state = PageState::Resident;
          e.backing = hfn;
          e.writeProtected = false;
          ++v.residentPages;
          stats_.inc("hv.demand_allocs");
          break;
      }
      case PageState::Swapped:
        swapIn(vm_id, gfn);
        break;
      case PageState::Resident:
        break;
    }

    if (e.writeProtected || frames_.frame(e.backing).refcount > 1 ||
        frames_.frame(e.backing).ksmStable) {
        cowBreak(vm_id, gfn);
    }

    frames_.touch(e.backing);
    // The caller writes through the returned reference: advance the
    // frame's generation so every cached derivation of the old content
    // (KSM checksums/digests) stops matching. Fresh allocations above
    // already carry a new generation; bumping again is merely
    // conservative (a generation may only ever certify *unchanged*
    // content).
    frames_.bumpWriteGen(e.backing);
    // Every content mutation funnels through here, so this one append
    // is what makes the PML rings a complete dirty log: once per page
    // per drain cycle (the logged bit models the hardware dirty-bit
    // transition), stamped with the generation the write produced.
    pmlLog(v, e, gfn, frames_.writeGen(e.backing));
    return frames_.frame(e.backing).data;
}

void
Hypervisor::writeWord(VmId vm_id, Gfn gfn, unsigned sector,
                      std::uint64_t value)
{
    jtps_assert(sector < mem::sectorsPerPage);
    pageForWrite(vm_id, gfn).word[sector] = value;
}

void
Hypervisor::writePage(VmId vm_id, Gfn gfn, const mem::PageData &data)
{
    pageForWrite(vm_id, gfn) = data;
}

std::uint64_t
Hypervisor::readWord(VmId vm_id, Gfn gfn, unsigned sector)
{
    jtps_assert(sector < mem::sectorsPerPage);
    Vm &v = vm(vm_id);
    EptEntry &e = v.ept.entry(gfn);

    switch (e.state) {
      case PageState::NotPresent:
        // Reads of untouched anonymous memory see the zero page; no
        // frame is allocated (Linux maps the shared zero page).
        return 0;
      case PageState::Swapped:
        swapIn(vm_id, gfn);
        break;
      case PageState::Resident:
        break;
    }
    frames_.touch(e.backing);
    return frames_.frame(e.backing).data.word[sector];
}

void
Hypervisor::touchPage(VmId vm_id, Gfn gfn)
{
    Vm &v = vm(vm_id);
    EptEntry &e = v.ept.entry(gfn);
    switch (e.state) {
      case PageState::NotPresent:
        return;
      case PageState::Swapped:
        swapIn(vm_id, gfn);
        break;
      case PageState::Resident:
        break;
    }
    frames_.touch(e.backing);
}

void
Hypervisor::discardPage(VmId vm_id, Gfn gfn)
{
    Vm &v = vm(vm_id);
    EptEntry &e = v.ept.entry(gfn);
    const mem::Mapping m{vm_id, gfn};

    switch (e.state) {
      case PageState::NotPresent:
        return;
      case PageState::Swapped:
        swap_.dropMapping(e.backing, m);
        jtps_assert(v.swappedPages > 0);
        --v.swappedPages;
        break;
      case PageState::Resident:
        frames_.removeMapping(e.backing, m);
        jtps_assert(v.residentPages > 0);
        --v.residentPages;
        break;
    }
    e = EptEntry{};
    // The entry reset above is what used to wipe KSM's in-EPT checksum;
    // tell subscribers so externally-held per-page state dies with it.
    for (PageEventListener *l : page_listeners_)
        l->pageDiscarded(vm_id, gfn);
}

void
Hypervisor::releaseVmMemory(VmId vm_id)
{
    Vm &v = vm(vm_id);
    // Guest memory through the discard path: shared frames lose one
    // mapping (other VMs keep the content), private frames free, swap
    // slots drop, and the page listeners invalidate their caches —
    // the identical bookkeeping a guest-initiated free would run.
    for (Gfn g = 0; g < v.ept.size(); ++g)
        discardPage(vm_id, g);
    jtps_assert(v.residentPages == 0 && v.swappedPages == 0);
    for (Hfn hfn : v.overheadFrames)
        frames_.freePinned(hfn);
    v.overheadFrames.clear();
    v.hugePages.clear();
    v.pmlRing.clear();
    v.pmlOverflow = false;
    // Bank the EPT slab for the next createVm(); the retired VM keeps a
    // zero-sized EPT, which every consumer already handles (the KSM
    // cursor skips it, walks bound themselves by ept.size()).
    ept_slab_pool_.push_back(v.ept.releaseSlab());
    stats_.inc("hv.vms_released");
}

void
Hypervisor::addPageListener(PageEventListener *l)
{
    jtps_assert(l != nullptr);
    page_listeners_.push_back(l);
}

void
Hypervisor::removePageListener(PageEventListener *l)
{
    auto it =
        std::find(page_listeners_.begin(), page_listeners_.end(), l);
    if (it != page_listeners_.end())
        page_listeners_.erase(it);
}

Hfn
Hypervisor::translate(VmId vm_id, Gfn gfn) const
{
    const EptEntry &e = vm(vm_id).ept.entry(gfn);
    return e.state == PageState::Resident ? e.backing : invalidFrame;
}

const mem::PageData *
Hypervisor::peek(VmId vm_id, Gfn gfn) const
{
    const Vm &v = vm(vm_id);
    // A retired VM's EPT is zero-sized (its slab went back to the
    // pool); before slab recycling these entries read as NotPresent,
    // and callers holding stale coordinates — KSM's persistent
    // unstable entries outlive VM retirement — still expect that.
    if (gfn >= v.ept.size())
        return nullptr;
    const EptEntry &e = v.ept.entry(gfn);
    if (e.state != PageState::Resident)
        return nullptr;
    return &frames_.frame(e.backing).data;
}

void
Hypervisor::setHugePage(VmId vm_id, Gfn gfn, bool huge)
{
    Vm &v = vm(vm_id);
    jtps_assert(gfn < v.ept.size());
    if (v.hugePages.empty()) {
        if (!huge)
            return; // nothing was ever marked
        v.hugePages.assign(v.ept.size(), false);
    }
    const bool was = v.hugePages[gfn];
    v.hugePages[gfn] = huge;
    // Dropping the THP flag makes the page MERGEABLE again without any
    // write. The generation walk re-examines it on its next pass; a
    // log-driven scanner only hears about logged pages, so the
    // transition itself must land in the ring.
    if (was && !huge) {
        EptEntry &e = v.ept.entry(gfn);
        if (e.state == PageState::Resident)
            pmlLog(v, e, gfn, frames_.writeGen(e.backing));
    }
}

bool
Hypervisor::isHugePage(VmId vm_id, Gfn gfn) const
{
    const Vm &v = vm(vm_id);
    if (v.hugePages.empty())
        return false;
    jtps_assert(gfn < v.ept.size());
    return v.hugePages[gfn];
}

bool
Hypervisor::ksmMergeInto(Hfn stable, VmId vm_id, Gfn gfn)
{
    Vm &v = vm(vm_id);
    EptEntry &e = v.ept.entry(gfn);
    if (e.state != PageState::Resident)
        return false;
    if (e.backing == stable)
        return false;
    if (!frames_.isAllocated(stable))
        return false;

    mem::Frame &sf = frames_.frame(stable);
    mem::Frame &of = frames_.frame(e.backing);
    if (!(sf.data == of.data))
        return false;
    jtps_assert(sf.ksmStable && !sf.pinned);

    const mem::Mapping m{vm_id, gfn};
    frames_.removeMapping(e.backing, m);
    frames_.addMapping(stable, m);
    frames_.touch(stable);
    e.backing = stable;
    e.writeProtected = true;
    stats_.inc("hv.ksm_merges");
    return true;
}

Hfn
Hypervisor::ksmMakeStable(VmId vm_id, Gfn gfn)
{
    Vm &v = vm(vm_id);
    EptEntry &e = v.ept.entry(gfn);
    if (e.state != PageState::Resident)
        return invalidFrame;

    mem::Frame &f = frames_.frame(e.backing);
    jtps_assert(!f.pinned);
    frames_.setKsmStable(e.backing, true);
    // Write-protect every mapping of the frame so any write COWs.
    f.forEachMapping([this](const mem::Mapping &m) {
        vm(m.vm).ept.entry(m.gfn).writeProtected = true;
    });
    return e.backing;
}

bool
Hypervisor::ksmMergeIntoShard(Hfn stable, VmId vm_id, Gfn gfn,
                              bool *freed_source, Hfn *source)
{
    *freed_source = false;
    *source = invalidFrame;
    Vm &v = vm(vm_id);
    EptEntry &e = v.ept.entry(gfn);
    if (e.state != PageState::Resident)
        return false;
    if (e.backing == stable)
        return false;
    if (!frames_.isAllocated(stable))
        return false;

    mem::Frame &sf = frames_.frame(stable);
    mem::Frame &of = frames_.frame(e.backing);
    if (!(sf.data == of.data))
        return false;
    jtps_assert(sf.ksmStable && !sf.pinned);

    const mem::Mapping m{vm_id, gfn};
    *source = e.backing;
    *freed_source = frames_.removeMappingShard(e.backing, m);
    frames_.addMappingShard(stable, m);
    e.backing = stable;
    e.writeProtected = true;
    // touch(stable), hv.ksm_merges and the sharing counters run at the
    // serial reduce, in canonical order.
    return true;
}

Hfn
Hypervisor::ksmMakeStableShard(VmId vm_id, Gfn gfn, std::uint64_t digest,
                               unsigned lane, bool *transitioned,
                               std::uint32_t *refcount_at_set)
{
    *transitioned = false;
    *refcount_at_set = 0;
    Vm &v = vm(vm_id);
    EptEntry &e = v.ept.entry(gfn);
    if (e.state != PageState::Resident)
        return invalidFrame;

    mem::Frame &f = frames_.frame(e.backing);
    jtps_assert(!f.pinned);
    if (!f.ksmStable) {
        // Real transition (the serial setKsmStable() would no-op on an
        // already-stable frame): shard-side flag/epoch/generation now,
        // counters at the reduce via the recorded refcount.
        *transitioned = true;
        *refcount_at_set = f.refcount;
        frames_.setKsmStableShard(e.backing, digest, lane);
    }
    // Write-protect every mapping of the frame so any write COWs. The
    // mapped pages hold this frame's content, so they are all in the
    // caller's digest shard.
    f.forEachMapping([this](const mem::Mapping &m) {
        vm(m.vm).ept.entry(m.gfn).writeProtected = true;
    });
    return e.backing;
}

std::uint64_t
Hypervisor::collapseIdenticalPages()
{
    // digest -> first page seen with that content. Full content equality
    // is re-verified inside ksmMergeInto, so a digest collision can only
    // cause a missed merge, never a wrong one.
    std::unordered_map<std::uint64_t, std::pair<VmId, Gfn>> canon;
    std::uint64_t merged = 0;

    for (auto &vmp : vms_) {
        Vm &v = *vmp;
        for (Gfn gfn = 0; gfn < v.ept.size(); ++gfn) {
            const EptEntry &e = v.ept.entry(gfn);
            if (e.state != PageState::Resident)
                continue;
            const std::uint64_t digest =
                frames_.frame(e.backing).data.digest();
            auto [it, inserted] =
                canon.emplace(digest, std::make_pair(v.id, gfn));
            if (inserted)
                continue;
            Hfn stable = ksmMakeStable(it->second.first, it->second.second);
            if (stable == invalidFrame)
                continue;
            if (ksmMergeInto(stable, v.id, gfn))
                ++merged;
        }
    }
    stats_.inc("hv.tps_collapse_merged", merged);
    return merged;
}

Bytes
Hypervisor::residentBytes() const
{
    return pagesToBytes(frames_.resident());
}

std::uint64_t
Hypervisor::majorFaults(VmId vm_id) const
{
    return vm(vm_id).majorFaults;
}

std::uint64_t
Hypervisor::majorFaultsRam(VmId vm_id) const
{
    return vm(vm_id).majorFaultsRam;
}

void
Hypervisor::checkConsistency() const
{
    frames_.checkConsistency();

    // Every resident EPT entry must appear exactly once in its frame's
    // reverse mappings, and per-VM counters must match entry states.
    for (const auto &vmp : vms_) {
        const Vm &v = *vmp;
        std::uint64_t resident = 0, swapped = 0;
        for (Gfn gfn = 0; gfn < v.ept.size(); ++gfn) {
            const EptEntry &e = v.ept.entry(gfn);
            if (e.state == PageState::Resident) {
                ++resident;
                jtps_assert(frames_.isAllocated(e.backing));
                const mem::Frame &f = frames_.frame(e.backing);
                unsigned hits = 0;
                f.forEachMapping([&](const mem::Mapping &m) {
                    if (m.vm == v.id && m.gfn == gfn)
                        ++hits;
                });
                jtps_assert(hits == 1);
            } else if (e.state == PageState::Swapped) {
                ++swapped;
                jtps_assert(swap_.has(e.backing));
            }
        }
        jtps_assert(resident == v.residentPages);
        jtps_assert(swapped == v.swappedPages);

        // PML invariant: every logged bit is covered by a live ring
        // entry (pmlResetRing()'s entry-driven clear relies on it),
        // and the ring respects its capacity.
        jtps_assert(v.pmlRing.size() <= pml_ring_slots_);
        std::unordered_set<Gfn> ring_gfns;
        for (const PmlEntry &pe : v.pmlRing)
            ring_gfns.insert(pe.gfn);
        for (Gfn gfn = 0; gfn < v.ept.size(); ++gfn) {
            if (v.ept.entry(gfn).pmlLogged)
                jtps_assert(ring_gfns.count(gfn) == 1);
        }
    }
}

} // namespace jtps::hv
