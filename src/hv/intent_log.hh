/**
 * @file
 * Per-VM write-intent log for deterministic parallel guest execution.
 *
 * When the scenario stages guest mutator work concurrently (one VM per
 * worker thread), guest models must not call the hypervisor's mutation
 * API directly: CoW breaks, evictions and write-generation bumps are
 * global host state whose order must be canonical. Instead each VM's
 * staged work appends its host-visible effects here — one record per
 * would-be hypervisor call — and the scenario's serial commit phase
 * replays the logs in VM-id order through the unchanged Hypervisor
 * API. Replay issues exactly one hypervisor call per intent (no
 * coalescing), so counters, trace events and frame state after a
 * staged tick are byte-identical to direct serial execution.
 *
 * This is the software analogue of a per-vCPU dirty record (PML): the
 * guest runs ahead against its private state, the host consumes the
 * ordered record later.
 */

#ifndef JTPS_HV_INTENT_LOG_HH
#define JTPS_HV_INTENT_LOG_HH

#include <cstdint>
#include <vector>

#include "base/trace.hh"
#include "base/types.hh"
#include "mem/page_data.hh"

namespace jtps::hv
{

class Hypervisor;

/**
 * Ordered record of one VM's pending host-visible effects.
 */
class WriteIntentLog
{
  public:
    /** Append a writeWord(gfn, sector, value) intent. */
    void writeWord(Gfn gfn, unsigned sector, std::uint64_t value);

    /** Append a writePage(gfn, data) intent (payload copied). */
    void writePage(Gfn gfn, const mem::PageData &data);

    /** Append a touchPage(gfn) intent. */
    void touchPage(Gfn gfn);

    /** Append a discardPage(gfn) intent. */
    void discardPage(Gfn gfn);

    /** Append a setHugePage(gfn, huge) intent. */
    void setHugePage(Gfn gfn, bool huge);

    /**
     * Append a guest-originated trace event (GC cycle, balloon move):
     * replay records it into the hypervisor's trace sink at its
     * logged position, between the surrounding memory intents.
     */
    void trace(TraceEventType type, std::uint64_t arg0,
               std::uint64_t arg1);

    /** Number of intents recorded so far (watermark for replay). */
    std::size_t size() const { return intents_.size(); }

    /** Drop all intents (keeps capacity for the next tick). */
    void clear();

    /**
     * Replay intents [@p begin, @p end) for @p vm against @p hv, in
     * log order, one hypervisor call (or trace record) per intent.
     */
    void replay(Hypervisor &hv, VmId vm, std::size_t begin,
                std::size_t end) const;

  private:
    enum class Kind : std::uint8_t
    {
        WriteWord,
        WritePage,
        TouchPage,
        DiscardPage,
        SetHugePage,
        Trace,
    };

    /** One intent. Field use per kind:
     *   WriteWord:   gfn, a = sector, b = value
     *   WritePage:   gfn, a = index into pages_
     *   TouchPage:   gfn
     *   DiscardPage: gfn
     *   SetHugePage: gfn, a = huge flag
     *   Trace:       gfn = arg0, a = TraceEventType, b = arg1 */
    struct Intent
    {
        Kind kind;
        std::uint32_t a = 0;
        Gfn gfn = 0;
        std::uint64_t b = 0;
    };

    std::vector<Intent> intents_;
    /** Full-page payloads, referenced by index from WritePage intents. */
    std::vector<mem::PageData> pages_;
};

} // namespace jtps::hv

#endif // JTPS_HV_INTENT_LOG_HH
