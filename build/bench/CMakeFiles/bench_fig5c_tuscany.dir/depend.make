# Empty dependencies file for bench_fig5c_tuscany.
# This may be replaced when dependencies are built.
