# Empty dependencies file for bench_ext_aot_cache.
# This may be replaced when dependencies are built.
