# Empty dependencies file for bench_fig5a_jvm_breakdown.
# This may be replaced when dependencies are built.
