file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_baseline.dir/bench_fig2_baseline.cpp.o"
  "CMakeFiles/bench_fig2_baseline.dir/bench_fig2_baseline.cpp.o.d"
  "bench_fig2_baseline"
  "bench_fig2_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
