file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_ksmtuned.dir/bench_ext_ksmtuned.cpp.o"
  "CMakeFiles/bench_ext_ksmtuned.dir/bench_ext_ksmtuned.cpp.o.d"
  "bench_ext_ksmtuned"
  "bench_ext_ksmtuned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_ksmtuned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
