# Empty dependencies file for bench_ext_ksmtuned.
# This may be replaced when dependencies are built.
