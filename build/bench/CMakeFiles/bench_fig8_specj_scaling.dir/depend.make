# Empty dependencies file for bench_fig8_specj_scaling.
# This may be replaced when dependencies are built.
