file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3c_tuscany.dir/bench_fig3c_tuscany.cpp.o"
  "CMakeFiles/bench_fig3c_tuscany.dir/bench_fig3c_tuscany.cpp.o.d"
  "bench_fig3c_tuscany"
  "bench_fig3c_tuscany.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3c_tuscany.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
