# Empty dependencies file for bench_fig3c_tuscany.
# This may be replaced when dependencies are built.
