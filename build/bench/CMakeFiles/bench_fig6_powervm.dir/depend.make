# Empty dependencies file for bench_fig6_powervm.
# This may be replaced when dependencies are built.
