file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_powervm.dir/bench_fig6_powervm.cpp.o"
  "CMakeFiles/bench_fig6_powervm.dir/bench_fig6_powervm.cpp.o.d"
  "bench_fig6_powervm"
  "bench_fig6_powervm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_powervm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
