# Empty compiler generated dependencies file for bench_ablation_accounting.
# This may be replaced when dependencies are built.
