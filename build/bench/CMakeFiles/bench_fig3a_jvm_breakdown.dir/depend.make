# Empty dependencies file for bench_fig3a_jvm_breakdown.
# This may be replaced when dependencies are built.
