# Empty compiler generated dependencies file for bench_ablation_ksm_tuning.
# This may be replaced when dependencies are built.
