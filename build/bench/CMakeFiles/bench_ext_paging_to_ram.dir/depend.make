# Empty dependencies file for bench_ext_paging_to_ram.
# This may be replaced when dependencies are built.
