file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_paging_to_ram.dir/bench_ext_paging_to_ram.cpp.o"
  "CMakeFiles/bench_ext_paging_to_ram.dir/bench_ext_paging_to_ram.cpp.o.d"
  "bench_ext_paging_to_ram"
  "bench_ext_paging_to_ram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_paging_to_ram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
