file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_preloaded.dir/bench_fig4_preloaded.cpp.o"
  "CMakeFiles/bench_fig4_preloaded.dir/bench_fig4_preloaded.cpp.o.d"
  "bench_fig4_preloaded"
  "bench_fig4_preloaded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_preloaded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
