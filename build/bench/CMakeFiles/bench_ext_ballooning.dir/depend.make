# Empty dependencies file for bench_ext_ballooning.
# This may be replaced when dependencies are built.
