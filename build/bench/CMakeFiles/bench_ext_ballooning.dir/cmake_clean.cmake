file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_ballooning.dir/bench_ext_ballooning.cpp.o"
  "CMakeFiles/bench_ext_ballooning.dir/bench_ext_ballooning.cpp.o.d"
  "bench_ext_ballooning"
  "bench_ext_ballooning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_ballooning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
