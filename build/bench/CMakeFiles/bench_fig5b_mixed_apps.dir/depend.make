# Empty dependencies file for bench_fig5b_mixed_apps.
# This may be replaced when dependencies are built.
