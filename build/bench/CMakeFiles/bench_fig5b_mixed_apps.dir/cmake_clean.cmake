file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5b_mixed_apps.dir/bench_fig5b_mixed_apps.cpp.o"
  "CMakeFiles/bench_fig5b_mixed_apps.dir/bench_fig5b_mixed_apps.cpp.o.d"
  "bench_fig5b_mixed_apps"
  "bench_fig5b_mixed_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5b_mixed_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
