file(REMOVE_RECURSE
  "CMakeFiles/jtps_cli.dir/jtps_sim.cc.o"
  "CMakeFiles/jtps_cli.dir/jtps_sim.cc.o.d"
  "jtps"
  "jtps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jtps_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
