# Empty dependencies file for jtps_cli.
# This may be replaced when dependencies are built.
