
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ksm.cc" "tests/CMakeFiles/test_ksm.dir/test_ksm.cc.o" "gcc" "tests/CMakeFiles/test_ksm.dir/test_ksm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/jtps_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/jtps_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ksm/CMakeFiles/jtps_ksm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jtps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/jtps_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/jvm/CMakeFiles/jtps_jvm.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/jtps_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/jtps_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/jtps_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/jtps_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
