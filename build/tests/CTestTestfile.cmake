# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_base[1]_include.cmake")
include("/root/repo/build/tests/test_guest[1]_include.cmake")
include("/root/repo/build/tests/test_hv[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_jvm[1]_include.cmake")
include("/root/repo/build/tests/test_ksm[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_errors[1]_include.cmake")
include("/root/repo/build/tests/test_governors[1]_include.cmake")
