# Empty compiler generated dependencies file for jtps_guest.
# This may be replaced when dependencies are built.
