file(REMOVE_RECURSE
  "libjtps_guest.a"
)
