file(REMOVE_RECURSE
  "CMakeFiles/jtps_guest.dir/guest_os.cc.o"
  "CMakeFiles/jtps_guest.dir/guest_os.cc.o.d"
  "CMakeFiles/jtps_guest.dir/mem_category.cc.o"
  "CMakeFiles/jtps_guest.dir/mem_category.cc.o.d"
  "libjtps_guest.a"
  "libjtps_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jtps_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
