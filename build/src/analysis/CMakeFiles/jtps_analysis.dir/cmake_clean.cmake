file(REMOVE_RECURSE
  "CMakeFiles/jtps_analysis.dir/accounting.cc.o"
  "CMakeFiles/jtps_analysis.dir/accounting.cc.o.d"
  "CMakeFiles/jtps_analysis.dir/dump_format.cc.o"
  "CMakeFiles/jtps_analysis.dir/dump_format.cc.o.d"
  "CMakeFiles/jtps_analysis.dir/forensics.cc.o"
  "CMakeFiles/jtps_analysis.dir/forensics.cc.o.d"
  "CMakeFiles/jtps_analysis.dir/report.cc.o"
  "CMakeFiles/jtps_analysis.dir/report.cc.o.d"
  "CMakeFiles/jtps_analysis.dir/sharing_monitor.cc.o"
  "CMakeFiles/jtps_analysis.dir/sharing_monitor.cc.o.d"
  "CMakeFiles/jtps_analysis.dir/sharing_sources.cc.o"
  "CMakeFiles/jtps_analysis.dir/sharing_sources.cc.o.d"
  "CMakeFiles/jtps_analysis.dir/smaps.cc.o"
  "CMakeFiles/jtps_analysis.dir/smaps.cc.o.d"
  "libjtps_analysis.a"
  "libjtps_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jtps_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
