# Empty compiler generated dependencies file for jtps_analysis.
# This may be replaced when dependencies are built.
