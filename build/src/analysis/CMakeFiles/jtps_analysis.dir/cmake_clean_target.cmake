file(REMOVE_RECURSE
  "libjtps_analysis.a"
)
