
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/accounting.cc" "src/analysis/CMakeFiles/jtps_analysis.dir/accounting.cc.o" "gcc" "src/analysis/CMakeFiles/jtps_analysis.dir/accounting.cc.o.d"
  "/root/repo/src/analysis/dump_format.cc" "src/analysis/CMakeFiles/jtps_analysis.dir/dump_format.cc.o" "gcc" "src/analysis/CMakeFiles/jtps_analysis.dir/dump_format.cc.o.d"
  "/root/repo/src/analysis/forensics.cc" "src/analysis/CMakeFiles/jtps_analysis.dir/forensics.cc.o" "gcc" "src/analysis/CMakeFiles/jtps_analysis.dir/forensics.cc.o.d"
  "/root/repo/src/analysis/report.cc" "src/analysis/CMakeFiles/jtps_analysis.dir/report.cc.o" "gcc" "src/analysis/CMakeFiles/jtps_analysis.dir/report.cc.o.d"
  "/root/repo/src/analysis/sharing_monitor.cc" "src/analysis/CMakeFiles/jtps_analysis.dir/sharing_monitor.cc.o" "gcc" "src/analysis/CMakeFiles/jtps_analysis.dir/sharing_monitor.cc.o.d"
  "/root/repo/src/analysis/sharing_sources.cc" "src/analysis/CMakeFiles/jtps_analysis.dir/sharing_sources.cc.o" "gcc" "src/analysis/CMakeFiles/jtps_analysis.dir/sharing_sources.cc.o.d"
  "/root/repo/src/analysis/smaps.cc" "src/analysis/CMakeFiles/jtps_analysis.dir/smaps.cc.o" "gcc" "src/analysis/CMakeFiles/jtps_analysis.dir/smaps.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/jtps_base.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/jtps_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/jtps_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/ksm/CMakeFiles/jtps_ksm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jtps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/jtps_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
