file(REMOVE_RECURSE
  "libjtps_base.a"
)
