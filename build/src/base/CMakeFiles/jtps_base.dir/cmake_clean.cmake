file(REMOVE_RECURSE
  "CMakeFiles/jtps_base.dir/logging.cc.o"
  "CMakeFiles/jtps_base.dir/logging.cc.o.d"
  "CMakeFiles/jtps_base.dir/rng.cc.o"
  "CMakeFiles/jtps_base.dir/rng.cc.o.d"
  "CMakeFiles/jtps_base.dir/stats.cc.o"
  "CMakeFiles/jtps_base.dir/stats.cc.o.d"
  "CMakeFiles/jtps_base.dir/table.cc.o"
  "CMakeFiles/jtps_base.dir/table.cc.o.d"
  "CMakeFiles/jtps_base.dir/units.cc.o"
  "CMakeFiles/jtps_base.dir/units.cc.o.d"
  "libjtps_base.a"
  "libjtps_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jtps_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
