# Empty dependencies file for jtps_base.
# This may be replaced when dependencies are built.
