file(REMOVE_RECURSE
  "libjtps_mem.a"
)
