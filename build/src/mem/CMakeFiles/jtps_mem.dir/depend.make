# Empty dependencies file for jtps_mem.
# This may be replaced when dependencies are built.
