file(REMOVE_RECURSE
  "CMakeFiles/jtps_mem.dir/frame_table.cc.o"
  "CMakeFiles/jtps_mem.dir/frame_table.cc.o.d"
  "CMakeFiles/jtps_mem.dir/swap_device.cc.o"
  "CMakeFiles/jtps_mem.dir/swap_device.cc.o.d"
  "libjtps_mem.a"
  "libjtps_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jtps_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
