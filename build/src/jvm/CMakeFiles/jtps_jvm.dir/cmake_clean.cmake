file(REMOVE_RECURSE
  "CMakeFiles/jtps_jvm.dir/class_model.cc.o"
  "CMakeFiles/jtps_jvm.dir/class_model.cc.o.d"
  "CMakeFiles/jtps_jvm.dir/java_heap.cc.o"
  "CMakeFiles/jtps_jvm.dir/java_heap.cc.o.d"
  "CMakeFiles/jtps_jvm.dir/java_vm.cc.o"
  "CMakeFiles/jtps_jvm.dir/java_vm.cc.o.d"
  "CMakeFiles/jtps_jvm.dir/jit_compiler.cc.o"
  "CMakeFiles/jtps_jvm.dir/jit_compiler.cc.o.d"
  "CMakeFiles/jtps_jvm.dir/shared_class_cache.cc.o"
  "CMakeFiles/jtps_jvm.dir/shared_class_cache.cc.o.d"
  "libjtps_jvm.a"
  "libjtps_jvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jtps_jvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
