
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jvm/class_model.cc" "src/jvm/CMakeFiles/jtps_jvm.dir/class_model.cc.o" "gcc" "src/jvm/CMakeFiles/jtps_jvm.dir/class_model.cc.o.d"
  "/root/repo/src/jvm/java_heap.cc" "src/jvm/CMakeFiles/jtps_jvm.dir/java_heap.cc.o" "gcc" "src/jvm/CMakeFiles/jtps_jvm.dir/java_heap.cc.o.d"
  "/root/repo/src/jvm/java_vm.cc" "src/jvm/CMakeFiles/jtps_jvm.dir/java_vm.cc.o" "gcc" "src/jvm/CMakeFiles/jtps_jvm.dir/java_vm.cc.o.d"
  "/root/repo/src/jvm/jit_compiler.cc" "src/jvm/CMakeFiles/jtps_jvm.dir/jit_compiler.cc.o" "gcc" "src/jvm/CMakeFiles/jtps_jvm.dir/jit_compiler.cc.o.d"
  "/root/repo/src/jvm/shared_class_cache.cc" "src/jvm/CMakeFiles/jtps_jvm.dir/shared_class_cache.cc.o" "gcc" "src/jvm/CMakeFiles/jtps_jvm.dir/shared_class_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/jtps_base.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/jtps_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/jtps_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/jtps_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
