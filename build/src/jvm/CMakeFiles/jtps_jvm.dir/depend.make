# Empty dependencies file for jtps_jvm.
# This may be replaced when dependencies are built.
