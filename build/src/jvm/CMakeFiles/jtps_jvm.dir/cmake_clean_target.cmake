file(REMOVE_RECURSE
  "libjtps_jvm.a"
)
