file(REMOVE_RECURSE
  "libjtps_sim.a"
)
