# Empty dependencies file for jtps_sim.
# This may be replaced when dependencies are built.
