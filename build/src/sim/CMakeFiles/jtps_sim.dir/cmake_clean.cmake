file(REMOVE_RECURSE
  "CMakeFiles/jtps_sim.dir/event_queue.cc.o"
  "CMakeFiles/jtps_sim.dir/event_queue.cc.o.d"
  "libjtps_sim.a"
  "libjtps_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jtps_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
