file(REMOVE_RECURSE
  "libjtps_workload.a"
)
