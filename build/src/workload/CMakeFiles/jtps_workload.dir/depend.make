# Empty dependencies file for jtps_workload.
# This may be replaced when dependencies are built.
