file(REMOVE_RECURSE
  "CMakeFiles/jtps_workload.dir/client_driver.cc.o"
  "CMakeFiles/jtps_workload.dir/client_driver.cc.o.d"
  "CMakeFiles/jtps_workload.dir/workload_spec.cc.o"
  "CMakeFiles/jtps_workload.dir/workload_spec.cc.o.d"
  "libjtps_workload.a"
  "libjtps_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jtps_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
