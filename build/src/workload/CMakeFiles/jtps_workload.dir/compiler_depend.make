# Empty compiler generated dependencies file for jtps_workload.
# This may be replaced when dependencies are built.
