# Empty dependencies file for jtps_ksm.
# This may be replaced when dependencies are built.
