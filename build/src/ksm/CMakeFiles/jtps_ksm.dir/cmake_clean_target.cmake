file(REMOVE_RECURSE
  "libjtps_ksm.a"
)
