file(REMOVE_RECURSE
  "CMakeFiles/jtps_ksm.dir/ksm_scanner.cc.o"
  "CMakeFiles/jtps_ksm.dir/ksm_scanner.cc.o.d"
  "CMakeFiles/jtps_ksm.dir/ksm_tuned.cc.o"
  "CMakeFiles/jtps_ksm.dir/ksm_tuned.cc.o.d"
  "libjtps_ksm.a"
  "libjtps_ksm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jtps_ksm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
