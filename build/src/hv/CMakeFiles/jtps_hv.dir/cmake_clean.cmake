file(REMOVE_RECURSE
  "CMakeFiles/jtps_hv.dir/hypervisor.cc.o"
  "CMakeFiles/jtps_hv.dir/hypervisor.cc.o.d"
  "libjtps_hv.a"
  "libjtps_hv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jtps_hv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
