file(REMOVE_RECURSE
  "libjtps_hv.a"
)
