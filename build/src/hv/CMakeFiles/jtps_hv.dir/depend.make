# Empty dependencies file for jtps_hv.
# This may be replaced when dependencies are built.
