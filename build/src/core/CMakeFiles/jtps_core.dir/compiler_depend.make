# Empty compiler generated dependencies file for jtps_core.
# This may be replaced when dependencies are built.
