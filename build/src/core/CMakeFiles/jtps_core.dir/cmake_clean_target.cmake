file(REMOVE_RECURSE
  "libjtps_core.a"
)
