file(REMOVE_RECURSE
  "CMakeFiles/jtps_core.dir/paper_tables.cc.o"
  "CMakeFiles/jtps_core.dir/paper_tables.cc.o.d"
  "CMakeFiles/jtps_core.dir/placement.cc.o"
  "CMakeFiles/jtps_core.dir/placement.cc.o.d"
  "CMakeFiles/jtps_core.dir/power_scenario.cc.o"
  "CMakeFiles/jtps_core.dir/power_scenario.cc.o.d"
  "CMakeFiles/jtps_core.dir/scenario.cc.o"
  "CMakeFiles/jtps_core.dir/scenario.cc.o.d"
  "libjtps_core.a"
  "libjtps_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jtps_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
