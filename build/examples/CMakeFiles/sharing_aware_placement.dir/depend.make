# Empty dependencies file for sharing_aware_placement.
# This may be replaced when dependencies are built.
