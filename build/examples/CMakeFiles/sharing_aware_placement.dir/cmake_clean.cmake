file(REMOVE_RECURSE
  "CMakeFiles/sharing_aware_placement.dir/sharing_aware_placement.cpp.o"
  "CMakeFiles/sharing_aware_placement.dir/sharing_aware_placement.cpp.o.d"
  "sharing_aware_placement"
  "sharing_aware_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharing_aware_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
