# Empty compiler generated dependencies file for memory_forensics.
# This may be replaced when dependencies are built.
