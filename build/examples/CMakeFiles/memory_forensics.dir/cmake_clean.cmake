file(REMOVE_RECURSE
  "CMakeFiles/memory_forensics.dir/memory_forensics.cpp.o"
  "CMakeFiles/memory_forensics.dir/memory_forensics.cpp.o.d"
  "memory_forensics"
  "memory_forensics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_forensics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
