# Empty dependencies file for overcommit_inspector.
# This may be replaced when dependencies are built.
