file(REMOVE_RECURSE
  "CMakeFiles/overcommit_inspector.dir/overcommit_inspector.cpp.o"
  "CMakeFiles/overcommit_inspector.dir/overcommit_inspector.cpp.o.d"
  "overcommit_inspector"
  "overcommit_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overcommit_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
