file(REMOVE_RECURSE
  "CMakeFiles/daytrader_consolidation.dir/daytrader_consolidation.cpp.o"
  "CMakeFiles/daytrader_consolidation.dir/daytrader_consolidation.cpp.o.d"
  "daytrader_consolidation"
  "daytrader_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daytrader_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
