# Empty compiler generated dependencies file for daytrader_consolidation.
# This may be replaced when dependencies are built.
