file(REMOVE_RECURSE
  "CMakeFiles/ksm_tuning.dir/ksm_tuning.cpp.o"
  "CMakeFiles/ksm_tuning.dir/ksm_tuning.cpp.o.d"
  "ksm_tuning"
  "ksm_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksm_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
