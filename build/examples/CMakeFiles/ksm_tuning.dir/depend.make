# Empty dependencies file for ksm_tuning.
# This may be replaced when dependencies are built.
