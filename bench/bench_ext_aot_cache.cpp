/**
 * @file
 * Extension: AOT code in the shared class cache.
 *
 * The paper's §IV.A verdict on the JIT-compiled-code area is that it
 * "is difficult to share because the JIT compiler uses runtime
 * information for the optimizations". J9's shared cache has the
 * counter-move: ahead-of-time-compiled bodies, generated without
 * run-specific profiles, stored in the same copied archive. This bench
 * measures how much of the JIT-code area becomes TPS-shareable when an
 * AOT section is added to the paper's deployment — the natural
 * future-work step beyond the class-metadata result.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace jtps;

namespace
{

void
runCase(const char *label, bool aot)
{
    core::ScenarioConfig cfg = bench::paperConfig(true);
    cfg.warmupMs = 30'000;
    cfg.steadyMs = 45'000;
    if (aot) {
        cfg.aotCacheBytes = 24 * MiB;
        cfg.aotMethodCount = 1500;
    }
    auto spec = workload::dayTraderIntel();
    spec.useAotCache = aot;
    std::vector<workload::WorkloadSpec> vms(4, spec);
    core::Scenario scenario(cfg, vms);
    scenario.build();
    scenario.run();

    auto acct = scenario.account();
    const auto jit_idx =
        static_cast<std::size_t>(guest::MemCategory::JitCode);
    Bytes jit_use = 0, jit_shared = 0, java_saving = 0;
    std::uint32_t aot_loaded = 0;
    for (std::size_t v = 1; v < scenario.vmCount(); ++v) {
        const auto &row = scenario.javaRows()[v];
        const auto &pu = acct.usage(row.vm, row.pid);
        jit_use += pu.owned[jit_idx];
        jit_shared += pu.shared[jit_idx];
        java_saving += acct.vmBreakdown(v).savingJava;
        aot_loaded += scenario.javaVm(v).aotMethodsLoaded();
    }
    const std::size_t n = scenario.vmCount() - 1;
    const double pct =
        jit_use + jit_shared == 0
            ? 0.0
            : 100.0 * static_cast<double>(jit_shared) /
                  static_cast<double>(jit_use + jit_shared);
    std::printf("%-26s %12s MiB %12s MiB (%5.1f%%) %12s MiB %10u\n",
                label, formatMiB(jit_use / n).c_str(),
                formatMiB(jit_shared / n).c_str(), pct,
                formatMiB(java_saving / n).c_str(), static_cast<unsigned>(aot_loaded / n));
    std::fflush(stdout);
}

} // namespace

int
main()
{
    setVerbose(false);
    std::printf("Extension — AOT bodies in the copied cache "
                "(DayTrader x 4; per non-primary JVM)\n\n");
    std::printf("%-26s %16s %24s %16s %10s\n", "configuration",
                "JIT-code use", "JIT-code TPS-shared", "Java saving",
                "AOT/JVM");
    std::printf("%s\n", std::string(96, '-').c_str());
    runCase("class cache only (paper)", false);
    runCase("class cache + 24 MiB AOT", true);
    std::printf("\nAOT bodies carry no run-specific profile, so the "
                "copied archive makes part of the JIT-code area "
                "shareable too\n");
    return 0;
}
