/**
 * @file
 * Ablation: shared-class-cache deployment choices (paper §IV.B-C).
 *
 *  - copied, middleware-only: the paper's base-image deployment — one
 *    population copied to every VM; application classes stay private.
 *  - copied, all-cacheable: also caches the app's cacheable classes.
 *  - per-VM population: `-Xshareclasses` enabled everywhere but each
 *    VM populates its *own* cache file. Same classes, same sizes —
 *    but the layouts differ, so TPS finds (almost) nothing. This is
 *    the configuration the paper's insight warns about: class sharing
 *    alone is not enough, the *file copy* is what aligns the layouts.
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "bench/bench_json.hh"

using namespace jtps;

namespace
{

Bytes
nonPrimaryJavaSaving(core::Scenario &scenario)
{
    auto acct = scenario.account();
    Bytes saving = 0;
    for (VmId v = 1; v < scenario.vmCount(); ++v)
        saving += acct.vmBreakdown(v).savingJava;
    return saving / (scenario.vmCount() - 1);
}

void
runCase(bench::BenchJson &json, const char *label, bool enable,
        jvm::CacheScope scope, bool copy)
{
    core::ScenarioConfig cfg = bench::paperConfig(enable);
    cfg.cacheScope = scope;
    cfg.copyCacheToAllVms = copy;
    cfg.warmupMs = 30'000;
    cfg.steadyMs = 45'000;
    std::vector<workload::WorkloadSpec> vms(4, workload::dayTraderIntel());
    core::Scenario scenario(cfg, vms);
    scenario.build();
    scenario.run();
    const Bytes saving = nonPrimaryJavaSaving(scenario);
    std::printf("%-34s %14s MiB\n", label, formatMiB(saving).c_str());
    std::fflush(stdout);
    json.beginRow();
    json.field("configuration", label);
    json.field("class_sharing", enable);
    json.field("copied_cache", copy);
    json.field("java_saving_per_vm_bytes", saving);
    json.endRow();
}

} // namespace

int
main()
{
    setVerbose(false);
    std::printf("Ablation — cache deployment vs TPS savings in each "
                "non-primary Java process (DayTrader x 4)\n\n");
    std::printf("%-34s %18s\n", "configuration", "Java saving/VM");
    std::printf("%s\n", std::string(54, '-').c_str());
    bench::BenchJson json("ablation_cache_scope", "§IV.B-C ablation");
    runCase(json, "no class sharing", false,
            jvm::CacheScope::MiddlewareOnly, true);
    runCase(json, "per-VM cache population", true,
            jvm::CacheScope::MiddlewareOnly, false);
    runCase(json, "copied cache, middleware-only", true,
            jvm::CacheScope::MiddlewareOnly, true);
    runCase(json, "copied cache, all cacheable", true,
            jvm::CacheScope::AllCacheable, true);
    json.write();
    std::printf("\nthe copy is what creates cross-VM page equality; "
                "locally-populated caches share almost nothing extra\n");
    return 0;
}
