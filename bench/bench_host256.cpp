/**
 * @file
 * 256-VM single-host density: converged KSM pass wall time vs the
 * number of digest shards in the commit phase (headline bench for
 * intra-host sharding).
 *
 * One overcommitted host runs 256 Java guests (a DayTrader / idle
 * appliance / SPECjEnterprise / Tuscany cycle, CDS on, so the archive
 * pages merge massively while every heap stays unique). After the
 * scenario converges, the bench times full KSM passes over the whole
 * host — the regime the sharded commit targets: millions of resident
 * pages per pass, most of them calm, each needing a digest-keyed tree
 * probe that used to run on one core.
 *
 * Methodology per shard count S in {1, 2, 4}:
 *
 *   1. build + run the identical seeded scenario (ksm.commitShards is
 *      the ONLY knob that differs; scan threads are pinned to 4);
 *   2. converge KSM (runToQuiescence) and capture the full stat
 *      registry minus the two documented machine-sizing counters
 *      (ksm.commit_shards, ksm.shard_imbalance_max);
 *   3. assert the signature is byte-identical to the S=1 baseline —
 *      BEFORE any timing of this configuration is reported;
 *   4. time `timedPasses` converged passes, each preceded by an
 *      identical deterministic churn burst (re-merge + unique-write
 *      traffic, the steady-state diet of a dense host).
 *
 * The timed region is simulated-work-identical across S by
 * construction, so the wall-time ratio is the commit-shard speedup and
 * nothing else. argv: [vms] [timedPasses] (defaults 256 and 3; CI runs
 * a reduced host).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "base/hash.hh"
#include "bench/bench_common.hh"
#include "bench/bench_json.hh"
#include "workload/workload_spec.hh"

using namespace jtps;

namespace
{

constexpr Tick warmupMs = 8'000;
constexpr Tick steadyMs = 4'000;

/** Writes per churn burst (scaled down with the VM count). */
constexpr std::uint64_t churnWritesPer256Vms = 24'576;

struct HostResult
{
    double passMs = 0.0;       //!< mean converged-pass wall time
    double quiesceMs = 0.0;    //!< untimed convergence wall time
    std::uint64_t pagesShared = 0;
    std::uint64_t pagesSharing = 0;
    std::uint64_t residentPages = 0;
    std::uint64_t candidates = 0;
    std::uint64_t imbalance = 0;
    std::string signature; //!< registry minus the sizing counters
};

/**
 * The density host's population: the fleet bench's 4-cycle without the
 * TPC-W tier (DayTrader, near-idle appliance, SPECjEnterprise,
 * Tuscany). Identical workloads share one CDS archive each, so the
 * host carries both a large stable mass and a large unique-heap mass —
 * the mix that exercises every verdict of the sharded commit.
 */
std::vector<workload::WorkloadSpec>
hostSpecs(std::size_t count)
{
    workload::WorkloadSpec idle = workload::dayTraderIntel();
    idle.name += "-idle";
    idle.clientThreads = 1;
    idle.guestCacheTouchesPerEpoch = 60;
    idle.lazyClassesPerEpoch = 40;
    idle.jitCompilesPerEpoch = 12;
    const workload::WorkloadSpec cycle[] = {
        workload::dayTraderIntel(), idle,
        workload::specjEnterprise2010(), workload::tuscanyBigbank()};
    std::vector<workload::WorkloadSpec> specs;
    specs.reserve(count);
    for (std::size_t l = 0; l < count; ++l)
        specs.push_back(cycle[l % 4]);
    return specs;
}

core::ScenarioConfig
hostConfig(std::size_t vms, unsigned shards)
{
    core::ScenarioConfig cfg = bench::paperConfig(true);
    cfg.warmupMs = warmupMs;
    cfg.steadyMs = steadyMs;
    // RAM at the dedup knee (as in the fleet bench): without sharing
    // the host would thrash, with it the fleet fits. Scales with the
    // VM count so the reduced CI host sits in the same regime.
    cfg.host.ramBytes = vms * 640ULL * MiB;
    cfg.ksm.pagesToScan = 5'000;
    // The only knob that may differ between measured configurations.
    cfg.ksmCommitShards = shards;
    // Classify parallelism pinned on both sides: S=1 vs S=4 then
    // differs *only* in the commit phase's structure.
    cfg.ksmScanThreads = 4;
    return cfg;
}

/**
 * Full stat registry as one string, minus the two machine-sizing
 * counters that legitimately differ across shard counts
 * (docs/METRICS.md). Everything else — merge totals, stale-node
 * counts, swap traffic, per-VM gauges — must match bytewise.
 */
std::string
registrySignature(core::Scenario &sc)
{
    std::string sig;
    sig.reserve(1 << 14);
    for (const auto &[name, value] : sc.stats().counters()) {
        if (name == "ksm.commit_shards" ||
            name == "ksm.shard_imbalance_max")
            continue;
        sig += name;
        sig += '=';
        sig += std::to_string(value);
        sig += '\n';
    }
    for (const auto &[name, value] : sc.stats().scalars()) {
        sig += name;
        sig += '=';
        sig += std::to_string(value);
        sig += '\n';
    }
    sig += "pages_shared=" + std::to_string(sc.ksm().pagesShared());
    sig += "\npages_sharing=" + std::to_string(sc.ksm().pagesSharing());
    sig += '\n';
    return sig;
}

/** Drive whole KSM passes (the scanner is off the event queue here). */
void
fullPasses(core::Scenario &sc, std::uint64_t passes)
{
    const std::uint64_t target = sc.ksm().fullScans() + passes;
    while (sc.ksm().fullScans() < target)
        sc.ksm().scanBatch();
}

/**
 * One deterministic churn burst: the steady-state write traffic of a
 * dense host, identical at every shard count. Two thirds of the
 * writes draw from a small shared-content pool (COW-broken archive
 * pages that KSM re-merges next pass), one third is unique heap churn
 * (NotCalm now, SlowCalm + tree probe the pass after).
 */
void
churnBurst(core::Scenario &sc, std::size_t vms, std::uint64_t pass)
{
    const std::uint64_t writes =
        churnWritesPer256Vms * vms / 256 + 1;
    for (std::uint64_t i = 0; i < writes; ++i) {
        const std::uint64_t h = hash3(0x636875726eULL, pass, i);
        const VmId vm = static_cast<VmId>(h % vms);
        const Gfn gfn = 2048 + (hashCombine(h, 1) % 8192);
        mem::PageData d =
            (i % 3 != 0)
                ? mem::PageData::filled(7 + i % 11, 0)
                : mem::PageData::filled(hashCombine(h, 2), pass);
        sc.hv().writePage(vm, gfn, d);
    }
}

HostResult
measure(std::size_t vms, unsigned shards, std::uint64_t timed_passes)
{
    core::Scenario sc(hostConfig(vms, shards), hostSpecs(vms));
    sc.build();
    sc.run();

    // Converge: big batches, scan until two merge-free passes.
    sc.ksm().setPagesToScan(100'000);
    const auto q0 = std::chrono::steady_clock::now();
    sc.ksm().runToQuiescence(64);
    const auto q1 = std::chrono::steady_clock::now();

    HostResult r;
    r.quiesceMs =
        std::chrono::duration<double, std::milli>(q1 - q0).count();
    r.signature = registrySignature(sc);

    // Timed converged passes (identical simulated work at any S).
    double wall = 0.0;
    for (std::uint64_t p = 0; p < timed_passes; ++p) {
        churnBurst(sc, vms, p);
        const auto t0 = std::chrono::steady_clock::now();
        fullPasses(sc, 1);
        const auto t1 = std::chrono::steady_clock::now();
        wall +=
            std::chrono::duration<double, std::milli>(t1 - t0).count();
    }
    r.passMs = wall / static_cast<double>(timed_passes);

    sc.hv().checkConsistency();
    r.pagesShared = sc.ksm().pagesShared();
    r.pagesSharing = sc.ksm().pagesSharing();
    r.residentPages = sc.stats().get("host.resident_frames");
    r.candidates = sc.stats().get("ksm.precheck_candidates");
    r.imbalance = sc.stats().get("ksm.shard_imbalance_max");
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    const std::size_t vms =
        argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 256;
    const std::uint64_t timed_passes =
        argc > 2 ? static_cast<std::uint64_t>(std::atoi(argv[2])) : 3;

    std::printf("Host density — %zu VMs on one %zu MiB host, CDS on, "
                "4 scan threads, commit shards swept 1/2/4\n\n",
                vms, vms * 640);
    std::printf("%-14s %14s %14s %12s %12s %12s\n", "commit shards",
                "pass ms", "quiesce ms", "sharing pg", "candidates",
                "imbalance");
    std::printf("%s\n", std::string(84, '-').c_str());

    const unsigned points[3] = {1, 2, 4};
    HostResult results[3];
    bool identical = true;
    for (int p = 0; p < 3; ++p) {
        results[p] = measure(vms, points[p], timed_passes);
        // The identity gate: a shard count that changed ANY observable
        // beyond the two sizing counters invalidates its timing row.
        if (p > 0 && results[p].signature != results[0].signature) {
            identical = false;
            std::fprintf(stderr,
                         "FAIL: registry at %u commit shards diverged "
                         "from the serial baseline\n",
                         points[p]);
            return 1;
        }
        std::printf("%-14u %14.0f %14.0f %12llu %12llu %12llu\n",
                    points[p], results[p].passMs, results[p].quiesceMs,
                    (unsigned long long)results[p].pagesSharing,
                    (unsigned long long)results[p].candidates,
                    (unsigned long long)results[p].imbalance);
        std::fflush(stdout);
    }

    const double s2 = results[0].passMs / results[1].passMs;
    const double s4 = results[0].passMs / results[2].passMs;
    std::printf("\nconverged-pass speedup: x%.2f at 2 shards, x%.2f at "
                "4 shards (byte-identical registries: %s)\n",
                s2, s4, identical ? "yes" : "NO");

    bench::BenchJson json("host256", "intra-host sharding");
    for (int p = 0; p < 3; ++p) {
        json.beginRow();
        json.field("commit_shards", points[p]);
        json.field("converged_pass_ms", results[p].passMs);
        json.field("quiesce_ms", results[p].quiesceMs);
        json.field("pages_shared", results[p].pagesShared);
        json.field("pages_sharing", results[p].pagesSharing);
        json.field("resident_pages", results[p].residentPages);
        json.field("precheck_candidates", results[p].candidates);
        json.field("shard_imbalance_max", results[p].imbalance);
        json.endRow();
    }
    json.summaryField("host_vms", static_cast<std::uint64_t>(vms));
    json.summaryField("timed_passes", timed_passes);
    json.summaryField("commit_shard2_speedup", s2);
    json.summaryField("commit_shard4_speedup", s4);
    json.summaryField("registry_identical",
                      static_cast<std::uint64_t>(identical ? 1 : 0));
    json.write();
    return identical ? 0 : 1;
}
