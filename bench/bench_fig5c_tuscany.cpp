/**
 * @file
 * Fig. 5(c): per-JVM breakdown for three Tuscany bigbank servers with
 * a copied 25 MB shared class cache.
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "bench/bench_json.hh"

using namespace jtps;

int
main()
{
    setVerbose(false);
    std::vector<workload::WorkloadSpec> vms(
        3, workload::tuscanyBigbank());
    core::Scenario scenario(bench::paperConfig(true), vms);
    scenario.build();
    scenario.run();

    bench::printJavaBreakdown(
        scenario,
        "Fig. 5(c) — three Tuscany bigbank processes, shared class "
        "cache copied to all VMs");

    auto acct = scenario.account();
    for (const auto &row : scenario.javaRows()) {
        std::printf("%s class-metadata TPS-shared: %.1f%%\n",
                    row.label.c_str(),
                    100.0 *
                        bench::classMetadataSharedFraction(acct, row));
    }

    bench::BenchJson json("fig5c_tuscany", "Fig. 5(c)");
    bench::emitJavaBreakdownRows(json, scenario);
    json.write();
    return 0;
}
