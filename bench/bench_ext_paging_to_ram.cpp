/**
 * @file
 * Extension: TPS vs paging-to-compressed-RAM (paper §VI related work).
 *
 * The paper contrasts its TPS-based approach with the Difference
 * Engine / Active Memory Expansion line of work: paging to compressed
 * RAM makes refaults cheap, but "every access to a compressed ...
 * page requires restoring the full page, while there is no overhead
 * for reading TPS-shared pages" — and the compressed pool itself
 * consumes host RAM.
 *
 * This bench runs the 8-VM DayTrader density point under four
 * configurations: default, a 512 MiB compressed swap pool, the copied
 * class cache, and both combined — showing the techniques are
 * complementary and that class preloading alone already defuses most
 * of the collapse.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace jtps;

namespace
{

double
measure(bool class_sharing, Bytes zram_pool, int num_vms)
{
    core::ScenarioConfig cfg = bench::paperConfig(class_sharing);
    cfg.host.compressedSwapPoolBytes = zram_pool;
    cfg.warmupMs = 70'000;
    cfg.steadyMs = 60'000;
    std::vector<workload::WorkloadSpec> vms(
        num_vms, workload::dayTraderIntel());
    core::Scenario scenario(cfg, vms);
    scenario.build();
    scenario.run();
    return scenario.aggregateThroughput(12);
}

} // namespace

int
main()
{
    setVerbose(false);
    std::printf("Extension — TPS (class preloading) vs paging to "
                "compressed RAM, 8 DayTrader guests on 6 GB\n\n");
    std::printf("%-44s %16s\n", "configuration", "aggregate rq/s");
    std::printf("%s\n", std::string(62, '-').c_str());

    struct Case
    {
        const char *label;
        bool cds;
        Bytes pool;
    };
    const Case cases[] = {
        {"default", false, 0},
        {"512 MiB compressed swap pool", false, 512 * MiB},
        {"copied shared class cache (paper)", true, 0},
        {"both", true, 512 * MiB},
    };
    for (const Case &c : cases) {
        std::printf("%-44s %16.1f\n", c.label, measure(c.cds, c.pool, 8));
        std::fflush(stdout);
    }
    std::printf("\nTPS-shared pages cost nothing to read; compressed "
                "pages cost a refault each access and the pool eats "
                "host RAM (modelled 3:1 compression)\n");
    return 0;
}
