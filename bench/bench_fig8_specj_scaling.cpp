/**
 * @file
 * Fig. 8: SPECjEnterprise 2010 score (EjOPS) at a fixed injection rate
 * of 15, as the number of 1.25 GiB guest VMs grows from 5 to 8, with
 * the gencon GC policy (200 MB tenured + 530 MB nursery).
 *
 * Paper's shape: scores stay ~24 at 5-6 VMs; at 7 the default
 * configuration drops to ~15 and misses the response-time SLA while
 * the preloaded one holds ~24; at 8 both degrade.
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "bench/bench_json.hh"

using namespace jtps;

namespace
{

struct Point
{
    double score;
    bool slaMet;
};

Point
measure(int num_vms, bool class_sharing)
{
    core::ScenarioConfig cfg = bench::paperConfig(class_sharing);
    cfg.warmupMs = 70'000;
    cfg.steadyMs = 60'000;
    std::vector<workload::WorkloadSpec> vms(
        num_vms, workload::specjEnterprise2010());
    core::Scenario scenario(cfg, vms);
    scenario.build();
    scenario.run();

    // EjOPS per VM: throughput of the closed loop at injection rate 15;
    // the paper reports the per-VM score (~24 when responsive).
    auto per_vm = scenario.perVmThroughput(8);
    auto resp = scenario.perVmResponseMs(8);
    double score = 0;
    bool sla = true;
    for (std::size_t v = 0; v < per_vm.size(); ++v) {
        score += per_vm[v];
        sla = sla && resp[v] <= workload::specjEnterprise2010().slaMs;
    }
    return {score / per_vm.size(), sla};
}

struct SweepPoint
{
    int vms;
    bool preloaded;
};

} // namespace

int
main()
{
    setVerbose(false);
    std::printf("Fig. 8 — SPECjEnterprise 2010 score vs number of guest "
                "VMs (injection rate 15, gencon GC)\n\n");
    std::printf("%-6s %16s %6s %18s %6s\n", "VMs", "default EjOPS",
                "SLA", "preloaded EjOPS", "SLA");
    std::printf("%s\n", std::string(58, '-').c_str());

    std::vector<SweepPoint> points;
    for (int n = 5; n <= 8; ++n) {
        points.push_back({n, false});
        points.push_back({n, true});
    }
    const std::vector<Point> results = bench::sweep(
        points,
        [](const SweepPoint &p) { return measure(p.vms, p.preloaded); });

    bench::BenchJson json("fig8_specj_scaling", "Fig. 8");
    for (int n = 5; n <= 8; ++n) {
        const Point &def = results[2 * (n - 5)];
        const Point &ours = results[2 * (n - 5) + 1];
        std::printf("%-6d %16.1f %6s %18.1f %6s\n", n, def.score,
                    def.slaMet ? "ok" : "FAIL", ours.score,
                    ours.slaMet ? "ok" : "FAIL");
        json.beginRow();
        json.field("vms", n);
        json.field("default_ejops", def.score);
        json.field("default_sla_met", def.slaMet);
        json.field("preloaded_ejops", ours.score);
        json.field("preloaded_sla_met", ours.slaMet);
        json.endRow();
    }
    json.write();
    std::printf("\npaper: ~24 at 5-6 VMs; at 7: default ~15 (SLA fail) "
                "vs ours ~24; at 8 both degrade\n");
    return 0;
}
