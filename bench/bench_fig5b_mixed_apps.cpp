/**
 * @file
 * Fig. 5(b): per-JVM breakdown with class sharing for DayTrader,
 * SPECjEnterprise and TPC-W in the same WAS version, one per VM.
 *
 * Paper's point: the class area shares about as much as in Fig. 5(a)
 * even though every VM runs a *different* application, because the
 * base-image cache holds the (identical) WAS middleware classes and
 * application classes are a small fraction.
 */

#include "bench/bench_common.hh"
#include "bench/bench_json.hh"

using namespace jtps;

int
main()
{
    setVerbose(false);
    std::vector<workload::WorkloadSpec> vms = {
        workload::dayTraderIntel(),
        workload::specjEnterprise2010(),
        workload::tpcwJava(),
    };
    core::Scenario scenario(bench::paperConfig(true), vms);
    scenario.build();
    scenario.run();

    bench::printJavaBreakdown(
        scenario,
        "Fig. 5(b) — DayTrader / SPECjEnterprise / TPC-W in the same "
        "WAS, shared class cache from the base image copied to all VMs");

    auto acct = scenario.account();
    for (const auto &row : scenario.javaRows()) {
        std::printf("%s class-metadata TPS-shared: %.1f%%\n",
                    row.label.c_str(),
                    100.0 *
                        bench::classMetadataSharedFraction(acct, row));
    }

    bench::BenchJson json("fig5b_mixed_apps", "Fig. 5(b)");
    bench::emitJavaBreakdownRows(json, scenario);
    json.write();
    return 0;
}
