/**
 * @file
 * Ablation: transparent huge pages vs TPS.
 *
 * THP and KSM are mutually exclusive on the same memory: huge-backed
 * anonymous regions are never merged. This bench measures the paper's
 * savings with guest THP off and on. The punchline is that the paper's
 * technique *survives* THP: the shared class cache is a memory-mapped
 * file (page-cache-backed, not THP-backed), so its pages stay
 * mergeable while anonymous sharing (zero pages, NIO buffers,
 * bulk-reserved areas) disappears.
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "bench/bench_json.hh"

using namespace jtps;

namespace
{

void
runCase(bench::BenchJson &json, const char *label, bool cds, bool thp)
{
    core::ScenarioConfig cfg = bench::paperConfig(cds);
    cfg.guestThp = thp;
    cfg.warmupMs = 30'000;
    cfg.steadyMs = 45'000;
    std::vector<workload::WorkloadSpec> vms(4, workload::dayTraderIntel());
    core::Scenario scenario(cfg, vms);
    scenario.build();
    scenario.run();

    auto acct = scenario.account();
    Bytes java_saving = 0, class_shared = 0;
    const auto idx =
        static_cast<std::size_t>(guest::MemCategory::ClassMetadata);
    for (VmId v = 1; v < scenario.vmCount(); ++v) {
        java_saving += acct.vmBreakdown(v).savingJava;
        const auto &row = scenario.javaRows()[v];
        class_shared += acct.usage(row.vm, row.pid).shared[idx];
    }
    java_saving /= scenario.vmCount() - 1;
    class_shared /= scenario.vmCount() - 1;
    std::printf("%-34s %14s MiB %16s MiB %16llu\n", label,
                formatMiB(java_saving).c_str(),
                formatMiB(class_shared).c_str(),
                (unsigned long long)scenario.stats().get(
                    "ksm.skipped_huge"));
    std::fflush(stdout);
    json.beginRow();
    json.field("configuration", label);
    json.field("class_sharing", cds);
    json.field("thp", thp);
    json.field("java_saving_bytes", java_saving);
    json.field("class_shared_bytes", class_shared);
    json.field("huge_skips", scenario.stats().get("ksm.skipped_huge"));
    json.endRow();
}

} // namespace

int
main()
{
    setVerbose(false);
    std::printf("Ablation — transparent huge pages vs TPS "
                "(DayTrader x 4; per non-primary JVM)\n\n");
    std::printf("%-34s %18s %20s %16s\n", "configuration",
                "Java saving", "class shared", "huge skips");
    std::printf("%s\n", std::string(90, '-').c_str());
    bench::BenchJson json("ablation_thp", "§III ablation");
    runCase(json, "default, THP off", false, false);
    runCase(json, "default, THP on", false, true);
    runCase(json, "class cache, THP off", true, false);
    runCase(json, "class cache, THP on", true, true);
    json.write();
    std::printf("\nthe copied cache file is page-cache-backed, so its "
                "sharing survives THP; anonymous-page sharing does "
                "not\n");
    return 0;
}
