/**
 * @file
 * Fig. 5(a): detailed per-JVM breakdown with the copied shared class
 * cache — the paper's headline: 89.6% of class-metadata memory is
 * TPS-shared in the three non-primary JVMs. Also prints the §V.A
 * provenance of the cached classes (~90% middleware, ~10% system).
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "bench/bench_json.hh"
#include "jvm/shared_class_cache.hh"

using namespace jtps;

int
main()
{
    setVerbose(false);
    std::vector<workload::WorkloadSpec> vms(4, workload::dayTraderIntel());
    core::Scenario scenario(bench::paperConfig(true), vms);
    scenario.build();
    scenario.run();

    bench::printJavaBreakdown(
        scenario,
        "Fig. 5(a) — per-JVM memory breakdown, DayTrader x 4, shared "
        "class cache copied to all VMs");

    auto acct = scenario.account();
    double best = 0;
    for (const auto &row : scenario.javaRows()) {
        const double f = bench::classMetadataSharedFraction(acct, row);
        std::printf("%s class-metadata TPS-shared: %.1f%%\n",
                    row.label.c_str(), 100.0 * f);
        best = std::max(best, f);
    }
    std::printf("max class-metadata sharing: %.1f%%  (paper: 89.6%%)\n",
                100.0 * best);

    bench::BenchJson json("fig5a_jvm_breakdown", "Fig. 5(a)");
    bench::emitJavaBreakdownRows(json, scenario);
    json.summaryField("max_class_metadata_shared_fraction", best);

    // §V.A provenance: rebuild the deployed cache and report origin mix.
    auto spec = workload::dayTraderIntel();
    jvm::ClassSet classes = jvm::ClassSet::synthesize(spec.classSpec);
    jvm::SharedClassCache cache = jvm::SharedClassCache::build(
        classes, spec.cacheName, spec.sharedCacheBytes);
    const double total = static_cast<double>(cache.usedBytes());
    std::printf("cache contents by origin: middleware=%.0f%% "
                "system=%.0f%% application=%.0f%%  "
                "(paper: ~90%% WAS middleware, ~10%% java.* system)\n",
                100.0 *
                    cache.storedBytesByOrigin(
                        jvm::ClassOrigin::Middleware) /
                    total,
                100.0 *
                    cache.storedBytesByOrigin(jvm::ClassOrigin::System) /
                    total,
                100.0 *
                    cache.storedBytesByOrigin(
                        jvm::ClassOrigin::Application) /
                    total);
    json.summaryField("cache_middleware_fraction",
                      cache.storedBytesByOrigin(
                          jvm::ClassOrigin::Middleware) /
                          total);
    json.summaryField("cache_system_fraction",
                      cache.storedBytesByOrigin(jvm::ClassOrigin::System) /
                          total);
    json.summaryField("cache_application_fraction",
                      cache.storedBytesByOrigin(
                          jvm::ClassOrigin::Application) /
                          total);
    json.write();
    return 0;
}
