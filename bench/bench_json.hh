/**
 * @file
 * Machine-readable bench output.
 *
 * Every figure/ablation bench prints its human-readable table to
 * stdout unconditionally; when the environment variable
 * `JTPS_BENCH_JSON=<dir>` is set it additionally writes
 * `<dir>/BENCH_<name>.json` with the same numbers:
 *
 *   {
 *     "schema_version": 1,
 *     "bench": "<name>",
 *     "figure": "<paper figure or table>",
 *     "rows": [ {...}, ... ],      // one object per printed table row
 *     ...summary fields...          // bench-specific totals
 *   }
 *
 * Rows are emitted by the main thread after any sweep() fan-out has
 * completed and results sit in point-ordered slots, so the file — like
 * the printed table — is byte-identical at any JTPS_BENCH_THREADS.
 * When the variable is unset every method is a no-op and the bench
 * behaves exactly as before.
 */

#ifndef JTPS_BENCH_BENCH_JSON_HH
#define JTPS_BENCH_BENCH_JSON_HH

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <utility>

#include "analysis/json_export.hh"
#include "base/json_writer.hh"
#include "base/logging.hh"
#include "bench/bench_common.hh"

namespace jtps::bench
{

class BenchJson
{
  public:
    /**
     * @param name   Bench identifier (file becomes BENCH_<name>.json).
     * @param figure The paper figure/table this bench regenerates.
     */
    BenchJson(std::string name, std::string figure) : name_(std::move(name))
    {
        const char *env = std::getenv("JTPS_BENCH_JSON");
        if (!env || !*env)
            return;
        dir_ = env;
        enabled_ = true;
        w_.beginObject();
        w_.field("schema_version", analysis::jsonSchemaVersion);
        w_.field("bench", name_);
        w_.field("figure", figure);
        w_.key("rows").beginArray();
    }

    /** Whether JTPS_BENCH_JSON is active (for benches that need more). */
    bool enabled() const { return enabled_; }

    /** Open the next row object inside "rows". */
    void
    beginRow()
    {
        if (enabled_) {
            jtps_assert(!rows_closed_);
            w_.beginObject();
        }
    }

    /** Emit one field of the current row. */
    template <typename T>
    void
    field(std::string_view key, T v)
    {
        if (enabled_)
            w_.field(key, v);
    }

    void
    endRow()
    {
        if (enabled_)
            w_.endObject();
    }

    /** Open a nested object-valued field inside the current row. */
    void
    beginNested(std::string_view key)
    {
        if (enabled_) {
            w_.key(key);
            w_.beginObject();
        }
    }

    void
    endNested()
    {
        if (enabled_)
            w_.endObject();
    }

    /**
     * Emit a top-level summary field (after all rows; closes "rows" on
     * first use).
     */
    template <typename T>
    void
    summaryField(std::string_view key, T v)
    {
        if (enabled_) {
            closeRows();
            w_.field(key, v);
        }
    }

    /** Finish the document and write it; no-op when disabled. */
    void
    write()
    {
        if (!enabled_)
            return;
        closeRows();
        w_.endObject();
        const std::string doc = w_.str();

        namespace fs = std::filesystem;
        std::error_code ec;
        fs::create_directories(fs::path(dir_), ec);
        const std::string path = dir_ + "/BENCH_" + name_ + ".json";
        std::FILE *f = std::fopen(path.c_str(), "wb");
        if (!f)
            fatal("cannot open %s for writing", path.c_str());
        std::fwrite(doc.data(), 1, doc.size(), f);
        std::fclose(f);
        // stderr so the stdout table stays byte-identical with/without
        // JSON output enabled.
        std::fprintf(stderr, "[bench-json] wrote %s\n", path.c_str());
        enabled_ = false;
    }

  private:
    void
    closeRows()
    {
        if (!rows_closed_) {
            rows_closed_ = true;
            w_.endArray();
        }
    }

    std::string name_;
    std::string dir_;
    JsonWriter w_;
    bool enabled_ = false;
    bool rows_closed_ = false;
};

/**
 * One row per VM with the Fig. 2 / Fig. 4 rollup (usage by component,
 * TPS savings by component), in byte units.
 */
inline void
emitVmBreakdownRows(BenchJson &json, core::Scenario &scenario)
{
    if (!json.enabled())
        return;
    const analysis::OwnerAccounting acct = scenario.account();
    const std::vector<std::string> names = scenario.vmNames();
    for (VmId v = 0; v < scenario.vmCount(); ++v) {
        const analysis::VmBreakdown b = acct.vmBreakdown(v);
        json.beginRow();
        json.field("vm", names[v]);
        json.field("java_bytes", b.java);
        json.field("other_user_bytes", b.otherUser);
        json.field("kernel_bytes", b.kernel);
        json.field("vm_self_bytes", b.vmSelf);
        json.field("saving_java_bytes", b.savingJava);
        json.field("saving_other_bytes", b.savingOther);
        json.field("saving_kernel_bytes", b.savingKernel);
        json.field("usage_total_bytes", b.usageTotal());
        json.field("saving_total_bytes", b.savingTotal());
        json.endRow();
    }
}

/**
 * One row per Java process with the Fig. 3 / Fig. 5 per-category
 * breakdown: "owned"/"shared" objects keyed by the Table IV category
 * name, plus the class-metadata sharing fraction.
 */
inline void
emitJavaBreakdownRows(BenchJson &json, core::Scenario &scenario)
{
    if (!json.enabled())
        return;
    const analysis::OwnerAccounting acct = scenario.account();
    for (const auto &row : scenario.javaRows()) {
        const analysis::ProcessUsage &pu = acct.usage(row.vm, row.pid);
        json.beginRow();
        json.field("jvm", row.label);
        json.field("vm", static_cast<unsigned>(row.vm));
        for (const char *which : {"owned", "shared"}) {
            const analysis::CategoryBytes &cb =
                which[0] == 'o' ? pu.owned : pu.shared;
            json.beginNested(which);
            for (std::size_t c = 0; c < guest::numMemCategories; ++c) {
                const auto cat = static_cast<guest::MemCategory>(c);
                if (!guest::isJavaCategory(cat))
                    continue;
                json.field(guest::categoryName(cat), cb[c]);
            }
            json.endNested();
        }
        json.field("owned_bytes", pu.ownedTotal());
        json.field("shared_bytes", pu.sharedTotal());
        json.field("class_metadata_shared_fraction",
                   classMetadataSharedFraction(acct, row));
        json.endRow();
    }
}

} // namespace jtps::bench

#endif // JTPS_BENCH_BENCH_JSON_HH
